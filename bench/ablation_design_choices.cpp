// Ablations of the design choices DESIGN.md calls out:
//   A1 — constellation-size optimization on/off (fixed b vs searched b);
//   A2 — the b-selection rule of Algorithm 2 (min ē_b vs min total PA vs
//        min total energy);
//   A3 — Algorithm 3's PU-selection heuristic vs picking at random;
//   A4 — quadrature order for the ē_b expectation vs the closed form;
//   A5 — combining scheme in the overlay testbed (EGC vs MRC vs SC);
//   A6 — per-packet relay selection (extension);
//   A7 — multi-PU pair splitting (extension);
//   A8 — Algorithm 3 pairing vs null-space projection weights;
//   A9 — genie CSI vs pilot-based channel estimation;
//   A10 — STBC decoding sensitivity to channel-estimation error.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/common/units.h"
#include "comimo/mc/engine.h"
#include "comimo/energy/ebbar.h"
#include "comimo/energy/optimizer.h"
#include "comimo/interweave/nullspace_beamformer.h"
#include "comimo/interweave/pair_beamformer.h"
#include "comimo/interweave/pu_selection.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/stbc.h"
#include "comimo/channel/awgn.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/stats.h"
#include "comimo/testbed/experiments.h"
#include "comimo/underlay/cooperative_hop.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  BenchReporter reporter("ablation_design_choices");
  reporter.set_threads(cli.effective_threads());
  std::cout << "=== Ablations of design choices ===\n\n";

  // --- A1: constellation optimization ---------------------------------
  {
    std::cout << "--- A1: variable-rate b search vs fixed b (2x2 link,"
                 " 200 m, p=1e-3, B=40k) ---\n";
    const MimoEnergyModel model;
    const ConstellationOptimizer opt;
    const ConstellationChoice best =
        opt.min_mimo_tx_energy(1e-3, 2, 2, 200.0, 40e3);
    TextTable t({"policy", "b", "tx energy [J/bit]", "vs optimized"});
    t.add_row({"optimized", std::to_string(best.b),
               TextTable::sci(best.value), "1.00x"});
    Json params = Json::object();
    params.set("ablation", "A1");
    Json metrics = Json::object();
    metrics.set("optimized_b", best.b);
    metrics.set("optimized_tx_energy_j", best.value);
    reporter.add_record(std::move(params), std::move(metrics));
    for (const int b : {1, 2, 4, 8, 16}) {
      const double e = model.tx_energy(b, 1e-3, 2, 2, 200.0, 40e3).total();
      t.add_row({"fixed b=" + std::to_string(b), std::to_string(b),
                 TextTable::sci(e),
                 TextTable::fmt(e / best.value, 2) + "x"});
    }
    t.print(std::cout);
  }

  // --- A2: b-selection rule in Algorithm 2 ------------------------------
  {
    std::cout << "\n--- A2: Algorithm 2 b-selection rule (2x3 hop,"
                 " 200 m) ---\n";
    const UnderlayCooperativeHop planner;
    UnderlayHopConfig cfg;
    cfg.mt = 2;
    cfg.mr = 3;
    cfg.hop_distance_m = 200.0;
    TextTable t({"rule", "b", "total PA [J/bit]", "peak PA [J/bit]",
                 "total energy [J/bit]"});
    const auto row = [&](const char* name, BSelectionRule rule) {
      const UnderlayHopPlan p = planner.plan(cfg, rule);
      t.add_row({name, std::to_string(p.b), TextTable::sci(p.total_pa()),
                 TextTable::sci(p.peak_pa()),
                 TextTable::sci(p.total_energy())});
    };
    row("min ebar (paper's stated rule)", BSelectionRule::kMinEbar);
    row("min peak PA", BSelectionRule::kMinPeakPa);
    row("min total PA (Fig. 7)", BSelectionRule::kMinTotalPa);
    row("min total energy", BSelectionRule::kMinTotalEnergy);
    t.print(std::cout);
  }

  // --- A3: PU-selection heuristic vs random -----------------------------
  {
    std::cout << "\n--- A3: Algorithm 3 PU selection vs random pick"
                 " (amplitude at Sr over 200 trials) ---\n";
    const PairGeometry geom{Vec2{0.0, 7.5}, Vec2{0.0, -7.5}};
    const Vec2 sr{150.0, 0.0};
    // The engine hands each trial Rng(99, trial) — exactly the stream
    // the original serial loop used, so this sweep is the serial one,
    // merely sharded.
    McConfig mc;
    mc.seed = 99;
    mc.pool = cli.pool();
    const McResult run = run_trials(
        200, mc, [&](std::size_t, Rng& rng, McAccumulator& acc) {
          std::vector<Vec2> candidates;
          for (int i = 0; i < 20; ++i) {
            candidates.push_back(rng.point_in_disk(geom.st1, 150.0));
          }
          const std::size_t smart = select_pu(geom.center(), sr, candidates);
          const std::size_t naive = rng.uniform_int(candidates.size());
          acc.observe("heuristic",
                      NullSteeringPair(geom, 30.0, candidates[smart])
                          .amplitude_at(sr));
          acc.observe("random",
                      NullSteeringPair(geom, 30.0, candidates[naive])
                          .amplitude_at(sr));
        });
    const RunningStats& heuristic = run.acc.stat("heuristic");
    const RunningStats& random_pick = run.acc.stat("random");
    TextTable t({"policy", "mean amplitude", "min", "max"});
    t.add_row({"Algorithm 3 heuristic", TextTable::fmt(heuristic.mean(), 3),
               TextTable::fmt(heuristic.min(), 3),
               TextTable::fmt(heuristic.max(), 3)});
    t.add_row({"random PU", TextTable::fmt(random_pick.mean(), 3),
               TextTable::fmt(random_pick.min(), 3),
               TextTable::fmt(random_pick.max(), 3)});
    t.print(std::cout);
    Json params = Json::object();
    params.set("ablation", "A3");
    Json metrics = Json::object();
    metrics.set("heuristic_mean_amplitude", heuristic.mean());
    metrics.set("random_mean_amplitude", random_pick.mean());
    reporter.add_record(std::move(params), std::move(metrics), 200,
                        run.info.trials_per_sec);
  }

  // --- A4: quadrature order vs closed form ------------------------------
  {
    std::cout << "\n--- A4: Gauss-Laguerre order vs closed form"
                 " (b=4, 2x2, p=1e-3) ---\n";
    const EbBarSolver solver;
    const double e = solver.solve(1e-3, 4, 2, 2);
    const double exact = solver.average_ber(e, 4, 2, 2);
    TextTable t({"points", "BER", "relative error"});
    for (const std::size_t n : {4u, 8u, 16u, 32u, 64u, 128u}) {
      const double q = solver.average_ber_quadrature(e, 4, 2, 2, n);
      t.add_row({std::to_string(n), TextTable::sci(q, 6),
                 TextTable::sci(std::abs(q - exact) / exact, 2)});
    }
    t.print(std::cout);
  }

  // --- A5: combining scheme in the overlay testbed ----------------------
  {
    std::cout << "\n--- A5: overlay combining scheme (Table 2 scenario,"
                 " 50k bits) ---\n";
    TextTable t({"combiner", "BER with cooperation"});
    for (const auto& [name, kind] :
         std::vector<std::pair<const char*, CombinerKind>>{
             {"equal gain (paper)", CombinerKind::kEqualGain},
             {"maximal ratio", CombinerKind::kMaximalRatio},
             {"selection", CombinerKind::kSelection}}) {
      OverlayBerConfig cfg = table2_single_relay_config(1);
      cfg.total_bits = 50000;
      cfg.combiner = kind;
      const OverlayBerResult r = run_overlay_ber(cfg);
      t.add_row({name, TextTable::pct(r.ber_cooperative)});
    }
    t.print(std::cout);
  }
  // --- A6: per-packet relay selection (extension) ------------------------
  {
    std::cout << "\n--- A6: relay selection, Table 3 scenario (3 relays,"
                 " 100k bits) ---\n";
    TextTable t({"policy", "BER with cooperation", "phase-2 transmissions"});
    for (const unsigned k : {0u, 3u, 2u, 1u}) {
      OverlayBerConfig cfg = table3_multi_relay_config(3, 1);
      cfg.max_active_relays = k;
      const OverlayBerResult r = run_overlay_ber(cfg);
      const std::string name =
          k == 0 ? "all relays (paper)" : "best " + std::to_string(k);
      t.add_row({name, TextTable::pct(r.ber_cooperative),
                 std::to_string(r.relay_transmissions)});
    }
    t.print(std::cout);
    std::cout << "Selection saves phase-2 energy AND, under equal-gain\n"
                 "combining, can even lower the BER: EGC weights weak\n"
                 "branches as heavily as strong ones, so dropping the\n"
                 "worst relay helps.  Best-1 also beats Table 3's fixed\n"
                 "mid-corridor single relay.\n";
  }

  // --- A7: multi-PU protection (extension) --------------------------------
  {
    std::cout << "\n--- A7: 4 pairs protecting 1 vs 2 PUs"
                 " (residual amplitudes; un-nulled field would be 8) ---\n";
    std::vector<Vec2> nodes;
    for (int i = 0; i < 8; ++i) {
      nodes.push_back(Vec2{static_cast<double>(i) * 0.5,
                           (i % 2 ? -7.5 : 7.5)});
    }
    const Vec2 pu_a{0.0, -5000.0};
    const Vec2 pu_b{-5000.0, 2000.0};
    const Vec2 sr{5000.0, 0.0};
    const MultiPuBeamformer dedicated(nodes, 30.0, {pu_a});
    const MultiPuBeamformer split(nodes, 30.0, {pu_a, pu_b});
    TextTable t({"configuration", "residual at PU A", "residual at PU B",
                 "amplitude at Sr"});
    t.add_row({"all pairs null PU A (Algorithm 3)",
               TextTable::sci(dedicated.residual_at(0)),
               TextTable::fmt(dedicated.amplitude_at(pu_b), 2),
               TextTable::fmt(dedicated.amplitude_at(sr), 2)});
    t.add_row({"pairs split across PU A and PU B",
               TextTable::fmt(split.residual_at(0), 3),
               TextTable::fmt(split.residual_at(1), 3),
               TextTable::fmt(split.amplitude_at(sr), 2)});
    t.print(std::cout);
    std::cout << "Splitting protects both PUs partially instead of one"
                 " perfectly — the trade Algorithm 3 leaves open.\n";
  }

  // --- A8: the paper's pairing vs null-space weights ----------------------
  {
    std::cout << "\n--- A8: Algorithm 3 pairing vs null-space projection"
                 " weights (per unit total power) ---\n";
    const double w = 30.0;
    std::vector<Vec2> elements;
    for (int i = 0; i < 6; ++i) {
      elements.push_back(Vec2{static_cast<double>(i) * 0.5,
                              (i % 2 ? -7.5 : 7.5)});
    }
    const Vec2 pu_a{0.0, -5000.0};
    const Vec2 pu_b{-5000.0, 2000.0};
    const Vec2 sr{5000.0, 0.0};
    const double total_power = static_cast<double>(elements.size());
    TextTable t({"scheme", "PUs", "worst residual", "gain at Sr"});
    {
      const PairedBeamformer pairs(elements, w, pu_a);
      t.add_row({"pairing (Algorithm 3)", "1",
                 TextTable::sci(pairs.residual_at_pu() /
                                std::sqrt(total_power)),
                 TextTable::fmt(pairs.amplitude_at(sr) /
                                    std::sqrt(total_power),
                                3)});
      const NullspaceBeamformer ns(elements, w, {pu_a}, sr);
      t.add_row({"null-space weights", "1",
                 TextTable::sci(ns.amplitude_at(pu_a)),
                 TextTable::fmt(ns.amplitude_at(sr), 3)});
    }
    {
      const MultiPuBeamformer pairs(elements, w, {pu_a, pu_b});
      t.add_row({"pair splitting", "2",
                 TextTable::sci(pairs.worst_residual() /
                                std::sqrt(total_power)),
                 TextTable::fmt(pairs.amplitude_at(sr) /
                                    std::sqrt(total_power),
                                3)});
      const NullspaceBeamformer ns(elements, w, {pu_a, pu_b}, sr);
      t.add_row({"null-space weights", "2",
                 TextTable::sci(std::max(ns.amplitude_at(pu_a),
                                         ns.amplitude_at(pu_b))),
                 TextTable::fmt(ns.amplitude_at(sr), 3)});
    }
    t.print(std::cout);
    std::cout << "The paper's pairing needs no CSI beyond geometry and"
                 " one phase shifter per pair and\n"
                 "matches the null-space gain in the single-PU case."
                 "  With two protected PUs the\n"
                 "null-space weights achieve machine-precision nulls"
                 " but pay for them in Sr gain when\n"
                 "a protected direction crowds the desired one —"
                 " pair splitting keeps more gain at\n"
                 "the cost of O(1) residuals.  Neither dominates;"
                 " Algorithm 3 is the cheap point.\n";
  }

  // --- A9: genie CSI vs pilot-based estimation -----------------------------
  {
    std::cout << "\n--- A9: channel knowledge in the overlay testbed"
                 " (Table 2 scenario, 100k bits) ---\n";
    TextTable t({"channel knowledge", "BER with cooperation"});
    for (const unsigned pilots : {0u, 2u, 8u, 32u}) {
      OverlayBerConfig cfg = table2_single_relay_config(1);
      cfg.pilot_symbols = pilots;
      const OverlayBerResult r = run_overlay_ber(cfg);
      const std::string name =
          pilots == 0 ? "genie CSI (paper's assumption)"
                      : std::to_string(pilots) + " pilots/packet";
      t.add_row({name, TextTable::pct(r.ber_cooperative)});
    }
    t.print(std::cout);
    std::cout << "A realistic preamble (tens of pilots per 1000-bit"
                 " packet) recovers nearly all of the genie-CSI"
                 " performance.\n";
  }

  // --- A10: channel-estimation error sensitivity --------------------------
  {
    std::cout << "\n--- A10: STBC decoding with imperfect H"
                 " (H_est = H + CN(0, sigma_e^2)), Alamouti 2x2,"
                 " QPSK at the p=1e-2 operating point ---\n";
    const EbBarSolver solver;
    const double ebar = solver.solve(1e-2, 2, 2, 2);
    const double gamma_unit = ebar / solver.params().n0_w_per_hz;
    const double sym_scale = std::sqrt(2.0 * gamma_unit);
    const QamModulator modem(2);
    const StbcCode code = StbcCode::alamouti();
    const StbcDecoder decoder(code);
    TextTable t({"estimation error var", "measured BER", "vs target 1e-2"});
    for (const double sigma_e2 : {0.0, 0.01, 0.05, 0.2}) {
      // 30000 independent blocks on the sweep engine: block blk draws
      // its channel + estimation error from Rng(77, blk) and its noise
      // from Rng(78, blk) — a pure function of the block index.
      McConfig mc;
      mc.seed = 77;
      mc.pool = cli.pool();
      const McResult run = run_trials(
          30000, mc, [&](std::size_t blk, Rng& rng, McAccumulator& acc) {
            AwgnChannel noise(1.0, Rng(78, blk));
            const BitVec bits = random_bits(4, 500 + blk);
            std::vector<cplx> s = modem.modulate(bits);
            for (auto& v : s) v *= sym_scale;
            const CMatrix h = CMatrix::random_gaussian(2, 2, rng);
            const CMatrix c = code.encode(s);
            CMatrix r(2, 2);
            for (std::size_t tt = 0; tt < 2; ++tt) {
              for (std::size_t j = 0; j < 2; ++j) {
                cplx v{0.0, 0.0};
                for (std::size_t i = 0; i < 2; ++i) v += c(tt, i) * h(j, i);
                r(tt, j) = v + noise.sample();
              }
            }
            CMatrix h_est = h;
            if (sigma_e2 > 0.0) {
              for (std::size_t j = 0; j < 2; ++j) {
                for (std::size_t i = 0; i < 2; ++i) {
                  h_est(j, i) += rng.complex_gaussian(sigma_e2);
                }
              }
            }
            auto est = decoder.decode(h_est, r);
            for (auto& v : est) v /= sym_scale;
            acc.count("errors", count_bit_errors(bits, modem.demodulate(est)));
            acc.count("bits", 4);
          });
      const double ber = static_cast<double>(run.acc.counter("errors")) /
                         static_cast<double>(run.acc.counter("bits"));
      t.add_row({TextTable::fmt(sigma_e2, 2), TextTable::sci(ber),
                 TextTable::fmt(ber / 1e-2, 2) + "x"});
      Json params = Json::object();
      params.set("ablation", "A10");
      params.set("sigma_e2", sigma_e2);
      Json metrics = Json::object();
      metrics.set("measured_ber", ber);
      reporter.add_record(std::move(params), std::move(metrics), 30000,
                          run.info.trials_per_sec);
    }
    t.print(std::cout);
    std::cout << "The \"H assumed known\" assumption of §2.3 is benign"
                 " up to a few percent estimation-error power, after"
                 " which the BER target erodes.\n";
  }
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
