// Table 3 reproduction — "BER results for multi-relay overlay system".
//
// Transmitter and receiver two labs (>30 ft, concrete walls) apart;
// one vs three uniformly spaced corridor relays vs no cooperation.
// 100 000 BPSK bits, three experiments averaged, as in the paper.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/testbed/experiments.h"

int main() {
  using namespace comimo;
  std::cout << "=== Table 3: multi-relay overlay BER ===\n"
            << "100000 bits/run, BPSK, EGC; average of 3 experiments\n\n";

  double multi = 0.0;
  double single = 0.0;
  double none = 0.0;
  const int runs = 3;
  for (int run = 1; run <= runs; ++run) {
    const auto seed = static_cast<std::uint64_t>(run);
    const OverlayBerResult three =
        run_overlay_ber(table3_multi_relay_config(3, seed));
    const OverlayBerResult one =
        run_overlay_ber(table3_multi_relay_config(1, seed));
    multi += three.ber_cooperative;
    single += one.ber_cooperative;
    none += one.ber_direct;  // the shared no-cooperation baseline
  }
  multi /= runs;
  single /= runs;
  none /= runs;

  TextTable table({"Multi-relay", "Single-relay", "without cooperation"});
  table.add_row({TextTable::pct(multi), TextTable::pct(single),
                 TextTable::pct(none)});
  table.print(std::cout);
  std::cout << "\nPaper: 2.93% / 10.57% / 22.74%.\n"
            << "Orderings to preserve: multi < single < none — "
            << (multi < single && single < none ? "holds" : "VIOLATED")
            << "\n";
  return 0;
}
