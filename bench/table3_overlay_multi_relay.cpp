// Table 3 reproduction — "BER results for multi-relay overlay system".
//
// Transmitter and receiver two labs (>30 ft, concrete walls) apart;
// one vs three uniformly spaced corridor relays vs no cooperation.
// 100 000 BPSK bits, three experiments averaged, as in the paper.
//
// The three experiments run on the mc/ sweep engine (experiment k is a
// pure function of seed k+1); `--json <path>` emits comimo-bench-v1.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/engine.h"
#include "comimo/testbed/experiments.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== Table 3: multi-relay overlay BER ===\n"
            << "100000 bits/run, BPSK, EGC; average of 3 experiments\n\n";

  const std::size_t runs = 3;
  McConfig mc;
  mc.pool = cli.pool();
  const McResult run = run_trials(
      runs, mc, [&](std::size_t t, Rng& /*rng*/, McAccumulator& acc) {
        const auto seed = static_cast<std::uint64_t>(t + 1);
        const OverlayBerResult three =
            run_overlay_ber(table3_multi_relay_config(3, seed));
        const OverlayBerResult one =
            run_overlay_ber(table3_multi_relay_config(1, seed));
        acc.observe("ber_multi", three.ber_cooperative);
        acc.observe("ber_single", one.ber_cooperative);
        acc.observe("ber_none", one.ber_direct);  // shared baseline
      });
  const double multi = run.acc.stat("ber_multi").mean();
  const double single = run.acc.stat("ber_single").mean();
  const double none = run.acc.stat("ber_none").mean();

  TextTable table({"Multi-relay", "Single-relay", "without cooperation"});
  table.add_row({TextTable::pct(multi), TextTable::pct(single),
                 TextTable::pct(none)});
  table.print(std::cout);
  std::cout << "\nPaper: 2.93% / 10.57% / 22.74%.\n"
            << "Orderings to preserve: multi < single < none — "
            << (multi < single && single < none ? "holds" : "VIOLATED")
            << "\n";

  BenchReporter reporter("table3_overlay_multi_relay");
  reporter.set_threads(cli.effective_threads());
  Json params = Json::object();
  params.set("runs", runs);
  Json metrics = Json::object();
  metrics.set("ber_multi_avg", multi);
  metrics.set("ber_single_avg", single);
  metrics.set("ber_none_avg", none);
  reporter.add_record(std::move(params), std::move(metrics), runs,
                      run.info.trials_per_sec);
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
