// Million-node engine scaling: admits n SUs, d-clusters them through
// the spatial grid index, derives the cooperative link graph and MST
// backbone, routes sampled pairs, and drives one incremental kill wave
// — reporting wall times, throughput and bytes/node at each n.
//
// The committed BENCH_net_scale.json is the PR's headline artifact: its
// n = 10⁶ row shows the full admit→cluster→route pipeline completing
// with bounded per-node memory (gated by scripts/check_bench_json.sh).
// Geometry: groups of 4 SUs within 5 m, field width 150·sqrt(groups),
// so group density — and with it links/backbone degree per node — stays
// constant as n grows and the engine's O(n) behaviour is visible.
//
// `--trials <n>` replaces the size ladder with the single size n (CI
// shrinkage); `--json <path>` emits comimo-bench-v1.
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/net/comimonet.h"
#include "comimo/net/routing.h"
#include "comimo/net/spanning_tree.h"
#include "comimo/numeric/rng.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);

  std::vector<std::size_t> sizes{10'000, 100'000, 1'000'000};
  if (cli.trials) sizes = {cli.trials};

  std::cout << "=== net_scale: grid-indexed CoMIMONet at field scale ===\n"
            << "grouped geometry (4 SUs / 5 m group, width 150*sqrt(g)),"
            << " index mode: grid\n\n";

  BenchReporter reporter("net_scale");
  TextTable t({"n", "clusters", "links", "build [s]", "nodes/s",
               "routed", "kill [s]", "B/node"});

  for (const std::size_t n : sizes) {
    const std::size_t groups = std::max<std::size_t>(1, n / 4);
    const double width = 150.0 * std::sqrt(static_cast<double>(groups));

    const auto t_gen = std::chrono::steady_clock::now();
    const auto nodes = clustered_field(groups, 4, 5.0, width, width, 42);
    const double gen_s = seconds_since(t_gen);

    CoMimoNetConfig cfg;
    cfg.communication_range_m = 45.0;
    cfg.cluster_diameter_m = 14.0;
    cfg.link_range_m = 220.0;
    cfg.index_mode = NetIndexMode::kGrid;

    const auto t_build = std::chrono::steady_clock::now();
    CoMimoNet net(nodes, cfg);
    const double build_s = seconds_since(t_build);

    const auto t_route = std::chrono::steady_clock::now();
    const RoutingBackbone backbone(net);
    const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3);
    std::size_t routed_pairs = 0;
    std::size_t route_hops = 0;
    Rng pick(7, n);
    const std::size_t samples = 64;
    for (std::size_t s = 0; s < samples; ++s) {
      const auto src = static_cast<NodeId>(pick.uniform_int(n));
      const auto dst = static_cast<NodeId>(pick.uniform_int(n));
      if (!backbone.connected(net.cluster_of(src), net.cluster_of(dst))) {
        continue;
      }
      const RouteReport r = router.route(src, dst);
      ++routed_pairs;
      route_hops += r.hops.size();
    }
    const double route_s = seconds_since(t_route);

    // Incremental kill wave: ~0.2% of the field dies, the engine
    // re-clusters/re-links only around the holes.
    std::vector<NodeId> kill;
    for (NodeId id = 3; kill.size() < std::max<std::size_t>(8, n / 500);
         id += 479) {
      kill.push_back(id % static_cast<NodeId>(n));
    }
    const auto t_kill = std::chrono::steady_clock::now();
    net.remove_nodes(kill);
    const double kill_s = seconds_since(t_kill);

    const std::size_t bytes_per_node = net.approx_bytes() / n;
    const double nodes_per_s =
        build_s > 0.0 ? static_cast<double>(n) / build_s : 0.0;

    t.add_row({std::to_string(n), std::to_string(net.clusters().size()),
               std::to_string(net.links().size()),
               TextTable::fmt(build_s, 3), TextTable::fmt(nodes_per_s, 0),
               std::to_string(routed_pairs), TextTable::fmt(kill_s, 4),
               std::to_string(bytes_per_node)});

    Json params = Json::object();
    params.set("n", static_cast<std::uint64_t>(n));
    params.set("groups", static_cast<std::uint64_t>(groups));
    params.set("width_m", width);
    params.set("index_mode", "grid");
    params.set("seed", 42);
    Json metrics = Json::object();
    metrics.set("admitted", static_cast<std::uint64_t>(n));
    metrics.set("clusters",
                static_cast<std::uint64_t>(net.clusters().size()));
    metrics.set("links", static_cast<std::uint64_t>(net.links().size()));
    metrics.set("backbone_components",
                static_cast<std::uint64_t>(backbone.num_components()));
    metrics.set("routed_pairs", static_cast<std::uint64_t>(routed_pairs));
    metrics.set("route_hops", static_cast<std::uint64_t>(route_hops));
    metrics.set("gen_s", gen_s);
    metrics.set("build_s", build_s);
    metrics.set("route_sample_s", route_s);
    metrics.set("incremental_kill_s", kill_s);
    metrics.set("killed", static_cast<std::uint64_t>(kill.size()));
    metrics.set("nodes_per_s", nodes_per_s);
    metrics.set("bytes_per_node",
                static_cast<std::uint64_t>(bytes_per_node));
    reporter.add_record(std::move(params), std::move(metrics), n,
                        nodes_per_s);
  }

  t.print(std::cout);
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
