// Scaling study of the mc/ sweep engine.
//
// Runs the same waveform-level STBC BER sweep (phy/ber_sweep.h) on
// private pools of 1, 2, 4 and 8 workers, asserts the merged results
// are BIT-IDENTICAL across pool sizes (the engine's determinism
// contract), and reports the trial throughput of each configuration.
// The committed BENCH_mc_engine.json is the structured record; on a
// single-core container the speedup column measures scheduling overhead
// rather than parallel gain — see EXPERIMENTS.md.
//
// `--trials <n>` shrinks the run for CI; `--shards <n>` fans each run
// across that many forked worker processes (mc/sharded.h) — the merged
// envelope must stay bit-identical to --shards 1, which
// scripts/check_bench_json.sh diffs; `--json <path>` emits
// comimo-bench-v1.
#include <cstdlib>
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/phy/ber_sweep.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  const std::size_t blocks = cli.trials ? cli.trials : 20000;
  std::cout << "=== mc engine scaling: waveform BER sweep ===\n"
            << "2x2 Alamouti, QPSK, gamma_b = 6 dB, " << blocks
            << " STBC blocks per run\n\n";

  BenchReporter reporter("mc_engine_speedup");

  WaveformBerConfig base;
  base.b = 2;
  base.mt = 2;
  base.mr = 2;
  base.blocks = blocks;
  base.seed = 42;
  base.shards = cli.shards;
  // --adaptive turns the fixed sweep into a precision-targeted one; the
  // stopping decision is checkpoint-deterministic, so the bit-identity
  // assertion below must keep holding across pool sizes.
  base.adaptive.target_rel_ci = cli.adaptive;

  TextTable t({"threads", "bit errors", "bits", "BER", "wall [s]",
               "trials/s", "speedup vs 1T"});
  double serial_tps = 0.0;
  std::size_t ref_errors = 0;
  std::size_t ref_bits = 0;
  bool identical = true;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    WaveformBerConfig cfg = base;
    cfg.pool = &pool;
    const WaveformBerPoint p = measure_waveform_ber(cfg, 6.0);
    if (threads == 1) {
      serial_tps = p.info.trials_per_sec;
      ref_errors = p.bit_errors;
      ref_bits = p.bits;
    } else if (p.bit_errors != ref_errors || p.bits != ref_bits) {
      identical = false;
    }
    const double speedup =
        serial_tps > 0.0 ? p.info.trials_per_sec / serial_tps : 0.0;
    t.add_row({std::to_string(threads), std::to_string(p.bit_errors),
               std::to_string(p.bits), TextTable::sci(p.ber),
               TextTable::fmt(p.info.wall_s, 3),
               TextTable::fmt(p.info.trials_per_sec, 0),
               TextTable::fmt(speedup, 2) + "x"});
    Json params = Json::object();
    params.set("threads", threads);
    params.set("shards", cli.shards);
    params.set("blocks", blocks);
    params.set("b", base.b);
    params.set("mt", base.mt);
    params.set("mr", base.mr);
    params.set("gamma_b_db", 6.0);
    if (cli.adaptive > 0.0) params.set("target_rel_ci", cli.adaptive);
    Json metrics = Json::object();
    metrics.set("bit_errors", p.bit_errors);
    metrics.set("bits", p.bits);
    metrics.set("ber", p.ber);
    metrics.set("analytic_ber", p.analytic);
    metrics.set("speedup_vs_1t", speedup);
    if (cli.adaptive > 0.0) {
      metrics.set("trials_executed", p.trials_executed);
      metrics.set("target_met", p.target_met ? 1 : 0);
      metrics.set("rel_ci", p.rel_ci);
    }
    reporter.add_record(std::move(params), std::move(metrics), blocks,
                        p.info.trials_per_sec);
  }
  t.print(std::cout);
  std::cout << "\nbit-identical across pool sizes: "
            << (identical ? "yes" : "NO — DETERMINISM VIOLATED") << "\n"
            << "(hardware_concurrency = "
            << std::thread::hardware_concurrency() << ")\n";

  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  // The determinism contract is the point of this bench; fail loudly.
  return identical ? 0 : 1;
}
