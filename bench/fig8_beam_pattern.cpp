// Fig. 8 reproduction — "Performance of the cooperative beamformer for
// interweave system".
//
// Two transmit elements a half wavelength apart form a null at 120°;
// the receiver sweeps a 2 m-diameter semicircle in 20° steps.  Three
// curves, as in the paper: the designed (simulated) radiation pattern,
// the measured beamformer amplitude through the multipath channel, and
// the measured SISO reference.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/testbed/experiments.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== Figure 8: cooperative beamformer pattern ===\n"
            << "null designed at 120 deg; receiver on a 2 m-diameter"
               " semicircle, 20 deg steps\n\n";

  BeamPatternConfig cfg;
  cfg.null_angle_deg = 120.0;
  cfg.bits_per_point = 4000;
  const BeamPatternResult r = run_beam_pattern(cfg);

  SeriesChart chart("angle [deg]", r.angles_deg);
  chart.add_series("designed pattern", r.ideal);
  chart.add_series("measured w/ beamformer", r.measured_coop);
  chart.add_series("measured SISO", r.measured_siso);
  chart.print(std::cout);

  std::cout << "\nObservations (paper / measured):\n";
  std::cout << "  - null direction: 120 deg / minimum at ";
  double best_angle = r.angles_deg.front();
  double best = r.measured_coop.front();
  for (std::size_t i = 0; i < r.angles_deg.size(); ++i) {
    if (r.measured_coop[i] < best) {
      best = r.measured_coop[i];
      best_angle = r.angles_deg[i];
    }
  }
  std::cout << TextTable::fmt(best_angle, 0) << " deg\n";
  std::cout << "  - null not zero indoors (multipath): residual "
            << TextTable::fmt(r.null_residual(), 3) << "\n";
  std::size_t beats = 0;
  std::size_t eligible = 0;
  for (std::size_t i = 0; i < r.angles_deg.size(); ++i) {
    if (std::abs(r.angles_deg[i] - cfg.null_angle_deg) <= 20.0) continue;
    ++eligible;
    if (r.measured_coop[i] > r.measured_siso[i]) ++beats;
  }
  std::cout << "  - beamformer beats SISO outside 20 deg of the null at "
            << beats << "/" << eligible << " measured angles\n";

  BenchReporter reporter("fig8_beam_pattern");
  reporter.set_threads(cli.effective_threads());
  for (std::size_t i = 0; i < r.angles_deg.size(); ++i) {
    Json params = Json::object();
    params.set("angle_deg", r.angles_deg[i]);
    Json metrics = Json::object();
    metrics.set("ideal", r.ideal[i]);
    metrics.set("measured_coop", r.measured_coop[i]);
    metrics.set("measured_siso", r.measured_siso[i]);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  Json params = Json::object();
  params.set("anchor", true);
  Json metrics = Json::object();
  metrics.set("null_angle_deg", best_angle);
  metrics.set("null_residual", r.null_residual());
  metrics.set("beats_siso", beats);
  metrics.set("eligible_angles", eligible);
  reporter.add_record(std::move(params), std::move(metrics));
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
