// Extension study: rateless coded transport (RLNC) vs stop-and-wait ARQ
// under burst loss.
//
// Retransmission recovers well from independent slot erasures but pays
// per-packet round trips; when the channel dwells in a bad state
// (Gilbert–Elliott bursts), a short retry budget exhausts mid-burst and
// the packet is lost.  Random linear network coding amortizes recovery
// across a generation: any k innovative coded packets reconstruct the
// block, so a burst costs extra coded transmissions instead of
// delivery failures, and relays recombine what they heard without
// decoding.
//
// Both transports face the identical fault process — the same seeded
// i.i.d. slot erasures and the same Gilbert–Elliott trace, drawn on the
// same transmission ordinals — across a 3-level burst sweep
// (off / mild / heavy).  6 runs shard across the mc/ sweep engine;
// `--json` emits comimo-bench-v1 (the committed BENCH_rlnc_vs_arq.json
// is gated by scripts/check_bench_json.sh: at the heavy-burst corner
// the coded transport must not deliver less than ARQ).
#include <iostream>
#include <string>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/engine.h"
#include "comimo/resilience/resilient_sim.h"

namespace {

struct BurstLevel {
  const char* name;
  bool enabled;
  double p_good_to_bad;
  double p_bad_to_good;
  double loss_bad;
  double iid_erasure;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== extension: RLNC coded transport vs ARQ under burst"
               " loss ===\n"
            << "42 SUs in 14 groups, 300 packet rounds; ARQ budget 3"
               " attempts/hop, RLNC k=8 (GF(256),\n"
            << "systematic, relay recoding); identical seeded fault"
               " streams for both transports\n\n";

  const auto nodes = clustered_field(14, 3, 6.0, 450.0, 450.0, /*seed=*/11,
                                     /*battery_lo=*/150.0,
                                     /*battery_hi=*/200.0);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 16.0;
  net_cfg.link_range_m = 280.0;
  const CoMimoNet net(nodes, net_cfg);

  // Escalating burstiness; the i.i.d. floor drops as the burst process
  // takes over so the *total* loss rate stays comparable — what changes
  // is the correlation structure, which is exactly what separates the
  // two transports.
  const std::vector<BurstLevel> levels{
      {"off", false, 0.0, 0.0, 0.0, 0.15},
      {"mild", true, 0.02, 0.25, 0.50, 0.10},
      {"heavy", true, 0.05, 0.08, 0.85, 0.05},
  };

  std::vector<ResilienceReport> reports(levels.size() * 2);
  McConfig mc;
  mc.pool = cli.pool();
  (void)run_trials(
      reports.size(), mc, [&](std::size_t t, Rng& /*rng*/, McAccumulator&) {
        const BurstLevel& lvl = levels[t / 2];
        const bool rlnc = (t % 2 == 1);
        ResilienceConfig cfg;
        cfg.rounds = 300;
        cfg.bits_per_packet = 4e4;
        cfg.traffic_seed = 3;
        cfg.faults.enabled = true;
        cfg.faults.seed = 5;
        cfg.faults.slot_erasure_prob = lvl.iid_erasure;
        cfg.faults.burst.enabled = lvl.enabled;
        if (lvl.enabled) {
          cfg.faults.burst.p_good_to_bad = lvl.p_good_to_bad;
          cfg.faults.burst.p_bad_to_good = lvl.p_bad_to_good;
          cfg.faults.burst.loss_bad = lvl.loss_bad;
        }
        cfg.arq.max_attempts = 3;
        if (rlnc) {
          cfg.rlnc.enabled = true;
          cfg.rlnc.code.generation_size = 8;
          cfg.rlnc.code.packet_bytes = 16;
          cfg.rlnc.max_overhead_packets = 48;
        }
        reports[t] = simulate_with_faults(net, SystemParams{}, cfg);
      });

  BenchReporter reporter("ext_rlnc_vs_arq");
  reporter.set_threads(cli.effective_threads());
  TextTable t({"transport", "burst", "delivery", "overhead pkts",
               "energy/bit uJ", "s/delivered", "goodput kbps"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const BurstLevel& lvl = levels[i / 2];
    const bool rlnc = (i % 2 == 1);
    const ResilienceReport& r = reports[i];
    const std::size_t overhead =
        rlnc ? r.rlnc_overhead_packets : r.retransmissions;
    const double energy_per_bit =
        r.delivered_bits > 0 ? r.energy_spent_j / r.delivered_bits : 0.0;
    const double latency_s =
        r.packets_delivered > 0
            ? r.delivered_latency_s / static_cast<double>(r.packets_delivered)
            : 0.0;
    // Unconditional latency: total elapsed time per *delivered* packet.
    // The conditional mean above is survivorship-biased — a transport
    // that drops every hard packet reports a flattering latency over
    // the easy ones it kept; this metric charges the time burned on
    // packets that were ultimately lost.
    const double time_per_delivered_s =
        r.packets_delivered > 0
            ? r.total_time_s / static_cast<double>(r.packets_delivered)
            : 0.0;
    t.add_row({rlnc ? "rlnc" : "arq", lvl.name,
               TextTable::fmt(r.delivery_ratio, 3),
               std::to_string(overhead),
               TextTable::fmt(energy_per_bit * 1e6, 2),
               TextTable::fmt(time_per_delivered_s, 1),
               TextTable::fmt(r.goodput_bps / 1e3, 1)});
    Json params = Json::object();
    params.set("transport", rlnc ? "rlnc" : "arq");
    params.set("burst", lvl.name);
    params.set("burst_enabled", lvl.enabled);
    params.set("p_good_to_bad", lvl.p_good_to_bad);
    params.set("p_bad_to_good", lvl.p_bad_to_good);
    params.set("loss_bad", lvl.loss_bad);
    params.set("iid_erasure_prob", lvl.iid_erasure);
    Json metrics = Json::object();
    metrics.set("delivery_ratio", r.delivery_ratio);
    metrics.set("overhead_packets", static_cast<std::uint64_t>(overhead));
    metrics.set("energy_per_delivered_bit_j", energy_per_bit);
    metrics.set("mean_delivery_latency_s", latency_s);
    metrics.set("time_per_delivered_packet_s", time_per_delivered_s);
    metrics.set("goodput_bps", r.goodput_bps);
    metrics.set("energy_spent_j", r.energy_spent_j);
    metrics.set("failures",
                static_cast<std::uint64_t>(rlnc ? r.rlnc_failures
                                                : r.arq_failures));
    if (rlnc) {
      metrics.set("rlnc_packets_sent",
                  static_cast<std::uint64_t>(r.rlnc_packets_sent));
      metrics.set("rlnc_recoded_packets",
                  static_cast<std::uint64_t>(r.rlnc_recoded_packets));
      metrics.set("rlnc_feedback_rounds",
                  static_cast<std::uint64_t>(r.rlnc_feedback_rounds));
      metrics.set("rlnc_recode_energy_j", r.rlnc_recode_energy_j);
    }
    reporter.add_record(std::move(params), std::move(metrics));
  }
  t.print(std::cout);
  std::cout << "\noverhead pkts = ARQ retransmissions / RLNC coded packets"
               " beyond the initial k per hop;\n"
            << "s/delivered = total elapsed time per delivered packet"
               " (unconditional: charges time\n"
            << "burned on lost packets, unlike a survivor-only latency"
               " mean).\n"
            << "energy/bit charges every coded transmission, relay"
               " recombination, and retry through\n"
            << "the same battery ledger.  Under heavy bursts the 3-attempt"
               " ARQ budget exhausts inside\n"
            << "a bad dwell, while the coded transport converts the same"
               " losses into overhead packets\n"
            << "and keeps delivering — the fault streams are identical"
               " draw-for-draw across each pair.\n";
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
