// Table 1 reproduction — "Amplitude of signal waves from two cooperative
// SUs in Interweave System".
//
// The paper's simulation (§6.3): St1, St2 sit on the vertical axis 15 m
// apart (r = w/2, w = 30 m); 20 candidate primary receivers are placed
// uniformly at random in a 300 m-diameter circle centered at St1; the
// pair picks the PU per Algorithm 3 (far + least collinear with the
// St→Sr direction), imposes δ, and the amplitude of the superposed wave
// at the secondary receiver Sr is recorded.  10 trials; the paper
// reports 1.87–1.89 vs a SISO reference of 1.0.
//
// The paper does not state Sr's position.  We place Sr 150 m away at
// 76.6° from the array axis — 13.4° off broadside — the one free
// parameter; the broadside-ish placement is what Algorithm 3's
// perpendicularity heuristic drives toward (see DESIGN.md §4).
//
// The 10 trials run on the mc/ sweep engine (each trial's randomness is
// Rng(2013, trial) — a pure function of the trial index), so `--threads`
// changes nothing but the wall time.  `--json <path>` emits the
// comimo-bench-v1 record set.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/common/units.h"
#include "comimo/interweave/pair_beamformer.h"
#include "comimo/interweave/pu_selection.h"
#include "comimo/mc/engine.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/stats.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== Table 1: interweave pair amplitude at Sr ===\n"
            << "r = 15 m, w = 2r = 30 m, 20 random PU candidates in a"
               " 300 m circle, 10 trials\n\n";

  const PairGeometry geom{Vec2{0.0, 7.5}, Vec2{0.0, -7.5}};
  const double wavelength = 30.0;
  const double sr_angle = deg_to_rad(76.6);  // from the array axis
  const Vec2 axis = (geom.st2 - geom.st1).normalized();
  const Vec2 perp{-axis.y, axis.x};
  const Vec2 sr = geom.center() +
                  (axis * std::cos(sr_angle) + perp * std::sin(sr_angle)) *
                      150.0;

  struct TrialOut {
    Vec2 pu{};
    double amplitude = 0.0;
    double residual = 0.0;
  };
  const std::size_t trials = 10;
  std::vector<TrialOut> outs(trials);

  McConfig mc;
  mc.seed = 2013;
  mc.pool = cli.pool();
  const McResult run = run_trials(
      trials, mc, [&](std::size_t t, Rng& /*rng*/, McAccumulator& acc) {
        // Historical stream numbering: trial t draws from Rng(2013, t+1),
        // still a pure function of the trial index.
        Rng rng(2013, t + 1);
        std::vector<Vec2> candidates;
        for (int i = 0; i < 20; ++i) {
          candidates.push_back(rng.point_in_disk(geom.st1, 150.0));
        }
        // Weighting chosen to mirror the paper's picks, which hug the
        // array axis (perpendicular to St→Sr): the angle term dominates.
        const PuSelectionWeights weights{0.25, 2.0};
        const std::size_t pick =
            select_pu(geom.center(), sr, candidates, weights);
        const Vec2 pu = candidates[pick];
        const NullSteeringPair pair(geom, wavelength, pu);
        TrialOut& out = outs[t];
        out.pu = pu;
        out.amplitude = pair.amplitude_at(sr);
        out.residual = pair.residual_at_pu();
        acc.observe("amplitude", out.amplitude);
      });

  BenchReporter reporter("table1_interweave_amplitude");
  reporter.set_threads(cli.effective_threads());
  TextTable table({"Test Number", "Location of Picked Pr", "Amplitude",
                   "Residual at Pr"});
  for (std::size_t t = 0; t < trials; ++t) {
    const TrialOut& out = outs[t];
    table.add_row({std::to_string(t + 1),
                   "(" + TextTable::fmt(out.pu.x, 0) + ", " +
                       TextTable::fmt(out.pu.y, 0) + ")",
                   TextTable::fmt(out.amplitude, 2),
                   TextTable::fmt(out.residual, 3)});
    Json params = Json::object();
    params.set("trial", t + 1);
    Json metrics = Json::object();
    metrics.set("amplitude", out.amplitude);
    metrics.set("residual_at_pu", out.residual);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  const RunningStats& amplitude_stats = run.acc.stat("amplitude");
  table.print(std::cout);
  std::cout << "\nAverage amplitude at Sr: "
            << TextTable::fmt(amplitude_stats.mean(), 2)
            << "x the SISO reference (paper: 1.87, range 1.87-1.89)\n"
            << "Range: [" << TextTable::fmt(amplitude_stats.min(), 2)
            << ", " << TextTable::fmt(amplitude_stats.max(), 2) << "]\n";

  Json params = Json::object();
  params.set("summary", true);
  Json metrics = Json::object();
  metrics.set("mean_amplitude", amplitude_stats.mean());
  metrics.set("min_amplitude", amplitude_stats.min());
  metrics.set("max_amplitude", amplitude_stats.max());
  reporter.add_record(std::move(params), std::move(metrics), trials,
                      run.info.trials_per_sec);
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
