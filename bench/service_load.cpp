// Load generator for the long-lived simulation service (service/).
//
// Three phases, each against a fresh in-process daemon on its own
// AF_UNIX socket:
//
//   load         -- N client sessions pipeline a mixed job stream
//                   (waveform_ber / ebbar_min / ping) and drain the
//                   replies; reports throughput and the daemon's
//                   p50/p99 job latency.
//   backpressure -- a 1-worker, 2-slot daemon is flooded with stall
//                   jobs; the rejected count must be positive and the
//                   accounting identity submitted == accepted +
//                   rejected must hold (the check_bench_json.sh gate).
//   replay       -- the same session seed and request sequence runs
//                   twice (fresh connection each time) on a 4-worker
//                   daemon; replay_identical = 1 iff every kResult
//                   payload matched byte for byte.
//
// Flags: the shared bench CLI (--json, --threads => service workers,
// --trials => jobs per client, --obs) plus --clients <n> and
// --queue <n>.  The committed BENCH_service_load.json is written by
// scripts/reproduce.sh from this binary.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/service/client.h"
#include "comimo/service/daemon.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace comimo;
using namespace comimo::service;

namespace {

std::string socket_path(const char* phase) {
#if defined(__unix__) || defined(__APPLE__)
  return "/tmp/comimo_svc_load_" + std::to_string(::getpid()) + "_" + phase +
         ".sock";
#else
  return std::string("comimo_svc_load_") + phase + ".sock";
#endif
}

EbBarTable::Spec small_ebbar_spec() {
  EbBarTable::Spec spec;
  spec.ber_targets = {1e-2, 1e-3};
  spec.b_min = 1;
  spec.b_max = 4;
  spec.m_max = 2;
  return spec;
}

JobSpec mixed_job(std::size_t i) {
  switch (i % 4) {
    case 0: {
      JobSpec spec;
      spec.kind = "waveform_ber";
      spec.params = {{"b", "2"},
                     {"mt", "2"},
                     {"mr", "2"},
                     {"blocks", "300"},
                     {"gamma_b_db", "6"},
                     {"seed", std::to_string(i)}};
      return spec;
    }
    case 1: {
      JobSpec spec;
      spec.kind = "ebbar_min";
      spec.params = {{"p", "1e-3"}, {"mt", "2"}, {"mr", "2"}};
      return spec;
    }
    case 2: {
      JobSpec spec;
      spec.kind = "net_churn";
      spec.params = {{"nodes", "150"},
                     {"rounds", "3"},
                     {"kill_per_round", "6"},
                     {"seed", std::to_string(i)}};
      return spec;
    }
    default:
      return JobSpec{"ping", {}};
  }
}

Json stats_metrics(const ServiceDaemon::Stats& stats, double wall_s,
                   std::size_t ok, std::size_t errors) {
  Json metrics = Json::object();
  metrics.set("jobs_submitted", stats.jobs_submitted);
  metrics.set("jobs_accepted", stats.jobs_accepted);
  metrics.set("jobs_rejected", stats.jobs_rejected);
  metrics.set("jobs_completed", stats.jobs_completed);
  metrics.set("jobs_failed", stats.jobs_failed);
  metrics.set("replies_ok", static_cast<std::uint64_t>(ok));
  metrics.set("replies_error", static_cast<std::uint64_t>(errors));
  metrics.set("latency_p50_ms", stats.latency_p50_ms);
  metrics.set("latency_p99_ms", stats.latency_p99_ms);
  metrics.set("throughput_jobs_per_s",
              wall_s > 0.0
                  ? static_cast<double>(stats.jobs_completed) / wall_s
                  : 0.0);
  return metrics;
}

}  // namespace

int main(int argc, char** argv) {
  if (!sockets_available()) {
    std::cout << "service_load: no AF_UNIX sockets on this platform\n";
    return 0;
  }
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::size_t clients = 4;
  std::size_t queue = 32;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0) {
      clients = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--queue") == 0) {
      queue = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  clients = std::max<std::size_t>(1, clients);
  const std::size_t jobs_per_client = cli.trials ? cli.trials : 40;
  const unsigned workers = cli.threads ? cli.threads : 2;

  BenchReporter reporter("service_load");
  reporter.set_threads(workers);
  TextTable table({"phase", "submitted", "accepted", "rejected", "p50 [ms]",
                   "p99 [ms]", "jobs/s"});

  // ---- phase 1: mixed load ------------------------------------------
  {
    ServiceConfig cfg;
    cfg.socket_path = socket_path("load");
    cfg.service_workers = workers;
    cfg.mc_threads = 1;
    cfg.queue_capacity = std::max<std::size_t>(1, queue);
    cfg.ebbar_spec = small_ebbar_spec();
    ServiceDaemon daemon(cfg);

    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> errors{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ServiceClient client(cfg.socket_path, 1000 + c);
        // Pipeline in windows so the bounded queue rejects little
        // under normal load but the socket stays busy.
        const std::size_t window = 4;
        std::size_t sent = 0;
        std::size_t drained = 0;
        while (drained < jobs_per_client) {
          while (sent < jobs_per_client && sent - drained < window) {
            (void)client.submit(mixed_job(sent));
            ++sent;
          }
          const auto reply = client.next_reply();
          ++drained;
          if (reply.type == FrameType::kResult) {
            ok.fetch_add(1, std::memory_order_relaxed);
          } else if (reply.type == FrameType::kReject) {
            // Honor the hint, then resubmit the job we lost.
            const auto kv = parse_kv_text(reply.body);
            const auto it = kv.find("retry_after_ms");
            const unsigned long wait_ms =
                it == kv.end() ? 10UL
                               : std::strtoul(it->second.c_str(), nullptr, 10);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::min(wait_ms, 100UL)));
            --sent;  // account: one fewer in flight
            (void)client.submit(mixed_job(sent));
            ++sent;
          } else {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    const auto stats = daemon.stats();
    daemon.stop();

    table.add_row({"load", std::to_string(stats.jobs_submitted),
               std::to_string(stats.jobs_accepted),
               std::to_string(stats.jobs_rejected),
               std::to_string(stats.latency_p50_ms),
               std::to_string(stats.latency_p99_ms),
               std::to_string(static_cast<double>(stats.jobs_completed) /
                              std::max(wall_s, 1e-9))});
    Json params = Json::object();
    params.set("phase", "load");
    params.set("clients", static_cast<std::uint64_t>(clients));
    params.set("jobs_per_client",
               static_cast<std::uint64_t>(jobs_per_client));
    params.set("service_workers", workers);
    params.set("queue_capacity", static_cast<std::uint64_t>(queue));
    reporter.add_record(std::move(params),
                        stats_metrics(stats, wall_s, ok.load(), errors.load()),
                        stats.jobs_completed,
                        static_cast<double>(stats.jobs_completed) /
                            std::max(wall_s, 1e-9));
  }

  // ---- phase 2: backpressure ----------------------------------------
  {
    ServiceConfig cfg;
    cfg.socket_path = socket_path("bp");
    cfg.service_workers = 1;
    cfg.mc_threads = 1;
    cfg.queue_capacity = 2;
    cfg.retry_after_ms = 20;
    cfg.ebbar_spec = small_ebbar_spec();
    ServiceDaemon daemon(cfg);

    std::atomic<std::size_t> rejected_seen{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    const std::size_t flood_clients = std::max<std::size_t>(2, clients / 2);
    for (std::size_t c = 0; c < flood_clients; ++c) {
      threads.emplace_back([&, c] {
        ServiceClient client(cfg.socket_path, 2000 + c);
        JobSpec stall;
        stall.kind = "stall_ms";
        stall.params["ms"] = "40";
        const std::size_t burst = 12;
        for (std::size_t i = 0; i < burst; ++i) (void)client.submit(stall);
        for (std::size_t i = 0; i < burst; ++i) {
          if (client.next_reply().type == FrameType::kReject) {
            rejected_seen.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    const double wall_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    const auto stats = daemon.stats();
    daemon.stop();

    table.add_row({"backpressure", std::to_string(stats.jobs_submitted),
               std::to_string(stats.jobs_accepted),
               std::to_string(stats.jobs_rejected),
               std::to_string(stats.latency_p50_ms),
               std::to_string(stats.latency_p99_ms), "-"});
    Json params = Json::object();
    params.set("phase", "backpressure");
    params.set("clients", static_cast<std::uint64_t>(flood_clients));
    params.set("queue_capacity", 2);
    params.set("service_workers", 1);
    Json metrics = stats_metrics(stats, wall_s, 0, 0);
    metrics.set("rejects_observed_by_clients",
                static_cast<std::uint64_t>(rejected_seen.load()));
    reporter.add_record(std::move(params), std::move(metrics));
  }

  // ---- phase 3: replay ----------------------------------------------
  {
    ServiceConfig cfg;
    cfg.socket_path = socket_path("replay");
    cfg.service_workers = 4;
    cfg.mc_threads = 1;
    cfg.queue_capacity = 16;
    cfg.ebbar_spec = small_ebbar_spec();
    ServiceDaemon daemon(cfg);

    const auto run_once = [&cfg] {
      ServiceClient client(cfg.socket_path, 777);
      std::vector<std::string> out;
      for (std::size_t i = 0; i < 12; ++i) {
        out.push_back(client.call(mixed_job(i)).body);
      }
      return out;
    };
    const auto first = run_once();
    const auto second = run_once();  // fresh session, same seed
    const bool identical = first == second;
    const auto stats = daemon.stats();
    daemon.stop();

    table.add_row({"replay", std::to_string(stats.jobs_submitted),
               std::to_string(stats.jobs_accepted),
               std::to_string(stats.jobs_rejected),
               std::to_string(stats.latency_p50_ms),
               std::to_string(stats.latency_p99_ms),
               identical ? "identical" : "DIVERGED"});
    Json params = Json::object();
    params.set("phase", "replay");
    params.set("service_workers", 4);
    params.set("session_seed", std::uint64_t{777});
    Json metrics = stats_metrics(stats, 0.0, 0, 0);
    metrics.set("replay_identical", identical ? 1 : 0);
    reporter.add_record(std::move(params), std::move(metrics));
    if (!identical) {
      std::cerr << "service_load: replay DIVERGED\n";
      return 1;
    }
  }

  table.print(std::cout);
  if (!cli.json_path.empty()) {
    reporter.write_file(cli.json_path);
    std::cout << "wrote " << cli.json_path << "\n";
  }
  return 0;
}
