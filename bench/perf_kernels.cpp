// Kernel micro-benchmarks (google-benchmark): the hot paths a planner
// or simulator spends its time in — the ē_b solve, STBC encode/decode,
// GMSK modulation, the CSMA/CA event loop and the framing layer.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "comimo/energy/ebbar.h"
#include "comimo/energy/ebbar_table.h"
#include "comimo/net/csma_ca.h"
#include "comimo/net/spatial_csma.h"
#include "comimo/numeric/rng.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/gmsk.h"
#include "comimo/phy/link_adaptation.h"
#include "comimo/phy/stbc.h"
#include "comimo/testbed/coop_hop_sim.h"
#include "comimo/testbed/framing.h"

namespace {

using namespace comimo;

void BM_EbBarSolve(benchmark::State& state) {
  const EbBarSolver solver;
  const auto mt = static_cast<unsigned>(state.range(0));
  const auto mr = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(1e-3, 4, mt, mr));
  }
}
BENCHMARK(BM_EbBarSolve)->Args({1, 1})->Args({2, 2})->Args({4, 4});

void BM_EbBarQuadrature(benchmark::State& state) {
  const EbBarSolver solver;
  const double e = solver.solve(1e-3, 4, 2, 2);
  const auto points = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.average_ber_quadrature(e, 4, 2, 2, points));
  }
}
BENCHMARK(BM_EbBarQuadrature)->Arg(16)->Arg(64)->Arg(128);

void BM_EbBarTableBuild(benchmark::State& state) {
  const EbBarSolver solver;
  EbBarTable::Spec spec;
  spec.ber_targets = {1e-2, 1e-3};
  spec.b_max = static_cast<int>(state.range(0));
  spec.m_max = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EbBarTable::build(solver, spec));
  }
}
BENCHMARK(BM_EbBarTableBuild)->Arg(4)->Arg(16);

void BM_StbcEncodeDecode(benchmark::State& state) {
  const auto mt = static_cast<std::size_t>(state.range(0));
  const StbcCode code = StbcCode::for_antennas(mt);
  const StbcDecoder decoder(code);
  Rng rng(1);
  std::vector<cplx> s(code.symbols_per_block());
  for (auto& v : s) v = rng.complex_gaussian();
  const CMatrix h = CMatrix::random_gaussian(2, mt, rng);
  std::size_t symbols = 0;
  for (auto _ : state) {
    const CMatrix c = code.encode(s);
    CMatrix r(code.block_length(), 2);
    for (std::size_t t = 0; t < code.block_length(); ++t) {
      for (std::size_t j = 0; j < 2; ++j) {
        cplx acc{0.0, 0.0};
        for (std::size_t i = 0; i < mt; ++i) acc += c(t, i) * h(j, i);
        r(t, j) = acc;
      }
    }
    benchmark::DoNotOptimize(decoder.decode(h, r));
    symbols += code.symbols_per_block();
  }
  state.SetItemsProcessed(static_cast<int64_t>(symbols));
}
BENCHMARK(BM_StbcEncodeDecode)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_GmskModulate(benchmark::State& state) {
  const GmskModem modem;
  const BitVec bits = random_bits(static_cast<std::size_t>(state.range(0)), 3);
  std::size_t total = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(modem.modulate(bits));
    total += bits.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_GmskModulate)->Arg(1000)->Arg(12000);

void BM_GmskDemodulate(benchmark::State& state) {
  const GmskModem modem;
  const BitVec bits = random_bits(static_cast<std::size_t>(state.range(0)), 4);
  const auto samples = modem.modulate(bits);
  std::size_t total = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(modem.demodulate(samples, bits.size()));
    total += bits.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_GmskDemodulate)->Arg(1000)->Arg(12000);

void BM_CsmaCaSimulation(benchmark::State& state) {
  const auto stations_n = static_cast<std::size_t>(state.range(0));
  std::vector<CsmaStation> stations;
  for (std::size_t i = 0; i < stations_n; ++i) {
    stations.push_back({static_cast<NodeId>(i), 20.0, 12000});
  }
  for (auto _ : state) {
    CsmaCaConfig cfg;
    cfg.seed = 1;
    CsmaCaSimulator sim(cfg, stations);
    benchmark::DoNotOptimize(sim.run(2.0));
  }
}
BENCHMARK(BM_CsmaCaSimulation)->Arg(2)->Arg(8)->Arg(32);

void BM_FrameRoundTrip(benchmark::State& state) {
  const Framer framer;
  Packet p;
  p.sequence = 42;
  p.payload.assign(static_cast<std::size_t>(state.range(0)), 0xA5);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const BitVec bits = framer.frame(p);
    benchmark::DoNotOptimize(framer.parse(bits));
    bytes += p.payload.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_FrameRoundTrip)->Arg(64)->Arg(1500);

void BM_CoopHopWaveform(benchmark::State& state) {
  const auto mt = static_cast<unsigned>(state.range(0));
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg;
  cfg.mt = mt;
  cfg.mr = 2;
  cfg.ber = 1e-2;
  CoopHopSimConfig sim;
  sim.plan = planner.plan(cfg, BSelectionRule::kMinTotalPa);
  sim.bits = 2000;
  std::size_t bits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_cooperative_hop(sim));
    bits += sim.bits;
  }
  state.SetItemsProcessed(static_cast<int64_t>(bits));
}
BENCHMARK(BM_CoopHopWaveform)->Arg(1)->Arg(2)->Arg(3);

void BM_SpatialCsma(benchmark::State& state) {
  const auto stations_n = static_cast<std::size_t>(state.range(0));
  std::vector<SpatialStation> stations;
  Rng rng(7);
  for (std::size_t i = 0; i < stations_n; ++i) {
    SpatialStation s;
    s.id = static_cast<NodeId>(i);
    s.position = rng.point_in_disk(Vec2{250.0, 250.0}, 240.0);
    s.destination = rng.point_in_disk(s.position, 50.0);
    s.arrival_rate_fps = 10.0;
    stations.push_back(s);
  }
  for (auto _ : state) {
    SpatialCsmaConfig cfg;
    cfg.seed = 1;
    SpatialCsmaSimulator sim(cfg, stations);
    benchmark::DoNotOptimize(sim.run(1.0));
  }
}
BENCHMARK(BM_SpatialCsma)->Arg(4)->Arg(16);

void BM_AdaptiveLink(benchmark::State& state) {
  LinkAdaptationConfig cfg;
  AdaptiveLinkScenario sc;
  sc.blocks = 200;
  std::size_t bits = 0;
  for (auto _ : state) {
    const AdaptationRun run = simulate_adaptive_link(cfg, sc);
    benchmark::DoNotOptimize(run.ber);
    bits += run.bits;
  }
  state.SetItemsProcessed(static_cast<int64_t>(bits));
}
BENCHMARK(BM_AdaptiveLink);

}  // namespace

// google-benchmark has its own CLI and JSON emitter; translate the
// repo-wide `--json <path>` convention into --benchmark_out so that
// scripts/check_bench_json.sh can drive every bench binary uniformly
// (this one is validated loosely — google-benchmark's schema, not
// comimo-bench-v1).
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc) + 2);
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      storage.push_back(std::string("--benchmark_out=") + argv[++i]);
      storage.push_back("--benchmark_out_format=json");
    } else if (arg == "--threads" || arg == "--trials") {
      ++i;  // accepted-and-ignored common flags (kernel benches are serial)
    } else {
      storage.push_back(arg);
    }
  }
  for (auto& s : storage) args.push_back(s.data());
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
