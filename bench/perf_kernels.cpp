// Kernel benchmarks, two modes in one binary:
//   * `--json <path>`: the batched link-kernel comparison — the
//     historical allocating per-block BER path vs. the LinkWorkspace
//     path vs. the batch-SoA SIMD path on the pinned dispatch tier —
//     emitted as comimo-bench-v1, with a median-of-reps ns_per_block
//     and a steady-state heap-allocation count per block from the
//     operator-new hook below.  All paths consume identical per-block
//     RNG streams, and the bench aborts unless their bit-error counts
//     match exactly.
//   * otherwise: the google-benchmark micro suite over the hot paths a
//     planner or simulator spends its time in — the ē_b solve, STBC
//     encode/decode, GMSK modulation, CSMA/CA and framing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>
#include <type_traits>
#include <vector>

#include "comimo/common/bench_json.h"
#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/energy/ebbar.h"
#include "comimo/energy/ebbar_table.h"
#include "comimo/net/csma_ca.h"
#include "comimo/net/spatial_csma.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/simd/simd.h"
#include "comimo/phy/ber_sweep.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/link_batch.h"
#include "comimo/phy/gmsk.h"
#include "comimo/phy/link_adaptation.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"
#include "comimo/testbed/coop_hop_sim.h"
#include "comimo/testbed/framing.h"

// ---------------------------------------------------------------------
// Heap-allocation counter: every global operator new is routed through
// malloc and bumps one relaxed atomic.  Bench binary only — the library
// itself is never built with these hooks.  All replaceable forms are
// covered so sized/array/aligned deallocation stays matched.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = counted_alloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}
void* operator new(std::size_t size, std::align_val_t al) {
  if (void* p =
          counted_aligned_alloc(size, static_cast<std::size_t>(al))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ::operator new(size, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

using namespace comimo;

// ---------------------------------------------------------------------
// Link-kernel comparison (the --json mode).

/// One block of the historical allocating BER path, kept verbatim as
/// the baseline: every buffer is constructed inside the block.
std::size_t allocating_block(const Modulator& modem, const StbcCode& code,
                             const StbcDecoder& decoder, unsigned mt,
                             unsigned mr, double sym_scale,
                             std::size_t bits_per_block, Rng& rng) {
  BitVec bits(bits_per_block);
  for (auto& bit : bits) bit = rng.bernoulli(0.5) ? 1 : 0;
  std::vector<cplx> syms = modem.modulate(bits);
  for (auto& s : syms) s *= sym_scale;

  const CMatrix h = CMatrix::random_gaussian(mr, mt, rng);
  const CMatrix c = code.encode(syms);
  CMatrix received(code.block_length(), mr);
  for (std::size_t t = 0; t < code.block_length(); ++t) {
    for (unsigned j = 0; j < mr; ++j) {
      cplx v{0.0, 0.0};
      for (unsigned i = 0; i < mt; ++i) {
        v += c(t, i) * h(j, i);
      }
      received(t, j) = v + rng.complex_gaussian(1.0);
    }
  }

  std::vector<cplx> est = decoder.decode(h, received);
  for (auto& v : est) v /= sym_scale;
  const BitVec decoded = modem.demodulate(est);
  return count_bit_errors(bits, decoded);
}

struct LinkKernelRun {
  double ns_per_block = 0.0;
  double allocs_per_block = 0.0;
  std::size_t bit_errors = 0;
  std::size_t bits = 0;
};

/// Runs `reps` timed passes and folds them into one LinkKernelRun:
/// ns_per_block is the median pass (robust against a scheduler hiccup
/// polluting a single rep), allocs_per_block is accumulated over every
/// timed pass (so a leak in any rep shows), and bit errors are taken
/// from the last pass after checking every pass agreed — per-block RNG
/// streams are Rng(seed, block index), so reps are exact replays.
template <typename PassFn>
LinkKernelRun fold_reps(std::size_t reps, std::size_t blocks,
                        std::size_t bits_per_block, PassFn&& pass) {
  LinkKernelRun out;
  std::vector<double> ns_per_rep;
  ns_per_rep.reserve(reps);
  std::uint64_t allocs = 0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const std::uint64_t allocs0 =
        g_heap_allocs.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t errors = pass();
    const auto t1 = std::chrono::steady_clock::now();
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - allocs0;
    ns_per_rep.push_back(
        std::chrono::duration<double, std::nano>(t1 - t0).count());
    COMIMO_CHECK(rep == 0 || errors == out.bit_errors,
                 "bit errors changed between reps of the same streams");
    out.bit_errors = errors;
  }
  std::sort(ns_per_rep.begin(), ns_per_rep.end());
  const double median_ns =
      reps % 2 == 1 ? ns_per_rep[reps / 2]
                    : 0.5 * (ns_per_rep[reps / 2 - 1] + ns_per_rep[reps / 2]);
  out.ns_per_block = median_ns / static_cast<double>(blocks);
  out.allocs_per_block = static_cast<double>(allocs) /
                         static_cast<double>(blocks * reps);
  out.bits = blocks * bits_per_block;
  return out;
}

/// Measures `blocks` post-warmup blocks of either scalar path over
/// `reps` repetitions.  Per-block RNG streams are Rng(seed, block
/// index) for every path, so the bit-error totals must agree exactly.
/// Warmup blocks [0, warmup) run once, outside the timed window.
template <typename BlockFn>
LinkKernelRun measure_blocks(std::size_t reps, std::size_t warmup,
                             std::size_t blocks, std::size_t bits_per_block,
                             std::uint64_t seed, BlockFn&& block) {
  for (std::size_t blk = 0; blk < warmup; ++blk) {
    Rng rng(seed, blk);
    (void)block(rng);
  }
  return fold_reps(reps, blocks, bits_per_block, [&] {
    std::size_t errors = 0;
    for (std::size_t blk = warmup; blk < warmup + blocks; ++blk) {
      Rng rng(seed, blk);
      errors += block(rng);
    }
    return errors;
  });
}

/// Batched counterpart: blocks are grouped `width` at a time (tail
/// groups shrink) over the same Rng(seed, block index) streams, so the
/// totals remain comparable with the scalar paths bit-for-bit.  The
/// lane RNGs live in stack storage via placement new — Rng has no
/// default constructor and a heap-backed vector would break the
/// zero-allocation claim inside the timed window.
template <typename BatchFn>
LinkKernelRun measure_blocks_batched(std::size_t reps, std::size_t warmup,
                                     std::size_t blocks,
                                     std::size_t bits_per_block,
                                     std::uint64_t seed, std::size_t width,
                                     BatchFn&& batch) {
  static_assert(std::is_trivially_destructible_v<Rng>,
                "stack lane RNGs skip destructor calls");
  constexpr std::size_t kMaxLanes = 8;
  COMIMO_CHECK(width >= 1 && width <= kMaxLanes,
               "batch width out of range for the stack lane RNGs");
  alignas(Rng) std::byte lane_storage[kMaxLanes * sizeof(Rng)];
  Rng* const lanes = reinterpret_cast<Rng*>(lane_storage);
  const auto run_span = [&](std::size_t first, std::size_t count_blocks) {
    std::size_t errors = 0;
    for (std::size_t blk = first; blk < first + count_blocks; blk += width) {
      const std::size_t count =
          std::min(width, first + count_blocks - blk);
      for (std::size_t i = 0; i < count; ++i) {
        ::new (static_cast<void*>(lanes + i)) Rng(seed, blk + i);
      }
      errors += batch(lanes, count);
    }
    return errors;
  };
  (void)run_span(0, warmup);
  return fold_reps(reps, blocks, bits_per_block,
                   [&] { return run_span(warmup, blocks); });
}

Json link_params(const char* path, int b, unsigned mt, unsigned mr,
                 double gamma_b_db, std::size_t blocks, std::size_t warmup,
                 std::size_t reps) {
  Json params = Json::object();
  params.set("kernel", "waveform_ber");
  params.set("path", path);
  params.set("b", b);
  params.set("mt", mt);
  params.set("mr", mr);
  params.set("gamma_b_db", gamma_b_db);
  params.set("blocks", static_cast<std::uint64_t>(blocks));
  params.set("warmup", static_cast<std::uint64_t>(warmup));
  params.set("reps", static_cast<std::uint64_t>(reps));
  return params;
}

Json link_metrics(const LinkKernelRun& run, double speedup_vs_allocating,
                  double speedup_vs_scalar = 0.0) {
  Json metrics = Json::object();
  metrics.set("ns_per_block", run.ns_per_block);
  metrics.set("allocs_per_block", run.allocs_per_block);
  metrics.set("bit_errors", static_cast<std::uint64_t>(run.bit_errors));
  metrics.set("bits", static_cast<std::uint64_t>(run.bits));
  metrics.set("ber", run.bits ? static_cast<double>(run.bit_errors) /
                                    static_cast<double>(run.bits)
                              : 0.0);
  if (speedup_vs_allocating > 0.0) {
    metrics.set("speedup_vs_allocating", speedup_vs_allocating);
  }
  if (speedup_vs_scalar > 0.0) {
    metrics.set("speedup_vs_scalar", speedup_vs_scalar);
  }
  return metrics;
}

void run_link_kernel_bench(const BenchCli& cli) {
  BenchReporter reporter("perf_kernels");
  reporter.set_threads(1);  // the comparison is deliberately serial
  const std::size_t blocks = cli.trials ? cli.trials : 20000;
  const std::size_t warmup = std::min<std::size_t>(500, blocks);
  const std::size_t reps = 3;
  const double gamma_b_db = 6.0;
  const double gamma_b = db_to_linear(gamma_b_db);
  const std::uint64_t seed = 1;

  struct Shape {
    int b;
    unsigned mt;
    unsigned mr;
  };
  for (const Shape shape : {Shape{2, 2, 2}, Shape{2, 4, 2}, Shape{2, 4, 4}}) {
    const auto modem = make_modulator(shape.b);
    const StbcCode code = StbcCode::for_antennas(shape.mt);
    const StbcDecoder decoder(code);
    const std::size_t bits_per_block =
        code.symbols_per_block() * static_cast<std::size_t>(shape.b);
    const double sym_scale = std::sqrt(static_cast<double>(shape.b) *
                                       gamma_b / code.symbol_weight());

    const LinkKernelRun alloc_run = measure_blocks(
        reps, warmup, blocks, bits_per_block, seed, [&](Rng& rng) {
          return allocating_block(*modem, code, decoder, shape.mt, shape.mr,
                                  sym_scale, bits_per_block, rng);
        });

    const WaveformBerKernel kernel(shape.b, shape.mt, shape.mr, gamma_b);
    LinkWorkspace ws;
    kernel.prepare(ws);
    const LinkKernelRun ws_run = measure_blocks(
        reps, warmup, blocks, bits_per_block, seed,
        [&](Rng& rng) { return kernel.run_block(ws, rng); });

    // The workspace path must be bit-identical to the allocating one;
    // anything else means the refactor broke the kernel.
    COMIMO_CHECK(ws_run.bit_errors == alloc_run.bit_errors,
                 "workspace path diverged from the allocating path");

    // The SoA batch path over the pinned dispatch tier, same streams.
    // At width 1 (scalar pin or no vector unit) this degenerates to the
    // workspace path per lane, so the record stays meaningful anywhere.
    const std::size_t width = simd::batch_width();
    LinkBatchWorkspace bws;
    kernel.prepare_batch(bws, width);
    const LinkKernelRun batch_run = measure_blocks_batched(
        reps, warmup, blocks, bits_per_block, seed, width,
        [&](Rng* rngs, std::size_t count) {
          return kernel.run_block_batch(bws, rngs, count);
        });
    COMIMO_CHECK(batch_run.bit_errors == ws_run.bit_errors,
                 "simd batch path diverged from the scalar workspace path");

    const double speedup =
        ws_run.ns_per_block > 0.0 ? alloc_run.ns_per_block / ws_run.ns_per_block
                                  : 0.0;
    const double batch_speedup_vs_alloc =
        batch_run.ns_per_block > 0.0
            ? alloc_run.ns_per_block / batch_run.ns_per_block
            : 0.0;
    const double batch_speedup_vs_scalar =
        batch_run.ns_per_block > 0.0
            ? ws_run.ns_per_block / batch_run.ns_per_block
            : 0.0;
    const auto tps = [](const LinkKernelRun& r) {
      return r.ns_per_block > 0.0 ? 1e9 / r.ns_per_block : 0.0;
    };
    reporter.add_record(link_params("allocating", shape.b, shape.mt, shape.mr,
                                    gamma_b_db, blocks, warmup, reps),
                        link_metrics(alloc_run, 0.0), blocks,
                        tps(alloc_run));
    reporter.add_record(link_params("workspace", shape.b, shape.mt, shape.mr,
                                    gamma_b_db, blocks, warmup, reps),
                        link_metrics(ws_run, speedup), blocks, tps(ws_run));
    Json batch_params = link_params("simd_batch", shape.b, shape.mt, shape.mr,
                                    gamma_b_db, blocks, warmup, reps);
    batch_params.set("simd", simd::tier_name(simd::active_tier()));
    batch_params.set("width", static_cast<std::uint64_t>(width));
    reporter.add_record(
        std::move(batch_params),
        link_metrics(batch_run, batch_speedup_vs_alloc,
                     batch_speedup_vs_scalar),
        blocks, tps(batch_run));
  }

  // Hop-batch comparison: the full three-step cooperative hop
  // (DF broadcast, W-wide long-haul STBC, analog collection) grouped at
  // the pinned lane width vs the same blocks through the lane-serial
  // reference driver.  Both consume the (seed, block index) streams, so
  // the decoded bits must match lane-bitwise; the bench aborts if not.
  {
    const std::size_t width = std::max<std::size_t>(1, simd::batch_width());
    const std::size_t hop_target = cli.trials ? cli.trials / 10 : 2000;
    const UnderlayCooperativeHop planner;
    struct HopShape {
      unsigned mt;
      unsigned mr;
    };
    for (const HopShape shape :
         {HopShape{2, 2}, HopShape{4, 2}, HopShape{4, 4}}) {
      UnderlayHopConfig hop_cfg;
      hop_cfg.mt = shape.mt;
      hop_cfg.mr = shape.mr;
      hop_cfg.hop_distance_m = 200.0;
      hop_cfg.ber = 1e-2;
      const UnderlayHopPlan plan =
          planner.plan(hop_cfg, BSelectionRule::kMinTotalPa);
      const CoopHopBlockKernel kernel(plan, 30.0);
      const std::size_t bpb = kernel.bits_per_block();
      // Whole groups only: the batch driver requires count == width, and
      // an identical block set keeps the two passes comparable.
      const std::size_t hop_blocks =
          std::max<std::size_t>(width, hop_target / width * width);
      const std::size_t hop_warmup = width * 8;
      const BitVec payload =
          random_bits((hop_warmup + hop_blocks) * bpb, seed ^ 0xB17);

      HopBatchWorkspace ws;
      kernel.prepare_batch(ws, width);
      CoopHopBlockKernel::GroupStats
          stats[CoopHopBlockKernel::kMaxLanes]{};
      const auto run_span = [&](std::size_t first, std::size_t count_blocks,
                                bool batched) {
        std::size_t errors = 0;
        for (std::size_t blk = first; blk < first + count_blocks;
             blk += width) {
          if (batched) {
            kernel.run_group_batch(ws, payload.data(), blk, width, seed,
                                   kernel.decoder_full(), stats);
          } else {
            kernel.run_group_serial(ws, payload.data(), blk, width, seed,
                                    kernel.decoder_full(), stats);
          }
          for (std::size_t w = 0; w < width; ++w) {
            const std::uint8_t* sent = payload.data() + (blk + w) * bpb;
            const std::uint8_t* got = ws.decoded_lane(w);
            for (std::size_t i = 0; i < bpb; ++i) {
              errors += sent[i] != got[i] ? 1 : 0;
            }
          }
        }
        return errors;
      };

      (void)run_span(0, hop_warmup, /*batched=*/false);
      const LinkKernelRun serial_run =
          fold_reps(reps, hop_blocks, bpb, [&] {
            return run_span(hop_warmup, hop_blocks, /*batched=*/false);
          });
      (void)run_span(0, hop_warmup, /*batched=*/true);
      const LinkKernelRun batch_run =
          fold_reps(reps, hop_blocks, bpb, [&] {
            return run_span(hop_warmup, hop_blocks, /*batched=*/true);
          });
      COMIMO_CHECK(batch_run.bit_errors == serial_run.bit_errors,
                   "hop batch path diverged from the lane-serial path");

      const double hop_speedup =
          batch_run.ns_per_block > 0.0
              ? serial_run.ns_per_block / batch_run.ns_per_block
              : 0.0;
      const auto hop_params = [&](const char* path) {
        Json params = Json::object();
        params.set("kernel", "coop_hop");
        params.set("path", path);
        params.set("b", plan.b);
        params.set("mt", shape.mt);
        params.set("mr", shape.mr);
        params.set("blocks", static_cast<std::uint64_t>(hop_blocks));
        params.set("warmup", static_cast<std::uint64_t>(hop_warmup));
        params.set("reps", static_cast<std::uint64_t>(reps));
        params.set("simd", simd::tier_name(simd::active_tier()));
        params.set("width", static_cast<std::uint64_t>(width));
        return params;
      };
      const auto tps = [](const LinkKernelRun& r) {
        return r.ns_per_block > 0.0 ? 1e9 / r.ns_per_block : 0.0;
      };
      reporter.add_record(hop_params("hop_serial"),
                          link_metrics(serial_run, 0.0), hop_blocks,
                          tps(serial_run));
      reporter.add_record(hop_params("hop_batch"),
                          link_metrics(batch_run, 0.0, hop_speedup),
                          hop_blocks, tps(batch_run));
    }
  }
  reporter.write_file(cli.json_path);
}

void BM_EbBarSolve(benchmark::State& state) {
  const EbBarSolver solver;
  const auto mt = static_cast<unsigned>(state.range(0));
  const auto mr = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(1e-3, 4, mt, mr));
  }
}
BENCHMARK(BM_EbBarSolve)->Args({1, 1})->Args({2, 2})->Args({4, 4});

void BM_EbBarQuadrature(benchmark::State& state) {
  const EbBarSolver solver;
  const double e = solver.solve(1e-3, 4, 2, 2);
  const auto points = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solver.average_ber_quadrature(e, 4, 2, 2, points));
  }
}
BENCHMARK(BM_EbBarQuadrature)->Arg(16)->Arg(64)->Arg(128);

void BM_EbBarTableBuild(benchmark::State& state) {
  const EbBarSolver solver;
  EbBarTable::Spec spec;
  spec.ber_targets = {1e-2, 1e-3};
  spec.b_max = static_cast<int>(state.range(0));
  spec.m_max = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(EbBarTable::build(solver, spec));
  }
}
BENCHMARK(BM_EbBarTableBuild)->Arg(4)->Arg(16);

void BM_StbcEncodeDecode(benchmark::State& state) {
  const auto mt = static_cast<std::size_t>(state.range(0));
  const StbcCode code = StbcCode::for_antennas(mt);
  const StbcDecoder decoder(code);
  Rng rng(1);
  std::vector<cplx> s(code.symbols_per_block());
  for (auto& v : s) v = rng.complex_gaussian();
  const CMatrix h = CMatrix::random_gaussian(2, mt, rng);
  std::size_t symbols = 0;
  for (auto _ : state) {
    const CMatrix c = code.encode(s);
    CMatrix r(code.block_length(), 2);
    for (std::size_t t = 0; t < code.block_length(); ++t) {
      for (std::size_t j = 0; j < 2; ++j) {
        cplx acc{0.0, 0.0};
        for (std::size_t i = 0; i < mt; ++i) acc += c(t, i) * h(j, i);
        r(t, j) = acc;
      }
    }
    benchmark::DoNotOptimize(decoder.decode(h, r));
    symbols += code.symbols_per_block();
  }
  state.SetItemsProcessed(static_cast<int64_t>(symbols));
}
BENCHMARK(BM_StbcEncodeDecode)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_GmskModulate(benchmark::State& state) {
  const GmskModem modem;
  const BitVec bits = random_bits(static_cast<std::size_t>(state.range(0)), 3);
  std::size_t total = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(modem.modulate(bits));
    total += bits.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_GmskModulate)->Arg(1000)->Arg(12000);

void BM_GmskDemodulate(benchmark::State& state) {
  const GmskModem modem;
  const BitVec bits = random_bits(static_cast<std::size_t>(state.range(0)), 4);
  const auto samples = modem.modulate(bits);
  std::size_t total = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(modem.demodulate(samples, bits.size()));
    total += bits.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(total));
}
BENCHMARK(BM_GmskDemodulate)->Arg(1000)->Arg(12000);

void BM_CsmaCaSimulation(benchmark::State& state) {
  const auto stations_n = static_cast<std::size_t>(state.range(0));
  std::vector<CsmaStation> stations;
  for (std::size_t i = 0; i < stations_n; ++i) {
    stations.push_back({static_cast<NodeId>(i), 20.0, 12000});
  }
  for (auto _ : state) {
    CsmaCaConfig cfg;
    cfg.seed = 1;
    CsmaCaSimulator sim(cfg, stations);
    benchmark::DoNotOptimize(sim.run(2.0));
  }
}
BENCHMARK(BM_CsmaCaSimulation)->Arg(2)->Arg(8)->Arg(32);

void BM_FrameRoundTrip(benchmark::State& state) {
  const Framer framer;
  Packet p;
  p.sequence = 42;
  p.payload.assign(static_cast<std::size_t>(state.range(0)), 0xA5);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const BitVec bits = framer.frame(p);
    benchmark::DoNotOptimize(framer.parse(bits));
    bytes += p.payload.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_FrameRoundTrip)->Arg(64)->Arg(1500);

void BM_CoopHopWaveform(benchmark::State& state) {
  const auto mt = static_cast<unsigned>(state.range(0));
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg;
  cfg.mt = mt;
  cfg.mr = 2;
  cfg.ber = 1e-2;
  CoopHopSimConfig sim;
  sim.plan = planner.plan(cfg, BSelectionRule::kMinTotalPa);
  sim.bits = 2000;
  std::size_t bits = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_cooperative_hop(sim));
    bits += sim.bits;
  }
  state.SetItemsProcessed(static_cast<int64_t>(bits));
}
BENCHMARK(BM_CoopHopWaveform)->Arg(1)->Arg(2)->Arg(3);

void BM_SpatialCsma(benchmark::State& state) {
  const auto stations_n = static_cast<std::size_t>(state.range(0));
  std::vector<SpatialStation> stations;
  Rng rng(7);
  for (std::size_t i = 0; i < stations_n; ++i) {
    SpatialStation s;
    s.id = static_cast<NodeId>(i);
    s.position = rng.point_in_disk(Vec2{250.0, 250.0}, 240.0);
    s.destination = rng.point_in_disk(s.position, 50.0);
    s.arrival_rate_fps = 10.0;
    stations.push_back(s);
  }
  for (auto _ : state) {
    SpatialCsmaConfig cfg;
    cfg.seed = 1;
    SpatialCsmaSimulator sim(cfg, stations);
    benchmark::DoNotOptimize(sim.run(1.0));
  }
}
BENCHMARK(BM_SpatialCsma)->Arg(4)->Arg(16);

void BM_AdaptiveLink(benchmark::State& state) {
  LinkAdaptationConfig cfg;
  AdaptiveLinkScenario sc;
  sc.blocks = 200;
  std::size_t bits = 0;
  for (auto _ : state) {
    const AdaptationRun run = simulate_adaptive_link(cfg, sc);
    benchmark::DoNotOptimize(run.ber);
    bits += run.bits;
  }
  state.SetItemsProcessed(static_cast<int64_t>(bits));
}
BENCHMARK(BM_AdaptiveLink);

}  // namespace

// `--json <path>` selects the comimo-bench-v1 link-kernel comparison
// (validated by scripts/check_bench_json.sh); without it the binary
// runs the google-benchmark micro suite with its native CLI.
int main(int argc, char** argv) {
  const comimo::BenchCli cli = comimo::parse_bench_cli(argc, argv);
  if (!cli.json_path.empty()) {
    run_link_kernel_bench(cli);
    return 0;
  }

  std::vector<char*> args;
  std::vector<std::string> storage;
  storage.reserve(static_cast<std::size_t>(argc));
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" || arg == "--trials" || arg == "--trace" ||
        arg == "--simd") {
      ++i;  // value-taking common flags parse_bench_cli already consumed
    } else if (arg == "--obs" || arg.rfind("--simd=", 0) == 0) {
      // single-token flags, likewise already consumed
    } else {
      storage.push_back(arg);
    }
  }
  for (auto& s : storage) args.push_back(s.data());
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
