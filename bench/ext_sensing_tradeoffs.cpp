// Extension study (beyond the paper's figures): the sensing dimension
// of the interweave mode.
//
// The paper's interweave paradigm removes the *angular* interference
// with beamforming; the time dimension still needs spectrum sensing.
// This bench maps (i) the detector ROC at several SNRs and window
// lengths, and (ii) the listen-before-talk frontier — idle-spectrum
// utilization vs interference to the PU — as sensing quality varies.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/common/units.h"
#include "comimo/sensing/energy_detector.h"
#include "comimo/sensing/pu_activity.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  BenchReporter reporter("ext_sensing_tradeoffs");
  reporter.set_threads(cli.effective_threads());
  std::cout << "=== extension: sensing trade-offs for interweave ===\n\n";

  // --- ROC sweep ------------------------------------------------------
  std::cout << "--- energy-detector ROC (theory) ---\n";
  const std::vector<double> pfa_grid{0.01, 0.05, 0.1, 0.2};
  TextTable roc({"SNR [dB]", "N", "Pd@Pfa=0.01", "Pd@0.05", "Pd@0.1",
                 "Pd@0.2"});
  for (const double snr_db : {-15.0, -12.0, -9.0}) {
    for (const std::size_t n : {500u, 2000u}) {
      const auto points =
          energy_detector_roc(db_to_linear(snr_db), n, pfa_grid);
      roc.add_row({TextTable::fmt(snr_db, 0), std::to_string(n),
                   TextTable::fmt(points[0].pd, 3),
                   TextTable::fmt(points[1].pd, 3),
                   TextTable::fmt(points[2].pd, 3),
                   TextTable::fmt(points[3].pd, 3)});
    }
  }
  roc.print(std::cout);

  // --- sensing-time dimensioning ---------------------------------------
  std::cout << "\n--- window length for (Pfa, Pd) = (0.05, 0.95) ---\n";
  TextTable dim({"PU SNR [dB]", "required samples"});
  for (const double snr_db : {-6.0, -10.0, -14.0, -18.0}) {
    dim.add_row({TextTable::fmt(snr_db, 0),
                 std::to_string(required_samples(db_to_linear(snr_db),
                                                 0.05, 0.95))});
  }
  dim.print(std::cout);

  // --- utilization vs interference frontier ------------------------------
  std::cout << "\n--- listen-before-talk frontier (PU 0.5 s busy /"
               " 1.0 s idle) ---\n";
  TextTable frontier({"Pd", "Pfa", "idle utilization", "interference",
                      "collisions"});
  struct Quality {
    double pd;
    double pfa;
  };
  for (const Quality q : {Quality{0.999, 0.01}, Quality{0.95, 0.05},
                          Quality{0.9, 0.1}, Quality{0.7, 0.3}}) {
    OpportunisticAccessConfig cfg;
    cfg.detection_probability = q.pd;
    cfg.false_alarm_probability = q.pfa;
    cfg.duration_s = 500.0;
    cfg.seed = 5;
    const auto r = simulate_opportunistic_access(cfg);
    frontier.add_row({TextTable::fmt(q.pd, 3), TextTable::fmt(q.pfa, 2),
                      TextTable::pct(r.idle_utilization),
                      TextTable::pct(r.interference_fraction),
                      TextTable::pct(r.collision_fraction)});
    Json params = Json::object();
    params.set("pd", q.pd);
    params.set("pfa", q.pfa);
    Json metrics = Json::object();
    metrics.set("idle_utilization", r.idle_utilization);
    metrics.set("interference_fraction", r.interference_fraction);
    metrics.set("collision_fraction", r.collision_fraction);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  frontier.print(std::cout);
  std::cout << "\nBetter sensing buys both more holes used and less"
               " interference; the beamformer of Fig. 8 removes what"
               " remains in the angular domain.\n";
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
