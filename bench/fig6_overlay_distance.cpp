// Fig. 6 reproduction — "Distance that SUs can be away from primary
// transmitter Pt (a) and primary receiver Pr (b)".
//
// Sweep: D1 from 150 m to 350 m; m ∈ {2, 3}; B ∈ {20 kHz, 40 kHz};
// primary BER 0.005, relayed BER 0.0005 (10× better), equal energy.
// Paper anchor: D1 = 250 m, m = 3, B = 40 kHz → ≈ 235 m from Pt and
// ≈ 406 m from Pr, with D3/D2 = √m.
//
// The paper's anchors are only consistent with solving ē_b *without*
// the 1/mt split of the literal eq. (5) (see EXPERIMENTS.md), so the
// main series use EbBarConvention::kTotalEnergy; the literal-equation
// result is printed afterwards for comparison.
#include <iostream>
#include <vector>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/overlay/distance_planner.h"

namespace {

using namespace comimo;

void run_sweep(const OverlayDistancePlanner& planner, const char* title) {
  std::vector<double> d1;
  for (double d = 150.0; d <= 350.0 + 1e-9; d += 25.0) d1.push_back(d);

  struct Case {
    unsigned m;
    double bw;
  };
  const std::vector<Case> cases{{2, 20e3}, {3, 20e3}, {2, 40e3}, {3, 40e3}};

  SeriesChart chart_pt("D1 [m]", d1);
  SeriesChart chart_pr("D1 [m]", d1);
  for (const auto& c : cases) {
    OverlayDistanceQuery base;
    base.num_relays = c.m;
    base.bandwidth_hz = c.bw;
    const auto results = planner.sweep_d1(d1, base);
    std::vector<double> to_pt;
    std::vector<double> to_pr;
    for (const auto& r : results) {
      to_pt.push_back(r.d2_m);
      to_pr.push_back(r.d3_m);
    }
    const std::string label =
        "m=" + std::to_string(c.m) + ",B=" +
        std::to_string(static_cast<int>(c.bw / 1e3)) + "k";
    chart_pt.add_series(label, to_pt);
    chart_pr.add_series(label, to_pr);
  }

  std::cout << "--- Fig. 6(a) [" << title
            << "]: largest distance from Pt ---\n";
  chart_pt.print(std::cout);
  std::cout << "\n--- Fig. 6(b) [" << title
            << "]: largest distance from Pr ---\n";
  chart_pr.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using comimo::BenchCli;
  using comimo::BenchReporter;
  using comimo::Json;
  const BenchCli cli = comimo::parse_bench_cli(argc, argv);
  BenchReporter reporter("fig6_overlay_distance");
  reporter.set_threads(cli.effective_threads());
  std::cout << "=== Figure 6: overlay relay distances ===\n"
            << "x: D1 = distance(Pt, Pr) [m]; y: largest SU distance [m]\n"
            << "BER: primary 0.005, relayed 0.0005; equal energy budget\n\n";

  const OverlayDistancePlanner paper_convention(
      SystemParams{}, EbBarConvention::kTotalEnergy);
  run_sweep(paper_convention, "paper convention, total-energy ebar");

  // §6: "the bandwidth B varies from 10k to 100k" — the full B sweep at
  // the anchor point.
  std::cout << "\n--- bandwidth sweep at D1 = 250 m, m = 3 ---\n";
  TextTable bw_table({"B [kHz]", "dist from Pt [m]", "dist from Pr [m]"});
  for (double bw = 10e3; bw <= 100e3 + 1e-6; bw += 15e3) {
    OverlayDistanceQuery bq;
    bq.d1_m = 250.0;
    bq.num_relays = 3;
    bq.bandwidth_hz = bw;
    const auto br = paper_convention.plan(bq);
    bw_table.add_row({TextTable::fmt(bw / 1e3, 0),
                      TextTable::fmt(br.d2_m, 1),
                      TextTable::fmt(br.d3_m, 1)});
    Json params = Json::object();
    params.set("d1_m", 250.0);
    params.set("num_relays", 3);
    params.set("bandwidth_hz", bw);
    Json metrics = Json::object();
    metrics.set("d2_m", br.d2_m);
    metrics.set("d3_m", br.d3_m);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  bw_table.print(std::cout);

  // The paper's worked example under both conventions.
  OverlayDistanceQuery q;
  q.d1_m = 250.0;
  q.num_relays = 3;
  q.bandwidth_hz = 40e3;
  const auto r_paper = paper_convention.plan(q);
  const OverlayDistancePlanner literal(SystemParams{},
                                       EbBarConvention::kPerAntennaSplit);
  const auto r_literal = literal.plan(q);
  std::cout
      << "\nPaper anchor (D1=250 m, m=3, B=40k): ~235 m from Pt / ~406 m"
         " from Pr, ratio sqrt(3)=1.73.\n"
      << "Measured (total-energy ebar):    "
      << TextTable::fmt(r_paper.d2_m, 1) << " / "
      << TextTable::fmt(r_paper.d3_m, 1)
      << " m, ratio " << TextTable::fmt(r_paper.d3_m / r_paper.d2_m, 2)
      << " (ordering D3 > D2 and the sqrt(m) ratio reproduce; absolute"
         " scale runs larger than the paper's MATLAB)\n"
      << "Measured (literal eq. (5)):      "
      << TextTable::fmt(r_literal.d2_m, 1) << " / "
      << TextTable::fmt(r_literal.d3_m, 1)
      << " m, ratio " << TextTable::fmt(r_literal.d3_m / r_literal.d2_m, 2)
      << " (the 1/mt split cancels the MISO advantage)\n";

  Json params = Json::object();
  params.set("anchor", true);
  params.set("d1_m", 250.0);
  params.set("num_relays", 3);
  params.set("bandwidth_hz", 40e3);
  Json metrics = Json::object();
  metrics.set("d2_m_total_energy", r_paper.d2_m);
  metrics.set("d3_m_total_energy", r_paper.d3_m);
  metrics.set("d3_over_d2", r_paper.d3_m / r_paper.d2_m);
  metrics.set("d2_m_literal", r_literal.d2_m);
  metrics.set("d3_m_literal", r_literal.d3_m);
  reporter.add_record(std::move(params), std::move(metrics));
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
