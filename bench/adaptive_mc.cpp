// Precision-targeted Monte-Carlo vs the fixed-trial baseline.
//
// For each γ_b point of the 2×2 QPSK waterfall this bench runs the
// waveform BER measurement twice against the same trial budget:
//
//   adaptive     — checkpoint-stopping only (mc/adaptive.h): stop at
//                  the first checkpoint whose BER CI half-width is
//                  within target_rel_ci of the estimate.  This IS the
//                  equal-CI cost of naive sampling, measured: the
//                  executed trial count is exactly what a fixed run
//                  needs for that precision.
//   adaptive_is  — checkpoint stopping + scaled-variance importance
//                  sampling with per-block likelihood weights.  The
//                  tilt is on the FADING (channel ~ CN(0, 1/λ)): in a
//                  diversity link the deep-waterfall errors come from
//                  deep fades, not noise bursts, so over-sampling fades
//                  makes errors arrive ~p_tilted/p times faster while
//                  the weights on error blocks stay nearly constant.
//                  (A noise-only tilt ν > 1 samples the wrong rare
//                  event here and measures ~1× — see EXPERIMENTS.md.)
//
// equal_ci_reduction_x on each adaptive_is row is the measured
// naive-trials / IS-trials ratio at equal precision (naive trials taken
// from the adaptive row when it met the target, else projected from the
// binomial CI formula — flagged by naive_measured).  The committed
// BENCH_adaptive_mc.json must show >= 10x at the lowest-BER point
// (scripts/check_bench_json.sh gates it) plus a healthy weight ESS.
//
// `--trials <n>` shrinks the per-point budget for CI; `--adaptive <r>`
// overrides the CI target (default 0.2); `--threads/--shards/--json`
// as everywhere.  Every reported metric except wall_s is a pure
// function of (seed, config) — thread- and shard-count invariant.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/adaptive.h"
#include "comimo/phy/ber_sweep.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  const std::size_t budget = cli.trials ? cli.trials : 40000000;
  const double target = cli.adaptive > 0.0 ? cli.adaptive : 0.2;
  const double confidence = 0.95;

  std::cout << "=== adaptive precision-targeted MC: 2x2 QPSK waterfall ===\n"
            << "budget " << budget << " blocks/point, target rel CI "
            << target << " @ " << confidence * 100 << "%\n\n";

  BenchReporter reporter("adaptive_mc");

  struct SweepPoint {
    double gamma_b_db;
    double lambda;  // IS fade tilt (channel ~ CN(0, 1/λ)) for this depth
  };
  const SweepPoint points[] = {{6.0, 1.3}, {10.0, 2.0}, {14.0, 3.0}};

  TextTable t({"gamma_b", "mode", "trials", "of budget", "BER", "rel CI",
               "met", "ESS", "reduction", "wall [s]"});

  std::size_t index = 0;
  for (const SweepPoint& sp : points) {
    WaveformBerConfig base;
    base.b = 2;
    base.mt = 2;
    base.mr = 2;
    base.blocks = budget;
    // Per-point stream family, the waveform_ber_curve convention.
    base.seed = 42 + 0x9E3779B97F4A7C15ULL * (index + 1);
    base.pool = cli.pool();
    base.shards = cli.shards;
    base.adaptive.target_rel_ci = target;
    base.adaptive.confidence = confidence;
    // Finer rounds than the auto schedule (chunks/32): the measured
    // equal-CI trial count then tracks the true stopping point instead
    // of overshooting by most of a coarse round.  Still a pure function
    // of the config — identical across modes, threads and shards.
    base.adaptive.checkpoint_every = 2;
    ++index;

    // Naive-sampling adaptive run: measures the equal-CI cost of the
    // fixed-trial estimator at this point.
    const WaveformBerPoint pa = measure_waveform_ber(base, sp.gamma_b_db);

    WaveformBerConfig is_cfg = base;
    is_cfg.adaptive.is_mode = IsMode::kScaledNoise;
    is_cfg.adaptive.is_noise_scale = 1.0;  // fade tilt only
    is_cfg.adaptive.is_channel_scale = sp.lambda;
    const WaveformBerPoint pi = measure_waveform_ber(is_cfg, sp.gamma_b_db);

    // Equal-CI naive cost: measured when the naive run got there,
    // otherwise projected from the binomial CI (trials ≈
    // z²(1−p)/(ρ²·p·bits_per_block), p from the unbiased IS estimate).
    const std::size_t bits_per_block =
        pa.trials_executed ? pa.bits / pa.trials_executed : 4;
    const bool naive_measured = pa.target_met;
    double naive_trials = static_cast<double>(pa.trials_executed);
    if (!naive_measured && pi.ber > 0.0) {
      const double z = confidence_z(confidence);
      naive_trials = z * z * (1.0 - pi.ber) /
                     (target * target * pi.ber *
                      static_cast<double>(bits_per_block));
    }
    const double reduction =
        pi.trials_executed > 0
            ? naive_trials / static_cast<double>(pi.trials_executed)
            : 0.0;
    // ESS is over the error-block weights (the estimator's nonzero
    // terms); its fraction of the error-block count is the tilt-quality
    // number — near 1 means no handful of huge-weight errors dominates.
    const double ess_frac =
        pi.err_blocks > 0 ? pi.ess / static_cast<double>(pi.err_blocks)
                          : 0.0;

    const auto add_row = [&](const char* mode, const WaveformBerPoint& p) {
      t.add_row({TextTable::fmt(sp.gamma_b_db, 0) + " dB", mode,
                 std::to_string(p.trials_executed),
                 TextTable::fmt(100.0 * static_cast<double>(p.trials_executed) /
                                    static_cast<double>(budget),
                                1) +
                     "%",
                 TextTable::sci(p.ber), TextTable::fmt(p.rel_ci, 3),
                 p.target_met ? "yes" : "no",
                 p.ess > 0.0 ? TextTable::fmt(p.ess, 0) : "-",
                 p.ess > 0.0 ? TextTable::fmt(reduction, 1) + "x" : "-",
                 TextTable::fmt(p.info.wall_s, 3)});
    };
    add_row("adaptive", pa);
    add_row("adaptive_is", pi);

    const auto make_record = [&](const char* mode,
                                 const WaveformBerPoint& p) {
      Json params = Json::object();
      params.set("mode", mode);
      params.set("gamma_b_db", sp.gamma_b_db);
      params.set("b", base.b);
      params.set("mt", base.mt);
      params.set("mr", base.mr);
      params.set("budget", budget);
      params.set("target_rel_ci", target);
      params.set("confidence", confidence);
      params.set("shards", cli.shards);
      Json metrics = Json::object();
      metrics.set("trials_executed", p.trials_executed);
      metrics.set("trials_saved", budget - p.trials_executed);
      metrics.set("checkpoints", p.checkpoints);
      metrics.set("target_met", p.target_met ? 1 : 0);
      metrics.set("bits", p.bits);
      metrics.set("bit_errors", p.bit_errors);
      metrics.set("ber", p.ber);
      metrics.set("analytic_ber", p.analytic);
      metrics.set("rel_ci", p.rel_ci);
      return std::pair<Json, Json>(std::move(params), std::move(metrics));
    };

    {
      auto [params, metrics] = make_record("adaptive", pa);
      reporter.add_record(std::move(params), std::move(metrics),
                          pa.trials_executed, pa.info.trials_per_sec);
    }
    {
      auto [params, metrics] = make_record("adaptive_is", pi);
      params.set("is_noise_scale", 1.0);
      params.set("is_channel_scale", sp.lambda);
      metrics.set("ess", pi.ess);
      metrics.set("err_blocks", pi.err_blocks);
      metrics.set("ess_frac", ess_frac);
      metrics.set("naive_equal_ci_trials", naive_trials);
      metrics.set("naive_measured", naive_measured ? 1 : 0);
      metrics.set("equal_ci_reduction_x", reduction);
      reporter.add_record(std::move(params), std::move(metrics),
                          pi.trials_executed, pi.info.trials_per_sec);
    }
  }

  t.print(std::cout);
  std::cout << "\n(equal-CI reduction = naive trials at the same CI target"
               " / IS trials; naive cost measured when the plain adaptive"
               " run met the target, else projected from the binomial CI"
               " formula)\n";

  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
