// Table 4 reproduction — "PER results for underlay system".
//
// A 474-packet × 1500-byte image is transmitted with GMSK at 250 kbps
// by two cooperating co-located SU transmitters (or one, for the
// baseline) at transmit amplitudes 800/600/400; packet error rate is
// counted at the secondary receiver via CRC, exactly as the testbed
// counted it.
//
// The 3 amplitudes × 2 modes = 6 runs shard across the mc/ sweep engine
// (each cell is a pure function of its index); `--json <path>` emits
// comimo-bench-v1.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/engine.h"
#include "comimo/testbed/experiments.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== Table 4: underlay image-transfer PER ===\n"
            << "474 packets x 1500 B, GMSK; CRC-checked at the receiver\n\n";

  const std::vector<double> amplitudes{800.0, 600.0, 400.0};
  std::vector<UnderlayPerResult> results(amplitudes.size() * 2);
  McConfig mc;
  mc.pool = cli.pool();
  const McResult run = run_trials(
      results.size(), mc,
      [&](std::size_t t, Rng& /*rng*/, McAccumulator& acc) {
        UnderlayPerConfig cfg;
        cfg.amplitude = amplitudes[t / 2];
        cfg.seed = 7;
        cfg.cooperative = (t % 2 == 0);
        results[t] = run_underlay_per(cfg);
        acc.observe(cfg.cooperative ? "per_coop" : "per_solo",
                    results[t].per);
      });

  BenchReporter reporter("table4_underlay_per");
  reporter.set_threads(cli.effective_threads());
  TextTable table({"Amplitude", "with cooperation", "without cooperation",
                   "image (coop)"});
  for (std::size_t i = 0; i < amplitudes.size(); ++i) {
    const UnderlayPerResult& coop = results[2 * i];
    const UnderlayPerResult& solo = results[2 * i + 1];
    table.add_row(
        {TextTable::fmt(amplitudes[i], 0), TextTable::pct(coop.per),
         TextTable::pct(solo.per),
         coop.reassembly.recoverable()
             ? (coop.per == 0.0 ? "perfect" : "recovered w/ distortion")
             : "unrecoverable"});
    Json params = Json::object();
    params.set("amplitude", amplitudes[i]);
    Json metrics = Json::object();
    metrics.set("per_cooperative", coop.per);
    metrics.set("per_solo", solo.per);
    metrics.set("image_recoverable", coop.reassembly.recoverable() ? 1 : 0);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  const double coop_avg = run.acc.stat("per_coop").mean();
  const double solo_avg = run.acc.stat("per_solo").mean();
  table.add_row({"Average", TextTable::pct(coop_avg),
                 TextTable::pct(solo_avg), ""});
  table.print(std::cout);
  std::cout << "\nPaper: coop 0 / 6.12% / 13.72% (avg 6.61%); solo 24.85%"
               " / 70.28% / 97.1% (avg 64.08%).\n";

  Json params = Json::object();
  params.set("summary", true);
  Json metrics = Json::object();
  metrics.set("per_cooperative_avg", coop_avg);
  metrics.set("per_solo_avg", solo_avg);
  reporter.add_record(std::move(params), std::move(metrics), results.size(),
                      run.info.trials_per_sec);
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
