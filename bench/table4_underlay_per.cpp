// Table 4 reproduction — "PER results for underlay system".
//
// A 474-packet × 1500-byte image is transmitted with GMSK at 250 kbps
// by two cooperating co-located SU transmitters (or one, for the
// baseline) at transmit amplitudes 800/600/400; packet error rate is
// counted at the secondary receiver via CRC, exactly as the testbed
// counted it.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/testbed/experiments.h"

int main() {
  using namespace comimo;
  std::cout << "=== Table 4: underlay image-transfer PER ===\n"
            << "474 packets x 1500 B, GMSK; CRC-checked at the receiver\n\n";

  TextTable table({"Amplitude", "with cooperation", "without cooperation",
                   "image (coop)"});
  double coop_sum = 0.0;
  double solo_sum = 0.0;
  const std::vector<double> amplitudes{800.0, 600.0, 400.0};
  for (const double amp : amplitudes) {
    UnderlayPerConfig cfg;
    cfg.amplitude = amp;
    cfg.seed = 7;
    cfg.cooperative = true;
    const UnderlayPerResult coop = run_underlay_per(cfg);
    cfg.cooperative = false;
    const UnderlayPerResult solo = run_underlay_per(cfg);
    coop_sum += coop.per;
    solo_sum += solo.per;
    table.add_row(
        {TextTable::fmt(amp, 0), TextTable::pct(coop.per),
         TextTable::pct(solo.per),
         coop.reassembly.recoverable()
             ? (coop.per == 0.0 ? "perfect" : "recovered w/ distortion")
             : "unrecoverable"});
  }
  table.add_row({"Average",
                 TextTable::pct(coop_sum / amplitudes.size()),
                 TextTable::pct(solo_sum / amplitudes.size()), ""});
  table.print(std::cout);
  std::cout << "\nPaper: coop 0 / 6.12% / 13.72% (avg 6.61%); solo 24.85%"
               " / 70.28% / 97.1% (avg 64.08%).\n";
  return 0;
}
