// Fig. 7 reproduction — "Energy per bit for the power amplifiers in
// underlay systems when cooperative nodes are in range of 1 meter".
//
// Upper plot: total PA energy/bit of all SUs vs hop distance D for the
// no-cooperation SISO case (the PU model) against cooperative MIMO —
// the paper reports a 2–4 orders-of-magnitude gap.
// Lower plot: the cooperative cases against each other; (mt < mr) are
// the cheapest and nearly overlap.
#include <iostream>
#include <vector>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/energy/ebbar.h"
#include "comimo/underlay/pa_budget.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  BenchReporter reporter("fig7_underlay_energy");
  reporter.set_threads(cli.effective_threads());
  std::cout << "=== Figure 7: underlay PA energy per bit ===\n"
            << "d = 1 m, p_b = 0.001, B = 40 kHz, b optimized 1..16\n\n";

  const PaBudgetSweep sweep;
  std::vector<double> distances;
  for (double d = 100.0; d <= 300.0 + 1e-9; d += 20.0) {
    distances.push_back(d);
  }
  const auto grid = sweep.sweep_grid(2, 3, distances, 1.0, 1e-3, 40e3);

  const auto series_of = [&](unsigned mt, unsigned mr) {
    for (const auto& s : grid) {
      if (s.mt == mt && s.mr == mr) return s;
    }
    throw std::runtime_error("missing series");
  };
  const auto totals = [](const PaBudgetSeries& s) {
    std::vector<double> y;
    for (const auto& p : s.points) y.push_back(p.plan.total_pa());
    return y;
  };

  // Upper plot: SISO vs all cooperative cases.
  SeriesChart upper("D [m]", distances);
  upper.add_series("1x1 (SISO/PU)", totals(series_of(1, 1)));
  upper.add_series("2x1", totals(series_of(2, 1)));
  upper.add_series("1x2", totals(series_of(1, 2)));
  upper.add_series("2x2", totals(series_of(2, 2)));
  upper.add_series("1x3", totals(series_of(1, 3)));
  upper.add_series("2x3", totals(series_of(2, 3)));
  std::cout << "--- Upper plot: SISO vs cooperative (log y) ---\n";
  upper.print(std::cout, /*log_y=*/true);

  SeriesChart lower("D [m]", distances);
  lower.add_series("2x1", totals(series_of(2, 1)));
  lower.add_series("1x2", totals(series_of(1, 2)));
  lower.add_series("2x2", totals(series_of(2, 2)));
  lower.add_series("1x3", totals(series_of(1, 3)));
  lower.add_series("2x3", totals(series_of(2, 3)));
  std::cout << "\n--- Lower plot: cooperative cases only ---\n";
  lower.print(std::cout, /*log_y=*/true);

  // The paper's headline numbers.
  const double siso_mid = totals(series_of(1, 1))[5];
  const double mimo_mid = totals(series_of(2, 3))[5];
  std::cout << "\nPaper anchors: SISO/MIMO gap 'between 100 to 10000"
               " times'; measured at D=200 m: "
            << TextTable::fmt(siso_mid / mimo_mid, 1) << "x\n";
  const EbBarSolver solver;
  const double ebar_siso = solver.solve(1e-3, 2, 1, 1);
  const double ebar_2x3 = solver.solve(1e-3, 2, 2, 3);
  std::cout << "ebar(p=1e-3, b=2): SISO " << TextTable::sci(ebar_siso)
            << " J (paper 1.90e-18), 2x3 " << TextTable::sci(ebar_2x3)
            << " J (paper 3.20e-20)\n";

  for (const auto& s : grid) {
    const auto y = totals(s);
    for (std::size_t i = 0; i < distances.size(); ++i) {
      Json params = Json::object();
      params.set("mt", s.mt);
      params.set("mr", s.mr);
      params.set("distance_m", distances[i]);
      Json metrics = Json::object();
      metrics.set("total_pa_j_per_bit", y[i]);
      reporter.add_record(std::move(params), std::move(metrics));
    }
  }
  Json params = Json::object();
  params.set("anchor", true);
  Json metrics = Json::object();
  metrics.set("siso_over_mimo_at_200m", siso_mid / mimo_mid);
  metrics.set("ebar_siso_j", ebar_siso);
  metrics.set("ebar_2x3_j", ebar_2x3);
  reporter.add_record(std::move(params), std::move(metrics));
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
