// Extension study: network lifetime under cooperative vs heads-only
// (non-cooperative) routing.
//
// The energy motivation behind cooperative MIMO (refs [9],[10]) is
// network lifetime: splitting the long-haul PA burden across a cluster
// should keep the first node alive far longer than burning the head's
// battery on SISO hops.  net/lifetime.h runs repeated traffic rounds
// with per-round head re-election (the paper's reconfiguration); this
// bench compares the two routing modes over several fields.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/net/lifetime.h"

int main() {
  using namespace comimo;
  std::cout << "=== extension: network lifetime, cooperative vs"
               " heads-only SISO routing ===\n"
            << "42 SUs in 14 groups, 100 kbit per traffic round, heads"
               " re-elected each round; counts censored at 5000\n\n";

  TextTable t({"routing", "seed", "rounds to first death",
               "rounds to 25% dead"});
  double coop_first = 0.0;
  double siso_first = 0.0;
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const auto nodes = clustered_field(14, 3, 6.0, 450.0, 450.0, seed,
                                       /*battery_lo=*/150.0,
                                       /*battery_hi=*/200.0);
    CoMimoNetConfig net_cfg;
    net_cfg.communication_range_m = 40.0;
    net_cfg.cluster_diameter_m = 16.0;
    net_cfg.link_range_m = 280.0;
    const CoMimoNet net(nodes, net_cfg);

    LifetimeConfig cfg;
    cfg.traffic_seed = seed;
    cfg.mode = RoutingMode::kCooperative;
    const LifetimeReport coop = simulate_lifetime(net, SystemParams{}, cfg);
    cfg.mode = RoutingMode::kSisoHeadsOnly;
    const LifetimeReport siso = simulate_lifetime(net, SystemParams{}, cfg);
    coop_first += static_cast<double>(coop.rounds_to_first_death);
    siso_first += static_cast<double>(siso.rounds_to_first_death);
    t.add_row({"cooperative", std::to_string(seed),
               std::to_string(coop.rounds_to_first_death),
               std::to_string(coop.rounds_to_death_fraction) +
                   (coop.censored ? "+" : "")});
    t.add_row({"heads-only SISO", std::to_string(seed),
               std::to_string(siso.rounds_to_first_death),
               std::to_string(siso.rounds_to_death_fraction) +
                   (siso.censored ? "+" : "")});
  }
  t.print(std::cout);
  std::cout << "\nmean first-death lifetime gain from cooperation: "
            << TextTable::fmt(coop_first / std::max(siso_first, 1.0), 1)
            << "x\n"
            << "Note the crossover: cooperation spreads the PA burden,"
               " delaying the *first* death,\n"
            << "but the whole cohort then depletes together, while"
               " heads-only routing (with head\n"
            << "rotation each round) sacrifices individual heads and"
               " keeps the rest alive longer.\n";
  return 0;
}
