// Extension study: network lifetime under cooperative vs heads-only
// (non-cooperative) routing.
//
// The energy motivation behind cooperative MIMO (refs [9],[10]) is
// network lifetime: splitting the long-haul PA burden across a cluster
// should keep the first node alive far longer than burning the head's
// battery on SISO hops.  net/lifetime.h runs repeated traffic rounds
// with per-round head re-election (the paper's reconfiguration); this
// bench compares the two routing modes over several fields, then runs a
// replicated traffic ensemble (simulate_lifetime_ensemble) per mode for
// mean ± spread.  `--json` emits comimo-bench-v1.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/engine.h"
#include "comimo/net/lifetime.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== extension: network lifetime, cooperative vs"
               " heads-only SISO routing ===\n"
            << "42 SUs in 14 groups, 100 kbit per traffic round, heads"
               " re-elected each round; counts censored at 5000\n\n";

  BenchReporter reporter("ext_network_lifetime");
  reporter.set_threads(cli.effective_threads());

  // --- per-field comparison (3 fields × 2 modes, sharded on the engine)
  const std::vector<std::uint64_t> seeds{11, 12, 13};
  std::vector<LifetimeReport> reports(seeds.size() * 2);
  McConfig mc;
  mc.pool = cli.pool();
  (void)run_trials(
      reports.size(), mc, [&](std::size_t t, Rng& /*rng*/, McAccumulator&) {
        const std::uint64_t seed = seeds[t / 2];
        const auto nodes = clustered_field(14, 3, 6.0, 450.0, 450.0, seed,
                                           /*battery_lo=*/150.0,
                                           /*battery_hi=*/200.0);
        CoMimoNetConfig net_cfg;
        net_cfg.communication_range_m = 40.0;
        net_cfg.cluster_diameter_m = 16.0;
        net_cfg.link_range_m = 280.0;
        const CoMimoNet net(nodes, net_cfg);
        LifetimeConfig cfg;
        cfg.traffic_seed = seed;
        cfg.mode = (t % 2 == 0) ? RoutingMode::kCooperative
                                : RoutingMode::kSisoHeadsOnly;
        reports[t] = simulate_lifetime(net, SystemParams{}, cfg);
      });

  TextTable t({"routing", "seed", "rounds to first death",
               "rounds to 25% dead"});
  double coop_first = 0.0;
  double siso_first = 0.0;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const bool coop = (i % 2 == 0);
    const std::uint64_t seed = seeds[i / 2];
    const LifetimeReport& r = reports[i];
    (coop ? coop_first : siso_first) +=
        static_cast<double>(r.rounds_to_first_death);
    t.add_row({coop ? "cooperative" : "heads-only SISO",
               std::to_string(seed),
               std::to_string(r.rounds_to_first_death),
               std::to_string(r.rounds_to_death_fraction) +
                   (r.censored ? "+" : "")});
    Json params = Json::object();
    params.set("mode", coop ? "cooperative" : "siso_heads_only");
    params.set("field_seed", seed);
    Json metrics = Json::object();
    metrics.set("rounds_to_first_death", r.rounds_to_first_death);
    metrics.set("rounds_to_death_fraction", r.rounds_to_death_fraction);
    metrics.set("censored", r.censored ? 1 : 0);
    metrics.set("min_battery_j", r.min_battery_j);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  t.print(std::cout);
  std::cout << "\nmean first-death lifetime gain from cooperation: "
            << TextTable::fmt(coop_first / std::max(siso_first, 1.0), 1)
            << "x\n"
            << "Note the crossover: cooperation spreads the PA burden,"
               " delaying the *first* death,\n"
            << "but the whole cohort then depletes together, while"
               " heads-only routing (with head\n"
            << "rotation each round) sacrifices individual heads and"
               " keeps the rest alive longer.\n";

  // --- replicated traffic ensemble on one field: per-trial traffic
  // seeds derive from the ensemble seed, so the mean ± stddev below is
  // bit-identical at any thread count.
  std::cout << "\n--- traffic ensemble (field seed 11, 8 replicates/mode)"
               " ---\n";
  const auto nodes = clustered_field(14, 3, 6.0, 450.0, 450.0, /*seed=*/11,
                                     /*battery_lo=*/150.0,
                                     /*battery_hi=*/200.0);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 16.0;
  net_cfg.link_range_m = 280.0;
  const CoMimoNet net(nodes, net_cfg);
  for (const RoutingMode mode :
       {RoutingMode::kCooperative, RoutingMode::kSisoHeadsOnly}) {
    LifetimeEnsembleConfig ens;
    ens.base.mode = mode;
    ens.trials = 8;
    ens.seed = 2024;
    ens.pool = cli.pool();
    const LifetimeEnsembleReport er =
        simulate_lifetime_ensemble(net, SystemParams{}, ens);
    const bool coop = mode == RoutingMode::kCooperative;
    std::cout << (coop ? "cooperative   " : "heads-only    ")
              << "first death: "
              << TextTable::fmt(er.rounds_to_first_death.mean(), 1)
              << " +/- "
              << TextTable::fmt(er.rounds_to_first_death.stddev(), 1)
              << " rounds; 25% dead: "
              << TextTable::fmt(er.rounds_to_death_fraction.mean(), 1)
              << " (censored " << er.censored_trials << "/" << er.trials
              << ")\n";
    Json params = Json::object();
    params.set("mode", coop ? "cooperative" : "siso_heads_only");
    params.set("ensemble", true);
    params.set("field_seed", 11);
    Json metrics = Json::object();
    metrics.set("first_death_mean", er.rounds_to_first_death.mean());
    metrics.set("first_death_stddev", er.rounds_to_first_death.stddev());
    metrics.set("death_fraction_mean", er.rounds_to_death_fraction.mean());
    metrics.set("censored_trials", er.censored_trials);
    reporter.add_record(std::move(params), std::move(metrics), er.trials,
                        er.info.trials_per_sec);
  }
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
