// Extension study: delivered goodput under escalating fault intensity,
// cooperative vs heads-only routing.
//
// §2.1's reconfigurability claim is only worth something if the network
// keeps delivering while nodes die, relays drop out, slots get erased,
// and the PU takes the channel back.  This bench drives the resilience
// simulator (resilience/resilient_sim.h) over a seeded fault sweep:
// node-death fraction rises 0 → 30% while relay dropout, slot erasure,
// and PU preemption stay fixed, and the two routing modes face the
// identical fault plan (same seed → same deaths, same erasures).
// Cooperative routing should degrade gracefully — STBC ladder steps and
// route repairs instead of lost packets.
//
// The 4 death levels × 2 modes = 8 runs shard across the mc/ sweep
// engine (each run a pure function of its index); `--json` emits
// comimo-bench-v1.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/engine.h"
#include "comimo/resilience/resilient_sim.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== extension: fault injection & recovery, cooperative"
               " vs heads-only SISO routing ===\n"
            << "42 SUs in 14 groups, 300 packet rounds; relay dropout 10%,"
               " slot erasure 15%, 2 ARQ attempts, PU preemption on;\n"
            << "node deaths scheduled mid-run (25–75% of the horizon),"
               " identical fault plan for both modes\n\n";

  const auto nodes = clustered_field(14, 3, 6.0, 450.0, 450.0, /*seed=*/11,
                                     /*battery_lo=*/150.0,
                                     /*battery_hi=*/200.0);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 16.0;
  net_cfg.link_range_m = 280.0;
  const CoMimoNet net(nodes, net_cfg);

  const std::vector<double> death_fractions{0.0, 0.1, 0.2, 0.3};
  std::vector<ResilienceReport> reports(death_fractions.size() * 2);
  McConfig mc;
  mc.pool = cli.pool();
  (void)run_trials(
      reports.size(), mc, [&](std::size_t t, Rng& /*rng*/, McAccumulator&) {
        ResilienceConfig cfg;
        cfg.mode = (t % 2 == 0) ? RoutingMode::kCooperative
                                : RoutingMode::kSisoHeadsOnly;
        cfg.rounds = 300;
        cfg.traffic_seed = 11;
        cfg.faults.enabled = true;
        cfg.faults.seed = 42;
        cfg.faults.node_death_fraction = death_fractions[t / 2];
        cfg.faults.relay_dropout_prob = 0.10;
        cfg.faults.slot_erasure_prob = 0.15;
        cfg.faults.pu_preemption = true;
        cfg.arq.max_attempts = 2;  // tight budget: erasures can kill packets
        reports[t] = simulate_with_faults(net, SystemParams{}, cfg);
      });

  BenchReporter reporter("ext_fault_recovery");
  reporter.set_threads(cli.effective_threads());
  TextTable t({"routing", "deaths", "delivery", "retx", "stbc steps",
               "repairs", "goodput kbps"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const bool coop = (i % 2 == 0);
    const double death_fraction = death_fractions[i / 2];
    const ResilienceReport& r = reports[i];
    t.add_row({coop ? "cooperative" : "heads-only SISO",
               TextTable::fmt(100.0 * death_fraction, 0) + "%",
               TextTable::fmt(r.delivery_ratio, 3),
               std::to_string(r.retransmissions),
               std::to_string(r.stbc_degradations),
               std::to_string(r.route_repairs),
               TextTable::fmt(r.goodput_bps / 1e3, 1)});
    Json params = Json::object();
    params.set("mode", coop ? "cooperative" : "siso_heads_only");
    params.set("node_death_fraction", death_fraction);
    Json metrics = Json::object();
    metrics.set("delivery_ratio", r.delivery_ratio);
    metrics.set("retransmissions", r.retransmissions);
    metrics.set("stbc_degradations", r.stbc_degradations);
    metrics.set("route_repairs", r.route_repairs);
    metrics.set("goodput_bps", r.goodput_bps);
    metrics.set("energy_spent_j", r.energy_spent_j);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  t.print(std::cout);
  std::cout << "\nretx = ARQ retransmissions; stbc steps = mid-hop relay"
               " dropouts absorbed by shrinking\n"
            << "the code (G4 -> G3 -> Alamouti -> SISO); repairs ="
               " survivor re-clustering + backbone\n"
            << "rebuilds after node deaths.  Cooperative routing keeps"
               " delivering through dropouts the\n"
            << "SISO chain never sees, at the cost of the wider fault"
               " surface a cooperating cluster\n"
            << "exposes; the fault plan (seeded) is identical for every"
               " row of a given death level.\n";
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
