// Extension study: delivered goodput under escalating fault intensity,
// cooperative vs heads-only routing.
//
// §2.1's reconfigurability claim is only worth something if the network
// keeps delivering while nodes die, relays drop out, slots get erased,
// and the PU takes the channel back.  This bench drives the resilience
// simulator (resilience/resilient_sim.h) over a seeded fault sweep:
// node-death fraction rises 0 → 30% while relay dropout, slot erasure,
// and PU preemption stay fixed, and the two routing modes face the
// identical fault plan (same seed → same deaths, same erasures).
// Cooperative routing should degrade gracefully — STBC ladder steps and
// route repairs instead of lost packets.
//
// A second axis stresses the loss *correlation structure*: on top of
// the i.i.d. slot erasures, a Gilbert–Elliott two-state burst channel
// (resilience/gilbert_elliott.h) adds correlated bad-dwell losses at
// three intensities, at a fixed death level.
//
// The (4 death levels + 3 burst levels) × 2 modes = 14 runs shard
// across the mc/ sweep engine (each run a pure function of its index);
// `--json` emits comimo-bench-v1.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/engine.h"
#include "comimo/resilience/resilient_sim.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== extension: fault injection & recovery, cooperative"
               " vs heads-only SISO routing ===\n"
            << "42 SUs in 14 groups, 300 packet rounds; relay dropout 10%,"
               " slot erasure 15%, 2 ARQ attempts, PU preemption on;\n"
            << "node deaths scheduled mid-run (25–75% of the horizon),"
               " identical fault plan for both modes\n\n";

  const auto nodes = clustered_field(14, 3, 6.0, 450.0, 450.0, /*seed=*/11,
                                     /*battery_lo=*/150.0,
                                     /*battery_hi=*/200.0);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 16.0;
  net_cfg.link_range_m = 280.0;
  const CoMimoNet net(nodes, net_cfg);

  const std::vector<double> death_fractions{0.0, 0.1, 0.2, 0.3};
  // Gilbert–Elliott burst rows: {p_good_to_bad, p_bad_to_good, loss_bad}
  // at a fixed 10% death level, appended after the death sweep.
  struct Burst {
    const char* name;
    double p_gb, p_bg, loss_bad;
  };
  const std::vector<Burst> bursts{
      {"mild", 0.02, 0.25, 0.50},
      {"medium", 0.03, 0.15, 0.70},
      {"heavy", 0.05, 0.08, 0.85},
  };
  const std::size_t death_runs = death_fractions.size() * 2;
  std::vector<ResilienceReport> reports(death_runs + bursts.size() * 2);
  McConfig mc;
  mc.pool = cli.pool();
  (void)run_trials(
      reports.size(), mc, [&](std::size_t t, Rng& /*rng*/, McAccumulator&) {
        ResilienceConfig cfg;
        cfg.mode = (t % 2 == 0) ? RoutingMode::kCooperative
                                : RoutingMode::kSisoHeadsOnly;
        cfg.rounds = 300;
        cfg.traffic_seed = 11;
        cfg.faults.enabled = true;
        cfg.faults.seed = 42;
        cfg.faults.relay_dropout_prob = 0.10;
        cfg.faults.slot_erasure_prob = 0.15;
        cfg.faults.pu_preemption = true;
        cfg.arq.max_attempts = 2;  // tight budget: erasures can kill packets
        if (t < death_runs) {
          cfg.faults.node_death_fraction = death_fractions[t / 2];
        } else {
          const Burst& b = bursts[(t - death_runs) / 2];
          cfg.faults.node_death_fraction = 0.1;
          cfg.faults.burst.enabled = true;
          cfg.faults.burst.p_good_to_bad = b.p_gb;
          cfg.faults.burst.p_bad_to_good = b.p_bg;
          cfg.faults.burst.loss_bad = b.loss_bad;
        }
        reports[t] = simulate_with_faults(net, SystemParams{}, cfg);
      });

  BenchReporter reporter("ext_fault_recovery");
  reporter.set_threads(cli.effective_threads());
  TextTable t({"routing", "deaths", "burst", "delivery", "retx",
               "stbc steps", "repairs", "goodput kbps"});
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const bool coop = (i % 2 == 0);
    const bool burst_row = i >= death_runs;
    const double death_fraction =
        burst_row ? 0.1 : death_fractions[i / 2];
    const Burst* burst =
        burst_row ? &bursts[(i - death_runs) / 2] : nullptr;
    const ResilienceReport& r = reports[i];
    t.add_row({coop ? "cooperative" : "heads-only SISO",
               TextTable::fmt(100.0 * death_fraction, 0) + "%",
               burst ? burst->name : "off",
               TextTable::fmt(r.delivery_ratio, 3),
               std::to_string(r.retransmissions),
               std::to_string(r.stbc_degradations),
               std::to_string(r.route_repairs),
               TextTable::fmt(r.goodput_bps / 1e3, 1)});
    Json params = Json::object();
    params.set("mode", coop ? "cooperative" : "siso_heads_only");
    params.set("node_death_fraction", death_fraction);
    params.set("burst", burst ? burst->name : "off");
    if (burst) {
      params.set("p_good_to_bad", burst->p_gb);
      params.set("p_bad_to_good", burst->p_bg);
      params.set("loss_bad", burst->loss_bad);
    }
    Json metrics = Json::object();
    metrics.set("delivery_ratio", r.delivery_ratio);
    metrics.set("retransmissions", r.retransmissions);
    metrics.set("stbc_degradations", r.stbc_degradations);
    metrics.set("route_repairs", r.route_repairs);
    metrics.set("goodput_bps", r.goodput_bps);
    metrics.set("energy_spent_j", r.energy_spent_j);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  t.print(std::cout);
  std::cout << "\nretx = ARQ retransmissions; stbc steps = mid-hop relay"
               " dropouts absorbed by shrinking\n"
            << "the code (G4 -> G3 -> Alamouti -> SISO); repairs ="
               " survivor re-clustering + backbone\n"
            << "rebuilds after node deaths.  Cooperative routing keeps"
               " delivering through dropouts the\n"
            << "SISO chain never sees, at the cost of the wider fault"
               " surface a cooperating cluster\n"
            << "exposes; the fault plan (seeded) is identical for every"
               " row of a given death level.\n";
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
