// Extension study: the outage view of the cooperative diversity gain.
//
// The paper designs for *average* BER (eqs. (5)–(6)); link engineers
// usually budget for *outage* — the probability the instantaneous SNR
// drops below a decodability threshold.  Both views expose the same
// diversity order mt·mr; this bench prints the outage curves and the
// outage-constrained energy requirements next to the average-BER ones.
#include <iostream>
#include <vector>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/common/units.h"
#include "comimo/energy/ebbar.h"
#include "comimo/energy/outage.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  BenchReporter reporter("ext_outage_analysis");
  reporter.set_threads(cli.effective_threads());
  std::cout << "=== extension: outage analysis of cooperative links ===\n\n";

  const OutageAnalyzer oa;

  // --- outage curves ----------------------------------------------------
  std::cout << "--- P_out vs mean branch SNR (threshold 5 dB) ---\n";
  const double th = db_to_linear(5.0);
  std::vector<double> snr_db;
  for (double s = 5.0; s <= 30.0 + 1e-9; s += 2.5) snr_db.push_back(s);
  SeriesChart chart("mean SNR [dB]", snr_db);
  for (const auto& [mt, mr] :
       std::vector<std::pair<unsigned, unsigned>>{{1, 1}, {2, 1}, {2, 2},
                                                  {2, 3}}) {
    std::vector<double> pout;
    for (const double s : snr_db) {
      pout.push_back(oa.outage_probability(db_to_linear(s), th, mt, mr));
    }
    chart.add_series(std::to_string(mt) + "x" + std::to_string(mr),
                     std::move(pout));
  }
  chart.print(std::cout, /*log_y=*/true);

  // --- diversity order ----------------------------------------------------
  std::cout << "\n--- empirical diversity order (slope of the outage"
               " curve) ---\n";
  TextTable orders({"link", "order (expected mt*mr)"});
  for (const auto& [mt, mr] :
       std::vector<std::pair<unsigned, unsigned>>{{1, 1}, {2, 1}, {2, 2},
                                                  {2, 3}, {3, 3}}) {
    orders.add_row({std::to_string(mt) + "x" + std::to_string(mr),
                    TextTable::fmt(oa.empirical_diversity_order(th, mt, mr),
                                   2)});
  }
  orders.print(std::cout);

  // --- energy: outage-constrained vs average-BER ---------------------------
  std::cout << "\n--- received energy per bit: 1% outage @ 7 dB threshold"
               " vs average BER 1e-3 ---\n";
  const EbBarSolver solver;
  TextTable energies({"link", "ebar (avg BER 1e-3) [J]",
                      "e_out (1% @ 7 dB) [J]", "ratio"});
  for (const auto& [mt, mr] :
       std::vector<std::pair<unsigned, unsigned>>{{1, 1}, {2, 1}, {1, 2},
                                                  {2, 2}, {2, 3}}) {
    const double ebar = solver.solve(1e-3, 2, mt, mr);
    const double eout =
        oa.required_energy(0.01, db_to_linear(7.0), mt, mr);
    energies.add_row({std::to_string(mt) + "x" + std::to_string(mr),
                      TextTable::sci(ebar), TextTable::sci(eout),
                      TextTable::fmt(eout / ebar, 2)});
    Json params = Json::object();
    params.set("mt", mt);
    params.set("mr", mr);
    Json metrics = Json::object();
    metrics.set("ebar_avg_ber_j", ebar);
    metrics.set("e_outage_j", eout);
    metrics.set("diversity_order", oa.empirical_diversity_order(th, mt, mr));
    reporter.add_record(std::move(params), std::move(metrics));
  }
  energies.print(std::cout);
  std::cout << "\nBoth budgets collapse at the same mt*mr rate — the"
               " diversity gain the cooperative paradigms monetize.\n";
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
