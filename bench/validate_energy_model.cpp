// Model-validation harness: does the closed-form energy model deliver
// what it promises when actual waveforms fly?
//
// For every (mt, mr) in the Fig. 7 grid, plan an underlay hop at a
// target BER, then execute the full three-step Algorithm-2 hop at the
// sample level (DF broadcast, STBC over Rayleigh H at exactly the
// planned ē_b, analog forwarding to the head) and compare the measured
// end-to-end BER with the plan's target.
//
// The 9 grid cells shard across the mc/ sweep engine (each cell is a
// pure function of its (mt, mr) index); `--json` emits comimo-bench-v1.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/engine.h"
#include "comimo/testbed/coop_hop_sim.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== validation: planned vs measured hop BER ===\n"
            << "200 m hop, target BER 1e-2, 200k bits per cell\n\n";

  const UnderlayCooperativeHop planner;
  struct Cell {
    unsigned mt = 0;
    unsigned mr = 0;
    UnderlayHopPlan plan;
    CoopHopSimResult r;
  };
  std::vector<Cell> cells(9);

  McConfig mc;
  mc.pool = cli.pool();
  (void)run_trials(
      cells.size(), mc, [&](std::size_t t, Rng& /*rng*/, McAccumulator&) {
        Cell& cell = cells[t];
        cell.mt = static_cast<unsigned>(t / 3) + 1;
        cell.mr = static_cast<unsigned>(t % 3) + 1;
        UnderlayHopConfig cfg;
        cfg.mt = cell.mt;
        cfg.mr = cell.mr;
        cfg.hop_distance_m = 200.0;
        cfg.ber = 1e-2;
        CoopHopSimConfig sim;
        sim.plan = planner.plan(cfg, BSelectionRule::kMinTotalPa);
        sim.bits = 200000;
        sim.seed = 11;
        cell.plan = sim.plan;
        cell.r = simulate_cooperative_hop(sim);
      });

  BenchReporter reporter("validate_energy_model");
  reporter.set_threads(cli.effective_threads());
  TextTable table({"mt x mr", "b", "ebar [J]", "target BER",
                   "measured BER", "ratio", "intra DF errors"});
  for (const Cell& cell : cells) {
    table.add_row({std::to_string(cell.mt) + "x" + std::to_string(cell.mr),
                   std::to_string(cell.plan.b),
                   TextTable::sci(cell.plan.ebar),
                   TextTable::sci(cell.r.target_ber),
                   TextTable::sci(cell.r.ber),
                   TextTable::fmt(cell.r.ber / cell.r.target_ber, 2),
                   TextTable::sci(cell.r.intra_error_rate)});
    Json params = Json::object();
    params.set("mt", cell.mt);
    params.set("mr", cell.mr);
    params.set("b", cell.plan.b);
    Json metrics = Json::object();
    metrics.set("ebar_j", cell.plan.ebar);
    metrics.set("target_ber", cell.r.target_ber);
    metrics.set("measured_ber", cell.r.ber);
    metrics.set("intra_error_rate", cell.r.intra_error_rate);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  table.print(std::cout);
  std::cout << "\nA ratio near 1.0 means the eq. (5) inversion is"
               " faithful; mild optimism (<1) reflects the MQAM"
               " union-bound style approximation, mild pessimism (>1)"
               " the DF/forwarding impairments the closed form"
               " ignores.\n";
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
