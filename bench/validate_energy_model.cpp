// Model-validation harness: does the closed-form energy model deliver
// what it promises when actual waveforms fly?
//
// For every (mt, mr) in the Fig. 7 grid, plan an underlay hop at a
// target BER, then execute the full three-step Algorithm-2 hop at the
// sample level (DF broadcast, STBC over Rayleigh H at exactly the
// planned ē_b, analog forwarding to the head) and compare the measured
// end-to-end BER with the plan's target.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/testbed/coop_hop_sim.h"

int main() {
  using namespace comimo;
  std::cout << "=== validation: planned vs measured hop BER ===\n"
            << "200 m hop, target BER 1e-2, 200k bits per cell\n\n";

  const UnderlayCooperativeHop planner;
  TextTable table({"mt x mr", "b", "ebar [J]", "target BER",
                   "measured BER", "ratio", "intra DF errors"});
  for (unsigned mt = 1; mt <= 3; ++mt) {
    for (unsigned mr = 1; mr <= 3; ++mr) {
      UnderlayHopConfig cfg;
      cfg.mt = mt;
      cfg.mr = mr;
      cfg.hop_distance_m = 200.0;
      cfg.ber = 1e-2;
      CoopHopSimConfig sim;
      sim.plan = planner.plan(cfg, BSelectionRule::kMinTotalPa);
      sim.bits = 200000;
      sim.seed = 11;
      const CoopHopSimResult r = simulate_cooperative_hop(sim);
      table.add_row({std::to_string(mt) + "x" + std::to_string(mr),
                     std::to_string(sim.plan.b),
                     TextTable::sci(sim.plan.ebar),
                     TextTable::sci(r.target_ber), TextTable::sci(r.ber),
                     TextTable::fmt(r.ber / r.target_ber, 2),
                     TextTable::sci(r.intra_error_rate)});
    }
  }
  table.print(std::cout);
  std::cout << "\nA ratio near 1.0 means the eq. (5) inversion is"
               " faithful; mild optimism (<1) reflects the MQAM"
               " union-bound style approximation, mild pessimism (>1)"
               " the DF/forwarding impairments the closed form"
               " ignores.\n";
  return 0;
}
