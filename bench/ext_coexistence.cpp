// Extension study: what the §5 null actually buys at link level.
//
// Fig. 8 shows the *pattern*; this bench runs the PU link while the SU
// pair transmits simultaneously in the same band and measures the PU's
// BER (a) with the SUs silent, (b) with the null steered, (c) without
// phase control — sweeping the null residual that indoor multipath
// leaves (Fig. 8 measured ≈ 0.125).
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/testbed/experiments.h"

int main() {
  using namespace comimo;
  std::cout << "=== extension: interweave coexistence at link level ===\n"
            << "PU link at 10 dB; SU pair at 6 dB INR per element,"
               " transmitting simultaneously\n\n";

  TextTable t({"null residual", "PU BER (SUs silent)",
               "PU BER (nulled)", "PU BER (un-nulled)",
               "SU link BER"});
  for (const double residual : {0.0, 0.125, 0.3, 0.6, 1.0}) {
    InterweaveCoexistenceConfig cfg;
    cfg.null_residual = residual;
    cfg.total_bits = 200000;
    cfg.seed = 9;
    const auto r = run_interweave_coexistence(cfg);
    t.add_row({TextTable::fmt(residual, 3),
               TextTable::pct(r.pr_ber_baseline),
               TextTable::pct(r.pr_ber_nulled),
               TextTable::pct(r.pr_ber_unnulled),
               TextTable::pct(r.sr_ber_nulled)});
  }
  t.print(std::cout);
  std::cout << "\nAt Fig. 8's measured indoor residual (~0.125) the PU"
               " link is statistically indistinguishable from the\n"
            << "SUs-silent baseline, while un-nulled simultaneous"
               " transmission multiplies its error rate.\n";
  return 0;
}
