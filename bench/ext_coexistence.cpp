// Extension study: what the §5 null actually buys at link level.
//
// Fig. 8 shows the *pattern*; this bench runs the PU link while the SU
// pair transmits simultaneously in the same band and measures the PU's
// BER (a) with the SUs silent, (b) with the null steered, (c) without
// phase control — sweeping the null residual that indoor multipath
// leaves (Fig. 8 measured ≈ 0.125).
//
// The 5 residual points shard across the mc/ sweep engine (each point a
// pure function of its index); `--json` emits comimo-bench-v1.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/engine.h"
#include "comimo/testbed/experiments.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== extension: interweave coexistence at link level ===\n"
            << "PU link at 10 dB; SU pair at 6 dB INR per element,"
               " transmitting simultaneously\n\n";

  const std::vector<double> residuals{0.0, 0.125, 0.3, 0.6, 1.0};
  std::vector<InterweaveCoexistenceResult> results(residuals.size());
  McConfig mc;
  mc.pool = cli.pool();
  (void)run_trials(
      results.size(), mc, [&](std::size_t t, Rng& /*rng*/, McAccumulator&) {
        InterweaveCoexistenceConfig cfg;
        cfg.null_residual = residuals[t];
        cfg.total_bits = 200000;
        cfg.seed = 9;
        results[t] = run_interweave_coexistence(cfg);
      });

  BenchReporter reporter("ext_coexistence");
  reporter.set_threads(cli.effective_threads());
  TextTable t({"null residual", "PU BER (SUs silent)",
               "PU BER (nulled)", "PU BER (un-nulled)",
               "SU link BER"});
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    const auto& r = results[i];
    t.add_row({TextTable::fmt(residuals[i], 3),
               TextTable::pct(r.pr_ber_baseline),
               TextTable::pct(r.pr_ber_nulled),
               TextTable::pct(r.pr_ber_unnulled),
               TextTable::pct(r.sr_ber_nulled)});
    Json params = Json::object();
    params.set("null_residual", residuals[i]);
    Json metrics = Json::object();
    metrics.set("pr_ber_baseline", r.pr_ber_baseline);
    metrics.set("pr_ber_nulled", r.pr_ber_nulled);
    metrics.set("pr_ber_unnulled", r.pr_ber_unnulled);
    metrics.set("sr_ber_nulled", r.sr_ber_nulled);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  t.print(std::cout);
  std::cout << "\nAt Fig. 8's measured indoor residual (~0.125) the PU"
               " link is statistically indistinguishable from the\n"
            << "SUs-silent baseline, while un-nulled simultaneous"
               " transmission multiplies its error rate.\n";
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
