// Table 2 reproduction — "BER results for single-relay overlay system".
//
// One PU transmitter, one SU decode-and-forward relay, one PU receiver
// in a 2 m equilateral triangle with an obstructing board on the direct
// path; 100 000 BPSK bits per experiment, equal-gain combining; three
// experiments (seeds) plus the average, as in the paper.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/testbed/experiments.h"

int main() {
  using namespace comimo;
  std::cout << "=== Table 2: single-relay overlay BER ===\n"
            << "100000 bits/run, BPSK, EGC at the receiver\n\n";

  TextTable table({"Experiment", "with cooperation", "without cooperation"});
  double coop_sum = 0.0;
  double direct_sum = 0.0;
  const int runs = 3;
  for (int run = 1; run <= runs; ++run) {
    const OverlayBerResult r = run_overlay_ber(
        table2_single_relay_config(static_cast<std::uint64_t>(run)));
    coop_sum += r.ber_cooperative;
    direct_sum += r.ber_direct;
    table.add_row({std::to_string(run), TextTable::pct(r.ber_cooperative),
                   TextTable::pct(r.ber_direct)});
  }
  table.add_row({"Average", TextTable::pct(coop_sum / runs),
                 TextTable::pct(direct_sum / runs)});
  table.print(std::cout);
  std::cout << "\nPaper averages: 2.46% with cooperation, 10.87% without.\n"
            << "Measured gap: "
            << TextTable::fmt(direct_sum / std::max(coop_sum, 1e-9), 1)
            << "x (paper: 4.4x)\n";
  return 0;
}
