// Table 2 reproduction — "BER results for single-relay overlay system".
//
// One PU transmitter, one SU decode-and-forward relay, one PU receiver
// in a 2 m equilateral triangle with an obstructing board on the direct
// path; 100 000 BPSK bits per experiment, equal-gain combining; three
// experiments (seeds) plus the average, as in the paper.
//
// The three experiments run on the mc/ sweep engine (experiment k is a
// pure function of seed k+1); `--json <path>` emits comimo-bench-v1.
#include <iostream>

#include "comimo/common/bench_json.h"
#include "comimo/common/table.h"
#include "comimo/mc/engine.h"
#include "comimo/testbed/experiments.h"

int main(int argc, char** argv) {
  using namespace comimo;
  const BenchCli cli = parse_bench_cli(argc, argv);
  std::cout << "=== Table 2: single-relay overlay BER ===\n"
            << "100000 bits/run, BPSK, EGC at the receiver\n\n";

  const std::size_t runs = 3;
  std::vector<OverlayBerResult> results(runs);
  McConfig mc;
  mc.pool = cli.pool();
  const McResult run = run_trials(
      runs, mc, [&](std::size_t t, Rng& /*rng*/, McAccumulator& acc) {
        results[t] = run_overlay_ber(
            table2_single_relay_config(static_cast<std::uint64_t>(t + 1)));
        acc.observe("ber_cooperative", results[t].ber_cooperative);
        acc.observe("ber_direct", results[t].ber_direct);
      });

  BenchReporter reporter("table2_overlay_single_relay");
  reporter.set_threads(cli.effective_threads());
  TextTable table({"Experiment", "with cooperation", "without cooperation"});
  for (std::size_t t = 0; t < runs; ++t) {
    table.add_row({std::to_string(t + 1),
                   TextTable::pct(results[t].ber_cooperative),
                   TextTable::pct(results[t].ber_direct)});
    Json params = Json::object();
    params.set("experiment", t + 1);
    Json metrics = Json::object();
    metrics.set("ber_cooperative", results[t].ber_cooperative);
    metrics.set("ber_direct", results[t].ber_direct);
    reporter.add_record(std::move(params), std::move(metrics));
  }
  const double coop_avg = run.acc.stat("ber_cooperative").mean();
  const double direct_avg = run.acc.stat("ber_direct").mean();
  table.add_row({"Average", TextTable::pct(coop_avg),
                 TextTable::pct(direct_avg)});
  table.print(std::cout);
  std::cout << "\nPaper averages: 2.46% with cooperation, 10.87% without.\n"
            << "Measured gap: "
            << TextTable::fmt(direct_avg / std::max(coop_avg, 1e-9), 1)
            << "x (paper: 4.4x)\n";

  Json params = Json::object();
  params.set("summary", true);
  Json metrics = Json::object();
  metrics.set("ber_cooperative_avg", coop_avg);
  metrics.set("ber_direct_avg", direct_avg);
  reporter.add_record(std::move(params), std::move(metrics), runs,
                      run.info.trials_per_sec);
  if (!cli.json_path.empty()) reporter.write_file(cli.json_path);
  return 0;
}
