// Fork/lifetime discipline of the multi-process shard driver (the
// daemon-grade contract of mc/sharded.h):
//
//   1. forking while other threads hammer the obs registry (gauges,
//      histograms) and while the parent thread pool has been busy must
//      never deadlock the child — the parent quiesces the pool and
//      holds the registry's ForkGuard across fork(), so no child ever
//      inherits a mutex locked by a thread it doesn't have;
//   2. a shard worker killed by a signal mid-run surfaces as
//      ShardWorkerError — a *recoverable* exception after every worker
//      is reaped — never an abort, never a zombie;
//   3. the surviving process keeps working: the same sharded call
//      succeeds afterwards and stays bit-identical to the serial run.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/mc/engine.h"
#include "comimo/mc/sharded.h"
#include "comimo/obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define COMIMO_TEST_HAS_FORK 1
#include <csignal>
#include <unistd.h>
#else
#define COMIMO_TEST_HAS_FORK 0
#endif

namespace comimo {
namespace {

void noisy_trial(std::size_t t, Rng& rng, McAccumulator& acc) {
  acc.count("trials");
  if (rng.bernoulli(0.25)) acc.count("hits");
  acc.observe("x", rng.complex_gaussian().real());
  acc.observe("t", static_cast<double>(t));
}

TEST(ForkSafety, ForkUnderActiveObsTrafficCompletes) {
#if !COMIMO_TEST_HAS_FORK
  GTEST_SKIP() << "fork() not available";
#else
  // Reference result, computed serially before any obs noise.
  McConfig cfg;
  cfg.seed = 77;
  ThreadPool serial_pool(1);
  cfg.pool = &serial_pool;
  const McResult ref = run_trials(4000, cfg, noisy_trial);

  obs::set_enabled(true);
  std::atomic<bool> stop{false};
  // Hammer the registry from several threads: gauge sets (per-cell
  // mutexes), histogram observes (registry mutex via the default
  // shard), and fresh registrations (registry mutex + vector growth).
  // Any of these mutexes inherited locked by a forked child would
  // deadlock its first obs call; the ForkGuard makes that impossible.
  std::vector<std::thread> hammers;
  for (int h = 0; h < 4; ++h) {
    hammers.emplace_back([&stop, h] {
      auto gauge = obs::MetricRegistry::global().gauge(
          "fork_test.gauge_" + std::to_string(h), obs::Domain::kRuntime);
      auto histo = obs::MetricRegistry::global().histogram(
          "fork_test.histo_" + std::to_string(h), obs::Domain::kRuntime);
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        gauge.set(static_cast<double>(i));
        histo.observe(static_cast<double>(i % 97));
        ++i;
      }
    });
  }

  // Also keep the shared pool warm so quiesce_for_fork has real work
  // to drain.
  ThreadPool pool(4);
  McConfig forked = cfg;
  forked.pool = &pool;
  ShardOptions options;
  options.shards = 3;
  options.fork = true;
  for (int round = 0; round < 5; ++round) {
    const McResult run = run_trials_sharded(4000, forked, options,
                                            noisy_trial);
    EXPECT_EQ(run.acc.counter("trials"), ref.acc.counter("trials"));
    EXPECT_EQ(run.acc.counter("hits"), ref.acc.counter("hits"));
    EXPECT_EQ(run.acc.stat("x").mean(), ref.acc.stat("x").mean());
    EXPECT_EQ(run.acc.stat("x").variance(), ref.acc.stat("x").variance());
  }

  stop.store(true);
  for (auto& t : hammers) t.join();
  obs::set_enabled(false);
#endif
}

TEST(ForkSafety, KilledShardWorkerIsRecoverable) {
#if !COMIMO_TEST_HAS_FORK
  GTEST_SKIP() << "fork() not available";
#else
  const pid_t parent = ::getpid();
  // 2000 trials -> chunk size 1 -> 2000 chunks; shard 1 of 2 owns
  // chunks [1000, 2000).  The trial SIGKILLs itself at trial 1500, but
  // only when running in a forked worker — the parent must never die.
  const auto killer = [parent](std::size_t t, Rng& rng, McAccumulator& acc) {
    if (t == 1500 && ::getpid() != parent) {
      ::raise(SIGKILL);
    }
    noisy_trial(t, rng, acc);
  };

  ThreadPool pool(2);
  McConfig cfg;
  cfg.seed = 5;
  cfg.pool = &pool;
  ShardOptions options;
  options.shards = 2;
  options.fork = true;
  EXPECT_THROW((void)run_trials_sharded(2000, cfg, options, killer),
               ShardWorkerError);

  // Recoverable means the process is still healthy: the same run
  // without the kill completes and matches the serial reduction.
  const McResult ok = run_trials_sharded(2000, cfg, options, noisy_trial);
  ThreadPool serial_pool(1);
  McConfig serial = cfg;
  serial.pool = &serial_pool;
  const McResult ref = run_trials(2000, serial, noisy_trial);
  EXPECT_EQ(ok.acc.counter("hits"), ref.acc.counter("hits"));
  EXPECT_EQ(ok.acc.stat("x").mean(), ref.acc.stat("x").mean());
#endif
}

TEST(ForkSafety, WorkerAbortReportsExitStatus) {
#if !COMIMO_TEST_HAS_FORK
  GTEST_SKIP() << "fork() not available";
#else
  const pid_t parent = ::getpid();
  // A worker whose trial throws exits with status 1 (the worker's
  // catch-all) — the driver classifies that as a worker failure too.
  const auto thrower = [parent](std::size_t t, Rng&, McAccumulator& acc) {
    if (t == 100 && ::getpid() != parent) {
      throw NumericError("boom in worker");
    }
    acc.count("trials");
  };
  ThreadPool pool(1);
  McConfig cfg;
  cfg.pool = &pool;
  ShardOptions options;
  options.shards = 2;
  options.fork = true;
  EXPECT_THROW((void)run_trials_sharded(400, cfg, options, thrower),
               ShardWorkerError);
#endif
}

TEST(ForkSafety, SequentialFallbackMatchesForkedRun) {
  ThreadPool pool(2);
  McConfig cfg;
  cfg.seed = 99;
  cfg.pool = &pool;
  ShardOptions forked;
  forked.shards = 3;
  forked.fork = true;
  ShardOptions inproc;
  inproc.shards = 3;
  inproc.fork = false;
  const McResult a = run_trials_sharded(3000, cfg, forked, noisy_trial);
  const McResult b = run_trials_sharded(3000, cfg, inproc, noisy_trial);
  EXPECT_EQ(a.acc.counter("hits"), b.acc.counter("hits"));
  EXPECT_EQ(a.acc.stat("x").mean(), b.acc.stat("x").mean());
  EXPECT_EQ(a.acc.stat("x").variance(), b.acc.stat("x").variance());
}

}  // namespace
}  // namespace comimo
