// Tests for the regularized incomplete gamma functions and the outage
// analyzer built on them.
#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/energy/outage.h"
#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/special.h"

namespace comimo {
namespace {

// --- incomplete gamma ---------------------------------------------------

TEST(GammaP, KnownValues) {
  // P(1, x) = 1 − e^{-x} (exponential CDF).
  for (double x : {0.1, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << x;
  }
  // P(a, 0) = 0; P → 1 as x → ∞.
  EXPECT_DOUBLE_EQ(gamma_p(3.0, 0.0), 0.0);
  EXPECT_NEAR(gamma_p(3.0, 100.0), 1.0, 1e-12);
}

TEST(GammaP, IntegerShapeMatchesErlangSum) {
  // P(k, x) = 1 − e^{-x} Σ_{i<k} x^i/i!.
  for (unsigned k : {2u, 4u, 6u}) {
    for (double x : {0.5, 2.0, 5.0, 12.0}) {
      double sum = 0.0;
      double term = 1.0;
      for (unsigned i = 0; i < k; ++i) {
        sum += term;
        term *= x / (i + 1.0);
      }
      EXPECT_NEAR(gamma_p(k, x), 1.0 - std::exp(-x) * sum, 1e-11)
          << "k=" << k << " x=" << x;
    }
  }
}

TEST(GammaP, ComplementsGammaQ) {
  for (double a : {0.5, 1.0, 4.5, 10.0}) {
    for (double x : {0.2, 1.0, 6.0, 20.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
    }
  }
}

TEST(GammaP, MatchesEmpiricalGammaCdf) {
  Rng rng(3);
  const double a = 4.0;
  const double x = 3.2;
  std::size_t below = 0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    below += rng.gamma(a) < x;
  }
  EXPECT_NEAR(static_cast<double>(below) / trials, gamma_p(a, x), 0.005);
}

TEST(GammaPInverse, RoundTrip) {
  for (double a : {1.0, 2.0, 6.0, 12.0}) {
    for (double p : {0.001, 0.05, 0.5, 0.9, 0.999}) {
      const double x = gamma_p_inverse(a, p);
      EXPECT_NEAR(gamma_p(a, x), p, 1e-8) << "a=" << a << " p=" << p;
    }
  }
  EXPECT_DOUBLE_EQ(gamma_p_inverse(3.0, 0.0), 0.0);
  EXPECT_THROW((void)gamma_p_inverse(3.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)gamma_p(0.0, 1.0), InvalidArgument);
}

// --- outage analyzer ------------------------------------------------------

TEST(Outage, SisoIsExponentialOutage) {
  const OutageAnalyzer oa;
  // SISO Rayleigh: P_out = 1 − e^{−γ_th/γ̄}.
  const double mean = db_to_linear(10.0);
  const double th = db_to_linear(3.0);
  EXPECT_NEAR(oa.outage_probability(mean, th, 1, 1),
              1.0 - std::exp(-th / mean), 1e-12);
}

TEST(Outage, DiversityReducesOutage) {
  const OutageAnalyzer oa;
  const double mean = db_to_linear(10.0);
  const double th = db_to_linear(3.0);
  double prev = 1.0;
  for (unsigned m = 1; m <= 4; ++m) {
    // Hold the per-link *total* mean SNR comparable by fixing mean per
    // branch: more branches strictly reduce outage.
    const double p = oa.outage_probability(mean, th, m, 1);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(Outage, DiversityOrderIsAntennaProduct) {
  const OutageAnalyzer oa;
  for (unsigned mt : {1u, 2u, 3u}) {
    for (unsigned mr : {1u, 2u}) {
      EXPECT_NEAR(oa.empirical_diversity_order(1.0, mt, mr),
                  static_cast<double>(mt * mr), 0.1)
          << mt << "x" << mr;
    }
  }
}

TEST(Outage, RequiredMeanSnrInverts) {
  const OutageAnalyzer oa;
  const double th = db_to_linear(5.0);
  for (const double p_out : {0.1, 0.01, 0.001}) {
    const double mean = oa.required_mean_snr(p_out, th, 2, 2);
    EXPECT_NEAR(oa.outage_probability(mean, th, 2, 2), p_out,
                p_out * 1e-6);
  }
}

TEST(Outage, DiversitySlashesRequiredEnergy) {
  // At 1% outage, a 2×2 link needs far less energy than SISO for the
  // same instantaneous-SNR threshold — the outage view of Fig. 7.
  const OutageAnalyzer oa;
  const double gamma_th = db_to_linear(7.0);
  const double e_siso = oa.required_energy(0.01, gamma_th, 1, 1);
  const double e_mimo = oa.required_energy(0.01, gamma_th, 2, 2);
  EXPECT_GT(e_siso / e_mimo, 10.0);
}

TEST(Outage, RequiredEnergyMatchesMonteCarlo) {
  const OutageAnalyzer oa;
  const SystemParams params;
  const double gamma_th = db_to_linear(6.0);
  const double e = oa.required_energy(0.05, gamma_th, 2, 1);
  Rng rng(9);
  std::size_t outages = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    const CMatrix h = CMatrix::random_gaussian(1, 2, rng);
    const double inst = h.frobenius_norm2() * e /
                        (params.n0_w_per_hz * 2.0);
    outages += inst < gamma_th;
  }
  EXPECT_NEAR(static_cast<double>(outages) / trials, 0.05, 0.005);
}

TEST(Outage, Validation) {
  const OutageAnalyzer oa;
  EXPECT_THROW((void)oa.outage_probability(0.0, 1.0, 1, 1),
               InvalidArgument);
  EXPECT_THROW((void)oa.required_mean_snr(0.0, 1.0, 1, 1),
               InvalidArgument);
  EXPECT_THROW((void)oa.required_mean_snr(0.1, 1.0, 0, 1),
               InvalidArgument);
}

}  // namespace
}  // namespace comimo
