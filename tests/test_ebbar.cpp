#include "comimo/energy/ebbar.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/energy/mimo_energy.h"

namespace comimo {
namespace {

TEST(EbBarSolver, SolveInvertsForwardMap) {
  const EbBarSolver solver;
  for (const double p : {0.05, 0.005, 0.0005}) {
    for (const int b : {1, 2, 4, 8}) {
      for (const unsigned mt : {1u, 2u}) {
        for (const unsigned mr : {1u, 3u}) {
          const double e = solver.solve(p, b, mt, mr);
          EXPECT_NEAR(solver.average_ber(e, b, mt, mr), p, p * 1e-6)
              << "p=" << p << " b=" << b << " mt=" << mt << " mr=" << mr;
        }
      }
    }
  }
}

TEST(EbBarSolver, MatchesPaperSisoAnchor) {
  // §6.2: "when b = 2, ē_b = 1.90e−18 if mt = mr = 1" (p = 0.001).
  const EbBarSolver solver;
  const double e = solver.solve(1e-3, 2, 1, 1);
  EXPECT_NEAR(e, 1.90e-18, 0.15e-18);
}

TEST(EbBarSolver, PaperMimoAnchorOrderOfMagnitude) {
  // §6.2: ē_b ≈ 3.20e−20 for mt = 2, mr = 3 — the paper stresses the
  // *magnitude* gap ("up to three orders"); we require the same order
  // of magnitude and a ≥ 50× SISO-to-MIMO ratio.
  const EbBarSolver solver;
  const double siso = solver.solve(1e-3, 2, 1, 1);
  const double mimo = solver.solve(1e-3, 2, 2, 3);
  EXPECT_GT(mimo, 3e-21);
  EXPECT_LT(mimo, 3e-19);
  EXPECT_GT(siso / mimo, 50.0);
}

TEST(EbBarSolver, MonotoneInTargetBer) {
  const EbBarSolver solver;
  double prev = 0.0;
  for (const double p : {0.1, 0.01, 0.001, 0.0001}) {
    const double e = solver.solve(p, 2, 2, 2);
    EXPECT_GT(e, prev) << "tighter BER must need more energy";
    prev = e;
  }
}

TEST(EbBarSolver, DiversityReducesEnergy) {
  const EbBarSolver solver;
  const double p = 1e-3;
  // Adding receive antennas always helps.
  EXPECT_GT(solver.solve(p, 2, 1, 1), solver.solve(p, 2, 1, 2));
  EXPECT_GT(solver.solve(p, 2, 1, 2), solver.solve(p, 2, 1, 3));
  // Adding transmit antennas helps at fixed mr (diversity beats the
  // 1/mt energy split at this BER).
  EXPECT_GT(solver.solve(p, 2, 1, 1), solver.solve(p, 2, 2, 1));
}

TEST(EbBarSolver, AverageBerDecreasesInEnergy) {
  const EbBarSolver solver;
  double prev = 1.0;
  for (double e = 1e-22; e < 1e-17; e *= 10.0) {
    const double ber = solver.average_ber(e, 4, 2, 2);
    EXPECT_LE(ber, prev);
    prev = ber;
  }
}

TEST(EbBarSolver, QuadratureAgreesWithClosedForm) {
  const EbBarSolver solver;
  for (const int b : {1, 2, 4}) {
    for (const unsigned mt : {1u, 2u}) {
      for (const unsigned mr : {1u, 3u}) {
        const double e = solver.solve(1e-3, b, mt, mr);
        const double closed = solver.average_ber(e, b, mt, mr);
        const double quad = solver.average_ber_quadrature(e, b, mt, mr, 96);
        EXPECT_NEAR(quad, closed, closed * 5e-3)
            << "b=" << b << " mt=" << mt << " mr=" << mr;
      }
    }
  }
}

TEST(EbBarSolver, MonteCarloAgreesWithClosedForm) {
  const EbBarSolver solver;
  const double e = solver.solve(5e-3, 2, 2, 2);
  const double closed = solver.average_ber(e, 2, 2, 2);
  const double mc = solver.average_ber_monte_carlo(e, 2, 2, 2, 300000, 11);
  EXPECT_NEAR(mc, closed, closed * 0.1);
}

TEST(EbBarSolver, DomainChecks) {
  const EbBarSolver solver;
  EXPECT_THROW((void)solver.solve(0.0, 2, 1, 1), InvalidArgument);
  EXPECT_THROW((void)solver.solve(1.0, 2, 1, 1), InvalidArgument);
  EXPECT_THROW((void)solver.average_ber(-1.0, 2, 1, 1), InvalidArgument);
  EXPECT_THROW((void)solver.average_ber(1e-18, 0, 1, 1), InvalidArgument);
  EXPECT_THROW((void)solver.average_ber(1e-18, 2, 0, 1), InvalidArgument);
}

TEST(EbBarSolver, UnattainableTargetThrows) {
  // At zero energy the BER is A(b)/2 (= 0.375 for b = 4); asking for a
  // looser target is not a binding constraint and must be reported.
  const EbBarSolver solver;
  EXPECT_THROW((void)solver.solve(0.4, 4, 1, 1), NumericError);
  // Just inside the attainable range still solves.
  EXPECT_GT(solver.solve(0.37, 4, 1, 1), 0.0);
}

TEST(EbBarSolver, ConventionsRelateByMt) {
  // Under the per-antenna-split convention of the literal eq. (5),
  // ē_b(mt, mr) = mt · ē_b^total(mt, mr); mt = 1 cases coincide.
  const EbBarSolver split(SystemParams{},
                          EbBarConvention::kPerAntennaSplit);
  const EbBarSolver total(SystemParams{}, EbBarConvention::kTotalEnergy);
  for (const unsigned mt : {1u, 2u, 3u}) {
    const double es = split.solve(1e-3, 2, mt, 2);
    const double et = total.solve(1e-3, 2, mt, 2);
    EXPECT_NEAR(es / et, static_cast<double>(mt), 1e-6) << "mt=" << mt;
  }
}

TEST(EbBarSolver, TotalEnergyConventionRestoresPaperOrdering) {
  // The Fig. 6 anchors (D3 = √m·D2) require that, per SU, the MISO
  // transmit PA energy be 1/m of the SIMO one; kTotalEnergy achieves
  // this because ē_b(m,1) = ē_b(1,m) while eq. (3) still splits by mt.
  const MimoEnergyModel model(SystemParams{},
                              EbBarConvention::kTotalEnergy);
  const double simo = model.pa_energy(2, 5e-4, 1, 3, 200.0);
  const double miso = model.pa_energy(2, 5e-4, 3, 1, 200.0);
  EXPECT_NEAR(simo / miso, 3.0, 1e-6);
}

TEST(EbBarSolver, ScalesWithN0) {
  // Doubling N0 doubles the required energy (γ_b depends on ē_b/N0).
  SystemParams params;
  const EbBarSolver base(params);
  params.n0_w_per_hz *= 2.0;
  const EbBarSolver doubled(params);
  const double e1 = base.solve(1e-3, 2, 2, 2);
  const double e2 = doubled.solve(1e-3, 2, 2, 2);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-6);
}

}  // namespace
}  // namespace comimo
