#include "comimo/net/comimonet.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "comimo/common/error.h"
#include "comimo/net/spanning_tree.h"

namespace comimo {
namespace {

std::vector<SuNode> two_groups() {
  // Two tight groups 100 m apart.
  std::vector<SuNode> nodes;
  const std::vector<Vec2> pos{{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0},
                              {100.0, 0.0}, {102.0, 0.0}};
  for (std::size_t i = 0; i < pos.size(); ++i) {
    SuNode n;
    n.id = static_cast<NodeId>(i);
    n.position = pos[i];
    n.battery_j = 1.0;
    nodes.push_back(n);
  }
  return nodes;
}

CoMimoNetConfig default_cfg() {
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 30.0;
  cfg.cluster_diameter_m = 10.0;
  cfg.link_range_m = 150.0;
  return cfg;
}

TEST(CoMimoNet, BuildsClustersAndLinks) {
  const CoMimoNet net(two_groups(), default_cfg());
  EXPECT_EQ(net.clusters().size(), 2u);
  EXPECT_EQ(net.links().size(), 1u);
  EXPECT_TRUE(net.validate());
}

TEST(CoMimoNet, LinkRangeCutsLongLinks) {
  CoMimoNetConfig cfg = default_cfg();
  cfg.link_range_m = 50.0;  // the 100 m gap no longer qualifies
  const CoMimoNet net(two_groups(), cfg);
  EXPECT_EQ(net.links().size(), 0u);
}

TEST(CoMimoNet, LinkKindClassification) {
  const CoMimoNet net(two_groups(), default_cfg());
  // Cluster 0 has 3 members, cluster 1 has 2 — MIMO both ways.
  EXPECT_EQ(net.link_kind(0, 1), CoopLink::Kind::kMimo);
  EXPECT_EQ(net.link_kind(1, 0), CoopLink::Kind::kMimo);
}

TEST(CoMimoNet, SisoSimoMisoKinds) {
  std::vector<SuNode> nodes;
  for (std::size_t i = 0; i < 3; ++i) {
    SuNode n;
    n.id = static_cast<NodeId>(i);
    nodes.push_back(n);
  }
  nodes[0].position = {0.0, 0.0};
  nodes[1].position = {100.0, 0.0};
  nodes[2].position = {101.0, 0.0};
  const CoMimoNet net(std::move(nodes), default_cfg());
  ASSERT_EQ(net.clusters().size(), 2u);
  EXPECT_EQ(net.link_kind(0, 0), CoopLink::Kind::kSiso);  // degenerate
  EXPECT_EQ(net.link_kind(0, 1), CoopLink::Kind::kSimo);
  EXPECT_EQ(net.link_kind(1, 0), CoopLink::Kind::kMiso);
}

TEST(CoMimoNet, ClusterOfAndNodeLookup) {
  const CoMimoNet net(two_groups(), default_cfg());
  EXPECT_EQ(net.cluster_of(0), net.cluster_of(1));
  EXPECT_NE(net.cluster_of(0), net.cluster_of(3));
  EXPECT_EQ(net.node(3).position.x, 100.0);
  EXPECT_THROW((void)net.node(99), InvalidArgument);
  EXPECT_THROW((void)net.cluster_of(99), InvalidArgument);
}

TEST(CoMimoNet, RejectsDuplicateIds) {
  auto nodes = two_groups();
  nodes[1].id = nodes[0].id;
  EXPECT_THROW(CoMimoNet(std::move(nodes), default_cfg()),
               InvalidArgument);
}

TEST(CoMimoNet, RejectsDExceedingRange) {
  CoMimoNetConfig cfg = default_cfg();
  cfg.cluster_diameter_m = cfg.communication_range_m + 1.0;
  EXPECT_THROW(CoMimoNet(two_groups(), cfg), InvalidArgument);
}

TEST(CoMimoNet, NeighborsSymmetric) {
  const auto nodes = random_field(40, 300.0, 300.0, 7);
  CoMimoNetConfig cfg = default_cfg();
  cfg.link_range_m = 200.0;
  const CoMimoNet net(nodes, cfg);
  for (const auto& c : net.clusters()) {
    for (const ClusterId n : net.neighbors(c.id)) {
      const auto back = net.neighbors(n);
      EXPECT_NE(std::find(back.begin(), back.end(), c.id), back.end());
    }
  }
}

TEST(ClusteredField, GroupsFormRealClusters) {
  const auto nodes = clustered_field(8, 4, 5.0, 400.0, 400.0, 21);
  ASSERT_EQ(nodes.size(), 32u);
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 40.0;
  cfg.cluster_diameter_m = 20.0;
  cfg.link_range_m = 600.0;
  const CoMimoNet net(nodes, cfg);
  // Grouped placement must yield multi-member clusters (unlike a sparse
  // uniform field).
  std::size_t multi = 0;
  for (const auto& c : net.clusters()) {
    if (c.size() >= 2) ++multi;
  }
  EXPECT_GE(multi, 4u);
  EXPECT_TRUE(net.validate());
}

TEST(ClusteredField, Validation) {
  EXPECT_THROW((void)clustered_field(0, 3, 5.0, 100.0, 100.0, 1),
               InvalidArgument);
  EXPECT_THROW((void)clustered_field(3, 3, 5.0, 0.0, 100.0, 1),
               InvalidArgument);
}

TEST(CoMimoNet, ReelectHeadsTracksBatteries) {
  auto nodes = two_groups();
  CoMimoNet net(nodes, default_cfg());
  // Drain every current head far below its cluster mates.
  for (const auto& c : net.clusters()) {
    net.mutable_node(c.head).battery_j = 0.01;
  }
  const std::size_t changed = net.reelect_heads();
  EXPECT_EQ(changed, net.clusters().size());
  for (const auto& c : net.clusters()) {
    EXPECT_GT(net.node(c.head).battery_j, 0.01);
  }
  // A second re-election with unchanged batteries is a no-op.
  EXPECT_EQ(net.reelect_heads(), 0u);
}

TEST(RandomField, DeterministicAndInBounds) {
  const auto a = random_field(50, 100.0, 60.0, 9);
  const auto b = random_field(50, 100.0, 60.0, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position, b[i].position);
    EXPECT_GE(a[i].position.x, 0.0);
    EXPECT_LE(a[i].position.x, 100.0);
    EXPECT_GE(a[i].position.y, 0.0);
    EXPECT_LE(a[i].position.y, 60.0);
    EXPECT_GE(a[i].battery_j, 0.5);
    EXPECT_LE(a[i].battery_j, 1.0);
  }
}

// --- spanning tree ---------------------------------------------------------

TEST(UnionFind, BasicConnectivity) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_components(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.num_components(), 3u);
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
  uf.unite(1, 3);
  EXPECT_EQ(uf.find(0), uf.find(2));
}

TEST(RoutingBackbone, TreeHasClustersMinusComponentsEdges) {
  const auto nodes = random_field(60, 400.0, 400.0, 11);
  CoMimoNetConfig cfg = default_cfg();
  cfg.link_range_m = 250.0;
  const CoMimoNet net(nodes, cfg);
  const RoutingBackbone backbone(net);
  EXPECT_EQ(backbone.tree_edges().size(),
            net.clusters().size() - backbone.num_components());
}

TEST(RoutingBackbone, PathEndpointsAndAdjacency) {
  const auto nodes = random_field(60, 400.0, 400.0, 13);
  CoMimoNetConfig cfg = default_cfg();
  cfg.link_range_m = 300.0;
  const CoMimoNet net(nodes, cfg);
  const RoutingBackbone backbone(net);
  for (ClusterId a = 0; a < net.clusters().size(); ++a) {
    for (ClusterId b = 0; b < net.clusters().size(); ++b) {
      const auto path = backbone.path(a, b);
      if (!backbone.connected(a, b)) {
        EXPECT_FALSE(path.has_value());
        continue;
      }
      ASSERT_TRUE(path.has_value());
      EXPECT_EQ(path->front(), a);
      EXPECT_EQ(path->back(), b);
      // Consecutive clusters must share a tree edge.
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        bool found = false;
        for (const auto& e : backbone.tree_edges()) {
          if ((e.a == (*path)[i] && e.b == (*path)[i + 1]) ||
              (e.b == (*path)[i] && e.a == (*path)[i + 1])) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << "hop " << i;
      }
    }
  }
}

TEST(RoutingBackbone, SelfPathIsSingleton) {
  const CoMimoNet net(two_groups(), default_cfg());
  const RoutingBackbone backbone(net);
  const auto path = backbone.path(0, 0);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 1u);
}

TEST(RoutingBackbone, MstIsMinimal) {
  // On a triangle of clusters with one long edge, the MST must skip the
  // longest edge.
  std::vector<SuNode> nodes(3);
  nodes[0] = {0, {0.0, 0.0}, 1.0};
  nodes[1] = {1, {100.0, 0.0}, 1.0};
  nodes[2] = {2, {50.0, 30.0}, 1.0};
  CoMimoNetConfig cfg = default_cfg();
  cfg.link_range_m = 500.0;
  const CoMimoNet net(std::move(nodes), cfg);
  const RoutingBackbone backbone(net);
  ASSERT_EQ(backbone.tree_edges().size(), 2u);
  for (const auto& e : backbone.tree_edges()) {
    EXPECT_LT(e.length_m, 100.0);  // the 0–1 edge (100 m) is excluded
  }
}

}  // namespace
}  // namespace comimo
