// Tests for the zero-allocation batched link kernel: the *_into APIs
// must be bitwise identical to the allocating ones, a reused workspace
// must never read stale state across varying shapes, and the refactored
// sweep call sites must stay bit-identical across thread counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "comimo/channel/fading.h"
#include "comimo/common/parallel.h"
#include "comimo/net/comimonet.h"
#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/rng.h"
#include "comimo/overlay/relay_scheme.h"
#include "comimo/phy/ber_sweep.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/link_workspace.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"
#include "comimo/resilience/resilient_sim.h"
#include "comimo/testbed/coop_hop_sim.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {
namespace {

// ------------------------------------------------ _into ≡ allocating --

TEST(LinkWorkspace, EncodeIntoMatchesEncodeBitwise) {
  for (std::size_t mt = 1; mt <= kMaxStbcTx; ++mt) {
    const StbcCode code = StbcCode::for_antennas(mt);
    Rng rng(3, mt);
    std::vector<cplx> s(code.symbols_per_block());
    for (auto& v : s) v = rng.complex_gaussian();
    const CMatrix expect = code.encode(s);
    CMatrix got(code.block_length(), code.num_tx());
    code.encode_into(s, got);
    EXPECT_EQ(got.max_abs_diff(expect), 0.0) << "mt=" << mt;
  }
}

TEST(LinkWorkspace, DecodeIntoMatchesDecodeBitwise) {
  // One scratch serves every shape in sequence — leftovers from a large
  // decode must not leak into a smaller one.
  StbcDecodeScratch scratch;
  for (const std::size_t mt : {4u, 1u, 3u, 2u}) {
    const StbcCode code = StbcCode::for_antennas(mt);
    const StbcDecoder decoder(code);
    Rng rng(17, mt);
    std::vector<cplx> s(code.symbols_per_block());
    for (auto& v : s) v = rng.complex_gaussian();
    const CMatrix h = CMatrix::random_gaussian(2, mt, rng);
    CMatrix received = code.encode(s);
    // Propagate: received · hᵀ plus noise.
    CMatrix at_rx(code.block_length(), 2);
    multiply_transposed_into(received, h, at_rx);
    add_scaled_noise_into(at_rx, rng, 0.1);

    const std::vector<cplx> expect = decoder.decode(h, at_rx);
    std::vector<cplx> got(code.symbols_per_block());
    decoder.decode_into(h, at_rx, got, scratch);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k], expect[k]) << "mt=" << mt << " k=" << k;
    }
  }
}

TEST(LinkWorkspace, ModulateIntoMatchesModulateBitwise) {
  for (const int b : {1, 2, 4, 6}) {
    const auto modem = make_modulator(b);
    const BitVec bits = random_bits(24 * static_cast<std::size_t>(b), 5);
    const std::vector<cplx> expect = modem->modulate(bits);
    std::vector<cplx> got;
    modem->modulate_into(bits, got);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i], expect[i]) << "b=" << b;
    }
    const BitVec expect_bits = modem->demodulate(expect);
    BitVec got_bits;
    modem->demodulate_into(got, got_bits);
    EXPECT_EQ(got_bits, expect_bits);
  }
}

TEST(LinkWorkspace, FadingNextBlockIntoMatchesNextBlock) {
  RayleighBlockFading a(3, 2, Rng(9, 1));
  RayleighBlockFading b(3, 2, Rng(9, 1));
  for (int i = 0; i < 4; ++i) {
    const CMatrix expect = a.next_block();
    CMatrix got(2, 3);
    b.next_block_into(got);
    EXPECT_EQ(got.max_abs_diff(expect), 0.0);
  }
}

// The reference implementation of one simulated block, all-allocating,
// mirroring the historical ber_sweep trial body.
std::vector<cplx> allocating_reference_block(const StbcDecoder& decoder,
                                             std::size_t mr,
                                             std::span<const cplx> symbols,
                                             Rng& rng) {
  const StbcCode& code = decoder.code();
  const CMatrix h =
      CMatrix::random_gaussian(mr, code.num_tx(), rng);
  const CMatrix c = code.encode(symbols);
  CMatrix received(code.block_length(), mr);
  for (std::size_t t = 0; t < code.block_length(); ++t) {
    for (std::size_t j = 0; j < mr; ++j) {
      cplx v{0.0, 0.0};
      for (std::size_t i = 0; i < code.num_tx(); ++i) {
        v += c(t, i) * h(j, i);
      }
      received(t, j) = v + rng.complex_gaussian(1.0);
    }
  }
  return decoder.decode(h, received);
}

TEST(LinkWorkspace, SimulateBlockMatchesAllocatingPathBitwise) {
  const StbcCode code = StbcCode::alamouti();
  const StbcDecoder decoder(code);
  LinkWorkspace ws;
  ws.configure(code, 2);
  Rng sym_rng(21);
  for (auto& v : ws.symbols) v = sym_rng.complex_gaussian();

  Rng rng_a(33, 4);
  Rng rng_b(33, 4);
  const std::vector<cplx> expect =
      allocating_reference_block(decoder, 2, ws.symbols, rng_a);
  simulate_block(decoder, ws, rng_b);
  ASSERT_EQ(ws.estimates.size(), expect.size());
  for (std::size_t k = 0; k < expect.size(); ++k) {
    EXPECT_EQ(ws.estimates[k], expect[k]);
  }
}

// ------------------------------------------------- no stale state ----

TEST(LinkWorkspace, ReuseAcross1000VaryingShapesHasNoStaleState) {
  LinkWorkspace ws;  // one workspace for every block
  Rng shape_rng(0xDEAD);
  for (std::size_t blk = 0; blk < 1000; ++blk) {
    const std::size_t mt = 1 + shape_rng.uniform_int(kMaxStbcTx);
    const std::size_t mr = 1 + shape_rng.uniform_int(4);
    const StbcCode code = StbcCode::for_antennas(mt);
    const StbcDecoder decoder(code);

    ws.configure(code, mr);
    Rng sym_rng(0x51, blk);
    for (auto& v : ws.symbols) v = sym_rng.complex_gaussian();

    Rng rng_ref(0xF00D, blk);
    Rng rng_ws(0xF00D, blk);
    const std::vector<cplx> expect =
        allocating_reference_block(decoder, mr, ws.symbols, rng_ref);
    simulate_block(decoder, ws, rng_ws);
    ASSERT_EQ(ws.estimates.size(), expect.size());
    for (std::size_t k = 0; k < expect.size(); ++k) {
      ASSERT_EQ(ws.estimates[k], expect[k])
          << "blk=" << blk << " mt=" << mt << " mr=" << mr;
    }
  }
}

// --------------------------------------- thread-count invariance -----

TEST(LinkWorkspace, BerSweepBitIdenticalAcrossThreadCounts) {
  WaveformBerConfig cfg;
  cfg.b = 2;
  cfg.mt = 2;
  cfg.mr = 2;
  cfg.blocks = 600;
  cfg.seed = 77;
  cfg.chunk_size = 50;

  ThreadPool one(1);
  ThreadPool many(3);
  cfg.pool = &one;
  const WaveformBerPoint p1 = measure_waveform_ber(cfg, 5.0);
  cfg.pool = &many;
  const WaveformBerPoint pn = measure_waveform_ber(cfg, 5.0);
  EXPECT_EQ(p1.bit_errors, pn.bit_errors);
  EXPECT_EQ(p1.bits, pn.bits);
  EXPECT_EQ(p1.ber, pn.ber);  // bit-identical, not just close
}

TEST(LinkWorkspace, CoopHopBitIdenticalAcrossThreadCounts) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig hop_cfg;
  hop_cfg.mt = 3;
  hop_cfg.mr = 2;
  hop_cfg.ber = 1e-2;

  CoopHopSimConfig sim;
  sim.plan = planner.plan(hop_cfg, BSelectionRule::kMinTotalPa);
  sim.bits = 4000;
  sim.seed = 5;
  sim.faults.enabled = true;
  sim.faults.block_erasure_prob = 0.2;
  sim.faults.dropout_block = 3;

  ThreadPool one(1);
  ThreadPool many(3);
  sim.pool = &one;
  const CoopHopSimResult r1 = simulate_cooperative_hop(sim);
  sim.pool = &many;
  const CoopHopSimResult rn = simulate_cooperative_hop(sim);
  EXPECT_EQ(r1.bit_errors, rn.bit_errors);
  EXPECT_EQ(r1.ber, rn.ber);
  EXPECT_EQ(r1.intra_error_rate, rn.intra_error_rate);
  EXPECT_EQ(r1.resilience.retransmitted_blocks,
            rn.resilience.retransmitted_blocks);
  EXPECT_EQ(r1.resilience.lost_blocks, rn.resilience.lost_blocks);
}

// ------------------------------------------- new call-site bridges ---

TEST(LinkWorkspace, MeasurePlanBerMatchesEquivalentWaveformPoint) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig hop_cfg;
  hop_cfg.mt = 2;
  hop_cfg.mr = 2;
  hop_cfg.ber = 1e-2;
  const UnderlayHopPlan plan = planner.plan(hop_cfg);

  const PlanBerMeasurement m = measure_plan_ber(plan, 400, 9);

  WaveformBerConfig cfg;
  cfg.b = plan.b;
  cfg.mt = plan.config.mt;
  cfg.mr = plan.config.mr;
  cfg.blocks = 400;
  cfg.seed = 9;
  const WaveformBerPoint p = measure_waveform_ber(cfg, m.gamma_b_db);
  EXPECT_EQ(m.bit_errors, p.bit_errors);
  EXPECT_EQ(m.bits, p.bits);
  EXPECT_EQ(m.ber, p.ber);
  EXPECT_GT(m.bits, 0u);
}

TEST(LinkWorkspace, OverlayRelayWaveformMeasuresBothLegs) {
  const OverlayRelayScheme scheme;
  OverlayRelayConfig cfg;
  cfg.num_relays = 2;
  cfg.ber = 1e-2;
  const OverlayRelayEnergies energies = scheme.plan(cfg);
  const OverlayRelayWaveform wf =
      scheme.measure_relay_waveform(cfg, energies, 300, 3);
  EXPECT_GT(wf.simo.bits, 0u);
  EXPECT_GT(wf.miso.bits, 0u);
  // The solver aims each leg at the configured target BER; with only
  // 300 blocks we just bound the measured rates loosely.
  EXPECT_LT(wf.simo.ber, 0.2);
  EXPECT_LT(wf.miso.ber, 0.2);
  // Deterministic replay.
  const OverlayRelayWaveform again =
      scheme.measure_relay_waveform(cfg, energies, 300, 3);
  EXPECT_EQ(wf.simo.bit_errors, again.simo.bit_errors);
  EXPECT_EQ(wf.miso.bit_errors, again.miso.bit_errors);
}

CoMimoNet make_field(std::uint64_t seed = 11) {
  const auto nodes = clustered_field(14, 3, 6.0, 450.0, 450.0, seed,
                                     /*battery_lo=*/150.0,
                                     /*battery_hi=*/200.0);
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 40.0;
  cfg.cluster_diameter_m = 16.0;
  cfg.link_range_m = 280.0;
  return CoMimoNet(nodes, cfg);
}

TEST(LinkWorkspace, ResilienceWaveformProbeIsPurelyObservational) {
  const CoMimoNet net = make_field();
  const SystemParams params;
  ResilienceConfig cfg;
  cfg.rounds = 6;
  cfg.ber = 1e-2;
  cfg.traffic_seed = 3;

  const ResilienceReport off = simulate_with_faults(net, params, cfg);
  cfg.waveform_blocks = 200;
  const ResilienceReport on = simulate_with_faults(net, params, cfg);

  // Every legacy field must be bit-identical whether the probe ran.
  EXPECT_EQ(off.packets_offered, on.packets_offered);
  EXPECT_EQ(off.packets_delivered, on.packets_delivered);
  EXPECT_EQ(off.delivered_bits, on.delivered_bits);
  EXPECT_EQ(off.energy_spent_j, on.energy_spent_j);
  EXPECT_EQ(off.total_time_s, on.total_time_s);
  EXPECT_EQ(off.goodput_bps, on.goodput_bps);
  EXPECT_EQ(off.retransmissions, on.retransmissions);

  // The probe itself reported something when packets routed.
  EXPECT_EQ(off.waveform_hops, 0u);
  EXPECT_EQ(off.waveform_bits, 0u);
  if (on.packets_delivered > 0) {
    EXPECT_GT(on.waveform_hops, 0u);
    EXPECT_GT(on.waveform_bits, 0u);
    EXPECT_GE(on.waveform_hop_ber, 0.0);
    EXPECT_LE(on.waveform_hop_ber, 1.0);
  }

  // And the probed run replays bit-identically.
  const ResilienceReport replay = simulate_with_faults(net, params, cfg);
  EXPECT_EQ(on, replay);
}

}  // namespace
}  // namespace comimo
