#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/interweave/geometry.h"
#include "comimo/interweave/pair_beamformer.h"
#include "comimo/interweave/pattern.h"
#include "comimo/interweave/pu_selection.h"
#include "comimo/numeric/rng.h"

namespace comimo {
namespace {

// The paper's Table-1 geometry: St1/St2 on the vertical axis, 15 m
// apart, wavelength w = 2r = 30 m.
PairGeometry paper_geometry() {
  return PairGeometry{Vec2{0.0, 7.5}, Vec2{0.0, -7.5}};
}
constexpr double kPaperWavelength = 30.0;

TEST(InterweaveGeometry, PaperDeltaExample) {
  // §5: "δ = π when r = w and α = 0".
  const PairGeometry geom{Vec2{0.0, 0.0}, Vec2{0.0, -30.0}};  // r = 30 = w
  const Vec2 pu{0.0, -1000.0};  // α = 0 (toward St2)
  const double delta = null_steering_phase_delay(geom, 30.0, pu);
  EXPECT_NEAR(delta, kPi, 1e-6);
}

TEST(InterweaveGeometry, DeltaFormulaMatchesDefinition) {
  const PairGeometry geom = paper_geometry();
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 pu = rng.point_in_disk(Vec2{0.0, 0.0}, 500.0);
    if (distance(pu, geom.st1) < 1.0) continue;
    const double alpha = geom.alpha_to(pu);
    const double expected =
        kPi * (2.0 * 15.0 * std::cos(alpha) / kPaperWavelength - 1.0);
    EXPECT_NEAR(null_steering_phase_delay(geom, kPaperWavelength, pu),
                expected, 1e-9);
  }
}

TEST(InterweaveGeometry, FarFieldAgreesWithExactAtDistance) {
  const PairGeometry geom = paper_geometry();
  const double delta = 0.7;
  for (double theta_deg = 5.0; theta_deg <= 175.0; theta_deg += 17.0) {
    const double theta = deg_to_rad(theta_deg);
    // Walk out along theta from the array center; the exact relative
    // phase must converge to the far-field expression.
    const Vec2 axis = (geom.st2 - geom.st1).normalized();
    const Vec2 perp{-axis.y, axis.x};
    const Vec2 dir = axis * std::cos(theta) + perp * std::sin(theta);
    const Vec2 far_point = geom.center() + dir * 1.0e6;
    const double exact =
        relative_phase_at(geom, kPaperWavelength, delta, far_point);
    const double ff = relative_phase_far_field(15.0, kPaperWavelength,
                                               delta, theta);
    EXPECT_NEAR(wrap_angle(exact - ff), 0.0, 1e-3) << theta_deg;
  }
}

TEST(PairAmplitude, Formula) {
  // γ² = γ1² + γ2² + 2γ1γ2 cos Δ.
  EXPECT_NEAR(pair_amplitude(0.0), 2.0, 1e-12);
  EXPECT_NEAR(pair_amplitude(kPi), 0.0, 1e-12);
  EXPECT_NEAR(pair_amplitude(kPi / 2.0), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(pair_amplitude(kPi / 3.0, 2.0, 1.0), std::sqrt(7.0), 1e-12);
  EXPECT_THROW((void)pair_amplitude(0.0, -1.0, 1.0), InvalidArgument);
}

TEST(NullSteeringPair, FarFieldNullAtPuDirection) {
  const PairGeometry geom = paper_geometry();
  const Vec2 pu{0.0, -5000.0};  // far along the array axis
  const NullSteeringPair pair(geom, kPaperWavelength, pu);
  const double theta_pu = geom.axis_angle_to(pu);
  EXPECT_NEAR(pair.far_field_amplitude(theta_pu), 0.0, 1e-9);
}

TEST(NullSteeringPair, ResidualAtFarPuIsSmall) {
  const PairGeometry geom = paper_geometry();
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    // PUs at the paper's scale: within a 300 m circle but at least
    // 10 r away so the far-field design assumption holds.
    Vec2 pu = rng.point_in_disk(Vec2{0.0, 0.0}, 150.0);
    if (distance(pu, geom.st1) < 140.0) {
      pu = pu + (pu - geom.center()).normalized() * 150.0;
    }
    const NullSteeringPair pair(geom, kPaperWavelength, pu);
    EXPECT_LT(pair.residual_at_pu(), 0.35)
        << "pu (" << pu.x << "," << pu.y << ")";
  }
}

TEST(NullSteeringPair, BroadsideSrGetsNearFullDiversity) {
  // §6.3: "when St·Sr and St·Pr are perpendicular … Sr receives a full
  // diversity gain".
  const PairGeometry geom = paper_geometry();
  const Vec2 pu{0.0, -150.0};  // endfire
  const Vec2 sr{150.0, 0.0};   // broadside, perpendicular
  const NullSteeringPair pair(geom, kPaperWavelength, pu);
  EXPECT_GT(pair.amplitude_at(sr), 1.9);
}

TEST(NullSteeringPair, CollinearSrIsSuppressed) {
  // If Sr sits in the same direction as the protected PU, the null
  // kills the secondary link too — the reason Algorithm 3 avoids
  // collinear picks.
  const PairGeometry geom = paper_geometry();
  const Vec2 pu{0.0, -150.0};
  const Vec2 sr{0.0, -80.0};
  const NullSteeringPair pair(geom, kPaperWavelength, pu);
  EXPECT_LT(pair.amplitude_at(sr), 0.5);
}

TEST(PairedBeamformer, TwoPairsDoubleTheField) {
  // Two co-located pairs add coherently toward Sr.
  const double w = 30.0;
  std::vector<Vec2> nodes{{0.0, 7.5}, {0.0, -7.5}, {1.0, 7.5}, {1.0, -7.5}};
  const Vec2 pu{0.0, -5000.0};
  const Vec2 sr{5000.0, 0.0};
  const PairedBeamformer bf(nodes, w, pu);
  EXPECT_EQ(bf.num_pairs(), 2u);
  EXPECT_NEAR(bf.amplitude_at(sr), 4.0, 0.1);
  EXPECT_LT(bf.residual_at_pu(), 0.1);
}

TEST(PairedBeamformer, OddNodeIsIgnored) {
  std::vector<Vec2> nodes{{0.0, 7.5}, {0.0, -7.5}, {3.0, 0.0}};
  const PairedBeamformer bf(nodes, 30.0, Vec2{0.0, -5000.0});
  EXPECT_EQ(bf.num_pairs(), 1u);  // ⌊3/2⌋
  EXPECT_THROW(PairedBeamformer({Vec2{0.0, 0.0}}, 30.0, Vec2{1.0, 0.0}),
               InvalidArgument);
}

TEST(NullSteeringPair, RobustToSmallPuLocationError) {
  // Algorithm 3's δ comes from *sensed* PU geometry; a location error
  // perturbs the null.  A few meters at 150 m range must leave the
  // residual small; gross errors destroy it.
  const PairGeometry geom = paper_geometry();
  Rng rng(44);
  for (int trial = 0; trial < 30; ++trial) {
    Vec2 pu_true = rng.point_in_disk(Vec2{0.0, 0.0}, 150.0);
    if (distance(pu_true, geom.center()) < 100.0) {
      pu_true = pu_true +
                (pu_true - geom.center()).normalized() * 120.0;
    }
    // Design against a 3 m-off estimate, evaluate at the truth.
    const Vec2 pu_est = pu_true + unit_vec(rng.uniform(0.0, 2 * kPi)) * 3.0;
    const NullSteeringPair pair(geom, kPaperWavelength, pu_est);
    EXPECT_LT(pair.amplitude_at(pu_true), 0.5)
        << "pu (" << pu_true.x << "," << pu_true.y << ")";
  }
}

TEST(NullSteeringPair, GrossPuErrorDestroysTheNull) {
  const PairGeometry geom = paper_geometry();
  const Vec2 pu_true{0.0, -150.0};  // endfire
  // A broadside estimate steers the null 90° away (the two endfire
  // directions are pattern-symmetric, so the opposite endfire would
  // NOT be a gross error for this array).
  const Vec2 pu_wrong{150.0, 0.0};
  const NullSteeringPair pair(geom, kPaperWavelength, pu_wrong);
  EXPECT_GT(pair.amplitude_at(pu_true), 1.0);
}

TEST(MultiPuBeamformer, SinglePuMatchesPairedBeamformer) {
  const std::vector<Vec2> nodes{{0.0, 7.5}, {0.0, -7.5}, {1.0, 7.5},
                                {1.0, -7.5}};
  const Vec2 pu{0.0, -5000.0};
  const Vec2 sr{5000.0, 0.0};
  const PairedBeamformer single(nodes, 30.0, pu);
  const MultiPuBeamformer multi(nodes, 30.0, {pu});
  EXPECT_NEAR(multi.amplitude_at(sr), single.amplitude_at(sr), 1e-9);
  EXPECT_NEAR(multi.residual_at(0), single.residual_at_pu(), 1e-9);
}

TEST(MultiPuBeamformer, RoundRobinAssignment) {
  std::vector<Vec2> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(Vec2{static_cast<double>(i), i % 2 ? -7.5 : 7.5});
  }
  const MultiPuBeamformer bf(nodes, 30.0,
                             {Vec2{0.0, -5000.0}, Vec2{5000.0, 5000.0}});
  ASSERT_EQ(bf.num_pairs(), 4u);
  EXPECT_EQ(bf.assignment(0), 0u);
  EXPECT_EQ(bf.assignment(1), 1u);
  EXPECT_EQ(bf.assignment(2), 0u);
  EXPECT_EQ(bf.assignment(3), 1u);
  EXPECT_THROW((void)bf.assignment(4), InvalidArgument);
}

TEST(MultiPuBeamformer, ProtectsBothPusPartially) {
  // Four pairs split across two far PUs in different directions: each
  // PU keeps a residual well below the un-nulled field (which would be
  // ≈ 2 per foreign pair), and Sr retains most of the gain.
  std::vector<Vec2> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(Vec2{static_cast<double>(i) * 0.5,
                         (i % 2 ? -7.5 : 7.5)});
  }
  const Vec2 pu_a{0.0, -5000.0};   // endfire
  const Vec2 pu_b{-5000.0, 0.0};   // opposite broadside
  const Vec2 sr{5000.0, 0.0};
  const MultiPuBeamformer bf(nodes, 30.0, {pu_a, pu_b});
  // Each PU sees nothing from its own 2 pairs; the 2 foreign pairs
  // could contribute up to 4 in amplitude.
  EXPECT_LT(bf.residual_at(0), 4.0);
  EXPECT_LT(bf.residual_at(1), 4.0);
  EXPECT_GE(bf.worst_residual(),
            std::max(bf.residual_at(0), bf.residual_at(1)) - 1e-12);
  // Dedicated single-PU nulling is strictly cleaner at its PU.
  const MultiPuBeamformer dedicated(nodes, 30.0, {pu_a});
  EXPECT_LT(dedicated.residual_at(0), bf.residual_at(0) + 1e-9);
}

TEST(MultiPuBeamformer, Validation) {
  EXPECT_THROW(MultiPuBeamformer({Vec2{0.0, 0.0}}, 30.0,
                                 {Vec2{1.0, 1.0}}),
               InvalidArgument);
  EXPECT_THROW(MultiPuBeamformer({Vec2{0.0, 0.0}, Vec2{1.0, 0.0}}, 30.0,
                                 {}),
               InvalidArgument);
}

// --- PU selection ------------------------------------------------------

TEST(PuSelection, PrefersPerpendicularAndFar) {
  const Vec2 st{0.0, 0.0};
  const Vec2 sr{100.0, 0.0};
  // Candidate 0: collinear with Sr (bad); candidate 1: perpendicular
  // and far (good); candidate 2: perpendicular but close.
  const std::vector<Vec2> candidates{{150.0, 0.0}, {0.0, 140.0},
                                     {0.0, 20.0}};
  const auto scores = score_pu_candidates(st, sr, candidates);
  EXPECT_EQ(scores.front().index, 1u);
  EXPECT_EQ(select_pu(st, sr, candidates), 1u);
}

TEST(PuSelection, CollinearBothDirectionsScoreLow) {
  const Vec2 st{0.0, 0.0};
  const Vec2 sr{100.0, 0.0};
  const std::vector<Vec2> candidates{{200.0, 0.0}, {-200.0, 0.0},
                                     {0.0, 200.0}};
  EXPECT_EQ(select_pu(st, sr, candidates), 2u);
}

TEST(PuSelection, EmptyCandidatesThrow) {
  EXPECT_THROW((void)select_pu({0.0, 0.0}, {1.0, 0.0}, {}),
               InvalidArgument);
}

// --- radiation patterns ----------------------------------------------------

TEST(RadiationPattern, IdealPatternNullAndPeak) {
  const PairGeometry geom{Vec2{-0.03, 0.0}, Vec2{0.03, 0.0}};  // λ/2 @ 2.45G
  const double w = 0.12;
  const double null_deg = 120.0;
  const Vec2 pu = geom.st1 + unit_vec(deg_to_rad(null_deg)) * 1e4;
  const NullSteeringPair pair(geom, w, pu);
  const RadiationPattern p = ideal_pattern(pair, 1.0);
  EXPECT_NEAR(p.null_angle_deg(), null_deg, 1.5);
  EXPECT_LT(p.null_depth(), 0.05);
  EXPECT_GT(p.peak_amplitude(), 1.5);
}

TEST(RadiationPattern, SemicirclePatternApproachesIdealAtRadius) {
  const PairGeometry geom{Vec2{-0.03, 0.0}, Vec2{0.03, 0.0}};
  const double w = 0.12;
  const Vec2 pu = geom.st1 + unit_vec(deg_to_rad(120.0)) * 1e4;
  const NullSteeringPair pair(geom, w, pu);
  const RadiationPattern near = semicircle_pattern(pair, 1.0, 20.0);
  const RadiationPattern ideal = ideal_pattern(pair, 20.0);
  ASSERT_EQ(near.amplitudes.size(), ideal.amplitudes.size());
  for (std::size_t i = 0; i < near.amplitudes.size(); ++i) {
    EXPECT_NEAR(near.amplitudes[i], ideal.amplitudes[i], 0.12)
        << "angle " << near.angles_deg[i];
  }
}

TEST(RadiationPattern, MultipathKeepsNullNonZero) {
  // Fig. 8's observation: indoors the measured null is not zero.
  const PairGeometry geom{Vec2{-0.03, 0.0}, Vec2{0.03, 0.0}};
  const double w = 0.12;
  const Vec2 pu = geom.st1 + unit_vec(deg_to_rad(120.0)) * 1e4;
  const NullSteeringPair pair(geom, w, pu);
  const RadiationPattern measured =
      measured_pattern(pair, 1.0, 20.0, 0.15, 0.15, 200, 99);
  EXPECT_GT(measured.null_depth(), 0.01);
  EXPECT_LT(measured.null_depth(), 0.6);
  // Away from the null the beamformer still beats SISO.
  EXPECT_GT(measured.peak_amplitude(), 1.5);
}

TEST(RadiationPattern, DeterministicInSeed) {
  const PairGeometry geom{Vec2{-0.03, 0.0}, Vec2{0.03, 0.0}};
  const Vec2 pu = geom.st1 + unit_vec(deg_to_rad(120.0)) * 1e4;
  const NullSteeringPair pair(geom, 0.12, pu);
  const auto a = measured_pattern(pair, 1.0, 20.0, 0.1, 0.1, 50, 7);
  const auto b = measured_pattern(pair, 1.0, 20.0, 0.1, 0.1, 50, 7);
  EXPECT_EQ(a.amplitudes, b.amplitudes);
}

}  // namespace
}  // namespace comimo
