#include "comimo/net/spatial_csma.h"

#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {
namespace {

SpatialCsmaConfig cfg(std::uint64_t seed = 1) {
  SpatialCsmaConfig c;
  c.seed = seed;
  return c;
}

SpatialStation station(NodeId id, Vec2 pos, Vec2 dest, double rate = 8.0) {
  SpatialStation s;
  s.id = id;
  s.position = pos;
  s.destination = dest;
  s.arrival_rate_fps = rate;
  return s;
}

TEST(SpatialCsma, LoneStationDeliversCleanly) {
  std::vector<SpatialStation> st{
      station(0, {0.0, 0.0}, {50.0, 0.0}, 4.0)};
  SpatialCsmaSimulator sim(cfg(), st);
  const auto s = sim.run(20.0);
  EXPECT_GT(s.offered_frames, 40u);
  EXPECT_EQ(s.lost_frames, 0u);
  EXPECT_NEAR(s.delivery_ratio(), 1.0, 0.05);
  EXPECT_NEAR(s.mean_concurrency, 1.0, 1e-9);
}

TEST(SpatialCsma, SpatialReuseRaisesConcurrency) {
  // Two pairs 1 km apart cannot hear each other: both transmit
  // concurrently and the aggregate throughput ≈ twice a lone pair's.
  std::vector<SpatialStation> far{
      station(0, {0.0, 0.0}, {40.0, 0.0}, 15.0),
      station(1, {1000.0, 0.0}, {1040.0, 0.0}, 15.0)};
  std::vector<SpatialStation> near{
      station(0, {0.0, 0.0}, {40.0, 0.0}, 15.0),
      station(1, {20.0, 0.0}, {60.0, 0.0}, 15.0)};
  const auto s_far = SpatialCsmaSimulator(cfg(2), far).run(20.0);
  const auto s_near = SpatialCsmaSimulator(cfg(2), near).run(20.0);
  EXPECT_GT(s_far.mean_concurrency, 1.3);
  EXPECT_GT(s_far.throughput_bps, s_near.throughput_bps * 1.2);
  // The near pair shares one channel: concurrency stays near 1 (their
  // carrier sensing serializes all but same-slot starts).
  EXPECT_LT(s_near.mean_concurrency, 1.15);
  EXPECT_LT(s_near.loss_ratio(), 0.2);
}

TEST(SpatialCsma, HiddenTerminalsCollide) {
  // A and B both send to a middle receiver R; they are 150 m apart
  // (outside the 100 m carrier-sense range) while R sits 75 m from each
  // (inside the 80 m interference range) — the classic hidden-terminal
  // loss: neither defers to the other yet both hit R.
  const Vec2 r{75.0, 0.0};
  std::vector<SpatialStation> hidden{station(0, {0.0, 0.0}, r, 20.0),
                                     station(1, {150.0, 0.0}, r, 20.0)};
  const auto s_hidden = SpatialCsmaSimulator(cfg(3), hidden).run(20.0);
  EXPECT_GT(s_hidden.loss_ratio(), 0.1);

  // Same offered load, but mutually audible (co-located): carrier
  // sensing prevents nearly all losses.
  std::vector<SpatialStation> exposed{station(0, {0.0, 0.0}, r, 20.0),
                                      station(1, {10.0, 0.0}, r, 20.0)};
  const auto s_exposed = SpatialCsmaSimulator(cfg(3), exposed).run(20.0);
  // Carrier sensing leaves only same-slot collisions; far fewer losses.
  EXPECT_LT(s_exposed.loss_ratio(), s_hidden.loss_ratio() / 3.0);
}

TEST(SpatialCsma, RetryLimitDropsFrames) {
  // Persistent hidden-terminal collisions eventually exhaust retries.
  const Vec2 r{75.0, 0.0};
  std::vector<SpatialStation> hidden{station(0, {0.0, 0.0}, r, 40.0),
                                     station(1, {150.0, 0.0}, r, 40.0)};
  SpatialCsmaConfig c = cfg(4);
  c.max_retries = 1;
  const auto s = SpatialCsmaSimulator(c, hidden).run(20.0);
  EXPECT_GT(s.dropped_frames, 0u);
}

TEST(SpatialCsma, DeterministicInSeed) {
  std::vector<SpatialStation> st{
      station(0, {0.0, 0.0}, {40.0, 0.0}, 10.0),
      station(1, {30.0, 0.0}, {70.0, 0.0}, 10.0)};
  const auto a = SpatialCsmaSimulator(cfg(5), st).run(10.0);
  const auto b = SpatialCsmaSimulator(cfg(5), st).run(10.0);
  EXPECT_EQ(a.delivered_frames, b.delivered_frames);
  EXPECT_EQ(a.lost_frames, b.lost_frames);
}

// The grid-indexed carrier-sense/interference queries must reproduce
// the O(n²) scans exactly — every stat, bit for bit, over random
// station fields of varying density.
TEST(SpatialCsma, GridIndexBitIdenticalToReference) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed, 0xC5);
    const std::size_t n = 3 + rng.uniform_int(40);
    std::vector<SpatialStation> st;
    for (std::size_t i = 0; i < n; ++i) {
      const Vec2 pos{rng.uniform(0.0, 600.0), rng.uniform(0.0, 600.0)};
      const Vec2 dest{pos.x + rng.uniform(-60.0, 60.0),
                      pos.y + rng.uniform(-60.0, 60.0)};
      st.push_back(station(static_cast<NodeId>(i), pos, dest,
                           rng.uniform(4.0, 12.0)));
    }
    SpatialCsmaConfig ref_cfg = cfg(seed);
    ref_cfg.index_mode = NetIndexMode::kReference;
    SpatialCsmaConfig grid_cfg = cfg(seed);
    grid_cfg.index_mode = NetIndexMode::kGrid;
    const auto ref = SpatialCsmaSimulator(ref_cfg, st).run(6.0);
    const auto grid = SpatialCsmaSimulator(grid_cfg, st).run(6.0);
    EXPECT_EQ(ref.offered_frames, grid.offered_frames) << "seed " << seed;
    EXPECT_EQ(ref.delivered_frames, grid.delivered_frames)
        << "seed " << seed;
    EXPECT_EQ(ref.lost_frames, grid.lost_frames) << "seed " << seed;
    EXPECT_EQ(ref.dropped_frames, grid.dropped_frames) << "seed " << seed;
    EXPECT_EQ(ref.throughput_bps, grid.throughput_bps) << "seed " << seed;
    EXPECT_EQ(ref.mean_concurrency, grid.mean_concurrency)
        << "seed " << seed;
  }
}

TEST(SpatialCsma, Validation) {
  EXPECT_THROW(SpatialCsmaSimulator(cfg(), {}), InvalidArgument);
  SpatialCsmaConfig bad = cfg();
  bad.carrier_sense_range_m = 0.0;
  EXPECT_THROW(SpatialCsmaSimulator(
                   bad, {station(0, {0.0, 0.0}, {1.0, 0.0})}),
               InvalidArgument);
  SpatialCsmaSimulator ok(cfg(), {station(0, {0.0, 0.0}, {1.0, 0.0})});
  EXPECT_THROW((void)ok.run(-1.0), InvalidArgument);
}

}  // namespace
}  // namespace comimo
