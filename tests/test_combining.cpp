#include "comimo/phy/combining.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/channel/awgn.h"
#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/phy/detector.h"

namespace comimo {
namespace {

std::vector<std::vector<cplx>> faded_branches(
    std::span<const cplx> symbols, std::span<const cplx> gains,
    AwgnChannel* noise = nullptr) {
  std::vector<std::vector<cplx>> branches;
  for (const cplx g : gains) {
    std::vector<cplx> b(symbols.size());
    for (std::size_t i = 0; i < symbols.size(); ++i) {
      b[i] = g * symbols[i] + (noise ? noise->sample() : cplx{0.0, 0.0});
    }
    branches.push_back(std::move(b));
  }
  return branches;
}

TEST(Combining, NoiseFreeOutputEqualsSymbols) {
  Rng rng(1);
  std::vector<cplx> s{{1.0, 0.0}, {-1.0, 0.0}, {0.0, 1.0}};
  std::vector<cplx> gains{rng.complex_gaussian(), rng.complex_gaussian(),
                          rng.complex_gaussian()};
  const auto branches = faded_branches(s, gains);
  for (const auto kind : {CombinerKind::kEqualGain,
                          CombinerKind::kMaximalRatio,
                          CombinerKind::kSelection}) {
    const auto out = combine(kind, branches, gains);
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_NEAR(std::abs(out[i] - s[i]), 0.0, 1e-12)
          << "kind " << static_cast<int>(kind);
    }
  }
}

TEST(Combining, SingleBranchIsCoherentEqualization) {
  const std::vector<cplx> s{{1.0, 0.0}, {-1.0, 0.0}};
  const cplx g{0.0, 2.0};
  const auto branches = faded_branches(s, std::vector<cplx>{g});
  const auto out =
      combine(CombinerKind::kEqualGain, branches, std::vector<cplx>{g});
  // EGC with one branch removes phase but keeps |g| scaling normalized.
  EXPECT_NEAR(std::abs(out[0] - s[0]), 0.0, 1e-12);
}

TEST(Combining, SelectionPicksStrongestBranch) {
  const std::vector<cplx> s{{1.0, 0.0}};
  const std::vector<cplx> gains{{0.1, 0.0}, {5.0, 0.0}, {1.0, 0.0}};
  // Corrupt the weak branches badly; selection must ignore them.
  std::vector<std::vector<cplx>> branches{
      {cplx{-99.0, 0.0}}, {gains[1] * s[0]}, {cplx{99.0, 0.0}}};
  const auto out = combine(CombinerKind::kSelection, branches, gains);
  EXPECT_NEAR(std::abs(out[0] - s[0]), 0.0, 1e-12);
}

TEST(Combining, ShapeChecks) {
  const std::vector<std::vector<cplx>> branches{{1.0}, {1.0, 2.0}};
  const std::vector<cplx> gains{1.0, 1.0};
  EXPECT_THROW(combine(CombinerKind::kEqualGain, branches, gains),
               InvalidArgument);
  EXPECT_THROW(combine(CombinerKind::kEqualGain, {}, {}), InvalidArgument);
  EXPECT_THROW(
      combine(CombinerKind::kEqualGain, {{cplx{1.0, 0.0}}},
              std::vector<cplx>{1.0, 2.0}),
      InvalidArgument);
}

TEST(CombiningSnrGain, KnownFormulas) {
  const std::vector<cplx> gains{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_NEAR(combining_snr_gain(CombinerKind::kMaximalRatio, gains), 25.0,
              1e-12);
  EXPECT_NEAR(combining_snr_gain(CombinerKind::kEqualGain, gains),
              49.0 / 2.0, 1e-12);
  EXPECT_NEAR(combining_snr_gain(CombinerKind::kSelection, gains), 16.0,
              1e-12);
}

TEST(CombiningSnrGain, OrderingMrcGeEgcGeSc) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<cplx> gains;
    for (int j = 0; j < 4; ++j) gains.push_back(rng.complex_gaussian());
    const double mrc = combining_snr_gain(CombinerKind::kMaximalRatio, gains);
    const double egc = combining_snr_gain(CombinerKind::kEqualGain, gains);
    const double sc = combining_snr_gain(CombinerKind::kSelection, gains);
    EXPECT_GE(mrc, egc - 1e-12);
    EXPECT_GE(mrc, sc - 1e-12);
  }
}

TEST(Combining, MrcBeatsSingleBranchBerUnderNoise) {
  Rng rng(5);
  AwgnChannel noise(1.0, Rng(6));
  const double branch_power = std::pow(10.0, 0.4);  // 4 dB mean SNR
  std::size_t errors_combined = 0;
  std::size_t errors_single = 0;
  std::size_t total = 0;
  const BpskModulator modem;
  for (int pkt = 0; pkt < 800; ++pkt) {
    const BitVec bits = random_bits(50, 77 + pkt);
    const auto s = modem.modulate(bits);
    std::vector<cplx> gains;
    for (int j = 0; j < 3; ++j) {
      gains.push_back(rng.complex_gaussian(branch_power));
    }
    auto branches = faded_branches(s, gains, &noise);
    const auto combined =
        combine(CombinerKind::kMaximalRatio, branches, gains);
    errors_combined +=
        count_bit_errors(bits, modem.demodulate(combined));
    const auto single = combine(CombinerKind::kMaximalRatio,
                                {branches.front()},
                                std::vector<cplx>{gains.front()});
    errors_single += count_bit_errors(bits, modem.demodulate(single));
    total += bits.size();
  }
  EXPECT_LT(errors_combined * 4, errors_single)
      << "MRC should cut BER by far more than 4x at 3-branch diversity";
}

}  // namespace
}  // namespace comimo
