// RLNC codec tests: encoder/decoder round trips at every field and
// generation shape, relay recoding chains, rank accounting, and the
// adversarial-input contract (malformed/duplicated/reordered/dependent
// packets never crash and never fake full rank).
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "comimo/coding/rlnc.h"
#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo::coding {
namespace {

std::vector<std::uint8_t> random_payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> out(n);
  Rng rng(seed, 0xDA7A);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next() >> 56);
  return out;
}

void expect_roundtrip(RlncConfig cfg, std::uint64_t seed) {
  const auto data =
      random_payload(cfg.generation_size * cfg.packet_bytes, seed);
  const RlncEncoder enc(cfg, data);
  RlncDecoder dec(cfg);
  Rng rng(seed, 1);
  std::size_t seq = 0;
  while (!dec.complete()) {
    ASSERT_LT(seq, cfg.generation_size + 300) << "decoder failed to converge";
    (void)dec.add(enc.packet(seq++, rng));
  }
  for (std::size_t i = 0; i < cfg.generation_size; ++i) {
    EXPECT_TRUE(dec.source_decodable(i));
    EXPECT_EQ(dec.source_packet(i), enc.source_row(i)) << "row " << i;
  }
  EXPECT_EQ(dec.decodable_now(), cfg.generation_size);
}

TEST(Rlnc, ValidateRejectsBadConfigs) {
  RlncConfig cfg;
  cfg.generation_size = 0;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg.generation_size = 300;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg.generation_size = 8;
  cfg.band_width = 9;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg.band_width = 8;
  EXPECT_NO_THROW(validate(cfg));
}

TEST(Rlnc, SystematicLosslessRoundTripUsesExactlyKPackets) {
  RlncConfig cfg;
  cfg.generation_size = 12;
  cfg.packet_bytes = 33;
  const auto data = random_payload(12 * 33, 5);
  const RlncEncoder enc(cfg, data);
  RlncDecoder dec(cfg);
  Rng rng(5, 1);
  for (std::size_t s = 0; s < 12; ++s) {
    EXPECT_TRUE(dec.add(enc.packet(s, rng))) << "systematic row " << s;
    EXPECT_EQ(dec.rank(), s + 1);
    EXPECT_EQ(dec.decodable_now(), s + 1);  // systematic rows decode as-is
  }
  EXPECT_TRUE(dec.complete());
}

TEST(Rlnc, RoundTripGf256DenseUnderErasures) {
  RlncConfig cfg;
  cfg.generation_size = 16;
  cfg.packet_bytes = 64;
  const auto data = random_payload(16 * 64, 9);
  const RlncEncoder enc(cfg, data);
  RlncDecoder dec(cfg);
  Rng rng(9, 1);
  Rng loss(9, 2);
  std::size_t seq = 0;
  while (!dec.complete()) {
    ASSERT_LT(seq, 400u);
    const CodedPacket pkt = enc.packet(seq++, rng);
    if (loss.bernoulli(0.4)) continue;  // 40% erasures
    (void)dec.add(pkt);
  }
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(dec.source_packet(i), enc.source_row(i));
  }
}

TEST(Rlnc, RoundTripGf2) {
  RlncConfig cfg;
  cfg.generation_size = 10;
  cfg.packet_bytes = 16;
  cfg.field = GfField::kGf2;
  expect_roundtrip(cfg, 21);
}

TEST(Rlnc, RoundTripBandedGeneration) {
  RlncConfig cfg;
  cfg.generation_size = 24;
  cfg.packet_bytes = 20;
  cfg.band_width = 6;
  expect_roundtrip(cfg, 33);
  // Banded coefficients really are confined to the band.
  const RlncEncoder enc(cfg, random_payload(24 * 20, 34));
  Rng rng(34, 1);
  for (int n = 0; n < 50; ++n) {
    const CodedPacket pkt = enc.coded(rng);
    std::size_t lo = cfg.generation_size, hi = 0;
    for (std::size_t i = 0; i < pkt.coeffs.size(); ++i) {
      if (pkt.coeffs[i] != 0) {
        lo = std::min(lo, i);
        hi = std::max(hi, i);
      }
    }
    ASSERT_LT(lo, cfg.generation_size) << "all-zero coded packet escaped";
    EXPECT_LT(hi - lo, cfg.band_width);
  }
}

TEST(Rlnc, NonSystematicRoundTrip) {
  RlncConfig cfg;
  cfg.generation_size = 8;
  cfg.packet_bytes = 12;
  cfg.systematic = false;
  expect_roundtrip(cfg, 44);
}

TEST(Rlnc, GenerationSizeOne) {
  RlncConfig cfg;
  cfg.generation_size = 1;
  cfg.packet_bytes = 5;
  expect_roundtrip(cfg, 55);
}

TEST(Rlnc, DecoderIsOrderInvariant) {
  RlncConfig cfg;
  cfg.generation_size = 8;
  cfg.packet_bytes = 10;
  const auto data = random_payload(8 * 10, 17);
  const RlncEncoder enc(cfg, data);
  Rng rng(17, 1);
  std::vector<CodedPacket> packets;
  for (std::size_t s = 0; s < 12; ++s) packets.push_back(enc.packet(s, rng));
  std::reverse(packets.begin(), packets.end());
  RlncDecoder dec(cfg);
  for (const auto& p : packets) (void)dec.add(p);
  ASSERT_TRUE(dec.complete());
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(dec.source_packet(i), enc.source_row(i));
  }
}

TEST(Rlnc, CoefficientStreamsReplayFromSeed) {
  RlncConfig cfg;
  cfg.generation_size = 9;
  cfg.packet_bytes = 7;
  const auto data = random_payload(9 * 7, 3);
  const RlncEncoder enc(cfg, data);
  Rng a(12, 0), b(12, 0);
  for (int n = 0; n < 30; ++n) {
    const CodedPacket pa = enc.coded(a);
    const CodedPacket pb = enc.coded(b);
    EXPECT_EQ(pa.coeffs, pb.coeffs);
    EXPECT_EQ(pa.payload, pb.payload);
  }
}

// ------------------------------------------------------------- relays --

TEST(Rlnc, RecoderChainDeliversWithoutDecoding) {
  RlncConfig cfg;
  cfg.generation_size = 12;
  cfg.packet_bytes = 24;
  const auto data = random_payload(12 * 24, 71);
  const RlncEncoder enc(cfg, data);
  RelayRecoder relay1(cfg), relay2(cfg);
  RlncDecoder sink(cfg);
  Rng rng(71, 1);
  Rng loss(71, 2);
  // Source → relay1 with losses.
  for (std::size_t s = 0; s < 30 && relay1.rank() < 12; ++s) {
    const CodedPacket pkt = enc.packet(s, rng);
    if (!loss.bernoulli(0.25)) (void)relay1.add(pkt);
  }
  ASSERT_EQ(relay1.rank(), 12u);
  // relay1 → relay2 → sink, recoding at each step, still lossy.
  while (sink.rank() < 12) {
    const CodedPacket a = relay1.recode(rng);
    if (!loss.bernoulli(0.25)) (void)relay2.add(a);
    if (relay2.rank() == 0) continue;
    const CodedPacket b = relay2.recode(rng);
    if (!loss.bernoulli(0.25)) (void)sink.add(b);
  }
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(sink.source_packet(i), enc.source_row(i));
  }
}

TEST(Rlnc, RecoderRankNeverExceedsWhatItHeard) {
  RlncConfig cfg;
  cfg.generation_size = 10;
  cfg.packet_bytes = 8;
  const auto data = random_payload(10 * 8, 81);
  const RlncEncoder enc(cfg, data);
  RelayRecoder relay(cfg);
  Rng rng(81, 1);
  // Only 4 of 10 systematic packets arrive.
  for (std::size_t s = 0; s < 4; ++s) (void)relay.add(enc.packet(s, rng));
  EXPECT_EQ(relay.rank(), 4u);
  // A downstream decoder fed any number of recoded packets stalls at 4.
  RlncDecoder sink(cfg);
  for (int n = 0; n < 100; ++n) (void)sink.add(relay.recode(rng));
  EXPECT_EQ(sink.rank(), 4u);
  EXPECT_FALSE(sink.complete());
  // The 4 received source rows are still individually decodable.
  EXPECT_EQ(sink.decodable_now(), 4u);
}

TEST(Rlnc, PartialRankReportsDecodableSubset) {
  RlncConfig cfg;
  cfg.generation_size = 6;
  cfg.packet_bytes = 4;
  const auto data = random_payload(6 * 4, 91);
  const RlncEncoder enc(cfg, data);
  RlncDecoder dec(cfg);
  Rng rng(91, 1);
  // Rows 0 and 3 arrive systematically: both immediately decodable.
  (void)dec.add(enc.packet(0, rng));
  (void)dec.add(enc.packet(3, rng));
  EXPECT_EQ(dec.rank(), 2u);
  EXPECT_EQ(dec.decodable_now(), 2u);
  EXPECT_TRUE(dec.source_decodable(0));
  EXPECT_TRUE(dec.source_decodable(3));
  EXPECT_FALSE(dec.source_decodable(1));
  EXPECT_EQ(dec.source_packet(0), enc.source_row(0));
  EXPECT_EQ(dec.source_packet(3), enc.source_row(3));
  EXPECT_THROW((void)dec.source_packet(1), InvalidArgument);
}

// ------------------------------------------------- adversarial inputs --

TEST(RlncFuzz, MalformedPacketsAreRejectedNotFatal) {
  RlncConfig cfg;
  cfg.generation_size = 8;
  cfg.packet_bytes = 16;
  RlncDecoder dec(cfg);
  RelayRecoder relay(cfg);

  CodedPacket truncated_coeffs;
  truncated_coeffs.coeffs.assign(7, 1);  // one short
  truncated_coeffs.payload.assign(16, 0);
  CodedPacket oversized_coeffs;
  oversized_coeffs.coeffs.assign(9, 1);
  oversized_coeffs.payload.assign(16, 0);
  CodedPacket truncated_payload;
  truncated_payload.coeffs.assign(8, 1);
  truncated_payload.payload.assign(15, 0);
  CodedPacket oversized_payload;
  oversized_payload.coeffs.assign(8, 1);
  oversized_payload.payload.assign(17, 0);
  CodedPacket empty;

  for (const auto* pkt : {&truncated_coeffs, &oversized_coeffs,
                          &truncated_payload, &oversized_payload, &empty}) {
    EXPECT_FALSE(dec.add(*pkt));
    EXPECT_FALSE(relay.add(*pkt));
  }
  EXPECT_EQ(dec.rank(), 0u);
  EXPECT_EQ(dec.rejected(), 5u);
  EXPECT_EQ(relay.rejected(), 5u);
}

TEST(RlncFuzz, DuplicatesAndDependentPacketsNeverFakeFullRank) {
  RlncConfig cfg;
  cfg.generation_size = 6;
  cfg.packet_bytes = 8;
  const auto data = random_payload(6 * 8, 13);
  const RlncEncoder enc(cfg, data);
  RlncDecoder dec(cfg);
  Rng rng(13, 1);
  const CodedPacket p0 = enc.packet(0, rng);
  // The same packet 50 times is rank 1, not 50.
  for (int n = 0; n < 50; ++n) (void)dec.add(p0);
  EXPECT_EQ(dec.rank(), 1u);
  // A scaled copy (2 ⊗ p0) is linearly dependent: still rank 1.
  CodedPacket scaled = p0;
  for (auto& c : scaled.coeffs) c = gf_mul(c, 2);
  for (auto& b : scaled.payload) b = gf_mul(b, 2);
  EXPECT_FALSE(dec.add(scaled));
  EXPECT_EQ(dec.rank(), 1u);
  EXPECT_FALSE(dec.complete());
}

TEST(RlncFuzz, AllZeroAndGarbagePacketsAreAbsorbed) {
  RlncConfig cfg;
  cfg.generation_size = 5;
  cfg.packet_bytes = 4;
  RlncDecoder dec(cfg);
  CodedPacket zero;
  zero.coeffs.assign(5, 0);
  zero.payload.assign(4, 0);
  EXPECT_FALSE(dec.add(zero));  // spans nothing
  EXPECT_EQ(dec.rank(), 0u);
  // Garbage payload under a zero coefficient row must not corrupt rank.
  CodedPacket junk;
  junk.coeffs.assign(5, 0);
  junk.payload = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_FALSE(dec.add(junk));
  EXPECT_EQ(dec.rank(), 0u);
}

TEST(RlncFuzz, RandomPacketStormNeverCrashesAndRankIsExact) {
  RlncConfig cfg;
  cfg.generation_size = 8;
  cfg.packet_bytes = 8;
  RlncDecoder dec(cfg);
  RelayRecoder relay(cfg);
  Rng rng(999, 0);
  for (int n = 0; n < 2000; ++n) {
    CodedPacket pkt;
    const std::size_t nc = rng.uniform_int(12);  // often wrong length
    const std::size_t np = rng.uniform_int(12);
    pkt.coeffs.resize(nc);
    pkt.payload.resize(np);
    for (auto& c : pkt.coeffs) c = static_cast<std::uint8_t>(rng.next());
    for (auto& b : pkt.payload) b = static_cast<std::uint8_t>(rng.next());
    (void)dec.add(pkt);
    (void)relay.add(pkt);
    ASSERT_LE(dec.rank(), cfg.generation_size);
    ASSERT_LE(dec.decodable_now(), dec.rank());
  }
  // Full rank may legitimately be reached via valid-length random rows,
  // but only with genuinely independent ones; if reported complete, all
  // sources must be decodable without throwing.
  if (dec.complete()) {
    for (std::size_t i = 0; i < cfg.generation_size; ++i) {
      EXPECT_TRUE(dec.source_decodable(i));
      (void)dec.source_packet(i);
    }
  }
  if (relay.rank() > 0) {
    Rng r2(1000, 0);
    (void)relay.recode(r2);  // recoding a fuzzed basis must not crash
  }
}

TEST(RlncFuzz, CombineRequiresRankAndEncoderChecksSize) {
  RlncConfig cfg;
  cfg.generation_size = 4;
  cfg.packet_bytes = 4;
  RlncDecoder dec(cfg);
  Rng rng(1, 0);
  EXPECT_THROW((void)dec.combine(rng), InvalidArgument);
  EXPECT_THROW(RlncEncoder(cfg, std::vector<std::uint8_t>(17, 1)),
               InvalidArgument);
}

}  // namespace
}  // namespace comimo::coding
