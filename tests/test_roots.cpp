#include "comimo/numeric/roots.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"

namespace comimo {
namespace {

TEST(Bisect, FindsLinearRoot) {
  const double r = bisect([](double x) { return 2.0 * x - 3.0; }, 0.0, 10.0);
  EXPECT_NEAR(r, 1.5, 1e-10);
}

TEST(Bisect, FindsTranscendentalRoot) {
  const double r =
      bisect([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  EXPECT_NEAR(r, 0.7390851332151607, 1e-9);
}

TEST(Bisect, EndpointRoots) {
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x; }, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(bisect([](double x) { return x - 1.0; }, 0.0, 1.0), 1.0);
}

TEST(Bisect, NoBracketThrows) {
  EXPECT_THROW(bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               NumericError);
}

TEST(Brent, FindsRootFasterThanBisection) {
  int evals = 0;
  RootOptions opts;
  opts.x_tol = 1e-14;
  const double r = brent(
      [&evals](double x) {
        ++evals;
        return std::exp(x) - 5.0;
      },
      0.0, 5.0, opts);
  EXPECT_NEAR(r, std::log(5.0), 1e-10);
  EXPECT_LT(evals, 30);
}

TEST(Brent, HandlesSteepFunction) {
  const double r = brent([](double x) { return std::pow(x, 9) - 0.5; },
                         0.0, 1.0);
  EXPECT_NEAR(r, std::pow(0.5, 1.0 / 9.0), 1e-8);
}

TEST(Brent, NoBracketThrows) {
  EXPECT_THROW((void)brent([](double) { return 1.0; }, 0.0, 1.0),
               NumericError);
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  const double hi = expand_bracket(
      [](double x) { return x - 1000.0; }, 0.0, 1.0);
  EXPECT_GE(hi, 1000.0);
  // The returned hi must bracket together with lo.
  EXPECT_GT(hi - 1000.0, -1e-9);
}

TEST(ExpandBracket, FailureThrows) {
  EXPECT_THROW(
      (void)expand_bracket([](double) { return 1.0; }, 0.0, 1.0, 20),
      NumericError);
}

TEST(GoldenMinimize, FindsParabolaMinimum) {
  const double x =
      golden_minimize([](double v) { return (v - 2.5) * (v - 2.5); },
                      -10.0, 10.0);
  EXPECT_NEAR(x, 2.5, 1e-6);
}

TEST(GoldenMinimize, AsymmetricUnimodal) {
  const double x = golden_minimize(
      [](double v) { return std::exp(v) + std::exp(-2.0 * v); }, -5.0,
      5.0);
  // d/dv = e^v − 2e^{-2v} = 0 ⇒ v = ln(2)/3.
  EXPECT_NEAR(x, std::log(2.0) / 3.0, 1e-6);
}

TEST(RootFinders, AgreeOnSameProblem) {
  const auto f = [](double x) { return std::tanh(x) - 0.3; };
  const double rb = bisect(f, -2.0, 2.0);
  const double rr = brent(f, -2.0, 2.0);
  EXPECT_NEAR(rb, rr, 1e-8);
  EXPECT_NEAR(rr, std::atanh(0.3), 1e-9);
}

}  // namespace
}  // namespace comimo
