// Failure-injection and robustness tests: garbage inputs, degenerate
// channels, corrupted serializations, and noise-only receivers must
// produce errors or honest statistics — never silent wrong answers.
#include <gtest/gtest.h>

#include <sstream>

#include "comimo/channel/awgn.h"
#include "comimo/common/error.h"
#include "comimo/energy/ebbar_table.h"
#include "comimo/net/csma_ca.h"
#include "comimo/numeric/rng.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/gmsk.h"
#include "comimo/phy/stbc.h"
#include "comimo/testbed/framing.h"

namespace comimo {
namespace {

TEST(Robustness, FramerNeverAcceptsNoise) {
  // Random bit windows must never parse as a valid packet: the sync
  // word plus CRC-32 make the false-accept probability ≈ 2^-48.
  const Framer framer;
  const std::size_t frame_len = framer.frame_bits(100);
  Rng rng(424242);
  for (int trial = 0; trial < 3000; ++trial) {
    BitVec noise_bits(frame_len);
    for (auto& b : noise_bits) b = rng.bernoulli(0.5) ? 1 : 0;
    EXPECT_FALSE(framer.parse(noise_bits).has_value()) << trial;
  }
}

TEST(Robustness, FramerRejectsEverySingleBitFlipInHeaderOrPayload) {
  const Framer framer;
  Packet p;
  p.sequence = 7;
  p.payload.assign(32, 0x5A);
  const BitVec good = framer.frame(p);
  const std::size_t protected_start = framer.config().preamble_bytes * 8;
  for (std::size_t i = protected_start; i < good.size(); i += 13) {
    BitVec bad = good;
    bad[i] ^= 1;
    const auto parsed = framer.parse(bad);
    // Either rejected outright, or (for sequence-field flips that CRC
    // catches) never equal to a wrong payload.
    EXPECT_FALSE(parsed.has_value()) << "flip at " << i;
  }
}

TEST(Robustness, GmskOnPureNoiseIsCoinFlip) {
  const GmskModem modem;
  const std::size_t n = 20000;
  std::vector<cplx> noise_samples(modem.samples_for_bits(n));
  Rng rng(17);
  for (auto& s : noise_samples) s = rng.complex_gaussian(1.0);
  const BitVec decoded = modem.demodulate(noise_samples, n);
  std::size_t ones = 0;
  for (const auto b : decoded) ones += b;
  // Unbiased coin: 50% ± a few sigma.
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.02);
}

TEST(Robustness, StbcDecoderSignalsDeadChannel) {
  // An all-zero H makes the normal equations singular; the decoder must
  // throw, not fabricate symbols.
  const StbcDecoder decoder(StbcCode::alamouti());
  const CMatrix h(1, 2);  // zeros
  const CMatrix r(2, 1);
  EXPECT_THROW((void)decoder.decode(h, r), NumericError);
}

TEST(Robustness, StbcDecoderSurvivesNearSingularChannel) {
  const StbcDecoder decoder(StbcCode::alamouti());
  CMatrix h(1, 2);
  h(0, 0) = cplx{1e-150, 0.0};
  h(0, 1) = cplx{0.0, 1e-150};
  CMatrix r(2, 1);
  r(0, 0) = cplx{1e-150, 0.0};
  r(1, 0) = cplx{0.0, 0.0};
  const auto est = decoder.decode(h, r);
  for (const auto& v : est) {
    EXPECT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
  }
}

TEST(Robustness, EbBarTableLoadRejectsEntryCountMismatch) {
  const EbBarSolver solver;
  EbBarTable::Spec spec;
  spec.ber_targets = {1e-2};
  spec.b_max = 2;
  spec.m_max = 1;
  const EbBarTable table = EbBarTable::build(solver, spec);
  std::stringstream ss;
  table.save(ss);
  std::string text = ss.str();
  // Drop the final line (one entry missing).
  text.erase(text.find_last_of('\n', text.size() - 2) + 1);
  std::stringstream broken(text);
  EXPECT_THROW((void)EbBarTable::load(broken), InvalidArgument);
}

TEST(Robustness, CsmaCaConservationLaws) {
  std::vector<CsmaStation> stations;
  for (NodeId i = 0; i < 6; ++i) stations.push_back({i, 25.0, 12000});
  CsmaCaConfig cfg;
  cfg.seed = 31;
  CsmaCaSimulator sim(cfg, stations);
  const CsmaCaStats s = sim.run(8.0);
  EXPECT_LE(s.delivered_frames + s.dropped_frames, s.offered_frames);
  EXPECT_LE(s.channel_busy_fraction, 1.0 + 1e-12);
  EXPECT_GE(s.channel_busy_fraction, 0.0);
  EXPECT_GE(s.mean_access_delay_s, 0.0);
  EXPECT_LE(s.throughput_bps, cfg.bitrate_bps * 1.01);
}

TEST(Robustness, AwgnChannelHandlesEmptySpan) {
  AwgnChannel awgn(1.0, Rng(1));
  std::vector<cplx> empty;
  awgn.apply(empty);  // must not crash
  EXPECT_TRUE(awgn.add(empty).empty());
}

TEST(Robustness, DetectorHelpersHandleEmptyInputs) {
  EXPECT_TRUE(bytes_to_bits({}).empty());
  EXPECT_TRUE(bits_to_bytes(BitVec{}).empty());
  EXPECT_EQ(count_bit_errors(BitVec{}, BitVec{}), 0u);
  EXPECT_TRUE(random_bits(0, 1).empty());
}

TEST(Robustness, ModulatorsRejectNonBinaryInputOnlyInDebug) {
  // Bits are 0/1 by contract; release builds treat other values as
  // their LSB.  This test documents the contract rather than UB.
  const BpskModulator modem;
  const BitVec bits{0, 1};
  EXPECT_EQ(modem.modulate(bits).size(), 2u);
}

}  // namespace
}  // namespace comimo
