#include "comimo/testbed/coop_hop_sim.h"

#include <gtest/gtest.h>

#include <tuple>

#include "comimo/common/error.h"

namespace comimo {
namespace {

UnderlayHopPlan make_plan(unsigned mt, unsigned mr, double ber = 1e-2) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg;
  cfg.mt = mt;
  cfg.mr = mr;
  cfg.hop_distance_m = 200.0;
  cfg.ber = ber;
  // Force a waveform-friendly constellation range; at these ranges the
  // optimizer picks b ∈ {1, 2} anyway.
  return planner.plan(cfg, BSelectionRule::kMinTotalPa);
}

using GridParam = std::tuple<unsigned, unsigned>;

class CoopHopWaveform : public ::testing::TestWithParam<GridParam> {};

TEST_P(CoopHopWaveform, MeasuredBerTracksPlan) {
  const auto [mt, mr] = GetParam();
  CoopHopSimConfig cfg;
  cfg.plan = make_plan(mt, mr);
  ASSERT_LE(cfg.plan.b, 8);
  cfg.bits = 60000;
  cfg.seed = 3;
  const CoopHopSimResult r = simulate_cooperative_hop(cfg);
  EXPECT_EQ(r.target_ber, 1e-2);
  // The waveform BER should sit near the planned target; DF and
  // forwarding impairments may push it up slightly, the MQAM-bound
  // approximation may leave it slightly below.
  EXPECT_GT(r.ber, r.target_ber * 0.3) << "suspiciously optimistic";
  EXPECT_LT(r.ber, r.target_ber * 3.0) << "plan violated";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoopHopWaveform,
    ::testing::Values(GridParam{1, 1}, GridParam{2, 1}, GridParam{1, 2},
                      GridParam{2, 2}, GridParam{3, 2}, GridParam{2, 3}),
    [](const ::testing::TestParamInfo<GridParam>& info) {
      return "mt" + std::to_string(std::get<0>(info.param)) + "mr" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CoopHopSim, IntraErrorsReportedOnlyForCooperativeTx) {
  CoopHopSimConfig cfg;
  cfg.plan = make_plan(1, 2);
  cfg.bits = 5000;
  const CoopHopSimResult solo = simulate_cooperative_hop(cfg);
  EXPECT_DOUBLE_EQ(solo.intra_error_rate, 0.0);

  cfg.plan = make_plan(3, 1);
  const CoopHopSimResult coop = simulate_cooperative_hop(cfg);
  EXPECT_GE(coop.intra_error_rate, 0.0);
  EXPECT_LT(coop.intra_error_rate, 1e-2);  // 30 dB local link is clean
}

TEST(CoopHopSim, PoorLocalLinkDegradesEndToEnd) {
  CoopHopSimConfig cfg;
  cfg.plan = make_plan(2, 2);
  cfg.bits = 40000;
  cfg.local_snr_db = 30.0;
  const CoopHopSimResult clean = simulate_cooperative_hop(cfg);
  cfg.local_snr_db = 3.0;  // terrible intra-cluster links
  const CoopHopSimResult dirty = simulate_cooperative_hop(cfg);
  EXPECT_GT(dirty.intra_error_rate, clean.intra_error_rate);
  EXPECT_GT(dirty.ber, clean.ber);
}

TEST(CoopHopSim, DeterministicInSeed) {
  CoopHopSimConfig cfg;
  cfg.plan = make_plan(2, 1);
  cfg.bits = 10000;
  cfg.seed = 77;
  const auto a = simulate_cooperative_hop(cfg);
  const auto b = simulate_cooperative_hop(cfg);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
}

TEST(RouteSim, ErrorsAccumulateAcrossHops) {
  // A 3-hop route at per-hop BER p should land near 1-(1-p)^3 ≈ 3p.
  std::vector<UnderlayHopPlan> plans{make_plan(2, 2), make_plan(1, 2),
                                     make_plan(2, 1)};
  const RouteSimResult r = simulate_route(plans, 60000, 30.0, 9);
  ASSERT_EQ(r.hops.size(), 3u);
  double expected = 0.0;
  for (const auto& hop : r.hops) expected += hop.ber;
  // End-to-end errors can cancel (a flipped bit flipped back), so the
  // sum is an upper bound; require the right ballpark.
  EXPECT_LT(r.ber, expected * 1.05 + 1e-4);
  EXPECT_GT(r.ber, expected * 0.5);
  EXPECT_GT(r.ber, r.hops[0].ber * 1.5) << "must exceed any single hop";
}

TEST(RouteSim, SingleHopMatchesDirectSimulation) {
  std::vector<UnderlayHopPlan> plans{make_plan(2, 2)};
  const RouteSimResult route = simulate_route(plans, 20000, 30.0, 5);
  ASSERT_EQ(route.hops.size(), 1u);
  EXPECT_EQ(route.bit_errors, route.hops[0].bit_errors);
}

TEST(RouteSim, Validation) {
  EXPECT_THROW((void)simulate_route({}, 100), InvalidArgument);
  EXPECT_THROW((void)simulate_route({make_plan(1, 1)}, 0),
               InvalidArgument);
}

TEST(CoopHopSim, PayloadNotMultipleOfBlockIsPadded) {
  CoopHopSimConfig cfg;
  cfg.plan = make_plan(3, 2);  // G3: 4 symbols/block
  cfg.bits = 4001;             // not a multiple
  const CoopHopSimResult r = simulate_cooperative_hop(cfg);
  EXPECT_EQ(r.bits, 4001u);
}

TEST(CoopHopSim, Validation) {
  CoopHopSimConfig cfg;
  cfg.plan = make_plan(2, 2);
  cfg.bits = 0;
  EXPECT_THROW((void)simulate_cooperative_hop(cfg), InvalidArgument);
  cfg.bits = 100;
  cfg.plan.b = 12;  // beyond the waveform modulators
  EXPECT_THROW((void)simulate_cooperative_hop(cfg), InvalidArgument);
}

}  // namespace
}  // namespace comimo
