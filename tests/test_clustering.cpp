#include "comimo/net/clustering.h"

#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/net/comimonet.h"

namespace comimo {
namespace {

std::vector<SuNode> line_nodes(std::initializer_list<double> xs) {
  std::vector<SuNode> nodes;
  NodeId id = 0;
  for (const double x : xs) {
    SuNode n;
    n.id = id++;
    n.position = Vec2{x, 0.0};
    nodes.push_back(n);
  }
  return nodes;
}

TEST(DClustering, SingleTightGroupFormsOneCluster) {
  const auto nodes = line_nodes({0.0, 1.0, 2.0});
  const auto clusters = d_clustering(nodes, 10.0);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 3u);
  EXPECT_TRUE(validate_clustering(nodes, clusters, 10.0));
}

TEST(DClustering, DistantGroupsSeparate) {
  const auto nodes = line_nodes({0.0, 1.0, 100.0, 101.0});
  const auto clusters = d_clustering(nodes, 10.0);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_TRUE(validate_clustering(nodes, clusters, 10.0));
}

TEST(DClustering, PairwiseBoundHolds) {
  // A chain 0,4,8,12 with d = 10: greedy takes {0, 4} (within d/2 of
  // seed), then {8, 12}; all pairwise distances ≤ d.
  const auto nodes = line_nodes({0.0, 4.0, 8.0, 12.0});
  const auto clusters = d_clustering(nodes, 10.0);
  EXPECT_TRUE(validate_clustering(nodes, clusters, 10.0));
}

TEST(DClustering, EveryNodeAssignedExactlyOnce) {
  const auto nodes = random_field(60, 200.0, 200.0, 42);
  const auto clusters = d_clustering(nodes, 20.0);
  EXPECT_TRUE(validate_clustering(nodes, clusters, 20.0));
  std::size_t total = 0;
  for (const auto& c : clusters) total += c.members.size();
  EXPECT_EQ(total, nodes.size());
}

TEST(DClustering, RejectsNonPositiveD) {
  const auto nodes = line_nodes({0.0});
  EXPECT_THROW((void)d_clustering(nodes, 0.0), InvalidArgument);
}

TEST(ElectHeads, PicksHighestBattery) {
  auto nodes = line_nodes({0.0, 1.0, 2.0});
  nodes[0].battery_j = 0.2;
  nodes[1].battery_j = 0.9;
  nodes[2].battery_j = 0.5;
  auto clusters = d_clustering(nodes, 10.0);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].head, nodes[1].id);
}

TEST(ElectHeads, TieBreaksToLowerId) {
  auto nodes = line_nodes({0.0, 1.0});
  nodes[0].battery_j = 0.7;
  nodes[1].battery_j = 0.7;
  auto clusters = d_clustering(nodes, 10.0);
  EXPECT_EQ(clusters[0].head, 0u);
}

TEST(ClusterGeometry, GapAndDiameter) {
  const auto nodes = line_nodes({0.0, 3.0, 10.0, 14.0});
  Cluster a;
  a.members = {0, 1};
  Cluster b;
  b.members = {2, 3};
  EXPECT_DOUBLE_EQ(cluster_gap(nodes, a, b), 14.0);
  EXPECT_DOUBLE_EQ(cluster_diameter(nodes, a), 3.0);
  EXPECT_DOUBLE_EQ(cluster_diameter(nodes, b), 4.0);
  Cluster single;
  single.members = {0};
  EXPECT_DOUBLE_EQ(cluster_diameter(nodes, single), 0.0);
}

TEST(ValidateClustering, DetectsViolations) {
  const auto nodes = line_nodes({0.0, 50.0});
  std::vector<Cluster> bogus(1);
  bogus[0].members = {0, 1};  // 50 m apart in a d = 10 cluster
  bogus[0].head = 0;
  EXPECT_FALSE(validate_clustering(nodes, bogus, 10.0));
  // Missing node.
  std::vector<Cluster> partial(1);
  partial[0].members = {0};
  partial[0].head = 0;
  EXPECT_FALSE(validate_clustering(nodes, partial, 100.0));
}

}  // namespace
}  // namespace comimo
