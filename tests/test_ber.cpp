#include "comimo/phy/ber.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/numeric/special.h"

namespace comimo {
namespace {

TEST(BerBpskAwgn, KnownValues) {
  // γ = 0 → 0.5; γ ≈ 9.6 dB → 1e-5 (classic waterfall point).
  EXPECT_NEAR(ber_bpsk_awgn(0.0), 0.5, 1e-12);
  EXPECT_NEAR(ber_bpsk_awgn(db_to_linear(9.6)), 1e-5, 3e-6);
  EXPECT_NEAR(ber_bpsk_awgn(db_to_linear(6.8)), 1e-3, 3e-4);
}

TEST(BerMqamAwgn, ReducesToBpskForB1) {
  for (double g : {0.5, 1.0, 4.0}) {
    EXPECT_NEAR(ber_mqam_awgn(1, g), ber_bpsk_awgn(g), 1e-15);
  }
}

TEST(BerMqamAwgn, QpskEqualsBpskPerBit) {
  // The b = 2 approximation has A = 1, B = 2: identical to BPSK.
  for (double g : {0.5, 2.0, 8.0}) {
    EXPECT_NEAR(ber_mqam_awgn(2, g), ber_bpsk_awgn(g), 1e-12);
  }
}

TEST(BerMqamAwgn, HigherOrderNeedsMoreSnr) {
  const double g = db_to_linear(10.0);
  double prev = 0.0;
  for (int b = 2; b <= 10; b += 2) {
    const double p = ber_mqam_awgn(b, g);
    EXPECT_GT(p, prev) << "b=" << b;
    prev = p;
  }
}

TEST(MqamCoefficients, MatchPaperFormulas) {
  for (int b = 2; b <= 16; ++b) {
    const double m = std::pow(2.0, b);
    EXPECT_NEAR(mqam_coefficient(b),
                4.0 / b * (1.0 - std::pow(2.0, -b / 2.0)), 1e-12);
    EXPECT_NEAR(mqam_snr_factor(b), 3.0 * b / (m - 1.0), 1e-12);
  }
  EXPECT_THROW(mqam_coefficient(0), InvalidArgument);
}

TEST(BerBpskRayleigh, ClosedForm) {
  EXPECT_NEAR(ber_bpsk_rayleigh(0.0), 0.5, 1e-12);
  // High SNR asymptote 1/(4γ).
  const double g = 1e4;
  EXPECT_NEAR(ber_bpsk_rayleigh(g), 1.0 / (4.0 * g), 1.0 / (4.0 * g) * 0.01);
}

TEST(BerMqamRayleighMimo, ReducesToSisoRayleigh) {
  for (double g : {0.5, 2.0, 20.0}) {
    EXPECT_NEAR(ber_mqam_rayleigh_mimo(1, g, 1, 1), ber_bpsk_rayleigh(g),
                1e-12);
  }
}

TEST(BerMqamRayleighMimo, DiversityHelps) {
  const double g = db_to_linear(8.0);
  EXPECT_GT(ber_mqam_rayleigh_mimo(2, g, 1, 1),
            ber_mqam_rayleigh_mimo(2, g, 1, 2));
  EXPECT_GT(ber_mqam_rayleigh_mimo(2, g, 1, 2),
            ber_mqam_rayleigh_mimo(2, g, 2, 2));
  EXPECT_GT(ber_mqam_rayleigh_mimo(2, g, 2, 2),
            ber_mqam_rayleigh_mimo(2, g, 2, 3));
}

TEST(BerMqamRayleighMimo, ClampedToProbability) {
  EXPECT_LE(ber_mqam_rayleigh_mimo(2, 0.0, 1, 1), 1.0);
  EXPECT_GE(ber_mqam_rayleigh_mimo(2, 0.0, 1, 1), 0.0);
}

TEST(BerGmskApprox, EfficiencyPenaltyVsBpsk) {
  const double g = db_to_linear(8.0);
  EXPECT_GT(ber_gmsk_awgn_approx(g), ber_bpsk_awgn(g));
  EXPECT_NEAR(ber_gmsk_awgn_approx(g, 1.0), ber_bpsk_awgn(g), 1e-15);
}

TEST(PerFromBer, Limits) {
  EXPECT_DOUBLE_EQ(per_from_ber(0.0, 12000.0), 0.0);
  EXPECT_DOUBLE_EQ(per_from_ber(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(per_from_ber(2.0, 1.0), 1.0);
}

TEST(PerFromBer, SmallBerLinearization) {
  // PER ≈ bits·BER when bits·BER ≪ 1.
  const double per = per_from_ber(1e-9, 12000.0);
  EXPECT_NEAR(per, 12000.0 * 1e-9, 12000.0 * 1e-9 * 0.01);
}

TEST(PerFromBer, Monotone) {
  double prev = 0.0;
  for (double ber = 1e-6; ber < 1e-2; ber *= 10.0) {
    const double per = per_from_ber(ber, 12000.0);
    EXPECT_GT(per, prev);
    prev = per;
  }
}

}  // namespace
}  // namespace comimo
