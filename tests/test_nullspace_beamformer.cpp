#include "comimo/interweave/nullspace_beamformer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/interweave/pair_beamformer.h"

namespace comimo {
namespace {

std::vector<Vec2> linear_array(std::size_t n, double spacing) {
  std::vector<Vec2> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Vec2{0.0, (static_cast<double>(i) -
                             (static_cast<double>(n) - 1.0) / 2.0) *
                                spacing});
  }
  return out;
}

TEST(NullspaceBeamformer, ExactNullAtEveryProtectedPu) {
  const double w = 0.12;
  const auto elements = linear_array(6, w / 2.0);
  const std::vector<Vec2> pus{{-80.0, 30.0}, {20.0, -90.0}};
  const Vec2 sr{100.0, 0.0};
  const NullspaceBeamformer bf(elements, w, pus, sr);
  for (const auto& pu : pus) {
    EXPECT_LT(bf.amplitude_at(pu), 1e-10);
  }
}

TEST(NullspaceBeamformer, UnitTotalPower) {
  const double w = 0.12;
  const NullspaceBeamformer bf(linear_array(4, w / 2.0), w,
                               {{-50.0, 20.0}}, {60.0, 0.0});
  double power = 0.0;
  for (const auto& wi : bf.weights()) power += std::norm(wi);
  EXPECT_NEAR(power, 1.0, 1e-12);
}

TEST(NullspaceBeamformer, GainTowardSrNearCoherentLimit) {
  // With ‖w‖² = 1 and N elements, the coherent upper bound at Sr is
  // √N; far-apart nulls barely dent it.
  const double w = 0.12;
  const std::size_t n = 6;
  const NullspaceBeamformer bf(linear_array(n, w / 2.0), w,
                               {{0.0, -200.0}}, {150.0, 0.0});
  EXPECT_GT(bf.amplitude_at(Vec2{150.0, 0.0}),
            0.85 * std::sqrt(static_cast<double>(n)));
}

TEST(NullspaceBeamformer, BeatsPairSchemeAtItsOwnGame) {
  // Same 4 elements, same protected PU, same Sr: the null-space weights
  // deliver at least the pair scheme's Sr amplitude per unit *total*
  // power.  The pair scheme radiates 2 units of power (4 unit-amplitude
  // elements... 2 pairs at amplitude 1 each element) — normalize both
  // to unit power for the comparison.
  const double w = 30.0;
  const std::vector<Vec2> elements{{0.0, 7.5},
                                   {0.0, -7.5},
                                   {1.0, 7.5},
                                   {1.0, -7.5}};
  const Vec2 pu{0.0, -5000.0};
  const Vec2 sr{5000.0, 0.0};
  const PairedBeamformer pairs(elements, w, pu);
  const NullspaceBeamformer ns(elements, w, {pu}, sr);
  // Pair scheme: 4 elements of unit amplitude → total power 4, field
  // at Sr ≈ 4 ⇒ per-√power gain ≈ 2.  Null-space: ‖w‖² = 1, gain ≈ √4.
  const double pair_gain = pairs.amplitude_at(sr) / std::sqrt(4.0);
  const double ns_gain = ns.amplitude_at(sr);
  EXPECT_GE(ns_gain, pair_gain * 0.99);
}

TEST(NullspaceBeamformer, MultiNullBeatsPairSplitting) {
  // Protecting two PUs: the null-space solution nulls both *exactly*,
  // whereas round-robin pair splitting leaves residuals (see
  // MultiPuBeamformer tests).
  const double w = 30.0;
  std::vector<Vec2> elements;
  for (int i = 0; i < 8; ++i) {
    elements.push_back(Vec2{static_cast<double>(i) * 0.5,
                            (i % 2 ? -7.5 : 7.5)});
  }
  const Vec2 pu_a{0.0, -5000.0};
  const Vec2 pu_b{-5000.0, 2000.0};
  const Vec2 sr{5000.0, 0.0};
  const NullspaceBeamformer ns(elements, w, {pu_a, pu_b}, sr);
  const MultiPuBeamformer pairs(elements, w, {pu_a, pu_b});
  EXPECT_LT(ns.amplitude_at(pu_a), 1e-9);
  EXPECT_LT(ns.amplitude_at(pu_b), 1e-9);
  EXPECT_GT(pairs.worst_residual(), 1e-3);
}

TEST(NullspaceBeamformer, Validation) {
  const double w = 0.12;
  EXPECT_THROW(
      NullspaceBeamformer(linear_array(1, w), w, {{1.0, 1.0}}, {2.0, 2.0}),
      InvalidArgument);
  EXPECT_THROW(
      NullspaceBeamformer(linear_array(3, w), w, {}, {2.0, 2.0}),
      InvalidArgument);
  // As many constraints as elements: no degrees of freedom left.
  EXPECT_THROW(NullspaceBeamformer(linear_array(2, w), w,
                                   {{1.0, 0.0}, {0.0, 1.0}}, {2.0, 2.0}),
               InvalidArgument);
}

TEST(NullspaceBeamformer, DesiredInsideProtectedSpanRejected) {
  // Protecting the Sr direction itself leaves nothing to project onto.
  const double w = 0.12;
  const auto elements = linear_array(4, w / 2.0);
  const Vec2 sr{100.0, 0.0};
  EXPECT_THROW(NullspaceBeamformer(elements, w, {sr}, sr),
               InvalidArgument);
}

}  // namespace
}  // namespace comimo
