#include "comimo/phy/modulation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/phy/detector.h"

namespace comimo {
namespace {

TEST(GrayCode, RoundTrip) {
  for (unsigned i = 0; i < 256; ++i) {
    EXPECT_EQ(gray_decode(gray_encode(i)), i);
  }
}

TEST(GrayCode, AdjacentCodesDifferInOneBit) {
  for (unsigned i = 0; i + 1 < 256; ++i) {
    const unsigned diff = gray_encode(i) ^ gray_encode(i + 1);
    EXPECT_EQ(diff & (diff - 1), 0u) << "i=" << i;  // power of two
  }
}

TEST(Bpsk, MapsAntipodal) {
  const BpskModulator m;
  const BitVec bits{0, 1, 0};
  const auto s = m.modulate(bits);
  EXPECT_EQ(s[0], cplx(1.0, 0.0));
  EXPECT_EQ(s[1], cplx(-1.0, 0.0));
  EXPECT_EQ(s[2], cplx(1.0, 0.0));
}

TEST(Bpsk, RoundTrip) {
  const BpskModulator m;
  const BitVec bits = random_bits(1000, 1);
  EXPECT_EQ(m.demodulate(m.modulate(bits)), bits);
}

TEST(Bpsk, HardDecisionThreshold) {
  const BpskModulator m;
  const std::vector<cplx> noisy{{0.1, 5.0}, {-0.1, -5.0}};
  const BitVec bits = m.demodulate(noisy);
  EXPECT_EQ(bits[0], 0);
  EXPECT_EQ(bits[1], 1);
}

class QamRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QamRoundTrip, NoiseFreeRoundTrip) {
  const int b = GetParam();
  const QamModulator m(b);
  BitVec bits = random_bits(120 * static_cast<std::size_t>(b), 7);
  EXPECT_EQ(m.demodulate(m.modulate(bits)), bits);
}

TEST_P(QamRoundTrip, UnitAverageEnergy) {
  const int b = GetParam();
  const QamModulator m(b);
  double energy = 0.0;
  for (const auto& p : m.constellation()) energy += std::norm(p);
  energy /= static_cast<double>(m.constellation().size());
  EXPECT_NEAR(energy, 1.0, 1e-12) << "b=" << b;
}

TEST_P(QamRoundTrip, ConstellationPointsDistinct) {
  const int b = GetParam();
  const QamModulator m(b);
  const auto& pts = m.constellation();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      EXPECT_GT(std::abs(pts[i] - pts[j]), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSupportedB, QamRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Qam, GrayNeighborsOnIAxis) {
  // In a Gray-mapped square QAM, horizontally adjacent points differ in
  // exactly one bit.  Check 16-QAM exhaustively by brute force: for each
  // point find its nearest horizontal neighbor and compare labels.
  const QamModulator m(4);
  const auto& pts = m.constellation();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::size_t best = i;
    double best_d = 1e9;
    for (std::size_t j = 0; j < pts.size(); ++j) {
      if (j == i) continue;
      if (std::abs(pts[j].imag() - pts[i].imag()) > 1e-9) continue;
      const double d = std::abs(pts[j].real() - pts[i].real());
      if (d < best_d) {
        best_d = d;
        best = j;
      }
    }
    if (best == i) continue;  // edge point with no horizontal neighbor
    const unsigned diff = static_cast<unsigned>(i) ^ static_cast<unsigned>(best);
    EXPECT_EQ(diff & (diff - 1), 0u) << "labels " << i << "," << best;
  }
}

TEST(Qam, RejectsUnsupportedB) {
  EXPECT_THROW(QamModulator(0), InvalidArgument);
  EXPECT_THROW(QamModulator(9), InvalidArgument);
}

TEST(Qam, ModulateRejectsPartialSymbol) {
  const QamModulator m(4);
  EXPECT_THROW(m.modulate(BitVec(6)), InvalidArgument);
}

TEST(MakeModulator, Factory) {
  EXPECT_EQ(make_modulator(1)->bits_per_symbol(), 1);
  EXPECT_EQ(make_modulator(4)->bits_per_symbol(), 4);
  EXPECT_THROW(make_modulator(0), InvalidArgument);
}

// --- detector helpers ----------------------------------------------------

TEST(Detector, BytesBitsRoundTrip) {
  const std::vector<std::uint8_t> bytes{0x00, 0xFF, 0xA5, 0x3C};
  EXPECT_EQ(bits_to_bytes(bytes_to_bits(bytes)), bytes);
}

TEST(Detector, BitsMsbFirst) {
  const std::vector<std::uint8_t> bytes{0x80};
  const BitVec bits = bytes_to_bits(bytes);
  EXPECT_EQ(bits[0], 1);
  for (int i = 1; i < 8; ++i) EXPECT_EQ(bits[i], 0);
}

TEST(Detector, CountBitErrors) {
  const BitVec a{0, 1, 1, 0};
  const BitVec b{0, 1, 0, 1};
  EXPECT_EQ(count_bit_errors(a, b), 2u);
  EXPECT_THROW((void)count_bit_errors(a, BitVec{0}), InvalidArgument);
}

TEST(Detector, RandomBitsBalancedAndDeterministic) {
  const BitVec a = random_bits(10000, 5);
  const BitVec b = random_bits(10000, 5);
  EXPECT_EQ(a, b);
  std::size_t ones = 0;
  for (const auto bit : a) ones += bit;
  EXPECT_NEAR(static_cast<double>(ones), 5000.0, 300.0);
}

TEST(Detector, PadToMultiple) {
  EXPECT_EQ(pad_to_multiple(BitVec{1, 1}, 4).size(), 4u);
  EXPECT_EQ(pad_to_multiple(BitVec{1, 1, 1, 1}, 4).size(), 4u);
  const BitVec padded = pad_to_multiple(BitVec{1}, 3);
  EXPECT_EQ(padded[0], 1);
  EXPECT_EQ(padded[1], 0);
  EXPECT_EQ(padded[2], 0);
}

}  // namespace
}  // namespace comimo
