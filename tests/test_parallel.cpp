#include "comimo/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "comimo/common/error.h"

namespace comimo {
namespace {

TEST(ThreadPool, ExecutesAllJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, RejectsNullJob) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), InvalidArgument);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 50) throw NumericError("boom");
                   }),
      NumericError);
}

TEST(ParallelForChunks, PartitionIsContiguous) {
  const std::size_t n = 777;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(n, 10, [&](std::size_t begin, std::size_t end) {
    EXPECT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, DeterministicResultRegardlessOfThreads) {
  // Index-derived work gives the same result on any worker count.
  const std::size_t n = 500;
  std::vector<double> out(n, 0.0);
  parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 1.5;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 1.5 * (n - 1) * n / 2.0);
}

}  // namespace
}  // namespace comimo
