#include "comimo/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "comimo/common/error.h"

namespace comimo {
namespace {

TEST(ThreadPool, ExecutesAllJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, RejectsNullJob) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), InvalidArgument);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [](std::size_t i) {
                     if (i == 50) throw NumericError("boom");
                   }),
      NumericError);
}

TEST(ParallelForChunks, PartitionIsContiguous) {
  const std::size_t n = 777;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_chunks(n, 10, [&](std::size_t begin, std::size_t end) {
    EXPECT_LE(begin, end);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, CurrentIsNullOffWorkers) {
  EXPECT_EQ(ThreadPool::current(), nullptr);
  ThreadPool pool(2);
  const ThreadPool* seen = nullptr;
  pool.submit([&seen] { seen = ThreadPool::current(); });
  pool.wait_idle();
  EXPECT_EQ(seen, &pool);
  EXPECT_EQ(ThreadPool::current(), nullptr);
}

TEST(ThreadPool, NestedSubmitThrowsConcurrencyError) {
  // submit() from a worker of the same pool would deadlock once every
  // worker blocks on work that can never be scheduled — it must throw
  // instead of hanging.  (Regression: this used to deadlock.)
  ThreadPool pool(1);
  bool threw = false;
  pool.submit([&] {
    try {
      pool.submit([] {});
    } catch (const ConcurrencyError&) {
      threw = true;
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(threw);
}

TEST(ThreadPool, NestedWaitIdleThrowsConcurrencyError) {
  ThreadPool pool(1);
  bool threw = false;
  pool.submit([&] {
    try {
      pool.wait_idle();
    } catch (const ConcurrencyError&) {
      threw = true;
    }
  });
  pool.wait_idle();
  EXPECT_TRUE(threw);
}

TEST(ThreadPool, SubmitToAnotherPoolFromWorkerIsFine) {
  // Only same-pool nesting is a deadlock; fanning out to a *different*
  // pool is legal.
  ThreadPool outer(1);
  ThreadPool inner(1);
  std::atomic<int> ran{0};
  outer.submit([&] {
    inner.submit([&ran] { ran.fetch_add(1); });
    inner.wait_idle();
  });
  outer.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelFor, NestedOnSamePoolRunsInlineSerially) {
  // parallel_for from a worker of the same pool degrades to serial
  // inline execution instead of throwing — nested parallel code is
  // safe, merely not extra-parallel.
  ThreadPool pool(2);
  std::atomic<int> total{0};
  parallel_for(pool, 4, [&](std::size_t) {
    parallel_for(pool, 25, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(ParallelFor, DeterministicResultRegardlessOfThreads) {
  // Index-derived work gives the same result on any worker count.
  const std::size_t n = 500;
  std::vector<double> out(n, 0.0);
  parallel_for(n, [&](std::size_t i) {
    out[i] = static_cast<double>(i) * 1.5;
  });
  double sum = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(sum, 1.5 * (n - 1) * n / 2.0);
}

}  // namespace
}  // namespace comimo
