// The hop-batch contract: CoopHopBlockKernel's W-wide group driver must
// reproduce the lane-serial reference driver bit for bit — per lane,
// per tier, for full STBC designs and every ladder-degraded shape — and
// the serial group driver itself must equal running each block alone.
// Tiers the host cannot run (e.g. AVX-512 without avx512f) simply do
// not appear in kernels_for_tier and are skipped.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "comimo/common/parallel.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/simd/simd.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/hop_batch.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"
#include "comimo/testbed/coop_hop_sim.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {
namespace {

using simd::BatchKernels;
using simd::Tier;

// Every kernel table the host can run, scalar included — the batch
// driver must hold its contract at width 1 too.
std::vector<const BatchKernels*> runnable_tiers() {
  std::vector<const BatchKernels*> out;
  for (const Tier t : {Tier::kScalar, Tier::kSse2, Tier::kAvx2,
                       Tier::kAvx512, Tier::kNeon}) {
    if (const BatchKernels* k = simd::kernels_for_tier(t)) out.push_back(k);
  }
  return out;
}

UnderlayHopPlan make_plan(unsigned mt, unsigned mr) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg;
  cfg.mt = mt;
  cfg.mr = mr;
  cfg.hop_distance_m = 200.0;
  cfg.ber = 1e-2;
  return planner.plan(cfg, BSelectionRule::kMinTotalPa);
}

void expect_lanes_equal(HopBatchWorkspace& got, HopBatchWorkspace& want,
                        std::size_t count, std::size_t bpb,
                        const char* what) {
  for (std::size_t w = 0; w < count; ++w) {
    const std::uint8_t* g = got.decoded_lane(w);
    const std::uint8_t* r = want.decoded_lane(w);
    for (std::size_t i = 0; i < bpb; ++i) {
      ASSERT_EQ(g[i], r[i]) << what << " lane " << w << " bit " << i;
    }
  }
}

TEST(HopBatch, GroupBatchMatchesGroupSerialAtEveryTier) {
  struct Shape {
    unsigned mt;
    unsigned mr;
  };
  for (const Shape shape :
       {Shape{2, 2}, Shape{3, 2}, Shape{4, 2}, Shape{4, 4}}) {
    const UnderlayHopPlan plan = make_plan(shape.mt, shape.mr);
    const CoopHopBlockKernel kernel(plan, 30.0);
    const std::size_t bpb = kernel.bits_per_block();
    for (const BatchKernels* k : runnable_tiers()) {
      const std::size_t width = k->width;
      for (const std::size_t blk0 : {std::size_t{0}, std::size_t{13}}) {
        const BitVec payload = random_bits((blk0 + width) * bpb, 0xB17);
        HopBatchWorkspace ws_serial, ws_batch;
        kernel.prepare_batch(ws_serial, width);
        kernel.prepare_batch(ws_batch, width);
        CoopHopBlockKernel::GroupStats
            stats_serial[CoopHopBlockKernel::kMaxLanes]{};
        CoopHopBlockKernel::GroupStats
            stats_batch[CoopHopBlockKernel::kMaxLanes]{};
        kernel.run_group_serial(ws_serial, payload.data(), blk0, width, 17,
                                kernel.decoder_full(), stats_serial);
        kernel.run_group_batch(ws_batch, payload.data(), blk0, width, 17,
                               kernel.decoder_full(), stats_batch, k);
        expect_lanes_equal(ws_batch, ws_serial, width, bpb,
                           simd::tier_name(k->tier));
        for (std::size_t w = 0; w < width; ++w) {
          EXPECT_EQ(stats_batch[w].intra_errors, stats_serial[w].intra_errors)
              << simd::tier_name(k->tier) << " lane " << w;
          EXPECT_EQ(stats_batch[w].intra_bits, stats_serial[w].intra_bits)
              << simd::tier_name(k->tier) << " lane " << w;
        }
      }
    }
  }
}

TEST(HopBatch, GroupSerialEqualsRunningEachBlockAlone) {
  // The ragged-tail path: a group of any count must be exactly the
  // concatenation of single-block runs — streams are (seed, block
  // index), never (seed, lane).
  const UnderlayHopPlan plan = make_plan(2, 2);
  const CoopHopBlockKernel kernel(plan, 30.0);
  const std::size_t bpb = kernel.bits_per_block();
  const std::size_t max_count = 5;
  const std::size_t blk0 = 7;
  const BitVec payload = random_bits((blk0 + max_count) * bpb, 0xFEED);
  for (std::size_t count = 1; count <= max_count; ++count) {
    HopBatchWorkspace ws_group, ws_one;
    kernel.prepare_batch(ws_group, count);
    kernel.prepare_batch(ws_one, 1);
    CoopHopBlockKernel::GroupStats
        group_stats[CoopHopBlockKernel::kMaxLanes]{};
    kernel.run_group_serial(ws_group, payload.data(), blk0, count, 29,
                            kernel.decoder_full(), group_stats);
    for (std::size_t w = 0; w < count; ++w) {
      CoopHopBlockKernel::GroupStats one_stats[1]{};
      kernel.run_group_serial(ws_one, payload.data(), blk0 + w, 1, 29,
                              kernel.decoder_full(), one_stats);
      const std::uint8_t* got = ws_group.decoded_lane(w);
      const std::uint8_t* want = ws_one.decoded_lane(0);
      for (std::size_t i = 0; i < bpb; ++i) {
        ASSERT_EQ(got[i], want[i])
            << "count=" << count << " lane=" << w << " bit=" << i;
      }
      EXPECT_EQ(group_stats[w].intra_errors, one_stats[0].intra_errors);
      EXPECT_EQ(group_stats[w].intra_bits, one_stats[0].intra_bits);
    }
  }
}

TEST(HopBatch, DegradedLadderShapesStayLaneBitwise) {
  // Dropout degradation swaps in a shrunken STBC design while the block
  // length stays the full design's K·b — the batch path must chunk the
  // sub-blocks exactly like the scalar path at every ladder step.
  const UnderlayHopPlan plan = make_plan(4, 2);
  const CoopHopBlockKernel kernel(plan, 30.0);
  const std::size_t bpb = kernel.bits_per_block();
  for (unsigned mt_use = 1; mt_use <= 3; ++mt_use) {
    const StbcDecoder degraded(StbcCode::for_antennas(mt_use));
    for (const BatchKernels* k : runnable_tiers()) {
      const std::size_t width = k->width;
      const std::size_t blk0 = 3;
      const BitVec payload = random_bits((blk0 + width) * bpb, 0xDE6);
      HopBatchWorkspace ws_serial, ws_batch;
      kernel.prepare_batch(ws_serial, width);
      kernel.prepare_batch(ws_batch, width);
      CoopHopBlockKernel::GroupStats
          stats_serial[CoopHopBlockKernel::kMaxLanes]{};
      CoopHopBlockKernel::GroupStats
          stats_batch[CoopHopBlockKernel::kMaxLanes]{};
      kernel.run_group_serial(ws_serial, payload.data(), blk0, width, 41,
                              degraded, stats_serial);
      kernel.run_group_batch(ws_batch, payload.data(), blk0, width, 41,
                             degraded, stats_batch, k);
      expect_lanes_equal(ws_batch, ws_serial, width, bpb,
                         simd::tier_name(k->tier));
    }
  }
}

TEST(HopBatch, WorkspaceReuseAcrossDesignsIsClean) {
  // One workspace serving alternating full/degraded groups must not
  // leak state between configurations (configure_long_haul reshapes the
  // planes on every batch call).
  const UnderlayHopPlan plan = make_plan(4, 2);
  const CoopHopBlockKernel kernel(plan, 30.0);
  const std::size_t bpb = kernel.bits_per_block();
  const BatchKernels* k = &simd::active_kernels();
  const std::size_t width = k->width;
  const StbcDecoder degraded(StbcCode::for_antennas(3));
  const BitVec payload = random_bits(4 * width * bpb, 0xAB);
  HopBatchWorkspace reused, fresh;
  kernel.prepare_batch(reused, width);
  CoopHopBlockKernel::GroupStats stats[CoopHopBlockKernel::kMaxLanes]{};
  // Interleave designs on the reused workspace...
  for (int round = 0; round < 2; ++round) {
    for (std::size_t g = 0; g < 2; ++g) {
      const std::size_t blk0 = (2 * static_cast<std::size_t>(round) + g) *
                               width;
      const StbcDecoder& use = g == 0 ? kernel.decoder_full() : degraded;
      kernel.run_group_batch(reused, payload.data(), blk0, width, 59, use,
                             stats, k);
      // ...and check each group against a fresh workspace.
      kernel.prepare_batch(fresh, width);
      kernel.run_group_batch(fresh, payload.data(), blk0, width, 59, use,
                             stats, k);
      expect_lanes_equal(reused, fresh, width, bpb, "reused-vs-fresh");
    }
  }
}

TEST(HopBatch, SimulateCooperativeHopInvariantAcrossPoolSizes) {
  // End to end: the group-batched hop must stay bit-identical on 1 and
  // N workers (groups are keyed by block index, merged in block order).
  const UnderlayHopPlan plan = make_plan(4, 4);
  CoopHopSimConfig sim;
  sim.plan = plan;
  sim.bits = 6000;  // not a multiple of the group width — ragged tail
  sim.seed = 99;
  ThreadPool one(1);
  sim.pool = &one;
  const CoopHopSimResult ref = simulate_cooperative_hop(sim);
  ThreadPool many(4);
  sim.pool = &many;
  const CoopHopSimResult par = simulate_cooperative_hop(sim);
  EXPECT_EQ(ref.bits, par.bits);
  EXPECT_EQ(ref.bit_errors, par.bit_errors);
  EXPECT_DOUBLE_EQ(ref.intra_error_rate, par.intra_error_rate);
  EXPECT_TRUE(ref.resilience == par.resilience);
}

TEST(HopBatch, WorkspacePlanesAre64ByteAligned) {
  const UnderlayHopPlan plan = make_plan(4, 2);
  const CoopHopBlockKernel kernel(plan, 30.0);
  HopBatchWorkspace ws;
  kernel.prepare_batch(ws, 4);
  const auto aligned = [](const auto& p) {
    return reinterpret_cast<std::uintptr_t>(p.data()) % 64 == 0;
  };
  EXPECT_TRUE(aligned(ws.ant_sym_re) && aligned(ws.ant_sym_im));
  EXPECT_TRUE(aligned(ws.link.h_re) && aligned(ws.link.h_im));
  EXPECT_TRUE(aligned(ws.link.rx_re) && aligned(ws.link.rx_im));
  EXPECT_EQ(ws.width, 4u);
  EXPECT_EQ(ws.bits_per_block, kernel.bits_per_block());
}

}  // namespace
}  // namespace comimo
