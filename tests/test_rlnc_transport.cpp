// Gilbert–Elliott burst channel and the RLNC transport path: burst
// statistics and determinism, route-level coded delivery, and the
// resilient-simulator integration contracts (off = bit-identical ARQ,
// on = bit-identical replay at any worker count).
#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/net/lifetime.h"
#include "comimo/numeric/rng.h"
#include "comimo/resilience/gilbert_elliott.h"
#include "comimo/resilience/resilient_sim.h"
#include "comimo/resilience/rlnc_transport.h"
#include "comimo/testbed/coop_hop_sim.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {
namespace {

CoMimoNet make_field(std::uint64_t seed = 11) {
  const auto nodes = clustered_field(14, 3, 6.0, 450.0, 450.0, seed,
                                     /*battery_lo=*/150.0,
                                     /*battery_hi=*/200.0);
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 40.0;
  cfg.cluster_diameter_m = 16.0;
  cfg.link_range_m = 280.0;
  return CoMimoNet(nodes, cfg);
}

// -------------------------------------------------- Gilbert–Elliott ----

TEST(GilbertElliott, ValidateRejectsBadKnobs) {
  GilbertElliottConfig cfg;
  cfg.p_good_to_bad = 0.0;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg.p_good_to_bad = 0.02;
  cfg.loss_bad = 1.5;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg.loss_bad = 0.75;
  cfg.trace_slots = 0;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg.trace_slots = 64;
  EXPECT_NO_THROW(validate(cfg));
}

TEST(GilbertElliott, DisabledChannelNeverErases) {
  GilbertElliottChannel off;
  for (std::uint64_t s = 0; s < 1000; ++s) {
    EXPECT_FALSE(off.erased(s));
    EXPECT_FALSE(off.bad(s));
  }
}

TEST(GilbertElliott, StationaryOccupancyMatchesTheory) {
  GilbertElliottConfig cfg;
  cfg.enabled = true;
  cfg.p_good_to_bad = 0.05;
  cfg.p_bad_to_good = 0.20;
  cfg.trace_slots = 1u << 16;
  cfg.seed = 3;
  const GilbertElliottChannel ch(cfg);
  EXPECT_NEAR(ch.stationary_bad(), 0.05 / 0.25, 1e-12);
  std::size_t bad = 0;
  for (std::uint64_t s = 0; s < cfg.trace_slots; ++s) {
    if (ch.bad(s)) ++bad;
  }
  const double frac = static_cast<double>(bad) / cfg.trace_slots;
  EXPECT_NEAR(frac, ch.stationary_bad(), 0.02);
}

TEST(GilbertElliott, EmpiricalLossTracksExpectedLoss) {
  GilbertElliottConfig cfg;
  cfg.enabled = true;
  cfg.loss_good = 0.02;
  cfg.loss_bad = 0.8;
  cfg.trace_slots = 1u << 15;
  cfg.seed = 5;
  const GilbertElliottChannel ch(cfg);
  std::size_t losses = 0;
  const std::uint64_t n = cfg.trace_slots;
  for (std::uint64_t s = 0; s < n; ++s) {
    if (ch.erased(s)) ++losses;
  }
  EXPECT_NEAR(static_cast<double>(losses) / static_cast<double>(n),
              ch.expected_loss(), 0.03);
}

TEST(GilbertElliott, LossesAreBurstyRelativeToIid) {
  // P(erased(s+1) | erased(s)) should far exceed the marginal loss rate
  // when bad dwells are long — the whole point of the model.
  GilbertElliottConfig cfg;
  cfg.enabled = true;
  cfg.p_good_to_bad = 0.01;
  cfg.p_bad_to_good = 0.10;  // mean bad dwell: 10 slots
  cfg.loss_good = 0.01;
  cfg.loss_bad = 0.9;
  cfg.trace_slots = 1u << 16;
  cfg.seed = 7;
  const GilbertElliottChannel ch(cfg);
  std::size_t losses = 0, pairs = 0, joint = 0;
  for (std::uint64_t s = 0; s + 1 < cfg.trace_slots; ++s) {
    const bool a = ch.erased(s);
    if (a) {
      ++losses;
      ++pairs;
      if (ch.erased(s + 1)) ++joint;
    }
  }
  ASSERT_GT(pairs, 100u);
  const double marginal =
      static_cast<double>(losses) / static_cast<double>(cfg.trace_slots);
  const double conditional =
      static_cast<double>(joint) / static_cast<double>(pairs);
  EXPECT_GT(conditional, 3.0 * marginal);
}

TEST(GilbertElliott, DeterministicReplayAndSeedSensitivity) {
  GilbertElliottConfig cfg;
  cfg.enabled = true;
  cfg.trace_slots = 4096;
  cfg.seed = 11;
  const GilbertElliottChannel a(cfg), b(cfg);
  cfg.seed = 12;
  const GilbertElliottChannel c(cfg);
  bool differs = false;
  for (std::uint64_t s = 0; s < 4096; ++s) {
    EXPECT_EQ(a.erased(s), b.erased(s));
    differs = differs || a.erased(s) != c.erased(s);
  }
  EXPECT_TRUE(differs);
  // Slot ordinals wrap over the trace (states repeat; coins are keyed
  // by the absolute ordinal, so only the STATE is periodic).
  for (std::uint64_t s = 0; s < 128; ++s) {
    EXPECT_EQ(a.bad(s), a.bad(s + cfg.trace_slots));
  }
}

TEST(GilbertElliott, FaultPlanCompositionOffIsFree) {
  // With bursts disabled the plan's burst_erased is identically false
  // and the legacy draws are untouched.
  FaultConfig fc;
  fc.enabled = true;
  fc.slot_erasure_prob = 0.3;
  fc.seed = 9;
  const FaultInjector injector(fc);
  const FaultPlan plan = injector.make_plan(make_field(), 50);
  for (std::uint64_t s = 0; s < 500; ++s) {
    EXPECT_FALSE(plan.burst_erased(s));
  }
  FaultConfig fc2 = fc;
  fc2.burst.enabled = true;
  fc2.burst.loss_bad = 0.9;
  const FaultInjector injector2(fc2);
  const FaultPlan plan2 = injector2.make_plan(make_field(), 50);
  // Legacy i.i.d. draws are bit-identical with and without the burst
  // channel riding along.
  for (std::size_t round = 1; round <= 20; ++round) {
    for (unsigned k = 0; k < 4; ++k) {
      EXPECT_EQ(plan.slot_erased(round, 0, k), plan2.slot_erased(round, 0, k));
    }
  }
  bool any = false;
  for (std::uint64_t s = 0; s < 2000 && !any; ++s) {
    any = plan2.burst_erased(s);
  }
  EXPECT_TRUE(any);
}

// ------------------------------------------------------ RLNC transport --

RlncTransportConfig small_transport() {
  RlncTransportConfig cfg;
  cfg.enabled = true;
  cfg.code.generation_size = 8;
  cfg.code.packet_bytes = 16;
  cfg.max_overhead_packets = 64;
  return cfg;
}

TEST(RlncTransport, LosslessRouteDeliversWithZeroOverhead) {
  const RlncTransportConfig cfg = small_transport();
  Rng rng(1, 0);
  const auto never = [](std::size_t, std::size_t) { return false; };
  std::size_t charged = 0;
  const RlncRouteResult r = run_rlnc_route(
      cfg, 3, 42, rng, never,
      [&](std::size_t, bool, bool) { ++charged; }, [](std::size_t) {});
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.final_rank, 8u);
  EXPECT_EQ(r.overhead_packets, 0u);
  EXPECT_EQ(r.feedback_rounds, 0u);
  EXPECT_EQ(r.packets_sent, 3 * 8u);
  EXPECT_EQ(charged, r.packets_sent);
  // Hops 2 and 3 only ever forwarded recoded packets.
  EXPECT_EQ(r.recoded_packets, 2 * 8u);
}

TEST(RlncTransport, RecoversFromErasuresWithOverhead) {
  const RlncTransportConfig cfg = small_transport();
  Rng rng(2, 0);
  Rng loss(2, 1);
  const auto coin = [&](std::size_t, std::size_t) {
    return loss.bernoulli(0.3);
  };
  const RlncRouteResult r = run_rlnc_route(cfg, 2, 7, rng, coin,
                                           [](std::size_t, bool, bool) {},
                                           [](std::size_t) {});
  EXPECT_TRUE(r.delivered);
  EXPECT_GT(r.overhead_packets, 0u);
  EXPECT_GT(r.feedback_rounds, 0u);
}

TEST(RlncTransport, BudgetExhaustionReportsPartialRank) {
  RlncTransportConfig cfg = small_transport();
  cfg.max_overhead_packets = 2;  // far too few against heavy loss
  Rng rng(3, 0);
  Rng loss(3, 1);
  const auto coin = [&](std::size_t, std::size_t) {
    return loss.bernoulli(0.7);
  };
  const RlncRouteResult r = run_rlnc_route(cfg, 2, 9, rng, coin,
                                           [](std::size_t, bool, bool) {},
                                           [](std::size_t) {});
  EXPECT_FALSE(r.delivered);
  EXPECT_LT(r.final_rank, 8u);
  EXPECT_GE(r.decodable_packets, 0u);
  EXPECT_LE(r.decodable_packets, r.final_rank);
}

TEST(RlncTransport, ReplaysBitIdenticallyFromSeeds) {
  const RlncTransportConfig cfg = small_transport();
  const auto run_once = [&]() {
    Rng rng(5, 0);
    Rng loss(5, 1);
    std::vector<std::size_t> charges;
    const RlncRouteResult r = run_rlnc_route(
        cfg, 3, 13, rng,
        [&](std::size_t, std::size_t) { return loss.bernoulli(0.2); },
        [&](std::size_t h, bool, bool) { charges.push_back(h); },
        [](std::size_t) {});
    return std::make_tuple(r.delivered, r.packets_sent, r.overhead_packets,
                           r.recoded_packets, r.feedback_rounds, r.final_rank,
                           charges);
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------- resilient_sim integration --

ResilienceConfig base_sim_config() {
  ResilienceConfig cfg;
  cfg.rounds = 40;
  cfg.bits_per_packet = 4e4;
  cfg.faults.enabled = true;
  cfg.faults.slot_erasure_prob = 0.15;
  cfg.faults.seed = 5;
  cfg.traffic_seed = 3;
  return cfg;
}

TEST(RlncSim, DisabledRlncLeavesArqReportBitIdentical) {
  const CoMimoNet net = make_field();
  const SystemParams params;
  const ResilienceConfig cfg = base_sim_config();
  ResilienceConfig with_knobs = cfg;
  // Present-but-disabled RLNC (and a present-but-disabled burst model)
  // must not shift any stream: reports compare equal field-for-field.
  with_knobs.rlnc.code.generation_size = 32;
  with_knobs.rlnc.max_overhead_packets = 7;
  with_knobs.faults.burst.loss_bad = 0.99;
  const ResilienceReport a = simulate_with_faults(net, params, cfg);
  const ResilienceReport b = simulate_with_faults(net, params, with_knobs);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.rlnc_generations, 0u);
  EXPECT_EQ(a.rlnc_packets_sent, 0u);
}

TEST(RlncSim, RlncPathReplaysBitIdentically) {
  const CoMimoNet net = make_field();
  const SystemParams params;
  ResilienceConfig cfg = base_sim_config();
  cfg.rlnc.enabled = true;
  cfg.rlnc.code.generation_size = 8;
  cfg.rlnc.code.packet_bytes = 32;
  cfg.faults.burst.enabled = true;
  const ResilienceReport a = simulate_with_faults(net, params, cfg);
  const ResilienceReport b = simulate_with_faults(net, params, cfg);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.rlnc_generations, 0u);
  EXPECT_GT(a.rlnc_packets_sent, 0u);
  EXPECT_GT(a.rlnc_recoded_packets, 0u);
  EXPECT_GT(a.packets_delivered, 0u);
  EXPECT_GT(a.delivered_latency_s, 0.0);
}

TEST(RlncSim, EnsembleIsBitIdenticalAcrossWorkerCounts) {
  const CoMimoNet net = make_field();
  const SystemParams params;
  ResilienceEnsembleConfig ens;
  ens.base = base_sim_config();
  ens.base.rounds = 15;
  ens.base.rlnc.enabled = true;
  ens.base.rlnc.code.generation_size = 4;
  ens.base.rlnc.code.packet_bytes = 8;
  ens.base.faults.burst.enabled = true;
  ens.trials = 6;
  ThreadPool one(1), four(4);
  ens.pool = &one;
  const ResilienceEnsembleReport a =
      simulate_with_faults_ensemble(net, params, ens);
  ens.pool = &four;
  const ResilienceEnsembleReport b =
      simulate_with_faults_ensemble(net, params, ens);
  EXPECT_EQ(a.delivery_ratio.mean(), b.delivery_ratio.mean());
  EXPECT_EQ(a.latency_s.mean(), b.latency_s.mean());
  EXPECT_EQ(a.rlnc_packets_sent, b.rlnc_packets_sent);
  EXPECT_EQ(a.rlnc_overhead_packets, b.rlnc_overhead_packets);
  EXPECT_EQ(a.rlnc_failures, b.rlnc_failures);
}

TEST(RlncSim, BurstsHurtArqMoreThanRlnc) {
  // The headline claim, in miniature: under heavy burst loss with a
  // short ARQ retry budget, the coded transport delivers a higher
  // fraction of offered packets.
  const CoMimoNet net = make_field();
  const SystemParams params;
  ResilienceConfig cfg = base_sim_config();
  cfg.rounds = 60;
  cfg.arq.max_attempts = 3;
  cfg.faults.slot_erasure_prob = 0.05;
  cfg.faults.burst.enabled = true;
  cfg.faults.burst.p_good_to_bad = 0.05;
  cfg.faults.burst.p_bad_to_good = 0.08;  // long bad dwells
  cfg.faults.burst.loss_bad = 0.85;
  ResilienceConfig rlnc_cfg = cfg;
  rlnc_cfg.rlnc.enabled = true;
  rlnc_cfg.rlnc.code.generation_size = 8;
  rlnc_cfg.rlnc.code.packet_bytes = 16;
  rlnc_cfg.rlnc.max_overhead_packets = 48;
  const ResilienceReport arq = simulate_with_faults(net, params, cfg);
  const ResilienceReport rlnc = simulate_with_faults(net, params, rlnc_cfg);
  EXPECT_GT(rlnc.delivery_ratio, arq.delivery_ratio);
}

// ------------------------------------------- coop_hop_sim repair mode --

UnderlayHopPlan small_plan() {
  const UnderlayCooperativeHop planner{SystemParams{}};
  UnderlayHopConfig cfg;
  cfg.mt = 2;
  cfg.mr = 2;
  cfg.hop_distance_m = 150.0;
  cfg.ber = 1e-3;
  return planner.plan(cfg);
}

TEST(RlncSim, HopBlockRepairRecoversErasedBlocks) {
  CoopHopSimConfig cfg;
  cfg.plan = small_plan();
  cfg.bits = 12000;
  cfg.faults.enabled = true;
  cfg.faults.rlnc = true;
  cfg.faults.block_erasure_prob = 0.25;
  cfg.faults.rlnc_generation = 8;
  cfg.faults.rlnc_max_overhead = 32;
  const CoopHopSimResult r = simulate_cooperative_hop(cfg);
  EXPECT_GT(r.resilience.blocks, 0u);
  EXPECT_GT(r.resilience.repair_blocks, 0u);
  EXPECT_GT(r.resilience.recovered_blocks, 0u);
  EXPECT_EQ(r.resilience.retransmitted_blocks, 0u);  // no retries in RLNC mode
  // With a generous repair budget nothing should stay lost, and the BER
  // should stay near the plan target rather than ~0.5.
  EXPECT_EQ(r.resilience.lost_blocks, 0u);
  EXPECT_LT(r.ber, 0.1);
}

TEST(RlncSim, HopBlockRepairIsPoolSizeInvariant) {
  CoopHopSimConfig cfg;
  cfg.plan = small_plan();
  cfg.bits = 6000;
  cfg.faults.enabled = true;
  cfg.faults.rlnc = true;
  cfg.faults.block_erasure_prob = 0.3;
  cfg.faults.rlnc_generation = 4;
  cfg.faults.rlnc_max_overhead = 2;  // tight: some generations stay lost
  ThreadPool one(1), four(4);
  cfg.pool = &one;
  const CoopHopSimResult a = simulate_cooperative_hop(cfg);
  cfg.pool = &four;
  const CoopHopSimResult b = simulate_cooperative_hop(cfg);
  EXPECT_EQ(a.bit_errors, b.bit_errors);
  EXPECT_EQ(a.resilience, b.resilience);
}

}  // namespace
}  // namespace comimo
