#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/overlay/distance_planner.h"
#include "comimo/overlay/relay_scheme.h"

namespace comimo {
namespace {

TEST(OverlayRelayScheme, PlanProducesPositiveEnergies) {
  const OverlayRelayScheme scheme;
  OverlayRelayConfig cfg;
  cfg.num_relays = 3;
  cfg.pt_to_su_m = 150.0;
  cfg.su_to_pr_m = 200.0;
  const OverlayRelayEnergies e = scheme.plan(cfg);
  EXPECT_GT(e.e_pt, 0.0);
  EXPECT_GT(e.e_su_rx, 0.0);
  EXPECT_GT(e.e_su_tx, 0.0);
  EXPECT_GT(e.e_pr, 0.0);
  EXPECT_GE(e.b_simo, 1);
  EXPECT_GE(e.b_miso, 1);
  EXPECT_NEAR(e.e_su_total(), e.e_su_rx + e.e_su_tx, 1e-18);
}

TEST(OverlayRelayScheme, TransmissionCostsMoreThanReception) {
  // §6.1: "Transmission needs more energy than reception (see formula
  // (3) and (4))" — at realistic ranges the PA term dominates.
  const OverlayRelayScheme scheme;
  OverlayRelayConfig cfg;
  cfg.num_relays = 2;
  cfg.pt_to_su_m = 100.0;
  cfg.su_to_pr_m = 100.0;
  const OverlayRelayEnergies e = scheme.plan(cfg);
  EXPECT_GT(e.e_su_tx, e.e_su_rx);
  EXPECT_GT(e.e_pt, e.e_pr);
}

TEST(OverlayRelayScheme, MoreRelaysCutPerNodeTxEnergy) {
  const OverlayRelayScheme scheme;
  OverlayRelayConfig cfg;
  cfg.pt_to_su_m = 150.0;
  cfg.su_to_pr_m = 150.0;
  cfg.num_relays = 1;
  const double e1 = scheme.plan(cfg).e_su_tx;
  cfg.num_relays = 3;
  const double e3 = scheme.plan(cfg).e_su_tx;
  EXPECT_LT(e3, e1);
}

TEST(OverlayRelayScheme, ValidatesConfig) {
  const OverlayRelayScheme scheme;
  OverlayRelayConfig cfg;
  cfg.num_relays = 0;
  EXPECT_THROW((void)scheme.plan(cfg), InvalidArgument);
  cfg = OverlayRelayConfig{};
  cfg.pt_to_su_m = 0.0;
  EXPECT_THROW((void)scheme.plan(cfg), InvalidArgument);
}

TEST(OverlayDistancePlanner, FeasibleAtPaperOperatingPoint) {
  const OverlayDistancePlanner planner;
  OverlayDistanceQuery q;  // D1 = 250 m, m = 3, B = 40 kHz
  const OverlayDistanceResult r = planner.plan(q);
  ASSERT_TRUE(r.feasible());
  // The qualitative §6.1 claim: the SUs can assist from hundreds of
  // meters away while improving BER 10×.
  EXPECT_GT(r.d2_m, 100.0);
  EXPECT_GT(r.d3_m, 100.0);
  EXPECT_GE(r.b1, 1);
}

TEST(OverlayDistancePlanner, BudgetGrowsWithD1) {
  const OverlayDistancePlanner planner;
  OverlayDistanceQuery q;
  q.d1_m = 150.0;
  const double e_near = planner.plan(q).e1;
  q.d1_m = 350.0;
  const double e_far = planner.plan(q).e1;
  EXPECT_GT(e_far, e_near);
}

TEST(OverlayDistancePlanner, DistancesIncreaseWithD1) {
  const OverlayDistancePlanner planner;
  std::vector<double> d1{150.0, 250.0, 350.0};
  OverlayDistanceQuery base;
  const auto results = planner.sweep_d1(d1, base);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_LT(results[0].d2_m, results[2].d2_m);
  EXPECT_LT(results[0].d3_m, results[2].d3_m);
}

TEST(OverlayDistancePlanner, WiderBandwidthReachesFarther) {
  // §6.1: "the wider the bandwidth … longer transmission distance".
  const OverlayDistancePlanner planner;
  OverlayDistanceQuery q;
  q.bandwidth_hz = 20e3;
  const auto narrow = planner.plan(q);
  q.bandwidth_hz = 40e3;
  const auto wide = planner.plan(q);
  EXPECT_GE(wide.d3_m, narrow.d3_m);
}

TEST(OverlayDistancePlanner, PaperConventionOrdersD3AboveD2) {
  // Under the total-energy ē_b convention implied by the paper's own
  // Fig. 6 anchors, the SUs sit farther from Pr than from Pt and
  // D3/D2 ≈ √m (up to the small e^MIMOr subtraction).
  const OverlayDistancePlanner planner(SystemParams{},
                                       EbBarConvention::kTotalEnergy);
  OverlayDistanceQuery q;
  q.num_relays = 3;
  const OverlayDistanceResult r = planner.plan(q);
  ASSERT_TRUE(r.feasible());
  EXPECT_GT(r.d3_m, r.d2_m);
  EXPECT_NEAR(r.d3_m / r.d2_m, std::sqrt(3.0), 0.25);
}

TEST(OverlayDistancePlanner, MoreRelaysReachFartherFromPr) {
  // §6.1 Fig. 6(b): at B fixed and D1 > 170 m, three SUs out-reach two.
  const OverlayDistancePlanner planner(SystemParams{},
                                       EbBarConvention::kTotalEnergy);
  OverlayDistanceQuery q;
  q.d1_m = 250.0;
  q.num_relays = 2;
  const double d3_two = planner.plan(q).d3_m;
  q.num_relays = 3;
  const double d3_three = planner.plan(q).d3_m;
  EXPECT_GT(d3_three, d3_two);
}

TEST(OverlayDistancePlanner, ValidatesQuery) {
  const OverlayDistancePlanner planner;
  OverlayDistanceQuery q;
  q.d1_m = -1.0;
  EXPECT_THROW((void)planner.plan(q), InvalidArgument);
  q = OverlayDistanceQuery{};
  q.num_relays = 0;
  EXPECT_THROW((void)planner.plan(q), InvalidArgument);
}

}  // namespace
}  // namespace comimo
