// End-to-end tests of the simulated testbed experiments (§6.4).
// Thresholds are deliberately loose: they pin the *shape* of each paper
// result (who wins, by roughly what factor), not exact percentages.
#include "comimo/testbed/experiments.h"

#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/stats.h"

namespace comimo {
namespace {

OverlayBerConfig fast(OverlayBerConfig cfg) {
  cfg.total_bits = 30000;  // keep unit tests quick
  return cfg;
}

TEST(OverlayBerExperiment, Table2CooperationWins) {
  const OverlayBerResult r =
      run_overlay_ber(fast(table2_single_relay_config(1)));
  EXPECT_EQ(r.bits, 30000u);
  // Paper Table 2: ≈2.5% with vs ≈10.9% without — require a ≥3× gap
  // and sane absolute ranges.
  EXPECT_GT(r.ber_direct, 0.05);
  EXPECT_LT(r.ber_direct, 0.20);
  EXPECT_LT(r.ber_cooperative, 0.05);
  EXPECT_GT(r.ber_direct / std::max(r.ber_cooperative, 1e-6), 3.0);
}

TEST(OverlayBerExperiment, Table2VariesAcrossSeeds) {
  // The paper's three experiment rows differ; distinct seeds must too.
  const auto a = run_overlay_ber(fast(table2_single_relay_config(1)));
  const auto b = run_overlay_ber(fast(table2_single_relay_config(2)));
  EXPECT_NE(a.errors_cooperative, b.errors_cooperative);
}

TEST(OverlayBerExperiment, Table3MoreRelaysLowerBer) {
  // Paper Table 3: 2.93% (3 relays) < 10.57% (1) < 22.74% (none).
  const auto one = run_overlay_ber(fast(table3_multi_relay_config(1, 1)));
  const auto three = run_overlay_ber(fast(table3_multi_relay_config(3, 1)));
  EXPECT_GT(one.ber_direct, 0.15);  // the no-cooperation column
  EXPECT_LT(one.ber_cooperative, one.ber_direct);
  EXPECT_LT(three.ber_cooperative, one.ber_cooperative);
  EXPECT_GT(one.ber_direct / std::max(three.ber_cooperative, 1e-6), 5.0);
}

TEST(OverlayBerExperiment, RelayDiagnosticsPopulated) {
  const auto r = run_overlay_ber(fast(table3_multi_relay_config(3, 1)));
  ASSERT_EQ(r.relay_ber.size(), 3u);
  for (const double ber : r.relay_ber) {
    EXPECT_GE(ber, 0.0);
    EXPECT_LT(ber, 0.5);
  }
}

TEST(OverlayBerExperiment, MrcAtLeastAsGoodAsEgc) {
  OverlayBerConfig cfg = fast(table2_single_relay_config(3));
  cfg.combiner = CombinerKind::kEqualGain;
  const auto egc = run_overlay_ber(cfg);
  cfg.combiner = CombinerKind::kMaximalRatio;
  const auto mrc = run_overlay_ber(cfg);
  EXPECT_LE(mrc.errors_cooperative,
            egc.errors_cooperative + egc.errors_cooperative / 4 + 20);
}

TEST(OverlayBerExperiment, SelectionZeroMeansAllRelays) {
  OverlayBerConfig cfg = fast(table3_multi_relay_config(3, 5));
  cfg.max_active_relays = 0;
  const auto all = run_overlay_ber(cfg);
  EXPECT_EQ(all.relay_transmissions,
            3u * (cfg.total_bits / cfg.packet_bits));
  cfg.max_active_relays = 5;  // more than available: also all
  const auto capped = run_overlay_ber(cfg);
  EXPECT_EQ(capped.relay_transmissions, all.relay_transmissions);
  EXPECT_EQ(capped.errors_cooperative, all.errors_cooperative);
}

TEST(OverlayBerExperiment, BestTwoOfThreeNearlyMatchesAllAtThirdLessCost) {
  OverlayBerConfig cfg = fast(table3_multi_relay_config(3, 5));
  const auto all = run_overlay_ber(cfg);
  cfg.max_active_relays = 2;
  const auto best2 = run_overlay_ber(cfg);
  // One-third fewer phase-2 transmissions…
  EXPECT_EQ(best2.relay_transmissions * 3, all.relay_transmissions * 2);
  // …at only a modest BER penalty (selection keeps the good branches).
  EXPECT_LT(best2.ber_cooperative,
            std::max(2.5 * all.ber_cooperative, all.ber_direct * 0.5));
}

TEST(OverlayBerExperiment, SelectingOneBeatsRandomSingleRelay) {
  // Best-1-of-3 selection should outperform the fixed single relay of
  // Table 3 (whose legs are the corridor-middle quality).
  const auto fixed = run_overlay_ber(fast(table3_multi_relay_config(1, 5)));
  OverlayBerConfig cfg = fast(table3_multi_relay_config(3, 5));
  cfg.max_active_relays = 1;
  const auto best1 = run_overlay_ber(cfg);
  EXPECT_LT(best1.ber_cooperative, fixed.ber_cooperative);
}

TEST(OverlayBerExperiment, ValidatesConfig) {
  OverlayBerConfig cfg;
  cfg.total_bits = 0;
  EXPECT_THROW((void)run_overlay_ber(cfg), InvalidArgument);
  cfg = OverlayBerConfig{};
  cfg.relays.clear();
  EXPECT_THROW((void)run_overlay_ber(cfg), InvalidArgument);
}

// --- Table 4 -----------------------------------------------------------

UnderlayPerConfig per_cfg(double amplitude, bool coop,
                          std::size_t packets = 150) {
  UnderlayPerConfig cfg;
  cfg.amplitude = amplitude;
  cfg.cooperative = coop;
  cfg.num_packets = packets;  // paper uses 474; tests subsample
  cfg.seed = 1;
  return cfg;
}

TEST(UnderlayPerExperiment, CooperationSlashesPer) {
  // Paper Table 4 @ amplitude 600: 6.12% vs 70.28%.
  const auto coop = run_underlay_per(per_cfg(600.0, true));
  const auto solo = run_underlay_per(per_cfg(600.0, false));
  EXPECT_LT(coop.per, 0.2);
  EXPECT_GT(solo.per, 0.4);
}

TEST(UnderlayPerExperiment, FullAmplitudeCooperativeIsLossless) {
  // Paper: PER = 0 at amplitude 800 with cooperation.
  const auto r = run_underlay_per(per_cfg(800.0, true));
  EXPECT_LT(r.per, 0.02);
  EXPECT_TRUE(r.reassembly.recoverable());
  EXPECT_LT(r.reassembly.mean_abs_error, 2.0);
}

TEST(UnderlayPerExperiment, PerIncreasesAsAmplitudeDrops) {
  double prev = -1.0;
  for (const double amp : {800.0, 600.0, 400.0}) {
    const auto r = run_underlay_per(per_cfg(amp, false));
    EXPECT_GE(r.per, prev) << "amplitude " << amp;
    prev = r.per;
  }
}

TEST(UnderlayPerExperiment, LowAmplitudeSoloUnrecoverable) {
  // Paper: 97.1% PER at amplitude 400 without cooperation — "the
  // received image cannot be recovered".
  const auto r = run_underlay_per(per_cfg(400.0, false));
  EXPECT_GT(r.per, 0.8);
  EXPECT_FALSE(r.reassembly.recoverable());
}

TEST(UnderlayPerExperiment, ReassemblyBookkeepingConsistent) {
  const auto r = run_underlay_per(per_cfg(600.0, true));
  EXPECT_EQ(r.packets_sent, 150u);
  EXPECT_EQ(r.packets_lost + r.reassembly.packets_received, 150u);
  EXPECT_NEAR(r.per, r.reassembly.packet_error_rate, 1e-12);
}

TEST(UnderlayPerExperiment, DeterministicInSeed) {
  const auto a = run_underlay_per(per_cfg(600.0, true));
  const auto b = run_underlay_per(per_cfg(600.0, true));
  EXPECT_EQ(a.packets_lost, b.packets_lost);
}

// --- Fig. 8 ------------------------------------------------------------

TEST(BeamPatternExperiment, NullPointsWhereDesigned) {
  BeamPatternConfig cfg;
  cfg.bits_per_point = 500;
  const BeamPatternResult r = run_beam_pattern(cfg);
  ASSERT_EQ(r.angles_deg.size(), 10u);  // 0..180 in 20° steps
  // The ideal pattern is (near) zero at 120°.
  const std::size_t idx = 6;  // 120°
  EXPECT_NEAR(r.angles_deg[idx], 120.0, 1e-9);
  EXPECT_LT(r.ideal[idx], 0.05);
  // The measured null is smaller than every other measured point but
  // not zero (multipath), as in Fig. 8.
  EXPECT_GT(r.measured_coop[idx], 0.01);
  for (std::size_t i = 0; i < r.angles_deg.size(); ++i) {
    if (i == idx) continue;
    EXPECT_GT(r.measured_coop[i], r.measured_coop[idx])
        << "angle " << r.angles_deg[i];
  }
}

TEST(BeamPatternExperiment, BeamformerBeatsSisoAwayFromNull) {
  // Fig. 8: outside ±20° of the null the beamformer amplitude exceeds
  // the SISO reference.
  BeamPatternConfig cfg;
  cfg.bits_per_point = 500;
  const BeamPatternResult r = run_beam_pattern(cfg);
  for (std::size_t i = 0; i < r.angles_deg.size(); ++i) {
    if (std::abs(r.angles_deg[i] - cfg.null_angle_deg) <= 20.0) continue;
    EXPECT_GT(r.measured_coop[i], r.measured_siso[i] * 0.95)
        << "angle " << r.angles_deg[i];
  }
}

TEST(BeamPatternExperiment, SisoReferenceIsFlat) {
  BeamPatternConfig cfg;
  cfg.bits_per_point = 500;
  const BeamPatternResult r = run_beam_pattern(cfg);
  RunningStats s;
  for (const double v : r.measured_siso) s.add(v);
  EXPECT_NEAR(s.mean(), 1.0, 0.05);
  EXPECT_LT(s.stddev(), 0.25);
}

TEST(BeamPatternExperiment, NullResidualReported) {
  BeamPatternConfig cfg;
  cfg.bits_per_point = 300;
  const BeamPatternResult r = run_beam_pattern(cfg);
  EXPECT_GT(r.null_residual(), 0.0);
  EXPECT_LT(r.null_residual(), 0.5);
}

// --- Rician helper -----------------------------------------------------

TEST(RicianCoefficient, MeanPowerAndKFactor) {
  Rng rng(9);
  RunningStats power;
  RunningStats mag;
  const double k = 6.0;
  const double p = 2.0;
  for (int i = 0; i < 50000; ++i) {
    const cplx h = rician_coefficient(rng, k, p);
    power.add(std::norm(h));
    mag.add(std::abs(h));
  }
  EXPECT_NEAR(power.mean(), p, p * 0.05);
  // High K ⇒ envelope concentrates near √p.
  EXPECT_LT(mag.stddev() / mag.mean(), 0.35);
  EXPECT_THROW((void)rician_coefficient(rng, -1.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace comimo
