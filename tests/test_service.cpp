// The long-lived simulation service (service/): protocol, replay,
// admission control, and daemon-grade robustness.
//
// The headline contracts under test:
//   * session replay — the same session seed and request sequence
//     produce byte-identical kResult payloads on a 1-worker and a
//     4-worker daemon, and across a reconnect;
//   * deterministic backpressure — a full queue rejects with
//     retry_after_ms instead of blocking or dropping, and the
//     accounting identity submitted == accepted + rejected holds;
//   * robustness — the daemon survives a client that vanishes
//     mid-stream, a job whose fork worker is killed, bad requests, and
//     node-churn jobs, without aborting or wedging.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/service/client.h"
#include "comimo/service/daemon.h"
#include "comimo/service/job.h"
#include "comimo/service/wire.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace comimo::service {
namespace {

/// Short, unique AF_UNIX path (sun_path is ~104 bytes; build trees are
/// deep, so anchor in /tmp).
std::string test_socket_path(const char* tag) {
  return "/tmp/comimo_svc_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

/// A small ē_b grid so daemons in tests build their table in
/// milliseconds; jobs that never touch ebbar_min don't build it at all.
EbBarTable::Spec tiny_ebbar_spec() {
  EbBarTable::Spec spec;
  spec.ber_targets = {1e-2, 1e-3};
  spec.b_min = 1;
  spec.b_max = 4;
  spec.m_max = 2;
  return spec;
}

ServiceConfig test_config(const char* tag) {
  ServiceConfig cfg;
  cfg.socket_path = test_socket_path(tag);
  cfg.service_workers = 2;
  cfg.mc_threads = 2;
  cfg.queue_capacity = 16;
  cfg.ebbar_spec = tiny_ebbar_spec();
  return cfg;
}

std::vector<JobSpec> replay_sequence() {
  std::vector<JobSpec> jobs;
  JobSpec ping;
  ping.kind = "ping";
  jobs.push_back(ping);
  JobSpec wb;
  wb.kind = "waveform_ber";
  wb.params = {{"b", "2"},     {"mt", "2"},          {"mr", "2"},
               {"blocks", "600"}, {"gamma_b_db", "6"}, {"seed", "3"}};
  jobs.push_back(wb);
  JobSpec eb;
  eb.kind = "ebbar_min";
  eb.params = {{"p", "1e-3"}, {"mt", "2"}, {"mr", "2"}};
  jobs.push_back(eb);
  JobSpec churn;
  churn.kind = "net_churn";
  churn.params = {{"nodes", "200"},
                  {"rounds", "4"},
                  {"kill_per_round", "8"},
                  {"seed", "11"}};
  jobs.push_back(churn);
  return jobs;
}

std::vector<std::string> run_sequence(const std::string& socket_path,
                                      std::uint64_t session_seed) {
  ServiceClient client(socket_path, session_seed);
  std::vector<std::string> results;
  for (const JobSpec& spec : replay_sequence()) {
    const auto reply = client.call(spec);
    EXPECT_EQ(reply.type, FrameType::kResult) << reply.body;
    results.push_back(reply.body);
  }
  return results;
}

TEST(ServiceWire, FrameRoundTripAndKvParsing) {
  if (!sockets_available()) GTEST_SKIP() << "no AF_UNIX sockets";
  const auto kv = parse_kv_text("kind=ping\nid=7\n\nx=a=b");
  EXPECT_EQ(kv.at("kind"), "ping");
  EXPECT_EQ(kv.at("id"), "7");
  EXPECT_EQ(kv.at("x"), "a=b");  // only the first '=' splits
  EXPECT_THROW((void)parse_kv_text("noequals"), InvalidArgument);
  EXPECT_THROW((void)parse_kv_text("a=1\na=2"), InvalidArgument);
  EXPECT_THROW((void)JobSpec::parse("id=1"), InvalidArgument);

  // mix_seed: distinct pairs, stable values.
  EXPECT_EQ(mix_seed(1, 2), mix_seed(1, 2));
  EXPECT_NE(mix_seed(1, 2), mix_seed(2, 1));
  EXPECT_NE(mix_seed(1, 2), mix_seed(1, 3));
}

TEST(Service, HelloAckAndPing) {
  if (!sockets_available()) GTEST_SKIP() << "no AF_UNIX sockets";
  ServiceDaemon daemon(test_config("hello"));
  ServiceClient client(daemon.config().socket_path, 42);
  EXPECT_EQ(client.hello_ack().at("proto"), kProtocolName);
  EXPECT_EQ(client.hello_ack().at("mc_threads"), "2");
  const auto reply = client.call(JobSpec{"ping", {}});
  EXPECT_EQ(reply.type, FrameType::kResult);
  EXPECT_EQ(reply.id, 1u);
  EXPECT_NE(reply.body.find("\"schema\": \"comimo-bench-v1\""),
            std::string::npos);
  EXPECT_NE(reply.body.find("\"bench\": \"service\""), std::string::npos);
  // Replayable envelopes carry no clock fields.
  EXPECT_EQ(reply.body.find("timestamp_unix_s"), std::string::npos);
  EXPECT_EQ(reply.body.find("wall_s"), std::string::npos);
}

TEST(Service, ReplayIsByteIdenticalAcrossWorkerCountsAndReconnects) {
  if (!sockets_available()) GTEST_SKIP() << "no AF_UNIX sockets";
  std::vector<std::string> one_worker;
  {
    ServiceConfig cfg = test_config("replay1");
    cfg.service_workers = 1;
    cfg.mc_threads = 1;
    ServiceDaemon daemon(cfg);
    one_worker = run_sequence(cfg.socket_path, 1234);
  }
  std::vector<std::string> four_workers;
  std::vector<std::string> reconnected;
  {
    ServiceConfig cfg = test_config("replay4");
    cfg.service_workers = 4;
    cfg.mc_threads = 1;  // "threads" is part of the envelope bytes
    ServiceDaemon daemon(cfg);
    four_workers = run_sequence(cfg.socket_path, 1234);
    // Reconnect: a fresh session with the same seed on the same (now
    // warmed-up) daemon reads the same bytes.
    reconnected = run_sequence(cfg.socket_path, 1234);
    // A different seed must diverge on the randomized jobs.
    const auto other = run_sequence(cfg.socket_path, 999);
    EXPECT_NE(other[1], four_workers[1]);  // waveform_ber
  }
  ASSERT_EQ(one_worker.size(), four_workers.size());
  for (std::size_t i = 0; i < one_worker.size(); ++i) {
    EXPECT_EQ(one_worker[i], four_workers[i]) << "job " << i;
    EXPECT_EQ(one_worker[i], reconnected[i]) << "job " << i;
  }
}

TEST(Service, PipelinedRepliesArriveInSubmissionOrder) {
  if (!sockets_available()) GTEST_SKIP() << "no AF_UNIX sockets";
  ServiceDaemon daemon(test_config("pipeline"));
  ServiceClient client(daemon.config().socket_path, 7);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 10; ++i) {
    JobSpec spec;
    spec.kind = (i % 2 == 0) ? "ping" : "stall_ms";
    if (i % 2 != 0) spec.params["ms"] = "20";
    ids.push_back(client.submit(spec));
  }
  for (const std::uint64_t id : ids) {
    const auto reply = client.next_reply();
    EXPECT_EQ(reply.type, FrameType::kResult);
    EXPECT_EQ(reply.id, id);  // strict submission order, workers > 1
  }
}

TEST(Service, BackpressureRejectsDeterministically) {
  if (!sockets_available()) GTEST_SKIP() << "no AF_UNIX sockets";
  ServiceConfig cfg = test_config("backpressure");
  cfg.service_workers = 1;
  cfg.queue_capacity = 2;
  cfg.retry_after_ms = 25;
  ServiceDaemon daemon(cfg);
  ServiceClient client(cfg.socket_path, 1);

  // One long stall occupies the single worker; the queue holds 2 more;
  // everything past (1 busy + 2 queued) must bounce.  Submit the first
  // stall alone and give the worker time to claim it (so it occupies
  // the worker, not a queue slot), then burst the rest — the daemon
  // reads one socket in order, so the reject set is deterministic.
  JobSpec stall;
  stall.kind = "stall_ms";
  stall.params["ms"] = "600";
  const int total = 8;
  (void)client.submit(stall);
  const auto claimed = [&daemon] {
    const auto s = daemon.stats();
    return s.jobs_accepted >= 1 && s.queue_depth == 0;
  };
  for (int spin = 0; spin < 200 && !claimed(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(claimed());  // worker claimed job 1, queue empty again
  for (int i = 1; i < total; ++i) (void)client.submit(stall);

  int results = 0;
  int rejects = 0;
  for (int i = 0; i < total; ++i) {
    const auto reply = client.next_reply();
    if (reply.type == FrameType::kResult) {
      ++results;
    } else {
      ASSERT_EQ(reply.type, FrameType::kReject) << reply.body;
      const auto kv = parse_kv_text(reply.body);
      EXPECT_EQ(kv.at("retry_after_ms"), "25");
      ++rejects;
    }
  }
  EXPECT_EQ(results, 3);  // 1 running + 2 queued
  EXPECT_EQ(rejects, total - 3);

  const auto stats = daemon.stats();
  EXPECT_EQ(stats.jobs_submitted, stats.jobs_accepted + stats.jobs_rejected);
  EXPECT_EQ(stats.jobs_rejected, static_cast<std::uint64_t>(rejects));
}

TEST(Service, SurvivesClientVanishingMidStream) {
  if (!sockets_available()) GTEST_SKIP() << "no AF_UNIX sockets";
  ServiceDaemon daemon(test_config("vanish"));
  {
    ServiceClient client(daemon.config().socket_path, 5);
    JobSpec stall;
    stall.kind = "stall_ms";
    stall.params["ms"] = "100";
    for (int i = 0; i < 6; ++i) (void)client.submit(stall);
    // Drop the connection with results still in flight.
    client.abort_connection();
  }
  // The daemon must still serve new sessions and eventually drain the
  // orphaned jobs (their promises are consumed, not leaked).
  ServiceClient fresh(daemon.config().socket_path, 6);
  const auto reply = fresh.call(JobSpec{"ping", {}});
  EXPECT_EQ(reply.type, FrameType::kResult);
  for (int spin = 0; spin < 200 && daemon.stats().queue_depth > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(daemon.stats().queue_depth, 0u);
  const auto stats = daemon.stats();
  EXPECT_EQ(stats.jobs_submitted, stats.jobs_accepted + stats.jobs_rejected);
}

TEST(Service, BadRequestsGetErrorRepliesAndDaemonSurvives) {
  if (!sockets_available()) GTEST_SKIP() << "no AF_UNIX sockets";
  ServiceDaemon daemon(test_config("bad"));
  ServiceClient client(daemon.config().socket_path, 9);

  // Unknown kind: accepted, fails at execution, kError reply.
  const auto unknown = client.call(JobSpec{"no_such_kind", {}});
  EXPECT_EQ(unknown.type, FrameType::kError);
  EXPECT_NE(unknown.body.find("unknown job kind"), std::string::npos);

  // Bad params: ebbar_min without its required BER target.
  const auto missing = client.call(JobSpec{"ebbar_min", {{"mt", "2"}}});
  EXPECT_EQ(missing.type, FrameType::kError);

  // Still alive.
  EXPECT_EQ(client.call(JobSpec{"ping", {}}).type, FrameType::kResult);
  EXPECT_GE(daemon.stats().jobs_failed, 2u);
}

TEST(Service, ShardedJobWithForkRunsUnderTheDaemon) {
  if (!sockets_available()) GTEST_SKIP() << "no AF_UNIX sockets";
  // waveform_ber with shards=2 exercises fork() from a daemon worker
  // thread — the exact pool/obs-mutex scenario the quiesce fix covers —
  // and must produce the same bytes as the shards=1 run (the sharded
  // engine's bit-identity contract), minus the shards param itself.
  ServiceDaemon daemon(test_config("fork"));
  ServiceClient client(daemon.config().socket_path, 21);
  JobSpec one;
  one.kind = "waveform_ber";
  one.params = {{"b", "2"}, {"mt", "2"}, {"mr", "2"},
                {"blocks", "500"}, {"seed", "4"}, {"shards", "1"}};
  JobSpec two = one;
  two.params["shards"] = "2";
  const auto r1 = client.call(one);
  const auto r2 = client.call(two);
  ASSERT_EQ(r1.type, FrameType::kResult) << r1.body;
  ASSERT_EQ(r2.type, FrameType::kResult) << r2.body;
  // Compare the metrics blocks (params differ by the shards value).
  const auto metrics_of = [](const std::string& body) {
    const std::size_t at = body.find("\"metrics\"");
    return body.substr(at, body.find('}', at) - at);
  };
  EXPECT_EQ(metrics_of(r1.body), metrics_of(r2.body));
}

TEST(Service, MetricsDumpAndChurnRounds) {
  if (!sockets_available()) GTEST_SKIP() << "no AF_UNIX sockets";
  ServiceDaemon daemon(test_config("metrics"));
  ServiceClient client(daemon.config().socket_path, 2);
  // 10 rounds of node churn through the incremental re-clustering (and
  // the spatial grid's compaction path) under the daemon.
  JobSpec churn;
  churn.kind = "net_churn";
  churn.params = {{"nodes", "300"},
                  {"rounds", "10"},
                  {"kill_per_round", "12"},
                  {"seed", "8"}};
  const auto reply = client.call(churn);
  ASSERT_EQ(reply.type, FrameType::kResult) << reply.body;
  EXPECT_NE(reply.body.find("\"valid\": 1"), std::string::npos);

  const std::string dump = client.metrics_dump();
  EXPECT_NE(dump.find("\"metrics\""), std::string::npos);
  EXPECT_NE(dump.find("\"metrics_runtime\""), std::string::npos);

  const auto stats = daemon.stats();
  EXPECT_GE(stats.jobs_completed, 1u);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
}

TEST(Service, EbBarTableWarmStartsFromDiskCache) {
  const std::string dir = std::filesystem::temp_directory_path() /
                          ("comimo_tbl_cache_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const EbBarTable::Spec spec = tiny_ebbar_spec();

  // Cold start: builds and writes the cache file.
  JobRuntime cold(spec, dir);
  const std::string path = cold.table_cache_path();
  ASSERT_FALSE(path.empty());
  EXPECT_FALSE(std::filesystem::exists(path));
  const EbBarTable& built = cold.ebbar_table();
  ASSERT_TRUE(std::filesystem::exists(path));

  // Warm start: a fresh runtime with the same spec + dir loads the file
  // and serves identical entries.
  JobRuntime warm(spec, dir);
  const EbBarTable& loaded = warm.ebbar_table();
  ASSERT_EQ(loaded.entries().size(), built.entries().size());
  for (std::size_t i = 0; i < built.entries().size(); ++i) {
    EXPECT_EQ(loaded.entries()[i].ebar, built.entries()[i].ebar) << i;
  }

  // A different spec must key a different file — never a false hit.
  EbBarTable::Spec other = spec;
  other.b_max = 2;
  JobRuntime other_rt(other, dir);
  EXPECT_NE(other_rt.table_cache_path(), path);

  // A corrupt cache file degrades to a rebuild (and a rewrite), never
  // to an error or a wrong table.
  {
    std::ofstream os(path, std::ios::trunc);
    os << "garbage\n";
  }
  JobRuntime corrupt(spec, dir);
  const EbBarTable& rebuilt = corrupt.ebbar_table();
  EXPECT_EQ(rebuilt.entries().size(), built.entries().size());

  std::filesystem::remove_all(dir);
}

TEST(Service, WaveformBerJobHonorsTargetCi) {
  // Through run_job directly — no sockets needed.  target_ci turns
  // blocks into a budget; the reply must record the early stop.
  JobRuntime rt(tiny_ebbar_spec());
  ThreadPool pool(2);
  JobSpec spec;
  spec.kind = "waveform_ber";
  spec.params = {{"b", "2"},       {"mt", "2"},         {"mr", "2"},
                 {"blocks", "60000"}, {"gamma_b_db", "6"}, {"seed", "4"},
                 {"target_ci", "0.25"}};
  const Json reply = run_job(spec, /*session_seed=*/9, rt, pool);
  const std::string body = reply.dump_string();
  EXPECT_NE(body.find("\"target_met\": 1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"trials_executed\""), std::string::npos);
  // Replay contract: the adaptive stop is deterministic, so the whole
  // envelope replays byte-identically.
  const Json again = run_job(spec, /*session_seed=*/9, rt, pool);
  EXPECT_EQ(body, again.dump_string());
}

}  // namespace
}  // namespace comimo::service
