// Tests for the MAC simulator, routing, and hop scheduling.
#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/net/csma_ca.h"
#include "comimo/net/hop_scheduler.h"
#include "comimo/net/routing.h"

namespace comimo {
namespace {

// --- CSMA/CA -----------------------------------------------------------

CsmaCaConfig mac_cfg(std::uint64_t seed = 1) {
  CsmaCaConfig cfg;
  cfg.seed = seed;
  return cfg;
}

TEST(CsmaCa, SingleStationDeliversEverything) {
  // 5 frames/s × 48 ms airtime ≈ 24% load: light, uncontended.
  std::vector<CsmaStation> stations{{0, 5.0, 12000}};
  CsmaCaSimulator sim(mac_cfg(), stations);
  const CsmaCaStats stats = sim.run(20.0);
  EXPECT_GT(stats.offered_frames, 50u);
  // No contention: no collisions or drops; only the end-of-run backlog
  // can remain undelivered.
  EXPECT_EQ(stats.collisions, 0u);
  EXPECT_EQ(stats.dropped_frames, 0u);
  EXPECT_NEAR(stats.delivery_ratio(), 1.0, 0.05);
}

TEST(CsmaCa, ThroughputMatchesOfferedLoadWhenLight) {
  std::vector<CsmaStation> stations{{0, 10.0, 12000}, {1, 10.0, 12000}};
  CsmaCaSimulator sim(mac_cfg(2), stations);
  const CsmaCaStats stats = sim.run(20.0);
  const double offered_bps = 2 * 10.0 * 12000;
  EXPECT_NEAR(stats.throughput_bps, offered_bps, offered_bps * 0.1);
}

TEST(CsmaCa, ContentionCausesCollisionsUnderHeavyLoad) {
  std::vector<CsmaStation> stations;
  for (NodeId i = 0; i < 8; ++i) {
    stations.push_back({i, 50.0, 12000});
  }
  CsmaCaSimulator sim(mac_cfg(3), stations);
  const CsmaCaStats stats = sim.run(10.0);
  EXPECT_GT(stats.collisions, 0u);
  EXPECT_GT(stats.channel_busy_fraction, 0.5);
  // Saturated: throughput can't exceed the bit rate.
  EXPECT_LE(stats.throughput_bps, 250e3 * 1.01);
}

TEST(CsmaCa, DelayGrowsWithLoad) {
  std::vector<CsmaStation> light{{0, 2.0, 12000}, {1, 2.0, 12000}};
  std::vector<CsmaStation> heavy{{0, 10.0, 12000}, {1, 10.0, 12000},
                                 {2, 10.0, 12000}, {3, 10.0, 12000}};
  const CsmaCaStats s_light = CsmaCaSimulator(mac_cfg(4), light).run(20.0);
  const CsmaCaStats s_heavy = CsmaCaSimulator(mac_cfg(4), heavy).run(20.0);
  EXPECT_GT(s_heavy.mean_access_delay_s, s_light.mean_access_delay_s);
}

TEST(CsmaCa, DeterministicInSeed) {
  std::vector<CsmaStation> stations{{0, 30.0, 8000}, {1, 30.0, 8000}};
  const CsmaCaStats a = CsmaCaSimulator(mac_cfg(5), stations).run(5.0);
  const CsmaCaStats b = CsmaCaSimulator(mac_cfg(5), stations).run(5.0);
  EXPECT_EQ(a.delivered_frames, b.delivered_frames);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_DOUBLE_EQ(a.throughput_bps, b.throughput_bps);
}

TEST(CsmaCa, ConfigValidation) {
  std::vector<CsmaStation> stations{{0, 1.0, 100}};
  EXPECT_THROW(CsmaCaSimulator(mac_cfg(), {}), InvalidArgument);
  CsmaCaConfig bad = mac_cfg();
  bad.slot_time_s = 0.0;
  EXPECT_THROW(CsmaCaSimulator(bad, stations), InvalidArgument);
  CsmaCaSimulator ok(mac_cfg(), stations);
  EXPECT_THROW((void)ok.run(0.0), InvalidArgument);
}

// --- routing -----------------------------------------------------------

CoMimoNet grid_network() {
  // Three clusters in a row, 120 m apart, sizes 2/3/1.
  std::vector<SuNode> nodes;
  const std::vector<Vec2> pos{{0.0, 0.0},   {2.0, 0.0},  {120.0, 0.0},
                              {122.0, 0.0}, {121.0, 2.0}, {240.0, 0.0}};
  for (std::size_t i = 0; i < pos.size(); ++i) {
    nodes.push_back({static_cast<NodeId>(i), pos[i], 1.0});
  }
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 30.0;
  cfg.cluster_diameter_m = 10.0;
  cfg.link_range_m = 130.0;
  return CoMimoNet(std::move(nodes), cfg);
}

TEST(Routing, MultiHopRouteFollowsBackbone) {
  const CoMimoNet net = grid_network();
  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3);
  const RouteReport report = router.route(0, 5);
  EXPECT_EQ(report.num_hops(), 2u);
  EXPECT_GT(report.total_energy_per_bit, 0.0);
  EXPECT_GT(report.peak_pa_per_bit, 0.0);
  // Hop kinds match the cluster sizes 2 → 3 → 1.
  EXPECT_EQ(report.hops[0].kind, CoopLink::Kind::kMimo);
  EXPECT_EQ(report.hops[1].kind, CoopLink::Kind::kMiso);
}

TEST(Routing, IntraClusterRouteHasNoHops) {
  const CoMimoNet net = grid_network();
  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3);
  const RouteReport report = router.route(0, 1);
  EXPECT_EQ(report.num_hops(), 0u);
  EXPECT_DOUBLE_EQ(report.total_energy_per_bit, 0.0);
}

TEST(Routing, DisconnectedThrows) {
  std::vector<SuNode> nodes{{0, {0.0, 0.0}, 1.0}, {1, {5000.0, 0.0}, 1.0}};
  CoMimoNetConfig cfg;
  cfg.link_range_m = 100.0;
  const CoMimoNet net(std::move(nodes), cfg);
  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3);
  EXPECT_THROW((void)router.route(0, 1), InfeasibleError);
}

TEST(Routing, SisoHeadsOnlyModePlansUnitClusters) {
  const CoMimoNet net = grid_network();
  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3,
                                 RoutingMode::kSisoHeadsOnly);
  const RouteReport report = router.route(0, 5);
  for (const auto& hop : report.hops) {
    EXPECT_EQ(hop.plan.config.mt, 1u);
    EXPECT_EQ(hop.plan.config.mr, 1u);
  }
}

TEST(Routing, SisoModeDrainsOnlyHeads) {
  CoMimoNet net = grid_network();
  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3,
                                 RoutingMode::kSisoHeadsOnly);
  const RouteReport report = router.route(0, 5);
  router.apply_battery_drain(net, report, 1e5);
  for (const auto& c : net.clusters()) {
    for (const NodeId m : c.members) {
      if (m == c.head) continue;
      EXPECT_DOUBLE_EQ(net.node(m).battery_j, 1.0)
          << "non-head " << m << " must be untouched in SISO mode";
    }
  }
}

TEST(Routing, SisoModeCostsMoreEnergyThanCooperative) {
  // Fig. 7 at route scale: the SISO hops' PA dwarfs the cooperative
  // ones at equal BER.
  const CoMimoNet net = grid_network();
  const CooperativeRouter coop(net, SystemParams{}, 1e-3, 40e3);
  const CooperativeRouter siso(net, SystemParams{}, 1e-3, 40e3,
                               RoutingMode::kSisoHeadsOnly);
  EXPECT_GT(siso.route(0, 5).total_energy_per_bit,
            coop.route(0, 5).total_energy_per_bit);
}

TEST(Routing, BatteryDrainReducesEnergy) {
  CoMimoNet net = grid_network();
  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3);
  const RouteReport report = router.route(0, 5);
  const double before = net.node(0).battery_j;
  router.apply_battery_drain(net, report, 1e6);
  EXPECT_LT(net.node(0).battery_j, before);
  // Every participant on the route lost something.
  for (const auto& hop : report.hops) {
    for (const NodeId m : net.clusters()[hop.from].members) {
      EXPECT_LT(net.node(m).battery_j, 1.0) << "node " << m;
    }
  }
}

// --- hop scheduler ---------------------------------------------------------

TEST(HopScheduler, MimoHopHasAllThreeSteps) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg;
  cfg.mt = 2;
  cfg.mr = 3;
  const UnderlayHopPlan plan = planner.plan(cfg);
  const HopScheduler scheduler;
  const HopSchedule sched =
      scheduler.schedule(plan, {0, 1}, {2, 3, 4}, 1e4);
  // 1 broadcast + 1 long-haul + 2 forwards.
  EXPECT_EQ(sched.slots.size(), 4u);
  EXPECT_TRUE(sched.is_sequential());
  EXPECT_GT(sched.makespan_s, 0.0);
  EXPECT_EQ(sched.slots[0].step,
            ScheduledTransmission::Step::kIntraSource);
  EXPECT_EQ(sched.slots[1].step, ScheduledTransmission::Step::kLongHaul);
  EXPECT_EQ(sched.slots[1].transmitters.size(), 2u);
}

TEST(HopScheduler, SisoHopIsSingleSlot) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg;
  cfg.mt = 1;
  cfg.mr = 1;
  const UnderlayHopPlan plan = planner.plan(cfg);
  const HopSchedule sched = HopScheduler{}.schedule(plan, {0}, {1}, 1e4);
  EXPECT_EQ(sched.slots.size(), 1u);
  EXPECT_EQ(sched.slots[0].step, ScheduledTransmission::Step::kLongHaul);
}

TEST(HopScheduler, StbcRateStretchesLongHaulSlot) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg2;
  cfg2.mt = 2;
  cfg2.mr = 1;
  UnderlayHopConfig cfg3 = cfg2;
  cfg3.mt = 3;
  const UnderlayHopPlan plan2 = planner.plan(cfg2);
  const UnderlayHopPlan plan3 = planner.plan(cfg3);
  const HopScheduler s;
  const auto sched2 = s.schedule(plan2, {0, 1}, {2}, 1e4);
  const auto sched3 = s.schedule(plan3, {0, 1, 2}, {3}, 1e4);
  // Find the long-haul slots; G3 is rate 1/2 vs Alamouti rate 1, though
  // the optimal b may differ — compare against each plan's own base.
  const auto long_haul = [](const HopSchedule& sc) {
    for (const auto& slot : sc.slots) {
      if (slot.step == ScheduledTransmission::Step::kLongHaul) {
        return slot.duration_s;
      }
    }
    return 0.0;
  };
  const double base2 = 1e4 / (plan2.b * cfg2.bandwidth_hz);
  const double base3 = 1e4 / (plan3.b * cfg3.bandwidth_hz);
  EXPECT_NEAR(long_haul(sched2), base2, base2 * 1e-9);
  EXPECT_NEAR(long_haul(sched3), 2.0 * base3, base3 * 1e-9);
}

TEST(HopScheduler, MemberCountMismatchThrows) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg;
  cfg.mt = 2;
  cfg.mr = 2;
  const UnderlayHopPlan plan = planner.plan(cfg);
  EXPECT_THROW((void)HopScheduler{}.schedule(plan, {0}, {2, 3}, 1e4),
               InvalidArgument);
}

}  // namespace
}  // namespace comimo
