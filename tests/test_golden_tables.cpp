// Golden-value regression net over the paper-table reproductions.
//
// Two layers of pinning for every anchor:
//   1. *paper consistency* — the reproduced number sits in the range the
//      paper reports (loose, survives re-tuning);
//   2. *golden regression* — the exact value this revision computes,
//      pinned tightly so any accidental change to the RNG streams,
//      channel models or estimators shows up as a test failure, not as
//      a silently drifted table.
// The golden constants were harvested from the bench binaries' --json
// output; re-harvest them deliberately when a model change is intended
// (run the bench, copy the new value, say so in the commit message).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comimo/common/units.h"
#include "comimo/energy/ebbar.h"
#include "comimo/interweave/pair_beamformer.h"
#include "comimo/interweave/pu_selection.h"
#include "comimo/mc/engine.h"
#include "comimo/numeric/rng.h"
#include "comimo/overlay/distance_planner.h"
#include "comimo/testbed/experiments.h"

namespace comimo {
namespace {

constexpr double kTightRel = 1e-9;  // regression tolerance (relative)

void expect_rel(double value, double golden, const char* what) {
  EXPECT_NEAR(value, golden, std::abs(golden) * kTightRel) << what;
}

// --- Table 1: interweave pair amplitude ------------------------------

// The bench's trial body (bench/table1_interweave_amplitude.cpp), which
// is itself the paper's §6.3 setup: St1/St2 15 m apart, 20 candidate
// PUs in a 300 m circle, Algorithm-3 pick, amplitude at Sr.
double table1_trial_amplitude(std::size_t t) {
  const PairGeometry geom{Vec2{0.0, 7.5}, Vec2{0.0, -7.5}};
  const double sr_angle = deg_to_rad(76.6);
  const Vec2 axis = (geom.st2 - geom.st1).normalized();
  const Vec2 perp{-axis.y, axis.x};
  const Vec2 sr = geom.center() +
                  (axis * std::cos(sr_angle) + perp * std::sin(sr_angle)) *
                      150.0;
  Rng rng(2013, t + 1);
  std::vector<Vec2> candidates;
  for (int i = 0; i < 20; ++i) {
    candidates.push_back(rng.point_in_disk(geom.st1, 150.0));
  }
  const PuSelectionWeights weights{0.25, 2.0};
  const std::size_t pick = select_pu(geom.center(), sr, candidates, weights);
  const NullSteeringPair pair(geom, 30.0, candidates[pick]);
  return pair.amplitude_at(sr);
}

TEST(GoldenTables, Table1InterweaveAmplitude) {
  McConfig mc;
  mc.seed = 2013;
  const McResult run = run_trials(
      10, mc, [](std::size_t t, Rng&, McAccumulator& acc) {
        acc.observe("amplitude", table1_trial_amplitude(t));
      });
  const RunningStats& amp = run.acc.stat("amplitude");
  // Paper: mean 1.87, reported trial range 1.87–1.89 (vs SISO 1.0).
  EXPECT_GE(amp.mean(), 1.87);
  EXPECT_LE(amp.mean(), 1.89);
  EXPECT_GT(amp.min(), 1.5) << "a trial collapsed toward the SISO level";
  // Golden regression (harvested from table1_interweave_amplitude --json).
  expect_rel(amp.mean(), 1.8760951342243513, "mean amplitude");
  expect_rel(amp.min(), 1.7885141957097594, "min amplitude");
  expect_rel(amp.max(), 1.9444628343652204, "max amplitude");
}

// --- Table 2: single-relay overlay BER -------------------------------

TEST(GoldenTables, Table2SingleRelayOverlay) {
  // Paper averages over 3 experiments: 2.46% coop / 10.87% direct.
  const double golden_coop[] = {0.01662, 0.01878, 0.02093};
  const double golden_direct[] = {0.0923, 0.09887, 0.10989};
  double coop_sum = 0.0;
  double direct_sum = 0.0;
  for (std::uint64_t k = 1; k <= 3; ++k) {
    const OverlayBerResult r =
        run_overlay_ber(table2_single_relay_config(k));
    expect_rel(r.ber_cooperative, golden_coop[k - 1], "coop BER");
    expect_rel(r.ber_direct, golden_direct[k - 1], "direct BER");
    EXPECT_LT(r.ber_cooperative, r.ber_direct)
        << "cooperation must beat the obstructed direct path";
    coop_sum += r.ber_cooperative;
    direct_sum += r.ber_direct;
  }
  const double coop_avg = coop_sum / 3.0;
  const double direct_avg = direct_sum / 3.0;
  // Paper consistency: single-digit coop %, ~10% direct, gap ≥ 3×.
  EXPECT_LT(coop_avg, 0.05);
  EXPECT_NEAR(direct_avg, 0.1087, 0.03);
  EXPECT_GT(direct_avg / coop_avg, 3.0);
}

// --- Table 3: multi-relay overlay BER --------------------------------

TEST(GoldenTables, Table3MultiRelayOverlay) {
  // Paper: 2.93% (multi) / 10.57% (single) / 22.74% (none); the load-
  // bearing claim is the strict ordering multi < single < none.
  double multi_sum = 0.0;
  double single_sum = 0.0;
  double none_sum = 0.0;
  for (std::uint64_t k = 1; k <= 3; ++k) {
    const OverlayBerResult multi =
        run_overlay_ber(table3_multi_relay_config(3, k));
    const OverlayBerResult single =
        run_overlay_ber(table3_multi_relay_config(1, k));
    multi_sum += multi.ber_cooperative;
    single_sum += single.ber_cooperative;
    none_sum += single.ber_direct;  // shared no-cooperation baseline
  }
  const double multi_avg = multi_sum / 3.0;
  const double single_avg = single_sum / 3.0;
  const double none_avg = none_sum / 3.0;
  EXPECT_LT(multi_avg, single_avg);
  EXPECT_LT(single_avg, none_avg);
  EXPECT_NEAR(none_avg, 0.2274, 0.05);
  // Golden regression (harvested from table3_overlay_multi_relay --json).
  expect_rel(multi_avg, 0.013916666666666666, "multi-relay avg BER");
  expect_rel(single_avg, 0.09198, "single-relay avg BER");
  expect_rel(none_avg, 0.22857, "no-cooperation avg BER");
}

// --- Table 4: underlay image-transfer PER ----------------------------

TEST(GoldenTables, Table4UnderlayPerAtFullAmplitude) {
  // Paper @ amplitude 800: coop PER 0%, solo 24.85%.  (The full three-
  // amplitude sweep lives in bench/table4_underlay_per; one amplitude
  // keeps the test suite fast while still pinning the waveform chain.)
  UnderlayPerConfig cfg;
  cfg.amplitude = 800.0;
  cfg.seed = 7;
  cfg.cooperative = true;
  const UnderlayPerResult coop = run_underlay_per(cfg);
  cfg.cooperative = false;
  const UnderlayPerResult solo = run_underlay_per(cfg);
  EXPECT_DOUBLE_EQ(coop.per, 0.0) << "paper: error-free at amplitude 800";
  EXPECT_NEAR(solo.per, 0.2485, 0.05);
  EXPECT_TRUE(coop.reassembly.recoverable());
  // Golden regression (harvested from table4_underlay_per --json).
  expect_rel(solo.per, 0.2489451476793249, "solo PER @ 800");
}

// --- ē_b anchors (§6.2) ----------------------------------------------

TEST(GoldenTables, EbBarPaperAnchors) {
  const EbBarSolver solver;
  const double siso = solver.solve(1e-3, 2, 1, 1);
  const double mimo = solver.solve(1e-3, 2, 2, 3);
  // Paper: ē_b = 1.90e−18 for (1,1), ≈ 3.20e−20 for (2,3) at p = 1e−3,
  // b = 2.  Our quadrature lands within ~5% of the SISO anchor and the
  // same order of magnitude for the MIMO one (see tests/test_ebbar.cpp).
  EXPECT_NEAR(siso, 1.90e-18, 0.10e-18);
  EXPECT_GT(mimo, 1.0e-20);
  EXPECT_LT(mimo, 1.0e-19);
  EXPECT_GT(siso / mimo, 50.0) << "the 3-orders-of-magnitude headline";
  // Golden regression.
  expect_rel(siso, 1.9798651128586195e-18, "ebar(1e-3, 2, 1, 1)");
  expect_rel(mimo, 2.0443384293985833e-20, "ebar(1e-3, 2, 2, 3)");
}

// --- Fig. 6 anchor: overlay relay distances --------------------------

TEST(GoldenTables, Fig6OverlayDistanceAnchor) {
  // Paper anchor at D1 = 250 m, m = 3, B = 40 kHz, with D3 = √m·D2.
  const OverlayDistancePlanner planner(SystemParams{},
                                       EbBarConvention::kTotalEnergy);
  OverlayDistanceQuery q;
  q.d1_m = 250.0;
  q.num_relays = 3;
  q.bandwidth_hz = 40e3;
  const auto r = planner.plan(q);
  EXPECT_GT(r.d2_m, q.d1_m) << "relays must out-reach the direct link";
  EXPECT_GT(r.d3_m, r.d2_m) << "paper: D3 > D2";
  // D3/D2 tracks √m = √3 ≈ 1.73 (the bandwidth term erodes it a bit).
  EXPECT_GT(r.d3_m / r.d2_m, 1.4);
  EXPECT_LT(r.d3_m / r.d2_m, std::sqrt(3.0) + 0.01);
  // Golden regression (harvested from fig6_overlay_distance --json).
  expect_rel(r.d2_m, 721.2142548653477, "D2 @ anchor");
  expect_rel(r.d3_m, 1162.4544967926063, "D3 @ anchor");
  // D2 is bandwidth-independent under the total-energy convention;
  // D3 grows with B (the paper's §6 sweep from 10k to 100k).
  q.bandwidth_hz = 10e3;
  const auto r_lo = planner.plan(q);
  expect_rel(r_lo.d2_m, 721.2142548653477, "D2 @ 10 kHz");
  expect_rel(r_lo.d3_m, 983.1119848200003, "D3 @ 10 kHz");
  EXPECT_LT(r_lo.d3_m, r.d3_m);
}

}  // namespace
}  // namespace comimo
