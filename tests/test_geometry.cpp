#include "comimo/common/geometry.h"

#include <gtest/gtest.h>

#include "comimo/common/units.h"

namespace comimo {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, (Vec2{4.0, 1.0}));
  EXPECT_EQ(a - b, (Vec2{-2.0, 3.0}));
  EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
  EXPECT_EQ(b / 2.0, (Vec2{1.5, -0.5}));
}

TEST(Vec2, DotCrossNorm) {
  const Vec2 a{3.0, 4.0};
  const Vec2 b{-4.0, 3.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
}

TEST(Vec2, Normalized) {
  const Vec2 a{3.0, 4.0};
  const Vec2 u = a.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-15);
  EXPECT_NEAR(u.x, 0.6, 1e-15);
  EXPECT_NEAR(u.y, 0.8, 1e-15);
  // Zero vector maps to itself instead of NaN.
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2, Angle) {
  EXPECT_NEAR((Vec2{1.0, 0.0}).angle(), 0.0, 1e-15);
  EXPECT_NEAR((Vec2{0.0, 1.0}).angle(), kPi / 2.0, 1e-15);
  EXPECT_NEAR((Vec2{-1.0, 0.0}).angle(), kPi, 1e-15);
}

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(Geometry, AngleAtRightAngle) {
  // Rays from origin to (1,0) and (0,1) are perpendicular.
  EXPECT_NEAR(angle_at({0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}), kPi / 2.0,
              1e-12);
}

TEST(Geometry, AngleAtCollinear) {
  EXPECT_NEAR(angle_at({0.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}), 0.0, 1e-7);
  EXPECT_NEAR(angle_at({0.0, 0.0}, {1.0, 0.0}, {-2.0, 0.0}), kPi, 1e-7);
}

TEST(Geometry, AngleAtIsSymmetric) {
  const Vec2 at{1.0, 2.0};
  const Vec2 p{4.0, 6.0};
  const Vec2 q{-3.0, 0.5};
  EXPECT_DOUBLE_EQ(angle_at(at, p, q), angle_at(at, q, p));
}

TEST(Geometry, UnitVec) {
  for (double t = 0.0; t < 2.0 * kPi; t += 0.1) {
    const Vec2 u = unit_vec(t);
    EXPECT_NEAR(u.norm(), 1.0, 1e-15);
    EXPECT_NEAR(u.angle(), wrap_angle(t), 1e-12);
  }
}

}  // namespace
}  // namespace comimo
