// End-to-end digital-radio loopback: framing → BPSK → flowgraph channel
// (gain + fading + noise) → preamble-based channel estimation →
// equalization → demod → CRC, i.e. the receive chain a real testbed
// node runs, with no genie information anywhere.
#include <gtest/gtest.h>

#include <memory>

#include "comimo/channel/indoor.h"
#include "comimo/numeric/rng.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/modulation.h"
#include "comimo/testbed/blocks.h"
#include "comimo/testbed/channel_estimator.h"
#include "comimo/testbed/flowgraph.h"
#include "comimo/testbed/framing.h"

namespace comimo {
namespace {

struct LoopbackResult {
  std::size_t sent = 0;
  std::size_t recovered = 0;
};

LoopbackResult run_loopback(double gain_db, double noise_var,
                            std::uint64_t seed, std::size_t packets) {
  const Framer framer;
  const BpskModulator modem;
  const std::size_t preamble_bits = framer.config().preamble_bytes * 8;

  LoopbackResult result;
  for (std::size_t p = 0; p < packets; ++p) {
    Packet pkt;
    pkt.sequence = static_cast<std::uint16_t>(p);
    pkt.payload.assign(200, static_cast<std::uint8_t>(p * 31 + 7));
    const BitVec tx_bits = framer.frame(pkt);
    const std::vector<cplx> tx_syms = modem.modulate(tx_bits);

    // Per-packet channel: flat Rician fading + mean gain + AWGN, all
    // via flowgraph blocks.
    IndoorLinkConfig link_cfg;
    link_cfg.gain_db = gain_db;
    link_cfg.multipath.k_factor = 5.0;
    Flowgraph fg;
    fg.add(std::make_unique<ChannelBlock>(link_cfg, Rng(seed, p)))
        .add(std::make_unique<NoiseBlock>(noise_var, Rng(seed, 0xF0 + p)));
    const std::vector<cplx> rx = fg.run(tx_syms);

    // The receiver knows only the preamble pattern: estimate the
    // complex gain from those positions, equalize everything.
    const std::span<const cplx> pilots(tx_syms.data(), preamble_bits);
    const std::span<const cplx> pilot_rx(rx.data(), preamble_bits);
    const PilotEstimate est = estimate_gain_and_noise(pilots, pilot_rx);
    std::vector<cplx> equalized(rx.size());
    const double mag2 = std::norm(est.gain);
    if (mag2 == 0.0) continue;
    const cplx inv = std::conj(est.gain) / mag2;
    for (std::size_t i = 0; i < rx.size(); ++i) {
      equalized[i] = rx[i] * inv;
    }
    const BitVec rx_bits = modem.demodulate(equalized);
    if (const auto parsed = framer.parse(rx_bits)) {
      if (parsed->sequence == pkt.sequence &&
          parsed->payload == pkt.payload) {
        ++result.recovered;
      }
    }
    ++result.sent;
  }
  return result;
}

TEST(RadioLoopback, CleanChannelRecoversEverything) {
  const LoopbackResult r = run_loopback(0.0, 1e-6, 1, 30);
  EXPECT_EQ(r.recovered, r.sent);
}

TEST(RadioLoopback, ModerateSnrRecoversMost) {
  // ~13 dB symbol SNR through Rician fading: the occasional deep fade
  // may cost a packet, but most must survive — with zero corrupted
  // packets accepted (CRC).
  const LoopbackResult r = run_loopback(0.0, 0.05, 2, 60);
  EXPECT_GT(r.recovered * 10, r.sent * 7);
}

TEST(RadioLoopback, DeepAttenuationLosesPackets) {
  // 0 dB SNR: the frame CRC must reject essentially everything rather
  // than deliver garbage.
  const LoopbackResult r = run_loopback(-15.0, 0.03, 3, 40);
  EXPECT_LT(r.recovered, r.sent / 4);
}

TEST(RadioLoopback, EstimatorPhaseCorrectionMatters) {
  // With a π/2 bulk phase rotation and no estimator, coherent BPSK
  // would fail completely; the pilot estimate absorbs it.
  const Framer framer;
  const BpskModulator modem;
  Packet pkt;
  pkt.payload.assign(100, 0xC3);
  const BitVec tx_bits = framer.frame(pkt);
  auto syms = modem.modulate(tx_bits);
  const cplx rot{0.0, 1.0};
  for (auto& s : syms) s *= rot;
  const std::size_t preamble_bits = framer.config().preamble_bytes * 8;
  const auto ref = modem.modulate(tx_bits);
  const cplx est = estimate_gain(
      std::span<const cplx>(ref.data(), preamble_bits),
      std::span<const cplx>(syms.data(), preamble_bits));
  EXPECT_NEAR(std::abs(est - rot), 0.0, 1e-12);
  const cplx inv = std::conj(est);
  for (auto& s : syms) s *= inv;
  EXPECT_TRUE(framer.parse(modem.demodulate(syms)).has_value());
}

}  // namespace
}  // namespace comimo
