#include "comimo/energy/ebbar_table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "comimo/common/error.h"

namespace comimo {
namespace {

EbBarTable::Spec small_spec() {
  EbBarTable::Spec spec;
  spec.ber_targets = {1e-2, 1e-3};
  spec.b_min = 1;
  spec.b_max = 4;
  spec.m_max = 2;
  return spec;
}

TEST(EbBarTable, BuildCoversFullGrid) {
  const EbBarSolver solver;
  const EbBarTable table = EbBarTable::build(solver, small_spec());
  EXPECT_EQ(table.entries().size(), 2u * 4u * 2u * 2u);
  for (const auto& e : table.entries()) {
    EXPECT_GT(e.ebar, 0.0);
    EXPECT_GE(e.b, 1);
    EXPECT_LE(e.b, 4);
  }
}

TEST(EbBarTable, LookupMatchesSolver) {
  const EbBarSolver solver;
  const EbBarTable table = EbBarTable::build(solver, small_spec());
  const auto v = table.lookup(1e-3, 2, 2, 1);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(*v, solver.solve(1e-3, 2, 2, 1), *v * 1e-9);
}

TEST(EbBarTable, LookupMissReturnsNullopt) {
  const EbBarSolver solver;
  const EbBarTable table = EbBarTable::build(solver, small_spec());
  EXPECT_FALSE(table.lookup(5e-3, 2, 2, 1).has_value());  // p off-grid
  EXPECT_FALSE(table.lookup(1e-3, 5, 2, 1).has_value());  // b off-grid
  EXPECT_FALSE(table.lookup(1e-3, 2, 3, 1).has_value());  // mt off-grid
}

TEST(EbBarTable, NearestQuantizesInLogBer) {
  const EbBarSolver solver;
  const EbBarTable table = EbBarTable::build(solver, small_spec());
  // 2e-3 is closer to 1e-3 than to 1e-2 in log space.
  EXPECT_DOUBLE_EQ(table.lookup_nearest(2e-3, 2, 1, 1),
                   *table.lookup(1e-3, 2, 1, 1));
  EXPECT_DOUBLE_EQ(table.lookup_nearest(5e-2, 2, 1, 1),
                   *table.lookup(1e-2, 2, 1, 1));
}

TEST(EbBarTable, MinEbarConstellationIsArgmin) {
  const EbBarSolver solver;
  const EbBarTable table = EbBarTable::build(solver, small_spec());
  const EbBarEntry best = table.min_ebar_constellation(1e-3, 2, 2);
  for (int b = 1; b <= 4; ++b) {
    EXPECT_LE(best.ebar, *table.lookup(1e-3, b, 2, 2) + 1e-30);
  }
}

TEST(EbBarTable, SaveLoadRoundTrip) {
  const EbBarSolver solver;
  const EbBarTable table = EbBarTable::build(solver, small_spec());
  std::stringstream ss;
  table.save(ss);
  const EbBarTable loaded = EbBarTable::load(ss);
  ASSERT_EQ(loaded.entries().size(), table.entries().size());
  for (std::size_t i = 0; i < table.entries().size(); ++i) {
    EXPECT_EQ(loaded.entries()[i].b, table.entries()[i].b);
    EXPECT_EQ(loaded.entries()[i].mt, table.entries()[i].mt);
    EXPECT_EQ(loaded.entries()[i].mr, table.entries()[i].mr);
    EXPECT_DOUBLE_EQ(loaded.entries()[i].ebar, table.entries()[i].ebar);
  }
}

TEST(EbBarTable, LoadRejectsGarbage) {
  std::stringstream ss("not a table\n1 2 3");
  EXPECT_THROW((void)EbBarTable::load(ss), InvalidArgument);
}

TEST(EbBarTable, LoadRejectsTruncatedBody) {
  const EbBarSolver solver;
  const EbBarTable table = EbBarTable::build(solver, small_spec());
  std::stringstream ss;
  table.save(ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW((void)EbBarTable::load(truncated), InvalidArgument);
}

TEST(EbBarTable, BuildValidatesSpec) {
  const EbBarSolver solver;
  EbBarTable::Spec bad = small_spec();
  bad.ber_targets.clear();
  EXPECT_THROW((void)EbBarTable::build(solver, bad), InvalidArgument);
  bad = small_spec();
  bad.b_min = 0;
  EXPECT_THROW((void)EbBarTable::build(solver, bad), InvalidArgument);
}

}  // namespace
}  // namespace comimo
