#include "comimo/sensing/pu_activity.h"

#include <gtest/gtest.h>

#include <limits>

#include "comimo/common/error.h"

namespace comimo {
namespace {

TEST(PuTrace, CoversDurationWithAlternatingStates) {
  const PuActivityModel model;
  const auto trace = generate_pu_trace(model, 100.0, 1);
  ASSERT_FALSE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.front().start_s, 0.0);
  EXPECT_DOUBLE_EQ(trace.back().end_s, 100.0);
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(trace[i].end_s, trace[i + 1].start_s);
    EXPECT_NE(trace[i].busy, trace[i + 1].busy);
  }
}

TEST(PuTrace, DutyCycleMatchesModel) {
  PuActivityModel model;
  model.mean_busy_s = 0.3;
  model.mean_idle_s = 0.7;
  const auto trace = generate_pu_trace(model, 5000.0, 2);
  const double measured = trace_busy_fraction(trace, 0.0, 5000.0);
  EXPECT_NEAR(measured, model.duty_cycle(), 0.03);
}

TEST(PuTrace, BusyAtAgreesWithFraction) {
  const PuActivityModel model;
  const auto trace = generate_pu_trace(model, 50.0, 3);
  for (double t = 0.05; t < 49.9; t += 1.7) {
    const bool busy = trace_busy_at(trace, t);
    const double frac = trace_busy_fraction(trace, t, t + 1e-6);
    EXPECT_EQ(busy, frac > 0.5) << "t=" << t;
  }
}

TEST(PuTrace, Validation) {
  PuActivityModel bad;
  bad.mean_busy_s = 0.0;
  EXPECT_THROW((void)generate_pu_trace(bad, 10.0, 1), InvalidArgument);
  const auto trace = generate_pu_trace(PuActivityModel{}, 10.0, 1);
  EXPECT_THROW((void)trace_busy_at(trace, -1.0), InvalidArgument);
  EXPECT_THROW((void)trace_busy_at(trace, 10.0), InvalidArgument);
  EXPECT_THROW((void)trace_busy_fraction(trace, 5.0, 5.0), InvalidArgument);
}

TEST(PuActivityModel, DutyCycleValidatesHoldingTimes) {
  PuActivityModel model;
  EXPECT_NEAR(model.duty_cycle(), 1.0 / 3.0, 1e-12);
  model.mean_busy_s = 0.0;
  EXPECT_THROW((void)model.duty_cycle(), InvalidArgument);
  model.mean_busy_s = -0.5;
  EXPECT_THROW((void)model.duty_cycle(), InvalidArgument);
  model.mean_busy_s = 0.5;
  model.mean_idle_s = 0.0;
  EXPECT_THROW((void)model.duty_cycle(), InvalidArgument);
  model.mean_idle_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)model.duty_cycle(), InvalidArgument);
}

TEST(PuTrace, NextIdleFindsResumePoint) {
  const auto trace = generate_pu_trace(PuActivityModel{}, 50.0, 4);
  for (double t = 0.1; t < 49.5; t += 3.3) {
    const double resume = trace_next_idle(trace, t);
    ASSERT_GE(resume, t);
    if (resume < 50.0) {
      EXPECT_FALSE(trace_busy_at(trace, resume)) << "t=" << t;
    }
    if (!trace_busy_at(trace, t)) {
      EXPECT_DOUBLE_EQ(resume, t);  // already idle: resume immediately
    }
  }
}

OpportunisticAccessConfig base_cfg() {
  OpportunisticAccessConfig cfg;
  cfg.duration_s = 400.0;
  cfg.seed = 7;
  return cfg;
}

TEST(OpportunisticAccess, PerfectSensingRarelyCollides) {
  OpportunisticAccessConfig cfg = base_cfg();
  cfg.detection_probability = 1.0;
  cfg.false_alarm_probability = 0.0;
  const auto r = simulate_opportunistic_access(cfg);
  EXPECT_GT(r.frames_sent, 1000u);
  // Collisions only from the PU *returning* mid-frame — rare when the
  // frame is much shorter than the idle holding time.
  EXPECT_LT(r.collision_fraction, 0.08);
  EXPECT_GT(r.idle_utilization, 0.4);
}

TEST(OpportunisticAccess, MissedDetectionCausesInterference) {
  OpportunisticAccessConfig good = base_cfg();
  good.detection_probability = 0.99;
  OpportunisticAccessConfig bad = base_cfg();
  bad.detection_probability = 0.5;
  const auto r_good = simulate_opportunistic_access(good);
  const auto r_bad = simulate_opportunistic_access(bad);
  EXPECT_GT(r_bad.interference_fraction, r_good.interference_fraction);
  EXPECT_GT(r_bad.collision_fraction, r_good.collision_fraction);
}

TEST(OpportunisticAccess, FalseAlarmsWasteIdleTime) {
  OpportunisticAccessConfig calm = base_cfg();
  calm.false_alarm_probability = 0.01;
  OpportunisticAccessConfig jumpy = base_cfg();
  jumpy.false_alarm_probability = 0.6;
  const auto r_calm = simulate_opportunistic_access(calm);
  const auto r_jumpy = simulate_opportunistic_access(jumpy);
  EXPECT_LT(r_jumpy.idle_utilization, r_calm.idle_utilization);
}

TEST(OpportunisticAccess, LongerFramesCollideMore) {
  OpportunisticAccessConfig short_f = base_cfg();
  short_f.frame_duration_s = 0.02;
  OpportunisticAccessConfig long_f = base_cfg();
  long_f.frame_duration_s = 0.4;
  const auto r_short = simulate_opportunistic_access(short_f);
  const auto r_long = simulate_opportunistic_access(long_f);
  EXPECT_GT(r_long.collision_fraction, r_short.collision_fraction);
}

TEST(OpportunisticAccess, DeterministicInSeed) {
  const auto a = simulate_opportunistic_access(base_cfg());
  const auto b = simulate_opportunistic_access(base_cfg());
  EXPECT_EQ(a.frames_sent, b.frames_sent);
  EXPECT_EQ(a.frames_colliding, b.frames_colliding);
}

TEST(OpportunisticAccess, Validation) {
  OpportunisticAccessConfig cfg = base_cfg();
  cfg.sensing_period_s = 0.0;
  EXPECT_THROW((void)simulate_opportunistic_access(cfg), InvalidArgument);
  cfg = base_cfg();
  cfg.detection_probability = 1.5;
  EXPECT_THROW((void)simulate_opportunistic_access(cfg), InvalidArgument);
}

}  // namespace
}  // namespace comimo
