// The mc/ sweep engine's determinism contract.
//
// The engine promises the merged accumulator is a pure function of
// (seed, trials, chunk_size): the worker count changes only the wall
// clock.  These tests run identical sweeps on pools of different sizes
// and demand *bitwise* equality, exercise the chunking and merge
// algebra, and pin the ported simulators (waveform BER, cooperative
// hop, lifetime/resilience ensembles) to the same invariance.
#include "comimo/mc/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "comimo/mc/accumulator.h"
#include "comimo/mc/sharded.h"
#include "comimo/net/comimonet.h"
#include "comimo/net/lifetime.h"
#include "comimo/phy/ber_sweep.h"
#include "comimo/resilience/resilient_sim.h"
#include "comimo/testbed/coop_hop_sim.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {
namespace {

// A trial with several named counters and observations, all derived
// from the per-trial Rng stream.
void mixed_trial(std::size_t t, Rng& rng, McAccumulator& acc) {
  acc.count("trials");
  if (rng.bernoulli(0.3)) acc.count("hits");
  acc.observe("gauss", rng.complex_gaussian().real());
  acc.observe("index", static_cast<double>(t));
}

TEST(McEngine, ThreadCountInvarianceIsBitwise) {
  McResult ref;
  {
    ThreadPool pool(1);
    McConfig cfg;
    cfg.seed = 7;
    cfg.pool = &pool;
    ref = run_trials(1000, cfg, mixed_trial);
  }
  for (const unsigned workers : {2u, 3u, 8u}) {
    ThreadPool pool(workers);
    McConfig cfg;
    cfg.seed = 7;
    cfg.pool = &pool;
    const McResult run = run_trials(1000, cfg, mixed_trial);
    // operator== compares doubles bitwise through RunningStats.
    EXPECT_TRUE(run.acc == ref.acc) << workers << " workers diverged";
  }
  EXPECT_EQ(ref.acc.counter("trials"), 1000u);
  EXPECT_DOUBLE_EQ(ref.acc.stat("index").mean(), 999.0 / 2.0);
}

TEST(McEngine, ChunkSizeKeepsCountersExact) {
  // Changing chunk_size regroups the Welford reduction (moments may move
  // by an ulp) but counters are integer sums — exact for any chunking.
  std::vector<McResult> runs;
  for (const std::size_t chunk : {1u, 7u, 128u, 1000u}) {
    McConfig cfg;
    cfg.seed = 11;
    cfg.chunk_size = chunk;
    runs.push_back(run_trials(1000, cfg, mixed_trial));
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].acc.counter("trials"), runs[0].acc.counter("trials"));
    EXPECT_EQ(runs[i].acc.counter("hits"), runs[0].acc.counter("hits"));
    EXPECT_NEAR(runs[i].acc.stat("gauss").mean(),
                runs[0].acc.stat("gauss").mean(),
                1e-12 * std::abs(runs[0].acc.stat("gauss").mean()) + 1e-15);
    EXPECT_NEAR(runs[i].acc.stat("gauss").variance(),
                runs[0].acc.stat("gauss").variance(),
                1e-12 * runs[0].acc.stat("gauss").variance() + 1e-15);
  }
}

TEST(McEngine, SameChunkSizeSameResultAnyPool) {
  // With chunk_size fixed, even the moments are bit-identical — the
  // merge order is the chunk order, not the completion order.
  McConfig a;
  a.seed = 3;
  a.chunk_size = 64;
  const McResult ra = run_trials(500, a, mixed_trial);
  ThreadPool pool(4);
  McConfig b = a;
  b.pool = &pool;
  const McResult rb = run_trials(500, b, mixed_trial);
  EXPECT_TRUE(ra.acc == rb.acc);
}

TEST(McAccumulatorTest, MergeCountersAreAssociative) {
  McAccumulator a, b, c;
  a.count("n", 3);
  b.count("n", 5);
  c.count("n", 7);
  b.count("only_b", 2);

  McAccumulator left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  McAccumulator bc = b;     // a + (b + c)
  bc.merge(c);
  McAccumulator right = a;
  right.merge(bc);
  EXPECT_EQ(left.counter("n"), 15u);
  EXPECT_EQ(left.counter("n"), right.counter("n"));
  EXPECT_EQ(left.counter("only_b"), right.counter("only_b"));
}

TEST(McAccumulatorTest, MergeMomentsAssociativeToUlp) {
  Rng rng(42, 0);
  McAccumulator a, b, c;
  for (int i = 0; i < 100; ++i) a.observe("x", rng.complex_gaussian().real());
  for (int i = 0; i < 37; ++i) b.observe("x", rng.complex_gaussian().real());
  for (int i = 0; i < 211; ++i) c.observe("x", rng.complex_gaussian().real());

  McAccumulator left = a;
  left.merge(b);
  left.merge(c);
  McAccumulator bc = b;
  bc.merge(c);
  McAccumulator right = a;
  right.merge(bc);

  EXPECT_EQ(left.stat("x").count(), right.stat("x").count());
  EXPECT_NEAR(left.stat("x").mean(), right.stat("x").mean(), 1e-14);
  EXPECT_NEAR(left.stat("x").variance(), right.stat("x").variance(), 1e-13);
  EXPECT_DOUBLE_EQ(left.stat("x").min(), right.stat("x").min());
  EXPECT_DOUBLE_EQ(left.stat("x").max(), right.stat("x").max());
}

TEST(McAccumulatorTest, MergeWithEmptyIsIdentity) {
  McAccumulator a;
  a.count("n", 9);
  a.observe("x", 1.5);
  a.observe("x", -0.5);
  const McAccumulator before = a;
  a.merge(McAccumulator{});
  EXPECT_TRUE(a == before);
  McAccumulator empty;
  empty.merge(before);
  EXPECT_TRUE(empty == before);
}

TEST(McAccumulatorTest, RateEstimateFromCounters) {
  McAccumulator acc;
  acc.count("errors", 25);
  acc.count("bits", 1000);
  const RateEstimate r = acc.rate("errors", "bits");
  EXPECT_DOUBLE_EQ(r.rate, 0.025);
  EXPECT_GT(r.wilson_hi, r.rate);
  EXPECT_LT(r.wilson_lo, r.rate);
  const RateEstimate zero = acc.rate("errors", "never_counted");
  EXPECT_DOUBLE_EQ(zero.rate, 0.0);
}

TEST(McEngine, ResolveChunkSizeContract) {
  // Explicit sizes pass through; 0 = at most 1024 shards, at least one
  // trial per shard — a function of the trial count only.
  EXPECT_EQ(resolve_chunk_size(1000, 64), 64u);
  EXPECT_EQ(resolve_chunk_size(10, 0), 1u);
  EXPECT_EQ(resolve_chunk_size(1024, 0), 1u);
  EXPECT_EQ(resolve_chunk_size(2048, 0), 2u);
  EXPECT_EQ(resolve_chunk_size(1'000'000, 0),
            (1'000'000 + 1023) / 1024);
  EXPECT_GE(resolve_chunk_size(0, 0), 1u);
}

TEST(McEngine, ZeroTrialsYieldsEmptyAccumulator) {
  McConfig cfg;
  const McResult run = run_trials(
      0, cfg, [](std::size_t, Rng&, McAccumulator&) { FAIL(); });
  EXPECT_EQ(run.info.trials, 0u);
  EXPECT_TRUE(run.acc == McAccumulator{});
}

TEST(McEngine, TrialRngIsTheTrialIndexStream) {
  // The engine hands trial t the stream Rng(seed, t) — a pure function
  // of the trial index, so any trial can be replayed in isolation.
  McConfig cfg;
  cfg.seed = 99;
  std::vector<std::uint64_t> seen(8);
  (void)run_trials(8, cfg,
                   [&](std::size_t t, Rng& rng, McAccumulator&) {
                     seen[t] = rng.next();
                   });
  for (std::size_t t = 0; t < seen.size(); ++t) {
    Rng replay(99, t);
    EXPECT_EQ(seen[t], replay.next()) << "trial " << t;
  }
}

TEST(McEngine, NestedRunTrialsDegradesToSerial) {
  // A trial that itself calls run_trials on the same pool must complete
  // (the inner sweep runs inline on the worker) and stay deterministic.
  ThreadPool pool(2);
  McConfig outer;
  outer.seed = 5;
  outer.pool = &pool;
  const McResult nested = run_trials(
      8, outer, [&](std::size_t t, Rng&, McAccumulator& acc) {
        McConfig inner;
        inner.seed = 100 + t;
        inner.pool = &pool;
        const McResult in = run_trials(
            16, inner, [](std::size_t, Rng& rng, McAccumulator& a) {
              a.observe("x", rng.complex_gaussian().real());
            });
        acc.observe("inner_mean", in.acc.stat("x").mean());
      });
  McConfig serial_cfg;
  serial_cfg.seed = 5;
  ThreadPool one(1);
  serial_cfg.pool = &one;
  const McResult serial = run_trials(
      8, serial_cfg, [&](std::size_t t, Rng&, McAccumulator& acc) {
        McConfig inner;
        inner.seed = 100 + t;
        inner.pool = &one;
        const McResult in = run_trials(
            16, inner, [](std::size_t, Rng& rng, McAccumulator& a) {
              a.observe("x", rng.complex_gaussian().real());
            });
        acc.observe("inner_mean", in.acc.stat("x").mean());
      });
  EXPECT_TRUE(nested.acc == serial.acc);
}

// ---------------------------------------------------------------------
// Multi-process sharding: chunk-range split + ordinal-ordered fold.
// ---------------------------------------------------------------------

TEST(McEngineShards, ManualShardFoldIsBitwiseEqualToUnsharded) {
  // Shard i executes the chunk range [chunks·i/n, chunks·(i+1)/n); the
  // ranges are contiguous and ascending, so concatenating each shard's
  // per-chunk accumulators in shard order IS the global chunk order,
  // and the fold must reproduce the unsharded Welford merge bitwise.
  McConfig base;
  base.seed = 21;
  base.chunk_size = 16;
  const McResult want = run_trials(300, base, mixed_trial);
  const std::size_t chunks = (300 + base.chunk_size - 1) / base.chunk_size;
  for (const std::size_t shards : {2u, 3u, 7u}) {
    McAccumulator fold;
    std::vector<std::size_t> ordinals;
    for (std::size_t i = 0; i < shards; ++i) {
      McConfig cfg = base;
      cfg.shard_index = i;
      cfg.shard_count = shards;
      cfg.collect_chunk_accs = true;
      const McResult part = run_trials(300, cfg, mixed_trial);
      for (const auto& [ordinal, acc] : part.chunk_accs) {
        ordinals.push_back(ordinal);
        fold.merge(acc);
      }
    }
    EXPECT_TRUE(fold == want.acc) << shards << " shards";
    // Concatenated in shard order, the ordinals must be exactly
    // 0..chunks-1 ascending: a partition with no gap and no overlap.
    ASSERT_EQ(ordinals.size(), chunks) << shards << " shards";
    for (std::size_t c = 0; c < chunks; ++c) {
      EXPECT_EQ(ordinals[c], c) << shards << " shards";
    }
  }
}

TEST(McEngineShards, RunTrialsShardedMatchesPlainRun) {
  // Both transports — in-process sequential and fork + pipe — must
  // return the plain run's accumulator bit for bit.
  McConfig cfg;
  cfg.seed = 31;
  const McResult want = run_trials(500, cfg, mixed_trial);
  for (const bool fork : {false, true}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{5}}) {
      ShardOptions opt;
      opt.shards = shards;
      opt.fork = fork;
      const McResult got = run_trials_sharded(500, cfg, opt, mixed_trial);
      EXPECT_TRUE(got.acc == want.acc)
          << shards << " shards, fork=" << fork;
      EXPECT_EQ(got.info.trials, want.info.trials);
    }
  }
}

TEST(McEngineShards, ShardsAndThreadsComposeBitwise) {
  // threads × shards: each forked worker rebuilds a private pool of the
  // parent's size, and chunk ordinals stay global — the composition
  // must equal the plain serial run exactly.
  McConfig serial;
  serial.seed = 47;
  const McResult want = run_trials(400, serial, mixed_trial);
  ThreadPool pool(3);
  McConfig cfg = serial;
  cfg.pool = &pool;
  ShardOptions opt;
  opt.shards = 2;
  const McResult got = run_trials_sharded(400, cfg, opt, mixed_trial);
  EXPECT_TRUE(got.acc == want.acc);
  EXPECT_EQ(got.info.threads, 3u);
}

TEST(McEngineShards, RunTrialBatchesShardedMatchesUnsharded) {
  const auto batch_trial = [](std::size_t, std::size_t count, Rng* rngs,
                              McAccumulator& acc) {
    for (std::size_t i = 0; i < count; ++i) {
      acc.count("heads", rngs[i].bernoulli(0.5) ? 1 : 0);
      acc.observe("g", rngs[i].complex_gaussian().real());
    }
    acc.count("trials", count);
  };
  McConfig cfg;
  cfg.seed = 53;
  const McResult want = run_trial_batches(333, cfg, 4, batch_trial);
  for (const std::size_t shards : {2u, 4u}) {
    ShardOptions opt;
    opt.shards = shards;
    const McResult got =
        run_trial_batches_sharded(333, cfg, opt, 4, batch_trial);
    EXPECT_TRUE(got.acc == want.acc) << shards << " shards";
    EXPECT_EQ(got.acc.counter("trials"), 333u);
  }
}

TEST(McEngineShards, MoreShardsThanChunksStillCovers) {
  // Surplus shards receive empty chunk ranges and contribute nothing;
  // coverage and bit-identity must survive.
  McConfig cfg;
  cfg.seed = 61;
  cfg.chunk_size = 50;  // 2 chunks for 100 trials, 8 shards
  const McResult want = run_trials(100, cfg, mixed_trial);
  ShardOptions opt;
  opt.shards = 8;
  const McResult got = run_trials_sharded(100, cfg, opt, mixed_trial);
  EXPECT_TRUE(got.acc == want.acc);
  EXPECT_EQ(got.acc.counter("trials"), 100u);
}

TEST(McEngineShards, ShardedWaveformSweepIsShardCountInvariant) {
  // The production call site: measure_waveform_ber with shards > 1 must
  // return the single-process integers exactly.
  WaveformBerConfig cfg;
  cfg.b = 2;
  cfg.mt = 2;
  cfg.mr = 2;
  cfg.blocks = 400;
  cfg.seed = 71;
  const WaveformBerPoint want = measure_waveform_ber(cfg, 6.0);
  for (const std::size_t shards : {2u, 3u}) {
    WaveformBerConfig sharded_cfg = cfg;
    sharded_cfg.shards = shards;
    const WaveformBerPoint got = measure_waveform_ber(sharded_cfg, 6.0);
    EXPECT_EQ(got.bit_errors, want.bit_errors) << shards << " shards";
    EXPECT_EQ(got.bits, want.bits) << shards << " shards";
    EXPECT_DOUBLE_EQ(got.ber, want.ber) << shards << " shards";
  }
}

// ---------------------------------------------------------------------
// Ported simulators: the same invariance, end to end.
// ---------------------------------------------------------------------

TEST(McEnginePorts, WaveformBerIsPoolInvariant) {
  WaveformBerConfig cfg;
  cfg.b = 2;
  cfg.mt = 2;
  cfg.mr = 2;
  cfg.blocks = 600;
  cfg.seed = 42;
  ThreadPool one(1);
  cfg.pool = &one;
  const WaveformBerPoint ref = measure_waveform_ber(cfg, 6.0);
  ThreadPool many(4);
  cfg.pool = &many;
  const WaveformBerPoint par = measure_waveform_ber(cfg, 6.0);
  EXPECT_EQ(ref.bit_errors, par.bit_errors);
  EXPECT_EQ(ref.bits, par.bits);
  EXPECT_DOUBLE_EQ(ref.ber, par.ber);
}

TEST(McEnginePorts, CoopHopSimIsPoolInvariant) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig hop;
  hop.mt = 2;
  hop.mr = 2;
  hop.ber = 1e-2;
  CoopHopSimConfig sim;
  sim.plan = planner.plan(hop, BSelectionRule::kMinTotalPa);
  sim.bits = 4000;
  sim.seed = 13;
  ThreadPool one(1);
  sim.pool = &one;
  const CoopHopSimResult ref = simulate_cooperative_hop(sim);
  ThreadPool many(3);
  sim.pool = &many;
  const CoopHopSimResult par = simulate_cooperative_hop(sim);
  EXPECT_EQ(ref.bits, par.bits);
  EXPECT_EQ(ref.bit_errors, par.bit_errors);
  EXPECT_DOUBLE_EQ(ref.intra_error_rate, par.intra_error_rate);
  EXPECT_TRUE(ref.resilience == par.resilience);
}

TEST(McEnginePorts, LifetimeEnsembleIsPoolInvariant) {
  const auto nodes = clustered_field(12, 3, 6.0, 400.0, 400.0, /*seed=*/11,
                                     /*battery_lo=*/20.0,
                                     /*battery_hi=*/30.0);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 16.0;
  net_cfg.link_range_m = 280.0;
  const CoMimoNet net(nodes, net_cfg);
  LifetimeEnsembleConfig ens;
  ens.trials = 4;
  ens.seed = 2024;
  ThreadPool one(1);
  ens.pool = &one;
  const LifetimeEnsembleReport ref =
      simulate_lifetime_ensemble(net, SystemParams{}, ens);
  ThreadPool many(3);
  ens.pool = &many;
  const LifetimeEnsembleReport par =
      simulate_lifetime_ensemble(net, SystemParams{}, ens);
  EXPECT_TRUE(ref.rounds_to_first_death == par.rounds_to_first_death);
  EXPECT_TRUE(ref.min_battery_j == par.min_battery_j);
  EXPECT_EQ(ref.censored_trials, par.censored_trials);
  EXPECT_EQ(ref.trials, par.trials);
  EXPECT_GT(ref.trials, 0u);
}

TEST(McEnginePorts, ResilienceEnsembleIsPoolInvariant) {
  const auto nodes = clustered_field(12, 3, 6.0, 400.0, 400.0, /*seed=*/5,
                                     /*battery_lo=*/50.0,
                                     /*battery_hi=*/80.0);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 16.0;
  net_cfg.link_range_m = 280.0;
  const CoMimoNet net(nodes, net_cfg);
  ResilienceEnsembleConfig ens;
  ens.trials = 3;
  ens.seed = 77;
  ThreadPool one(1);
  ens.pool = &one;
  const ResilienceEnsembleReport ref =
      simulate_with_faults_ensemble(net, SystemParams{}, ens);
  ThreadPool many(4);
  ens.pool = &many;
  const ResilienceEnsembleReport par =
      simulate_with_faults_ensemble(net, SystemParams{}, ens);
  EXPECT_TRUE(ref.delivery_ratio == par.delivery_ratio);
  EXPECT_TRUE(ref.energy_spent_j == par.energy_spent_j);
  EXPECT_EQ(ref.retransmissions, par.retransmissions);
  EXPECT_EQ(ref.node_deaths, par.node_deaths);
  EXPECT_EQ(ref.trials, par.trials);
}

}  // namespace
}  // namespace comimo
