#include "comimo/testbed/channel_estimator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/stats.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/modulation.h"
#include "comimo/testbed/experiments.h"

namespace comimo {
namespace {

TEST(ChannelEstimator, ExactWithoutNoise) {
  const BpskModulator modem;
  const auto pilots = modem.modulate(random_bits(32, 1));
  const cplx h{0.7, -1.3};
  std::vector<cplx> rx(pilots.size());
  for (std::size_t i = 0; i < pilots.size(); ++i) rx[i] = h * pilots[i];
  EXPECT_NEAR(std::abs(estimate_gain(pilots, rx) - h), 0.0, 1e-12);
}

TEST(ChannelEstimator, UnbiasedUnderNoise) {
  const BpskModulator modem;
  const auto pilots = modem.modulate(random_bits(16, 2));
  const cplx h{-0.4, 0.9};
  Rng rng(3);
  RunningStats re;
  RunningStats im;
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<cplx> rx(pilots.size());
    for (std::size_t i = 0; i < pilots.size(); ++i) {
      rx[i] = h * pilots[i] + rng.complex_gaussian(0.5);
    }
    const cplx est = estimate_gain(pilots, rx);
    re.add(est.real());
    im.add(est.imag());
  }
  EXPECT_NEAR(re.mean(), h.real(), 0.005);
  EXPECT_NEAR(im.mean(), h.imag(), 0.005);
}

TEST(ChannelEstimator, VarianceMatchesCrlb) {
  // var(ĥ) = N0 / Σ|p|² for LS with white noise.
  const BpskModulator modem;
  const std::size_t n = 8;
  const auto pilots = modem.modulate(random_bits(n, 4));
  const double n0 = 0.8;
  Rng rng(5);
  RunningStats err_power;
  const cplx h{1.0, 0.5};
  for (int trial = 0; trial < 30000; ++trial) {
    std::vector<cplx> rx(pilots.size());
    for (std::size_t i = 0; i < pilots.size(); ++i) {
      rx[i] = h * pilots[i] + rng.complex_gaussian(n0);
    }
    err_power.add(std::norm(estimate_gain(pilots, rx) - h));
  }
  EXPECT_NEAR(err_power.mean(), n0 / static_cast<double>(n),
              n0 / n * 0.05);
}

TEST(ChannelEstimator, NoiseVarianceEstimateIsUnbiased) {
  const BpskModulator modem;
  const auto pilots = modem.modulate(random_bits(24, 6));
  const double n0 = 1.7;
  Rng rng(7);
  RunningStats nv;
  for (int trial = 0; trial < 20000; ++trial) {
    std::vector<cplx> rx(pilots.size());
    for (std::size_t i = 0; i < pilots.size(); ++i) {
      rx[i] = cplx{0.3, -0.6} * pilots[i] + rng.complex_gaussian(n0);
    }
    nv.add(estimate_gain_and_noise(pilots, rx).noise_variance);
  }
  EXPECT_NEAR(nv.mean(), n0, n0 * 0.03);
}

TEST(ChannelEstimator, Validation) {
  const std::vector<cplx> p{cplx{1.0, 0.0}};
  const std::vector<cplx> y{cplx{1.0, 0.0}, cplx{1.0, 0.0}};
  EXPECT_THROW((void)estimate_gain({}, {}), InvalidArgument);
  EXPECT_THROW((void)estimate_gain(p, y), InvalidArgument);
  EXPECT_THROW((void)estimate_gain_and_noise(p, p), InvalidArgument);
  const std::vector<cplx> zeros(4, cplx{0.0, 0.0});
  EXPECT_THROW((void)estimate_gain(zeros, zeros), InvalidArgument);
}

TEST(OverlayWithPilots, EstimationCostsLittleWithEnoughPilots) {
  OverlayBerConfig genie = table2_single_relay_config(1);
  genie.total_bits = 40000;
  const auto r_genie = run_overlay_ber(genie);

  OverlayBerConfig est = genie;
  est.pilot_symbols = 32;
  const auto r_est = run_overlay_ber(est);
  // 32 pilots per 1000-bit packet: a mild penalty only.
  EXPECT_LT(r_est.ber_cooperative, r_genie.ber_cooperative * 2.0 + 1e-3);

  OverlayBerConfig poor = genie;
  poor.pilot_symbols = 2;
  const auto r_poor = run_overlay_ber(poor);
  // Two pilots give a noisy estimate: strictly worse than 32.
  EXPECT_GT(r_poor.ber_cooperative, r_est.ber_cooperative);
}

TEST(OverlayWithPilots, ZeroPilotsReproducesGenieResults) {
  OverlayBerConfig a = table2_single_relay_config(2);
  a.total_bits = 20000;
  const auto r1 = run_overlay_ber(a);
  const auto r2 = run_overlay_ber(a);
  EXPECT_EQ(r1.errors_cooperative, r2.errors_cooperative);
}

}  // namespace
}  // namespace comimo
