#include "comimo/common/units.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/constants.h"

namespace comimo {
namespace {

TEST(Units, DbToLinearRoundTrip) {
  for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 40.0}) {
    EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-12);
  }
}

TEST(Units, KnownDbValues) {
  EXPECT_NEAR(db_to_linear(0.0), 1.0, 1e-15);
  EXPECT_NEAR(db_to_linear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(db_to_linear(3.0), 1.9952623149688795, 1e-12);
  EXPECT_NEAR(db_to_linear(-10.0), 0.1, 1e-15);
}

TEST(Units, DbmToWatts) {
  EXPECT_NEAR(dbm_to_watts(0.0), 1e-3, 1e-18);
  EXPECT_NEAR(dbm_to_watts(30.0), 1.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(-174.0), 3.9810717055349565e-21, 1e-33);
}

TEST(Units, WattsToDbmRoundTrip) {
  for (double w : {1e-6, 1e-3, 0.5, 2.0}) {
    EXPECT_NEAR(dbm_to_watts(watts_to_dbm(w)), w, w * 1e-12);
  }
}

TEST(Units, DegRadRoundTrip) {
  for (double deg : {0.0, 45.0, 90.0, 180.0, 270.0, -60.0}) {
    EXPECT_NEAR(rad_to_deg(deg_to_rad(deg)), deg, 1e-12);
  }
}

TEST(Units, WrapAngleIntoRange) {
  EXPECT_NEAR(wrap_angle(0.0), 0.0, 1e-15);
  EXPECT_NEAR(wrap_angle(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(-3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_angle(2.0 * kPi), 0.0, 1e-12);
  for (double a = -20.0; a <= 20.0; a += 0.37) {
    const double w = wrap_angle(a);
    EXPECT_GT(w, -kPi - 1e-12);
    EXPECT_LE(w, kPi + 1e-12);
    // Same angle modulo 2π.
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-12);
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-12);
  }
}

TEST(SystemParams, PaperDefaults) {
  const SystemParams p;
  EXPECT_NEAR(p.p_ct_w, 48.64e-3, 1e-12);
  EXPECT_NEAR(p.p_cr_w, 62.5e-3, 1e-12);
  EXPECT_NEAR(p.p_syn_w, 50e-3, 1e-12);
  EXPECT_NEAR(p.kappa, 3.5, 1e-12);
  EXPECT_NEAR(linear_to_db(p.link_margin), 40.0, 1e-9);
  EXPECT_NEAR(linear_to_db(p.noise_figure), 10.0, 1e-9);
  EXPECT_NEAR(watts_to_dbm(p.sigma2_w_per_hz), -174.0, 1e-9);
  EXPECT_NEAR(watts_to_dbm(p.n0_w_per_hz), -171.0, 1e-9);
  EXPECT_NEAR(linear_to_db(p.gt_gr), 5.0, 1e-9);
  EXPECT_NEAR(p.lambda_m, 0.1199, 1e-12);
}

TEST(SystemParams, PaOverheadMatchesFormula) {
  const SystemParams p;
  // α = 3(√M − 1)/(0.35(√M + 1)), M = 2^b.
  for (int b = 1; b <= 16; ++b) {
    const double root_m = std::pow(2.0, b / 2.0);
    const double expected = 3.0 * (root_m - 1.0) / (0.35 * (root_m + 1.0));
    EXPECT_NEAR(p.pa_overhead(b), expected, 1e-12) << "b=" << b;
  }
}

TEST(SystemParams, PaOverheadIncreasesWithB) {
  const SystemParams p;
  for (int b = 1; b < 16; ++b) {
    EXPECT_LT(p.pa_overhead(b), p.pa_overhead(b + 1));
  }
}

TEST(SystemParams, LocalGainPowerLaw) {
  const SystemParams p;
  // G_d = G_1 d^κ M_l: doubling d multiplies by 2^3.5.
  const double g1m = p.local_gain(1.0);
  EXPECT_NEAR(g1m, p.g1 * p.link_margin, 1e-6);
  EXPECT_NEAR(p.local_gain(2.0) / g1m, std::pow(2.0, 3.5), 1e-9);
}

TEST(SystemParams, LongHaulAttenuationSquareLaw) {
  const SystemParams p;
  const double a100 = p.long_haul_attenuation(100.0);
  const double a200 = p.long_haul_attenuation(200.0);
  EXPECT_NEAR(a200 / a100, 4.0, 1e-9);
  // Formula check at D = 1 m.
  const double expected = std::pow(4.0 * kPi, 2.0) /
                          (p.gt_gr * p.lambda_m * p.lambda_m) *
                          p.link_margin * p.noise_figure;
  EXPECT_NEAR(p.long_haul_attenuation(1.0), expected, expected * 1e-12);
}

}  // namespace
}  // namespace comimo
