// GF(256)/GF(2) arithmetic: field axioms as exhaustive property tests,
// plus bitwise scalar-vs-SIMD equivalence for the region kernels at
// every compiled tier (the coding layer's bit-identity contract).
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "comimo/coding/galois.h"
#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/simd/gf256_tables.h"
#include "comimo/numeric/simd/simd.h"

namespace comimo::coding {
namespace {

using simd::BatchKernels;
using simd::Tier;

std::vector<std::pair<Tier, const BatchKernels*>> compiled_tiers() {
  std::vector<std::pair<Tier, const BatchKernels*>> out;
  for (Tier t : {Tier::kScalar, Tier::kSse2, Tier::kAvx2, Tier::kNeon}) {
    if (const BatchKernels* k = simd::kernels_for_tier(t)) {
      out.emplace_back(t, k);
    }
  }
  return out;
}

TEST(Galois, AddIsXorAndSelfInverse) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; b += 7) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      EXPECT_EQ(gf_add(ua, ub), ua ^ ub);
      EXPECT_EQ(gf_add(gf_add(ua, ub), ub), ua);
    }
  }
}

TEST(Galois, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(ua, 1), ua);
    EXPECT_EQ(gf_mul(1, ua), ua);
    EXPECT_EQ(gf_mul(ua, 0), 0);
    EXPECT_EQ(gf_mul(0, ua), 0);
  }
}

TEST(Galois, MulCommutesAndAssociates) {
  Rng rng(7, 0);
  for (int n = 0; n < 20000; ++n) {
    const auto a = static_cast<std::uint8_t>(rng.next() >> 56);
    const auto b = static_cast<std::uint8_t>(rng.next() >> 56);
    const auto c = static_cast<std::uint8_t>(rng.next() >> 56);
    EXPECT_EQ(gf_mul(a, b), gf_mul(b, a));
    EXPECT_EQ(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
  }
}

TEST(Galois, MulDistributesOverAdd) {
  Rng rng(11, 0);
  for (int n = 0; n < 20000; ++n) {
    const auto a = static_cast<std::uint8_t>(rng.next() >> 56);
    const auto b = static_cast<std::uint8_t>(rng.next() >> 56);
    const auto c = static_cast<std::uint8_t>(rng.next() >> 56);
    EXPECT_EQ(gf_mul(a, gf_add(b, c)), gf_add(gf_mul(a, b), gf_mul(a, c)));
  }
}

TEST(Galois, EveryNonzeroElementHasAnInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    const std::uint8_t inv = gf_inv(ua);
    EXPECT_EQ(gf_mul(ua, inv), 1) << "a = " << a;
    EXPECT_EQ(gf_div(1, ua), inv);
  }
}

TEST(Galois, DivIsMulByInverseExhaustive) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      const auto ua = static_cast<std::uint8_t>(a);
      const auto ub = static_cast<std::uint8_t>(b);
      const std::uint8_t q = gf_div(ua, ub);
      EXPECT_EQ(gf_mul(q, ub), ua);
    }
  }
}

TEST(Galois, DivAndInvByZeroThrow) {
  EXPECT_THROW((void)gf_div(5, 0), InvalidArgument);
  EXPECT_THROW((void)gf_inv(0), InvalidArgument);
}

TEST(Galois, LogExpRoundTrip) {
  const auto& t = simd::kGf256;
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(t.exp[t.log[a]], a);
  }
  // The exponential table cycles with period 255 (α is primitive).
  for (int e = 0; e < 255; ++e) {
    EXPECT_EQ(t.exp[e], t.exp[e + 255]);
  }
}

TEST(Galois, PowMatchesRepeatedMul) {
  for (int a = 0; a < 256; a += 5) {
    const auto ua = static_cast<std::uint8_t>(a);
    std::uint8_t acc = 1;
    for (unsigned n = 0; n < 12; ++n) {
      EXPECT_EQ(gf_pow(ua, n), acc) << "a = " << a << " n = " << n;
      acc = gf_mul(acc, ua);
    }
  }
}

TEST(Galois, GeneratorIsPrimitive) {
  // α = 2 must enumerate every nonzero element before returning to 1.
  std::vector<bool> seen(256, false);
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    EXPECT_FALSE(seen[x]);
    seen[x] = true;
    x = gf_mul(x, 2);
  }
  EXPECT_EQ(x, 1);
}

TEST(Galois, DrawCoefficientRespectsField) {
  Rng rng(3, 0);
  bool saw_large = false;
  for (int n = 0; n < 1000; ++n) {
    const std::uint8_t c2 = draw_coefficient(GfField::kGf2, rng);
    EXPECT_LE(c2, 1);
    const std::uint8_t c256 = draw_coefficient(GfField::kGf256, rng);
    saw_large = saw_large || c256 > 1;
  }
  EXPECT_TRUE(saw_large);
}

// ---- per-tier SIMD equivalence ----------------------------------------

TEST(GaloisSimd, MulAddRowMatchesScalarReferenceAtEveryTier) {
  const BatchKernels* scalar = simd::kernels_for_tier(Tier::kScalar);
  ASSERT_NE(scalar, nullptr);
  Rng rng(42, 0);
  // Lengths straddle the vector widths and their remainders.
  for (std::size_t len : {std::size_t{1}, std::size_t{15}, std::size_t{16},
                          std::size_t{31}, std::size_t{32}, std::size_t{33},
                          std::size_t{64}, std::size_t{257}}) {
    std::vector<std::uint8_t> src(len), base(len);
    for (auto& v : src) v = static_cast<std::uint8_t>(rng.next() >> 56);
    for (auto& v : base) v = static_cast<std::uint8_t>(rng.next() >> 56);
    for (int c = 0; c < 256; c += 17) {
      std::vector<std::uint8_t> expect = base;
      scalar->gf256_mul_add_row(expect.data(), src.data(),
                                static_cast<std::uint8_t>(c), len);
      // Cross-check against the scalar table arithmetic.
      for (std::size_t i = 0; i < len; ++i) {
        EXPECT_EQ(expect[i],
                  base[i] ^ gf_mul(static_cast<std::uint8_t>(c), src[i]));
      }
      for (const auto& [tier, k] : compiled_tiers()) {
        std::vector<std::uint8_t> got = base;
        k->gf256_mul_add_row(got.data(), src.data(),
                             static_cast<std::uint8_t>(c), len);
        EXPECT_EQ(got, expect)
            << "tier " << simd::tier_name(tier) << " c=" << c
            << " len=" << len;
      }
    }
  }
}

TEST(GaloisSimd, MulRegionMatchesScalarReferenceAtEveryTier) {
  Rng rng(43, 0);
  const BatchKernels* scalar = simd::kernels_for_tier(Tier::kScalar);
  ASSERT_NE(scalar, nullptr);
  for (std::size_t len : {std::size_t{5}, std::size_t{32}, std::size_t{100},
                          std::size_t{513}}) {
    std::vector<std::uint8_t> base(len);
    for (auto& v : base) v = static_cast<std::uint8_t>(rng.next() >> 56);
    for (int c : {0, 1, 2, 29, 128, 255}) {
      std::vector<std::uint8_t> expect = base;
      scalar->gf256_mul_region(expect.data(), static_cast<std::uint8_t>(c),
                               len);
      for (const auto& [tier, k] : compiled_tiers()) {
        std::vector<std::uint8_t> got = base;
        k->gf256_mul_region(got.data(), static_cast<std::uint8_t>(c), len);
        EXPECT_EQ(got, expect)
            << "tier " << simd::tier_name(tier) << " c=" << c
            << " len=" << len;
      }
    }
  }
}

TEST(GaloisSimd, XorRowMatchesScalarReferenceAtEveryTier) {
  Rng rng(44, 0);
  const BatchKernels* scalar = simd::kernels_for_tier(Tier::kScalar);
  ASSERT_NE(scalar, nullptr);
  for (std::size_t len : {std::size_t{3}, std::size_t{16}, std::size_t{47},
                          std::size_t{256}, std::size_t{1000}}) {
    std::vector<std::uint8_t> src(len), base(len);
    for (auto& v : src) v = static_cast<std::uint8_t>(rng.next() >> 56);
    for (auto& v : base) v = static_cast<std::uint8_t>(rng.next() >> 56);
    std::vector<std::uint8_t> expect = base;
    scalar->gf_region_xor(expect.data(), src.data(), len);
    for (std::size_t i = 0; i < len; ++i) {
      EXPECT_EQ(expect[i], base[i] ^ src[i]);
    }
    for (const auto& [tier, k] : compiled_tiers()) {
      std::vector<std::uint8_t> got = base;
      k->gf_region_xor(got.data(), src.data(), len);
      EXPECT_EQ(got, expect) << "tier " << simd::tier_name(tier);
    }
  }
}

TEST(GaloisSimd, RegionOpsMatchScalarMathOnEdgeCoefficients) {
  // c == 0 (no-op / zeroing) and c == 1 (pure XOR / copy) take special
  // branches in every backend; pin their semantics.
  std::vector<std::uint8_t> src{1, 2, 3, 4, 5};
  std::vector<std::uint8_t> dst{9, 9, 9, 9, 9};
  for (const auto& [tier, k] : compiled_tiers()) {
    std::vector<std::uint8_t> d = dst;
    k->gf256_mul_add_row(d.data(), src.data(), 0, d.size());
    EXPECT_EQ(d, dst) << simd::tier_name(tier);  // += 0·src is a no-op
    k->gf256_mul_add_row(d.data(), src.data(), 1, d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(d[i], dst[i] ^ src[i]);
    }
    std::vector<std::uint8_t> r = src;
    k->gf256_mul_region(r.data(), 1, r.size());
    EXPECT_EQ(r, src);
    k->gf256_mul_region(r.data(), 0, r.size());
    EXPECT_EQ(r, std::vector<std::uint8_t>(src.size(), 0));
  }
}

}  // namespace
}  // namespace comimo::coding
