#include "comimo/sensing/energy_detector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/numeric/rng.h"

namespace comimo {
namespace {

TEST(EnergyDetector, ThresholdAboveNoiseFloor) {
  const EnergyDetector det(200, 1.0, 0.05);
  EXPECT_GT(det.threshold(), 1.0);
  // Tighter pfa pushes the threshold up.
  const EnergyDetector strict(200, 1.0, 0.001);
  EXPECT_GT(strict.threshold(), det.threshold());
  // More samples pull it toward the noise floor.
  const EnergyDetector longer(2000, 1.0, 0.05);
  EXPECT_LT(longer.threshold(), det.threshold());
}

TEST(EnergyDetector, EmpiricalFalseAlarmMatchesTarget) {
  const std::size_t n = 400;
  const double pfa = 0.05;
  const EnergyDetector det(n, 1.0, pfa);
  Rng rng(77);
  std::size_t alarms = 0;
  const int windows = 20000;
  std::vector<cplx> w(n);
  for (int t = 0; t < windows; ++t) {
    for (auto& s : w) s = rng.complex_gaussian(1.0);  // noise only
    if (det.sense(w).pu_present) ++alarms;
  }
  EXPECT_NEAR(static_cast<double>(alarms) / windows, pfa, 0.012);
}

TEST(EnergyDetector, EmpiricalDetectionMatchesTheory) {
  const std::size_t n = 300;
  const EnergyDetector det(n, 1.0, 0.1);
  const double snr = db_to_linear(-7.0);
  Rng rng(78);
  std::size_t detections = 0;
  const int windows = 10000;
  std::vector<cplx> w(n);
  for (int t = 0; t < windows; ++t) {
    for (auto& s : w) {
      s = rng.complex_gaussian(1.0) + rng.complex_gaussian(snr);
    }
    if (det.sense(w).pu_present) ++detections;
  }
  const double measured = static_cast<double>(detections) / windows;
  EXPECT_NEAR(measured, det.detection_probability(snr), 0.05);
}

TEST(EnergyDetector, DetectionImprovesWithSnrAndSamples) {
  const EnergyDetector det(500, 1.0, 0.05);
  double prev = 0.0;
  for (const double snr_db : {-15.0, -10.0, -5.0, 0.0}) {
    const double pd = det.detection_probability(db_to_linear(snr_db));
    EXPECT_GE(pd, prev);
    prev = pd;
  }
  const EnergyDetector shorter(100, 1.0, 0.05);
  EXPECT_GT(det.detection_probability(db_to_linear(-10.0)),
            shorter.detection_probability(db_to_linear(-10.0)));
}

TEST(EnergyDetector, FalseAlarmConsistency) {
  const EnergyDetector det(256, 2.5, 0.07);
  EXPECT_NEAR(det.false_alarm_probability(), 0.07, 1e-9);
}

TEST(EnergyDetector, SenseValidatesWindowLength) {
  const EnergyDetector det(64, 1.0, 0.1);
  std::vector<cplx> w(32);
  EXPECT_THROW((void)det.sense(w), InvalidArgument);
}

TEST(EnergyDetector, ConstructionValidation) {
  EXPECT_THROW(EnergyDetector(1, 1.0, 0.1), InvalidArgument);
  EXPECT_THROW(EnergyDetector(64, 0.0, 0.1), InvalidArgument);
  EXPECT_THROW(EnergyDetector(64, 1.0, 0.0), InvalidArgument);
  EXPECT_THROW(EnergyDetector(64, 1.0, 1.0), InvalidArgument);
}

TEST(Roc, MonotoneAndAboveDiagonal) {
  const std::vector<double> grid{0.001, 0.01, 0.05, 0.1, 0.3, 0.5};
  const auto roc = energy_detector_roc(db_to_linear(-8.0), 500, grid);
  ASSERT_EQ(roc.size(), grid.size());
  double prev_pd = 0.0;
  for (const auto& pt : roc) {
    EXPECT_GE(pt.pd, pt.pfa);  // better than guessing
    EXPECT_GE(pt.pd, prev_pd);
    prev_pd = pt.pd;
  }
}

TEST(RequiredSamples, AchievesTheTarget) {
  const double snr = db_to_linear(-10.0);
  const double pfa = 0.05;
  const double pd = 0.9;
  const std::size_t n = required_samples(snr, pfa, pd);
  EXPECT_GT(n, 10u);
  const EnergyDetector det(n, 1.0, pfa);
  EXPECT_GE(det.detection_probability(snr), pd - 0.02);
  // One-tenth the window misses the target.
  const EnergyDetector small(std::max<std::size_t>(2, n / 10), 1.0, pfa);
  EXPECT_LT(small.detection_probability(snr), pd);
}

TEST(RequiredSamples, GrowsAsSnrDrops) {
  // The classic N ∝ 1/snr² law at low SNR.
  const std::size_t n10 = required_samples(db_to_linear(-10.0), 0.05, 0.9);
  const std::size_t n20 = required_samples(db_to_linear(-20.0), 0.05, 0.9);
  EXPECT_NEAR(static_cast<double>(n20) / n10, 100.0, 30.0);
}

TEST(RequiredSamples, Validation) {
  EXPECT_THROW((void)required_samples(0.0, 0.05, 0.9), InvalidArgument);
  EXPECT_THROW((void)required_samples(0.1, 0.9, 0.5), InvalidArgument);
}

}  // namespace
}  // namespace comimo
