#include "comimo/phy/stbc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/channel/awgn.h"
#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/phy/ber.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/modulation.h"

namespace comimo {
namespace {

TEST(StbcCode, AlamoutiLayout) {
  const StbcCode code = StbcCode::alamouti();
  EXPECT_EQ(code.num_tx(), 2u);
  EXPECT_EQ(code.block_length(), 2u);
  EXPECT_EQ(code.symbols_per_block(), 2u);
  EXPECT_DOUBLE_EQ(code.rate(), 1.0);
  const std::vector<cplx> s{{1.0, 2.0}, {3.0, -1.0}};
  const CMatrix c = code.encode(s);
  const double ps = code.power_scale();
  EXPECT_NEAR(std::abs(c(0, 0) - s[0] * ps), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(c(0, 1) - s[1] * ps), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(c(1, 0) + std::conj(s[1]) * ps), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(c(1, 1) - std::conj(s[0]) * ps), 0.0, 1e-14);
}

class OrthogonalDesign : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrthogonalDesign, SatisfiesOrthogonality) {
  const StbcCode code = StbcCode::for_antennas(GetParam());
  EXPECT_TRUE(code.is_orthogonal_design());
}

TEST_P(OrthogonalDesign, RateMatchesDesign) {
  const StbcCode code = StbcCode::for_antennas(GetParam());
  const std::size_t n = GetParam();
  if (n <= 2) {
    EXPECT_DOUBLE_EQ(code.rate(), 1.0);
  } else {
    EXPECT_DOUBLE_EQ(code.rate(), 0.5);
  }
}

TEST_P(OrthogonalDesign, NoiseFreeDecodingIsExact) {
  const std::size_t mt = GetParam();
  const StbcCode code = StbcCode::for_antennas(mt);
  const StbcDecoder decoder(code);
  Rng rng(100 + mt);
  for (std::size_t mr = 1; mr <= 3; ++mr) {
    for (int trial = 0; trial < 20; ++trial) {
      std::vector<cplx> s(code.symbols_per_block());
      for (auto& v : s) v = rng.complex_gaussian();
      const CMatrix h = CMatrix::random_gaussian(mr, mt, rng);
      const CMatrix c = code.encode(s);
      // received(t, j) = Σ_i c(t,i)·h(j,i)
      CMatrix r(code.block_length(), mr);
      for (std::size_t t = 0; t < code.block_length(); ++t) {
        for (std::size_t j = 0; j < mr; ++j) {
          cplx acc{0.0, 0.0};
          for (std::size_t i = 0; i < mt; ++i) acc += c(t, i) * h(j, i);
          r(t, j) = acc;
        }
      }
      const auto decoded = decoder.decode(h, r);
      for (std::size_t k = 0; k < s.size(); ++k) {
        EXPECT_NEAR(std::abs(decoded[k] - s[k]), 0.0, 1e-9)
            << "mt=" << mt << " mr=" << mr << " k=" << k;
      }
    }
  }
}

TEST_P(OrthogonalDesign, CombiningGainIsFrobenius) {
  const std::size_t mt = GetParam();
  const StbcCode code = StbcCode::for_antennas(mt);
  const StbcDecoder decoder(code);
  Rng rng(200 + mt);
  const CMatrix h = CMatrix::random_gaussian(2, mt, rng);
  EXPECT_NEAR(decoder.combining_gain(h),
              h.frobenius_norm2() / static_cast<double>(mt), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Antennas, OrthogonalDesign,
                         ::testing::Values(1, 2, 3, 4));

TEST(StbcCode, PerAntennaPowerNormalization) {
  // Total radiated energy per block must equal K symbol energies
  // regardless of the antenna count (the 1/mt split of the paper).
  Rng rng(321);
  for (std::size_t mt : {1u, 2u, 4u}) {
    const StbcCode code = StbcCode::for_antennas(mt);
    std::vector<cplx> s(code.symbols_per_block());
    double sym_energy = 0.0;
    for (auto& v : s) {
      v = rng.complex_gaussian();
      sym_energy += std::norm(v);
    }
    const CMatrix c = code.encode(s);
    double tx_energy = c.frobenius_norm2();
    if (mt <= 2) {
      EXPECT_NEAR(tx_energy, sym_energy, 1e-9) << "mt=" << mt;
    } else {
      // Rate-1/2 designs transmit each symbol twice (once conjugated).
      EXPECT_NEAR(tx_energy, 2.0 * sym_energy, 1e-9) << "mt=" << mt;
    }
  }
}

TEST(StbcCode, SymbolWeightMatchesRate) {
  EXPECT_DOUBLE_EQ(StbcCode::siso().symbol_weight(), 1.0);
  EXPECT_DOUBLE_EQ(StbcCode::alamouti().symbol_weight(), 1.0);
  EXPECT_DOUBLE_EQ(StbcCode::g3().symbol_weight(), 2.0);
  EXPECT_DOUBLE_EQ(StbcCode::g4().symbol_weight(), 2.0);
}

TEST(StbcCode, ForAntennasRejectsOutOfRange) {
  EXPECT_THROW(StbcCode::for_antennas(0), InvalidArgument);
  EXPECT_THROW(StbcCode::for_antennas(5), InvalidArgument);
}

TEST(StbcCode, EncodeRejectsWrongSymbolCount) {
  const StbcCode code = StbcCode::alamouti();
  const std::vector<cplx> wrong(3, cplx{1.0, 0.0});
  EXPECT_THROW((void)code.encode(wrong), InvalidArgument);
}

TEST(StbcDecoder, ShapeChecks) {
  const StbcDecoder decoder(StbcCode::alamouti());
  const CMatrix h(2, 2);  // 2 rx, 2 tx (singular but shape-valid)
  EXPECT_THROW((void)decoder.decode(CMatrix(2, 3), CMatrix(2, 2)),
               InvalidArgument);
  EXPECT_THROW((void)decoder.decode(h, CMatrix(3, 2)), InvalidArgument);
  EXPECT_THROW((void)decoder.decode(h, CMatrix(2, 1)), InvalidArgument);
}

TEST(StbcDecoder, AlamoutiBerMatchesDiversityTheory) {
  // Alamouti 2×1 with total-power normalization has the BER of 2-branch
  // MRC at half the branch SNR: E[Q(√(2·(γ/2)·x))], x ~ Gamma(2,1).
  const StbcCode code = StbcCode::alamouti();
  const StbcDecoder decoder(code);
  const BpskModulator modem;
  const double gamma_db = 8.0;
  const double gamma = std::pow(10.0, gamma_db / 10.0);
  const double n0 = 1.0 / gamma;

  Rng rng(42);
  AwgnChannel noise(n0, Rng(43));
  std::size_t errors = 0;
  std::size_t bits_total = 0;
  const int blocks = 40000;
  for (int blk = 0; blk < blocks; ++blk) {
    const BitVec bits = random_bits(2, 1000 + blk);
    const auto s = modem.modulate(bits);
    const CMatrix h = CMatrix::random_gaussian(1, 2, rng);
    const CMatrix c = code.encode(s);
    CMatrix r(2, 1);
    for (std::size_t t = 0; t < 2; ++t) {
      r(t, 0) = c(t, 0) * h(0, 0) + c(t, 1) * h(0, 1) + noise.sample();
    }
    const auto est = decoder.decode(h, r);
    const BitVec decoded = modem.demodulate(est);
    errors += count_bit_errors(bits, decoded);
    bits_total += 2;
  }
  const double measured = static_cast<double>(errors) / bits_total;
  // ber_mqam_rayleigh_mimo takes γ per unit ‖H‖² — the total-power
  // normalization spreads γ over mt = 2 branches.
  const double theory = ber_mqam_rayleigh_mimo(1, gamma / 2.0, 2, 1);
  EXPECT_NEAR(measured, theory, theory * 0.25)
      << "measured " << measured << " vs theory " << theory;
}

}  // namespace
}  // namespace comimo
