// Tests of the interweave coexistence experiment — §5's core claim
// that null steering lets the SUs share time and frequency with "no
// additional interference".
#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/testbed/experiments.h"

namespace comimo {
namespace {

InterweaveCoexistenceConfig base() {
  InterweaveCoexistenceConfig cfg;
  cfg.total_bits = 60000;
  cfg.seed = 3;
  return cfg;
}

TEST(Coexistence, NullSteeringProtectsThePrimary) {
  const auto r = run_interweave_coexistence(base());
  // Un-nulled simultaneous transmission wrecks the PU link…
  EXPECT_GT(r.pr_ber_unnulled, 3.0 * r.pr_ber_baseline);
  // …while the nulled pair leaves it close to the baseline.
  EXPECT_LT(r.pr_ber_nulled, 2.0 * r.pr_ber_baseline + 1e-4);
  // And the secondary link itself works.
  EXPECT_LT(r.sr_ber_nulled, 0.02);
}

TEST(Coexistence, IdealNullIsStatisticallyInvisible) {
  InterweaveCoexistenceConfig cfg = base();
  cfg.null_residual = 0.0;
  const auto r = run_interweave_coexistence(cfg);
  // Identical noise stream + zero residual ⇒ identical decisions.
  EXPECT_DOUBLE_EQ(r.pr_ber_nulled, r.pr_ber_baseline);
}

TEST(Coexistence, LargerResidualHurtsMore) {
  InterweaveCoexistenceConfig small = base();
  small.null_residual = 0.05;
  InterweaveCoexistenceConfig large = base();
  large.null_residual = 0.6;
  const auto r_small = run_interweave_coexistence(small);
  const auto r_large = run_interweave_coexistence(large);
  EXPECT_GE(r_large.pr_ber_nulled, r_small.pr_ber_nulled);
}

TEST(Coexistence, StrongerInterferenceWorsensUnnulledCase) {
  InterweaveCoexistenceConfig weak = base();
  weak.su_inr_db = 0.0;
  InterweaveCoexistenceConfig strong = base();
  strong.su_inr_db = 10.0;
  const auto r_weak = run_interweave_coexistence(weak);
  const auto r_strong = run_interweave_coexistence(strong);
  EXPECT_GT(r_strong.pr_ber_unnulled, r_weak.pr_ber_unnulled);
}

TEST(Coexistence, Validation) {
  InterweaveCoexistenceConfig cfg = base();
  cfg.total_bits = 0;
  EXPECT_THROW((void)run_interweave_coexistence(cfg), InvalidArgument);
  cfg = base();
  cfg.null_residual = 3.0;
  EXPECT_THROW((void)run_interweave_coexistence(cfg), InvalidArgument);
}

}  // namespace
}  // namespace comimo
