#include "comimo/numeric/quadrature.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/special.h"

namespace comimo {
namespace {

TEST(GaussLaguerre, WeightsSumToGammaAlphaPlusOne) {
  // ∫ x^α e^{-x} dx = Γ(α+1).
  for (double alpha : {0.0, 1.0, 2.5, 5.0}) {
    const auto rule = gauss_laguerre(32, alpha);
    double sum = 0.0;
    for (const double w : rule.weights) sum += w;
    const double expected = std::exp(log_gamma(alpha + 1.0));
    EXPECT_NEAR(sum, expected, expected * 1e-10) << "alpha=" << alpha;
  }
}

TEST(GaussLaguerre, IntegratesPolynomialsExactly) {
  // An n-point rule is exact for degree ≤ 2n−1:
  // ∫ x^α e^{-x} x^k dx = Γ(α+k+1).
  const double alpha = 1.5;
  const auto rule = gauss_laguerre(16, alpha);
  for (int k = 0; k <= 20; ++k) {
    const double got =
        rule.integrate([k](double x) { return std::pow(x, k); });
    const double expected = std::exp(log_gamma(alpha + k + 1.0));
    EXPECT_NEAR(got, expected, expected * 1e-8) << "k=" << k;
  }
}

TEST(GaussLaguerre, NodesPositiveAndSorted) {
  const auto rule = gauss_laguerre(64, 3.0);
  double prev = 0.0;
  for (const double x : rule.nodes) {
    EXPECT_GT(x, prev);
    prev = x;
  }
  for (const double w : rule.weights) EXPECT_GT(w, 0.0);
}

TEST(GaussLaguerre, InvalidArgumentsThrow) {
  EXPECT_THROW(gauss_laguerre(0, 0.0), InvalidArgument);
  EXPECT_THROW(gauss_laguerre(300, 0.0), InvalidArgument);
  EXPECT_THROW(gauss_laguerre(8, -1.5), InvalidArgument);
}

TEST(GammaExpectation, ConstantFunction) {
  EXPECT_NEAR(gamma_expectation([](double) { return 3.0; }, 2.5), 3.0,
              1e-10);
}

TEST(GammaExpectation, MeanAndSecondMoment) {
  for (double shape : {1.0, 2.0, 6.0}) {
    EXPECT_NEAR(gamma_expectation([](double x) { return x; }, shape),
                shape, shape * 1e-10);
    EXPECT_NEAR(
        gamma_expectation([](double x) { return x * x; }, shape),
        shape * (shape + 1.0), shape * (shape + 1.0) * 1e-10);
  }
}

TEST(GammaExpectation, ExponentialViaMgf) {
  // E[e^{-t x}] = (1+t)^{-k}.
  const double t = 0.7;
  for (double shape : {1.0, 3.0, 6.0}) {
    const double got = gamma_expectation(
        [t](double x) { return std::exp(-t * x); }, shape, 96);
    EXPECT_NEAR(got, std::pow(1.0 + t, -shape), 1e-6) << shape;
  }
}

TEST(GammaExpectation, InvalidShapeThrows) {
  EXPECT_THROW(gamma_expectation([](double) { return 1.0; }, 0.0),
               InvalidArgument);
}

}  // namespace
}  // namespace comimo
