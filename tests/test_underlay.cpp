#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/underlay/compliance.h"
#include "comimo/underlay/cooperative_hop.h"
#include "comimo/underlay/pa_budget.h"

namespace comimo {
namespace {

UnderlayHopConfig fig7_config(unsigned mt, unsigned mr, double d = 200.0) {
  UnderlayHopConfig cfg;
  cfg.mt = mt;
  cfg.mr = mr;
  cfg.hop_distance_m = d;
  cfg.cluster_diameter_m = 1.0;
  cfg.ber = 1e-3;
  cfg.bandwidth_hz = 40e3;
  return cfg;
}

TEST(UnderlayHop, PlanPicksFeasibleConstellation) {
  const UnderlayCooperativeHop planner;
  const UnderlayHopPlan plan = planner.plan(fig7_config(2, 3));
  EXPECT_GE(plan.b, kMinConstellationBits);
  EXPECT_LE(plan.b, kMaxConstellationBits);
  EXPECT_GT(plan.ebar, 0.0);
  EXPECT_GT(plan.mimo_tx_pa, 0.0);
  EXPECT_GT(plan.total_pa(), 0.0);
  EXPECT_GT(plan.total_energy(), plan.total_pa());
}

TEST(UnderlayHop, PeakPaFormula) {
  const UnderlayCooperativeHop planner;
  const UnderlayHopPlan plan = planner.plan(fig7_config(2, 3));
  EXPECT_DOUBLE_EQ(plan.peak_pa(),
                   std::max(plan.local_tx_pa, 2.0 * plan.mimo_tx_pa));
}

TEST(UnderlayHop, SisoHasNoLocalSteps) {
  const UnderlayCooperativeHop planner;
  const UnderlayHopPlan plan = planner.plan(fig7_config(1, 1));
  // total_pa for SISO is exactly one long-haul transmission.
  EXPECT_DOUBLE_EQ(plan.total_pa(), plan.mimo_tx_pa);
  EXPECT_DOUBLE_EQ(plan.peak_pa(), plan.mimo_tx_pa);
}

TEST(UnderlayHop, SisoNeedsOrdersOfMagnitudeMoreThanMimo) {
  // Fig. 7's headline: "the difference of magnitude is 2 to 4 orders"
  // (100–10000×).  Our closed-form ē_b lands at the low edge of that
  // range at p = 1e-3 (≈97× for 2×3); require roughly-two-orders.
  const UnderlayCooperativeHop planner;
  const double siso = planner.plan(fig7_config(1, 1)).total_pa();
  const double mimo23 = planner.plan(fig7_config(2, 3)).total_pa();
  EXPECT_GT(siso / mimo23, 50.0);
  EXPECT_LT(siso / mimo23, 1e5);
}

TEST(UnderlayHop, FewerTransmittersThanReceiversIsCheapest) {
  // §6.2: the (mt < mr) cases are the lowest because long-haul
  // transmission dominates.
  const UnderlayCooperativeHop planner;
  const double e12 = planner.plan(fig7_config(1, 2)).total_pa();
  const double e21 = planner.plan(fig7_config(2, 1)).total_pa();
  EXPECT_LT(e12, e21);
}

TEST(UnderlayHop, TotalPaGrowsWithDistance) {
  const UnderlayCooperativeHop planner;
  const double near = planner.plan(fig7_config(2, 2, 100.0)).total_pa();
  const double far = planner.plan(fig7_config(2, 2, 300.0)).total_pa();
  EXPECT_GT(far, near);
}

TEST(UnderlayHop, ClusterDiameterBarelyMatters) {
  // §6.2: "the value of d doesn't give any big impact" (at d ≤ 16 m the
  // local κ-law term stays far below the long-haul term).
  const UnderlayCooperativeHop planner;
  const double d1 = planner.plan(fig7_config(2, 3, 200.0)).total_pa();
  UnderlayHopConfig cfg = fig7_config(2, 3, 200.0);
  cfg.cluster_diameter_m = 16.0;
  const double d16 = planner.plan(cfg).total_pa();
  EXPECT_LT(d16 / d1, 3.0);
}

TEST(UnderlayHop, SelectionRulesAgreeOnOrderOfMagnitude) {
  const UnderlayCooperativeHop planner;
  const auto cfg = fig7_config(2, 2);
  const double by_ebar =
      planner.plan(cfg, BSelectionRule::kMinEbar).total_pa();
  const double by_total =
      planner.plan(cfg, BSelectionRule::kMinTotalPa).total_pa();
  EXPECT_LE(by_total, by_ebar * (1.0 + 1e-12));
  EXPECT_GT(by_total, by_ebar * 0.01);
}

TEST(UnderlayHop, ValidatesConfig) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg = fig7_config(0, 1);
  EXPECT_THROW((void)planner.plan(cfg), InvalidArgument);
  cfg = fig7_config(1, 1);
  cfg.hop_distance_m = 0.0;
  EXPECT_THROW((void)planner.plan(cfg), InvalidArgument);
}

// --- PA budget sweep (Fig. 7 harness) -----------------------------------

TEST(PaBudgetSweep, SeriesShapesMatchFig7) {
  const PaBudgetSweep sweep;
  const std::vector<double> distances{100.0, 200.0, 300.0};
  const auto grid =
      sweep.sweep_grid(2, 3, distances, 1.0, 1e-3, 40e3);
  ASSERT_EQ(grid.size(), 6u);
  for (const auto& series : grid) {
    ASSERT_EQ(series.points.size(), 3u);
    // Monotone increasing in distance.
    EXPECT_LT(series.points[0].plan.total_pa(),
              series.points[2].plan.total_pa());
  }
  // SISO (first series) dominates every cooperative one at every D.
  const auto& siso = grid.front();
  for (std::size_t s = 1; s < grid.size(); ++s) {
    for (std::size_t i = 0; i < distances.size(); ++i) {
      EXPECT_GT(siso.points[i].plan.total_pa(),
                grid[s].points[i].plan.total_pa())
          << "series " << grid[s].mt << "x" << grid[s].mr;
    }
  }
}

// --- compliance ------------------------------------------------------------

TEST(UnderlayCompliance, CooperativeHopSitsBelowSisoReference) {
  const UnderlayCooperativeHop planner;
  const UnderlayComplianceChecker checker;
  const UnderlayHopPlan plan = planner.plan(fig7_config(2, 3));
  const UnderlayComplianceReport rpt = checker.check(plan, 50.0);
  EXPECT_TRUE(rpt.paper_compliant());
  EXPECT_GT(rpt.relative_to_siso_db, 10.0);
  EXPECT_DOUBLE_EQ(rpt.peak_pa_energy, plan.peak_pa());
}

TEST(UnderlayCompliance, SisoHopIsItsOwnReference) {
  const UnderlayCooperativeHop planner;
  const UnderlayComplianceChecker checker;
  const UnderlayHopPlan plan = planner.plan(fig7_config(1, 1));
  const UnderlayComplianceReport rpt = checker.check(plan, 50.0);
  EXPECT_NEAR(rpt.relative_to_siso_db, 0.0, 1e-9);
}

TEST(UnderlayCompliance, StrictPhysicsReportedHonestly) {
  // The strict received-PSD-vs-thermal-floor check fails for narrowband
  // underlay at these power levels (see compliance.h); the report must
  // say so rather than flatter the design.
  const UnderlayCooperativeHop planner;
  const UnderlayComplianceChecker checker;
  const UnderlayHopPlan plan = planner.plan(fig7_config(2, 3));
  const UnderlayComplianceReport rpt = checker.check(plan, 50.0);
  EXPECT_FALSE(rpt.worst_moment.compliant());
  EXPECT_LT(rpt.worst_moment.margin_db, 0.0);
}

}  // namespace
}  // namespace comimo
