// Large-n scale checks for the grid-indexed network engine.  These run
// well beyond unit-test sizes (up to 10⁶ SUs), so they are built into
// their own `comimo_netscale_tests` binary (ctest label `netscale`,
// excluded from the default run) and additionally skip unless
// COMIMO_NETSCALE=1 — CI sets it; locally they are opt-in.
#include <gtest/gtest.h>

#include <cstdlib>

#include "comimo/net/comimonet.h"
#include "comimo/net/routing.h"
#include "comimo/net/spanning_tree.h"

namespace comimo {
namespace {

bool netscale_enabled() {
  const char* v = std::getenv("COMIMO_NETSCALE");
  return v != nullptr && v[0] == '1';
}

#define COMIMO_REQUIRE_NETSCALE()                                   \
  if (!netscale_enabled()) {                                        \
    GTEST_SKIP() << "set COMIMO_NETSCALE=1 to run scale tests";     \
  }

// Grouped geometry scaled so link counts stay near-linear in n: groups
// of ~4 nodes, field width 150·sqrt(groups) keeps group density (and
// thus backbone degree) constant as n grows.
std::vector<SuNode> scale_field(std::size_t n, std::uint64_t seed) {
  const std::size_t groups = std::max<std::size_t>(1, n / 4);
  const double width = 150.0 * std::sqrt(static_cast<double>(groups));
  return clustered_field(groups, 4, 5.0, width, width, seed);
}

CoMimoNetConfig scale_config() {
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 45.0;
  cfg.cluster_diameter_m = 14.0;
  cfg.link_range_m = 220.0;
  cfg.index_mode = NetIndexMode::kGrid;
  return cfg;
}

TEST(NetScale, HundredThousandNodesClusterRouteAndStayBounded) {
  COMIMO_REQUIRE_NETSCALE();
  const std::size_t n = 100'000;
  const auto nodes = scale_field(n, 21);
  const CoMimoNet net(nodes, scale_config());
  EXPECT_EQ(net.nodes().size(), n);
  EXPECT_GT(net.clusters().size(), n / 8);
  EXPECT_GT(net.links().size(), net.clusters().size() / 2);
  // Bounded memory: the engine must stay O(n) with a small constant.
  EXPECT_LE(net.approx_bytes() / n, std::size_t{512});
  const RoutingBackbone backbone(net);
  EXPECT_EQ(backbone.tree_edges().size(),
            net.clusters().size() - backbone.num_components());
}

TEST(NetScale, MillionNodesAdmittedAndIncrementallyRecustered) {
  COMIMO_REQUIRE_NETSCALE();
  const std::size_t n = 1'000'000;
  const auto nodes = scale_field(n, 42);
  CoMimoNet net(nodes, scale_config());
  ASSERT_EQ(net.nodes().size(), n);
  EXPECT_LE(net.approx_bytes() / n, std::size_t{512});

  const RoutingBackbone backbone(net);
  EXPECT_GT(backbone.tree_edges().size(), 0u);

  // A kill wave at the million-node scale must go through the
  // incremental path and leave the invariants intact.
  std::vector<NodeId> kill;
  for (NodeId id = 5; id < 2000; id += 13) kill.push_back(id);
  net.remove_nodes(kill);
  EXPECT_EQ(net.nodes().size(), n - kill.size());
  ASSERT_TRUE(net.validate());
}

// At a mid scale the grid engine must still match the O(n²) reference
// exactly — the differential contract does not decay with n.
TEST(NetScale, MidScaleGridStillBitIdenticalToReference) {
  COMIMO_REQUIRE_NETSCALE();
  const std::size_t n = 4096;
  const auto nodes = scale_field(n, 7);
  CoMimoNetConfig grid_cfg = scale_config();
  CoMimoNetConfig ref_cfg = scale_config();
  ref_cfg.index_mode = NetIndexMode::kReference;
  const CoMimoNet grid(nodes, grid_cfg);
  const CoMimoNet ref(nodes, ref_cfg);
  ASSERT_EQ(grid.clusters().size(), ref.clusters().size());
  for (std::size_t c = 0; c < grid.clusters().size(); ++c) {
    ASSERT_EQ(grid.clusters()[c].members, ref.clusters()[c].members);
    ASSERT_EQ(grid.clusters()[c].head, ref.clusters()[c].head);
  }
  ASSERT_EQ(grid.links().size(), ref.links().size());
  for (std::size_t l = 0; l < grid.links().size(); ++l) {
    ASSERT_EQ(grid.links()[l].a, ref.links()[l].a);
    ASSERT_EQ(grid.links()[l].b, ref.links()[l].b);
    ASSERT_EQ(grid.links()[l].length_m, ref.links()[l].length_m);
  }
}

}  // namespace
}  // namespace comimo
