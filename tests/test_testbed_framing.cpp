// Tests for CRC-32, framing, the flowgraph, the DF relay and the
// synthetic image pipeline.
#include <gtest/gtest.h>

#include <memory>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/phy/detector.h"
#include "comimo/testbed/blocks.h"
#include "comimo/testbed/crc32.h"
#include "comimo/testbed/flowgraph.h"
#include "comimo/testbed/framing.h"
#include "comimo/testbed/image.h"
#include "comimo/testbed/relay.h"

namespace comimo {
namespace {

// --- CRC-32 -------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // The canonical check value: CRC-32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  const std::vector<std::uint8_t> bytes(s.begin(), s.end());
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
  // Empty input.
  EXPECT_EQ(crc32({}), 0x00000000u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  Crc32 inc;
  inc.update(std::span<const std::uint8_t>(data).subspan(0, 4));
  inc.update(std::span<const std::uint8_t>(data).subspan(4));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0x55);
  const std::uint32_t good = crc32(data);
  for (std::size_t i = 0; i < data.size(); i += 7) {
    auto corrupted = data;
    corrupted[i] ^= 0x04;
    EXPECT_NE(crc32(corrupted), good) << "byte " << i;
  }
}

TEST(Crc32, ResetRestartsState) {
  Crc32 crc;
  crc.update(0xAB);
  crc.reset();
  const std::vector<std::uint8_t> data{0xCD};
  crc.update(data);
  EXPECT_EQ(crc.value(), crc32(data));
}

// --- framing ----------------------------------------------------------

TEST(Framer, RoundTrip) {
  const Framer framer;
  Packet p;
  p.sequence = 1234;
  p.payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const BitVec bits = framer.frame(p);
  EXPECT_EQ(bits.size(), framer.frame_bits(4));
  const auto parsed = framer.parse(bits);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sequence, 1234);
  EXPECT_EQ(parsed->payload, p.payload);
}

TEST(Framer, EmptyPayloadRoundTrip) {
  const Framer framer;
  Packet p;
  p.sequence = 7;
  const auto parsed = framer.parse(framer.frame(p));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(Framer, CorruptPayloadFailsCrc) {
  const Framer framer;
  Packet p;
  p.sequence = 9;
  p.payload.assign(100, 0x42);
  BitVec bits = framer.frame(p);
  bits[bits.size() / 2] ^= 1;
  EXPECT_FALSE(framer.parse(bits).has_value());
}

TEST(Framer, CorruptSyncWordRejected) {
  const Framer framer;
  Packet p;
  p.payload = {1, 2, 3};
  BitVec bits = framer.frame(p);
  // Flip a bit in the sync word (first bit after the preamble).
  bits[framer.config().preamble_bytes * 8] ^= 1;
  EXPECT_FALSE(framer.parse(bits).has_value());
}

TEST(Framer, CorruptLengthRejected) {
  const Framer framer;
  Packet p;
  p.payload.assign(10, 0xAA);
  BitVec bits = framer.frame(p);
  // Flip the length MSB → implied size no longer matches the frame.
  bits[(framer.config().preamble_bytes + 2) * 8] ^= 1;
  EXPECT_FALSE(framer.parse(bits).has_value());
}

TEST(Framer, PreambleCorruptionIsHarmless) {
  // The preamble only trains the receiver; its bits are not covered by
  // the CRC.
  const Framer framer;
  Packet p;
  p.payload = {9, 8, 7};
  BitVec bits = framer.frame(p);
  bits[3] ^= 1;
  EXPECT_TRUE(framer.parse(bits).has_value());
}

TEST(Framer, OversizePayloadRejected) {
  const Framer framer;
  Packet p;
  p.payload.assign(framer.config().max_payload + 1, 0);
  EXPECT_THROW((void)framer.frame(p), InvalidArgument);
}

TEST(Framer, TruncatedBitsRejected) {
  const Framer framer;
  Packet p;
  p.payload.assign(20, 1);
  BitVec bits = framer.frame(p);
  bits.resize(bits.size() - 16);
  EXPECT_FALSE(framer.parse(bits).has_value());
  bits.resize(5);  // not even byte-aligned
  EXPECT_FALSE(framer.parse(bits).has_value());
}

// --- flowgraph -----------------------------------------------------------

TEST(Flowgraph, ChainsBlocksInOrder) {
  Flowgraph fg;
  fg.add(std::make_unique<GainBlock>(cplx{2.0, 0.0}))
      .add(std::make_unique<PhaseRotationBlock>(kPi));
  const auto out = fg.run({cplx{1.0, 0.0}});
  EXPECT_NEAR(std::abs(out[0] - cplx{-2.0, 0.0}), 0.0, 1e-12);
  EXPECT_EQ(fg.size(), 2u);
  EXPECT_EQ(fg.describe(), "gain -> phase");
}

TEST(Flowgraph, RejectsNullBlock) {
  Flowgraph fg;
  EXPECT_THROW(fg.add(nullptr), InvalidArgument);
}

TEST(Blocks, NoiseBlockAddsNoise) {
  Flowgraph fg;
  fg.add(std::make_unique<NoiseBlock>(1.0, Rng(3)));
  const std::vector<cplx> in(64, cplx{1.0, 0.0});
  const auto out = fg.run(in);
  double diff = 0.0;
  for (std::size_t i = 0; i < in.size(); ++i) diff += std::abs(out[i] - in[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Blocks, ChannelBlockAppliesMeanGain) {
  IndoorLinkConfig cfg;
  cfg.gain_db = -20.0;
  cfg.multipath.k_factor = 1e6;  // effectively deterministic
  Flowgraph fg;
  fg.add(std::make_unique<ChannelBlock>(cfg, Rng(4)));
  const auto out = fg.run({cplx{1.0, 0.0}});
  EXPECT_NEAR(std::abs(out[0]), 0.1, 0.01);
}

// --- relay -----------------------------------------------------------------

TEST(Relay, CleanChannelForwardsPerfectly) {
  const DecodeForwardRelay relay;
  const BpskModulator modem;
  const BitVec bits = random_bits(500, 5);
  auto rx = modem.modulate(bits);
  const cplx gain{0.3, -0.4};
  for (auto& s : rx) s *= gain;
  const BitVec decoded = relay.decode(rx, gain);
  EXPECT_EQ(decoded, bits);
  const auto fwd = relay.relay(rx, gain);
  EXPECT_EQ(modem.demodulate(fwd), bits);
}

TEST(Relay, ErrorsPropagate) {
  // A relay that decodes wrongly forwards its wrong decision with full
  // confidence — DF error propagation.
  const DecodeForwardRelay relay;
  const BpskModulator modem;
  const BitVec bits{0, 1};
  auto rx = modem.modulate(bits);
  rx[0] = cplx{-2.0, 0.0};  // force a decision error on bit 0
  const auto fwd = relay.relay(rx, cplx{1.0, 0.0});
  const BitVec decoded = modem.demodulate(fwd);
  EXPECT_EQ(decoded[0], 1);  // wrong, and confidently so
  EXPECT_EQ(decoded[1], 1);
}

// --- image ------------------------------------------------------------------

TEST(Image, SizeMatchesPacketBudget) {
  const SyntheticImage img = make_test_image(474, 1500);
  EXPECT_EQ(img.size_bytes(), 474u * 1500u);
  EXPECT_EQ(packetize(img, 1500).size(), 474u);
}

TEST(Image, PacketizeReassembleLossless) {
  const SyntheticImage img = make_test_image(20, 100);
  const auto packets = packetize(img, 100);
  const ReassemblyReport rpt = reassemble(img, packets, 100);
  EXPECT_EQ(rpt.packets_received, 20u);
  EXPECT_DOUBLE_EQ(rpt.packet_error_rate, 0.0);
  EXPECT_DOUBLE_EQ(rpt.mean_abs_error, 0.0);
  EXPECT_TRUE(rpt.recoverable());
}

TEST(Image, LostPacketsCauseDistortion) {
  const SyntheticImage img = make_test_image(20, 100);
  auto packets = packetize(img, 100);
  packets.erase(packets.begin() + 5, packets.begin() + 10);  // drop 5
  const ReassemblyReport rpt = reassemble(img, packets, 100);
  EXPECT_EQ(rpt.packets_received, 15u);
  EXPECT_NEAR(rpt.packet_error_rate, 0.25, 1e-12);
  EXPECT_GT(rpt.mean_abs_error, 0.0);
  EXPECT_TRUE(rpt.recoverable());
}

TEST(Image, TotalLossIsUnrecoverable) {
  const SyntheticImage img = make_test_image(10, 100);
  const ReassemblyReport rpt = reassemble(img, {}, 100);
  EXPECT_DOUBLE_EQ(rpt.packet_error_rate, 1.0);
  EXPECT_FALSE(rpt.recoverable());
}

TEST(Image, BogusSequenceNumbersIgnored) {
  const SyntheticImage img = make_test_image(10, 100);
  std::vector<Packet> packets = packetize(img, 100);
  Packet bogus;
  bogus.sequence = 5000;
  bogus.payload.assign(100, 0xFF);
  packets.push_back(bogus);
  const ReassemblyReport rpt = reassemble(img, packets, 100);
  EXPECT_EQ(rpt.packets_received, 10u);
  EXPECT_DOUBLE_EQ(rpt.mean_abs_error, 0.0);
}

TEST(Image, DeterministicContent) {
  const SyntheticImage a = make_test_image(5, 100);
  const SyntheticImage b = make_test_image(5, 100);
  EXPECT_EQ(a.pixels, b.pixels);
}

}  // namespace
}  // namespace comimo
