#include "comimo/numeric/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats all;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, Ci95Coverage) {
  // The CI half-width should shrink as 1/√n.
  Rng rng(2);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 100; ++i) small.add(rng.gaussian());
  for (int i = 0; i < 10000; ++i) large.add(rng.gaussian());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width() * 5.0);
}

TEST(Percentile, KnownQuartiles) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(data, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(data, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(data, 25.0), 2.0);
  // Interpolated value.
  EXPECT_DOUBLE_EQ(percentile(data, 10.0), 1.4);
}

TEST(Percentile, ErrorsOnBadInput) {
  EXPECT_THROW(percentile({}, 50.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, -1.0), InvalidArgument);
  EXPECT_THROW(percentile({1.0}, 101.0), InvalidArgument);
}

TEST(EstimateRate, PointEstimate) {
  const RateEstimate e = estimate_rate(25, 100);
  EXPECT_DOUBLE_EQ(e.rate, 0.25);
  EXPECT_GT(e.wilson_hi, e.rate);
  EXPECT_LT(e.wilson_lo, e.rate);
  EXPECT_GE(e.wilson_lo, 0.0);
  EXPECT_LE(e.wilson_hi, 1.0);
}

TEST(EstimateRate, ExtremesStayInUnitInterval) {
  const RateEstimate zero = estimate_rate(0, 50);
  EXPECT_DOUBLE_EQ(zero.rate, 0.0);
  EXPECT_GE(zero.wilson_lo, 0.0);
  EXPECT_GT(zero.wilson_hi, 0.0);  // Wilson never collapses to a point
  const RateEstimate one = estimate_rate(50, 50);
  EXPECT_DOUBLE_EQ(one.rate, 1.0);
  EXPECT_LT(one.wilson_lo, 1.0);
  EXPECT_LE(one.wilson_hi, 1.0);
}

TEST(EstimateRate, IntervalShrinksWithTrials) {
  const RateEstimate small = estimate_rate(5, 20);
  const RateEstimate large = estimate_rate(500, 2000);
  EXPECT_GT(small.wilson_hi - small.wilson_lo,
            large.wilson_hi - large.wilson_lo);
}

TEST(EstimateRate, InvalidInputsThrow) {
  EXPECT_THROW(estimate_rate(1, 0), InvalidArgument);
  EXPECT_THROW(estimate_rate(5, 4), InvalidArgument);
}

TEST(EstimateRate, AcceptsCountsAbove32Bits) {
  // The signature is uint64_t so bit-level counters (10^10+ bits per
  // long BER campaign) never narrow through size_t.
  const std::uint64_t trials = (1ULL << 33) + 7;  // > 2^32
  const std::uint64_t successes = 1ULL << 31;
  const RateEstimate est = estimate_rate(successes, trials);
  const double expected =
      static_cast<double>(successes) / static_cast<double>(trials);
  EXPECT_DOUBLE_EQ(est.rate, expected);
  EXPECT_GT(est.wilson_lo, 0.0);
  EXPECT_LT(est.wilson_hi, 1.0);
}

TEST(RunningStats, MergeEmptyIntoEmptyStaysEmpty) {
  RunningStats a;
  const RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeWithEmptyIsIdentityEitherWay) {
  RunningStats full;
  for (double x : {1.0, 4.0, 9.0}) full.add(x);
  const RunningStats snapshot = full;

  RunningStats empty;
  full.merge(empty);            // rhs empty: no change
  EXPECT_TRUE(full == snapshot);

  empty.merge(full);            // lhs empty: adopts rhs exactly
  EXPECT_TRUE(empty == snapshot);
}

TEST(RunningStats, SelfMergeAliasingIsSafe) {
  RunningStats s;
  for (double x : {2.0, 6.0, 7.0}) s.add(x);
  s.merge(s);  // aliased argument must not corrupt state mid-update
  EXPECT_EQ(s.count(), 6u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  // Doubling the sample set doubles M2 (14 → 28) over n-1 = 5.
  EXPECT_NEAR(s.variance(), 28.0 / 5.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSerialWelfordAtLargeN) {
  // Chunked merge vs. one serial pass over 10^6 samples with a large
  // offset — the catastrophic-cancellation regime where a naive
  // sum-of-squares implementation loses the variance entirely.
  Rng rng(1234);
  RunningStats serial;
  std::vector<RunningStats> chunks(64);
  constexpr std::size_t kN = 1'000'000;
  constexpr double kOffset = 1e9;
  for (std::size_t i = 0; i < kN; ++i) {
    const double x = kOffset + rng.uniform(0.0, 1.0);
    serial.add(x);
    chunks[i % 64].add(x);
  }
  RunningStats merged;
  for (const RunningStats& c : chunks) merged.merge(c);
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_NEAR(merged.mean(), serial.mean(), 1e-12 * kOffset);
  // Uniform(0,1) variance is 1/12; both reductions must land there.
  EXPECT_NEAR(serial.variance(), 1.0 / 12.0, 1e-3);
  EXPECT_NEAR(merged.variance(), serial.variance(),
              1e-6 * serial.variance());
  EXPECT_DOUBLE_EQ(merged.min(), serial.min());
  EXPECT_DOUBLE_EQ(merged.max(), serial.max());
}

}  // namespace
}  // namespace comimo
