// Seed-sweep fuzzing of the network stack: for many random fields the
// §2.1 invariants, backbone properties, routing consistency and energy
// accounting must all hold.
#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/net/routing.h"

namespace comimo {
namespace {

class NetworkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzz, InvariantsHoldOnRandomFields) {
  const std::uint64_t seed = GetParam();
  // Alternate uniform and grouped placements.
  const auto nodes =
      (seed % 2 == 0)
          ? random_field(40 + seed % 30, 400.0, 400.0, seed)
          : clustered_field(8 + seed % 8, 1 + seed % 4, 6.0, 400.0, 400.0,
                            seed);
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 45.0;
  cfg.cluster_diameter_m = 14.0;
  cfg.link_range_m = 220.0;
  CoMimoNet net(nodes, cfg);

  // §2.1 invariants.
  ASSERT_TRUE(net.validate()) << "seed " << seed;

  // Backbone: tree size, unique paths, symmetric connectivity.
  const RoutingBackbone backbone(net);
  EXPECT_EQ(backbone.tree_edges().size(),
            net.clusters().size() - backbone.num_components());
  for (const auto& e : backbone.tree_edges()) {
    EXPECT_TRUE(backbone.connected(e.a, e.b));
    EXPECT_LE(e.length_m, cfg.link_range_m);
  }

  // Route every 7th pair; check hop chaining and positive energies.
  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3);
  const std::size_t n = net.nodes().size();
  for (std::size_t i = 0; i < n; i += 7) {
    for (std::size_t j = 3; j < n; j += 11) {
      const ClusterId ca = net.cluster_of(static_cast<NodeId>(i));
      const ClusterId cb = net.cluster_of(static_cast<NodeId>(j));
      if (!backbone.connected(ca, cb)) {
        EXPECT_THROW((void)router.route(static_cast<NodeId>(i),
                                        static_cast<NodeId>(j)),
                     InfeasibleError);
        continue;
      }
      const RouteReport r =
          router.route(static_cast<NodeId>(i), static_cast<NodeId>(j));
      ClusterId prev = ca;
      for (const auto& hop : r.hops) {
        EXPECT_EQ(hop.from, prev);
        EXPECT_GT(hop.plan.total_energy(), 0.0);
        EXPECT_LE(hop.plan.peak_pa(),
                  hop.plan.total_pa() * (1.0 + 1e-12));
        prev = hop.to;
      }
      if (!r.hops.empty()) EXPECT_EQ(prev, cb);
    }
  }

  // Battery drain never increases any battery and the re-election
  // keeps heads inside their clusters.
  CoMimoNet drained = net;
  bool routed = false;
  for (std::size_t j = 1; j < n && !routed; ++j) {
    if (backbone.connected(net.cluster_of(0),
                           net.cluster_of(static_cast<NodeId>(j)))) {
      const RouteReport r = router.route(0, static_cast<NodeId>(j));
      router.apply_battery_drain(drained, r, 1e5);
      routed = true;
    }
  }
  for (const auto& node : net.nodes()) {
    EXPECT_LE(drained.node(node.id).battery_j, node.battery_j + 1e-15);
  }
  drained.reelect_heads();
  EXPECT_TRUE(drained.validate());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace comimo
