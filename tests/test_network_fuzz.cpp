// Seed-sweep fuzzing of the network stack: for many random fields the
// §2.1 invariants, backbone properties, routing consistency and energy
// accounting must all hold.  The kill/preempt sweeps additionally pin
// the incremental remove_nodes() path to a from-scratch rebuild after
// every event, and the ensemble sweep pins N-thread sharded lifetime
// runs to the 1-thread result bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/net/lifetime.h"
#include "comimo/net/routing.h"
#include "comimo/numeric/rng.h"

namespace comimo {
namespace {

// Bit-exact structural equality: node set (ids + batteries), cluster
// partition, heads, link list (including the cached gap doubles) and
// adjacency order must all match.
void expect_same_net(const CoMimoNet& a, const CoMimoNet& b,
                     const std::string& label) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size()) << label;
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].id, b.nodes()[i].id) << label << " node " << i;
    EXPECT_EQ(a.nodes()[i].battery_j, b.nodes()[i].battery_j)
        << label << " node " << i;
  }
  ASSERT_EQ(a.clusters().size(), b.clusters().size()) << label;
  for (std::size_t c = 0; c < a.clusters().size(); ++c) {
    EXPECT_EQ(a.clusters()[c].id, b.clusters()[c].id) << label;
    EXPECT_EQ(a.clusters()[c].head, b.clusters()[c].head)
        << label << " cluster " << c;
    ASSERT_EQ(a.clusters()[c].members, b.clusters()[c].members)
        << label << " cluster " << c;
  }
  ASSERT_EQ(a.links().size(), b.links().size()) << label;
  for (std::size_t l = 0; l < a.links().size(); ++l) {
    EXPECT_EQ(a.links()[l].a, b.links()[l].a) << label << " link " << l;
    EXPECT_EQ(a.links()[l].b, b.links()[l].b) << label << " link " << l;
    EXPECT_EQ(a.links()[l].length_m, b.links()[l].length_m)
        << label << " link " << l;
  }
  for (ClusterId c = 0; c < static_cast<ClusterId>(a.clusters().size());
       ++c) {
    EXPECT_EQ(a.neighbors(c), b.neighbors(c)) << label << " c=" << c;
  }
}

class NetworkFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetworkFuzz, InvariantsHoldOnRandomFields) {
  const std::uint64_t seed = GetParam();
  // Alternate uniform and grouped placements.
  const auto nodes =
      (seed % 2 == 0)
          ? random_field(40 + seed % 30, 400.0, 400.0, seed)
          : clustered_field(8 + seed % 8, 1 + seed % 4, 6.0, 400.0, 400.0,
                            seed);
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 45.0;
  cfg.cluster_diameter_m = 14.0;
  cfg.link_range_m = 220.0;
  CoMimoNet net(nodes, cfg);

  // §2.1 invariants.
  ASSERT_TRUE(net.validate()) << "seed " << seed;

  // Backbone: tree size, unique paths, symmetric connectivity.
  const RoutingBackbone backbone(net);
  EXPECT_EQ(backbone.tree_edges().size(),
            net.clusters().size() - backbone.num_components());
  for (const auto& e : backbone.tree_edges()) {
    EXPECT_TRUE(backbone.connected(e.a, e.b));
    EXPECT_LE(e.length_m, cfg.link_range_m);
  }

  // Route every 7th pair; check hop chaining and positive energies.
  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3);
  const std::size_t n = net.nodes().size();
  for (std::size_t i = 0; i < n; i += 7) {
    for (std::size_t j = 3; j < n; j += 11) {
      const ClusterId ca = net.cluster_of(static_cast<NodeId>(i));
      const ClusterId cb = net.cluster_of(static_cast<NodeId>(j));
      if (!backbone.connected(ca, cb)) {
        EXPECT_THROW((void)router.route(static_cast<NodeId>(i),
                                        static_cast<NodeId>(j)),
                     InfeasibleError);
        continue;
      }
      const RouteReport r =
          router.route(static_cast<NodeId>(i), static_cast<NodeId>(j));
      ClusterId prev = ca;
      for (const auto& hop : r.hops) {
        EXPECT_EQ(hop.from, prev);
        EXPECT_GT(hop.plan.total_energy(), 0.0);
        EXPECT_LE(hop.plan.peak_pa(),
                  hop.plan.total_pa() * (1.0 + 1e-12));
        prev = hop.to;
      }
      if (!r.hops.empty()) EXPECT_EQ(prev, cb);
    }
  }

  // Battery drain never increases any battery and the re-election
  // keeps heads inside their clusters.
  CoMimoNet drained = net;
  bool routed = false;
  for (std::size_t j = 1; j < n && !routed; ++j) {
    if (backbone.connected(net.cluster_of(0),
                           net.cluster_of(static_cast<NodeId>(j)))) {
      const RouteReport r = router.route(0, static_cast<NodeId>(j));
      router.apply_battery_drain(drained, r, 1e5);
      routed = true;
    }
  }
  for (const auto& node : net.nodes()) {
    EXPECT_LE(drained.node(node.id).battery_j, node.battery_j + 1e-15);
  }
  drained.reelect_heads();
  EXPECT_TRUE(drained.validate());
}

// Seeded kill/preempt fuzz: random node deaths (even waves) alternate
// with PU-style region preemptions that wipe a whole cluster (odd
// waves).  After EVERY event, the incrementally maintained net must
// equal a from-scratch recompute over the survivors — in both index
// modes — and the two modes must agree with each other.
TEST_P(NetworkFuzz, KillPreemptIncrementalMatchesRebuild) {
  const std::uint64_t seed = GetParam();
  const auto nodes = (seed % 2 == 0)
                         ? random_field(90 + seed % 40, 450.0, 450.0, seed)
                         : clustered_field(20 + seed % 10, 4, 6.0, 450.0,
                                           450.0, seed);
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 45.0;
  cfg.cluster_diameter_m = 14.0;
  cfg.link_range_m = 220.0;
  cfg.index_mode = NetIndexMode::kGrid;
  CoMimoNet grid(nodes, cfg);
  CoMimoNetConfig ref_cfg = cfg;
  ref_cfg.index_mode = NetIndexMode::kReference;
  CoMimoNet ref(nodes, ref_cfg);

  Rng rng(seed, 0xFA11);
  for (int wave = 0; wave < 6 && grid.nodes().size() > 8; ++wave) {
    // Drift batteries so later head elections are non-trivial.
    for (int k = 0; k < 5; ++k) {
      const auto& pick =
          grid.nodes()[rng.uniform_int(grid.nodes().size())];
      const double drain = rng.uniform(0.0, 0.4);
      grid.mutable_node(pick.id).battery_j -= drain;
      ref.mutable_node(pick.id).battery_j -= drain;
    }
    grid.reelect_heads();
    ref.reelect_heads();

    std::vector<NodeId> kill;
    if (wave % 2 == 0) {
      const std::size_t count = 1 + rng.uniform_int(4);
      for (std::size_t k = 0; k < count; ++k) {
        kill.push_back(
            grid.nodes()[rng.uniform_int(grid.nodes().size())].id);
      }
    } else {
      // PU preemption: a primary user claims a region — the whole
      // cluster it lands on goes dark at once.
      const auto& victim =
          grid.clusters()[rng.uniform_int(grid.clusters().size())];
      kill = victim.members;
    }
    if (kill.size() >= grid.nodes().size()) continue;

    grid.remove_nodes(kill);
    ref.remove_nodes(kill);

    const std::string label =
        "seed " + std::to_string(seed) + " wave " + std::to_string(wave);
    ASSERT_TRUE(grid.validate()) << label;
    ASSERT_TRUE(ref.validate()) << label;

    // Incremental == from-scratch over the survivors, per mode.
    const CoMimoNet full_grid(grid.nodes(), cfg);
    const CoMimoNet full_ref(ref.nodes(), ref_cfg);
    expect_same_net(grid, full_grid, label + " grid-vs-rebuild");
    expect_same_net(ref, full_ref, label + " ref-vs-rebuild");
    // And the grid mode tracks the O(n²) reference exactly.
    expect_same_net(grid, ref, label + " grid-vs-ref");
  }
}

// The sharded lifetime ensemble must be a pure function of
// (net, params, config) — the same report, bit for bit, on a 1-thread
// pool and a many-thread pool (chunk-ordinal deterministic merge).
TEST_P(NetworkFuzz, LifetimeEnsembleThreadCountInvariant) {
  const std::uint64_t seed = GetParam();
  const auto nodes =
      clustered_field(8 + seed % 5, 3, 6.0, 400.0, 400.0, seed);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 16.0;
  net_cfg.link_range_m = 280.0;
  const CoMimoNet net(nodes, net_cfg);

  LifetimeEnsembleConfig cfg;
  cfg.trials = 8;
  cfg.seed = seed;
  cfg.chunk_size = 3;  // same shard partition on both pools
  cfg.base.round_cap = 120;
  cfg.base.bits_per_round = 2e5;
  if (seed % 2 == 1) {
    cfg.base.faults.enabled = true;
    cfg.base.faults.node_death_fraction = 0.1;
    cfg.base.faults.death_window_lo = 0.05;
    cfg.base.faults.death_window_hi = 0.6;
    cfg.base.faults.slot_erasure_prob = 0.05;
  }

  ThreadPool single(1);
  ThreadPool many(4);
  cfg.pool = &single;
  const LifetimeEnsembleReport one = simulate_lifetime_ensemble(
      net, SystemParams{}, cfg);
  cfg.pool = &many;
  const LifetimeEnsembleReport n = simulate_lifetime_ensemble(
      net, SystemParams{}, cfg);

  EXPECT_TRUE(one.rounds_to_first_death == n.rounds_to_first_death);
  EXPECT_TRUE(one.rounds_to_death_fraction == n.rounds_to_death_fraction);
  EXPECT_TRUE(one.min_battery_j == n.min_battery_j);
  EXPECT_TRUE(one.dead_nodes == n.dead_nodes);
  EXPECT_EQ(one.censored_trials, n.censored_trials);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89),
                         [](const ::testing::TestParamInfo<std::uint64_t>&
                                info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace comimo
