// Waveform-vs-theory property sweeps: the sample-level modems must
// reproduce the analytic BER curves the planners rely on, across
// constellation sizes, SNRs and channels.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "comimo/channel/awgn.h"
#include "comimo/common/units.h"
#include "comimo/numeric/rng.h"
#include "comimo/phy/ber.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/modulation.h"

namespace comimo {
namespace {

// ---------------------------------------------------------------------
// Gray-mapped MQAM over AWGN matches the paper's A·Q(√(B·γ)) formula
// (within the approximation's accuracy) for every supported b.
// ---------------------------------------------------------------------

using QamCase = std::tuple<int, double>;  // b, Eb/N0 dB

class QamAwgnSweep : public ::testing::TestWithParam<QamCase> {};

TEST_P(QamAwgnSweep, MeasuredBerMatchesApproximation) {
  const auto [b, ebn0_db] = GetParam();
  const QamModulator modem(b);
  const std::size_t n_bits = 240000 - (240000 % b);
  const BitVec bits = random_bits(n_bits, 1234 + b);
  std::vector<cplx> s = modem.modulate(bits);
  // Unit-energy symbols: Es/N0 = b·Eb/N0.
  const double gamma_b = db_to_linear(ebn0_db);
  const double n0 = 1.0 / (static_cast<double>(b) * gamma_b);
  Rng noise(99 + b);
  for (auto& v : s) v += noise.complex_gaussian(n0);
  const double measured =
      static_cast<double>(count_bit_errors(bits, modem.demodulate(s))) /
      static_cast<double>(n_bits);
  const double theory = ber_mqam_awgn(b, gamma_b);
  // The paper's formula is a nearest-neighbour approximation: allow
  // 35% relative slack plus Monte-Carlo noise.
  const double mc = 4.0 * std::sqrt(theory / static_cast<double>(n_bits));
  EXPECT_NEAR(measured, theory, std::max(theory * 0.35, mc))
      << "b=" << b << " Eb/N0=" << ebn0_db;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QamAwgnSweep,
    ::testing::Values(QamCase{2, 4.0}, QamCase{2, 7.0}, QamCase{4, 8.0},
                      QamCase{4, 11.0}, QamCase{6, 13.0},
                      QamCase{6, 16.0}, QamCase{8, 18.0}),
    [](const ::testing::TestParamInfo<QamCase>& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "ebn0_" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// ---------------------------------------------------------------------
// BPSK over per-symbol Rayleigh fading with coherent detection matches
// the ½(1 − √(γ/(1+γ))) closed form.
// ---------------------------------------------------------------------

class RayleighBpskSweep : public ::testing::TestWithParam<double> {};

TEST_P(RayleighBpskSweep, MeasuredMatchesClosedForm) {
  const double mean_gamma_db = GetParam();
  const double mean_gamma = db_to_linear(mean_gamma_db);
  const BpskModulator modem;
  const std::size_t n = 300000;
  const BitVec bits = random_bits(n, 777);
  const auto s = modem.modulate(bits);
  Rng rng(55);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const cplx h = rng.complex_gaussian(mean_gamma);
    const cplx y = h * s[i] + rng.complex_gaussian(1.0);
    // Coherent detection.
    const double metric = (std::conj(h) * y).real();
    const std::uint8_t bit = metric < 0.0 ? 1 : 0;
    errors += bit != bits[i];
  }
  const double measured = static_cast<double>(errors) / n;
  const double theory = ber_bpsk_rayleigh(mean_gamma);
  EXPECT_NEAR(measured, theory,
              std::max(theory * 0.08,
                       4.0 * std::sqrt(theory / static_cast<double>(n))))
      << "mean gamma " << mean_gamma_db << " dB";
}

INSTANTIATE_TEST_SUITE_P(MeanSnr, RayleighBpskSweep,
                         ::testing::Values(0.0, 5.0, 10.0, 15.0, 20.0));

// ---------------------------------------------------------------------
// PER composition: measured packet error rate over AWGN equals
// 1 − (1 − BER)^bits.
// ---------------------------------------------------------------------

TEST(PerComposition, MatchesIndependentBitModel) {
  const BpskModulator modem;
  const double gamma_db = 6.0;
  const double n0 = db_to_linear(-gamma_db);
  const std::size_t packet_bits = 200;
  const std::size_t packets = 20000;
  Rng noise(31);
  std::size_t packet_errors = 0;
  double total_ber = 0.0;
  for (std::size_t p = 0; p < packets; ++p) {
    const BitVec bits = random_bits(packet_bits, 1000 + p);
    auto s = modem.modulate(bits);
    for (auto& v : s) v += noise.complex_gaussian(n0);
    const std::size_t errs =
        count_bit_errors(bits, modem.demodulate(s));
    packet_errors += errs > 0;
    total_ber += static_cast<double>(errs);
  }
  const double measured_per =
      static_cast<double>(packet_errors) / packets;
  const double measured_ber =
      total_ber / static_cast<double>(packets * packet_bits);
  const double predicted_per =
      per_from_ber(measured_ber, static_cast<double>(packet_bits));
  EXPECT_NEAR(measured_per, predicted_per, predicted_per * 0.06);
}

}  // namespace
}  // namespace comimo
