#include "comimo/numeric/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/stats.h"

namespace comimo {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0);
  Rng b(7, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformIntInRangeAndRoughlyUniform) {
  Rng rng(11);
  constexpr std::uint64_t n = 7;
  std::array<int, n> counts{};
  for (int i = 0; i < 70000; ++i) {
    const std::uint64_t v = rng.uniform_int(n);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.variance(), 1.0, 0.03);
}

TEST(Rng, GaussianWithMeanStddev) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(Rng, ComplexGaussianVariance) {
  Rng rng(19);
  RunningStats re;
  RunningStats im;
  RunningStats power;
  for (int i = 0; i < 100000; ++i) {
    const cplx z = rng.complex_gaussian(2.0);
    re.add(z.real());
    im.add(z.imag());
    power.add(std::norm(z));
  }
  // Each component has variance 1 and the total power 2.
  EXPECT_NEAR(re.variance(), 1.0, 0.03);
  EXPECT_NEAR(im.variance(), 1.0, 0.03);
  EXPECT_NEAR(power.mean(), 2.0, 0.05);
}

TEST(Rng, GammaMoments) {
  for (const double shape : {0.5, 1.0, 2.5, 6.0}) {
    Rng rng(23);
    RunningStats s;
    for (int i = 0; i < 100000; ++i) s.add(rng.gamma(shape));
    EXPECT_NEAR(s.mean(), shape, shape * 0.05) << "shape " << shape;
    EXPECT_NEAR(s.variance(), shape, shape * 0.1) << "shape " << shape;
  }
}

TEST(Rng, ExponentialUnitMean) {
  Rng rng(29);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential());
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
}

TEST(Rng, PointInDiskStaysInside) {
  Rng rng(31);
  const Vec2 c{5.0, -3.0};
  const double r = 4.0;
  RunningStats radial;
  for (int i = 0; i < 20000; ++i) {
    const Vec2 p = rng.point_in_disk(c, r);
    const double d = distance(p, c);
    ASSERT_LE(d, r + 1e-12);
    radial.add(d);
  }
  // Uniform over the area ⇒ E[d] = 2r/3.
  EXPECT_NEAR(radial.mean(), 2.0 * r / 3.0, 0.05);
}

TEST(Rng, SumOfSquaredComplexGaussiansIsGamma) {
  // ‖H‖²_F for an mt×mr CN(0,1) matrix ~ Gamma(mt·mr, 1): check the
  // first two moments — the distributional fact the ē_b solver uses.
  Rng rng(37);
  const int m = 6;  // 2x3
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    double x = 0.0;
    for (int j = 0; j < m; ++j) x += std::norm(rng.complex_gaussian(1.0));
    s.add(x);
  }
  EXPECT_NEAR(s.mean(), m, 0.1);
  EXPECT_NEAR(s.variance(), m, 0.3);
}

}  // namespace
}  // namespace comimo
