// Tests for the text-output utilities (tables, charts, logging) the
// bench harness depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "comimo/common/bench_json.h"
#include "comimo/common/error.h"
#include "comimo/common/log.h"
#include "comimo/common/table.h"

namespace comimo {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"a-much-longer-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| a-much-longer-name |"), std::string::npos);
  // Four rules + header + 2 rows = 7 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
  EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, Formatters) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(-1.0, 0), "-1");
  EXPECT_EQ(TextTable::sci(12345.678, 2), "1.23e+04");
  EXPECT_EQ(TextTable::pct(0.0612), "6.12%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(SeriesChart, PrintsDataAndCanvas) {
  SeriesChart chart("x", {0.0, 1.0, 2.0});
  chart.add_series("linear", {0.0, 1.0, 2.0});
  chart.add_series("quad", {0.0, 1.0, 4.0});
  std::ostringstream os;
  chart.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("linear"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("*=linear"), std::string::npos);
}

TEST(SeriesChart, LogScaleHandlesWideRanges) {
  SeriesChart chart("x", {1.0, 2.0});
  chart.add_series("wide", {1e-20, 1e-4});
  std::ostringstream os;
  chart.print(os, /*log_y=*/true);
  EXPECT_NE(os.str().find("log10(y)"), std::string::npos);
}

TEST(SeriesChart, Validation) {
  EXPECT_THROW(SeriesChart("x", {}), InvalidArgument);
  SeriesChart chart("x", {1.0, 2.0});
  EXPECT_THROW(chart.add_series("short", {1.0}), InvalidArgument);
  std::ostringstream os;
  EXPECT_THROW(chart.print(os), InvalidArgument);  // no series yet
}

TEST(SeriesChart, ConstantSeriesDoesNotDivideByZero) {
  SeriesChart chart("x", {1.0, 2.0, 3.0});
  chart.add_series("flat", {5.0, 5.0, 5.0});
  std::ostringstream os;
  chart.print(os);
  SUCCEED();
}

TEST(Log, LevelFiltering) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped silently (no observable
  // output channel to assert on beyond not crashing).
  COMIMO_LOG(kDebug) << "dropped";
  COMIMO_LOG(kInfo) << "dropped too";
  set_log_level(LogLevel::kOff);
  COMIMO_LOG(kError) << "also dropped";
  set_log_level(original);
}

TEST(JsonDump, EscapesQuotesBackslashesAndWhitespace) {
  const std::string out =
      Json::string("a\"b\\c\nd\te\rf").dump_string(0);
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\te\\rf\"");
}

TEST(JsonDump, ControlCharactersBecomeUnicodeEscapes) {
  const std::string out = Json::string(std::string("x\x01y\x1f") + "z")
                              .dump_string(0);
  EXPECT_EQ(out, "\"x\\u0001y\\u001fz\"");
}

TEST(JsonDump, Utf8PassesThroughUnchanged) {
  // Multibyte sequences sit above 0x7f byte-wise; the escaper must not
  // mangle them even though the raw chars are negative on signed-char
  // platforms.
  const std::string utf8 = "γ_b ≈ 3dB · µ";
  const std::string out = Json::string(utf8).dump_string(0);
  EXPECT_EQ(out, "\"" + utf8 + "\"");
}

TEST(JsonDump, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(Json::number(std::nan("")).dump_string(0), "null");
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity())
                .dump_string(0),
            "null");
  EXPECT_EQ(Json::number(-std::numeric_limits<double>::infinity())
                .dump_string(0),
            "null");
  // Finite values keep full max_digits10 round-trip precision.
  EXPECT_EQ(Json::number(0.5).dump_string(0), "0.5");
}

TEST(BenchReporter, EnvelopeCarriesSystemClockTimestamp) {
  BenchReporter reporter("io_test_bench");
  std::ostringstream os;
  reporter.write(os);
  const std::string out = os.str();
  const std::size_t pos = out.find("\"timestamp_unix_s\": ");
  ASSERT_NE(pos, std::string::npos);
  // A plausible system-clock date: after 2024-01-01, i.e. a 10-digit
  // integer — wall_s (steady_clock, boot epoch) could never satisfy it.
  const long long ts =
      std::stoll(out.substr(pos + std::string("\"timestamp_unix_s\": ").size()));
  EXPECT_GT(ts, 1704067200LL);
}

}  // namespace
}  // namespace comimo
