// Unit tests for the channel substrate: path loss, fading, AWGN,
// multipath, indoor links.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "comimo/channel/awgn.h"
#include "comimo/channel/fading.h"
#include "comimo/channel/indoor.h"
#include "comimo/channel/multipath.h"
#include "comimo/channel/pathloss.h"
#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/numeric/stats.h"

namespace comimo {
namespace {

// --- path loss ---------------------------------------------------------

TEST(PowerLawPathLoss, FollowsExponent) {
  const PowerLawPathLoss pl(1.0, 3.5, 1.0);
  EXPECT_NEAR(pl.attenuation(1.0), 1.0, 1e-12);
  EXPECT_NEAR(pl.attenuation(10.0), std::pow(10.0, 3.5), 1e-6);
  EXPECT_NEAR(pl.attenuation_db(10.0), 35.0, 1e-9);
}

TEST(PowerLawPathLoss, FromSystemParams) {
  const SystemParams params;
  const PowerLawPathLoss pl(params);
  EXPECT_NEAR(pl.attenuation(2.0), params.local_gain(2.0), 1e-6);
}

TEST(PowerLawPathLoss, RejectsBadParameters) {
  EXPECT_THROW(PowerLawPathLoss(0.0, 3.5, 1.0), InvalidArgument);
  EXPECT_THROW(PowerLawPathLoss(1.0, -1.0, 1.0), InvalidArgument);
  const PowerLawPathLoss pl(1.0, 2.0, 1.0);
  EXPECT_THROW(pl.attenuation(-1.0), InvalidArgument);
}

TEST(FreeSpacePathLoss, MatchesLongHaulFactor) {
  const SystemParams params;
  const FreeSpacePathLoss pl(params);
  for (double d : {10.0, 100.0, 250.0}) {
    EXPECT_NEAR(pl.attenuation(d), params.long_haul_attenuation(d),
                params.long_haul_attenuation(d) * 1e-12);
  }
}

TEST(ObstructedPathLoss, AddsFixedDb) {
  const SystemParams params;
  auto base = std::make_shared<FreeSpacePathLoss>(params);
  const ObstructedPathLoss obstructed(base, 12.0);
  EXPECT_NEAR(obstructed.attenuation_db(100.0),
              base->attenuation_db(100.0) + 12.0, 1e-9);
  EXPECT_THROW(ObstructedPathLoss(nullptr, 3.0), InvalidArgument);
  EXPECT_THROW(ObstructedPathLoss(base, -1.0), InvalidArgument);
}

// --- Rayleigh fading ----------------------------------------------------

TEST(RayleighBlockFading, ShapeAndUnitPower) {
  RayleighBlockFading fading(2, 3, Rng(7));
  RunningStats power;
  for (int i = 0; i < 3000; ++i) {
    const CMatrix h = fading.next_block();
    EXPECT_EQ(h.rows(), 3u);
    EXPECT_EQ(h.cols(), 2u);
    power.add(h.frobenius_norm2());
  }
  EXPECT_NEAR(power.mean(), 6.0, 0.2);
}

TEST(RayleighBlockFading, BlocksAreIndependent) {
  RayleighBlockFading fading(1, 1, Rng(8));
  const CMatrix a = fading.next_block();
  const CMatrix b = fading.next_block();
  EXPECT_GT(a.max_abs_diff(b), 1e-9);
}

TEST(CorrelatedFadingTrack, StationaryPower) {
  CorrelatedFadingTrack track(0.95, Rng(9));
  RunningStats power;
  for (int i = 0; i < 100000; ++i) power.add(std::norm(track.next()));
  EXPECT_NEAR(power.mean(), 1.0, 0.1);
}

TEST(CorrelatedFadingTrack, NeighborCorrelationMatchesRho) {
  const double rho = 0.9;
  CorrelatedFadingTrack track(rho, Rng(10));
  double corr = 0.0;
  cplx prev = track.next();
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const cplx cur = track.next();
    corr += (std::conj(prev) * cur).real();
    prev = cur;
  }
  EXPECT_NEAR(corr / n, rho, 0.02);
}

TEST(CorrelatedFadingTrack, RejectsBadRho) {
  EXPECT_THROW(CorrelatedFadingTrack(1.0, Rng(1)), InvalidArgument);
  EXPECT_THROW(CorrelatedFadingTrack(-0.1, Rng(1)), InvalidArgument);
}

// --- AWGN ----------------------------------------------------------------

TEST(AwgnChannel, NoisePowerMatchesVariance) {
  AwgnChannel awgn(0.25, Rng(11));
  RunningStats power;
  for (int i = 0; i < 100000; ++i) power.add(std::norm(awgn.sample()));
  EXPECT_NEAR(power.mean(), 0.25, 0.01);
}

TEST(AwgnChannel, ZeroVarianceIsTransparent) {
  AwgnChannel awgn(0.0, Rng(12));
  std::vector<cplx> s{1.0, {0.0, 1.0}, -2.0};
  const auto orig = s;
  awgn.apply(s);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s[i], orig[i]);
}

TEST(AwgnChannel, AddReturnsNoisyCopy) {
  AwgnChannel awgn(1.0, Rng(13));
  const std::vector<cplx> s(100, cplx{1.0, 0.0});
  const auto noisy = awgn.add(s);
  EXPECT_EQ(noisy.size(), s.size());
  double diff = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    diff += std::abs(noisy[i] - s[i]);
  }
  EXPECT_GT(diff, 0.0);
}

TEST(NoiseVarianceForEbn0, KnownMapping) {
  // Eb/N0 = 0 dB with unit-energy BPSK symbols: N0 = 1.
  EXPECT_NEAR(noise_variance_for_ebn0_db(0.0, 1.0, 1.0), 1.0, 1e-12);
  // 10 dB: N0 = 0.1.
  EXPECT_NEAR(noise_variance_for_ebn0_db(10.0, 1.0, 1.0), 0.1, 1e-12);
  // 2 bits/symbol halves Eb at fixed Es.
  EXPECT_NEAR(noise_variance_for_ebn0_db(0.0, 1.0, 2.0), 0.5, 1e-12);
}

// --- multipath -----------------------------------------------------------

TEST(TappedDelayLine, SingleTapIsFlat) {
  MultipathProfile profile;
  profile.num_taps = 1;
  TappedDelayLine tdl(profile, Rng(14));
  const std::vector<cplx> x{1.0, 2.0, 3.0};
  const auto y = tdl.apply(x);
  const cplx h = tdl.taps()[0];
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(std::abs(y[i] - h * x[i]), 0.0, 1e-12);
  }
}

TEST(TappedDelayLine, MeanPowerNormalized) {
  MultipathProfile profile;
  profile.num_taps = 4;
  profile.tap_decay_db = 3.0;
  TappedDelayLine tdl(profile, Rng(15));
  RunningStats power;
  for (int i = 0; i < 20000; ++i) {
    tdl.redraw();
    power.add(tdl.channel_power());
  }
  EXPECT_NEAR(power.mean(), 1.0, 0.05);
}

TEST(TappedDelayLine, RicianFirstTapHasLosBias) {
  MultipathProfile profile;
  profile.num_taps = 1;
  profile.k_factor = 100.0;  // almost pure LOS
  TappedDelayLine tdl(profile, Rng(16));
  RunningStats mag;
  for (int i = 0; i < 2000; ++i) {
    tdl.redraw();
    mag.add(std::abs(tdl.taps()[0]));
  }
  // With K = 100 the envelope is nearly deterministic at 1.
  EXPECT_NEAR(mag.mean(), 1.0, 0.02);
  EXPECT_LT(mag.stddev(), 0.1);
}

TEST(TappedDelayLine, FirConvolutionIsCausal) {
  MultipathProfile profile;
  profile.num_taps = 3;
  profile.normalize_power = false;
  TappedDelayLine tdl(profile, Rng(17));
  // Impulse response equals the taps.
  std::vector<cplx> impulse(5, cplx{0.0, 0.0});
  impulse[0] = 1.0;
  const auto y = tdl.apply(impulse);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::abs(y[i] - tdl.taps()[i]), 0.0, 1e-12);
  }
  EXPECT_NEAR(std::abs(y[3]), 0.0, 1e-12);
}

// --- indoor link ----------------------------------------------------------

TEST(IndoorLink, GainAndObstructionApply) {
  IndoorLinkConfig cfg;
  cfg.gain_db = -6.0;
  cfg.obstacle_loss_db = 14.0;
  IndoorLink link(cfg, Rng(18));
  EXPECT_NEAR(link.mean_amplitude_gain(),
              std::pow(10.0, -20.0 / 20.0), 1e-12);
}

TEST(IndoorLink, PhaseOffsetRotatesOutput) {
  IndoorLinkConfig cfg;
  cfg.phase_offset_rad = kPi;  // sign flip
  IndoorLink link(cfg, Rng(19));
  const std::vector<cplx> x{1.0};
  const auto y = link.propagate(x);
  // One flat unit-power... tap is random; compare against the same link
  // without the offset by linearity: y(π) = -y(0) requires the same tap,
  // so instead check |y| unchanged and the rotation via a second link
  // sharing the RNG seed.
  IndoorLinkConfig cfg0;
  IndoorLink link0(cfg0, Rng(19));
  const auto y0 = link0.propagate(x);
  EXPECT_NEAR(std::abs(y[0] + y0[0]), 0.0, 1e-12);
}

TEST(Superpose, SumsStreams) {
  const std::vector<std::vector<cplx>> streams{
      {1.0, 2.0}, {cplx{0.0, 1.0}, -1.0}};
  const auto sum = superpose(streams);
  EXPECT_EQ(sum[0], cplx(1.0, 1.0));
  EXPECT_EQ(sum[1], cplx(1.0, 0.0));
}

TEST(Superpose, RejectsRaggedStreams) {
  EXPECT_THROW(superpose({{1.0}, {1.0, 2.0}}), InvalidArgument);
  EXPECT_THROW(superpose({}), InvalidArgument);
}

}  // namespace
}  // namespace comimo
