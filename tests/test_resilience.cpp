// Tests for the fault-injection & recovery layer: ARQ backoff, fault
// plans, self-healing routing, and the deterministic-replay guarantees
// (same seed => bit-identical ResilienceReport).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/net/lifetime.h"
#include "comimo/phy/stbc.h"
#include "comimo/resilience/arq.h"
#include "comimo/resilience/fault_plan.h"
#include "comimo/resilience/recovery.h"
#include "comimo/resilience/resilient_sim.h"
#include "comimo/testbed/coop_hop_sim.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {
namespace {

CoMimoNet make_field(std::uint64_t seed = 11) {
  const auto nodes = clustered_field(14, 3, 6.0, 450.0, 450.0, seed,
                                     /*battery_lo=*/150.0,
                                     /*battery_hi=*/200.0);
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 40.0;
  cfg.cluster_diameter_m = 16.0;
  cfg.link_range_m = 280.0;
  return CoMimoNet(nodes, cfg);
}

// ---------------------------------------------------------------- ARQ --

TEST(Arq, BackoffIsTruncatedExponentialWithDither) {
  ArqConfig cfg;
  for (unsigned attempt = 0; attempt < 12; ++attempt) {
    Rng rng(99, attempt);
    const double nominal = std::min(
        cfg.base_backoff_s * std::pow(cfg.backoff_factor, attempt),
        cfg.max_backoff_s);
    const double d = arq_backoff_s(cfg, attempt, rng);
    EXPECT_GE(d, 0.5 * nominal);
    EXPECT_LT(d, nominal);
  }
  // Deep attempts saturate at the ceiling (modulo the dither window).
  Rng rng(1, 2);
  EXPECT_LE(arq_backoff_s(cfg, 40, rng), cfg.max_backoff_s);
}

TEST(Arq, BackoffSequenceReplaysFromSeed) {
  const ArqConfig cfg;
  std::vector<double> a, b;
  Rng ra(7, 3), rb(7, 3);
  for (unsigned k = 0; k < 8; ++k) {
    a.push_back(arq_backoff_s(cfg, k, ra));
    b.push_back(arq_backoff_s(cfg, k, rb));
  }
  EXPECT_EQ(a, b);  // bit-identical, not just close
}

TEST(Arq, RunArqDeliversAndExhausts) {
  ArqConfig cfg;
  cfg.max_attempts = 4;
  Rng rng(5);
  const auto ok_third = [](unsigned k) { return k == 2; };
  const ArqOutcome got = run_arq(cfg, ok_third, rng);
  EXPECT_TRUE(got.delivered);
  EXPECT_EQ(got.attempts, 3u);
  EXPECT_GT(got.wait_s, 2 * cfg.ack_timeout_s);  // two timeouts + backoff

  Rng rng2(5);
  const ArqOutcome lost =
      run_arq(cfg, [](unsigned) { return false; }, rng2);
  EXPECT_FALSE(lost.delivered);
  EXPECT_EQ(lost.attempts, cfg.max_attempts);
}

TEST(Arq, UncheckedBackoffIsBitIdenticalAndPreservesTheRngStream) {
  // Regression for the validate-per-draw hoist: the unchecked helper
  // must return the same bits AND leave the RNG at the same stream
  // position as the checked entry point.
  const ArqConfig cfg;
  Rng checked(42, 9), unchecked(42, 9);
  for (unsigned k = 0; k < 16; ++k) {
    const double a = arq_backoff_s(cfg, k, checked);
    const double b = arq_backoff_unchecked_s(cfg, k, unchecked);
    EXPECT_EQ(a, b);
  }
  // Same post-call stream position: the next raw draws agree exactly.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(checked.next(), unchecked.next());
  }
}

TEST(Arq, RunArqOutcomeUnchangedByValidationHoist) {
  // Golden replay: run_arq's draws and waits must be bit-identical to
  // a hand-rolled loop using the public per-draw helper — i.e. the
  // hoist changed no observable behaviour.
  ArqConfig cfg;
  cfg.max_attempts = 5;
  const auto ok_never = [](unsigned) { return false; };

  Rng protocol_rng(321, 1);
  const ArqOutcome got = run_arq(cfg, ok_never, protocol_rng);

  Rng replay_rng(321, 1);
  double expected_wait = 0.0;
  for (unsigned k = 0; k < cfg.max_attempts; ++k) {
    expected_wait += cfg.ack_timeout_s;
    if (k + 1 < cfg.max_attempts) {
      expected_wait += arq_backoff_s(cfg, k, replay_rng);
    }
  }
  EXPECT_FALSE(got.delivered);
  EXPECT_EQ(got.attempts, cfg.max_attempts);
  EXPECT_EQ(got.wait_s, expected_wait);  // bit-identical accumulation
  EXPECT_EQ(protocol_rng.next(), replay_rng.next());
}

TEST(Arq, ConfigValidation) {
  ArqConfig cfg;
  cfg.max_attempts = 0;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg = ArqConfig{};
  cfg.backoff_factor = 0.5;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg = ArqConfig{};
  cfg.ack_timeout_s = -1.0;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  EXPECT_NO_THROW(validate(ArqConfig{}));
}

// --------------------------------------------------------- fault plans --

TEST(FaultPlan, SameSeedSamePlan) {
  const CoMimoNet net = make_field();
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.node_death_fraction = 0.3;
  cfg.slot_erasure_prob = 0.1;
  cfg.relay_dropout_prob = 0.2;
  cfg.seed = 21;
  const FaultInjector injector(cfg);
  const FaultPlan a = injector.make_plan(net, 500);
  const FaultPlan b = injector.make_plan(net, 500);
  ASSERT_EQ(a.deaths().size(), b.deaths().size());
  EXPECT_FALSE(a.deaths().empty());
  for (std::size_t i = 0; i < a.deaths().size(); ++i) {
    EXPECT_EQ(a.deaths()[i].round, b.deaths()[i].round);
    EXPECT_EQ(a.deaths()[i].node, b.deaths()[i].node);
    EXPECT_EQ(a.deaths()[i].cause, b.deaths()[i].cause);
  }
  for (std::size_t round = 1; round <= 50; ++round) {
    for (std::size_t hop = 0; hop < 4; ++hop) {
      EXPECT_EQ(a.slot_erased(round, hop, 0), b.slot_erased(round, hop, 0));
      EXPECT_EQ(a.relay_dropout(round, hop), b.relay_dropout(round, hop));
    }
  }
}

TEST(FaultPlan, DeathsLandInsideTheWindow) {
  const CoMimoNet net = make_field();
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.node_death_fraction = 0.5;
  cfg.death_window_lo = 0.25;
  cfg.death_window_hi = 0.75;
  const std::size_t horizon = 400;
  const FaultPlan plan = FaultInjector(cfg).make_plan(net, horizon);
  ASSERT_FALSE(plan.deaths().empty());
  for (const auto& d : plan.deaths()) {
    EXPECT_GE(d.round, horizon / 4);
    EXPECT_LE(d.round, 3 * horizon / 4);
  }
}

TEST(FaultPlan, DisabledPlanNeverFaults) {
  const CoMimoNet net = make_field();
  FaultConfig cfg;  // enabled == false but knobs set: the switch rules
  cfg.node_death_fraction = 0.5;
  cfg.slot_erasure_prob = 0.5;
  cfg.relay_dropout_prob = 0.5;
  const FaultPlan plan = FaultInjector(cfg).make_plan(net, 100);
  EXPECT_TRUE(plan.deaths().empty());
  EXPECT_FALSE(plan.slot_erased(1, 0, 0));
  EXPECT_FALSE(plan.relay_dropout(1, 0));
  EXPECT_DOUBLE_EQ(plan.pu_wait_s(3.0), 0.0);
}

TEST(FaultPlan, ConfigValidation) {
  FaultConfig cfg;
  cfg.node_death_fraction = 1.5;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg = FaultConfig{};
  cfg.death_window_lo = 0.8;
  cfg.death_window_hi = 0.2;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg = FaultConfig{};
  cfg.slot_erasure_prob = 1.0;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  cfg = FaultConfig{};
  cfg.pu_preemption = true;
  cfg.pu.mean_idle_s = 0.0;
  EXPECT_THROW(validate(cfg), InvalidArgument);
  EXPECT_NO_THROW(validate(FaultConfig{}));
}

TEST(FaultPlan, PuWaitResumesAfterBusyPeriod) {
  const CoMimoNet net = make_field();
  FaultConfig cfg;
  cfg.enabled = true;
  cfg.pu_preemption = true;
  cfg.pu_trace_duration_s = 200.0;
  const FaultPlan plan = FaultInjector(cfg).make_plan(net, 10);
  ASSERT_FALSE(plan.pu_trace().empty());
  bool saw_wait = false;
  for (double t = 0.0; t < 190.0; t += 0.37) {
    const double w = plan.pu_wait_s(t);
    ASSERT_GE(w, 0.0);
    if (w > 0.0) {
      saw_wait = true;
      EXPECT_FALSE(trace_busy_at(plan.pu_trace(), t + w));
    }
  }
  EXPECT_TRUE(saw_wait);  // duty cycle 1/3: some probe hits a busy period
}

// ------------------------------------------------- STBC ladder & heal --

TEST(StbcLadder, DegradesOneStepAtATime) {
  EXPECT_EQ(stbc_supported_tx(9), 4u);
  EXPECT_EQ(stbc_supported_tx(3), 3u);
  EXPECT_EQ(stbc_degraded_tx(4), 3u);
  EXPECT_EQ(stbc_degraded_tx(3), 2u);
  EXPECT_EQ(stbc_degraded_tx(2), 1u);
  EXPECT_EQ(stbc_degraded_tx(1), 1u);  // SISO is the floor
}

TEST(Recovery, SurvivingSubnetDropsTheDeadAndRebuilds) {
  const CoMimoNet net = make_field();
  NodeId max_id = 0;
  for (const auto& n : net.nodes()) max_id = std::max(max_id, n.id);
  std::vector<std::uint8_t> alive(max_id + 1, 1);
  const NodeId victim = net.clusters().front().head;
  alive[victim] = 0;
  const CoMimoNet healed = surviving_subnet(net, alive);
  EXPECT_EQ(healed.nodes().size(), net.nodes().size() - 1);
  for (const auto& n : healed.nodes()) EXPECT_NE(n.id, victim);
  for (const auto& c : healed.clusters()) EXPECT_NE(c.head, victim);

  std::vector<std::uint8_t> none(max_id + 1, 0);
  EXPECT_THROW((void)surviving_subnet(net, none), InfeasibleError);
}

TEST(Recovery, ReplanShrunkStepsDownTheLadder) {
  const UnderlayCooperativeHop planner{SystemParams{}};
  UnderlayHopConfig cfg;
  cfg.mt = 4;
  cfg.mr = 4;
  cfg.hop_distance_m = 150.0;
  cfg.ber = 1e-3;
  const UnderlayHopPlan plan = planner.plan(cfg);
  const UnderlayHopPlan same = planner.replan_shrunk(plan, 4, 4);
  EXPECT_EQ(same.config.mt, 4u);
  EXPECT_DOUBLE_EQ(same.ebar, plan.ebar);  // untouched when nothing shrank
  const UnderlayHopPlan shrunk = planner.replan_shrunk(plan, 3, 4);
  EXPECT_EQ(shrunk.config.mt, 3u);
  EXPECT_EQ(shrunk.config.mr, 4u);
  EXPECT_GT(shrunk.total_energy(), 0.0);
}

// ------------------------------------------------ resilient simulation --

TEST(ResilientSim, FaultsOffDeliversEverything) {
  const CoMimoNet net = make_field();
  ResilienceConfig cfg;
  cfg.rounds = 60;
  const ResilienceReport r = simulate_with_faults(net, SystemParams{}, cfg);
  EXPECT_EQ(r.packets_offered, cfg.rounds);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0);
  EXPECT_EQ(r.retransmissions, 0u);
  EXPECT_EQ(r.node_deaths, 0u);
  EXPECT_EQ(r.route_repairs, 0u);
  EXPECT_EQ(r.stbc_degradations, 0u);
  EXPECT_GT(r.goodput_bps, 0.0);
}

// The headline acceptance criterion: kill 20% of the relays mid-run and
// cooperative routing still delivers >= 90% of offered packets through
// STBC degradation + route repair, with no exception escaping; and the
// identical seed reproduces the identical report, field for field.
TEST(ResilientSim, SurvivesTwentyPercentNodeDeathsAndReplays) {
  const CoMimoNet net = make_field();
  ResilienceConfig cfg;
  cfg.mode = RoutingMode::kCooperative;
  cfg.rounds = 250;
  cfg.faults.enabled = true;
  cfg.faults.node_death_fraction = 0.20;
  cfg.faults.relay_dropout_prob = 0.10;
  cfg.faults.slot_erasure_prob = 0.05;
  cfg.faults.pu_preemption = true;
  cfg.faults.seed = 42;

  ResilienceReport a;
  ASSERT_NO_THROW(a = simulate_with_faults(net, SystemParams{}, cfg));
  EXPECT_EQ(a.node_deaths,
            static_cast<std::size_t>(0.20 * net.nodes().size()));
  EXPECT_GE(a.delivery_ratio, 0.9);
  EXPECT_GT(a.route_repairs, 0u);
  EXPECT_GT(a.stbc_degradations, 0u);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_GT(a.pu_preemptions, 0u);
  EXPECT_GT(a.retransmit_energy_j, 0.0);
  EXPECT_LT(a.retransmit_energy_j, a.energy_spent_j);

  const ResilienceReport b = simulate_with_faults(net, SystemParams{}, cfg);
  EXPECT_EQ(a, b);  // defaulted operator==: bit-identical replay
}

TEST(ResilientSim, DifferentSeedsDiverge) {
  const CoMimoNet net = make_field();
  ResilienceConfig cfg;
  cfg.rounds = 120;
  cfg.faults.enabled = true;
  cfg.faults.node_death_fraction = 0.2;
  cfg.faults.slot_erasure_prob = 0.1;
  cfg.faults.seed = 1;
  const ResilienceReport a = simulate_with_faults(net, SystemParams{}, cfg);
  cfg.faults.seed = 2;
  const ResilienceReport c = simulate_with_faults(net, SystemParams{}, cfg);
  EXPECT_FALSE(a == c);
}

TEST(ResilientSim, HeadDeathCountsAsFailover) {
  const CoMimoNet net = make_field();
  ResilienceConfig cfg;
  cfg.rounds = 200;
  cfg.faults.enabled = true;
  cfg.faults.node_death_fraction = 0.45;  // enough victims to hit heads
  const ResilienceReport r = simulate_with_faults(net, SystemParams{}, cfg);
  EXPECT_GT(r.node_deaths, 0u);
  EXPECT_GT(r.head_failovers, 0u);
  EXPECT_GT(r.route_repairs, 0u);
}

// ---------------------------------------------------- lifetime threading --

TEST(LifetimeSim, ZeroRateFaultPathMatchesBaseline) {
  const CoMimoNet net = make_field();
  LifetimeConfig cfg;
  cfg.round_cap = 400;
  const LifetimeReport base = simulate_lifetime(net, SystemParams{}, cfg);
  cfg.faults.enabled = true;  // enabled, but every fault rate is zero
  const LifetimeReport faulted = simulate_lifetime(net, SystemParams{}, cfg);
  EXPECT_EQ(base.rounds_to_first_death, faulted.rounds_to_first_death);
  EXPECT_EQ(base.rounds_to_death_fraction, faulted.rounds_to_death_fraction);
  EXPECT_EQ(base.censored, faulted.censored);
  EXPECT_EQ(base.dead_nodes, faulted.dead_nodes);
  EXPECT_DOUBLE_EQ(base.min_battery_j, faulted.min_battery_j);
}

TEST(LifetimeSim, InjectedDeathsShortenTheRun) {
  const CoMimoNet net = make_field();
  LifetimeConfig cfg;
  cfg.round_cap = 4000;
  const LifetimeReport base = simulate_lifetime(net, SystemParams{}, cfg);
  cfg.faults.enabled = true;
  cfg.faults.node_death_fraction = 0.3;
  // Schedule the deaths early so they land before natural battery
  // depletion ends the run.
  cfg.faults.death_window_lo = 0.0;
  cfg.faults.death_window_hi = 0.05;
  const LifetimeReport faulted = simulate_lifetime(net, SystemParams{}, cfg);
  EXPECT_GT(faulted.resilience.node_deaths, 0u);
  EXPECT_GT(faulted.resilience.route_repairs, 0u);
  EXPECT_LE(faulted.rounds_to_death_fraction,
            base.rounds_to_death_fraction);
  EXPECT_LE(faulted.rounds_to_first_death, base.rounds_to_first_death);
}

// ------------------------------------------------- waveform-level hop --

TEST(CoopHopSim, FaultsOffIsBitIdenticalToDefault) {
  const UnderlayCooperativeHop planner{SystemParams{}};
  UnderlayHopConfig hop_cfg;
  hop_cfg.mt = 2;
  hop_cfg.mr = 2;
  hop_cfg.hop_distance_m = 120.0;
  hop_cfg.ber = 1e-3;
  CoopHopSimConfig cfg;
  cfg.plan = planner.plan(hop_cfg);
  cfg.bits = 4000;
  const CoopHopSimResult base = simulate_cooperative_hop(cfg);
  CoopHopSimConfig with_struct = cfg;
  with_struct.faults = HopFaultConfig{};  // present but disabled
  const CoopHopSimResult same = simulate_cooperative_hop(with_struct);
  EXPECT_EQ(base.bit_errors, same.bit_errors);
  EXPECT_DOUBLE_EQ(base.ber, same.ber);
  EXPECT_EQ(same.resilience, HopResilienceStats{});
}

TEST(CoopHopSim, DropoutDegradesButStillDecodes) {
  const UnderlayCooperativeHop planner{SystemParams{}};
  UnderlayHopConfig hop_cfg;
  hop_cfg.mt = 4;
  hop_cfg.mr = 2;
  hop_cfg.hop_distance_m = 120.0;
  hop_cfg.ber = 1e-3;
  CoopHopSimConfig cfg;
  cfg.plan = planner.plan(hop_cfg);
  cfg.bits = 4000;
  cfg.faults.enabled = true;
  cfg.faults.dropout_block = 0;  // degraded from the very first block
  const CoopHopSimResult r = simulate_cooperative_hop(cfg);
  EXPECT_GT(r.resilience.blocks, 0u);
  EXPECT_EQ(r.resilience.degraded_blocks, r.resilience.blocks);
  EXPECT_EQ(r.resilience.lost_blocks, 0u);
  // Held at the plan's e_b with one antenna down, the link still decodes
  // far better than coin-flipping.
  EXPECT_LT(r.ber, 0.1);
}

TEST(CoopHopSim, ErasuresRetransmitAndExhaustionZeroesBlocks) {
  const UnderlayCooperativeHop planner{SystemParams{}};
  UnderlayHopConfig hop_cfg;
  hop_cfg.mt = 2;
  hop_cfg.mr = 2;
  hop_cfg.hop_distance_m = 120.0;
  hop_cfg.ber = 1e-3;
  CoopHopSimConfig cfg;
  cfg.plan = planner.plan(hop_cfg);
  cfg.bits = 4000;
  cfg.faults.enabled = true;
  cfg.faults.block_erasure_prob = 0.5;
  cfg.faults.max_attempts = 2;
  const CoopHopSimResult r = simulate_cooperative_hop(cfg);
  EXPECT_GT(r.resilience.retransmitted_blocks, 0u);
  EXPECT_GT(r.resilience.lost_blocks, 0u);  // p=0.25 per block at 2 tries
  EXPECT_GT(r.ber, 0.0);  // zeroed blocks show up as bit errors

  const CoopHopSimResult again = simulate_cooperative_hop(cfg);
  EXPECT_EQ(r.resilience, again.resilience);  // seeded => replayable
  EXPECT_EQ(r.bit_errors, again.bit_errors);
}

}  // namespace
}  // namespace comimo
