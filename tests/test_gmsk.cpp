#include "comimo/phy/gmsk.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/channel/awgn.h"
#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/phy/detector.h"

namespace comimo {
namespace {

TEST(GmskModem, PulseIntegratesToHalf) {
  const GmskModem modem;
  double sum = 0.0;
  for (const double v : modem.frequency_pulse()) sum += v;
  EXPECT_NEAR(sum, 0.5, 1e-12);
}

TEST(GmskModem, UnitEnvelope) {
  const GmskModem modem;
  const BitVec bits = random_bits(64, 2);
  const auto s = modem.modulate(bits);
  for (const auto& v : s) {
    EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
  }
}

TEST(GmskModem, OutputLengthMatchesContract) {
  const GmskModem modem;
  const BitVec bits = random_bits(100, 3);
  EXPECT_EQ(modem.modulate(bits).size(), modem.samples_for_bits(100));
}

TEST(GmskModem, NoiseFreeRoundTrip) {
  for (const double bt : {0.3, 0.5}) {
    GmskConfig cfg;
    cfg.bt = bt;
    const GmskModem modem(cfg);
    const BitVec bits = random_bits(2000, 4);
    const auto s = modem.modulate(bits);
    const BitVec decoded = modem.demodulate(s, bits.size());
    EXPECT_EQ(count_bit_errors(bits, decoded), 0u) << "BT=" << bt;
  }
}

TEST(GmskModem, RoundTripWithUnknownCarrierPhase) {
  // The differential detector must survive an arbitrary phase rotation
  // (unsynchronized USRP oscillators).
  const GmskModem modem;
  const BitVec bits = random_bits(1000, 5);
  auto s = modem.modulate(bits);
  const cplx rot{std::cos(1.234), std::sin(1.234)};
  for (auto& v : s) v *= rot;
  EXPECT_EQ(count_bit_errors(bits, modem.demodulate(s, bits.size())), 0u);
}

TEST(GmskModem, RoundTripWithAmplitudeScaling) {
  const GmskModem modem;
  const BitVec bits = random_bits(1000, 6);
  auto s = modem.modulate(bits);
  for (auto& v : s) v *= 0.01;
  EXPECT_EQ(count_bit_errors(bits, modem.demodulate(s, bits.size())), 0u);
}

TEST(GmskModem, HighSnrBerNearZero) {
  const GmskModem modem;
  const BitVec bits = random_bits(20000, 7);
  auto s = modem.modulate(bits);
  AwgnChannel noise(db_to_linear(-20.0), Rng(8));  // 20 dB SNR
  noise.apply(s);
  const std::size_t errors =
      count_bit_errors(bits, modem.demodulate(s, bits.size()));
  EXPECT_LT(errors, 5u);
}

TEST(GmskModem, BerDegradesGracefullyWithSnr) {
  const GmskModem modem;
  const BitVec bits = random_bits(20000, 9);
  const auto clean = modem.modulate(bits);
  double prev_ber = 0.0;
  for (const double snr_db : {12.0, 6.0, 2.0}) {
    auto s = clean;
    AwgnChannel noise(db_to_linear(-snr_db), Rng(10));
    noise.apply(s);
    const double ber =
        static_cast<double>(
            count_bit_errors(bits, modem.demodulate(s, bits.size()))) /
        static_cast<double>(bits.size());
    EXPECT_GE(ber, prev_ber);
    prev_ber = ber;
  }
  EXPECT_GT(prev_ber, 0.01);  // 2 dB must show substantial errors
}

TEST(GmskModem, TruncatedFramePadsWithZeros) {
  const GmskModem modem;
  const BitVec bits = random_bits(100, 11);
  auto s = modem.modulate(bits);
  s.resize(s.size() / 2);
  const BitVec decoded = modem.demodulate(s, bits.size());
  EXPECT_EQ(decoded.size(), bits.size());
}

TEST(GmskModem, ConfigValidation) {
  GmskConfig cfg;
  cfg.samples_per_symbol = 1;
  EXPECT_THROW(GmskModem{cfg}, InvalidArgument);
  cfg = GmskConfig{};
  cfg.bt = 0.0;
  EXPECT_THROW(GmskModem{cfg}, InvalidArgument);
  cfg = GmskConfig{};
  cfg.pulse_span_symbols = 0;
  EXPECT_THROW(GmskModem{cfg}, InvalidArgument);
}

TEST(GmskModem, NarrowerBtIncreasesIsi) {
  // BT = 0.2 spreads the pulse more than BT = 0.5; at moderate SNR the
  // tighter filter must not do better.
  const BitVec bits = random_bits(30000, 12);
  double ber_tight = 0.0;
  double ber_wide = 0.0;
  for (const double bt : {0.2, 0.5}) {
    GmskConfig cfg;
    cfg.bt = bt;
    const GmskModem modem(cfg);
    auto s = modem.modulate(bits);
    AwgnChannel noise(db_to_linear(-8.0), Rng(13));
    noise.apply(s);
    const double ber =
        static_cast<double>(
            count_bit_errors(bits, modem.demodulate(s, bits.size()))) /
        static_cast<double>(bits.size());
    (bt < 0.3 ? ber_tight : ber_wide) = ber;
  }
  EXPECT_GE(ber_tight, ber_wide * 0.8);
}

}  // namespace
}  // namespace comimo
