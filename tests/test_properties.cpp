// Property-based suites: parameterized sweeps asserting invariants over
// the full (p, b, mt, mr, D, B) grid rather than single points.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "comimo/energy/ebbar.h"
#include "comimo/energy/local_energy.h"
#include "comimo/energy/mimo_energy.h"
#include "comimo/interweave/pair_beamformer.h"
#include "comimo/numeric/rng.h"
#include "comimo/phy/ber.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {
namespace {

// ---------------------------------------------------------------------
// ē_b invariants over the full antenna/constellation grid
// ---------------------------------------------------------------------

using EbGridParam = std::tuple<int, unsigned, unsigned>;  // b, mt, mr

class EbBarGrid : public ::testing::TestWithParam<EbGridParam> {};

TEST_P(EbBarGrid, ForwardMapInvertsAndOrdersInP) {
  const auto [b, mt, mr] = GetParam();
  const EbBarSolver solver;
  double prev = 0.0;
  for (const double p : {5e-2, 5e-3, 5e-4}) {
    const double e = solver.solve(p, b, mt, mr);
    EXPECT_GT(e, prev);
    EXPECT_NEAR(solver.average_ber(e, b, mt, mr), p, p * 1e-6);
    prev = e;
  }
}

TEST_P(EbBarGrid, MoreReceiveAntennasNeverHurt) {
  const auto [b, mt, mr] = GetParam();
  const EbBarSolver solver;
  const double e = solver.solve(1e-3, b, mt, mr);
  const double e_more = solver.solve(1e-3, b, mt, mr + 1);
  EXPECT_LT(e_more, e * (1.0 + 1e-9));
}

TEST_P(EbBarGrid, QuadratureCrossCheck) {
  const auto [b, mt, mr] = GetParam();
  const EbBarSolver solver;
  const double e = solver.solve(1e-3, b, mt, mr);
  EXPECT_NEAR(solver.average_ber_quadrature(e, b, mt, mr, 96), 1e-3,
              1e-3 * 1e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EbBarGrid,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const ::testing::TestParamInfo<EbGridParam>& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "mt" +
             std::to_string(std::get<1>(info.param)) + "mr" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------
// Energy-model invariants over (b, D, B)
// ---------------------------------------------------------------------

using EnergyParam = std::tuple<int, double, double>;  // b, D, B

class EnergyGrid : public ::testing::TestWithParam<EnergyParam> {};

TEST_P(EnergyGrid, EnergiesPositiveAndDecomposed) {
  const auto [b, dist, bw] = GetParam();
  const MimoEnergyModel mimo;
  const LocalEnergyModel local;
  const EnergyBreakdown e = mimo.tx_energy(b, 1e-3, 2, 2, dist, bw);
  EXPECT_GT(e.pa, 0.0);
  EXPECT_GT(e.circuit, 0.0);
  EXPECT_NEAR(e.total(), e.pa + e.circuit, e.total() * 1e-12);
  EXPECT_GT(mimo.rx_energy(b, bw), 0.0);
  EXPECT_GT(local.tx_energy(b, 1e-3, 5.0, bw).total(), 0.0);
}

TEST_P(EnergyGrid, DistanceInversionRoundTrips) {
  const auto [b, dist, bw] = GetParam();
  const MimoEnergyModel mimo;
  const double total = mimo.tx_energy(b, 1e-3, 2, 2, dist, bw).total();
  EXPECT_NEAR(mimo.distance_for_energy(total, b, 1e-3, 2, 2, bw), dist,
              dist * 1e-6);
}

TEST_P(EnergyGrid, HigherRateCutsCircuitEnergyProportionally) {
  const auto [b, dist, bw] = GetParam();
  (void)dist;
  const MimoEnergyModel mimo;
  EXPECT_NEAR(mimo.tx_circuit_energy(b, bw) * b,
              mimo.tx_circuit_energy(1, bw), mimo.tx_circuit_energy(1, bw) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EnergyGrid,
    ::testing::Combine(::testing::Values(1, 2, 6, 12),
                       ::testing::Values(50.0, 150.0, 350.0),
                       ::testing::Values(10e3, 40e3, 100e3)),
    [](const ::testing::TestParamInfo<EnergyParam>& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "d" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "bw" + std::to_string(static_cast<int>(std::get<2>(info.param)));
    });

// ---------------------------------------------------------------------
// STBC round-trip under random channels for every antenna pairing
// ---------------------------------------------------------------------

using StbcParam = std::tuple<std::size_t, std::size_t>;  // mt, mr

class StbcGrid : public ::testing::TestWithParam<StbcParam> {};

TEST_P(StbcGrid, NoiseFreeQpskRoundTrip) {
  const auto [mt, mr] = GetParam();
  const StbcCode code = StbcCode::for_antennas(mt);
  const StbcDecoder decoder(code);
  const QamModulator modem(2);
  Rng rng(1000 + mt * 10 + mr);
  for (int trial = 0; trial < 25; ++trial) {
    const BitVec bits =
        random_bits(2 * code.symbols_per_block(), 77 + trial);
    const std::vector<cplx> s = modem.modulate(bits);
    const CMatrix h = CMatrix::random_gaussian(mr, mt, rng);
    const CMatrix c = code.encode(s);
    CMatrix r(code.block_length(), mr);
    for (std::size_t t = 0; t < code.block_length(); ++t) {
      for (std::size_t j = 0; j < mr; ++j) {
        cplx acc{0.0, 0.0};
        for (std::size_t i = 0; i < mt; ++i) acc += c(t, i) * h(j, i);
        r(t, j) = acc;
      }
    }
    const auto est = decoder.decode(h, r);
    EXPECT_EQ(modem.demodulate(est), bits) << "trial " << trial;
  }
}

TEST_P(StbcGrid, CombiningGainScalesWithChannelPower) {
  const auto [mt, mr] = GetParam();
  const StbcDecoder decoder(StbcCode::for_antennas(mt));
  Rng rng(2000 + mt * 10 + mr);
  const CMatrix h = CMatrix::random_gaussian(mr, mt, rng);
  const CMatrix h2 = h * cplx{2.0, 0.0};
  EXPECT_NEAR(decoder.combining_gain(h2), 4.0 * decoder.combining_gain(h),
              decoder.combining_gain(h) * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StbcGrid,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(1u, 2u, 3u, 4u)),
    [](const ::testing::TestParamInfo<StbcParam>& info) {
      return "mt" + std::to_string(std::get<0>(info.param)) + "mr" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Underlay hop invariants over the Fig. 7 grid
// ---------------------------------------------------------------------

using HopParam = std::tuple<unsigned, unsigned, double>;  // mt, mr, D

class UnderlayGrid : public ::testing::TestWithParam<HopParam> {};

TEST_P(UnderlayGrid, LedgerInvariants) {
  const auto [mt, mr, dist] = GetParam();
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig cfg;
  cfg.mt = mt;
  cfg.mr = mr;
  cfg.hop_distance_m = dist;
  cfg.cluster_diameter_m = 1.0;
  const UnderlayHopPlan plan = planner.plan(cfg);
  // Peak never exceeds total; totals include the peak contribution.
  EXPECT_LE(plan.peak_pa(), plan.total_pa() * (1.0 + 1e-12));
  EXPECT_GE(plan.total_energy(), plan.total_pa());
  // ē_b consistency with the solver at the chosen b.
  const EbBarSolver solver;
  EXPECT_NEAR(solver.average_ber(plan.ebar, plan.b, mt, mr), cfg.ber,
              cfg.ber * 1e-6);
}

TEST_P(UnderlayGrid, CooperativeNeverWorseThanSisoTotalPa) {
  const auto [mt, mr, dist] = GetParam();
  if (mt == 1 && mr == 1) GTEST_SKIP();
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig coop;
  coop.mt = mt;
  coop.mr = mr;
  coop.hop_distance_m = dist;
  UnderlayHopConfig siso = coop;
  siso.mt = 1;
  siso.mr = 1;
  EXPECT_LT(planner.plan(coop).total_pa(), planner.plan(siso).total_pa());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UnderlayGrid,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(1u, 2u, 3u, 4u),
                       ::testing::Values(100.0, 200.0, 300.0)),
    [](const ::testing::TestParamInfo<HopParam>& info) {
      return "mt" + std::to_string(std::get<0>(info.param)) + "mr" +
             std::to_string(std::get<1>(info.param)) + "d" +
             std::to_string(static_cast<int>(std::get<2>(info.param)));
    });

// ---------------------------------------------------------------------
// Null-steering pair: the null holds for every far PU direction
// ---------------------------------------------------------------------

class NullSweep : public ::testing::TestWithParam<int> {};

TEST_P(NullSweep, FarFieldNullHoldsForEveryPuAngle) {
  const double angle_deg = GetParam();
  const PairGeometry geom{Vec2{0.0, 7.5}, Vec2{0.0, -7.5}};
  const Vec2 pu = geom.center() + unit_vec(deg_to_rad(angle_deg)) * 1e5;
  const NullSteeringPair pair(geom, 30.0, pu);
  // Exact field at the PU: far-field design ⇒ tiny residual.
  EXPECT_LT(pair.residual_at_pu(), 1e-2) << "angle " << angle_deg;
  // Energy conservation: no direction exceeds 2× a single element.
  for (double theta = 0.0; theta <= 180.0; theta += 7.5) {
    EXPECT_LE(pair.far_field_amplitude(deg_to_rad(theta)), 2.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Angles, NullSweep,
                         ::testing::Values(0, 30, 60, 90, 120, 150, 180,
                                           210, 270, 330));

// ---------------------------------------------------------------------
// Modulator BER matches theory over Eb/N0 (waveform-level property)
// ---------------------------------------------------------------------

class BpskBerSweep : public ::testing::TestWithParam<double> {};

TEST_P(BpskBerSweep, MeasuredMatchesQFunction) {
  const double ebn0_db = GetParam();
  const BpskModulator modem;
  const double n0 = db_to_linear(-ebn0_db);
  Rng noise_rng(55);
  const std::size_t n = 200000;
  const BitVec bits = random_bits(n, 66);
  auto s = modem.modulate(bits);
  for (auto& v : s) v += noise_rng.complex_gaussian(n0);
  const double measured =
      static_cast<double>(count_bit_errors(bits, modem.demodulate(s))) / n;
  const double theory = ber_bpsk_awgn(db_to_linear(ebn0_db));
  EXPECT_NEAR(measured, theory,
              std::max(4.0 * std::sqrt(theory / n), theory * 0.15))
      << "Eb/N0 " << ebn0_db;
}

INSTANTIATE_TEST_SUITE_P(EbN0, BpskBerSweep,
                         ::testing::Values(0.0, 2.0, 4.0, 6.0, 8.0));

}  // namespace
}  // namespace comimo
