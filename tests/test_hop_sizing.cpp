#include "comimo/underlay/hop_sizing.h"

#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/common/version.h"

namespace comimo {
namespace {

HopSizingQuery base_query() {
  HopSizingQuery q;
  q.mt_available = 4;
  q.mr_available = 4;
  q.hop_distance_m = 200.0;
  return q;
}

TEST(HopSizer, UnconstrainedPicksGlobalEnergyMinimum) {
  const HopSizer sizer;
  const HopSizingResult r = sizer.size(base_query());
  EXPECT_FALSE(r.constrained);
  ASSERT_FALSE(r.feasible.empty());
  // Every candidate is at least as expensive as the winner.
  for (const auto& p : r.feasible) {
    EXPECT_GE(p.total_energy(), r.plan.total_energy() * (1.0 - 1e-12));
  }
  // The winner beats the degenerate SISO configuration.
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig siso;
  siso.mt = 1;
  siso.mr = 1;
  siso.hop_distance_m = 200.0;
  siso.cluster_diameter_m = 2.0;
  EXPECT_LT(r.plan.total_energy(),
            planner.plan(siso, BSelectionRule::kMinTotalEnergy)
                .total_energy());
}

TEST(HopSizer, CooperationWinsAtLongRange) {
  const HopSizer sizer;
  HopSizingQuery q = base_query();
  q.hop_distance_m = 300.0;
  const HopSizingResult r = sizer.size(q);
  // At 300 m the PA term dominates and diversity pays: the optimum is
  // genuinely cooperative.
  EXPECT_GT(r.plan.config.mt * r.plan.config.mr, 1u);
}

TEST(HopSizer, TightPeakCapForcesDifferentConfiguration) {
  const HopSizer sizer;
  HopSizingQuery q = base_query();
  const HopSizingResult unconstrained = sizer.size(q);
  // Find the quietest candidate; a cap between it and the optimum's
  // peak excludes the optimum while leaving something feasible.
  double min_peak = unconstrained.plan.peak_pa();
  for (const auto& p : unconstrained.feasible) {
    min_peak = std::min(min_peak, p.peak_pa());
  }
  const double opt_peak = unconstrained.plan.peak_pa();
  if (min_peak >= opt_peak * 0.99) {
    GTEST_SKIP() << "optimum already has the minimum peak";
  }
  q.peak_pa_cap = 0.5 * (min_peak + opt_peak);
  const HopSizingResult capped = sizer.size(q);
  EXPECT_LE(capped.plan.peak_pa(), q.peak_pa_cap * (1.0 + 1e-12));
  EXPECT_TRUE(capped.constrained);
  EXPECT_GE(capped.plan.total_energy(),
            unconstrained.plan.total_energy() * (1.0 - 1e-12));
}

TEST(HopSizer, ImpossibleCapThrows) {
  const HopSizer sizer;
  HopSizingQuery q = base_query();
  q.peak_pa_cap = 1e-30;
  EXPECT_THROW((void)sizer.size(q), InfeasibleError);
}

TEST(HopSizer, AvailabilityLimitsRespected) {
  const HopSizer sizer;
  HopSizingQuery q = base_query();
  q.mt_available = 1;
  q.mr_available = 2;
  const HopSizingResult r = sizer.size(q);
  EXPECT_LE(r.plan.config.mt, 1u);
  EXPECT_LE(r.plan.config.mr, 2u);
  for (const auto& p : r.feasible) {
    EXPECT_LE(p.config.mt, 1u);
    EXPECT_LE(p.config.mr, 2u);
  }
}

TEST(HopSizer, FeasibleListSorted) {
  const HopSizer sizer;
  const HopSizingResult r = sizer.size(base_query());
  for (std::size_t i = 1; i < r.feasible.size(); ++i) {
    EXPECT_LE(r.feasible[i - 1].total_energy(),
              r.feasible[i].total_energy() * (1.0 + 1e-12));
  }
}

TEST(HopSizer, Validation) {
  const HopSizer sizer;
  HopSizingQuery q = base_query();
  q.mt_available = 0;
  EXPECT_THROW((void)sizer.size(q), InvalidArgument);
  q = base_query();
  q.hop_distance_m = 0.0;
  EXPECT_THROW((void)sizer.size(q), InvalidArgument);
}

TEST(Version, Coherent) {
  constexpr Version v = version();
  EXPECT_EQ(v.major, 1);
  const std::string s = version_string();
  EXPECT_EQ(s, std::to_string(v.major) + "." + std::to_string(v.minor) +
                   "." + std::to_string(v.patch));
}

}  // namespace
}  // namespace comimo
