#include "comimo/net/lifetime.h"

#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/net/hop_scheduler.h"

namespace comimo {
namespace {

CoMimoNet lifetime_net(std::uint64_t seed, double battery = 150.0) {
  const auto nodes = clustered_field(10, 3, 6.0, 400.0, 400.0, seed,
                                     battery, battery * 1.2);
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 40.0;
  cfg.cluster_diameter_m = 16.0;
  cfg.link_range_m = 280.0;
  return CoMimoNet(nodes, cfg);
}

TEST(Lifetime, ReportsDeathsAndLeavesInputUntouched) {
  const CoMimoNet net = lifetime_net(3);
  LifetimeConfig cfg;
  cfg.round_cap = 2000;
  const LifetimeReport r = simulate_lifetime(net, SystemParams{}, cfg);
  EXPECT_GT(r.rounds_to_first_death, 0u);
  EXPECT_GE(r.rounds_to_death_fraction, r.rounds_to_first_death);
  // The input network keeps its batteries.
  for (const auto& n : net.nodes()) {
    EXPECT_GE(n.battery_j, 150.0);
  }
}

TEST(Lifetime, CooperationDelaysFirstDeath) {
  const CoMimoNet net = lifetime_net(5);
  LifetimeConfig cfg;
  cfg.round_cap = 3000;
  cfg.mode = RoutingMode::kCooperative;
  const LifetimeReport coop = simulate_lifetime(net, SystemParams{}, cfg);
  cfg.mode = RoutingMode::kSisoHeadsOnly;
  const LifetimeReport siso = simulate_lifetime(net, SystemParams{}, cfg);
  ASSERT_GT(coop.rounds_to_first_death, 0u);
  ASSERT_GT(siso.rounds_to_first_death, 0u);
  EXPECT_GT(coop.rounds_to_first_death, siso.rounds_to_first_death);
}

TEST(Lifetime, HugeBatteriesCensorAtCap) {
  const CoMimoNet net = lifetime_net(7, 1e9);
  LifetimeConfig cfg;
  cfg.round_cap = 50;
  const LifetimeReport r = simulate_lifetime(net, SystemParams{}, cfg);
  EXPECT_TRUE(r.censored);
  EXPECT_EQ(r.rounds_to_death_fraction, 50u);
  EXPECT_EQ(r.rounds_to_first_death, 0u);
  EXPECT_EQ(r.dead_nodes, 0u);
}

TEST(Lifetime, Validation) {
  const CoMimoNet net = lifetime_net(9);
  LifetimeConfig cfg;
  cfg.bits_per_round = 0.0;
  EXPECT_THROW((void)simulate_lifetime(net, SystemParams{}, cfg),
               InvalidArgument);
  cfg = LifetimeConfig{};
  cfg.death_fraction = 0.0;
  EXPECT_THROW((void)simulate_lifetime(net, SystemParams{}, cfg),
               InvalidArgument);
}

// Pinned regression: the incremental battery tracker (running min +
// dead-flag folds instead of per-round O(n) rescans) and the
// incremental remove_nodes() re-clustering must leave every lifetime
// result bit-identical to the pre-index implementation.  The literals
// below were produced by the original full-rescan/full-rebuild code.
TEST(Lifetime, PinnedHappyPathUnchangedByIncrementalTracker) {
  const CoMimoNet net = lifetime_net(3);
  LifetimeConfig cfg;
  cfg.round_cap = 2000;
  const LifetimeReport r = simulate_lifetime(net, SystemParams{}, cfg);
  EXPECT_EQ(r.rounds_to_first_death, 305u);
  EXPECT_EQ(r.rounds_to_death_fraction, 597u);
  EXPECT_FALSE(r.censored);
  EXPECT_EQ(r.min_battery_j, -174.51635702345587);
  EXPECT_EQ(r.dead_nodes, 8u);
}

TEST(Lifetime, PinnedFaultedPathUnchangedByIncrementalRecluster) {
  const auto nodes =
      clustered_field(12, 3, 6.0, 420.0, 420.0, 11, 120.0, 150.0);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 16.0;
  net_cfg.link_range_m = 280.0;
  const CoMimoNet net(nodes, net_cfg);
  LifetimeConfig cfg;
  cfg.round_cap = 1500;
  cfg.faults.enabled = true;
  cfg.faults.node_death_fraction = 0.15;
  cfg.faults.death_window_lo = 0.02;
  cfg.faults.death_window_hi = 0.15;
  cfg.faults.slot_erasure_prob = 0.08;
  cfg.faults.pu_preemption = false;
  cfg.faults.seed = 77;
  cfg.traffic_seed = 5;
  const LifetimeReport r = simulate_lifetime(net, SystemParams{}, cfg);
  EXPECT_EQ(r.rounds_to_first_death, 33u);
  EXPECT_EQ(r.rounds_to_death_fraction, 316u);
  EXPECT_FALSE(r.censored);
  EXPECT_EQ(r.min_battery_j, -90.803951379992583);
  EXPECT_EQ(r.dead_nodes, 9u);
  EXPECT_EQ(r.resilience.node_deaths, 5u);
  EXPECT_EQ(r.resilience.route_repairs, 5u);
  EXPECT_EQ(r.resilience.retransmissions, 92u);
  EXPECT_EQ(r.resilience.packets_offered, 266u);
  EXPECT_EQ(r.resilience.packets_delivered, 266u);
  EXPECT_EQ(r.resilience.energy_spent_j, 2580.3818850427742);
}

TEST(HopSchedule, GoodputAccountsForAllSteps) {
  const UnderlayCooperativeHop planner;
  UnderlayHopConfig siso_cfg;
  siso_cfg.mt = 1;
  siso_cfg.mr = 1;
  UnderlayHopConfig mimo_cfg;
  mimo_cfg.mt = 2;
  mimo_cfg.mr = 3;
  const HopScheduler scheduler;
  const double bits = 1.2e4;
  const UnderlayHopPlan siso_plan = planner.plan(siso_cfg);
  const UnderlayHopPlan mimo_plan = planner.plan(mimo_cfg);
  const HopSchedule siso = scheduler.schedule(siso_plan, {0}, {1}, bits);
  const HopSchedule mimo =
      scheduler.schedule(mimo_plan, {0, 1}, {2, 3, 4}, bits);
  EXPECT_NEAR(siso.goodput_bps() * siso.makespan_s, bits, 1e-6);
  EXPECT_GT(mimo.goodput_bps(), 0.0);
  // Same payload, extra local steps: at equal constellation the
  // cooperative hop trades goodput for energy/diversity.
  EXPECT_GT(mimo.slots.size(), siso.slots.size());
  if (siso_plan.b == mimo_plan.b) {
    EXPECT_LT(mimo.goodput_bps(), siso.goodput_bps());
  }
}

}  // namespace
}  // namespace comimo
