// Integration tests across modules: the energy model's ē_b against a
// waveform-level STBC simulation, table-driven vs solver-driven
// planning, and a full network → routing → scheduling pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "comimo/channel/awgn.h"
#include "comimo/energy/ebbar_table.h"
#include "comimo/net/hop_scheduler.h"
#include "comimo/net/routing.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/stbc.h"
#include "comimo/testbed/coop_hop_sim.h"
#include "comimo/testbed/experiments.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {
namespace {

// ---------------------------------------------------------------------
// The headline consistency check: the ē_b the planner computes really
// does deliver the target BER when actual QPSK symbols are space-time
// coded over an actual Rayleigh channel.
// ---------------------------------------------------------------------

struct WaveformCase {
  unsigned mt;
  unsigned mr;
  double p;
};

class EbBarWaveform : public ::testing::TestWithParam<WaveformCase> {};

TEST_P(EbBarWaveform, PlannedEnergyMeetsTargetBer) {
  const auto [mt, mr, p_target] = GetParam();
  const int b = 2;  // QPSK: the paper's approximation is exact here
  const EbBarSolver solver;
  const double ebar = solver.solve(p_target, b, mt, mr);

  // Waveform simulation with N0 = 1: scale symbols so the per-bit
  // received energy per unit ‖H‖² is ē_b/N0 (the solver's γ_b), with
  // the STBC's 1/√mt power split providing the /mt of eq. (5).
  const double gamma_unit = ebar / solver.params().n0_w_per_hz;
  const double sym_scale = std::sqrt(static_cast<double>(b) * gamma_unit);
  const QamModulator modem(b);
  const StbcCode code = StbcCode::for_antennas(mt);
  const StbcDecoder decoder(code);
  Rng rng(12345 + mt * 100 + mr);
  AwgnChannel noise(1.0, Rng(999 + mt + mr));

  std::size_t errors = 0;
  std::size_t total_bits = 0;
  const std::size_t kk = code.symbols_per_block();
  const int blocks = 60000 / static_cast<int>(kk);
  for (int blk = 0; blk < blocks; ++blk) {
    const BitVec bits = random_bits(b * kk, 31 + blk);
    std::vector<cplx> s = modem.modulate(bits);
    for (auto& v : s) v *= sym_scale;
    const CMatrix h = CMatrix::random_gaussian(mr, mt, rng);
    const CMatrix c = code.encode(s);
    CMatrix r(code.block_length(), mr);
    for (std::size_t t = 0; t < code.block_length(); ++t) {
      for (std::size_t j = 0; j < mr; ++j) {
        cplx acc{0.0, 0.0};
        for (std::size_t i = 0; i < mt; ++i) acc += c(t, i) * h(j, i);
        r(t, j) = acc + noise.sample();
      }
    }
    auto est = decoder.decode(h, r);
    for (auto& v : est) v /= sym_scale;
    errors += count_bit_errors(bits, modem.demodulate(est));
    total_bits += b * kk;
  }
  const double measured = static_cast<double>(errors) / total_bits;
  EXPECT_NEAR(measured, p_target,
              std::max(p_target * 0.35,
                       4.0 * std::sqrt(p_target / total_bits)))
      << "mt=" << mt << " mr=" << mr;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EbBarWaveform,
    ::testing::Values(WaveformCase{1, 1, 1e-2}, WaveformCase{2, 1, 1e-2},
                      WaveformCase{1, 2, 1e-2}, WaveformCase{2, 2, 5e-3},
                      WaveformCase{2, 3, 5e-3}),
    [](const ::testing::TestParamInfo<WaveformCase>& info) {
      return "mt" + std::to_string(info.param.mt) + "mr" +
             std::to_string(info.param.mr);
    });

// ---------------------------------------------------------------------
// Table-driven planning (the algorithms' Preprocessing step) agrees
// with direct solver calls after a save/load round trip.
// ---------------------------------------------------------------------

TEST(Integration, TableDrivenPlanningMatchesSolver) {
  const EbBarSolver solver;
  EbBarTable::Spec spec;
  spec.ber_targets = {1e-3};
  spec.b_max = 8;
  spec.m_max = 3;
  const EbBarTable built = EbBarTable::build(solver, spec);

  // Ship the table to an "SU node" as text and load it back.
  std::stringstream wire;
  built.save(wire);
  const EbBarTable loaded = EbBarTable::load(wire);

  const MimoEnergyModel model;
  for (unsigned mt = 1; mt <= 3; ++mt) {
    for (unsigned mr = 1; mr <= 3; ++mr) {
      const EbBarEntry pick = loaded.min_ebar_constellation(1e-3, mt, mr);
      const double via_table =
          model.pa_energy_with_ebar(pick.b, pick.ebar, mt, 200.0);
      const double via_solver = model.pa_energy(pick.b, 1e-3, mt, mr, 200.0);
      EXPECT_NEAR(via_table, via_solver, via_solver * 1e-9)
          << mt << "x" << mr;
    }
  }
}

// ---------------------------------------------------------------------
// Network pipeline: field → clusters → backbone → route → schedule,
// with energy bookkeeping consistent end to end.
// ---------------------------------------------------------------------

TEST(Integration, NetworkRouteScheduleEnergyConsistency) {
  const auto nodes = random_field(50, 500.0, 500.0, 2024);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 15.0;
  net_cfg.link_range_m = 300.0;
  CoMimoNet net(nodes, net_cfg);
  ASSERT_TRUE(net.validate());

  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3);
  // Find a connected pair of nodes in different clusters.
  NodeId src = 0;
  NodeId dst = 0;
  for (const auto& n : net.nodes()) {
    if (net.cluster_of(n.id) != net.cluster_of(0) &&
        router.backbone().connected(net.cluster_of(0),
                                    net.cluster_of(n.id))) {
      dst = n.id;
      break;
    }
  }
  ASSERT_NE(dst, src) << "field too sparse for the test seed";
  const RouteReport report = router.route(src, dst);
  ASSERT_GE(report.num_hops(), 1u);

  // Schedule every hop and check the slot energies add up to the
  // transmit-side share of the route ledger.
  const HopScheduler scheduler;
  const double bits = 1e4;
  for (const auto& hop : report.hops) {
    const auto& tx = net.clusters()[hop.from].members;
    const auto& rx = net.clusters()[hop.to].members;
    const HopSchedule sched = scheduler.schedule(hop.plan, tx, rx, bits);
    EXPECT_TRUE(sched.is_sequential());
    double scheduled_tx_energy = 0.0;
    for (const auto& slot : sched.slots) {
      scheduled_tx_energy +=
          slot.tx_energy_j * static_cast<double>(slot.transmitters.size());
    }
    double ledger_tx_energy =
        hop.plan.config.mt * (hop.plan.mimo_tx_pa + hop.plan.mimo_tx_circuit);
    if (hop.plan.config.mt > 1) {
      ledger_tx_energy += hop.plan.local_tx_pa + hop.plan.local_tx_circuit;
    }
    if (hop.plan.config.mr > 1) {
      ledger_tx_energy += (hop.plan.config.mr - 1) *
                          (hop.plan.local_tx_pa + hop.plan.local_tx_circuit);
    }
    EXPECT_NEAR(scheduled_tx_energy, ledger_tx_energy * bits,
                ledger_tx_energy * bits * 1e-9);
  }

  // Battery drain leaves every participating node strictly poorer and
  // no node richer.
  CoMimoNet drained = net;
  router.apply_battery_drain(drained, report, bits);
  for (const auto& n : net.nodes()) {
    EXPECT_LE(drained.node(n.id).battery_j, n.battery_j + 1e-15);
  }
}

// ---------------------------------------------------------------------
// The full underlay testbed path carries a real image end to end.
// ---------------------------------------------------------------------

TEST(Integration, ImageSurvivesMultiHopWaveformRoute) {
  // Route a (small) image across three waveform-simulated cooperative
  // hops planned at BER 1e-3: the end-to-end BER stays low enough that
  // most CRC-protected packets survive.
  const UnderlayCooperativeHop planner;
  std::vector<UnderlayHopPlan> plans;
  for (const auto& [mt, mr] :
       std::vector<std::pair<unsigned, unsigned>>{{2, 2}, {1, 2}, {2, 1}}) {
    UnderlayHopConfig cfg;
    cfg.mt = mt;
    cfg.mr = mr;
    cfg.hop_distance_m = 150.0;
    cfg.ber = 1e-3;
    plans.push_back(planner.plan(cfg, BSelectionRule::kMinTotalPa));
  }
  const RouteSimResult route = simulate_route(plans, 48000, 30.0, 21);
  // Per-hop target 1e-3 ⇒ end-to-end ≈ 3e-3.
  EXPECT_LT(route.ber, 8e-3);
  EXPECT_GT(route.ber, 1e-4);
}

TEST(Integration, ImageSurvivesCooperativeUnderlayTransfer) {
  UnderlayPerConfig cfg;
  cfg.num_packets = 60;
  cfg.amplitude = 800.0;
  cfg.cooperative = true;
  cfg.seed = 5;
  const UnderlayPerResult r = run_underlay_per(cfg);
  EXPECT_LT(r.per, 0.05);
  ASSERT_TRUE(r.reassembly.recoverable());
  // The recovered pixels match the synthetic original except in lost
  // regions.
  const SyntheticImage original = make_test_image(60, 1500);
  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < original.pixels.size(); ++i) {
    if (original.pixels[i] != r.reassembly.image.pixels[i]) ++mismatched;
  }
  EXPECT_LE(mismatched, r.packets_lost * 1500);
}

}  // namespace
}  // namespace comimo
