// Tests for the batch-SoA SIMD layer: every vector tier must be
// bitwise identical to the scalar reference kernels lane by lane, the
// batched link kernel must reproduce the scalar workspace path exactly
// (including tails shorter than the lane width and the BPSK sign rule),
// the batched Monte-Carlo grouping must stay thread-count invariant,
// and the 64-byte-aligned storage contract must hold everywhere the
// kernels load from.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/common/units.h"
#include "comimo/mc/engine.h"
#include "comimo/numeric/aligned.h"
#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/simd/simd.h"
#include "comimo/phy/ber_sweep.h"
#include "comimo/phy/link_batch.h"
#include "comimo/phy/link_workspace.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"

namespace comimo {
namespace {

using simd::BatchKernels;
using simd::Tier;

// Every vector tier the host can actually run; empty under
// COMIMO_SIMD=OFF or on a CPU without any compiled backend.
std::vector<const BatchKernels*> vector_tiers() {
  std::vector<const BatchKernels*> out;
  for (const Tier t :
       {Tier::kSse2, Tier::kAvx2, Tier::kAvx512, Tier::kNeon}) {
    if (const BatchKernels* k = simd::kernels_for_tier(t)) out.push_back(k);
  }
  return out;
}

AlignedVec<double> random_plane(std::size_t elems, std::size_t width,
                                Rng& rng) {
  AlignedVec<double> plane(elems * width);
  for (auto& v : plane) v = rng.complex_gaussian().real();
  return plane;
}

// Extracts lane `w` of an SoA plane into a width-1 plane so the scalar
// kernel table can serve as the per-lane reference.
AlignedVec<double> lane_of(const AlignedVec<double>& plane, std::size_t elems,
                           std::size_t width, std::size_t w) {
  AlignedVec<double> out(elems);
  for (std::size_t e = 0; e < elems; ++e) out[e] = plane[e * width + w];
  return out;
}

void expect_lane_bits_equal(const AlignedVec<double>& got, std::size_t width,
                            std::size_t w, const AlignedVec<double>& want,
                            const char* what) {
  ASSERT_EQ(got.size(), want.size() * width);
  for (std::size_t e = 0; e < want.size(); ++e) {
    EXPECT_EQ(got[e * width + w], want[e])
        << what << " element " << e << " lane " << w;
  }
}

// ------------------------------------------------------- dispatch -----

TEST(SimdBatch, ScalarTierIsAlwaysAvailable) {
  const BatchKernels* scalar = simd::kernels_for_tier(Tier::kScalar);
  ASSERT_NE(scalar, nullptr);
  EXPECT_EQ(scalar->tier, Tier::kScalar);
  EXPECT_EQ(scalar->width, 1u);
  EXPECT_STREQ(simd::tier_name(Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(Tier::kSse2), "sse2");
  EXPECT_STREQ(simd::tier_name(Tier::kAvx2), "avx2");
  EXPECT_STREQ(simd::tier_name(Tier::kAvx512), "avx512");
  EXPECT_STREQ(simd::tier_name(Tier::kNeon), "neon");
  // The AVX-512 table, when compiled in and runnable, carries 8 lanes.
  if (const BatchKernels* k = simd::kernels_for_tier(Tier::kAvx512)) {
    EXPECT_EQ(k->width, 8u);
  }
  // Whatever detection picks must actually be runnable here.
  EXPECT_NE(simd::kernels_for_tier(simd::detect_best_tier()), nullptr);
}

TEST(SimdBatch, ActiveKernelsPinOnceAndSetModeGuards) {
  // Pin (or observe the existing pin) first so this test cannot force a
  // tier on the rest of the binary.
  const BatchKernels& active = simd::active_kernels();
  EXPECT_EQ(active.tier, simd::active_tier());
  EXPECT_EQ(active.width, simd::batch_width());
  EXPECT_GE(active.width, 1u);
  // Re-requesting the pinned tier (or auto) is a no-op...
  EXPECT_NO_THROW(simd::set_mode(simd::tier_name(simd::active_tier())));
  EXPECT_NO_THROW(simd::set_mode("auto"));
  // ...an unknown token always throws...
  EXPECT_THROW(simd::set_mode("avx1024"), InvalidArgument);
  // ...and a conflicting tier after the pin throws instead of silently
  // switching mid-process.
  if (simd::active_tier() != Tier::kScalar) {
    EXPECT_THROW(simd::set_mode("scalar"), InvalidArgument);
  }
}

// ------------------------------------- per-kernel bitwise identity ----

TEST(SimdBatch, MultiplyMatchesScalarLaneBitwise) {
  for (const BatchKernels* k : vector_tiers()) {
    const std::size_t w_count = k->width;
    const BatchKernels* scalar = simd::detail::scalar_kernels();
    struct Dims {
      std::size_t a_rows, a_cols, b_cols;
    };
    for (const Dims d : {Dims{2, 2, 2}, Dims{4, 4, 4}, Dims{3, 2, 4}}) {
      Rng rng(11, d.a_rows * 16 + d.b_cols);
      const auto a_re = random_plane(d.a_rows * d.a_cols, w_count, rng);
      const auto a_im = random_plane(d.a_rows * d.a_cols, w_count, rng);
      const auto b_re = random_plane(d.a_cols * d.b_cols, w_count, rng);
      const auto b_im = random_plane(d.a_cols * d.b_cols, w_count, rng);
      AlignedVec<double> out_re(d.a_rows * d.b_cols * w_count);
      AlignedVec<double> out_im(d.a_rows * d.b_cols * w_count);
      k->multiply(a_re.data(), a_im.data(), b_re.data(), b_im.data(),
                  out_re.data(), out_im.data(), d.a_rows, d.a_cols,
                  d.b_cols);
      for (std::size_t w = 0; w < w_count; ++w) {
        const auto la_re = lane_of(a_re, d.a_rows * d.a_cols, w_count, w);
        const auto la_im = lane_of(a_im, d.a_rows * d.a_cols, w_count, w);
        const auto lb_re = lane_of(b_re, d.a_cols * d.b_cols, w_count, w);
        const auto lb_im = lane_of(b_im, d.a_cols * d.b_cols, w_count, w);
        AlignedVec<double> want_re(d.a_rows * d.b_cols);
        AlignedVec<double> want_im(d.a_rows * d.b_cols);
        scalar->multiply(la_re.data(), la_im.data(), lb_re.data(),
                         lb_im.data(), want_re.data(), want_im.data(),
                         d.a_rows, d.a_cols, d.b_cols);
        expect_lane_bits_equal(out_re, w_count, w, want_re, "multiply re");
        expect_lane_bits_equal(out_im, w_count, w, want_im, "multiply im");
      }
    }
  }
}

TEST(SimdBatch, MultiplyTransposedMatchesScalarLaneBitwise) {
  for (const BatchKernels* k : vector_tiers()) {
    const std::size_t w_count = k->width;
    const BatchKernels* scalar = simd::detail::scalar_kernels();
    const std::size_t a_rows = 4, a_cols = 3, b_rows = 2;
    Rng rng(12);
    const auto a_re = random_plane(a_rows * a_cols, w_count, rng);
    const auto a_im = random_plane(a_rows * a_cols, w_count, rng);
    const auto b_re = random_plane(b_rows * a_cols, w_count, rng);
    const auto b_im = random_plane(b_rows * a_cols, w_count, rng);
    AlignedVec<double> out_re(a_rows * b_rows * w_count);
    AlignedVec<double> out_im(a_rows * b_rows * w_count);
    k->multiply_transposed(a_re.data(), a_im.data(), b_re.data(), b_im.data(),
                           out_re.data(), out_im.data(), a_rows, a_cols,
                           b_rows);
    for (std::size_t w = 0; w < w_count; ++w) {
      const auto la_re = lane_of(a_re, a_rows * a_cols, w_count, w);
      const auto la_im = lane_of(a_im, a_rows * a_cols, w_count, w);
      const auto lb_re = lane_of(b_re, b_rows * a_cols, w_count, w);
      const auto lb_im = lane_of(b_im, b_rows * a_cols, w_count, w);
      AlignedVec<double> want_re(a_rows * b_rows);
      AlignedVec<double> want_im(a_rows * b_rows);
      scalar->multiply_transposed(la_re.data(), la_im.data(), lb_re.data(),
                                  lb_im.data(), want_re.data(),
                                  want_im.data(), a_rows, a_cols, b_rows);
      expect_lane_bits_equal(out_re, w_count, w, want_re, "mul_t re");
      expect_lane_bits_equal(out_im, w_count, w, want_im, "mul_t im");
    }
  }
}

TEST(SimdBatch, ScaleDivideMatchScalarLaneBitwise) {
  for (const BatchKernels* k : vector_tiers()) {
    const std::size_t w_count = k->width;
    const BatchKernels* scalar = simd::detail::scalar_kernels();
    const std::size_t elems = 7;  // deliberately not a width multiple
    const double s = 1.7320508075688772;
    Rng rng(13);
    for (const bool divide : {false, true}) {
      auto re = random_plane(elems, w_count, rng);
      auto im = random_plane(elems, w_count, rng);
      const auto re0 = re, im0 = im;
      (divide ? k->divide : k->scale)(re.data(), im.data(), elems, s);
      for (std::size_t w = 0; w < w_count; ++w) {
        auto want_re = lane_of(re0, elems, w_count, w);
        auto want_im = lane_of(im0, elems, w_count, w);
        (divide ? scalar->divide : scalar->scale)(want_re.data(),
                                                  want_im.data(), elems, s);
        expect_lane_bits_equal(re, w_count, w, want_re,
                               divide ? "divide re" : "scale re");
        expect_lane_bits_equal(im, w_count, w, want_im,
                               divide ? "divide im" : "scale im");
      }
    }
  }
}

TEST(SimdBatch, StbcEncodeMatchesScalarLaneBitwise) {
  for (const BatchKernels* k : vector_tiers()) {
    const std::size_t w_count = k->width;
    const BatchKernels* scalar = simd::detail::scalar_kernels();
    for (std::size_t mt = 1; mt <= kMaxStbcTx; ++mt) {
      const StbcCode code = StbcCode::for_antennas(mt);
      const std::size_t t = code.block_length();
      const std::size_t kk = code.symbols_per_block();
      Rng rng(14, mt);
      const auto sym_re = random_plane(kk, w_count, rng);
      const auto sym_im = random_plane(kk, w_count, rng);
      AlignedVec<double> out_re(t * mt * w_count), out_im(t * mt * w_count);
      k->stbc_encode(code.coeff_a_flat().data(), code.coeff_b_flat().data(),
                     t, mt, kk, code.power_scale(), sym_re.data(),
                     sym_im.data(), out_re.data(), out_im.data());
      for (std::size_t w = 0; w < w_count; ++w) {
        const auto ls_re = lane_of(sym_re, kk, w_count, w);
        const auto ls_im = lane_of(sym_im, kk, w_count, w);
        AlignedVec<double> want_re(t * mt), want_im(t * mt);
        scalar->stbc_encode(code.coeff_a_flat().data(),
                            code.coeff_b_flat().data(), t, mt, kk,
                            code.power_scale(), ls_re.data(), ls_im.data(),
                            want_re.data(), want_im.data());
        expect_lane_bits_equal(out_re, w_count, w, want_re, "encode re");
        expect_lane_bits_equal(out_im, w_count, w, want_im, "encode im");
      }
    }
  }
}

TEST(SimdBatch, StbcDecodePlanesMatchScalarLaneBitwise) {
  for (const BatchKernels* k : vector_tiers()) {
    const std::size_t w_count = k->width;
    const BatchKernels* scalar = simd::detail::scalar_kernels();
    for (std::size_t mt = 1; mt <= kMaxStbcTx; ++mt) {
      const StbcCode code = StbcCode::for_antennas(mt);
      const std::size_t t = code.block_length();
      const std::size_t kk = code.symbols_per_block();
      const std::size_t mr = 2;
      const std::size_t rows = 2 * t * mr;
      const std::size_t cols = 2 * kk;
      Rng rng(15, mt);
      const auto h_re = random_plane(mr * mt, w_count, rng);
      const auto h_im = random_plane(mr * mt, w_count, rng);
      const auto rx_re = random_plane(t * mr, w_count, rng);
      const auto rx_im = random_plane(t * mr, w_count, rng);
      AlignedVec<double> f(rows * cols * w_count), y(rows * w_count);
      AlignedVec<double> gram(cols * cols * w_count), rhs(cols * w_count);
      k->stbc_build_fy(code.coeff_a_flat().data(), code.coeff_b_flat().data(),
                       t, mt, kk, mr, code.power_scale(), h_re.data(),
                       h_im.data(), rx_re.data(), rx_im.data(), f.data(),
                       y.data());
      k->gram_rhs(f.data(), y.data(), rows, cols, gram.data(), rhs.data());
      for (std::size_t w = 0; w < w_count; ++w) {
        const auto lh_re = lane_of(h_re, mr * mt, w_count, w);
        const auto lh_im = lane_of(h_im, mr * mt, w_count, w);
        const auto lrx_re = lane_of(rx_re, t * mr, w_count, w);
        const auto lrx_im = lane_of(rx_im, t * mr, w_count, w);
        AlignedVec<double> want_f(rows * cols), want_y(rows);
        AlignedVec<double> want_gram(cols * cols), want_rhs(cols);
        scalar->stbc_build_fy(code.coeff_a_flat().data(),
                              code.coeff_b_flat().data(), t, mt, kk, mr,
                              code.power_scale(), lh_re.data(), lh_im.data(),
                              lrx_re.data(), lrx_im.data(), want_f.data(),
                              want_y.data());
        scalar->gram_rhs(want_f.data(), want_y.data(), rows, cols,
                         want_gram.data(), want_rhs.data());
        expect_lane_bits_equal(f, w_count, w, want_f, "F");
        expect_lane_bits_equal(y, w_count, w, want_y, "y");
        expect_lane_bits_equal(gram, w_count, w, want_gram, "gram");
        expect_lane_bits_equal(rhs, w_count, w, want_rhs, "rhs");
      }
    }
  }
}

TEST(SimdBatch, QamNearestMatchesBruteForceArgmin) {
  // Brute-force strict-< first-minimum argmin as an oracle independent
  // of both the scalar table and the modulator, then every tier against
  // the scalar table bit-for-bit.
  for (const int b : {2, 3, 4}) {
    const auto modem = make_modulator(b);
    const auto& points = modem->constellation();
    const std::size_t elems = 9;
    for (const BatchKernels* k :
         {simd::detail::scalar_kernels(), simd::kernels_for_tier(
                                              simd::detect_best_tier())}) {
      if (k == nullptr) continue;
      const std::size_t w_count = k->width;
      Rng rng(16, static_cast<std::uint64_t>(b));
      const auto re = random_plane(elems, w_count, rng);
      const auto im = random_plane(elems, w_count, rng);
      std::vector<std::uint32_t> labels(elems * w_count);
      k->qam_nearest(re.data(), im.data(), elems, points.data(),
                     points.size(), labels.data());
      for (std::size_t e = 0; e < elems; ++e) {
        for (std::size_t w = 0; w < w_count; ++w) {
          const double r_re = re[e * w_count + w];
          const double r_im = im[e * w_count + w];
          std::uint32_t want = 0;
          double best = std::numeric_limits<double>::infinity();
          for (std::size_t i = 0; i < points.size(); ++i) {
            const double dre = r_re - points[i].real();
            const double dim = r_im - points[i].imag();
            const double d = dre * dre + dim * dim;
            if (d < best) {
              best = d;
              want = static_cast<std::uint32_t>(i);
            }
          }
          EXPECT_EQ(labels[e * w_count + w], want)
              << "b=" << b << " tier=" << simd::tier_name(k->tier);
        }
      }
    }
  }
}

TEST(SimdBatch, RandomFillKeepsPerLaneStreams) {
  // Lane w of the batched fill must replay exactly the scalar draw
  // sequence of its own generator — the (seed, trial) contract.
  const std::size_t elems = 6, width = 4;
  AlignedVec<double> re(elems * width), im(elems * width);
  std::vector<Rng> rngs;
  for (std::size_t w = 0; w < width; ++w) rngs.emplace_back(21, w);
  simd::random_gaussian_fill_batch(re.data(), im.data(), elems, width,
                                   rngs.data(), 1.0);
  for (std::size_t w = 0; w < width; ++w) {
    Rng ref(21, w);
    for (std::size_t e = 0; e < elems; ++e) {
      const cplx z = ref.complex_gaussian(1.0);
      EXPECT_EQ(re[e * width + w], z.real());
      EXPECT_EQ(im[e * width + w], z.imag());
    }
  }
  // And the additive variant accumulates on top bitwise identically.
  AlignedVec<double> re2 = re, im2 = im;
  std::vector<Rng> rngs2;
  for (std::size_t w = 0; w < width; ++w) rngs2.emplace_back(22, w);
  simd::add_scaled_noise_into_batch(re2.data(), im2.data(), elems, width,
                                    rngs2.data(), 1.0);
  for (std::size_t w = 0; w < width; ++w) {
    Rng ref(22, w);
    for (std::size_t e = 0; e < elems; ++e) {
      const cplx z = ref.complex_gaussian(1.0);
      EXPECT_EQ(re2[e * width + w], re[e * width + w] + z.real());
      EXPECT_EQ(im2[e * width + w], im[e * width + w] + z.imag());
    }
  }
}

// --------------------------------------- batched link kernel ----------

TEST(SimdBatch, RunBlockBatchMatchesRunBlockPerLane) {
  const std::size_t width = simd::batch_width();
  struct Shape {
    int b;
    unsigned mt;
    unsigned mr;
  };
  // b = 1 exercises the BPSK sign rule (NOT the distance argmin: a tiny
  // negative estimate can tie in distance yet must decode to bit 1).
  for (const Shape shape :
       {Shape{1, 2, 2}, Shape{2, 2, 2}, Shape{2, 4, 4}, Shape{4, 2, 2}}) {
    const WaveformBerKernel kernel(shape.b, shape.mt, shape.mr,
                                   db_to_linear(6.0));
    LinkBatchWorkspace bws;
    kernel.prepare_batch(bws, width);
    LinkWorkspace ws;
    kernel.prepare(ws);
    const std::size_t bpb = kernel.bits_per_block();
    // Full groups and every tail length 1..width-1.
    for (std::size_t count = 1; count <= width; ++count) {
      for (std::uint64_t base : {0ull, 97ull}) {
        std::vector<Rng> rngs;
        for (std::size_t i = 0; i < count; ++i) rngs.emplace_back(5, base + i);
        const std::size_t batch_errors =
            kernel.run_block_batch(bws, rngs.data(), count);
        std::size_t scalar_errors = 0;
        for (std::size_t i = 0; i < count; ++i) {
          Rng lane_rng(5, base + i);
          scalar_errors += kernel.run_block(ws, lane_rng);
          // Lane-major staging must mirror the scalar workspace bits.
          for (std::size_t bit = 0; bit < bpb; ++bit) {
            ASSERT_EQ(bws.bits[i * bpb + bit], ws.bits[bit])
                << "b=" << shape.b << " count=" << count << " lane=" << i;
            ASSERT_EQ(bws.decoded[i * bpb + bit], ws.decoded[bit])
                << "b=" << shape.b << " count=" << count << " lane=" << i;
          }
        }
        EXPECT_EQ(batch_errors, scalar_errors)
            << "b=" << shape.b << " mt=" << shape.mt << " mr=" << shape.mr
            << " count=" << count << " base=" << base;
      }
    }
  }
}

TEST(SimdBatch, MeasureWaveformBerIsThreadAndBatchInvariant) {
  // Non-multiple-of-width trial count, 1 vs 4 workers: the batched
  // sweep must return exactly the same integer counters.
  WaveformBerConfig config;
  config.b = 2;
  config.mt = 2;
  config.mr = 2;
  config.blocks = simd::batch_width() * 5 + 3;
  config.seed = 9;
  ThreadPool one(1);
  ThreadPool four(4);
  config.pool = &one;
  const WaveformBerPoint serial = measure_waveform_ber(config, 6.0);
  config.pool = &four;
  const WaveformBerPoint parallel = measure_waveform_ber(config, 6.0);
  EXPECT_EQ(serial.bits, parallel.bits);
  EXPECT_EQ(serial.bit_errors, parallel.bit_errors);
  EXPECT_EQ(serial.ber, parallel.ber);
}

// --------------------------------------- engine batch grouping --------

TEST(SimdBatch, RunTrialBatchesMatchesRunTrialsAndThreadCount) {
  const std::size_t trials = simd::batch_width() * 7 + 5;
  McConfig config;
  config.seed = 33;
  const auto scalar_trial = [](std::size_t, Rng& rng, McAccumulator& acc) {
    acc.count("heads", rng.bernoulli(0.5) ? 1 : 0);
    acc.count("trials");
  };
  const McResult want = run_trials(trials, config, scalar_trial);
  const auto batch_trial = [](std::size_t, std::size_t count, Rng* rngs,
                              McAccumulator& acc) {
    for (std::size_t i = 0; i < count; ++i) {
      acc.count("heads", rngs[i].bernoulli(0.5) ? 1 : 0);
    }
    acc.count("trials", count);
  };
  for (const unsigned workers : {1u, 4u}) {
    ThreadPool pool(workers);
    McConfig c = config;
    c.pool = &pool;
    const McResult got =
        run_trial_batches(trials, c, simd::batch_width(), batch_trial);
    EXPECT_EQ(got.acc.counter("heads"), want.acc.counter("heads"))
        << workers << " workers";
    EXPECT_EQ(got.acc.counter("trials"), trials);
  }
}

// ------------------------------------------------ aligned storage -----

TEST(AlignedAlloc, VectorsAndMatricesAre64ByteAligned) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedVec<double> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u) << n;
    AlignedVec<cplx> c(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % 64, 0u) << n;
  }
  // CMatrix storage rides the same allocator.
  Rng rng(1);
  const CMatrix m = CMatrix::random_gaussian(5, 3, rng);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u);
  // Growth through the allocator keeps the alignment.
  AlignedVec<double> grow;
  for (int i = 0; i < 100; ++i) {
    grow.push_back(1.0);
    ASSERT_EQ(reinterpret_cast<std::uintptr_t>(grow.data()) % 64, 0u);
  }
}

TEST(AlignedAlloc, LinkBatchWorkspacePlanesAre64ByteAligned) {
  const WaveformBerKernel kernel(2, 4, 4, db_to_linear(6.0));
  LinkBatchWorkspace ws;
  kernel.prepare_batch(ws, 4);
  const auto aligned = [](const AlignedVec<double>& p) {
    return reinterpret_cast<std::uintptr_t>(p.data()) % 64 == 0;
  };
  EXPECT_TRUE(aligned(ws.h_re) && aligned(ws.h_im));
  EXPECT_TRUE(aligned(ws.enc_re) && aligned(ws.enc_im));
  EXPECT_TRUE(aligned(ws.rx_re) && aligned(ws.rx_im));
  EXPECT_TRUE(aligned(ws.sym_re) && aligned(ws.sym_im));
  EXPECT_TRUE(aligned(ws.est_re) && aligned(ws.est_im));
  EXPECT_TRUE(aligned(ws.f) && aligned(ws.y));
  EXPECT_TRUE(aligned(ws.gram) && aligned(ws.rhs));
  EXPECT_EQ(ws.width, 4u);
}

}  // namespace
}  // namespace comimo
