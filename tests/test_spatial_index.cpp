// Differential property suite for the spatial grid index (ISSUE 7).
//
// The contract under test: every grid-indexed network computation —
// d-clustering, head election, cooperative-link derivation, MST
// backbone, adjacency queries — is *bit-identical* to the O(n²)
// reference implementation (NetIndexMode::kReference), across
// randomized topologies (uniform, clustered, collinear,
// duplicate-position) and sizes n ∈ {1..512}, including tie-break
// order at cell boundaries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/net/clustering.h"
#include "comimo/net/comimonet.h"
#include "comimo/net/spanning_tree.h"
#include "comimo/net/spatial_index.h"
#include "comimo/numeric/rng.h"

namespace comimo {
namespace {

CoMimoNetConfig base_config(NetIndexMode mode) {
  CoMimoNetConfig cfg;
  cfg.communication_range_m = 45.0;
  cfg.cluster_diameter_m = 14.0;
  cfg.link_range_m = 220.0;
  cfg.index_mode = mode;
  return cfg;
}

void expect_identical(const CoMimoNet& ref, const CoMimoNet& grid,
                      const std::string& label) {
  ASSERT_EQ(ref.clusters().size(), grid.clusters().size()) << label;
  for (std::size_t i = 0; i < ref.clusters().size(); ++i) {
    const auto& a = ref.clusters()[i];
    const auto& b = grid.clusters()[i];
    EXPECT_EQ(a.id, b.id) << label << " cluster " << i;
    EXPECT_EQ(a.head, b.head) << label << " cluster " << i;
    ASSERT_EQ(a.members, b.members) << label << " cluster " << i;
  }
  ASSERT_EQ(ref.links().size(), grid.links().size()) << label;
  for (std::size_t i = 0; i < ref.links().size(); ++i) {
    EXPECT_EQ(ref.links()[i].a, grid.links()[i].a) << label << " link " << i;
    EXPECT_EQ(ref.links()[i].b, grid.links()[i].b) << label << " link " << i;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(ref.links()[i].length_m, grid.links()[i].length_m)
        << label << " link " << i;
  }
  // Adjacency queries reproduce the reference scan order.
  for (ClusterId c = 0; c < static_cast<ClusterId>(ref.clusters().size());
       ++c) {
    EXPECT_EQ(ref.neighbors(c), grid.neighbors(c)) << label << " c=" << c;
  }
  // MST backbone is a pure function of the links, but assert anyway:
  // the routing layer consumes the backbone, not the links.
  const RoutingBackbone bref(ref);
  const RoutingBackbone bgrid(grid);
  ASSERT_EQ(bref.tree_edges().size(), bgrid.tree_edges().size()) << label;
  for (std::size_t i = 0; i < bref.tree_edges().size(); ++i) {
    EXPECT_EQ(bref.tree_edges()[i].a, bgrid.tree_edges()[i].a) << label;
    EXPECT_EQ(bref.tree_edges()[i].b, bgrid.tree_edges()[i].b) << label;
    EXPECT_EQ(bref.tree_edges()[i].length_m, bgrid.tree_edges()[i].length_m)
        << label;
  }
  EXPECT_EQ(bref.num_components(), bgrid.num_components()) << label;
}

void expect_both_modes_identical(const std::vector<SuNode>& nodes,
                                 const std::string& label) {
  const CoMimoNet ref(nodes, base_config(NetIndexMode::kReference));
  const CoMimoNet grid(nodes, base_config(NetIndexMode::kGrid));
  ASSERT_TRUE(ref.validate()) << label;
  ASSERT_TRUE(grid.validate()) << label;
  expect_identical(ref, grid, label);
}

// ---------------------------------------------------------------- //
// SpatialGrid primitive vs brute force                              //
// ---------------------------------------------------------------- //

TEST(SpatialGrid, QueryMatchesBruteForceOnRandomPoints) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed, 7);
    const std::size_t n = 1 + rng.uniform_int(400);
    std::vector<Vec2> pts(n);
    for (auto& p : pts) {
      p = Vec2{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)};
    }
    const SpatialGrid grid(pts, 10.0);
    for (int q = 0; q < 50; ++q) {
      const Vec2 center{rng.uniform(-50.0, 350.0), rng.uniform(-50.0, 350.0)};
      const double radius = rng.uniform(0.5, 80.0);
      std::vector<std::uint32_t> got;
      grid.query(center, radius, got);
      std::sort(got.begin(), got.end());
      std::vector<std::uint32_t> want;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (distance(center, pts[i]) <= radius) want.push_back(i);
      }
      ASSERT_EQ(got, want) << "seed " << seed << " query " << q;
    }
  }
}

TEST(SpatialGrid, RemoveTombstonesWithoutDisturbingOthers) {
  Rng rng(3, 11);
  std::vector<Vec2> pts(120);
  for (auto& p : pts) {
    p = Vec2{rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)};
  }
  SpatialGrid grid(pts, 8.0);
  EXPECT_EQ(grid.live_items(), pts.size());
  std::vector<bool> removed(pts.size(), false);
  for (std::uint32_t k = 0; k < 60; ++k) {
    const std::uint32_t victim = rng.uniform_int(120);
    if (!removed[victim]) {
      grid.remove(victim, pts[victim]);
      removed[victim] = true;
    }
    // Re-removal is a no-op.
    grid.remove(victim, pts[victim]);
  }
  const std::size_t expected_live = static_cast<std::size_t>(
      std::count(removed.begin(), removed.end(), false));
  EXPECT_EQ(grid.live_items(), expected_live);
  std::vector<std::uint32_t> got;
  grid.query(Vec2{50.0, 50.0}, 1000.0, got);
  std::sort(got.begin(), got.end());
  std::vector<std::uint32_t> want;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (!removed[i]) want.push_back(i);
  }
  EXPECT_EQ(got, want);
}

// Daemon-grade churn: kill waves far past the tombstone threshold must
// trigger compaction — dead slots can never outnumber live ones (past
// the small floor), queries stay exactly brute-force-equal over the
// survivors, and the footprint stays proportional to the live
// population instead of the all-time insert count.
TEST(SpatialGrid, ChurnCompactionBoundsDeadSlotsAndPreservesQueries) {
  Rng rng(17, 23);
  const std::size_t n = 4000;
  std::vector<Vec2> pts(n);
  for (auto& p : pts) {
    p = Vec2{rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)};
  }
  SpatialGrid grid(pts, 10.0);
  std::vector<bool> removed(n, false);
  std::size_t live = n;

  for (int wave = 0; wave < 12; ++wave) {
    // Kill ~30% of the remaining population each wave.
    for (std::uint32_t k = 0; k < n && live > 32; ++k) {
      const std::uint32_t victim = rng.uniform_int(n);
      if (removed[victim]) continue;
      if (!rng.bernoulli(0.3)) continue;
      grid.remove(victim, pts[victim]);
      removed[victim] = true;
      --live;
    }
    ASSERT_EQ(grid.live_items(), live) << "wave " << wave;
    // The compaction invariant: tombstones never exceed the live
    // population once past the threshold floor.
    EXPECT_LE(grid.dead_items(), std::max<std::size_t>(grid.live_items(), 64))
        << "wave " << wave;
    // Exact-membership queries over the survivors, vs brute force.
    for (int q = 0; q < 20; ++q) {
      const Vec2 center{rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)};
      const double radius = rng.uniform(1.0, 60.0);
      std::vector<std::uint32_t> got;
      grid.query(center, radius, got);
      std::sort(got.begin(), got.end());
      std::vector<std::uint32_t> want;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!removed[i] && distance(center, pts[i]) <= radius) {
          want.push_back(i);
        }
      }
      ASSERT_EQ(got, want) << "wave " << wave << " query " << q;
    }
  }

  // After 12 waves of ~30% kills only a sliver survives; the footprint
  // must track the survivors (slots + CSR offsets), not the original n.
  ASSERT_LT(grid.live_items(), n / 8);
  const std::size_t slot_bytes = 24;  // key + padded Vec2
  const std::size_t bound =
      (grid.live_items() + grid.dead_items()) * slot_bytes * 2 +
      (grid.num_cells() + 1) * sizeof(std::uint32_t) * 2 + 4096;
  EXPECT_LE(grid.bytes(), bound);
  // The ~2-cells/item cap holds against the population at the last
  // rebuild, which is exactly live + dead now — and dead <= live by the
  // compaction invariant, so cells stay O(live).
  EXPECT_LE(grid.num_cells(),
            2 * std::max<std::size_t>(
                    grid.live_items() + grid.dead_items(), 16) +
                2);
}

// An explicit compact() at a quiescent point is the same rebuild the
// threshold path runs: zero tombstones after, identical query sets.
TEST(SpatialGrid, ExplicitCompactDropsAllTombstones) {
  Rng rng(5, 31);
  std::vector<Vec2> pts(300);
  for (auto& p : pts) {
    p = Vec2{rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0)};
  }
  SpatialGrid grid(pts, 6.0);
  std::vector<bool> removed(pts.size(), false);
  for (std::uint32_t i = 0; i < 40; ++i) {  // below the auto threshold
    grid.remove(i, pts[i]);
    removed[i] = true;
  }
  EXPECT_EQ(grid.dead_items(), 40u);
  grid.compact();
  EXPECT_EQ(grid.dead_items(), 0u);
  EXPECT_EQ(grid.live_items(), pts.size() - 40);
  std::vector<std::uint32_t> got;
  grid.query(Vec2{25.0, 25.0}, 1000.0, got);
  std::sort(got.begin(), got.end());
  std::vector<std::uint32_t> want;
  for (std::uint32_t i = 0; i < pts.size(); ++i) {
    if (!removed[i]) want.push_back(i);
  }
  EXPECT_EQ(got, want);
}

TEST(SpatialGrid, AnyWithinShortCircuits) {
  const std::vector<Vec2> pts{{0.0, 0.0}, {5.0, 0.0}, {100.0, 100.0}};
  const SpatialGrid grid(pts, 10.0);
  EXPECT_TRUE(grid.any_within(Vec2{1.0, 0.0}, 2.0,
                              [](std::uint32_t) { return true; }));
  EXPECT_FALSE(grid.any_within(Vec2{50.0, 50.0}, 10.0,
                               [](std::uint32_t) { return true; }));
  // Predicate filters: only key 1 accepted.
  EXPECT_TRUE(grid.any_within(Vec2{0.0, 0.0}, 6.0,
                              [](std::uint32_t k) { return k == 1; }));
  EXPECT_FALSE(grid.any_within(Vec2{0.0, 0.0}, 3.0,
                               [](std::uint32_t k) { return k == 1; }));
}

TEST(SpatialGrid, DegenerateExtents) {
  // All points coincident: one cell, everything found.
  const std::vector<Vec2> same(37, Vec2{4.0, -2.0});
  const SpatialGrid grid(same, 5.0);
  std::vector<std::uint32_t> got;
  grid.query(Vec2{4.0, -2.0}, 0.0, got);
  EXPECT_EQ(got.size(), same.size());
  // Tiny cell hint on a huge extent: the cell budget clamps memory.
  std::vector<Vec2> spread;
  Rng rng(5, 1);
  for (int i = 0; i < 64; ++i) {
    spread.push_back(Vec2{rng.uniform(0.0, 1e6), rng.uniform(0.0, 1e6)});
  }
  const SpatialGrid wide(spread, 1e-3);
  EXPECT_LE(wide.num_cells(), std::size_t{4096});
  got.clear();
  wide.query(spread[10], 0.0, got);
  EXPECT_FALSE(got.empty());
}

// ---------------------------------------------------------------- //
// Differential: grid vs reference network construction              //
// ---------------------------------------------------------------- //

class SpatialIndexDifferential
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpatialIndexDifferential, UniformTopology) {
  const std::size_t n = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    expect_both_modes_identical(
        random_field(n, 400.0, 400.0, seed),
        "uniform n=" + std::to_string(n) + " seed=" + std::to_string(seed));
  }
}

TEST_P(SpatialIndexDifferential, ClusteredTopology) {
  const std::size_t n = GetParam();
  const std::size_t groups = std::max<std::size_t>(1, n / 4);
  const std::size_t per = std::max<std::size_t>(1, n / groups);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    expect_both_modes_identical(
        clustered_field(groups, per, 6.0, 500.0, 500.0, seed),
        "clustered n=" + std::to_string(n) +
            " seed=" + std::to_string(seed));
  }
}

TEST_P(SpatialIndexDifferential, CollinearTopology) {
  const std::size_t n = GetParam();
  // Nodes on a line with spacing that repeatedly lands on cell-size
  // multiples of d/2 = 7, exercising boundary assignment.
  std::vector<SuNode> nodes;
  Rng rng(42, n);
  for (std::size_t i = 0; i < n; ++i) {
    SuNode node;
    node.id = static_cast<NodeId>(i);
    node.position = Vec2{3.5 * static_cast<double>(i), 100.0};
    node.battery_j = rng.uniform(0.5, 1.0);
    nodes.push_back(node);
  }
  expect_both_modes_identical(nodes, "collinear n=" + std::to_string(n));
}

TEST_P(SpatialIndexDifferential, DuplicatePositionTopology) {
  const std::size_t n = GetParam();
  // Many nodes stacked on few distinct sites — equal distances
  // everywhere, so the ascending-index absorb order and the
  // (battery, id) head tie-break carry all the information.
  std::vector<SuNode> nodes;
  Rng rng(7, n);
  const std::size_t sites = std::max<std::size_t>(1, n / 5);
  for (std::size_t i = 0; i < n; ++i) {
    SuNode node;
    node.id = static_cast<NodeId>(i);
    const std::size_t s = i % sites;
    node.position = Vec2{20.0 * static_cast<double>(s % 16),
                         20.0 * static_cast<double>(s / 16)};
    // Duplicate batteries too, so head election must tie-break on id.
    node.battery_j = (i % 3 == 0) ? 0.75 : rng.uniform(0.5, 1.0);
    nodes.push_back(node);
  }
  expect_both_modes_identical(nodes,
                              "duplicate n=" + std::to_string(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpatialIndexDifferential,
                         ::testing::Values(1, 2, 3, 5, 9, 17, 33, 64, 129,
                                           256, 512),
                         [](const ::testing::TestParamInfo<std::size_t>&
                                info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(SpatialIndexDifferential, CellBoundaryTies) {
  // Nodes placed exactly d/2 apart and exactly on what will be cell
  // boundaries: membership must come out of the exact predicate, never
  // the cell walk.
  const double d = 14.0;
  std::vector<SuNode> nodes;
  NodeId id = 0;
  for (int gx = 0; gx < 6; ++gx) {
    for (int gy = 0; gy < 6; ++gy) {
      SuNode node;
      node.id = id++;
      node.position =
          Vec2{(d / 2.0) * static_cast<double>(gx),
               (d / 2.0) * static_cast<double>(gy)};
      node.battery_j = 0.75;  // all equal: tie-break on id everywhere
      nodes.push_back(node);
    }
  }
  expect_both_modes_identical(nodes, "boundary-ties");
}

TEST(SpatialIndexDifferential, ClusteringOverloadMatchesReference) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto nodes = random_field(100 + seed * 13, 300.0, 300.0, seed);
    const auto ref = d_clustering(nodes, 14.0);
    const auto grid = d_clustering(nodes, 14.0, NetIndexMode::kGrid);
    ASSERT_EQ(ref.size(), grid.size()) << "seed " << seed;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].id, grid[i].id);
      EXPECT_EQ(ref[i].head, grid[i].head);
      EXPECT_EQ(ref[i].members, grid[i].members);
    }
  }
}

TEST(SpatialIndexDifferential, ProcessWideModeSwitchRoundTrips) {
  const NetIndexMode original = net_index_mode();
  set_net_index_mode(NetIndexMode::kReference);
  EXPECT_EQ(net_index_mode(), NetIndexMode::kReference);
  CoMimoNetConfig cfg;  // default-initializes from the global
  EXPECT_EQ(cfg.index_mode, NetIndexMode::kReference);
  set_net_index_mode(original);
  EXPECT_EQ(std::string(to_string(NetIndexMode::kGrid)), "grid");
  EXPECT_EQ(std::string(to_string(NetIndexMode::kReference)), "reference");
  EXPECT_EQ(parse_net_index_mode("grid"), NetIndexMode::kGrid);
  EXPECT_EQ(parse_net_index_mode("reference"), NetIndexMode::kReference);
  EXPECT_THROW((void)parse_net_index_mode("quadtree"), InvalidArgument);
}

}  // namespace
}  // namespace comimo
