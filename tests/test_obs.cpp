// Observability layer: counter/gauge/histogram semantics, the runtime
// kill switch, chunk-ordered shard determinism, span timing, and the
// Perfetto trace dump.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comimo/common/bench_json.h"
#include "comimo/common/parallel.h"
#include "comimo/mc/engine.h"
#include "comimo/obs/export.h"
#include "comimo/obs/metrics.h"
#include "comimo/obs/trace.h"

namespace comimo {
namespace {

// Every test runs with the layer enabled and leaves the process in the
// default (disabled, trace-clear) state so unrelated tests stay on the
// one-load-one-branch fast path.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::set_enabled(true); }
  void TearDown() override {
    obs::stop_trace();
    obs::clear_trace();
    obs::set_enabled(false);
  }
};

#ifndef COMIMO_OBS_DISABLED

TEST_F(ObsTest, CounterAccumulatesAndRegistrationIsIdempotent) {
  obs::MetricRegistry reg;
  const obs::Counter a = reg.counter("obs_test.hits");
  const obs::Counter b = reg.counter("obs_test.hits");
  a.add();
  b.add(41);
  EXPECT_EQ(a.value(), 42u);  // both handles share one cell
  EXPECT_EQ(b.value(), 42u);

  const auto snap = reg.counters();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "obs_test.hits");
  EXPECT_EQ(snap[0].value, 42u);
}

TEST_F(ObsTest, DisabledCallsAreNoOps) {
  obs::set_enabled(false);
  obs::MetricRegistry reg;
  const obs::Counter c = reg.counter("obs_test.off");
  const obs::Gauge g = reg.gauge("obs_test.off_gauge");
  const obs::Histogram h = reg.histogram("obs_test.off_hist");
  c.add(7);
  g.set(1.0);
  h.observe(1.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_TRUE(reg.gauges().empty());  // never-set gauges are omitted
  EXPECT_TRUE(reg.histograms().empty());
}

TEST_F(ObsTest, DefaultConstructedHandlesAreInert) {
  const obs::Counter c;
  const obs::Gauge g;
  const obs::Histogram h;
  c.add();
  g.fold_max(1.0);
  h.observe(1.0);  // must not crash
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(h.attached());
}

TEST_F(ObsTest, GaugeSetAndExtremumFolds) {
  obs::MetricRegistry reg;
  const obs::Gauge lo = reg.gauge("obs_test.lo");
  const obs::Gauge hi = reg.gauge("obs_test.hi");
  lo.fold_min(3.0);
  lo.fold_min(5.0);
  lo.fold_min(-1.0);
  hi.fold_max(3.0);
  hi.fold_max(-2.0);
  const auto snap = reg.gauges();
  ASSERT_EQ(snap.size(), 2u);  // sorted by name: hi, lo
  EXPECT_EQ(snap[0].name, "obs_test.hi");
  EXPECT_DOUBLE_EQ(snap[0].value, 3.0);
  EXPECT_EQ(snap[1].name, "obs_test.lo");
  EXPECT_DOUBLE_EQ(snap[1].value, -1.0);
}

TEST_F(ObsTest, CounterAddsAreExactAcrossThreads) {
  obs::MetricRegistry reg;
  const obs::Counter c = reg.counter("obs_test.mt");
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST_F(ObsTest, HistogramObservesIntoDefaultShardWhenUnscoped) {
  obs::MetricRegistry reg;
  const obs::Histogram h = reg.histogram("obs_test.h");
  h.observe(1.0);
  h.observe(3.0);
  const auto snap = reg.histograms();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].stats.count(), 2u);
  EXPECT_DOUBLE_EQ(snap[0].stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(snap[0].stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(snap[0].stats.max(), 3.0);
}

TEST_F(ObsTest, ShardMergeOrderFollowsOrdinalsNotFoldOrder) {
  // Two registries fed the same per-ordinal observations, folded in
  // opposite orders, must agree bit-for-bit: the merge is keyed by
  // ordinal, not by arrival.
  const auto feed = [](obs::MetricRegistry& reg,
                       const std::vector<std::uint64_t>& ordinals) {
    const obs::Histogram h = reg.histogram("obs_test.sharded");
    for (const std::uint64_t ord : ordinals) {
      const obs::ObsShard shard(ord, reg);
      // Ordinal-dependent values so a wrong merge order changes the
      // floating-point reduction, not just the count.
      h.observe(0.1 * static_cast<double>(ord + 1));
      h.observe(1.0 / static_cast<double>(ord + 3));
    }
  };
  obs::MetricRegistry forward;
  obs::MetricRegistry backward;
  feed(forward, {0, 1, 2, 3});
  feed(backward, {3, 2, 1, 0});
  const auto a = forward.histograms();
  const auto b = backward.histograms();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_TRUE(a[0].stats == b[0].stats);  // exact state equality
}

TEST_F(ObsTest, NestedShardsShadowAndRestore) {
  obs::MetricRegistry reg;
  const obs::Histogram h = reg.histogram("obs_test.nested");
  {
    const obs::ObsShard outer(0, reg);
    h.observe(1.0);
    {
      const obs::ObsShard inner(1, reg);
      h.observe(2.0);
    }
    h.observe(3.0);  // back in the outer shard
  }
  const auto snap = reg.histograms();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].stats.count(), 3u);
  EXPECT_DOUBLE_EQ(snap[0].stats.mean(), 2.0);
}

TEST_F(ObsTest, EngineShardedHistogramIsThreadCountInvariant) {
  // The acceptance criterion behind the whole shard design: a trial
  // that observes a deterministic histogram must export identical
  // merged moments on 1 worker and on 4.
  obs::MetricRegistry& reg = obs::MetricRegistry::global();
  const obs::Histogram h = reg.histogram("obs_test.engine_invariance");

  const auto run = [&](unsigned threads) {
    reg.reset();
    ThreadPool pool(threads);
    McConfig cfg;
    cfg.seed = 99;
    cfg.chunk_size = 16;  // several chunks regardless of worker count
    cfg.pool = &pool;
    (void)run_trials(256, cfg, [&](std::size_t, Rng& rng, McAccumulator&) {
      h.observe(rng.uniform(0.0, 1.0));
    });
    for (const auto& snap : reg.histograms()) {
      if (snap.name == "obs_test.engine_invariance") return snap.stats;
    }
    return RunningStats{};
  };

  const RunningStats serial = run(1);
  const RunningStats parallel = run(4);
  EXPECT_EQ(serial.count(), 256u);
  EXPECT_TRUE(serial == parallel);
  reg.reset();
}

TEST_F(ObsTest, ResetKeepsHandlesValid) {
  obs::MetricRegistry reg;
  const obs::Counter c = reg.counter("obs_test.reset");
  c.add(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the old handle still points at the registered cell
  EXPECT_EQ(c.value(), 2u);
}

TEST_F(ObsTest, MetricsToJsonSplitsDomains) {
  obs::MetricRegistry reg;
  reg.counter("det.count").add(3);
  reg.counter("rt.count", obs::Domain::kRuntime).add(7);
  reg.gauge("det.gauge").set(1.5);
  reg.histogram("det.hist").observe(2.0);

  const std::string det =
      obs::metrics_to_json(reg, obs::Domain::kDeterministic).dump_string(0);
  const std::string rt =
      obs::metrics_to_json(reg, obs::Domain::kRuntime).dump_string(0);
  EXPECT_NE(det.find("\"det.count\":3"), std::string::npos);
  EXPECT_NE(det.find("\"det.gauge\":1.5"), std::string::npos);
  EXPECT_NE(det.find("\"det.hist\""), std::string::npos);
  EXPECT_EQ(det.find("rt.count"), std::string::npos);
  EXPECT_NE(rt.find("\"rt.count\":7"), std::string::npos);
  EXPECT_EQ(rt.find("det.count"), std::string::npos);
}

TEST_F(ObsTest, SpanTimerFeedsHistogramAndTrace) {
  obs::start_trace("");  // arm tracing without an atexit file
  obs::MetricRegistry reg;
  const obs::Histogram h = reg.histogram("obs_test.span_s");
  const std::size_t before = obs::trace_event_count();
  {
    const obs::SpanTimer span("obs_test.work", h);
  }
  EXPECT_EQ(obs::trace_event_count(), before + 1);
  const auto snap = reg.histograms();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].stats.count(), 1u);
  EXPECT_GE(snap[0].stats.min(), 0.0);
}

TEST_F(ObsTest, SpanTimerWithoutSinksRecordsNothing) {
  obs::stop_trace();
  const std::size_t before = obs::trace_event_count();
  {
    const obs::SpanTimer span("obs_test.unsinked");
  }
  EXPECT_EQ(obs::trace_event_count(), before);
}

TEST_F(ObsTest, TraceDumpIsChromeTraceEventJson) {
  obs::start_trace("");
  {
    const obs::SpanTimer span("obs_test.dumped");
  }
  obs::stop_trace();
  std::ostringstream os;
  obs::write_trace(os);
  const std::string dump = os.str();
  EXPECT_NE(dump.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"obs_test.dumped\""), std::string::npos);
  EXPECT_NE(dump.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(dump.find("\"ts\":"), std::string::npos);
  EXPECT_NE(dump.find("\"dur\":"), std::string::npos);
  obs::clear_trace();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(ObsTest, BenchEnvelopeEmbedsMetricsWhenEnabled) {
  obs::MetricRegistry::global().reset();
  obs::MetricRegistry::global().counter("obs_test.envelope").add(11);
  BenchReporter reporter("obs_test_bench");
  std::ostringstream os;
  reporter.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"timestamp_unix_s\""), std::string::npos);
  EXPECT_NE(out.find("\"metrics\""), std::string::npos);
  EXPECT_NE(out.find("\"metrics_runtime\""), std::string::npos);
  EXPECT_NE(out.find("\"obs_test.envelope\": 11"), std::string::npos);
  obs::MetricRegistry::global().reset();
}

TEST_F(ObsTest, BenchEnvelopeOmitsMetricsWhenDisabled) {
  obs::set_enabled(false);
  BenchReporter reporter("obs_test_bench");
  std::ostringstream os;
  reporter.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"timestamp_unix_s\""), std::string::npos);
  EXPECT_EQ(out.find("\"metrics\""), std::string::npos);
}

#else  // COMIMO_OBS_DISABLED

TEST(ObsDisabled, EverythingCompilesToNoOps) {
  obs::set_enabled(true);
  EXPECT_FALSE(obs::enabled());
  const obs::Counter c = obs::MetricRegistry::global().counter("off.c");
  c.add(5);
  EXPECT_EQ(c.value(), 0u);
  obs::start_trace("");
  {
    const obs::SpanTimer span("off.span");
  }
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

#endif  // COMIMO_OBS_DISABLED

}  // namespace
}  // namespace comimo
