// Unit tests for eqs. (1)–(4): local and long-haul energy models, the
// constellation optimizer, and the noise-floor analyzer.
#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/energy/local_energy.h"
#include "comimo/energy/mimo_energy.h"
#include "comimo/energy/noise_floor.h"
#include "comimo/energy/optimizer.h"

namespace comimo {
namespace {

// --- eq. (1)–(2): local model -------------------------------------------

TEST(LocalEnergy, PaFormulaAtReferencePoint) {
  const SystemParams params;
  const LocalEnergyModel model(params);
  const int b = 2;
  const double p = 1e-3;
  const double d = 1.0;
  const double alpha = params.pa_overhead(b);
  const double expected = 4.0 / 3.0 * (1.0 + alpha) * (3.0 / 2.0) *
                          std::log(4.0 * 0.5 / (2.0 * p)) *
                          params.local_gain(d) * params.noise_figure *
                          params.sigma2_w_per_hz;
  EXPECT_NEAR(model.pa_energy(b, p, d), expected, expected * 1e-12);
}

TEST(LocalEnergy, PaGrowsWithDistancePowerLaw) {
  const LocalEnergyModel model;
  const double e1 = model.pa_energy(2, 1e-3, 1.0);
  const double e2 = model.pa_energy(2, 1e-3, 2.0);
  EXPECT_NEAR(e2 / e1, std::pow(2.0, 3.5), 1e-9);
}

TEST(LocalEnergy, PaGrowsAsBerTightens) {
  const LocalEnergyModel model;
  EXPECT_LT(model.pa_energy(2, 1e-2, 1.0), model.pa_energy(2, 1e-4, 1.0));
}

TEST(LocalEnergy, CircuitSharesEq1Structure) {
  const SystemParams params;
  const LocalEnergyModel model(params);
  const double bw = 40e3;
  EXPECT_NEAR(model.tx_circuit_energy(2, bw),
              params.p_ct_w / (2.0 * bw) +
                  params.p_syn_w * params.t_tr_s / params.n_bits,
              1e-18);
  EXPECT_NEAR(model.rx_energy(2, bw),
              params.p_cr_w / (2.0 * bw) +
                  params.p_syn_w * params.t_tr_s / params.n_bits,
              1e-18);
}

TEST(LocalEnergy, CircuitShrinksWithRate) {
  const LocalEnergyModel model;
  EXPECT_GT(model.tx_circuit_energy(1, 20e3),
            model.tx_circuit_energy(4, 20e3));
  EXPECT_GT(model.tx_circuit_energy(2, 20e3),
            model.tx_circuit_energy(2, 40e3));
}

TEST(LocalEnergy, InputValidation) {
  const LocalEnergyModel model;
  EXPECT_THROW((void)model.pa_energy(0, 1e-3, 1.0), InvalidArgument);
  EXPECT_THROW((void)model.pa_energy(2, 0.0, 1.0), InvalidArgument);
  EXPECT_THROW((void)model.pa_energy(2, 1e-3, -1.0), InvalidArgument);
  EXPECT_THROW((void)model.tx_circuit_energy(2, 0.0), InvalidArgument);
}

// --- eq. (3)–(4): long-haul model ----------------------------------------

TEST(MimoEnergy, PaMatchesEq3) {
  const SystemParams params;
  const MimoEnergyModel model(params);
  const int b = 2;
  const double p = 1e-3;
  const unsigned mt = 2;
  const unsigned mr = 3;
  const double dist = 150.0;
  const double ebar = model.solver().solve(p, b, mt, mr);
  const double expected = (1.0 / mt) * (1.0 + params.pa_overhead(b)) *
                          ebar * params.long_haul_attenuation(dist);
  EXPECT_NEAR(model.pa_energy(b, p, mt, mr, dist), expected,
              expected * 1e-9);
}

TEST(MimoEnergy, PaScalesWithDistanceSquared) {
  const MimoEnergyModel model;
  const double e1 = model.pa_energy(2, 1e-3, 2, 2, 100.0);
  const double e2 = model.pa_energy(2, 1e-3, 2, 2, 200.0);
  EXPECT_NEAR(e2 / e1, 4.0, 1e-9);
}

TEST(MimoEnergy, CircuitEnergiesMatchEq3Eq4) {
  const SystemParams params;
  const MimoEnergyModel model(params);
  const double bw = 20e3;
  EXPECT_NEAR(model.tx_circuit_energy(4, bw),
              (params.p_ct_w + params.p_syn_w) / (4.0 * bw), 1e-18);
  EXPECT_NEAR(model.rx_energy(4, bw),
              (params.p_cr_w + params.p_syn_w) / (4.0 * bw), 1e-18);
}

TEST(MimoEnergy, CooperationBeatsSisoAtLongRange) {
  // Fig. 7's headline: cooperative MIMO needs orders of magnitude less
  // PA energy than SISO at the same BER.
  const MimoEnergyModel model;
  const double siso = model.pa_energy(2, 1e-3, 1, 1, 200.0);
  const double mimo = model.pa_energy(2, 1e-3, 2, 3, 200.0);
  EXPECT_GT(siso / (2.0 * mimo), 50.0);
}

TEST(MimoEnergy, DistanceForEnergyInvertsTxEnergy) {
  const MimoEnergyModel model;
  const double bw = 40e3;
  for (const unsigned mt : {1u, 3u}) {
    const EnergyBreakdown e = model.tx_energy(2, 1e-3, mt, 1, 180.0, bw);
    const double d =
        model.distance_for_energy(e.total(), 2, 1e-3, mt, 1, bw);
    EXPECT_NEAR(d, 180.0, 1e-6) << "mt=" << mt;
  }
}

TEST(MimoEnergy, DistanceForEnergyBelowCircuitFloorThrows) {
  const MimoEnergyModel model;
  const double circuit = model.tx_circuit_energy(2, 40e3);
  EXPECT_THROW(
      (void)model.distance_for_energy(circuit * 0.5, 2, 1e-3, 1, 1, 40e3),
      InfeasibleError);
}

// --- constellation optimizer ----------------------------------------------

TEST(Optimizer, MinimizeFindsDiscreteMinimum) {
  const ConstellationOptimizer opt;
  const ConstellationChoice c =
      opt.minimize([](int b) { return std::abs(b - 5.0); });
  EXPECT_EQ(c.b, 5);
  EXPECT_DOUBLE_EQ(c.value, 0.0);
}

TEST(Optimizer, MinimizeSkipsInfeasibleB) {
  const ConstellationOptimizer opt;
  const ConstellationChoice c = opt.minimize([](int b) -> double {
    if (b < 4) throw InfeasibleError("too small");
    return static_cast<double>(b);
  });
  EXPECT_EQ(c.b, 4);
}

TEST(Optimizer, AllInfeasibleThrows) {
  const ConstellationOptimizer opt;
  EXPECT_THROW((void)opt.minimize([](int) -> double {
    throw InfeasibleError("never");
  }),
               InfeasibleError);
}

TEST(Optimizer, MinMimoTxEnergyIsArgminOverB) {
  const ConstellationOptimizer opt;
  const MimoEnergyModel model;
  const ConstellationChoice c =
      opt.min_mimo_tx_energy(5e-3, 1, 1, 250.0, 40e3);
  for (int b = 1; b <= 16; ++b) {
    const double e = model.tx_energy(b, 5e-3, 1, 1, 250.0, 40e3).total();
    EXPECT_LE(c.value, e * (1.0 + 1e-12)) << "b=" << b;
  }
  EXPECT_NEAR(c.breakdown.total(), c.value, c.value * 1e-12);
}

TEST(Optimizer, MaxDistanceForEnergyGrowsWithBudget) {
  const ConstellationOptimizer opt;
  const ConstellationChoice d1 =
      opt.max_distance_for_energy(1e-5, 5e-4, 2, 1, 40e3, true);
  const ConstellationChoice d2 =
      opt.max_distance_for_energy(4e-5, 5e-4, 2, 1, 40e3, true);
  ASSERT_GT(d1.b, 0);
  ASSERT_GT(d2.b, 0);
  EXPECT_GT(d2.value, d1.value);
}

TEST(Optimizer, MaxDistanceInfeasibleBudgetGivesZero) {
  const ConstellationOptimizer opt;
  // A budget below every circuit floor cannot buy any distance.
  const ConstellationChoice c =
      opt.max_distance_for_energy(1e-12, 5e-4, 2, 1, 40e3, true);
  EXPECT_EQ(c.b, 0);
  EXPECT_DOUBLE_EQ(c.value, 0.0);
}

TEST(Optimizer, RelayEnergyIncludesReception) {
  const ConstellationOptimizer opt;
  const ConstellationChoice tx_only =
      opt.min_mimo_tx_energy(5e-4, 3, 1, 200.0, 40e3);
  const ConstellationChoice relay =
      opt.min_relay_energy(5e-4, 3, 1, 200.0, 40e3);
  EXPECT_GT(relay.value, tx_only.value);
}

// --- noise floor -----------------------------------------------------------

TEST(NoiseFloor, FloorMatchesSigma2TimesNf) {
  const SystemParams params;
  const NoiseFloorAnalyzer analyzer(params);
  EXPECT_NEAR(analyzer.noise_floor_w_per_hz(),
              params.sigma2_w_per_hz * params.noise_figure, 1e-30);
}

TEST(NoiseFloor, MarginImprovesWithDistance) {
  const NoiseFloorAnalyzer analyzer;
  const double e_pa = 1e-9;
  const NoiseFloorReport near = analyzer.analyze(e_pa, 2, 40e3, 10.0);
  const NoiseFloorReport far = analyzer.analyze(e_pa, 2, 40e3, 100.0);
  EXPECT_NEAR(far.margin_db - near.margin_db, 20.0, 1e-6);
}

TEST(NoiseFloor, StrictCheckPassesForTinyEmissions) {
  // The strict thermal-floor physics: a sufficiently weak emission is
  // compliant; a strong one is not.
  const NoiseFloorAnalyzer analyzer;
  EXPECT_TRUE(analyzer.analyze(1e-22, 2, 40e3, 50.0).compliant());
  EXPECT_FALSE(analyzer.analyze(1e-6, 2, 40e3, 50.0).compliant());
}

TEST(NoiseFloor, RadiatedPowerExcludesPaOverhead) {
  const SystemParams params;
  const NoiseFloorAnalyzer analyzer(params);
  const double e_pa = 1e-9;
  const int b = 4;
  const NoiseFloorReport rpt = analyzer.analyze(e_pa, b, 10e3, 20.0);
  EXPECT_NEAR(rpt.radiated_power_w,
              e_pa / (1.0 + params.pa_overhead(b)) * b * 10e3, 1e-15);
}

TEST(NoiseFloor, InputValidation) {
  const NoiseFloorAnalyzer analyzer;
  EXPECT_THROW((void)analyzer.analyze(-1.0, 2, 40e3, 10.0),
               InvalidArgument);
  EXPECT_THROW((void)analyzer.analyze(1e-9, 2, 40e3, 0.0), InvalidArgument);
}

}  // namespace
}  // namespace comimo
