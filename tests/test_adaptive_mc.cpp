// Adaptive precision-targeted Monte-Carlo (mc/adaptive.h).
//
// Test names matter for CI: scripts/ci.sh runs the AdaptiveMc and
// ImportanceSampling suites under ASan+UBSan and on the
// -DCOMIMO_SIMD=OFF leg, so the adaptive driver and the IS estimator
// are exercised with sanitizers and with the batch path disabled.
#include "comimo/mc/adaptive.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "comimo/common/parallel.h"
#include "comimo/common/units.h"
#include "comimo/phy/ber.h"
#include "comimo/phy/ber_sweep.h"

namespace comimo {
namespace {

// A cheap synthetic trial with a rate-shaped event stream: ~5% of
// trials count an "event", every trial counts "trials" and observes a
// gaussian — enough structure for both stopping-rule shapes.
void event_trial(std::size_t, Rng& rng, McAccumulator& acc) {
  acc.count("trials");
  if (rng.bernoulli(0.05)) acc.count("events");
  acc.observe("gauss", 1.0 + rng.complex_gaussian().real());
}

AdaptiveConfig rate_target(double rel_ci) {
  AdaptiveConfig a;
  a.target_rel_ci = rel_ci;
  return a;
}

TEST(AdaptiveMc, ConfidenceZMatchesNormalQuantiles) {
  EXPECT_NEAR(confidence_z(0.95), 1.9599639845400545, 1e-9);
  EXPECT_NEAR(confidence_z(0.99), 2.5758293035489004, 1e-9);
}

TEST(AdaptiveMc, RateRelCiShrinksWithEvents) {
  const double z = confidence_z(0.95);
  EXPECT_TRUE(std::isinf(rate_rel_ci(0, 1000, z)));
  const double a = rate_rel_ci(100, 100000, z);
  const double b = rate_rel_ci(400, 400000, z);
  EXPECT_NEAR(a, z * std::sqrt((1.0 - 1e-3) / 100.0), 1e-12);
  EXPECT_NEAR(a / b, 2.0, 1e-9);  // 4x the events, half the rel CI
}

TEST(AdaptiveMc, StopsEarlyAndSavesTrials) {
  McConfig mc;
  mc.seed = 7;
  const AdaptiveResult r =
      run_trials_adaptive(200000, mc, rate_target(0.1),
                          StopRule{"events", "trials"}, ShardOptions{1},
                          event_trial);
  EXPECT_TRUE(r.target_met);
  EXPECT_LT(r.trials_executed, r.trials_budget);
  EXPECT_GT(r.trials_executed, 0u);
  EXPECT_LE(r.rel_ci, 0.1);
  EXPECT_EQ(r.mc.acc.counter("trials"), r.trials_executed);
  // ~z²(1−p)/(ρ²p) ≈ 7300 events-bearing trials needed at p = 0.05 —
  // the checkpoint quantization may overshoot by one round, never by
  // orders of magnitude.
  EXPECT_LT(r.trials_executed, 40000u);
}

TEST(AdaptiveMc, BitIdenticalAcrossThreadsAndShards) {
  McConfig base;
  base.seed = 11;
  const AdaptiveResult ref =
      run_trials_adaptive(60000, base, rate_target(0.12),
                          StopRule{"events", "trials"}, ShardOptions{1},
                          event_trial);
  for (const unsigned workers : {2u, 5u}) {
    ThreadPool pool(workers);
    McConfig cfg = base;
    cfg.pool = &pool;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
      const AdaptiveResult r = run_trials_adaptive(
          60000, cfg, rate_target(0.12), StopRule{"events", "trials"},
          ShardOptions{shards, /*fork=*/true}, event_trial);
      EXPECT_TRUE(r.mc.acc == ref.mc.acc)
          << workers << " workers x " << shards << " shards diverged";
      EXPECT_EQ(r.trials_executed, ref.trials_executed);
      EXPECT_EQ(r.checkpoints, ref.checkpoints);
      EXPECT_EQ(r.target_met, ref.target_met);
      EXPECT_EQ(r.rel_ci, ref.rel_ci);
    }
  }
}

TEST(AdaptiveMc, ExhaustedBudgetIsBitIdenticalToFixedRun) {
  McConfig mc;
  mc.seed = 3;
  const std::size_t trials = 20000;
  // An unreachable target: the adaptive run must execute the full
  // budget and reduce to *exactly* the fixed run's bits — same chunk
  // partition, same streams, same fold order.
  const AdaptiveResult r =
      run_trials_adaptive(trials, mc, rate_target(1e-6),
                          StopRule{"events", "trials"}, ShardOptions{1},
                          event_trial);
  const McResult fixed = run_trials(trials, mc, event_trial);
  EXPECT_FALSE(r.target_met);
  EXPECT_EQ(r.trials_executed, trials);
  EXPECT_TRUE(r.mc.acc == fixed.acc);
}

TEST(AdaptiveMc, StatRuleStopsOnRunningStats) {
  McConfig mc;
  mc.seed = 5;
  AdaptiveConfig a = rate_target(0.05);
  const AdaptiveResult r = run_trials_adaptive(
      500000, mc, a, StopRule{"gauss", ""}, ShardOptions{1}, event_trial);
  EXPECT_TRUE(r.target_met);
  EXPECT_LT(r.trials_executed, r.trials_budget);
  // rel CI z·σ/(√n·µ) with σ ≈ 1/√2, µ ≈ 1 → n ≈ 770; one checkpoint
  // round of the 500k budget is 500000/1024/... — allow slack.
  EXPECT_LE(r.rel_ci, 0.05);
}

TEST(AdaptiveMc, WindowedEngineComposesToFullRun) {
  // The primitive under the checkpoint loop: consecutive chunk windows
  // folded in ascending ordinal reproduce the unwindowed run bitwise —
  // provided the fold consumes the per-chunk accumulators, not the
  // pre-reduced window partials (the Welford merge is not associative
  // bitwise; folding partials drifts by ulps, which is why the adaptive
  // driver always transports chunk_accs).
  McConfig mc;
  mc.seed = 9;
  const std::size_t trials = 5000;
  const McResult full = run_trials(trials, mc, event_trial);
  const std::size_t chunks = full.info.chunks;
  McAccumulator folded;
  for (std::size_t lo = 0; lo < chunks; lo += 3) {
    McConfig w = mc;
    w.chunk_window_begin = lo;
    w.chunk_window_end = std::min(chunks, lo + 3);
    w.collect_chunk_accs = true;
    const McResult part = run_trials(trials, w, event_trial);
    for (const auto& [ordinal, acc] : part.chunk_accs) {
      (void)ordinal;
      folded.merge(acc);
    }
  }
  EXPECT_TRUE(folded == full.acc);
}

TEST(AdaptiveMc, WaveformPointStopsAndStaysDeterministic) {
  WaveformBerConfig cfg;
  cfg.b = 2;
  cfg.mt = 2;
  cfg.mr = 2;
  cfg.blocks = 60000;
  cfg.seed = 21;
  cfg.adaptive.target_rel_ci = 0.25;
  const WaveformBerPoint ref = measure_waveform_ber(cfg, 6.0);
  EXPECT_TRUE(ref.target_met);
  EXPECT_LT(ref.trials_executed, cfg.blocks);
  EXPECT_GT(ref.bit_errors, 0u);

  ThreadPool pool(3);
  WaveformBerConfig par = cfg;
  par.pool = &pool;
  par.shards = 2;
  const WaveformBerPoint p = measure_waveform_ber(par, 6.0);
  EXPECT_EQ(p.bit_errors, ref.bit_errors);
  EXPECT_EQ(p.bits, ref.bits);
  EXPECT_EQ(p.trials_executed, ref.trials_executed);
  EXPECT_EQ(p.checkpoints, ref.checkpoints);
  EXPECT_EQ(p.rel_ci, ref.rel_ci);
}

// Satellite fix: the analytic reference must describe the simulated
// link.  The STBC total-power normalization (1/√mt) spreads γ_b over
// the mt branches, so the closed form is evaluated at γ_b/mt — pinned
// here against the empirical 2×2 QPSK point that exposed the 8.5x
// discrepancy in the committed BENCH_mc_engine.json.
TEST(AdaptiveMc, AnalyticReferenceMatchesEmpirical) {
  WaveformBerConfig cfg;
  cfg.b = 2;
  cfg.mt = 2;
  cfg.mr = 2;
  cfg.blocks = 60000;
  cfg.seed = 42;
  const WaveformBerPoint p = measure_waveform_ber(cfg, 6.0);
  ASSERT_GT(p.bit_errors, 100u);
  EXPECT_EQ(p.analytic,
            ber_mqam_rayleigh_mimo(2, db_to_linear(6.0) / 2.0, 2, 2));
  // ~480 errors → ~9% two-sided CI at 2σ; 15% relative tolerance also
  // absorbs the nearest-neighbour approximation of the closed form.
  EXPECT_NEAR(p.ber, p.analytic, 0.15 * p.analytic);
}

TEST(ImportanceSampling, WeightsAreUnitAtScaleOne) {
  const WaveformBerKernel kernel(2, 2, 2, db_to_linear(6.0));
  LinkWorkspace ws_a;
  LinkWorkspace ws_b;
  kernel.prepare(ws_a);
  kernel.prepare(ws_b);
  for (std::uint64_t t = 0; t < 50; ++t) {
    Rng ra(123, t);
    Rng rb(123, t);
    const std::size_t plain = kernel.run_block(ws_a, ra);
    const WaveformBerKernel::IsBlock is =
        kernel.run_block_is(ws_b, rb, 1.0, 1.0);
    EXPECT_EQ(is.bit_errors, plain);
    EXPECT_DOUBLE_EQ(is.weight, 1.0);
  }
}

TEST(ImportanceSampling, UnbiasedAgainstAnalyticBpskBer) {
  // BPSK over 2×2 Alamouti + exact ML is MRC over 4 branches, where
  // ber_mqam_rayleigh_mimo(1, γ_b/2, 2, 2) is exact (not a
  // nearest-neighbour bound) — the cleanest unbiasedness pin available.
  WaveformBerConfig cfg;
  cfg.b = 1;
  cfg.mt = 2;
  cfg.mr = 2;
  cfg.blocks = 400000;
  cfg.seed = 77;
  cfg.adaptive.target_rel_ci = 0.1;
  cfg.adaptive.is_mode = IsMode::kScaledNoise;
  cfg.adaptive.is_noise_scale = 2.0;
  const double gamma_db = 10.0;
  const WaveformBerPoint p = measure_waveform_ber(cfg, gamma_db);
  const double analytic =
      ber_mqam_rayleigh_mimo(1, db_to_linear(gamma_db) / 2.0, 2, 2);
  EXPECT_EQ(p.analytic, analytic);
  ASSERT_GT(p.ber, 0.0);
  // ESS is over the error-block weights (the estimator's nonzero
  // terms); a noise tilt spreads them, so demand a floor, not
  // near-constancy.
  ASSERT_GT(p.err_blocks, 0u);
  EXPECT_GT(p.ess, 50.0);
  // The run stopped at rel CI <= 0.1 (or spent the budget getting
  // close); demand agreement within the achieved interval plus the
  // statistical slack of this one seed.
  const double tol = std::max(3.0 * p.rel_ci, 0.05) * analytic;
  EXPECT_NEAR(p.ber, analytic, tol)
      << "IS estimate " << p.ber << " vs analytic " << analytic
      << " (rel_ci " << p.rel_ci << ", ess " << p.ess << ")";
}

TEST(ImportanceSampling, ChannelTiltIsUnbiasedAndBeatsNoiseTilt) {
  // Same unbiasedness pin, but with the fade tilt — the proposal that
  // matches the physics: high-SNR errors in a diversity link come from
  // deep fades, so CN(0, 1/λ) fading concentrates the trials on the
  // event that matters and the weights on error blocks stay nearly
  // constant (high error-block ESS).
  WaveformBerConfig cfg;
  cfg.b = 1;
  cfg.mt = 2;
  cfg.mr = 2;
  cfg.blocks = 400000;
  cfg.seed = 77;
  cfg.adaptive.target_rel_ci = 0.1;
  cfg.adaptive.is_mode = IsMode::kScaledNoise;
  cfg.adaptive.is_noise_scale = 1.0;  // noise untilted
  cfg.adaptive.is_channel_scale = 2.0;
  const double gamma_db = 10.0;
  const WaveformBerPoint p = measure_waveform_ber(cfg, gamma_db);
  const double analytic =
      ber_mqam_rayleigh_mimo(1, db_to_linear(gamma_db) / 2.0, 2, 2);
  ASSERT_GT(p.ber, 0.0);
  ASSERT_GT(p.err_blocks, 0u);
  EXPECT_GT(p.ess, 0.5 * static_cast<double>(p.err_blocks))
      << "fade-tilt error-block weights should be nearly constant";
  const double tol = std::max(3.0 * p.rel_ci, 0.05) * analytic;
  EXPECT_NEAR(p.ber, analytic, tol)
      << "fade-tilted estimate " << p.ber << " vs analytic " << analytic
      << " (rel_ci " << p.rel_ci << ", ess " << p.ess << "/"
      << p.err_blocks << ")";

  // The fade tilt must reach the same precision with fewer trials than
  // an untilted run needs: its stopping point is well under the naive
  // equal-CI cost z²(1−p)/(ρ²·p·bits_per_block).
  const double z = confidence_z(cfg.adaptive.confidence);
  const double naive = z * z * (1.0 - analytic) /
                       (0.1 * 0.1 * analytic * 2.0 /* bits per block */);
  if (p.target_met) {
    EXPECT_LT(static_cast<double>(p.trials_executed), 0.5 * naive)
        << "fade tilt saved no trials over the projected naive cost "
        << naive;
  }
}

TEST(ImportanceSampling, DeterministicAcrossThreadsAndShards) {
  WaveformBerConfig cfg;
  cfg.b = 2;
  cfg.mt = 2;
  cfg.mr = 2;
  cfg.blocks = 30000;
  cfg.seed = 31;
  cfg.adaptive.target_rel_ci = 0.2;
  cfg.adaptive.is_mode = IsMode::kScaledNoise;
  cfg.adaptive.is_noise_scale = 1.5;
  cfg.adaptive.is_channel_scale = 1.5;  // both tilts in play
  const WaveformBerPoint ref = measure_waveform_ber(cfg, 6.0);

  ThreadPool pool(4);
  WaveformBerConfig par = cfg;
  par.pool = &pool;
  par.shards = 4;
  const WaveformBerPoint p = measure_waveform_ber(par, 6.0);
  EXPECT_EQ(p.bit_errors, ref.bit_errors);
  EXPECT_EQ(p.trials_executed, ref.trials_executed);
  EXPECT_EQ(p.ber, ref.ber);  // bitwise: same fold sequence
  EXPECT_EQ(p.ess, ref.ess);
  EXPECT_EQ(p.rel_ci, ref.rel_ci);
}

}  // namespace
}  // namespace comimo
