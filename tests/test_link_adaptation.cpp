#include "comimo/phy/link_adaptation.h"

#include <gtest/gtest.h>

#include <numeric>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/phy/ber.h"

namespace comimo {
namespace {

LinkAdaptationConfig default_cfg() {
  LinkAdaptationConfig cfg;
  cfg.target_ber = 1e-3;
  cfg.b_min = 1;
  cfg.b_max = 8;
  cfg.hysteresis_db = 1.0;
  return cfg;
}

TEST(AdaptiveModulation, RequiredSnrInvertsBerFormula) {
  const AdaptiveModulationController ctrl(default_cfg());
  for (int b = 1; b <= 8; ++b) {
    const double snr = db_to_linear(ctrl.required_snr_db(b));
    EXPECT_NEAR(ber_mqam_awgn(b, snr), 1e-3, 1e-3 * 1e-6) << "b=" << b;
  }
}

TEST(AdaptiveModulation, RequiredSnrIncreasesWithB) {
  const AdaptiveModulationController ctrl(default_cfg());
  // BPSK and QPSK tie exactly (both are Q(√(2γ)) per bit); beyond that
  // the requirement grows strictly.
  EXPECT_DOUBLE_EQ(ctrl.required_snr_db(2), ctrl.required_snr_db(1));
  for (int b = 3; b <= 8; ++b) {
    EXPECT_GT(ctrl.required_snr_db(b), ctrl.required_snr_db(b - 1));
  }
}

TEST(AdaptiveModulation, SelectBMonotoneInSnr) {
  const AdaptiveModulationController ctrl(default_cfg());
  int prev = 0;
  for (double snr_db = -5.0; snr_db <= 40.0; snr_db += 1.0) {
    const int b = ctrl.select_b(snr_db);
    EXPECT_GE(b, prev);
    EXPECT_GE(b, 1);
    EXPECT_LE(b, 8);
    prev = b;
  }
  EXPECT_EQ(ctrl.select_b(-20.0), 1);
  EXPECT_EQ(ctrl.select_b(60.0), 8);
}

TEST(AdaptiveModulation, HysteresisDelaysUpgrade) {
  LinkAdaptationConfig tight = default_cfg();
  tight.hysteresis_db = 0.0;
  LinkAdaptationConfig cautious = default_cfg();
  cautious.hysteresis_db = 3.0;
  const AdaptiveModulationController a(tight);
  const AdaptiveModulationController b(cautious);
  // Just above b=4's requirement: the cautious controller stays lower.
  const double snr = a.required_snr_db(4) + 0.5;
  EXPECT_GE(a.select_b(snr), b.select_b(snr));
}

TEST(AdaptiveModulation, ConfigValidation) {
  LinkAdaptationConfig bad = default_cfg();
  bad.b_max = 9;
  EXPECT_THROW(AdaptiveModulationController{bad}, InvalidArgument);
  bad = default_cfg();
  bad.target_ber = 0.0;
  EXPECT_THROW(AdaptiveModulationController{bad}, InvalidArgument);
}

TEST(AdaptiveLink, MeetsBerTargetAtModerateSnr) {
  AdaptiveLinkScenario sc;
  sc.mean_snr_db = 18.0;
  sc.blocks = 1500;
  const AdaptationRun run = simulate_adaptive_link(default_cfg(), sc);
  // Adaptation holds the realized BER near (at most a few times) the
  // target while fading sweeps the SNR around.
  EXPECT_LT(run.ber, 5e-3);
  EXPECT_GT(run.mean_bits_per_symbol, 1.0);  // uses higher orders
}

TEST(AdaptiveLink, BeatsEveryFixedConstellationOnThroughputAtTarget) {
  // The classic link-adaptation trade: any fixed b either violates the
  // BER target or wastes throughput.  Require that no fixed b achieves
  // both ≥ adaptive throughput and ≤ adaptive BER·1.5.
  AdaptiveLinkScenario sc;
  sc.mean_snr_db = 18.0;
  sc.blocks = 1200;
  const AdaptationRun adaptive = simulate_adaptive_link(default_cfg(), sc);
  for (int b = 1; b <= 8; ++b) {
    AdaptiveLinkScenario fixed = sc;
    fixed.fixed_b = b;
    const AdaptationRun run = simulate_adaptive_link(default_cfg(), fixed);
    const bool dominates =
        run.mean_bits_per_symbol >= adaptive.mean_bits_per_symbol &&
        run.ber <= std::max(adaptive.ber * 1.5, 1e-4);
    EXPECT_FALSE(dominates) << "fixed b=" << b << " ber=" << run.ber
                            << " tput=" << run.mean_bits_per_symbol;
  }
}

TEST(AdaptiveLink, HistogramSpreadsAcrossConstellations) {
  AdaptiveLinkScenario sc;
  sc.mean_snr_db = 16.0;
  sc.blocks = 2000;
  const AdaptationRun run = simulate_adaptive_link(default_cfg(), sc);
  const std::size_t total = std::accumulate(run.b_histogram.begin(),
                                            run.b_histogram.end(),
                                            std::size_t{0});
  EXPECT_EQ(total, sc.blocks);
  // Rayleigh fading at 16 dB mean must visit at least three different
  // constellation sizes.
  int used = 0;
  for (const auto count : run.b_histogram) used += count > 0;
  EXPECT_GE(used, 3);
}

TEST(AdaptiveLink, FixedBRunsUseOnlyThatB) {
  AdaptiveLinkScenario sc;
  sc.fixed_b = 4;
  sc.blocks = 50;
  const AdaptationRun run = simulate_adaptive_link(default_cfg(), sc);
  EXPECT_EQ(run.b_histogram[3], 50u);
  EXPECT_DOUBLE_EQ(run.mean_bits_per_symbol, 4.0);
}

TEST(AdaptiveLink, HigherMeanSnrMoreThroughput) {
  AdaptiveLinkScenario low;
  low.mean_snr_db = 8.0;
  AdaptiveLinkScenario high;
  high.mean_snr_db = 25.0;
  const auto run_low = simulate_adaptive_link(default_cfg(), low);
  const auto run_high = simulate_adaptive_link(default_cfg(), high);
  EXPECT_GT(run_high.mean_bits_per_symbol,
            run_low.mean_bits_per_symbol + 1.0);
}

}  // namespace
}  // namespace comimo
