#include "comimo/numeric/special.h"

#include <gtest/gtest.h>

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {
namespace {

TEST(QFunction, KnownValues) {
  EXPECT_NEAR(q_function(0.0), 0.5, 1e-15);
  EXPECT_NEAR(q_function(1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(q_function(2.0), 0.022750131948179195, 1e-12);
  EXPECT_NEAR(q_function(3.0), 0.0013498980316300933, 1e-14);
  // Symmetry Q(-x) = 1 - Q(x).
  EXPECT_NEAR(q_function(-1.5) + q_function(1.5), 1.0, 1e-14);
}

TEST(QFunction, MonotoneDecreasing) {
  double prev = 1.0;
  for (double x = -5.0; x <= 8.0; x += 0.25) {
    const double q = q_function(x);
    EXPECT_LT(q, prev);
    prev = q;
  }
}

TEST(QInverse, RoundTrip) {
  for (double x : {-2.0, -0.5, 0.0, 0.3, 1.0, 2.5, 4.0, 5.5}) {
    EXPECT_NEAR(q_inverse(q_function(x)), x, 1e-9) << "x=" << x;
  }
}

TEST(QInverse, RoundTripFromProbability) {
  for (double p : {0.4999, 0.3, 0.1, 0.01, 1e-4, 1e-8}) {
    EXPECT_NEAR(q_function(q_inverse(p)), p, p * 1e-8) << "p=" << p;
  }
}

TEST(QInverse, DomainChecks) {
  EXPECT_THROW(q_inverse(0.0), InvalidArgument);
  EXPECT_THROW(q_inverse(1.0), InvalidArgument);
  EXPECT_THROW(q_inverse(-0.1), InvalidArgument);
}

TEST(Erfcx, MatchesNaiveForModerateArguments) {
  for (double x = 0.0; x <= 10.0; x += 0.37) {
    const double naive = std::exp(x * x) * std::erfc(x);
    EXPECT_NEAR(erfcx(x), naive, naive * 1e-10) << "x=" << x;
  }
}

TEST(Erfcx, AsymptoticRegimeFinite) {
  // Naive product overflows here; erfcx must stay finite and close to
  // 1/(x√π).
  for (double x : {15.0, 30.0, 100.0, 1000.0}) {
    const double v = erfcx(x);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, 1.0 / (x * std::sqrt(3.14159265358979323846)),
                v * 0.01)
        << "x=" << x;
  }
}

TEST(Erfcx, ContinuousAcrossRegimeBoundary) {
  const double below = erfcx(11.999999);
  const double above = erfcx(12.000001);
  EXPECT_NEAR(below, above, below * 1e-6);
}

TEST(LogGamma, MatchesFactorials) {
  double fact = 1.0;
  for (int n = 1; n <= 10; ++n) {
    EXPECT_NEAR(std::exp(log_gamma(n)), fact, fact * 1e-12);
    fact *= n;
  }
  EXPECT_THROW(log_gamma(0.0), InvalidArgument);
}

TEST(Binomial, KnownValues) {
  EXPECT_DOUBLE_EQ(binomial(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial(10, 5), 252.0);
  EXPECT_DOUBLE_EQ(binomial(5, 6), 0.0);
  // Pascal identity.
  for (unsigned n = 1; n < 20; ++n) {
    for (unsigned k = 1; k < n; ++k) {
      EXPECT_DOUBLE_EQ(binomial(n, k),
                       binomial(n - 1, k - 1) + binomial(n - 1, k));
    }
  }
}

TEST(AvgQOverGamma, SingleBranchClosedForm) {
  // m = 1 reduces to the Rayleigh BPSK formula ½(1 − √(g/(1+g))).
  for (double g : {0.1, 1.0, 5.0, 50.0, 500.0}) {
    const double expected = 0.5 * (1.0 - std::sqrt(g / (1.0 + g)));
    EXPECT_NEAR(avg_q_over_gamma(g, 1), expected, expected * 1e-12);
  }
}

TEST(AvgQOverGamma, ZeroSnrIsHalf) {
  for (unsigned m : {1u, 2u, 4u, 8u}) {
    EXPECT_NEAR(avg_q_over_gamma(0.0, m), 0.5, 1e-12) << "m=" << m;
  }
}

TEST(AvgQOverGamma, MonotoneInSnrAndDiversity) {
  for (unsigned m = 1; m <= 6; ++m) {
    double prev = 1.0;
    for (double g = 0.1; g <= 100.0; g *= 2.0) {
      const double p = avg_q_over_gamma(g, m);
      EXPECT_LT(p, prev);
      prev = p;
    }
  }
  // More diversity at fixed g is better.
  for (double g : {0.5, 2.0, 10.0}) {
    for (unsigned m = 1; m < 8; ++m) {
      EXPECT_GT(avg_q_over_gamma(g, m), avg_q_over_gamma(g, m + 1));
    }
  }
}

TEST(AvgQOverGamma, MatchesMonteCarlo) {
  Rng rng(99);
  for (const auto& [g, m] : std::vector<std::pair<double, unsigned>>{
           {1.0, 1}, {2.0, 2}, {0.5, 4}, {5.0, 3}}) {
    double sum = 0.0;
    const int trials = 400000;
    for (int t = 0; t < trials; ++t) {
      const double x = rng.gamma(static_cast<double>(m));
      sum += q_function(std::sqrt(2.0 * g * x));
    }
    const double mc = sum / trials;
    const double exact = avg_q_over_gamma(g, m);
    EXPECT_NEAR(mc, exact, std::max(5e-4, exact * 0.05))
        << "g=" << g << " m=" << m;
  }
}

TEST(AvgQOverGamma, ChernoffUpperBound) {
  for (unsigned m : {1u, 2u, 4u, 6u}) {
    for (double g : {0.1, 1.0, 10.0, 100.0}) {
      EXPECT_LE(avg_q_over_gamma(g, m),
                chernoff_avg_q_over_gamma(g, m) * (1.0 + 1e-12));
    }
  }
}

TEST(AvgQOverGamma, HighSnrDiversitySlope) {
  // At high SNR the probability decays like g^-m: doubling g should
  // scale the probability by roughly 2^-m.
  for (unsigned m : {1u, 2u, 3u, 4u}) {
    const double p1 = avg_q_over_gamma(2000.0, m);
    const double p2 = avg_q_over_gamma(4000.0, m);
    EXPECT_NEAR(p1 / p2, std::pow(2.0, m), std::pow(2.0, m) * 0.05)
        << "m=" << m;
  }
}

TEST(LogAvgQOverGamma, MatchesLinearVersion) {
  for (unsigned m : {1u, 3u, 6u}) {
    for (double g : {0.5, 5.0, 50.0}) {
      EXPECT_NEAR(std::exp(log_avg_q_over_gamma(g, m)),
                  avg_q_over_gamma(g, m),
                  avg_q_over_gamma(g, m) * 1e-9);
    }
  }
}

TEST(LogAvgQOverGamma, StableWhereLinearUnderflows) {
  // Deep diversity + huge SNR underflows the linear form; the log form
  // must remain finite and ordered.
  const double l1 = log_avg_q_over_gamma(1e12, 8);
  const double l2 = log_avg_q_over_gamma(1e13, 8);
  EXPECT_TRUE(std::isfinite(l1));
  EXPECT_TRUE(std::isfinite(l2));
  EXPECT_GT(l1, l2);
}

}  // namespace
}  // namespace comimo
