#include "comimo/numeric/cmatrix.h"

#include <gtest/gtest.h>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {
namespace {

using namespace std::complex_literals;

TEST(CMatrix, ConstructionAndIndexing) {
  CMatrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(m(r, c), cplx(0.0, 0.0));
    }
  }
  m(1, 2) = 1.0 + 2.0i;
  EXPECT_EQ(m(1, 2), cplx(1.0, 2.0));
}

TEST(CMatrix, InitializerList) {
  const CMatrix m{{1.0, 2.0i}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(0, 1), cplx(0.0, 2.0));
  EXPECT_THROW((CMatrix{{1.0}, {1.0, 2.0}}), InvalidArgument);
}

TEST(CMatrix, Identity) {
  const CMatrix id = CMatrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(id(r, c), (r == c ? cplx(1.0, 0.0) : cplx(0.0, 0.0)));
    }
  }
}

TEST(CMatrix, AddSubtract) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const CMatrix b{{0.5, -1.0}, {2.0, 1.0i}};
  const CMatrix sum = a + b;
  EXPECT_EQ(sum(0, 0), cplx(1.5, 0.0));
  EXPECT_EQ(sum(1, 1), cplx(4.0, 1.0));
  const CMatrix diff = sum - b;
  EXPECT_NEAR(diff.max_abs_diff(a), 0.0, 1e-15);
}

// Per-op shape checks are debug-only (COMIMO_DCHECK) so the per-block
// kernel path stays branch-free in Release; boundary APIs keep throwing
// in every build type.
TEST(CMatrix, ShapeMismatchThrows) {
#ifndef NDEBUG
  const CMatrix a(2, 2);
  const CMatrix b(2, 3);
  EXPECT_THROW(a + b, InvalidArgument);
  EXPECT_THROW(a - b, InvalidArgument);
  EXPECT_THROW(b * b, InvalidArgument);
#else
  GTEST_SKIP() << "per-op shape checks compile away under NDEBUG";
#endif
}

TEST(CMatrix, MultiplyKnownProduct) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const CMatrix b{{5.0, 6.0}, {7.0, 8.0}};
  const CMatrix p = a * b;
  EXPECT_EQ(p(0, 0), cplx(19.0, 0.0));
  EXPECT_EQ(p(0, 1), cplx(22.0, 0.0));
  EXPECT_EQ(p(1, 0), cplx(43.0, 0.0));
  EXPECT_EQ(p(1, 1), cplx(50.0, 0.0));
}

TEST(CMatrix, IdentityIsMultiplicativeNeutral) {
  Rng rng(1);
  const CMatrix a = CMatrix::random_gaussian(3, 3, rng);
  EXPECT_NEAR((a * CMatrix::identity(3)).max_abs_diff(a), 0.0, 1e-14);
  EXPECT_NEAR((CMatrix::identity(3) * a).max_abs_diff(a), 0.0, 1e-14);
}

TEST(CMatrix, HermitianTranspose) {
  const CMatrix a{{1.0 + 1.0i, 2.0}, {3.0i, 4.0 - 2.0i}};
  const CMatrix h = a.hermitian();
  EXPECT_EQ(h(0, 0), cplx(1.0, -1.0));
  EXPECT_EQ(h(1, 0), cplx(2.0, 0.0));
  EXPECT_EQ(h(0, 1), cplx(0.0, -3.0));
  // (A^H)^H == A.
  EXPECT_NEAR(h.hermitian().max_abs_diff(a), 0.0, 1e-15);
}

TEST(CMatrix, TransposeVsHermitianOnRealMatrix) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_NEAR(a.transpose().max_abs_diff(a.hermitian()), 0.0, 1e-15);
}

TEST(CMatrix, FrobeniusNorm) {
  const CMatrix a{{3.0, 0.0}, {0.0, 4.0i}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(CMatrix, Trace) {
  const CMatrix a{{1.0, 9.0}, {9.0, 2.0i}};
  EXPECT_EQ(a.trace(), cplx(1.0, 2.0));
  EXPECT_THROW(CMatrix(2, 3).trace(), InvalidArgument);
}

TEST(CMatrix, SolveRecoversKnownSolution) {
  Rng rng(2);
  const CMatrix a = CMatrix::random_gaussian(4, 4, rng);
  std::vector<cplx> x_true;
  for (int i = 0; i < 4; ++i) x_true.push_back(rng.complex_gaussian());
  const std::vector<cplx> b = a * x_true;
  const std::vector<cplx> x = a.solve(b);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(std::abs(x[i] - x_true[i]), 0.0, 1e-10);
  }
}

TEST(CMatrix, SolveSingularThrows) {
  const CMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(a.solve({1.0, 1.0}), NumericError);
}

TEST(CMatrix, InverseTimesSelfIsIdentity) {
  Rng rng(3);
  const CMatrix a = CMatrix::random_gaussian(5, 5, rng);
  const CMatrix inv = a.inverse();
  EXPECT_NEAR((a * inv).max_abs_diff(CMatrix::identity(5)), 0.0, 1e-9);
  EXPECT_NEAR((inv * a).max_abs_diff(CMatrix::identity(5)), 0.0, 1e-9);
}

TEST(CMatrix, RandomGaussianPower) {
  Rng rng(4);
  // Mean squared Frobenius norm of an m×n CN(0,1) matrix is m·n.
  double total = 0.0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    total += CMatrix::random_gaussian(2, 3, rng).frobenius_norm2();
  }
  EXPECT_NEAR(total / trials, 6.0, 0.3);
}

TEST(CMatrix, MatrixVectorProduct) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<cplx> x{1.0, 1.0i};
  const std::vector<cplx> y = a * x;
  EXPECT_EQ(y[0], cplx(1.0, 2.0));
  EXPECT_EQ(y[1], cplx(3.0, 4.0));
}

TEST(CMatrix, ScalarMultiply) {
  const CMatrix a{{1.0, 2.0}};
  const CMatrix b = a * cplx(0.0, 2.0);
  EXPECT_EQ(b(0, 0), cplx(0.0, 2.0));
  EXPECT_EQ(b(0, 1), cplx(0.0, 4.0));
}

TEST(CMatrix, ConjugateMatchesHermitianOfTranspose) {
  Rng rng(5);
  const CMatrix a = CMatrix::random_gaussian(3, 2, rng);
  EXPECT_NEAR(a.conjugate().max_abs_diff(a.transpose().hermitian()), 0.0,
              1e-15);
}

TEST(CMatrix, ResizeReshapesAndZeroes) {
  CMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  m.resize(3, 2);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(m(r, c), cplx(0.0, 0.0));
    }
  }
}

TEST(CMatrixView, ViewsAliasTheMatrixStorage) {
  CMatrix m(2, 3);
  CMatrixView v = m;
  v(1, 2) = cplx{5.0, -1.0};
  EXPECT_EQ(m(1, 2), cplx(5.0, -1.0));
  ConstCMatrixView cv = m;
  EXPECT_EQ(cv(1, 2), cplx(5.0, -1.0));
  EXPECT_DOUBLE_EQ(cv.frobenius_norm2(), m.frobenius_norm2());
  EXPECT_NEAR(cv.to_matrix().max_abs_diff(m), 0.0, 0.0);
}

TEST(CMatrixView, RandomGaussianIntoMatchesFactory) {
  Rng rng_a(42, 7);
  Rng rng_b(42, 7);
  const CMatrix expect = CMatrix::random_gaussian(3, 4, rng_a, 2.0);
  CMatrix got(3, 4);
  random_gaussian_into(got, rng_b, 2.0);
  EXPECT_EQ(got.max_abs_diff(expect), 0.0);
}

TEST(CMatrixView, MultiplyIntoMatchesOperator) {
  Rng rng(9);
  const CMatrix a = CMatrix::random_gaussian(3, 4, rng);
  const CMatrix b = CMatrix::random_gaussian(4, 2, rng);
  const CMatrix expect = a * b;
  CMatrix got(3, 2);
  multiply_into(a, b, got);
  EXPECT_NEAR(got.max_abs_diff(expect), 0.0, 1e-15);
}

TEST(CMatrixView, MultiplyTransposedIntoMatchesOperator) {
  Rng rng(11);
  const CMatrix a = CMatrix::random_gaussian(3, 4, rng);
  const CMatrix b = CMatrix::random_gaussian(2, 4, rng);
  const CMatrix expect = a * b.transpose();
  CMatrix got(3, 2);
  multiply_transposed_into(a, b, got);
  EXPECT_NEAR(got.max_abs_diff(expect), 0.0, 1e-14);
}

TEST(CMatrixView, AddScaledNoiseIntoMatchesScalarDraws) {
  Rng rng_a(13, 1);
  Rng rng_b(13, 1);
  CMatrix m(2, 3);
  CMatrix expect(2, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      expect(r, c) = rng_a.complex_gaussian(0.5);
    }
  }
  add_scaled_noise_into(m, rng_b, 0.5);
  EXPECT_EQ(m.max_abs_diff(expect), 0.0);
}

TEST(CMatrix, SolveIntoMatchesSolveAndReusesBuffers) {
  Rng rng(17);
  const CMatrix a = CMatrix::random_gaussian(4, 4, rng);
  const std::vector<cplx> b{1.0, 2.0i, -1.0, cplx{0.5, 0.5}};
  const std::vector<cplx> expect = a.solve(b);
  std::vector<cplx> x;
  std::vector<cplx> work;
  a.solve_into(b, x, work);
  ASSERT_EQ(x.size(), expect.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], expect[i]);
  // Second solve through the same buffers must not be affected by the
  // first one's leftovers.
  const CMatrix a2 = CMatrix::random_gaussian(3, 3, rng);
  const std::vector<cplx> b2{1.0, -2.0, 3.0i};
  const std::vector<cplx> expect2 = a2.solve(b2);
  a2.solve_into(b2, x, work);
  ASSERT_EQ(x.size(), expect2.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], expect2[i]);
}

}  // namespace
}  // namespace comimo
