#!/usr/bin/env bash
# Validate the structured bench output contract:
#   1. every bench binary accepts --json <path> and writes valid JSON;
#   2. comimo-bench-v1 emitters carry the required fields, including a
#      system-clock timestamp_unix_s (wall_s is steady_clock and cannot
#      date a committed run);
#   3. for the engine-backed benches (run with --obs), both the per-
#      record `metrics` objects AND the envelope-level deterministic
#      `metrics` block are identical between a serial run and a
#      --threads 4 run — the mc/ engine's determinism contract plus the
#      obs layer's chunk-ordered shard merge, checked end to end.
#      (`metrics_runtime` — latencies, utilization — is exempt.)
# perf_kernels emits comimo-bench-v1 in --json mode (the google-benchmark
# micro-kernels still run when --json is absent) and additionally
# guarantees allocs_per_block == 0 on the workspace and simd_batch
# records, plus speedup_vs_scalar >= 1.0 for the SIMD batch path.
#
# Usage: scripts/check_bench_json.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

if [ ! -d "$BENCH_DIR" ]; then
  echo "error: $BENCH_DIR not found (build with -DCOMIMO_BUILD_BENCH=ON)" >&2
  exit 1
fi

# Fast, trial-bound benches re-run twice for the determinism diff.
# The remaining emitters are schema-checked from a single serial run.
DETERMINISM_BENCHES=(
  table1_interweave_amplitude
  table2_overlay_single_relay
  table3_overlay_multi_relay
  validate_energy_model
  ext_fault_recovery
  ext_network_lifetime
  ext_rlnc_vs_arq
)
SCHEMA_ONLY_BENCHES=(
  fig6_overlay_distance
  fig8_beam_pattern
  ext_outage_analysis
  ext_sensing_tradeoffs
  ext_coexistence
)

validate_v1() {
  python3 - "$1" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d.get("schema") == "comimo-bench-v1", f"schema: {d.get('schema')!r}"
assert isinstance(d.get("bench"), str) and d["bench"], "bench name missing"
assert isinstance(d.get("threads"), int) and d["threads"] >= 1
ts = d.get("timestamp_unix_s")
assert isinstance(ts, int) and not isinstance(ts, bool), \
    f"timestamp_unix_s missing or non-integer: {ts!r}"
assert ts > 1704067200, \
    f"timestamp_unix_s not a plausible system-clock date: {ts}"
assert isinstance(d.get("wall_s"), (int, float)) and d["wall_s"] >= 0
assert isinstance(d.get("records"), list) and d["records"], "no records"
for r in d["records"]:
    assert isinstance(r.get("params"), dict), "record without params"
    assert isinstance(r.get("metrics"), dict) and r["metrics"], \
        "record without metrics"
EOF
}

diff_metrics() {
  python3 - "$1" "$2" <<'EOF'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
am = [(r["params"], r["metrics"]) for r in a["records"]]
bm = [(r["params"], r["metrics"]) for r in b["records"]]
assert am == bm, "serial vs parallel record metrics differ"
# Both runs used --obs, so the envelope must carry the deterministic
# obs block, and it must be worker-count invariant.  metrics_runtime
# (latencies, queue depths) is runtime domain and exempt by design.
assert isinstance(a.get("metrics"), dict), "envelope metrics missing (--obs)"
assert a["metrics"] == b["metrics"], \
    "serial vs parallel envelope obs metrics differ"
EOF
}

fail=0

for bench in "${DETERMINISM_BENCHES[@]}"; do
  bin="$BENCH_DIR/$bench"
  [ -x "$bin" ] || { echo "MISSING  $bench"; fail=1; continue; }
  if ! "$bin" --json "$OUT_DIR/$bench.serial.json" --threads 1 --obs \
      > /dev/null 2>&1; then
    echo "RUN FAIL $bench (serial)"; fail=1; continue
  fi
  if ! "$bin" --json "$OUT_DIR/$bench.par.json" --threads 4 --obs \
      > /dev/null 2>&1; then
    echo "RUN FAIL $bench (--threads 4)"; fail=1; continue
  fi
  if ! validate_v1 "$OUT_DIR/$bench.serial.json"; then
    echo "SCHEMA   $bench"; fail=1; continue
  fi
  if ! diff_metrics "$OUT_DIR/$bench.serial.json" "$OUT_DIR/$bench.par.json"
  then
    echo "DIVERGED $bench (1 vs 4 threads)"; fail=1; continue
  fi
  echo "OK       $bench (schema + thread-count invariance, records + obs)"
done

for bench in "${SCHEMA_ONLY_BENCHES[@]}"; do
  bin="$BENCH_DIR/$bench"
  [ -x "$bin" ] || { echo "MISSING  $bench"; fail=1; continue; }
  if ! "$bin" --json "$OUT_DIR/$bench.json" > /dev/null 2>&1; then
    echo "RUN FAIL $bench"; fail=1; continue
  fi
  if ! validate_v1 "$OUT_DIR/$bench.json"; then
    echo "SCHEMA   $bench"; fail=1; continue
  fi
  echo "OK       $bench (schema)"
done

# perf_kernels: comimo-bench-v1 schema plus the zero-allocation gate —
# every workspace AND simd_batch record must report allocs_per_block
# == 0, and the batch path must never lose to the scalar workspace path
# (speedup_vs_scalar >= 1.0; bit-error identity is asserted inside the
# binary itself, which aborts on divergence).
if [ -x "$BENCH_DIR/perf_kernels" ]; then
  if "$BENCH_DIR/perf_kernels" --json "$OUT_DIR/perf_kernels.json" \
      --trials 2000 > /dev/null 2>&1 \
    && validate_v1 "$OUT_DIR/perf_kernels.json" \
    && python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
ws = [r for r in d["records"] if r["params"].get("path") == "workspace"]
assert ws, "no workspace records"
for r in ws:
    assert r["metrics"]["allocs_per_block"] == 0, \
        f"workspace path allocates: {r}"
sb = [r for r in d["records"] if r["params"].get("path") == "simd_batch"]
assert sb, "no simd_batch records"
for r in sb:
    assert r["params"].get("simd"), "simd_batch record without tier name"
    assert r["params"].get("width", 0) >= 1, "simd_batch record without width"
    assert r["metrics"]["allocs_per_block"] == 0, \
        f"simd batch path allocates: {r}"
    assert r["metrics"].get("speedup_vs_scalar", 0) >= 1.0, \
        f"simd batch path slower than the scalar workspace path: {r}"
hb = [r for r in d["records"] if r["params"].get("path") == "hop_batch"]
assert len(hb) >= 3, f"expected >= 3 hop_batch shapes, got {len(hb)}"
for r in hb:
    assert r["params"].get("mt", 0) >= 1 and r["params"].get("mr", 0) >= 1, \
        "hop_batch record without (mt, mr) shape"
    assert r["metrics"]["allocs_per_block"] == 0, \
        f"hop batch path allocates: {r}"
    assert r["metrics"].get("speedup_vs_scalar", 0) >= 1.0, \
        f"hop batch path slower than the lane-serial path: {r}"' \
      "$OUT_DIR/perf_kernels.json"
  then
    echo "OK       perf_kernels (schema + zero-alloc + simd/hop batch speedup)"
  else
    echo "FAIL     perf_kernels"; fail=1
  fi
  # With the obs layer *enabled* the steady state must stay allocation
  # free too: counter adds are relaxed fetch-adds into preregistered
  # cells, and registration happens during warmup.
  if "$BENCH_DIR/perf_kernels" --json "$OUT_DIR/perf_kernels.obs.json" \
      --trials 2000 --obs > /dev/null 2>&1 \
    && python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert isinstance(d.get("metrics"), dict), "no envelope obs metrics"
assert d["metrics"]["counters"].get("phy.link_blocks", 0) > 0, \
    "obs enabled but phy.link_blocks never counted"
for r in d["records"]:
    if r["params"].get("path") in ("workspace", "simd_batch"):
        assert r["metrics"]["allocs_per_block"] == 0, \
            f"{r['params']['path']} path allocates with obs enabled: {r}"
g = d["metrics_runtime"]["gauges"] if "metrics_runtime" in d else {}
g = {**d["metrics"].get("gauges", {}), **g}
assert "simd.active_tier" in g and "simd.lane_width" in g, \
    f"simd dispatch gauges missing from obs envelope: {sorted(g)}"' \
      "$OUT_DIR/perf_kernels.obs.json"
  then
    echo "OK       perf_kernels (--obs: metrics embedded, still zero-alloc)"
  else
    echo "FAIL     perf_kernels (--obs)"; fail=1
  fi
else
  echo "MISSING  perf_kernels"; fail=1
fi

# mc/ multi-process sharding: a --shards 4 run of the waveform sweep
# must reproduce the --shards 1 envelope bit for bit (the sharded
# driver transports per-chunk accumulators and folds them in global
# chunk-ordinal order).  Only the deterministic record metrics are
# compared — timing keys (speedup, trials/s) are runtime domain — and
# --obs stays off because a forked child's obs registry does not flow
# back to the parent envelope.  A --shards 2 run smoke-checks the
# schema on the same binary.
if [ -x "$BENCH_DIR/mc_engine_speedup" ]; then
  if "$BENCH_DIR/mc_engine_speedup" --trials 4000 --shards 1 \
      --json "$OUT_DIR/shards1.json" > /dev/null 2>&1 \
    && "$BENCH_DIR/mc_engine_speedup" --trials 4000 --shards 4 \
      --json "$OUT_DIR/shards4.json" > /dev/null 2>&1 \
    && python3 -c '
import json, sys
KEYS = ("bit_errors", "bits", "ber", "analytic_ber")
def rows(path):
    d = json.load(open(path))
    return [({k: v for k, v in r["params"].items() if k != "shards"},
             {k: r["metrics"][k] for k in KEYS})
            for r in d["records"]]
a, b = rows(sys.argv[1]), rows(sys.argv[2])
assert a, "no records in the sharded envelope"
assert a == b, "--shards 1 vs --shards 4 envelopes diverge"' \
      "$OUT_DIR/shards1.json" "$OUT_DIR/shards4.json" \
    && "$BENCH_DIR/mc_engine_speedup" --trials 1000 --shards 2 \
      --json "$OUT_DIR/shards2.json" > /dev/null 2>&1 \
    && validate_v1 "$OUT_DIR/shards2.json"
  then
    echo "OK       mc_engine_speedup (--shards 4 bit-identical to --shards 1)"
  else
    echo "FAIL     mc_engine_speedup (--shards)"; fail=1
  fi
else
  echo "MISSING  mc_engine_speedup"; fail=1
fi

# mc/adaptive: the precision-targeted driver must actually stop early
# (and save trials) at the shallow waterfall point, the IS tier must
# carry a healthy weight ESS, and — the checkpoint-determinism
# contract — every deterministic record metric must be identical
# between --threads 1 and --threads 4 (the stop decision is evaluated
# only at global chunk-ordinal checkpoints, so the executed trial set
# is a pure function of the config).  Timing keys are runtime domain
# and excluded, exactly like the mc_engine --shards diff.
if [ -x "$BENCH_DIR/adaptive_mc" ]; then
  if "$BENCH_DIR/adaptive_mc" --trials 20000 --threads 1 \
      --json "$OUT_DIR/adaptive1.json" > /dev/null 2>&1 \
    && "$BENCH_DIR/adaptive_mc" --trials 20000 --threads 4 \
      --json "$OUT_DIR/adaptive4.json" > /dev/null 2>&1 \
    && validate_v1 "$OUT_DIR/adaptive1.json" \
    && python3 -c '
import json, sys
KEYS = ("trials_executed", "trials_saved", "checkpoints", "target_met",
        "bits", "bit_errors", "ber", "analytic_ber", "rel_ci", "ess",
        "err_blocks")
def rows(path):
    d = json.load(open(path))
    return [(r["params"]["mode"], r["params"]["gamma_b_db"],
             {k: r["metrics"][k] for k in KEYS if k in r["metrics"]})
            for r in d["records"]]
a, b = rows(sys.argv[1]), rows(sys.argv[2])
assert a, "no adaptive_mc records"
assert a == b, "--threads 1 vs --threads 4 adaptive envelopes diverge"
shallow = {mode: m for mode, g, m in a if g == 6.0}
for mode in ("adaptive", "adaptive_is"):
    assert mode in shallow, f"missing 6 dB record: {mode}"
    m = shallow[mode]
    assert m["target_met"] == 1, f"{mode} @ 6 dB missed the CI target: {m}"
    assert m["trials_saved"] > 0, f"{mode} @ 6 dB saved no trials: {m}"
ess = shallow["adaptive_is"]["ess"]
assert ess > 50, f"IS error-block weight ESS degenerate at 6 dB: {ess}"' \
      "$OUT_DIR/adaptive1.json" "$OUT_DIR/adaptive4.json"
  then
    echo "OK       adaptive_mc (thread-count invariance + early stop + IS ESS)"
  else
    echo "FAIL     adaptive_mc"; fail=1
  fi
else
  echo "MISSING  adaptive_mc"; fail=1
fi

# net_scale: schema-checked on a shrunk ladder (--trials) — the full
# million-node run is the committed artifact, gated below.
if [ -x "$BENCH_DIR/net_scale" ]; then
  if "$BENCH_DIR/net_scale" --trials 20000 \
      --json "$OUT_DIR/net_scale.json" > /dev/null 2>&1 \
    && validate_v1 "$OUT_DIR/net_scale.json" \
    && python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
for r in d["records"]:
    m = r["metrics"]
    assert m["admitted"] == r["params"]["n"], "admitted != n"
    assert m["routed_pairs"] > 0, "no routed pairs"
    bpn = m["bytes_per_node"]
    assert bpn <= 512, f"bytes/node unbounded: {bpn}"' \
      "$OUT_DIR/net_scale.json"
  then
    echo "OK       net_scale (schema + bounded bytes/node, shrunk ladder)"
  else
    echo "FAIL     net_scale"; fail=1
  fi
else
  echo "MISSING  net_scale"; fail=1
fi

# The committed BENCH_link_kernel.json is the kernel-perf claim of
# record: it must carry hop_batch rows for >= 3 (mt, mr) shapes, each
# allocation-free and at least as fast as the lane-serial path.
if [ -f BENCH_link_kernel.json ]; then
  if validate_v1 BENCH_link_kernel.json && python3 -c '
import json
d = json.load(open("BENCH_link_kernel.json"))
hb = [r for r in d["records"] if r["params"].get("path") == "hop_batch"]
shapes = {(r["params"]["mt"], r["params"]["mr"]) for r in hb}
assert len(shapes) >= 3, f"hop_batch shapes committed: {sorted(shapes)}"
for r in hb:
    assert r["metrics"]["allocs_per_block"] == 0, \
        f"committed hop_batch row allocates: {r}"
    assert r["metrics"]["speedup_vs_scalar"] >= 1.0, \
        f"committed hop_batch row slower than lane-serial: {r}"
'
  then
    echo "OK       BENCH_link_kernel.json (hop_batch rows: zero-alloc, speedup >= 1)"
  else
    echo "FAIL     BENCH_link_kernel.json"; fail=1
  fi
else
  echo "MISSING  BENCH_link_kernel.json (committed artifact)"; fail=1
fi

# The committed BENCH_net_scale.json is the million-node claim itself:
# it must carry an n = 10⁶ row where every SU was admitted, sampled
# pairs routed, and the engine held bounded per-node memory.
if [ -f BENCH_net_scale.json ]; then
  if validate_v1 BENCH_net_scale.json && python3 -c '
import json
d = json.load(open("BENCH_net_scale.json"))
rows = {r["params"]["n"]: r["metrics"] for r in d["records"]}
assert 1000000 in rows, f"no n=10^6 row (have {sorted(rows)})"
m = rows[1000000]
adm, bpn = m["admitted"], m["bytes_per_node"]
assert adm == 1000000, f"admitted {adm} != 10^6"
assert m["clusters"] > 0 and m["links"] > 0, "degenerate network"
assert m["routed_pairs"] > 0, "no pairs routed at 10^6"
assert bpn <= 512, f"bytes/node {bpn} above the 512 bound"
assert m["incremental_kill_s"] < m["build_s"], \
    "incremental kill wave not cheaper than a full build"
'
  then
    echo "OK       BENCH_net_scale.json (n=10^6 row, bounded bytes/node)"
  else
    echo "FAIL     BENCH_net_scale.json"; fail=1
  fi
else
  echo "MISSING  BENCH_net_scale.json (committed artifact)"; fail=1
fi

# The committed BENCH_rlnc_vs_arq.json carries the PR's headline claim:
# under heavy burst loss the coded transport must not deliver less than
# ARQ facing the identical fault streams.  Gate the artifact itself so a
# regression cannot ride in behind a stale JSON.
if [ -f BENCH_rlnc_vs_arq.json ]; then
  if validate_v1 BENCH_rlnc_vs_arq.json && python3 -c '
import json
d = json.load(open("BENCH_rlnc_vs_arq.json"))
rows = {(r["params"]["transport"], r["params"]["burst"]): r["metrics"]
        for r in d["records"]}
for pair in [("arq", "heavy"), ("rlnc", "heavy")]:
    assert pair in rows, f"missing record {pair}"
for (_, burst) in rows:
    arq, rlnc = rows[("arq", burst)], rows[("rlnc", burst)]
    for m in ("delivery_ratio", "energy_per_delivered_bit_j",
              "mean_delivery_latency_s", "time_per_delivered_packet_s",
              "overhead_packets"):
        assert m in arq and m in rlnc, f"metric {m} missing at burst={burst}"
a, r = rows[("arq", "heavy")], rows[("rlnc", "heavy")]
assert r["delivery_ratio"] >= a["delivery_ratio"], (
    f"RLNC delivery {r['delivery_ratio']} below ARQ "
    f"{a['delivery_ratio']} at the heavy-burst corner")
assert (r["time_per_delivered_packet_s"]
        <= a["time_per_delivered_packet_s"]), (
    f"RLNC time/delivered {r['time_per_delivered_packet_s']} above ARQ "
    f"{a['time_per_delivered_packet_s']} at the heavy-burst corner")
'
  then
    echo "OK       BENCH_rlnc_vs_arq.json (schema + heavy-burst delivery gate)"
  else
    echo "FAIL     BENCH_rlnc_vs_arq.json"; fail=1
  fi
else
  echo "MISSING  BENCH_rlnc_vs_arq.json (committed artifact)"; fail=1
fi

# The committed BENCH_adaptive_mc.json carries the PR's headline perf
# claim: every row must have met its CI target inside the budget with
# trials to spare, the IS rows must keep a non-degenerate error-block
# weight ESS (ess >= 50 and ess_frac >= 0.2 of the error blocks — a
# mis-tilt shows up as a few huge-weight errors dominating), and at the
# lowest-BER (highest γ_b) point the importance-sampled run must beat
# the MEASURED equal-CI naive cost by at least 10x.
if [ -f BENCH_adaptive_mc.json ]; then
  if validate_v1 BENCH_adaptive_mc.json && python3 -c '
import json
d = json.load(open("BENCH_adaptive_mc.json"))
rows = {(r["params"]["gamma_b_db"], r["params"]["mode"]): r["metrics"]
        for r in d["records"]}
assert rows, "no records"
for (g, mode), m in rows.items():
    assert m["target_met"] == 1, f"{mode} @ {g} dB missed the target: {m}"
    assert m["trials_saved"] > 0, f"{mode} @ {g} dB saved no trials: {m}"
is_rows = {g: m for (g, mode), m in rows.items() if mode == "adaptive_is"}
assert is_rows, "no adaptive_is records"
for g, m in is_rows.items():
    assert m["ess"] >= 50 and m["ess_frac"] >= 0.2, \
        f"IS error-block weight ESS degenerate @ {g} dB: {m}"
deep = is_rows[max(is_rows)]
assert deep["naive_measured"] == 1, \
    "equal-CI naive cost at the deepest point is projected, not measured"
red = deep["equal_ci_reduction_x"]
assert red >= 10.0, \
    f"IS equal-CI reduction {red}x below the 10x floor at the deepest point"
'
  then
    echo "OK       BENCH_adaptive_mc.json (targets met, ESS floor, >=10x at deepest point)"
  else
    echo "FAIL     BENCH_adaptive_mc.json"; fail=1
  fi
else
  echo "MISSING  BENCH_adaptive_mc.json (committed artifact)"; fail=1
fi

# The committed BENCH_mc_engine.json must (a) stay bit-identical across
# pool sizes, (b) agree with the analytic reference — the γ_b/m_t
# total-power normalization regression rode in behind exactly this
# artifact once — and (c) record the host core count so the parallel
# speedup is only gated when the recording machine could express it.
if [ -f BENCH_mc_engine.json ]; then
  if validate_v1 BENCH_mc_engine.json && python3 -c '
import json
d = json.load(open("BENCH_mc_engine.json"))
hc = d.get("hardware_concurrency")
assert isinstance(hc, int) and hc >= 1, \
    f"hardware_concurrency missing from the envelope: {hc!r}"
rows = {r["params"]["threads"]: r["metrics"] for r in d["records"]}
assert {1, 2, 4, 8} <= set(rows), f"pool sizes committed: {sorted(rows)}"
ref = rows[1]
for t, m in rows.items():
    assert (m["bit_errors"], m["bits"]) == (ref["bit_errors"], ref["bits"]), \
        f"{t}-thread row not bit-identical to serial: {m}"
    ber, ana = m["ber"], m["analytic_ber"]
    assert ana > 0, "analytic reference missing"
    rel = abs(ber - ana) / ana
    assert rel <= 0.15, (
        f"empirical BER {ber} vs analytic {ana} disagree by {rel:.1%} "
        "(check the per-branch power normalization)")
if hc >= 4:
    sp = rows[4]["speedup_vs_1t"]
    assert sp >= 1.5, f"4-thread speedup {sp}x on a {hc}-core host"
'
  then
    echo "OK       BENCH_mc_engine.json (bit-identity, analytic agreement, core-aware speedup)"
  else
    echo "FAIL     BENCH_mc_engine.json"; fail=1
  fi
else
  echo "MISSING  BENCH_mc_engine.json (committed artifact)"; fail=1
fi

# service_load: the daemon's admission accounting must balance in every
# phase (submitted == accepted + rejected — a lost job would break the
# identity), the latency reservoir must produce a p99, and the replay
# phase must report byte-identical result streams.  Run shrunk here;
# the committed artifact is gated below.
service_load_gate() {
  python3 - "$1" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
phases = {r["params"]["phase"]: r["metrics"] for r in d["records"]}
for need in ("load", "backpressure", "replay"):
    assert need in phases, f"missing phase record: {need}"
for phase, m in phases.items():
    assert m["jobs_submitted"] == m["jobs_accepted"] + m["jobs_rejected"], \
        f"{phase}: submitted != accepted + rejected: {m}"
    assert "latency_p99_ms" in m and m["latency_p99_ms"] >= m["latency_p50_ms"] >= 0, \
        f"{phase}: latency percentiles missing or inverted: {m}"
bp = phases["backpressure"]
assert bp["jobs_rejected"] > 0, f"backpressure phase never rejected: {bp}"
assert phases["replay"]["replay_identical"] == 1, "replay diverged"
EOF
}

if [ -x "$BENCH_DIR/service_load" ]; then
  if "$BENCH_DIR/service_load" --trials 8 \
      --json "$OUT_DIR/service_load.json" > /dev/null 2>&1 \
    && validate_v1 "$OUT_DIR/service_load.json" \
    && service_load_gate "$OUT_DIR/service_load.json"
  then
    echo "OK       service_load (schema + admission accounting + replay)"
  else
    echo "FAIL     service_load"; fail=1
  fi
else
  echo "MISSING  service_load"; fail=1
fi

# The committed BENCH_service_load.json is the daemon-robustness claim
# of record: same gates as the live run.
if [ -f BENCH_service_load.json ]; then
  if validate_v1 BENCH_service_load.json \
    && service_load_gate BENCH_service_load.json
  then
    echo "OK       BENCH_service_load.json (accounting identity + p99 + replay)"
  else
    echo "FAIL     BENCH_service_load.json"; fail=1
  fi
else
  echo "MISSING  BENCH_service_load.json (committed artifact)"; fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "bench JSON contract: FAILED" >&2
  exit 1
fi
echo "bench JSON contract: all checks passed"
