#!/usr/bin/env bash
# Observability overhead gate, two guarantees:
#
#   1. The compile-time kill switch works: a -DCOMIMO_OBS=OFF tree
#      builds and its perf_kernels passes the zero-alloc check — every
#      obs call site compiles to a no-op.
#   2. Compiled in but runtime-disabled (the default), the obs layer
#      costs <= OBS_OVERHEAD_PCT on the link-kernel hot path.  Both
#      builds run back to back on the same machine, best-of-N per side,
#      because a committed cross-machine baseline cannot resolve 1%.
#
# Two different binaries place identical code at different addresses,
# and even with -falign-functions=64 that residual placement skew
# measures ~±2% per shape with *random sign* — below a 1% per-shape
# budget.  The disabled-obs cost we are gating is constant per block,
# so it shifts every shape in the same direction: the acceptance
# criterion is therefore the cross-shape geometric-mean delta (budget
# OBS_OVERHEAD_PCT), with a per-shape hard cap (OBS_OVERHEAD_MAX_PCT)
# to still catch a single-shape blowup.
#
# The committed BENCH_link_kernel.json trajectory stays the cross-PR
# reference for gross regressions; this gate isolates the obs delta.
#
# Usage: scripts/check_obs_overhead.sh [build-dir]   (default: build)
#        OBS_OVERHEAD_PCT=<float>      geomean budget in percent
#                                      (default 1.0; the acceptance
#                                      criterion)
#        OBS_OVERHEAD_MAX_PCT=<float>  per-shape hard cap (default 5.0)
#        OBS_BENCH_TRIALS=<n>       blocks per measurement (default 20000)
#        OBS_BENCH_REPS=<n>         repetitions, best kept (default 3)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
OFF_DIR="${BUILD_DIR}-obsoff"
PCT="${OBS_OVERHEAD_PCT:-1.0}"
MAX_PCT="${OBS_OVERHEAD_MAX_PCT:-5.0}"
TRIALS="${OBS_BENCH_TRIALS:-20000}"
REPS="${OBS_BENCH_REPS:-3}"
OUT_DIR="$(mktemp -d)"
trap 'rm -rf "$OUT_DIR"' EXIT

echo "== obs kill switch: build with -DCOMIMO_OBS=OFF =="
cmake -B "$OFF_DIR" -S . -DCOMIMO_OBS=OFF \
  -DCOMIMO_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$OFF_DIR" -j "$(nproc)" > /dev/null

for dir in "$BUILD_DIR" "$OFF_DIR"; do
  if [ ! -x "$dir/bench/perf_kernels" ]; then
    echo "error: $dir/bench/perf_kernels not found" >&2
    exit 1
  fi
done

"$OFF_DIR/bench/perf_kernels" --json "$OUT_DIR/off.0.json" \
  --trials "$TRIALS" > /dev/null

# Interleave ON/OFF repetitions so thermal / frequency drift hits both
# sides symmetrically; keep the best (minimum) ns_per_block per shape.
for rep in $(seq 1 "$REPS"); do
  "$BUILD_DIR/bench/perf_kernels" --json "$OUT_DIR/on.$rep.json" \
    --trials "$TRIALS" > /dev/null
  "$OFF_DIR/bench/perf_kernels" --json "$OUT_DIR/off.$rep.json" \
    --trials "$TRIALS" > /dev/null
done

python3 - "$OUT_DIR" "$REPS" "$PCT" "$MAX_PCT" <<'EOF'
import json, math, sys

out_dir, reps = sys.argv[1], int(sys.argv[2])
pct, max_pct = float(sys.argv[3]), float(sys.argv[4])

def best(prefix, first):
    shapes = {}
    for rep in range(first, reps + 1):
        d = json.load(open(f"{out_dir}/{prefix}.{rep}.json"))
        for r in d["records"]:
            p = r["params"]
            if p.get("path") != "workspace":
                continue
            key = (p["b"], p["mt"], p["mr"])
            ns = r["metrics"]["ns_per_block"]
            shapes[key] = min(shapes.get(key, ns), ns)
            assert r["metrics"]["allocs_per_block"] == 0, \
                f"{prefix} build allocates per block: {key}"
    return shapes

on = best("on", 1)
off = best("off", 0)
assert on.keys() == off.keys() and on, "shape sets differ"
fail = False
log_sum = 0.0
for key in sorted(on):
    ratio = on[key] / off[key]
    log_sum += math.log(ratio)
    delta = (ratio - 1.0) * 100.0
    status = "ok" if delta <= max_pct else "FAIL"
    if delta > max_pct:
        fail = True
    print(f"  {status:4s} shape b{key[0]} {key[1]}x{key[2]}: "
          f"obs-on {on[key]:.1f} ns/block, obs-off {off[key]:.1f} "
          f"({delta:+.2f}%, cap {max_pct:.2f}%)")
geo = (math.exp(log_sum / len(on)) - 1.0) * 100.0
status = "ok" if geo <= pct else "FAIL"
if geo > pct:
    fail = True
print(f"  {status:4s} cross-shape geomean: {geo:+.2f}% "
      f"(budget {pct:.2f}%)")
if fail:
    sys.exit("obs overhead gate: disabled-obs slowdown exceeds budget")
print("obs overhead gate: within budget")
EOF
