#!/usr/bin/env bash
# Static-analysis gate: clang-tidy with the bugprone-* and performance-*
# check groups over the library sources, using the compile commands from
# a dedicated configure (compile_commands.json).
#
# The tool is optional tooling, not a build dependency: when clang-tidy
# is not installed the gate reports SKIPPED and exits 0, so ci.sh keeps
# working on minimal containers.  Findings in the checked groups are
# errors (exit 1).
#
# Usage: scripts/check_clang_tidy.sh [build-dir]   (default: build-tidy)
#        CLANG_TIDY=<binary> to select a specific version.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tidy}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" > /dev/null 2>&1; then
  echo "clang-tidy gate: SKIPPED ($TIDY not installed in this environment)"
  exit 0
fi

echo "== clang-tidy: $("$TIDY" --version | head -n 1) =="

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DCOMIMO_BUILD_BENCH=OFF \
  -DCOMIMO_BUILD_EXAMPLES=OFF > /dev/null

CHECKS='-*,bugprone-*,performance-*'
mapfile -t SOURCES < <(find src/comimo -name '*.cpp' | sort)

fail=0
for src in "${SOURCES[@]}"; do
  if ! "$TIDY" -p "$BUILD_DIR" \
      --checks="$CHECKS" \
      --warnings-as-errors="$CHECKS" \
      --quiet "$src" 2> /dev/null; then
    echo "TIDY FAIL $src"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "clang-tidy gate: FAILED" >&2
  exit 1
fi
echo "clang-tidy gate: all ${#SOURCES[@]} sources clean"
