#!/usr/bin/env sh
# Full reproduction: build, test, and regenerate every table/figure.
# Usage: scripts/reproduce.sh [build-dir]
set -eu
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -G Ninja
cmake --build "$BUILD_DIR"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "== reproduction harness =="
for b in "$BUILD_DIR"/bench/*; do
  echo "---- $b ----"
  "$b"
done

echo "== examples =="
for e in "$BUILD_DIR"/examples/example_*; do
  echo "---- $e ----"
  "$e"
done
