#!/usr/bin/env bash
# The one-command gate: tier-1 build + tests, the netscale large-n leg
# (COMIMO_NETSCALE=1 ctest -L netscale), the bench JSON contract,
# clang-tidy (bugprone-* + performance-*; skipped when the tool is not
# installed), the obs kill-switch/overhead gate, the COMIMO_SIMD=OFF
# scalar-pinned leg, the workspace + simd batch link-kernel tests under
# ASan + UBSan, and (optionally) the full sanitizer suite.
#
# Usage: scripts/ci.sh [build-dir]          (default: build)
#        CI_SANITIZE=1 scripts/ci.sh        also runs check_sanitized.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== tier 1: configure + build =="
cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== tier 1: tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== netscale: large-n grid engine (opt-in label) =="
COMIMO_NETSCALE=1 ctest --test-dir "$BUILD_DIR" -L netscale \
  --output-on-failure

echo "== bench JSON contract =="
scripts/check_bench_json.sh "$BUILD_DIR"

echo "== service smoke: daemon up, load generator, clean shutdown =="
# The example runs a full demo session (hello, cached ebbar lookup, a
# forked sharded job, churn) against an in-process daemon and must shut
# down cleanly; the load generator then drives the three bench phases
# (mixed load, backpressure rejections, byte-identical replay) shrunk.
"$BUILD_DIR/examples/example_service_daemon" > /dev/null
"$BUILD_DIR/bench/service_load" --trials 6 > /dev/null

echo "== clang-tidy (bugprone-* + performance-*) =="
scripts/check_clang_tidy.sh

echo "== obs kill switch + disabled-overhead budget =="
scripts/check_obs_overhead.sh "$BUILD_DIR"

echo "== simd kill switch: COMIMO_SIMD=OFF leg =="
NOSIMD_DIR="${BUILD_DIR}-nosimd"
cmake -B "$NOSIMD_DIR" -S . \
  -DCOMIMO_SIMD=OFF \
  -DCOMIMO_BUILD_BENCH=OFF \
  -DCOMIMO_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$NOSIMD_DIR" -j "$(nproc)"
# The scalar-pinned build must hold the same golden tables, the batch
# layer must degenerate cleanly to width 1, and the workspace and
# waveform paths must be untouched.
ctest --test-dir "$NOSIMD_DIR" --output-on-failure \
  -R 'Golden|Simd|AlignedAlloc|LinkWorkspace|HopBatch|Waveform|Galois|Rlnc|SpatialIndex|SpatialGrid|NetworkFuzz|AdaptiveMc|ImportanceSampling' \
  -j "$(nproc)"

echo "== workspace, simd batch + coding kernels under ASan + UBSan =="
ASAN_DIR="${BUILD_DIR}-asan"
cmake -B "$ASAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOMIMO_SANITIZE=ON \
  -DCOMIMO_BUILD_BENCH=OFF \
  -DCOMIMO_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$ASAN_DIR" -j "$(nproc)"
# The Rlnc leg includes the adversarial decoder fuzz (truncated,
# duplicated, reordered, linearly-dependent packets) — OOB or UB in the
# Gaussian elimination shows up here, not in release runs.
# SpatialIndex/SpatialGrid/NetworkFuzz exercise the grid walk, the
# tombstone removal and the incremental re-clustering splice — the
# pointer-heavy paths where OOB would hide.  Service/ServiceWire drive
# the daemon (sessions, backpressure, vanished clients) and ForkSafety
# the quiesce-and-fork shard driver — the lifetime bugs this sweep
# exists for surface as ASan/UBSan reports here.  AdaptiveMc and
# ImportanceSampling cover the checkpoint driver's accumulator folding
# and the tilted-noise weight path.
ctest --test-dir "$ASAN_DIR" --output-on-failure \
  -R 'LinkWorkspace|SimdBatch|HopBatch|AlignedAlloc|Galois|Rlnc|GilbertElliott|SpatialIndex|SpatialGrid|NetworkFuzz|Service|ServiceWire|ForkSafety|AdaptiveMc|ImportanceSampling' \
  -j "$(nproc)"

if [ "${CI_SANITIZE:-0}" = "1" ]; then
  echo "== sanitizers: full suite =="
  scripts/check_sanitized.sh "$ASAN_DIR"
fi

echo "== ci.sh: all gates passed =="
