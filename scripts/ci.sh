#!/usr/bin/env bash
# The one-command gate: tier-1 build + tests, the bench JSON contract,
# and (optionally) the sanitizer suite.
#
# Usage: scripts/ci.sh [build-dir]          (default: build)
#        CI_SANITIZE=1 scripts/ci.sh        also runs check_sanitized.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== tier 1: configure + build =="
cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== tier 1: tests =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== bench JSON contract =="
scripts/check_bench_json.sh "$BUILD_DIR"

if [ "${CI_SANITIZE:-0}" = "1" ]; then
  echo "== sanitizers =="
  scripts/check_sanitized.sh
fi

echo "== ci.sh: all gates passed =="
