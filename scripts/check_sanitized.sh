#!/usr/bin/env bash
# Configure, build, and run the full test suite under ASan + UBSan.
# Usage: scripts/check_sanitized.sh [build-dir]  (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCOMIMO_SANITIZE=ON \
  -DCOMIMO_BUILD_BENCH=OFF \
  -DCOMIMO_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"
