#include "comimo/resilience/fault_plan.h"

#include <algorithm>
#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/resilience/counter_draw.h"

namespace comimo {

using detail::hashed_uniform;

void validate(const FaultConfig& config) {
  COMIMO_CHECK(config.node_death_fraction >= 0.0 &&
                   config.node_death_fraction < 1.0,
               "node death fraction must be in [0, 1)");
  COMIMO_CHECK(config.death_window_lo >= 0.0 &&
                   config.death_window_hi <= 1.0 &&
                   config.death_window_lo <= config.death_window_hi,
               "death window must satisfy 0 <= lo <= hi <= 1");
  COMIMO_CHECK(config.relay_dropout_prob >= 0.0 &&
                   config.relay_dropout_prob <= 1.0,
               "relay dropout probability must be in [0, 1]");
  COMIMO_CHECK(config.slot_erasure_prob >= 0.0 &&
                   config.slot_erasure_prob < 1.0,
               "slot erasure probability must be in [0, 1)");
  COMIMO_CHECK(config.repair_time_s >= 0.0, "negative repair time");
  if (config.burst.enabled) validate(config.burst);
  if (config.pu_preemption) {
    COMIMO_CHECK(config.pu.mean_busy_s > 0.0 && config.pu.mean_idle_s > 0.0,
                 "PU holding times must be positive");
    COMIMO_CHECK(config.pu_trace_duration_s > 0.0,
                 "PU trace duration must be positive");
  }
}

FaultPlan::FaultPlan(FaultConfig config, std::vector<NodeDeath> deaths,
                     std::vector<PuInterval> pu_trace)
    : config_(std::move(config)),
      deaths_(std::move(deaths)),
      pu_trace_(std::move(pu_trace)) {
  if (config_.enabled && config_.burst.enabled) {
    // Mix the plan seed into the channel seed so per-trial reseeding
    // (the ensemble overrides config.seed) varies the burst trace too.
    GilbertElliottConfig burst = config_.burst;
    burst.seed = burst.seed ^ (config_.seed * 0x9E3779B97F4A7C15ULL);
    burst_ = GilbertElliottChannel(burst);
  }
  std::sort(deaths_.begin(), deaths_.end(),
            [](const NodeDeath& a, const NodeDeath& b) {
              return a.round != b.round ? a.round < b.round
                                        : a.node < b.node;
            });
}

std::vector<NodeDeath> FaultPlan::deaths_at(std::size_t round) const {
  std::vector<NodeDeath> out;
  for (const auto& d : deaths_) {
    if (d.round == round) out.push_back(d);
  }
  return out;
}

bool FaultPlan::slot_erased(std::size_t round, std::size_t hop,
                            unsigned attempt) const {
  if (!config_.enabled || config_.slot_erasure_prob <= 0.0) return false;
  return hashed_uniform(config_.seed, 0xE2A5Eu, round, hop, attempt) <
         config_.slot_erasure_prob;
}

bool FaultPlan::relay_dropout(std::size_t round, std::size_t hop) const {
  if (!config_.enabled || config_.relay_dropout_prob <= 0.0) return false;
  return hashed_uniform(config_.seed, 0xD209u, round, hop, 0) <
         config_.relay_dropout_prob;
}

bool FaultPlan::burst_erased(std::uint64_t slot) const noexcept {
  if (!config_.enabled) return false;
  return burst_.erased(slot);
}

double FaultPlan::pu_wait_s(double t_s) const {
  if (!config_.enabled || !config_.pu_preemption || pu_trace_.empty()) {
    return 0.0;
  }
  const double span = pu_trace_.back().end_s;
  double local = std::fmod(t_s, span);
  if (local < 0.0) local = 0.0;
  if (!trace_busy_at(pu_trace_, local)) return 0.0;
  const double idle_at = trace_next_idle(pu_trace_, local);
  // Busy through the end of the trace: resume at the first idle point
  // of the wrapped trace (the trace always contains one — duty < 1).
  if (idle_at >= span) {
    return (span - local) + trace_next_idle(pu_trace_, 0.0);
  }
  return idle_at - local;
}

FaultInjector::FaultInjector(FaultConfig config) : config_(std::move(config)) {
  validate(config_);
}

FaultPlan FaultInjector::make_plan(const CoMimoNet& net,
                                   std::size_t horizon_rounds) const {
  COMIMO_CHECK(horizon_rounds >= 1, "plan needs at least one round");
  std::vector<NodeDeath> deaths;
  if (config_.enabled && config_.node_death_fraction > 0.0) {
    const std::size_t n = net.nodes().size();
    const auto victims_wanted = static_cast<std::size_t>(
        std::floor(config_.node_death_fraction * static_cast<double>(n)));
    Rng rng(config_.seed, 0xDEAD);
    // Partial Fisher–Yates over node indices: victims without replacement.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    for (std::size_t i = 0; i < victims_wanted && i + 1 < n; ++i) {
      const std::size_t j = i + rng.uniform_int(n - i);
      std::swap(order[i], order[j]);
    }
    const double h = static_cast<double>(horizon_rounds);
    const auto lo = static_cast<std::size_t>(
        std::max(1.0, std::floor(config_.death_window_lo * h)));
    const auto hi = static_cast<std::size_t>(
        std::max<double>(lo, std::floor(config_.death_window_hi * h)));
    for (std::size_t i = 0; i < victims_wanted && i < n; ++i) {
      NodeDeath d;
      d.node = net.nodes()[order[i]].id;
      d.round = lo + rng.uniform_int(hi - lo + 1);
      d.cause = rng.bernoulli(0.5) ? NodeDeath::Cause::kCrash
                                   : NodeDeath::Cause::kBatteryExhaustion;
      deaths.push_back(d);
    }
  }
  std::vector<PuInterval> trace;
  if (config_.enabled && config_.pu_preemption) {
    trace = generate_pu_trace(config_.pu, config_.pu_trace_duration_s,
                              config_.seed ^ 0x9uL);
  }
  return FaultPlan(config_, std::move(deaths), std::move(trace));
}

}  // namespace comimo
