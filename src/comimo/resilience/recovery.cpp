#include "comimo/resilience/recovery.h"

#include "comimo/common/error.h"

namespace comimo {

std::vector<SuNode> surviving_nodes(
    const CoMimoNet& net, const std::vector<std::uint8_t>& alive_by_id) {
  std::vector<SuNode> out;
  out.reserve(net.nodes().size());
  for (const auto& n : net.nodes()) {
    if (n.id < alive_by_id.size() && alive_by_id[n.id]) out.push_back(n);
  }
  return out;
}

CoMimoNet surviving_subnet(const CoMimoNet& net,
                           const std::vector<std::uint8_t>& alive_by_id) {
  auto nodes = surviving_nodes(net, alive_by_id);
  if (nodes.empty()) {
    throw InfeasibleError("no surviving nodes to rebuild the network from");
  }
  return CoMimoNet(std::move(nodes), net.config());
}

}  // namespace comimo
