// Counter-based (stateless) uniform draws for fault machinery.
//
// Replayable fault injection needs draws that depend only on WHERE a
// fault could happen — (round, hop, attempt), or a slot ordinal — and
// never on visit order or mutable RNG state.  This helper folds an
// index tuple through SplitMix64; FaultPlan and GilbertElliottChannel
// share it so their draws stay mutually independent (distinct tags) and
// bit-for-bit reproducible.
#pragma once

#include <cstdint>

#include "comimo/numeric/rng.h"

namespace comimo::detail {

/// Uniform in [0, 1), a pure function of (seed, tag, a, b, c).
inline double hashed_uniform(std::uint64_t seed, std::uint64_t tag,
                             std::uint64_t a, std::uint64_t b,
                             std::uint64_t c) {
  std::uint64_t state = seed ^ (tag * 0x9E3779B97F4A7C15ULL);
  (void)splitmix64(state);
  state ^= a * 0xBF58476D1CE4E5B9ULL;
  (void)splitmix64(state);
  state ^= b * 0x94D049BB133111EBULL;
  (void)splitmix64(state);
  state ^= c * 0xD6E8FEB86659FD93ULL;
  const std::uint64_t bits = splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace comimo::detail
