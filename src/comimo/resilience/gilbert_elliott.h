// Gilbert–Elliott two-state burst-loss channel.
//
// The FaultPlan's slot_erasure_prob models independent (Bernoulli)
// losses, which flatters ARQ: every retransmission gets a fresh coin.
// Real CR links lose packets in bursts — deep fades and PU bursts put
// the channel in a "bad" dwell where consecutive attempts fail
// together, exactly the regime where retransmission dialogues stall and
// rateless coding earns its keep.  The classic Gilbert–Elliott model
// captures this with a two-state Markov chain (Good/Bad) and a loss
// probability per state.
//
// Determinism: the Markov state sequence is precomputed as a trace
// (one byte per slot, like the PU busy/idle trace) from a seeded Rng,
// and the per-slot loss coin is a counter-based hash of the slot
// ordinal — so any traversal order, worker count, or transport choice
// replays the identical loss pattern.  Composable with FaultPlan: the
// i.i.d. erasure draw and the burst draw are independent streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace comimo {

struct GilbertElliottConfig {
  bool enabled = false;  ///< off: channel never erases anything

  /// Markov transition probabilities per slot.  Mean bad-dwell length
  /// is 1/p_bad_to_good slots; stationary bad-state occupancy is
  /// p_good_to_bad / (p_good_to_bad + p_bad_to_good).
  double p_good_to_bad = 0.02;
  double p_bad_to_good = 0.25;

  /// Per-slot loss probability inside each state.
  double loss_good = 0.01;
  double loss_bad = 0.75;

  /// Precomputed state-trace length; slot ordinals wrap over it.
  std::size_t trace_slots = 1u << 16;

  std::uint64_t seed = 1;
};

/// Throws InvalidArgument on malformed knobs.
void validate(const GilbertElliottConfig& config);

/// Materialized channel: a seeded state trace plus counter-hashed loss
/// coins.  Cheap to copy-construct into per-trial fault plans.
class GilbertElliottChannel {
 public:
  GilbertElliottChannel() = default;  ///< disabled channel
  explicit GilbertElliottChannel(GilbertElliottConfig config);

  [[nodiscard]] const GilbertElliottConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

  /// Is the chain in the Bad state at slot ordinal `slot` (wrapped)?
  [[nodiscard]] bool bad(std::uint64_t slot) const noexcept;

  /// Counter-based draw: is the transmission occupying slot ordinal
  /// `slot` erased?  Always false when disabled (and consumes nothing).
  [[nodiscard]] bool erased(std::uint64_t slot) const noexcept;

  /// Long-run fraction of slots spent in the Bad state.
  [[nodiscard]] double stationary_bad() const noexcept;

  /// Long-run marginal loss probability (mixes both states).
  [[nodiscard]] double expected_loss() const noexcept;

 private:
  GilbertElliottConfig config_{};
  std::vector<std::uint8_t> trace_;  ///< 1 = Bad, indexed by slot % size
};

}  // namespace comimo
