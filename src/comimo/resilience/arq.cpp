#include "comimo/resilience/arq.h"

#include <algorithm>
#include <cmath>

#include "comimo/common/error.h"

namespace comimo {

void validate(const ArqConfig& config) {
  COMIMO_CHECK(config.max_attempts >= 1, "ARQ needs at least one attempt");
  COMIMO_CHECK(config.ack_timeout_s >= 0.0, "negative ACK timeout");
  COMIMO_CHECK(config.base_backoff_s >= 0.0, "negative base backoff");
  COMIMO_CHECK(config.backoff_factor >= 1.0,
               "backoff factor must be >= 1 (exponential growth)");
  COMIMO_CHECK(config.max_backoff_s >= config.base_backoff_s,
               "backoff ceiling below the base backoff");
}

double arq_backoff_s(const ArqConfig& config, unsigned attempt, Rng& rng) {
  validate(config);
  const double nominal =
      config.base_backoff_s *
      std::pow(config.backoff_factor, static_cast<double>(attempt));
  const double truncated = std::min(nominal, config.max_backoff_s);
  // Dither in [0.5, 1): keeps the exponential spacing while breaking
  // retry synchronization between contending links.
  return truncated * rng.uniform(0.5, 1.0);
}

ArqOutcome run_arq(const ArqConfig& config,
                   const std::function<bool(unsigned)>& attempt_ok,
                   Rng& rng) {
  validate(config);
  COMIMO_CHECK(static_cast<bool>(attempt_ok), "null attempt callback");
  ArqOutcome out;
  for (unsigned k = 0; k < config.max_attempts; ++k) {
    ++out.attempts;
    if (attempt_ok(k)) {
      out.delivered = true;
      return out;
    }
    out.wait_s += config.ack_timeout_s;
    if (k + 1 < config.max_attempts) {
      out.wait_s += arq_backoff_s(config, k, rng);
    }
  }
  return out;
}

}  // namespace comimo
