#include "comimo/resilience/arq.h"

#include <algorithm>
#include <cmath>

#include "comimo/common/error.h"
#include "comimo/obs/metrics.h"

namespace comimo {

namespace {

struct ArqObs {
  obs::Counter attempts = obs::MetricRegistry::global().counter("arq.attempts");
  obs::Counter retransmissions =
      obs::MetricRegistry::global().counter("arq.retransmissions");
  obs::Counter deliveries =
      obs::MetricRegistry::global().counter("arq.deliveries");
  obs::Counter failures = obs::MetricRegistry::global().counter("arq.failures");
  obs::Counter giveup = obs::MetricRegistry::global().counter("arq.giveup");
  obs::Histogram backoff_s =
      obs::MetricRegistry::global().histogram("arq.backoff_s");
};

ArqObs& arq_obs() {
  static ArqObs o;
  return o;
}

}  // namespace

void validate(const ArqConfig& config) {
  COMIMO_CHECK(config.max_attempts >= 1, "ARQ needs at least one attempt");
  COMIMO_CHECK(config.ack_timeout_s >= 0.0, "negative ACK timeout");
  COMIMO_CHECK(config.base_backoff_s >= 0.0, "negative base backoff");
  COMIMO_CHECK(config.backoff_factor >= 1.0,
               "backoff factor must be >= 1 (exponential growth)");
  COMIMO_CHECK(config.max_backoff_s >= config.base_backoff_s,
               "backoff ceiling below the base backoff");
}

double arq_backoff_unchecked_s(const ArqConfig& config, unsigned attempt,
                               Rng& rng) {
  const double nominal =
      config.base_backoff_s *
      std::pow(config.backoff_factor, static_cast<double>(attempt));
  const double truncated = std::min(nominal, config.max_backoff_s);
  // Dither in [0.5, 1): keeps the exponential spacing while breaking
  // retry synchronization between contending links.
  const double backoff = truncated * rng.uniform(0.5, 1.0);
  arq_obs().backoff_s.observe(backoff);
  return backoff;
}

double arq_backoff_s(const ArqConfig& config, unsigned attempt, Rng& rng) {
  validate(config);
  return arq_backoff_unchecked_s(config, attempt, rng);
}

ArqOutcome run_arq(const ArqConfig& config,
                   const std::function<bool(unsigned)>& attempt_ok,
                   Rng& rng) {
  validate(config);
  COMIMO_CHECK(static_cast<bool>(attempt_ok), "null attempt callback");
  ArqObs& o = arq_obs();
  ArqOutcome out;
  for (unsigned k = 0; k < config.max_attempts; ++k) {
    ++out.attempts;
    o.attempts.add();
    if (k > 0) o.retransmissions.add();
    if (attempt_ok(k)) {
      out.delivered = true;
      o.deliveries.add();
      return out;
    }
    out.wait_s += config.ack_timeout_s;
    if (k + 1 < config.max_attempts) {
      // The config was validated on entry; the per-draw helper must not
      // re-validate in the retry loop.
      out.wait_s += arq_backoff_unchecked_s(config, k, rng);
    }
  }
  out.exhausted = true;
  o.failures.add();
  o.giveup.add();
  return out;
}

}  // namespace comimo
