// RLNC transport: rateless coded delivery over a multi-hop route.
//
// A peer of the ARQ protocol in the resilience layer.  Where ARQ
// retransmits the SAME packet until it lands (one retry dialogue per
// loss), the RLNC transport cuts the round's payload into a generation
// of k packets, streams coded combinations across each hop, and lets
// relays RECODE — forward fresh combinations of whatever innovation
// they hold — without decoding.  Losses cost one extra coded packet
// instead of a timeout + backoff dialogue, which is decisive under
// bursty (Gilbert–Elliott) erasures where consecutive ARQ retries fail
// together.
//
// The module is policy-free about physics: the caller supplies three
// callbacks — `erased` (does transmission j on hop h get through?),
// `charge_packet` (pay airtime/energy for one coded packet), and
// `charge_feedback` (pay one receiver-feedback round trip) — so the
// simulator keeps exclusive ownership of time, batteries, and fault
// draws.  Everything here is deterministic in the caller's Rng.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "comimo/coding/rlnc.h"

namespace comimo {

class Rng;

struct RlncTransportConfig {
  bool enabled = false;  ///< off: the simulator keeps its ARQ path

  coding::RlncConfig code{};  ///< generation shape and field

  /// Extra coded packets a hop may spend beyond its initial burst
  /// before the route gives up (the analogue of ARQ max_attempts).
  std::size_t max_overhead_packets = 64;

  /// Energy charged to a relay head per recoded packet (the GF
  /// recombination work, on top of the radio cost the caller charges).
  double recode_energy_j = 2e-5;
};

/// Throws InvalidArgument on malformed knobs.
void validate(const RlncTransportConfig& config);

struct RlncRouteResult {
  bool delivered = false;       ///< sink reached full rank and verified
  std::size_t packets_sent = 0; ///< every coded transmission, all hops
  std::size_t overhead_packets = 0;  ///< beyond the initial k per hop
  std::size_t recoded_packets = 0;   ///< relay-recoded transmissions
  std::size_t feedback_rounds = 0;   ///< receiver rank-report dialogues
  std::size_t final_rank = 0;        ///< sink decoder rank at the end
  std::size_t decodable_packets = 0; ///< sink source packets recovered
};

/// Is transmission `tx_index` (0-based, per hop) on hop `hop` erased?
using RlncErasureFn = std::function<bool(std::size_t hop,
                                         std::size_t tx_index)>;
/// Pay the airtime/energy for one coded packet on `hop`.  `recoded`
/// marks relay-recombined packets (GF work on the relay head);
/// `overhead` marks sends beyond the hop's initial burst (the recovery
/// share, the analogue of an ARQ retransmission).
using RlncPacketCostFn =
    std::function<void(std::size_t hop, bool recoded, bool overhead)>;
/// Pay one feedback round trip on `hop`.
using RlncFeedbackCostFn = std::function<void(std::size_t hop)>;

/// Runs one generation across `num_hops` sequential hops: hop 0 is the
/// systematic source (payload bytes drawn from Rng(payload_seed)),
/// hops 1..n-1 are store-and-recode relays, and the far end of the last
/// hop decodes.  Each hop sends an initial burst equal to its sender's
/// rank, then feedback rounds top up the receiver's rank deficit until
/// it matches the sender's or the overhead budget runs dry.  Delivery
/// additionally requires the decoded bytes to equal the source bytes
/// (end-to-end verification through the GF kernels).
[[nodiscard]] RlncRouteResult run_rlnc_route(
    const RlncTransportConfig& config, std::size_t num_hops,
    std::uint64_t payload_seed, Rng& coding_rng, const RlncErasureFn& erased,
    const RlncPacketCostFn& charge_packet,
    const RlncFeedbackCostFn& charge_feedback);

}  // namespace comimo
