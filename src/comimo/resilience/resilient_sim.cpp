#include "comimo/resilience/resilient_sim.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/net/hop_scheduler.h"
#include "comimo/numeric/rng.h"
#include "comimo/obs/metrics.h"
#include "comimo/phy/stbc.h"
#include "comimo/resilience/recovery.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {

namespace {

// Resilience-layer observability.  Every quantity below is a pure
// function of the simulation seeds, and simulate_with_faults runs
// either serially or directly inside a top-level run_trials trial, so
// the deterministic domain is correct for all of them (see the
// observation discipline in obs/metrics.h).
struct ResObs {
  obs::Counter packets =
      obs::MetricRegistry::global().counter("resilience.packets");
  obs::Counter retransmissions =
      obs::MetricRegistry::global().counter("resilience.retransmissions");
  obs::Counter pu_preemptions =
      obs::MetricRegistry::global().counter("resilience.pu_preemptions");
  obs::Counter arq_failures =
      obs::MetricRegistry::global().counter("resilience.arq_failures");
  obs::Counter arq_giveup = obs::MetricRegistry::global().counter("arq.giveup");
  obs::Counter stbc_degradations =
      obs::MetricRegistry::global().counter("resilience.stbc_degradations");
  obs::Histogram pu_wait_s =
      obs::MetricRegistry::global().histogram("resilience.pu_wait_s");
  obs::Histogram backoff_wait_s =
      obs::MetricRegistry::global().histogram("resilience.backoff_wait_s");
  obs::Histogram hop_ber =
      obs::MetricRegistry::global().histogram("resilience.hop_ber");
  obs::Histogram generation_latency_s =
      obs::MetricRegistry::global().histogram("coding.generation_latency_s");
};

ResObs& res_obs() {
  static ResObs o;
  return o;
}

void finalize(ResilienceReport& r) {
  r.delivery_ratio =
      r.packets_offered
          ? static_cast<double>(r.packets_delivered) /
                static_cast<double>(r.packets_offered)
          : 0.0;
  r.goodput_bps = r.total_time_s > 0.0 ? r.delivered_bits / r.total_time_s
                                       : 0.0;
  r.waveform_hop_ber =
      r.waveform_bits ? static_cast<double>(r.waveform_bit_errors) /
                            static_cast<double>(r.waveform_bits)
                      : 0.0;
}

}  // namespace

ResilienceReport simulate_with_faults(const CoMimoNet& net,
                                      const SystemParams& params,
                                      const ResilienceConfig& config) {
  COMIMO_CHECK(config.bits_per_packet > 0.0, "bits per packet must be > 0");
  COMIMO_CHECK(config.rounds >= 1, "need at least one round");
  validate(config.faults);
  validate(config.arq);
  if (config.rlnc.enabled) validate(config.rlnc);

  CoMimoNet world = net;  // degraded copy; the caller's net is untouched
  NodeId max_id = 0;
  for (const auto& n : net.nodes()) max_id = std::max(max_id, n.id);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(max_id) + 1, 0);
  for (const auto& n : net.nodes()) alive[n.id] = 1;
  std::size_t alive_count = net.nodes().size();

  const FaultInjector injector(config.faults);
  const FaultPlan plan = injector.make_plan(net, config.rounds);
  const UnderlayCooperativeHop planner(params);
  const HopScheduler scheduler;
  Rng traffic(config.traffic_seed, 0x7AFF1C);
  Rng arq_rng(config.faults.seed, 0xA49);
  // Coefficient draws for the RLNC transport; untouched (no stream
  // drift) when rlnc.enabled == false.
  Rng rlnc_rng(config.faults.seed, 0xC0DE);

  ResilienceReport report;
  const double bits = config.bits_per_packet;
  double t = 0.0;
  bool topology_dirty = false;
  std::size_t next_death = 0;
  // Global transmission ordinal feeding the Gilbert–Elliott burst
  // channel: every long-haul send occupies the next slot, so burst
  // dwells straddle retransmissions, hops, and rounds alike.
  std::uint64_t tx_slot = 0;

  // Observational waveform probe: each distinct hop operating point is
  // measured once through the batched link kernel and the measurement
  // reused on every later hop that lands on the same point.  The probe
  // never touches the traffic/fault RNG streams or the timing and
  // energy ledgers, so legacy report fields are bit-identical whether
  // the probe runs or not.  (run_trials inside measure_plan_ber
  // degrades to serial when this simulation itself runs on a pool
  // worker, so nesting is safe.)  measure_plan_ber rides
  // measure_waveform_ber, so when a vector tier is pinned the probe's
  // blocks run W lanes at a time through the hop-batch workspace
  // (phy/hop_batch.h) — per-lane bit-identical, so the cached
  // measurements don't depend on the tier (or on the shard count, were
  // the probe ever sharded; it runs single-process here).
  std::map<std::tuple<int, unsigned, unsigned, double>, PlanBerMeasurement>
      waveform_cache;
  const auto probe_waveform = [&](const UnderlayHopPlan& hop_plan) {
    if (config.waveform_blocks == 0) return;
    const auto key = std::make_tuple(hop_plan.b, hop_plan.config.mt,
                                     hop_plan.config.mr, hop_plan.ebar);
    auto it = waveform_cache.find(key);
    if (it == waveform_cache.end()) {
      const std::uint64_t probe_seed =
          config.waveform_seed + waveform_cache.size() + 1;
      it = waveform_cache
               .emplace(key, measure_plan_ber(hop_plan,
                                              config.waveform_blocks,
                                              probe_seed, params))
               .first;
    }
    ++report.waveform_hops;
    report.waveform_bits += it->second.bits;
    report.waveform_bit_errors += it->second.bit_errors;
    if (it->second.bits > 0) {
      res_obs().hop_ber.observe(static_cast<double>(it->second.bit_errors) /
                                static_cast<double>(it->second.bits));
    }
  };

  // Marks `id` dead, recording whether a cluster head just failed.
  const auto kill = [&](NodeId id) {
    if (!alive[id]) return;
    alive[id] = 0;
    --alive_count;
    ++report.node_deaths;
    if (world.clusters()[world.cluster_of(id)].head == id) {
      ++report.head_failovers;
    }
    topology_dirty = true;
  };

  for (std::size_t round = 1; round <= config.rounds; ++round) {
    // Scheduled faults land first: crashes disappear outright, battery
    // exhaustion zeroes the ledger before dying (same repair path).
    while (next_death < plan.deaths().size() &&
           plan.deaths()[next_death].round <= round) {
      const NodeDeath& d = plan.deaths()[next_death++];
      if (d.node < alive.size() && alive[d.node]) {
        if (d.cause == NodeDeath::Cause::kBatteryExhaustion) {
          world.mutable_node(d.node).battery_j = 0.0;
        }
        kill(d.node);
      }
    }
    if (alive_count < 2) break;  // nothing left to route between

    // Self-healing: rebuild clusters, heads, and the spanning tree from
    // the survivors, paying the control-plane repair cost.
    if (topology_dirty) {
      world = surviving_subnet(world, alive);
      ++report.route_repairs;
      report.repair_time_s += config.faults.repair_time_s;
      t += config.faults.repair_time_s;
      topology_dirty = false;
    }

    const CooperativeRouter router(world, params, config.ber,
                                   config.bandwidth_hz, config.mode);
    const std::size_t n = world.nodes().size();
    const NodeId src = world.nodes()[traffic.uniform_int(n)].id;
    NodeId dst = src;
    while (dst == src) dst = world.nodes()[traffic.uniform_int(n)].id;

    ++report.packets_offered;
    res_obs().packets.add();
    const double t_offer = t;
    if (!router.backbone().connected(world.cluster_of(src),
                                     world.cluster_of(dst))) {
      ++report.routing_drops;
    } else {
      bool delivered = true;
      try {
        const RouteReport route = router.route(src, dst);

        // Per-hop preparation shared by both transports: clamp to the
        // supported STBC designs, take one ladder step down if this hop
        // loses a cooperator mid-transmission, re-plan, probe, schedule.
        struct HopCtx {
          RouteHop hop;
          HopSchedule sched;
          double energy_j = 0.0;
        };
        const auto prep_hop = [&](std::size_t h) {
          RouteHop hop = route.hops[h];
          unsigned mt = static_cast<unsigned>(
              stbc_supported_tx(hop.plan.config.mt));
          unsigned mr = static_cast<unsigned>(
              stbc_supported_tx(hop.plan.config.mr));
          if (plan.relay_dropout(round, h) && mt > 1) {
            mt = static_cast<unsigned>(stbc_degraded_tx(mt));
            ++report.stbc_degradations;
            res_obs().stbc_degradations.add();
          }
          hop.plan = planner.replan_shrunk(hop.plan, mt, mr);
          probe_waveform(hop.plan);
          const auto tx = hop_participants(world.clusters()[hop.from],
                                           hop.plan.config.mt);
          const auto rx = hop_participants(world.clusters()[hop.to],
                                           hop.plan.config.mr);
          HopCtx ctx;
          ctx.sched = scheduler.schedule(hop.plan, tx, rx, bits);
          ctx.energy_j = hop.plan.total_energy() * bits;
          ctx.hop = std::move(hop);
          return ctx;
        };

        // Interweave etiquette: vacate while the PU holds the channel,
        // resume when its busy period ends.
        const auto pay_pu_wait = [&]() {
          const double wait = plan.pu_wait_s(t);
          if (wait > 0.0) {
            ++report.pu_preemptions;
            report.pu_wait_s += wait;
            t += wait;
            res_obs().pu_preemptions.add();
            res_obs().pu_wait_s.observe(wait);
          }
        };

        if (config.rlnc.enabled && !route.hops.empty()) {
          // ---- RLNC transport: one generation across the route ------
          // (a zero-hop route — src and dst share a cluster — delivers
          // trivially with no coding, matching the ARQ branch below)
          std::vector<HopCtx> ctxs;
          ctxs.reserve(route.hops.size());
          for (std::size_t h = 0; h < route.hops.size(); ++h) {
            ctxs.push_back(prep_hop(h));
          }
          const auto gen =
              static_cast<double>(config.rlnc.code.generation_size);
          const double pkt_bits = bits / gen;
          const auto erased = [&](std::size_t h, std::size_t txi) {
            // Same counter-based fault streams as the ARQ path, so the
            // two transports face identical loss processes.
            const std::uint64_t slot = tx_slot++;
            return plan.slot_erased(round, h, static_cast<unsigned>(txi)) ||
                   plan.burst_erased(slot);
          };
          const auto charge_packet = [&](std::size_t h, bool recoded,
                                         bool overhead) {
            const HopCtx& c = ctxs[h];
            pay_pu_wait();
            router.apply_hop_drain(world, c.hop, pkt_bits);
            const double pkt_energy = c.energy_j / gen;
            report.energy_spent_j += pkt_energy;
            report.airtime_s += c.sched.makespan_s / gen;
            t += c.sched.makespan_s / gen;
            if (overhead) report.retransmit_energy_j += pkt_energy;
            if (recoded) {
              // The GF recombination work lands on the relay head.
              const NodeId head = world.clusters()[c.hop.from].head;
              world.mutable_node(head).battery_j -=
                  config.rlnc.recode_energy_j;
              report.rlnc_recode_energy_j += config.rlnc.recode_energy_j;
              report.energy_spent_j += config.rlnc.recode_energy_j;
            }
          };
          const auto charge_feedback = [&](std::size_t) {
            report.backoff_wait_s += config.arq.ack_timeout_s;
            t += config.arq.ack_timeout_s;
            res_obs().backoff_wait_s.observe(config.arq.ack_timeout_s);
          };
          const std::uint64_t payload_seed =
              config.traffic_seed ^ (0x9E3779B97F4A7C15ULL * round);
          const RlncRouteResult rr = run_rlnc_route(
              config.rlnc, ctxs.size(), payload_seed, rlnc_rng, erased,
              charge_packet, charge_feedback);
          ++report.rlnc_generations;
          report.rlnc_packets_sent += rr.packets_sent;
          report.rlnc_overhead_packets += rr.overhead_packets;
          report.rlnc_recoded_packets += rr.recoded_packets;
          report.rlnc_feedback_rounds += rr.feedback_rounds;
          if (!rr.delivered) {
            ++report.rlnc_failures;
            report.rlnc_rank_deficit +=
                config.rlnc.code.generation_size - rr.final_rank;
            report.rlnc_partial_bits +=
                static_cast<double>(rr.decodable_packets) * pkt_bits;
            delivered = false;
          } else {
            // Decode latency: offer → the generation's last packet, all
            // waits and feedback rounds included.
            res_obs().generation_latency_s.observe(t - t_offer);
          }
        } else {
          // ---- ARQ transport (legacy fault/RNG streams, unchanged) --
          for (std::size_t h = 0; h < route.hops.size(); ++h) {
            const HopCtx ctx = prep_hop(h);
            bool hop_ok = false;
            for (unsigned k = 0; k < config.arq.max_attempts; ++k) {
              pay_pu_wait();
              router.apply_hop_drain(world, ctx.hop, bits);
              report.energy_spent_j += ctx.energy_j;
              report.airtime_s += ctx.sched.makespan_s;
              t += ctx.sched.makespan_s;
              if (k > 0) {
                ++report.retransmissions;
                report.retransmit_energy_j += ctx.energy_j;
                res_obs().retransmissions.add();
              }
              const std::uint64_t slot = tx_slot++;
              if (!plan.slot_erased(round, h, k) &&
                  !plan.burst_erased(slot)) {
                hop_ok = true;
                break;
              }
              double penalty = config.arq.ack_timeout_s;
              if (k + 1 < config.arq.max_attempts) {
                // config.arq was validated once on entry; the retry loop
                // must not re-validate per draw.
                penalty += arq_backoff_unchecked_s(config.arq, k, arq_rng);
              }
              report.backoff_wait_s += penalty;
              t += penalty;
              res_obs().backoff_wait_s.observe(penalty);
            }
            if (!hop_ok) {
              // The retry budget ran dry mid-route: the link layer gave
              // up, same event run_arq flags with ArqOutcome::exhausted.
              ++report.arq_failures;
              res_obs().arq_failures.add();
              res_obs().arq_giveup.add();
              delivered = false;
              break;
            }
          }
        }
      } catch (const InfeasibleError&) {
        // A degraded hop with no feasible constellation drops the packet
        // but never the simulation.
        ++report.routing_drops;
        delivered = false;
      }
      if (delivered) {
        ++report.packets_delivered;
        report.delivered_bits += bits;
        report.delivered_latency_s += t - t_offer;
      }
    }

    // Batteries the traffic just exhausted die here and heal next round.
    for (const auto& node : world.nodes()) {
      if (alive[node.id] && node.battery_j <= 0.0) kill(node.id);
    }
  }

  report.total_time_s = t;
  finalize(report);
  return report;
}

ResilienceEnsembleReport simulate_with_faults_ensemble(
    const CoMimoNet& net, const SystemParams& params,
    const ResilienceEnsembleConfig& config) {
  COMIMO_CHECK(config.trials >= 1, "need at least one trial");
  McConfig mc;
  mc.seed = config.seed;
  mc.chunk_size = config.chunk_size;
  mc.pool = config.pool;
  const McResult run = run_trials(
      config.trials, mc, [&](std::size_t, Rng& rng, McAccumulator& acc) {
        ResilienceConfig trial_cfg = config.base;
        trial_cfg.traffic_seed = rng.next();
        trial_cfg.faults.seed = rng.next();
        const ResilienceReport r =
            simulate_with_faults(net, params, trial_cfg);
        acc.observe("delivery_ratio", r.delivery_ratio);
        acc.observe("goodput_bps", r.goodput_bps);
        acc.observe("energy_spent_j", r.energy_spent_j);
        acc.observe("retransmit_energy_j", r.retransmit_energy_j);
        acc.observe("latency_s",
                    r.packets_delivered
                        ? r.delivered_latency_s /
                              static_cast<double>(r.packets_delivered)
                        : 0.0);
        acc.count("retransmissions", r.retransmissions);
        acc.count("arq_failures", r.arq_failures);
        acc.count("node_deaths", r.node_deaths);
        acc.count("route_repairs", r.route_repairs);
        acc.count("pu_preemptions", r.pu_preemptions);
        acc.count("rlnc_packets_sent", r.rlnc_packets_sent);
        acc.count("rlnc_overhead_packets", r.rlnc_overhead_packets);
        acc.count("rlnc_failures", r.rlnc_failures);
      });
  ResilienceEnsembleReport report;
  report.delivery_ratio = run.acc.stat("delivery_ratio");
  report.goodput_bps = run.acc.stat("goodput_bps");
  report.energy_spent_j = run.acc.stat("energy_spent_j");
  report.retransmit_energy_j = run.acc.stat("retransmit_energy_j");
  report.latency_s = run.acc.stat("latency_s");
  report.retransmissions =
      static_cast<std::size_t>(run.acc.counter("retransmissions"));
  report.arq_failures =
      static_cast<std::size_t>(run.acc.counter("arq_failures"));
  report.node_deaths =
      static_cast<std::size_t>(run.acc.counter("node_deaths"));
  report.route_repairs =
      static_cast<std::size_t>(run.acc.counter("route_repairs"));
  report.pu_preemptions =
      static_cast<std::size_t>(run.acc.counter("pu_preemptions"));
  report.rlnc_packets_sent =
      static_cast<std::size_t>(run.acc.counter("rlnc_packets_sent"));
  report.rlnc_overhead_packets =
      static_cast<std::size_t>(run.acc.counter("rlnc_overhead_packets"));
  report.rlnc_failures =
      static_cast<std::size_t>(run.acc.counter("rlnc_failures"));
  report.trials = config.trials;
  report.info = run.info;
  return report;
}

}  // namespace comimo
