// Fault-injected traffic simulation with graceful degradation.
//
// Runs the multi-hop cooperative router under a seeded FaultPlan and
// reports how the stack degrades instead of whether it succeeds:
//   * per-slot erasures trigger the ARQ protocol (resilience/arq.h),
//     every retransmission charged through the per-node battery ledger;
//   * mid-hop relay dropout shrinks the STBC configuration one ladder
//     step (G4 → G3 → Alamouti → SISO) and re-plans the hop rather than
//     aborting the route;
//   * scheduled node deaths (crash / battery exhaustion) trigger route
//     repair: the network is rebuilt from the survivors — re-clustered,
//     heads re-elected, spanning tree re-derived;
//   * PU arrivals preempt the long-haul slot: the transmitter vacates
//     and resumes once the PU's busy period ends.
// Everything is deterministic in the seeds: the same config reproduces
// the identical ResilienceReport bit-for-bit.
#pragma once

#include <cstddef>

#include "comimo/mc/engine.h"
#include "comimo/net/routing.h"
#include "comimo/numeric/stats.h"
#include "comimo/resilience/arq.h"
#include "comimo/resilience/fault_plan.h"
#include "comimo/resilience/rlnc_transport.h"

namespace comimo {

struct ResilienceConfig {
  RoutingMode mode = RoutingMode::kCooperative;
  double bits_per_packet = 1e5;
  double ber = 1e-3;
  double bandwidth_hz = 40e3;
  std::size_t rounds = 200;  ///< one random src → dst packet per round
  std::uint64_t traffic_seed = 1;
  FaultConfig faults{};  ///< off by default: the zero-fault happy path
  ArqConfig arq{};

  /// Rateless coded transport as a peer of ARQ.  Off by default; with
  /// rlnc.enabled == false the ARQ path runs bit-identically to before
  /// (no extra RNG consumption, no report-field drift).
  RlncTransportConfig rlnc{};

  /// When > 0, the final operating point of every routed hop is also
  /// pushed through the waveform link kernel (measure_plan_ber) for
  /// this many STBC blocks, cached per distinct (b, mt, mr, ē_b).
  /// Purely observational: the probe draws from its own seed family and
  /// leaves every legacy report field bit-identical to a run with the
  /// probe off.
  std::size_t waveform_blocks = 0;
  std::uint64_t waveform_seed = 0x5EED;
};

/// Everything the recovery machinery did, plus what it cost.  The
/// default equality lets tests assert bit-identical replay.
struct ResilienceReport {
  std::size_t packets_offered = 0;
  std::size_t packets_delivered = 0;
  double delivery_ratio = 0.0;
  double delivered_bits = 0.0;

  std::size_t retransmissions = 0;   ///< extra long-haul attempts
  std::size_t arq_failures = 0;      ///< packets lost to ARQ exhaustion
  std::size_t routing_drops = 0;     ///< no backbone path / dead endpoint
  std::size_t stbc_degradations = 0; ///< ladder steps taken mid-route
  std::size_t node_deaths = 0;
  std::size_t head_failovers = 0;    ///< deaths that hit a cluster head
  std::size_t route_repairs = 0;     ///< network rebuilds after deaths
  std::size_t pu_preemptions = 0;    ///< long-haul slots forced to wait

  double pu_wait_s = 0.0;      ///< time vacated to the PU
  double backoff_wait_s = 0.0; ///< ACK timeouts + ARQ backoff
  double repair_time_s = 0.0;  ///< control-plane cost of route repairs
  double airtime_s = 0.0;      ///< productive transmission time
  double total_time_s = 0.0;   ///< airtime + all waiting
  double goodput_bps = 0.0;    ///< delivered_bits / total_time_s

  double energy_spent_j = 0.0;
  double retransmit_energy_j = 0.0;  ///< the recovery overhead share

  /// Summed in-flight time of delivered packets (offer → delivery),
  /// maintained by BOTH transports: mean delivery latency is
  /// delivered_latency_s / packets_delivered.
  double delivered_latency_s = 0.0;

  // RLNC transport accounting — all zero when rlnc.enabled == false:
  std::size_t rlnc_generations = 0;     ///< routes attempted under RLNC
  std::size_t rlnc_packets_sent = 0;    ///< coded transmissions, all hops
  std::size_t rlnc_overhead_packets = 0;///< beyond the initial k per hop
  std::size_t rlnc_recoded_packets = 0; ///< relay-recoded transmissions
  std::size_t rlnc_feedback_rounds = 0;
  std::size_t rlnc_rank_deficit = 0;    ///< summed k - final_rank on failures
  std::size_t rlnc_failures = 0;        ///< generations the sink lost
  double rlnc_recode_energy_j = 0.0;    ///< GF recombination energy charged
  double rlnc_partial_bits = 0.0;       ///< decodable bits of failed generations

  // Waveform probe aggregates — all zero unless waveform_blocks > 0:
  std::size_t waveform_hops = 0;  ///< hops probed (cache hits included)
  std::size_t waveform_bits = 0;
  std::size_t waveform_bit_errors = 0;
  double waveform_hop_ber = 0.0;  ///< pooled probe BER across hops

  friend bool operator==(const ResilienceReport&,
                         const ResilienceReport&) = default;
};

/// Runs the traffic loop on a copy of `net` (the input is untouched).
/// With `config.faults.enabled == false` every packet simply routes and
/// delivers — no fault draw, no recovery path, no extra RNG consumption.
[[nodiscard]] ResilienceReport simulate_with_faults(
    const CoMimoNet& net, const SystemParams& params,
    const ResilienceConfig& config);

/// Replicated fault sweeps on the mc/ engine.  One trial's rounds are
/// sequential (battery state and fault plan carry over), so the
/// ensemble parallelizes across trials: trial t derives traffic_seed
/// and faults.seed from Rng(seed, t) — bit-identical on any pool size.
struct ResilienceEnsembleConfig {
  ResilienceConfig base{};      ///< traffic_seed / faults.seed overridden
  std::size_t trials = 16;
  std::uint64_t seed = 1;       ///< ensemble seed (per-trial seeds derived)
  std::size_t chunk_size = 0;   ///< engine shard size; 0 = auto
  ThreadPool* pool = nullptr;   ///< null = shared pool
};

struct ResilienceEnsembleReport {
  RunningStats delivery_ratio;
  RunningStats goodput_bps;
  RunningStats energy_spent_j;
  RunningStats retransmit_energy_j;
  RunningStats latency_s;           ///< per-trial mean delivery latency
  std::size_t retransmissions = 0;  ///< summed over all trials
  std::size_t arq_failures = 0;
  std::size_t node_deaths = 0;
  std::size_t route_repairs = 0;
  std::size_t pu_preemptions = 0;
  std::size_t rlnc_packets_sent = 0;
  std::size_t rlnc_overhead_packets = 0;
  std::size_t rlnc_failures = 0;
  std::size_t trials = 0;
  McRunInfo info;
};

[[nodiscard]] ResilienceEnsembleReport simulate_with_faults_ensemble(
    const CoMimoNet& net, const SystemParams& params,
    const ResilienceEnsembleConfig& config);

}  // namespace comimo
