// Seeded, replayable fault plans.
//
// §2.1 claims "the clusters and the routing backbone are reconfigurable";
// proving it requires breaking things on purpose.  A FaultInjector turns
// (seed, intensity knobs) into a FaultPlan — a deterministic oracle the
// simulators consult:
//   * scheduled node deaths (crash or battery exhaustion) at chosen
//     traffic rounds;
//   * per-slot packet erasures and mid-hop relay dropouts, drawn by
//     counter-based hashing of (round, hop, attempt) so any traversal
//     order replays the identical fault sequence;
//   * a PU busy/idle trace (the existing PuActivityModel) that preempts
//     the long-haul STBC slot while the channel is occupied.
// The same (plan, seed) always reproduces the same faults bit-for-bit,
// which is what makes ResilienceReports comparable across runs.
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/net/comimonet.h"
#include "comimo/resilience/gilbert_elliott.h"
#include "comimo/sensing/pu_activity.h"

namespace comimo {

struct FaultConfig {
  bool enabled = false;  ///< master switch; off reproduces the happy path

  /// Fraction of nodes killed over the plan horizon (0 disables deaths).
  double node_death_fraction = 0.0;
  /// Deaths are scheduled uniformly inside this window of the horizon,
  /// expressed as fractions of the total round count ("mid-run").
  double death_window_lo = 0.25;
  double death_window_hi = 0.75;

  /// Per-hop probability that one cooperating transmitter drops out
  /// mid-hop, forcing an STBC degradation (G4 → G3 → Alamouti → SISO).
  double relay_dropout_prob = 0.0;

  /// Per-attempt probability that a long-haul slot is erased (triggers
  /// the ARQ retransmission path).
  double slot_erasure_prob = 0.0;

  /// PU arrivals preempt the long-haul slot while the channel is busy.
  bool pu_preemption = false;
  PuActivityModel pu{};
  double pu_trace_duration_s = 4000.0;  ///< trace length; time wraps over it

  /// Control-plane cost charged per route repair (backbone rebuild).
  double repair_time_s = 50e-3;

  /// Correlated (bursty) long-haul losses on top of the i.i.d. erasure
  /// draw above.  The channel's own seed is mixed with `seed`, so
  /// per-trial reseeding varies the burst pattern too.
  GilbertElliottConfig burst{};

  std::uint64_t seed = 1;
};

/// Throws InvalidArgument on malformed knobs (probabilities outside
/// [0, 1], inverted death window, non-positive PU holding times, …).
void validate(const FaultConfig& config);

struct NodeDeath {
  enum class Cause { kCrash, kBatteryExhaustion };
  std::size_t round = 0;  ///< 1-based traffic round the death lands in
  NodeId node = kInvalidNode;
  Cause cause = Cause::kCrash;
};

/// The materialized plan.  Deaths are sorted by round; erasure/dropout
/// draws are pure functions of the indices so no replay state is kept.
class FaultPlan {
 public:
  FaultPlan() = default;  ///< empty plan: nothing ever fails
  FaultPlan(FaultConfig config, std::vector<NodeDeath> deaths,
            std::vector<PuInterval> pu_trace);

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<NodeDeath>& deaths() const noexcept {
    return deaths_;
  }
  [[nodiscard]] const std::vector<PuInterval>& pu_trace() const noexcept {
    return pu_trace_;
  }

  /// Deaths scheduled exactly at `round`.
  [[nodiscard]] std::vector<NodeDeath> deaths_at(std::size_t round) const;

  /// Counter-based draw: is long-haul attempt `attempt` of hop `hop` in
  /// round `round` erased?
  [[nodiscard]] bool slot_erased(std::size_t round, std::size_t hop,
                                 unsigned attempt) const;

  /// Counter-based draw: does a cooperating transmitter drop out mid-hop?
  [[nodiscard]] bool relay_dropout(std::size_t round, std::size_t hop) const;

  /// Counter-based draw against the Gilbert–Elliott burst channel: is
  /// the transmission occupying global slot ordinal `slot` erased?
  /// Always false (and consumes nothing) when bursts are disabled, so
  /// existing fault plans are bit-identical.
  [[nodiscard]] bool burst_erased(std::uint64_t slot) const noexcept;

  /// The materialized burst channel (disabled when config.burst is off).
  [[nodiscard]] const GilbertElliottChannel& burst_channel() const noexcept {
    return burst_;
  }

  /// Seconds the transmitter must wait at absolute time `t_s` before the
  /// PU vacates (0 when preemption is disabled or the channel is idle).
  /// Time wraps modulo the trace duration, keeping long runs replayable.
  [[nodiscard]] double pu_wait_s(double t_s) const;

 private:
  FaultConfig config_{};
  std::vector<NodeDeath> deaths_;
  std::vector<PuInterval> pu_trace_;
  GilbertElliottChannel burst_{};
};

/// Generates plans.  Construction validates the config; `make_plan`
/// picks victims and death rounds deterministically from the seed.
class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig config);

  /// Builds the plan for `horizon_rounds` traffic rounds over `net`.
  [[nodiscard]] FaultPlan make_plan(const CoMimoNet& net,
                                    std::size_t horizon_rounds) const;

  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

 private:
  FaultConfig config_;
};

}  // namespace comimo
