// Self-healing primitives: route repair and STBC degradation.
//
// §2.1: "the clusters and the routing backbone are reconfigurable."
// When nodes die the network must shrink around the hole, not crash:
//   * surviving_subnet() rebuilds the CoMIMONet from the nodes still
//     alive — re-clusters, re-elects heads (dead cluster heads are
//     replaced by the highest-battery survivor), and re-derives the
//     cooperative links, after which a fresh RoutingBackbone gives the
//     repaired spanning tree;
//   * the STBC fallback ladder (phy/stbc.h's stbc_degraded_tx) shrinks
//     the long-haul code G4 → G3 → Alamouti → SISO when a cooperating
//     transmitter drops out mid-route, so the hop degrades instead of
//     aborting.
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/net/comimonet.h"

namespace comimo {

/// Nodes of `net` still alive under `alive_by_id` (indexed by NodeId;
/// ids absent from the vector count as dead).  Batteries carry over.
[[nodiscard]] std::vector<SuNode> surviving_nodes(
    const CoMimoNet& net, const std::vector<std::uint8_t>& alive_by_id);

/// Rebuilds the network from the survivors: re-clustering, head
/// election, and link derivation all run afresh under the original
/// config.  Throws InfeasibleError when no node survives.
[[nodiscard]] CoMimoNet surviving_subnet(
    const CoMimoNet& net, const std::vector<std::uint8_t>& alive_by_id);

}  // namespace comimo
