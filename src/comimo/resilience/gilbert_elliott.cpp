#include "comimo/resilience/gilbert_elliott.h"

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/resilience/counter_draw.h"

namespace comimo {

namespace {

// Distinct stream/tag constants so the burst draws never collide with
// FaultPlan's erasure (0x51), dropout (0xD0) or any Rng stream in use.
constexpr std::uint64_t kTraceStream = 0x6E11;
constexpr std::uint64_t kLossTag = 0x6E22;

}  // namespace

void validate(const GilbertElliottConfig& config) {
  COMIMO_CHECK(config.p_good_to_bad > 0.0 && config.p_good_to_bad <= 1.0,
               "Gilbert-Elliott p_good_to_bad must be in (0, 1]");
  COMIMO_CHECK(config.p_bad_to_good > 0.0 && config.p_bad_to_good <= 1.0,
               "Gilbert-Elliott p_bad_to_good must be in (0, 1]");
  COMIMO_CHECK(config.loss_good >= 0.0 && config.loss_good <= 1.0,
               "Gilbert-Elliott loss_good must be in [0, 1]");
  COMIMO_CHECK(config.loss_bad >= 0.0 && config.loss_bad <= 1.0,
               "Gilbert-Elliott loss_bad must be in [0, 1]");
  COMIMO_CHECK(config.trace_slots >= 1,
               "Gilbert-Elliott trace must cover at least one slot");
}

GilbertElliottChannel::GilbertElliottChannel(GilbertElliottConfig config)
    : config_(config) {
  if (!config_.enabled) return;
  validate(config_);
  trace_.resize(config_.trace_slots);
  Rng rng(config_.seed, kTraceStream);
  // Start from the stationary distribution so short traces are not
  // biased toward the Good state.
  bool bad = rng.bernoulli(stationary_bad());
  for (std::size_t s = 0; s < trace_.size(); ++s) {
    trace_[s] = bad ? 1 : 0;
    bad = bad ? !rng.bernoulli(config_.p_bad_to_good)
              : rng.bernoulli(config_.p_good_to_bad);
  }
}

bool GilbertElliottChannel::bad(std::uint64_t slot) const noexcept {
  if (trace_.empty()) return false;
  return trace_[slot % trace_.size()] != 0;
}

bool GilbertElliottChannel::erased(std::uint64_t slot) const noexcept {
  if (!config_.enabled || trace_.empty()) return false;
  const bool b = bad(slot);
  const double p = b ? config_.loss_bad : config_.loss_good;
  if (p <= 0.0) return false;
  return detail::hashed_uniform(config_.seed, kLossTag, slot, b ? 1 : 0, 0) <
         p;
}

double GilbertElliottChannel::stationary_bad() const noexcept {
  const double denom = config_.p_good_to_bad + config_.p_bad_to_good;
  if (denom <= 0.0) return 0.0;
  return config_.p_good_to_bad / denom;
}

double GilbertElliottChannel::expected_loss() const noexcept {
  const double pi_bad = stationary_bad();
  return (1.0 - pi_bad) * config_.loss_good + pi_bad * config_.loss_bad;
}

}  // namespace comimo
