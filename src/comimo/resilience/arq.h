// Link-layer ARQ with truncated exponential backoff.
//
// The paper's network model assumes every cooperative hop succeeds; a
// production stack cannot.  This module supplies the retransmission
// protocol the resilience layer runs per long-haul slot: transmit, wait
// one ACK timeout, and on failure back off for
//   backoff(k) = min(base · factor^k, max) · U,   U ~ Uniform[0.5, 1),
// before attempt k+1, up to max_attempts total attempts.  The uniform
// dither desynchronizes colliding retransmitters (classic truncated
// binary exponential backoff); it is drawn from the caller's seeded Rng
// so every sequence is replayable bit-for-bit.
#pragma once

#include <functional>

#include "comimo/numeric/rng.h"

namespace comimo {

struct ArqConfig {
  unsigned max_attempts = 6;     ///< original transmission + retries
  double ack_timeout_s = 10e-3;  ///< wait before declaring a loss
  double base_backoff_s = 5e-3;  ///< backoff before the first retry
  double backoff_factor = 2.0;   ///< exponential growth per retry
  double max_backoff_s = 80e-3;  ///< truncation ceiling
};

/// Throws InvalidArgument when the config is malformed.
void validate(const ArqConfig& config);

/// Backoff delay before retry number `attempt` (attempt 0 is the first
/// *re*transmission).  Deterministic in the Rng state; exposed so tests
/// can replay a sequence without running the protocol.
[[nodiscard]] double arq_backoff_s(const ArqConfig& config, unsigned attempt,
                                   Rng& rng);

/// Same draw without re-validating `config` — for retry loops that
/// already ran validate(config) once on entry (run_arq, the resilience
/// simulator).  Precondition: `config` is valid; behaviour on a
/// malformed config is unspecified.  Consumes exactly the same RNG
/// stream as arq_backoff_s, bit for bit.
[[nodiscard]] double arq_backoff_unchecked_s(const ArqConfig& config,
                                             unsigned attempt, Rng& rng);

struct ArqOutcome {
  bool delivered = false;
  unsigned attempts = 0;     ///< transmissions actually made (>= 1)
  double wait_s = 0.0;       ///< ACK timeouts + backoff time spent
  /// The retry budget ran dry: every one of max_attempts transmissions
  /// failed.  Distinguishes "gave up" from outcomes abandoned early by
  /// the caller (delivered == false && exhausted == false).
  bool exhausted = false;
};

/// Runs the protocol: `attempt_ok(k)` reports whether transmission k
/// (0-based) got through.  Failed attempts cost one ACK timeout plus the
/// backoff delay; the final failed attempt costs only the timeout.
[[nodiscard]] ArqOutcome run_arq(
    const ArqConfig& config,
    const std::function<bool(unsigned attempt)>& attempt_ok, Rng& rng);

}  // namespace comimo
