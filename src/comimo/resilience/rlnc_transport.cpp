#include "comimo/resilience/rlnc_transport.h"

#include <utility>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/obs/metrics.h"

namespace comimo {

namespace {

// coding.* observability.  Deterministic domain: every count below is a
// pure function of the simulation seeds (see obs/metrics.h).
struct CodingObs {
  obs::Counter generations =
      obs::MetricRegistry::global().counter("coding.generations");
  obs::Counter packets = obs::MetricRegistry::global().counter("coding.packets");
  obs::Counter recoded =
      obs::MetricRegistry::global().counter("coding.recoded_packets");
  obs::Counter overhead =
      obs::MetricRegistry::global().counter("coding.overhead_packets");
  obs::Counter deliveries =
      obs::MetricRegistry::global().counter("coding.deliveries");
  obs::Counter failures =
      obs::MetricRegistry::global().counter("coding.failures");
  obs::Counter feedback =
      obs::MetricRegistry::global().counter("coding.feedback_rounds");
  obs::Histogram overhead_per_gen =
      obs::MetricRegistry::global().histogram("coding.overhead_per_generation");
  obs::Histogram rank_deficit =
      obs::MetricRegistry::global().histogram("coding.rank_deficit");
};

CodingObs& coding_obs() {
  static CodingObs o;
  return o;
}

}  // namespace

void validate(const RlncTransportConfig& config) {
  coding::validate(config.code);
  COMIMO_CHECK(config.recode_energy_j >= 0.0,
               "RLNC recode energy must be >= 0");
}

RlncRouteResult run_rlnc_route(const RlncTransportConfig& config,
                               std::size_t num_hops,
                               std::uint64_t payload_seed, Rng& coding_rng,
                               const RlncErasureFn& erased,
                               const RlncPacketCostFn& charge_packet,
                               const RlncFeedbackCostFn& charge_feedback) {
  validate(config);
  COMIMO_CHECK(num_hops >= 1, "RLNC route needs at least one hop");
  COMIMO_CHECK(static_cast<bool>(erased) && static_cast<bool>(charge_packet) &&
                   static_cast<bool>(charge_feedback),
               "null RLNC route callback");

  CodingObs& o = coding_obs();
  const std::size_t k = config.code.generation_size;

  // The generation's source bytes: seeded, so the decode can be verified
  // end-to-end through the GF kernels.
  std::vector<std::uint8_t> data(k * config.code.packet_bytes);
  Rng payload_rng(payload_seed, 0xDA7A);
  for (auto& byte : data) {
    byte = static_cast<std::uint8_t>(payload_rng.next() >> 56);
  }
  const coding::RlncEncoder encoder(config.code, data);

  // Relay buffers between consecutive hops; the sink decoder sits after
  // the last hop.
  std::vector<coding::RelayRecoder> relays;
  relays.reserve(num_hops >= 1 ? num_hops - 1 : 0);
  for (std::size_t i = 0; i + 1 < num_hops; ++i) {
    relays.emplace_back(config.code);
  }
  coding::RlncDecoder sink(config.code);

  RlncRouteResult result;
  o.generations.add();

  for (std::size_t h = 0; h < num_hops; ++h) {
    const bool from_source = h == 0;
    coding::RelayRecoder* relay = from_source ? nullptr : &relays[h - 1];
    const std::size_t sender_rank = from_source ? k : relay->rank();
    if (sender_rank == 0) break;  // upstream losses starved this relay

    const auto receiver_rank = [&]() {
      return h + 1 < num_hops ? relays[h].rank() : sink.rank();
    };
    const auto receive = [&](const coding::CodedPacket& pkt) {
      if (h + 1 < num_hops) {
        (void)relays[h].add(pkt);
      } else {
        (void)sink.add(pkt);
      }
    };

    std::size_t tx_index = 0;  // per-hop transmission ordinal
    std::size_t seq = 0;       // source stream position (systematic part)
    const auto send_one = [&](bool overhead) {
      charge_packet(h, !from_source, overhead);
      ++result.packets_sent;
      o.packets.add();
      coding::CodedPacket pkt = from_source
                                    ? encoder.packet(seq++, coding_rng)
                                    : relay->recode(coding_rng);
      if (!from_source) {
        ++result.recoded_packets;
        o.recoded.add();
      }
      const bool lost = erased(h, tx_index++);
      if (!lost) receive(pkt);
    };

    // Initial burst: everything the sender knows, once.
    for (std::size_t i = 0; i < sender_rank; ++i) send_one(false);

    // Feedback loop: the receiver reports its rank; the sender tops up
    // the deficit with fresh combinations until ranks match or the
    // per-hop overhead budget runs dry.
    std::size_t overhead_used = 0;
    while (receiver_rank() < sender_rank &&
           overhead_used < config.max_overhead_packets) {
      charge_feedback(h);
      ++result.feedback_rounds;
      o.feedback.add();
      const std::size_t deficit = sender_rank - receiver_rank();
      for (std::size_t i = 0;
           i < deficit && overhead_used < config.max_overhead_packets; ++i) {
        send_one(true);
        ++result.overhead_packets;
        ++overhead_used;
        o.overhead.add();
      }
    }
    o.overhead_per_gen.observe(static_cast<double>(overhead_used));
  }

  result.final_rank = sink.rank();
  result.decodable_packets = sink.decodable_now();
  o.rank_deficit.observe(static_cast<double>(k - result.final_rank));

  if (sink.complete()) {
    // End-to-end verification: the decode must reproduce the source
    // bytes exactly (exercises every GF kernel in the chain).
    bool ok = true;
    for (std::size_t i = 0; i < k && ok; ++i) {
      ok = sink.source_packet(i) == encoder.source_row(i);
    }
    result.delivered = ok;
  }
  if (result.delivered) {
    o.deliveries.add();
  } else {
    o.failures.add();
  }
  return result;
}

}  // namespace comimo
