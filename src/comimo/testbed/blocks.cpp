#include "comimo/testbed/blocks.h"

#include <cmath>

namespace comimo {

GainBlock::GainBlock(cplx gain) : gain_(gain) {}

std::vector<cplx> GainBlock::process(std::vector<cplx> input) {
  for (auto& s : input) s *= gain_;
  return input;
}

ChannelBlock::ChannelBlock(const IndoorLinkConfig& config, Rng rng,
                           bool block_fading)
    : link_(config, rng), block_fading_(block_fading) {}

std::vector<cplx> ChannelBlock::process(std::vector<cplx> input) {
  if (block_fading_) link_.redraw_fading();
  return link_.propagate(input);
}

NoiseBlock::NoiseBlock(double noise_variance, Rng rng)
    : awgn_(noise_variance, rng) {}

std::vector<cplx> NoiseBlock::process(std::vector<cplx> input) {
  awgn_.apply(input);
  return input;
}

PhaseRotationBlock::PhaseRotationBlock(double phase_rad)
    : rotation_(std::cos(phase_rad), std::sin(phase_rad)) {}

std::vector<cplx> PhaseRotationBlock::process(std::vector<cplx> input) {
  for (auto& s : input) s *= rotation_;
  return input;
}

}  // namespace comimo
