#include "comimo/testbed/coop_hop_sim.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <span>

#include "comimo/channel/awgn.h"
#include "comimo/coding/rlnc.h"
#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/common/units.h"
#include "comimo/numeric/rng.h"
#include "comimo/obs/trace.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/link_workspace.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"

namespace comimo {

namespace {

// Hop-level observability.  Block/retransmission totals and the hop BER
// are pure functions of the config seeds (deterministic domain); the
// hop wall time is not.  run_hop executes serially or directly inside a
// top-level run_trials trial, which satisfies the histogram observation
// discipline in obs/metrics.h.
struct HopObs {
  obs::Counter blocks = obs::MetricRegistry::global().counter("coophop.blocks");
  obs::Counter retransmitted = obs::MetricRegistry::global().counter(
      "coophop.retransmitted_blocks");
  obs::Counter lost =
      obs::MetricRegistry::global().counter("coophop.lost_blocks");
  obs::Counter repairs =
      obs::MetricRegistry::global().counter("coophop.repair_blocks");
  obs::Counter recovered =
      obs::MetricRegistry::global().counter("coophop.recovered_blocks");
  obs::Histogram hop_ber =
      obs::MetricRegistry::global().histogram("coophop.hop_ber");
  obs::Histogram hop_wall_s = obs::MetricRegistry::global().histogram(
      "coophop.hop_wall_s", obs::Domain::kRuntime);
};

HopObs& hop_obs() {
  static HopObs o;
  return o;
}

/// Per-worker buffer arena for the hop simulation: the PHY-level
/// LinkWorkspace plus the hop-level staging the cooperative protocol
/// needs (per-antenna belief streams carry *different* symbols after
/// noisy intra-cluster decoding, so the long haul encodes per antenna
/// instead of through StbcCode::encode_into).  Every buffer is fully
/// overwritten per block before being read.
struct HopScratch {
  LinkWorkspace link;
  std::vector<std::vector<cplx>> antenna_syms;  ///< per-antenna symbols
  std::vector<BitVec> antenna_bits;             ///< per-antenna beliefs
  std::vector<cplx> local_syms;  ///< head-broadcast symbols
  std::vector<cplx> rx;          ///< noisy local copy per co-transmitter
  BitVec decoded_all;            ///< long-haul output of one attempt
};

/// Pushes `payload` through one hop; returns the bits the receiving
/// head decodes and fills the result's error statistics relative to
/// the payload.  With `faults.enabled` the long-haul block can be
/// erased (→ retransmission, fresh channel and noise per attempt) and a
/// co-transmitter can drop out mid-transfer (→ the remaining antennas
/// fall one STBC ladder step, reusing the plan's ē_b).
///
/// Blocks run in parallel across `pool`: every block derives all of its
/// randomness from counter-based streams keyed by (seed, block index),
/// and per-block outputs merge in block order, so the hop result is
/// bit-identical on 1 or N workers.
BitVec run_hop(const UnderlayHopPlan& plan, const BitVec& payload,
               double local_snr_db, std::uint64_t seed,
               const HopFaultConfig& faults, CoopHopSimResult& result,
               ThreadPool* pool) {
  COMIMO_CHECK(plan.b >= 1 && plan.b <= 8,
               "waveform simulation supports b in 1..8");
  COMIMO_CHECK(!payload.empty(), "need bits to send");
  if (faults.enabled) {
    COMIMO_CHECK(faults.block_erasure_prob >= 0.0 &&
                     faults.block_erasure_prob < 1.0,
                 "block erasure probability must be in [0, 1)");
    COMIMO_CHECK(faults.max_attempts >= 1, "need at least one attempt");
  }
  const unsigned mt = plan.config.mt;
  const unsigned mr = plan.config.mr;
  const obs::SpanTimer hop_span("coophop.hop", hop_obs().hop_wall_s);

  const auto modem = make_modulator(plan.b);
  const StbcCode code = StbcCode::for_antennas(mt);
  const std::size_t kk = code.symbols_per_block();
  const std::size_t bits_per_block = kk * static_cast<std::size_t>(plan.b);

  // Decoders are immutable and shared across blocks; build them once per
  // hop instead of once per block.  The fault path can drop one
  // co-transmitter, so the degraded design is prebuilt as well.
  const StbcDecoder decoder_full{code};
  std::optional<StbcDecoder> decoder_degraded;
  if (faults.enabled && mt > 1) {
    decoder_degraded.emplace(StbcCode::for_antennas(mt - 1));
  }

  const SystemParams params{};  // the plan's ē_b already encodes p, b, m
  const double local_noise_var = db_to_linear(-local_snr_db);

  // Long haul for `mt_use` active antennas (the first mt_use belief
  // streams; the head is always antenna 0).  Symbol scaling: the
  // solver's γ_b per unit ‖H‖²_F is ē_b/(N0·mt); with unit noise
  // variance and the code's 1/√mt power split, scaling symbols by
  // √(b·ē_b/N0) reproduces it exactly.  Rate-1/2 designs transmit each
  // symbol twice; divide the per-transmission energy by the symbol
  // weight so the *per-bit* received energy equals ē_b.  Degraded
  // blocks chunk into the smaller code's sub-blocks (K divides evenly
  // down the whole G4 → G3 → Alamouti → SISO ladder).
  const auto long_haul = [&](const StbcDecoder& decoder_use,
                             HopScratch& scratch, Rng& channel_rng,
                             AwgnChannel& long_haul_noise,
                             AwgnChannel& local_noise) {
    const StbcCode& code_use = decoder_use.code();
    const auto mt_use = static_cast<unsigned>(code_use.num_tx());
    const std::size_t k_use = code_use.symbols_per_block();
    const std::size_t t_use = code_use.block_length();
    const std::size_t sub_bits = k_use * static_cast<std::size_t>(plan.b);
    const double sym_scale =
        std::sqrt(static_cast<double>(plan.b) * plan.ebar /
                  params.n0_w_per_hz / code_use.symbol_weight());
    LinkWorkspace& ws = scratch.link;
    ws.configure(code_use, mr);
    if (scratch.antenna_syms.size() < mt_use) {
      scratch.antenna_syms.resize(mt_use);
    }
    const std::vector<BitVec>& antenna_bits = scratch.antenna_bits;
    BitVec& decoded_all = scratch.decoded_all;
    decoded_all.clear();
    for (std::size_t sub = 0; sub < antenna_bits[0].size(); sub += sub_bits) {
      // --- Step 2: every antenna encodes its own belief; the receive
      // cluster observes the superposition through H plus unit noise.
      for (unsigned i = 0; i < mt_use; ++i) {
        std::vector<cplx>& syms = scratch.antenna_syms[i];
        modem->modulate_into(std::span<const std::uint8_t>(antenna_bits[i])
                                 .subspan(sub, sub_bits),
                             syms);
        for (auto& v : syms) v *= sym_scale;
      }
      random_gaussian_into(ws.h, channel_rng);
      // Every antenna column carries its own (possibly mis-decoded)
      // belief, so the block is assembled per antenna instead of via
      // encode_into; products associate exactly as the historical
      // inline loop, so sums round identically.
      for (std::size_t t = 0; t < t_use; ++t) {
        for (unsigned i = 0; i < mt_use; ++i) {
          cplx c_ti{0.0, 0.0};
          for (std::size_t k = 0; k < k_use; ++k) {
            c_ti += code_use.coeff_a(t, i, k) * scratch.antenna_syms[i][k] +
                    code_use.coeff_b(t, i, k) *
                        std::conj(scratch.antenna_syms[i][k]);
          }
          ws.encoded(t, i) = c_ti * code_use.power_scale();
        }
      }
      multiply_transposed_into(ws.encoded, ws.h, ws.received);
      for (std::size_t t = 0; t < t_use; ++t) {
        for (unsigned j = 0; j < mr; ++j) {
          ws.received(t, j) += long_haul_noise.sample();
        }
      }

      // --- Step 3: non-head receivers forward raw samples to the head
      // over local links (analog forwarding adds local noise); the head
      // then joint-decodes in place.
      for (unsigned j = 1; j < mr; ++j) {
        for (std::size_t t = 0; t < t_use; ++t) {
          ws.received(t, j) += local_noise.sample() * sym_scale;
        }
      }

      decoder_use.decode_into(ws.h, ws.received, ws.estimates,
                              ws.decode_scratch);
      for (auto& v : ws.estimates) v /= sym_scale;
      // Blocks here cannot batch across lanes (the AwgnChannel streams
      // are sequential per block and ARQ retransmissions diverge per
      // lane), but the demod distance argmin below vectorizes across
      // the symbols of this block via the pinned SIMD tier —
      // bit-identical labels, see QamModulator::demodulate_into.
      modem->demodulate_into(ws.estimates, ws.decoded);
      decoded_all.insert(decoded_all.end(), ws.decoded.begin(),
                         ws.decoded.end());
    }
  };

  const BitVec padded = pad_to_multiple(payload, bits_per_block);
  const std::size_t num_blocks = padded.size() / bits_per_block;

  // Per-block output slots, merged in block order after the fan-out.
  struct BlockOut {
    BitVec decoded;
    std::size_t intra_errors = 0;
    std::size_t intra_bits = 0;
    bool erased = false;  ///< RLNC mode: this block's one send was lost
    HopResilienceStats res;
  };
  std::vector<BlockOut> outs(num_blocks);

  const auto run_block = [&](std::size_t blk) {
    BlockOut& slot = outs[blk];
    // One arena per worker thread, reused for every block the thread
    // executes; each block fully overwrites what it reads.
    thread_local HopScratch scratch;
    // Counter-based per-block streams: three data streams keyed off
    // `seed` plus a fault stream keyed off `faults.seed` — each a pure
    // function of the block index, independent of scheduling.
    Rng channel_rng(seed, 0x100 + blk * 3);
    AwgnChannel long_haul_noise(1.0, Rng(seed, 0x100 + blk * 3 + 1));
    AwgnChannel local_noise(local_noise_var, Rng(seed, 0x100 + blk * 3 + 2));
    Rng fault_rng(faults.seed, 0xFA000 + blk);

    const std::size_t off = blk * bits_per_block;
    const std::span<const std::uint8_t> bits(padded.data() + off,
                                             bits_per_block);

    // --- Step 1: head broadcast; each co-transmitter decodes its own
    // noisy copy (the head itself holds the true bits).
    if (scratch.antenna_bits.size() < mt) scratch.antenna_bits.resize(mt);
    scratch.antenna_bits[0].assign(bits.begin(), bits.end());
    if (mt > 1) {
      modem->modulate_into(bits, scratch.local_syms);
      for (unsigned i = 1; i < mt; ++i) {
        scratch.rx.assign(scratch.local_syms.begin(),
                          scratch.local_syms.end());
        local_noise.apply(scratch.rx);
        modem->demodulate_into(scratch.rx, scratch.antenna_bits[i]);
        slot.intra_errors += count_bit_errors(bits, scratch.antenna_bits[i]);
        slot.intra_bits += bits.size();
      }
    }

    if (!faults.enabled) {
      long_haul(decoder_full, scratch, channel_rng, long_haul_noise,
                local_noise);
    } else if (faults.rlnc) {
      // Coded repair mode: one send, one erasure draw, no retries — the
      // serial per-generation repair pass below rebuilds erased blocks.
      const bool degrade = blk >= faults.dropout_block && mt > 1;
      if (degrade) ++slot.res.degraded_blocks;
      ++slot.res.blocks;
      long_haul(degrade ? *decoder_degraded : decoder_full, scratch,
                channel_rng, long_haul_noise, local_noise);
      slot.erased = fault_rng.bernoulli(faults.block_erasure_prob);
    } else {
      const bool degrade = blk >= faults.dropout_block && mt > 1;
      if (degrade) ++slot.res.degraded_blocks;
      ++slot.res.blocks;
      const StbcDecoder& decoder_use =
          degrade ? *decoder_degraded : decoder_full;
      bool got_through = false;
      unsigned attempts = 0;
      while (attempts < faults.max_attempts) {
        long_haul(decoder_use, scratch, channel_rng, long_haul_noise,
                  local_noise);
        ++attempts;
        if (!fault_rng.bernoulli(faults.block_erasure_prob)) {
          got_through = true;
          break;
        }
      }
      if (attempts > 1) ++slot.res.retransmitted_blocks;
      if (!got_through) {
        scratch.decoded_all.assign(bits_per_block, 0);  // never arrived
        ++slot.res.lost_blocks;
      }
    }
    slot.decoded.assign(scratch.decoded_all.begin(),
                        scratch.decoded_all.end());
  };

  parallel_for(pool ? *pool : ThreadPool::shared(), num_blocks, run_block);

  // RLNC repair pass (serial, post-merge-order, pool-size independent):
  // each generation of consecutive blocks is a rank-tracking decoder —
  // received blocks contribute systematic rows, and coded repair
  // packets (dense GF(256) rows, themselves subject to erasure) top the
  // rank up.  A completed generation rebuilds every erased block from
  // the combinations; an incomplete one zeroes them as lost.
  if (faults.enabled && faults.rlnc && num_blocks > 0) {
    const std::size_t gen_size =
        std::max<std::size_t>(std::size_t{1}, faults.rlnc_generation);
    for (std::size_t g0 = 0, gen = 0; g0 < num_blocks;
         g0 += gen_size, ++gen) {
      const std::size_t n = std::min(gen_size, num_blocks - g0);
      coding::RlncConfig code_cfg;
      code_cfg.generation_size = n;
      code_cfg.packet_bytes = 0;  // rank bookkeeping only
      coding::RlncDecoder dec(code_cfg);
      bool any_erased = false;
      coding::CodedPacket pkt;
      for (std::size_t i = 0; i < n; ++i) {
        if (outs[g0 + i].erased) {
          any_erased = true;
          continue;
        }
        pkt.coeffs.assign(n, 0);
        pkt.coeffs[i] = 1;
        pkt.payload.clear();
        (void)dec.add(pkt);
      }
      if (!any_erased) continue;
      Rng repair_rng(faults.seed, 0x4EC0DE + gen);
      unsigned repairs = 0;
      while (!dec.complete() && repairs < faults.rlnc_max_overhead) {
        ++repairs;
        // The repair packet rides the same channel as the data blocks.
        if (repair_rng.bernoulli(faults.block_erasure_prob)) continue;
        pkt.coeffs.assign(n, 0);
        pkt.payload.clear();
        bool any = false;
        for (std::size_t i = 0; i < n; ++i) {
          pkt.coeffs[i] =
              coding::draw_coefficient(code_cfg.field, repair_rng);
          any = any || pkt.coeffs[i] != 0;
        }
        if (!any) pkt.coeffs[0] = 1;
        (void)dec.add(pkt);
      }
      result.resilience.repair_blocks += repairs;
      for (std::size_t i = 0; i < n; ++i) {
        BlockOut& slot = outs[g0 + i];
        if (!slot.erased) continue;
        if (dec.complete()) {
          // Recovered: the block's decoded waveform bits stand.
          ++result.resilience.recovered_blocks;
        } else {
          slot.decoded.assign(bits_per_block, 0);
          ++slot.res.lost_blocks;
        }
      }
    }
  }

  BitVec out;
  out.reserve(padded.size());
  std::size_t intra_errors = 0;
  std::size_t intra_bits = 0;
  for (BlockOut& slot : outs) {
    out.insert(out.end(), slot.decoded.begin(), slot.decoded.end());
    intra_errors += slot.intra_errors;
    intra_bits += slot.intra_bits;
    result.resilience.blocks += slot.res.blocks;
    result.resilience.retransmitted_blocks += slot.res.retransmitted_blocks;
    result.resilience.degraded_blocks += slot.res.degraded_blocks;
    result.resilience.lost_blocks += slot.res.lost_blocks;
  }

  out.resize(payload.size());
  result.bits = payload.size();
  result.bit_errors = count_bit_errors(payload, out);
  result.ber = static_cast<double>(result.bit_errors) /
               static_cast<double>(payload.size());
  result.target_ber = plan.config.ber;
  result.intra_error_rate =
      intra_bits ? static_cast<double>(intra_errors) /
                       static_cast<double>(intra_bits)
                 : 0.0;
  HopObs& o = hop_obs();
  o.blocks.add(num_blocks);
  o.retransmitted.add(result.resilience.retransmitted_blocks);
  o.lost.add(result.resilience.lost_blocks);
  o.repairs.add(result.resilience.repair_blocks);
  o.recovered.add(result.resilience.recovered_blocks);
  o.hop_ber.observe(result.ber);
  return out;
}

}  // namespace

CoopHopSimResult simulate_cooperative_hop(const CoopHopSimConfig& config) {
  COMIMO_CHECK(config.bits >= 1, "need bits to send");
  const BitVec payload = random_bits(config.bits, config.seed ^ 0xB17);
  CoopHopSimResult result;
  (void)run_hop(config.plan, payload, config.local_snr_db, config.seed,
                config.faults, result, config.pool);
  return result;
}

RouteSimResult simulate_route(const std::vector<UnderlayHopPlan>& plans,
                              std::size_t bits, double local_snr_db,
                              std::uint64_t seed,
                              const HopFaultConfig& faults,
                              ThreadPool* pool) {
  COMIMO_CHECK(!plans.empty(), "route needs at least one hop");
  COMIMO_CHECK(bits >= 1, "need bits to send");
  const BitVec source = random_bits(bits, seed ^ 0xB17);
  BitVec current = source;
  RouteSimResult result;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    CoopHopSimResult hop_result;
    current = run_hop(plans[i], current, local_snr_db,
                      seed + 0x9E37 * (i + 1), faults, hop_result, pool);
    result.hops.push_back(hop_result);
  }
  result.bits = bits;
  result.bit_errors = count_bit_errors(source, current);
  result.ber = static_cast<double>(result.bit_errors) /
               static_cast<double>(bits);
  return result;
}

}  // namespace comimo
