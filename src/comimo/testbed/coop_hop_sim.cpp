#include "comimo/testbed/coop_hop_sim.h"

#include <algorithm>
#include <cmath>
#include <new>
#include <optional>
#include <span>
#include <type_traits>

#include "comimo/channel/awgn.h"
#include "comimo/coding/rlnc.h"
#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/common/units.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/simd/simd.h"
#include "comimo/obs/trace.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/link_workspace.h"

namespace comimo {

namespace {

// Hop-level observability.  Block/retransmission totals and the hop BER
// are pure functions of the config seeds (deterministic domain); the
// hop wall time is not.  run_hop executes serially or directly inside a
// top-level run_trials trial, which satisfies the histogram observation
// discipline in obs/metrics.h.
struct HopObs {
  obs::Counter blocks = obs::MetricRegistry::global().counter("coophop.blocks");
  obs::Counter retransmitted = obs::MetricRegistry::global().counter(
      "coophop.retransmitted_blocks");
  obs::Counter lost =
      obs::MetricRegistry::global().counter("coophop.lost_blocks");
  obs::Counter repairs =
      obs::MetricRegistry::global().counter("coophop.repair_blocks");
  obs::Counter recovered =
      obs::MetricRegistry::global().counter("coophop.recovered_blocks");
  obs::Histogram hop_ber =
      obs::MetricRegistry::global().histogram("coophop.hop_ber");
  obs::Histogram hop_wall_s = obs::MetricRegistry::global().histogram(
      "coophop.hop_wall_s", obs::Domain::kRuntime);
};

HopObs& hop_obs() {
  static HopObs o;
  return o;
}

/// Per-lane counter-based streams for a group of consecutive blocks:
/// three data streams keyed off `seed` — each a pure function of the
/// block index, independent of scheduling — exactly the triple the
/// historical per-block simulation constructed.  Rng and AwgnChannel
/// have no default constructors, so the arrays live in raw stack
/// storage, placement-constructed per group; both types are trivially
/// destructible, so the group scope needs no cleanup.
struct LaneStreams {
  static_assert(std::is_trivially_destructible_v<Rng>);
  static_assert(std::is_trivially_destructible_v<AwgnChannel>);

  alignas(Rng) unsigned char channel_mem[sizeof(Rng) *
                                         CoopHopBlockKernel::kMaxLanes];
  alignas(AwgnChannel) unsigned char
      long_mem[sizeof(AwgnChannel) * CoopHopBlockKernel::kMaxLanes];
  alignas(AwgnChannel) unsigned char
      local_mem[sizeof(AwgnChannel) * CoopHopBlockKernel::kMaxLanes];
  Rng* channel;
  AwgnChannel* long_haul;
  AwgnChannel* local;

  LaneStreams(std::uint64_t seed, double local_noise_var, std::size_t blk0,
              std::size_t count) noexcept
      : channel(reinterpret_cast<Rng*>(channel_mem)),
        long_haul(reinterpret_cast<AwgnChannel*>(long_mem)),
        local(reinterpret_cast<AwgnChannel*>(local_mem)) {
    for (std::size_t w = 0; w < count; ++w) {
      const std::size_t blk = blk0 + w;
      ::new (static_cast<void*>(channel + w)) Rng(seed, 0x100 + blk * 3);
      ::new (static_cast<void*>(long_haul + w))
          AwgnChannel(1.0, Rng(seed, 0x100 + blk * 3 + 1));
      ::new (static_cast<void*>(local + w))
          AwgnChannel(local_noise_var, Rng(seed, 0x100 + blk * 3 + 2));
    }
  }
};

}  // namespace

CoopHopBlockKernel::CoopHopBlockKernel(const UnderlayHopPlan& plan,
                                       double local_snr_db)
    : modem_(make_modulator(plan.b)),
      decoder_full_(StbcCode::for_antennas(plan.config.mt)),
      b_(plan.b),
      mt_(plan.config.mt),
      mr_(plan.config.mr),
      ebar_(plan.ebar),
      n0_(SystemParams{}.n0_w_per_hz),  // ē_b already encodes p, b, m
      local_noise_var_(db_to_linear(-local_snr_db)) {
  COMIMO_CHECK(plan.b >= 1 && plan.b <= 8,
               "waveform simulation supports b in 1..8");
  COMIMO_CHECK(mr_ >= 1, "need a receive antenna");
  bits_per_block_ = decoder_full_.code().symbols_per_block() *
                    static_cast<std::size_t>(b_);
}

void CoopHopBlockKernel::prepare_batch(HopBatchWorkspace& ws,
                                       std::size_t width) const {
  ws.configure_hop(decoder_full_.code(), mr_, width, bits_per_block_);
}

void CoopHopBlockKernel::broadcast_lane(HopBatchWorkspace& ws,
                                        std::size_t lane,
                                        std::span<const std::uint8_t> bits,
                                        AwgnChannel& local_noise,
                                        GroupStats& stats) const {
  // --- Step 1: head broadcast; each co-transmitter decodes its own
  // noisy copy (the head itself holds the true bits).
  std::copy(bits.begin(), bits.end(), ws.belief(0, lane));
  if (mt_ > 1) {
    modem_->modulate_into(bits, ws.lane_syms);
    for (unsigned i = 1; i < mt_; ++i) {
      ws.lane_rx.assign(ws.lane_syms.begin(), ws.lane_syms.end());
      local_noise.apply(ws.lane_rx);
      modem_->demodulate_into(ws.lane_rx, ws.lane_decoded);
      std::copy(ws.lane_decoded.begin(), ws.lane_decoded.end(),
                ws.belief(i, lane));
      stats.intra_errors += count_bit_errors(bits, ws.lane_decoded);
      stats.intra_bits += bits.size();
    }
  }
}

// Long haul for the active design (the first mt_use belief streams; the
// head is always antenna 0).  Symbol scaling: the solver's γ_b per unit
// ‖H‖²_F is ē_b/(N0·mt); with unit noise variance and the code's 1/√mt
// power split, scaling symbols by √(b·ē_b/N0) reproduces it exactly.
// Rate-1/2 designs transmit each symbol twice; divide the
// per-transmission energy by the symbol weight so the *per-bit*
// received energy equals ē_b.  Degraded blocks chunk into the smaller
// code's sub-blocks (K divides evenly down the whole G4 → G3 →
// Alamouti → SISO ladder).
void CoopHopBlockKernel::long_haul_lane(HopBatchWorkspace& ws,
                                        std::size_t lane,
                                        const StbcDecoder& decoder_use,
                                        Rng& channel_rng,
                                        AwgnChannel& long_haul_noise,
                                        AwgnChannel& local_noise) const {
  const StbcCode& code_use = decoder_use.code();
  const auto mt_use = static_cast<unsigned>(code_use.num_tx());
  const std::size_t k_use = code_use.symbols_per_block();
  const std::size_t t_use = code_use.block_length();
  const std::size_t sub_bits = k_use * static_cast<std::size_t>(b_);
  const double sym_scale = std::sqrt(static_cast<double>(b_) * ebar_ / n0_ /
                                     code_use.symbol_weight());
  LinkWorkspace& lw = ws.link.lane_ws;
  lw.configure(code_use, mr_);
  if (ws.lane_ant_syms.size() < mt_use) ws.lane_ant_syms.resize(mt_use);
  std::uint8_t* decoded_out = ws.decoded_lane(lane);
  for (std::size_t sub = 0; sub < bits_per_block_; sub += sub_bits) {
    // --- Step 2: every antenna encodes its own belief; the receive
    // cluster observes the superposition through H plus unit noise.
    for (unsigned i = 0; i < mt_use; ++i) {
      std::vector<cplx>& syms = ws.lane_ant_syms[i];
      modem_->modulate_into({ws.belief(i, lane) + sub, sub_bits}, syms);
      for (auto& v : syms) v *= sym_scale;
    }
    random_gaussian_into(lw.h, channel_rng);
    // Every antenna column carries its own (possibly mis-decoded)
    // belief, so the block is assembled per antenna instead of via
    // encode_into; products associate exactly as the batched
    // stbc_encode_multi kernel, so sums round identically.
    for (std::size_t t = 0; t < t_use; ++t) {
      for (unsigned i = 0; i < mt_use; ++i) {
        cplx c_ti{0.0, 0.0};
        for (std::size_t k = 0; k < k_use; ++k) {
          c_ti += code_use.coeff_a(t, i, k) * ws.lane_ant_syms[i][k] +
                  code_use.coeff_b(t, i, k) *
                      std::conj(ws.lane_ant_syms[i][k]);
        }
        lw.encoded(t, i) = c_ti * code_use.power_scale();
      }
    }
    multiply_transposed_into(lw.encoded, lw.h, lw.received);
    for (std::size_t t = 0; t < t_use; ++t) {
      for (unsigned j = 0; j < mr_; ++j) {
        lw.received(t, j) += long_haul_noise.sample();
      }
    }

    // --- Step 3: non-head receivers forward raw samples to the head
    // over local links (analog forwarding adds local noise); the head
    // then joint-decodes in place.
    for (unsigned j = 1; j < mr_; ++j) {
      for (std::size_t t = 0; t < t_use; ++t) {
        lw.received(t, j) += local_noise.sample() * sym_scale;
      }
    }

    decoder_use.decode_into(lw.h, lw.received, lw.estimates,
                            lw.decode_scratch);
    for (auto& v : lw.estimates) v /= sym_scale;
    modem_->demodulate_into(lw.estimates, lw.decoded);
    std::copy(lw.decoded.begin(), lw.decoded.end(), decoded_out + sub);
  }
}

void CoopHopBlockKernel::long_haul_batch(
    HopBatchWorkspace& ws, std::size_t count, const StbcDecoder& decoder_use,
    Rng* channel_rngs, AwgnChannel* long_haul_noises,
    AwgnChannel* local_noises, const simd::BatchKernels* kernels) const {
  const simd::BatchKernels& k =
      kernels ? *kernels : simd::active_kernels();
  const std::size_t W = count;
  COMIMO_CHECK(W == k.width && W >= 1 && W <= kMaxLanes,
               "count must equal the kernel table's lane width");
  COMIMO_CHECK(ws.width == W,
               "workspace width must match the kernel lane width");
  const StbcCode& code_use = decoder_use.code();
  const std::size_t mt_use = code_use.num_tx();
  const std::size_t k_use = code_use.symbols_per_block();
  const std::size_t t_use = code_use.block_length();
  const std::size_t sub_bits = k_use * static_cast<std::size_t>(b_);
  const double sym_scale = std::sqrt(static_cast<double>(b_) * ebar_ / n0_ /
                                     code_use.symbol_weight());
  ws.configure_long_haul(code_use, mr_, W, sub_bits);
  LinkBatchWorkspace& lb = ws.link;
  const cplx* coeff_a = code_use.coeff_a_flat().data();
  const cplx* coeff_b = code_use.coeff_b_flat().data();
  const std::size_t rows = 2 * t_use * mr_;
  const std::size_t cols = 2 * k_use;
  const int b = modem_->bits_per_symbol();

  for (std::size_t sub = 0; sub < bits_per_block_; sub += sub_bits) {
    // --- Step 2, W lanes wide.  Modulation stays scalar per lane (a
    // table lookup); unscaled symbols scatter into the per-antenna SoA
    // planes, then every arithmetic stage runs as vector ops whose
    // lanes round exactly like the scalar path above.
    for (std::size_t i = 0; i < mt_use; ++i) {
      for (std::size_t w = 0; w < W; ++w) {
        modem_->modulate_into({ws.belief(i, w) + sub, sub_bits},
                              lb.lane_ws.symbols);
        for (std::size_t s = 0; s < k_use; ++s) {
          ws.ant_sym_re[(i * k_use + s) * W + w] =
              lb.lane_ws.symbols[s].real();
          ws.ant_sym_im[(i * k_use + s) * W + w] =
              lb.lane_ws.symbols[s].imag();
        }
      }
    }
    k.scale(ws.ant_sym_re.data(), ws.ant_sym_im.data(), mt_use * k_use,
            sym_scale);
    simd::random_gaussian_fill_batch(lb.h_re.data(), lb.h_im.data(),
                                     mr_ * mt_use, W, channel_rngs, 1.0);
    k.stbc_encode_multi(coeff_a, coeff_b, t_use, mt_use, k_use,
                        code_use.power_scale(), ws.ant_sym_re.data(),
                        ws.ant_sym_im.data(), lb.enc_re.data(),
                        lb.enc_im.data());
    k.multiply_transposed(lb.enc_re.data(), lb.enc_im.data(), lb.h_re.data(),
                          lb.h_im.data(), lb.rx_re.data(), lb.rx_im.data(),
                          t_use, mt_use, mr_);
    // Noise stays scalar per lane: each lane's AwgnChannel must advance
    // exactly as in the scalar block, in the scalar element order —
    // row-major over (t, j) for the long haul…
    for (std::size_t w = 0; w < W; ++w) {
      for (std::size_t e = 0; e < t_use * mr_; ++e) {
        const cplx z = long_haul_noises[w].sample();
        lb.rx_re[e * W + w] += z.real();
        lb.rx_im[e * W + w] += z.imag();
      }
    }
    // …and column-major over (j, t) for the step-3 collection links
    // (the complex·double scale is componentwise, so adding the scaled
    // components reproduces `received += sample() * sym_scale` exactly).
    for (std::size_t w = 0; w < W; ++w) {
      for (unsigned j = 1; j < mr_; ++j) {
        for (std::size_t t = 0; t < t_use; ++t) {
          const cplx z = local_noises[w].sample();
          lb.rx_re[(t * mr_ + j) * W + w] += z.real() * sym_scale;
          lb.rx_im[(t * mr_ + j) * W + w] += z.imag() * sym_scale;
        }
      }
    }

    // ML decode: the F/y build and the normal-equation dot products are
    // vectorized; the pivoted solve is data-dependent per lane, so each
    // lane's gram/rhs is extracted and solved with the scalar
    // eliminator — the exact code path (and bits) of
    // StbcDecoder::decode_into.
    k.stbc_build_fy(coeff_a, coeff_b, t_use, mt_use, k_use, mr_,
                    code_use.power_scale(), lb.h_re.data(), lb.h_im.data(),
                    lb.rx_re.data(), lb.rx_im.data(), lb.f.data(),
                    lb.y.data());
    k.gram_rhs(lb.f.data(), lb.y.data(), rows, cols, lb.gram.data(),
               lb.rhs.data());
    StbcDecodeScratch& sc = lb.solve_scratch;
    for (std::size_t w = 0; w < W; ++w) {
      sc.gram.resize(cols, cols);
      sc.rhs.assign(cols, cplx{0.0, 0.0});
      for (std::size_t c1 = 0; c1 < cols; ++c1) {
        for (std::size_t c2 = 0; c2 < cols; ++c2) {
          sc.gram(c1, c2) = cplx{lb.gram[(c1 * cols + c2) * W + w], 0.0};
        }
        sc.rhs[c1] = cplx{lb.rhs[c1 * W + w], 0.0};
      }
      sc.gram.solve_into(sc.rhs, sc.x, sc.solve_work);
      for (std::size_t s = 0; s < k_use; ++s) {
        lb.est_re[s * W + w] = sc.x[2 * s].real();
        lb.est_im[s * W + w] = sc.x[2 * s + 1].real();
      }
    }
    k.divide(lb.est_re.data(), lb.est_im.data(), k_use, sym_scale);

    // Hard demapping: BPSK keeps its sign rule, QAM runs the vector
    // distance argmin and unpacks labels MSB-first like demodulate_into.
    if (b == 1) {
      for (std::size_t w = 0; w < W; ++w) {
        std::uint8_t* dec_out = ws.decoded_lane(w) + sub;
        for (std::size_t s = 0; s < k_use; ++s) {
          dec_out[s] = bpsk_hard_bit(lb.est_re[s * W + w]);
        }
      }
    } else {
      const std::vector<cplx>& points = modem_->constellation();
      k.qam_nearest(lb.est_re.data(), lb.est_im.data(), k_use, points.data(),
                    points.size(), lb.labels.data());
      for (std::size_t w = 0; w < W; ++w) {
        std::uint8_t* dec_out = ws.decoded_lane(w) + sub;
        std::size_t pos = 0;
        for (std::size_t s = 0; s < k_use; ++s) {
          const std::uint32_t label = lb.labels[s * W + w];
          for (int bit = b - 1; bit >= 0; --bit) {
            dec_out[pos++] = static_cast<std::uint8_t>((label >> bit) & 1u);
          }
        }
      }
    }
  }
}

void CoopHopBlockKernel::run_group_serial(HopBatchWorkspace& ws,
                                          const std::uint8_t* payload,
                                          std::size_t blk0, std::size_t count,
                                          std::uint64_t seed,
                                          const StbcDecoder& decoder_use,
                                          GroupStats* lane_stats) const {
  COMIMO_CHECK(count >= 1 && count <= kMaxLanes && count <= ws.width,
               "group must fit the configured lane width");
  LaneStreams streams(seed, local_noise_var_, blk0, count);
  for (std::size_t w = 0; w < count; ++w) {
    broadcast_lane(ws, w,
                   {payload + (blk0 + w) * bits_per_block_, bits_per_block_},
                   streams.local[w], lane_stats[w]);
    long_haul_lane(ws, w, decoder_use, streams.channel[w],
                   streams.long_haul[w], streams.local[w]);
  }
}

void CoopHopBlockKernel::run_group_batch(
    HopBatchWorkspace& ws, const std::uint8_t* payload, std::size_t blk0,
    std::size_t count, std::uint64_t seed, const StbcDecoder& decoder_use,
    GroupStats* lane_stats, const simd::BatchKernels* kernels) const {
  COMIMO_CHECK(count >= 1 && count <= kMaxLanes && count <= ws.width,
               "group must fit the configured lane width");
  LaneStreams streams(seed, local_noise_var_, blk0, count);
  for (std::size_t w = 0; w < count; ++w) {
    broadcast_lane(ws, w,
                   {payload + (blk0 + w) * bits_per_block_, bits_per_block_},
                   streams.local[w], lane_stats[w]);
  }
  long_haul_batch(ws, count, decoder_use, streams.channel, streams.long_haul,
                  streams.local, kernels);
}

namespace {

/// Pushes `payload` through one hop; returns the bits the receiving
/// head decodes and fills the result's error statistics relative to
/// the payload.  With `faults.enabled` the long-haul block can be
/// erased (→ retransmission, fresh channel and noise per attempt) and a
/// co-transmitter can drop out mid-transfer (→ the remaining antennas
/// fall one STBC ladder step, reusing the plan's ē_b).
///
/// Blocks run in groups of the pinned SIMD lane width, groups in
/// parallel across `pool`: every block derives all of its randomness
/// from counter-based streams keyed by (seed, block index), and
/// per-block outputs merge in block order, so the hop result is
/// bit-identical on 1 or N workers — and, because each batch lane
/// reproduces the scalar block's bits exactly, identical at every SIMD
/// tier and group width too.
BitVec run_hop(const UnderlayHopPlan& plan, const BitVec& payload,
               double local_snr_db, std::uint64_t seed,
               const HopFaultConfig& faults, CoopHopSimResult& result,
               ThreadPool* pool) {
  COMIMO_CHECK(plan.b >= 1 && plan.b <= 8,
               "waveform simulation supports b in 1..8");
  COMIMO_CHECK(!payload.empty(), "need bits to send");
  if (faults.enabled) {
    COMIMO_CHECK(faults.block_erasure_prob >= 0.0 &&
                     faults.block_erasure_prob < 1.0,
                 "block erasure probability must be in [0, 1)");
    COMIMO_CHECK(faults.max_attempts >= 1, "need at least one attempt");
  }
  const unsigned mt = plan.config.mt;
  const obs::SpanTimer hop_span("coophop.hop", hop_obs().hop_wall_s);

  const CoopHopBlockKernel kernel(plan, local_snr_db);
  const std::size_t bits_per_block = kernel.bits_per_block();
  const StbcDecoder& decoder_full = kernel.decoder_full();
  // Decoders are immutable and shared across blocks; build them once per
  // hop instead of once per block.  The fault path can drop one
  // co-transmitter, so the degraded design is prebuilt as well.
  std::optional<StbcDecoder> decoder_degraded;
  if (faults.enabled && mt > 1) {
    decoder_degraded.emplace(StbcCode::for_antennas(mt - 1));
  }

  const BitVec padded = pad_to_multiple(payload, bits_per_block);
  const std::size_t num_blocks = padded.size() / bits_per_block;

  // Per-block output slots, merged in block order after the fan-out.
  struct BlockOut {
    BitVec decoded;
    std::size_t intra_errors = 0;
    std::size_t intra_bits = 0;
    bool erased = false;  ///< RLNC mode: this block's one send was lost
    HopResilienceStats res;
  };
  std::vector<BlockOut> outs(num_blocks);

  // Blocks travel in groups of the pinned SIMD lane width.  A group
  // whose lanes share one control flow — no faults, or RLNC mode with a
  // uniform degrade state (the dropout predicate is monotone in the
  // block index, so only the group straddling dropout_block mixes) —
  // runs the W-wide long haul; everything else (ARQ retransmission
  // divergence, ragged tails, the mixed group) takes the bit-identical
  // lane-serial path.
  const std::size_t group =
      std::max<std::size_t>(std::size_t{1}, simd::batch_width());
  const std::size_t num_groups = (num_blocks + group - 1) / group;

  const auto run_group = [&](std::size_t g) {
    const std::size_t blk0 = g * group;
    const std::size_t count = std::min(group, num_blocks - blk0);
    // One arena per worker thread, reused for every group the thread
    // executes; each group fully overwrites what it reads.
    thread_local HopBatchWorkspace ws;
    kernel.prepare_batch(ws, group);

    bool batchable = count == group && group > 1;
    bool degrade_all = false;
    if (batchable && faults.enabled) {
      if (!faults.rlnc) {
        batchable = false;  // ARQ attempt counts diverge per lane
      } else {
        const bool first = blk0 >= faults.dropout_block && mt > 1;
        const bool last = blk0 + count - 1 >= faults.dropout_block && mt > 1;
        batchable = first == last;
        degrade_all = first;
      }
    }

    if (batchable) {
      CoopHopBlockKernel::GroupStats
          lane_stats[CoopHopBlockKernel::kMaxLanes]{};
      kernel.run_group_batch(ws, padded.data(), blk0, count, seed,
                             degrade_all ? *decoder_degraded : decoder_full,
                             lane_stats);
      for (std::size_t w = 0; w < count; ++w) {
        const std::size_t blk = blk0 + w;
        BlockOut& slot = outs[blk];
        slot.intra_errors = lane_stats[w].intra_errors;
        slot.intra_bits = lane_stats[w].intra_bits;
        const std::uint8_t* dec = ws.decoded_lane(w);
        slot.decoded.assign(dec, dec + bits_per_block);
        if (faults.enabled) {  // RLNC mode here by construction
          if (degrade_all) ++slot.res.degraded_blocks;
          ++slot.res.blocks;
          Rng fault_rng(faults.seed, 0xFA000 + blk);
          slot.erased = fault_rng.bernoulli(faults.block_erasure_prob);
        }
      }
      return;
    }

    // Lane-serial path: the historical per-block flow, one lane per
    // block (each block owns its streams, so running the group's
    // blocks sequentially is the original schedule).
    LaneStreams streams(seed, kernel.local_noise_var(), blk0, count);
    for (std::size_t w = 0; w < count; ++w) {
      const std::size_t blk = blk0 + w;
      BlockOut& slot = outs[blk];
      Rng fault_rng(faults.seed, 0xFA000 + blk);

      CoopHopBlockKernel::GroupStats st;
      kernel.broadcast_lane(
          ws, w, {padded.data() + blk * bits_per_block, bits_per_block},
          streams.local[w], st);
      slot.intra_errors = st.intra_errors;
      slot.intra_bits = st.intra_bits;

      if (!faults.enabled) {
        kernel.long_haul_lane(ws, w, decoder_full, streams.channel[w],
                              streams.long_haul[w], streams.local[w]);
        const std::uint8_t* dec = ws.decoded_lane(w);
        slot.decoded.assign(dec, dec + bits_per_block);
      } else if (faults.rlnc) {
        // Coded repair mode: one send, one erasure draw, no retries —
        // the serial per-generation repair pass below rebuilds erased
        // blocks.
        const bool degrade = blk >= faults.dropout_block && mt > 1;
        if (degrade) ++slot.res.degraded_blocks;
        ++slot.res.blocks;
        kernel.long_haul_lane(ws, w,
                              degrade ? *decoder_degraded : decoder_full,
                              streams.channel[w], streams.long_haul[w],
                              streams.local[w]);
        slot.erased = fault_rng.bernoulli(faults.block_erasure_prob);
        const std::uint8_t* dec = ws.decoded_lane(w);
        slot.decoded.assign(dec, dec + bits_per_block);
      } else {
        const bool degrade = blk >= faults.dropout_block && mt > 1;
        if (degrade) ++slot.res.degraded_blocks;
        ++slot.res.blocks;
        const StbcDecoder& decoder_use =
            degrade ? *decoder_degraded : decoder_full;
        bool got_through = false;
        unsigned attempts = 0;
        while (attempts < faults.max_attempts) {
          kernel.long_haul_lane(ws, w, decoder_use, streams.channel[w],
                                streams.long_haul[w], streams.local[w]);
          ++attempts;
          if (!fault_rng.bernoulli(faults.block_erasure_prob)) {
            got_through = true;
            break;
          }
        }
        if (attempts > 1) ++slot.res.retransmitted_blocks;
        if (got_through) {
          const std::uint8_t* dec = ws.decoded_lane(w);
          slot.decoded.assign(dec, dec + bits_per_block);
        } else {
          slot.decoded.assign(bits_per_block, 0);  // never arrived
          ++slot.res.lost_blocks;
        }
      }
    }
  };

  parallel_for(pool ? *pool : ThreadPool::shared(), num_groups, run_group);

  // RLNC repair pass (serial, post-merge-order, pool-size independent):
  // each generation of consecutive blocks is a rank-tracking decoder —
  // received blocks contribute systematic rows, and coded repair
  // packets (dense GF(256) rows, themselves subject to erasure) top the
  // rank up.  A completed generation rebuilds every erased block from
  // the combinations; an incomplete one zeroes them as lost.
  if (faults.enabled && faults.rlnc && num_blocks > 0) {
    const std::size_t gen_size =
        std::max<std::size_t>(std::size_t{1}, faults.rlnc_generation);
    for (std::size_t g0 = 0, gen = 0; g0 < num_blocks;
         g0 += gen_size, ++gen) {
      const std::size_t n = std::min(gen_size, num_blocks - g0);
      coding::RlncConfig code_cfg;
      code_cfg.generation_size = n;
      code_cfg.packet_bytes = 0;  // rank bookkeeping only
      coding::RlncDecoder dec(code_cfg);
      bool any_erased = false;
      coding::CodedPacket pkt;
      for (std::size_t i = 0; i < n; ++i) {
        if (outs[g0 + i].erased) {
          any_erased = true;
          continue;
        }
        pkt.coeffs.assign(n, 0);
        pkt.coeffs[i] = 1;
        pkt.payload.clear();
        (void)dec.add(pkt);
      }
      if (!any_erased) continue;
      Rng repair_rng(faults.seed, 0x4EC0DE + gen);
      unsigned repairs = 0;
      while (!dec.complete() && repairs < faults.rlnc_max_overhead) {
        ++repairs;
        // The repair packet rides the same channel as the data blocks.
        if (repair_rng.bernoulli(faults.block_erasure_prob)) continue;
        pkt.coeffs.assign(n, 0);
        pkt.payload.clear();
        bool any = false;
        for (std::size_t i = 0; i < n; ++i) {
          pkt.coeffs[i] =
              coding::draw_coefficient(code_cfg.field, repair_rng);
          any = any || pkt.coeffs[i] != 0;
        }
        if (!any) pkt.coeffs[0] = 1;
        (void)dec.add(pkt);
      }
      result.resilience.repair_blocks += repairs;
      for (std::size_t i = 0; i < n; ++i) {
        BlockOut& slot = outs[g0 + i];
        if (!slot.erased) continue;
        if (dec.complete()) {
          // Recovered: the block's decoded waveform bits stand.
          ++result.resilience.recovered_blocks;
        } else {
          slot.decoded.assign(bits_per_block, 0);
          ++slot.res.lost_blocks;
        }
      }
    }
  }

  BitVec out;
  out.reserve(padded.size());
  std::size_t intra_errors = 0;
  std::size_t intra_bits = 0;
  for (BlockOut& slot : outs) {
    out.insert(out.end(), slot.decoded.begin(), slot.decoded.end());
    intra_errors += slot.intra_errors;
    intra_bits += slot.intra_bits;
    result.resilience.blocks += slot.res.blocks;
    result.resilience.retransmitted_blocks += slot.res.retransmitted_blocks;
    result.resilience.degraded_blocks += slot.res.degraded_blocks;
    result.resilience.lost_blocks += slot.res.lost_blocks;
  }

  out.resize(payload.size());
  result.bits = payload.size();
  result.bit_errors = count_bit_errors(payload, out);
  result.ber = static_cast<double>(result.bit_errors) /
               static_cast<double>(payload.size());
  result.target_ber = plan.config.ber;
  result.intra_error_rate =
      intra_bits ? static_cast<double>(intra_errors) /
                       static_cast<double>(intra_bits)
                 : 0.0;
  HopObs& o = hop_obs();
  o.blocks.add(num_blocks);
  o.retransmitted.add(result.resilience.retransmitted_blocks);
  o.lost.add(result.resilience.lost_blocks);
  o.repairs.add(result.resilience.repair_blocks);
  o.recovered.add(result.resilience.recovered_blocks);
  o.hop_ber.observe(result.ber);
  return out;
}

}  // namespace

CoopHopSimResult simulate_cooperative_hop(const CoopHopSimConfig& config) {
  COMIMO_CHECK(config.bits >= 1, "need bits to send");
  const BitVec payload = random_bits(config.bits, config.seed ^ 0xB17);
  CoopHopSimResult result;
  (void)run_hop(config.plan, payload, config.local_snr_db, config.seed,
                config.faults, result, config.pool);
  return result;
}

RouteSimResult simulate_route(const std::vector<UnderlayHopPlan>& plans,
                              std::size_t bits, double local_snr_db,
                              std::uint64_t seed,
                              const HopFaultConfig& faults,
                              ThreadPool* pool) {
  COMIMO_CHECK(!plans.empty(), "route needs at least one hop");
  COMIMO_CHECK(bits >= 1, "need bits to send");
  const BitVec source = random_bits(bits, seed ^ 0xB17);
  BitVec current = source;
  RouteSimResult result;
  for (std::size_t i = 0; i < plans.size(); ++i) {
    CoopHopSimResult hop_result;
    current = run_hop(plans[i], current, local_snr_db,
                      seed + 0x9E37 * (i + 1), faults, hop_result, pool);
    result.hops.push_back(hop_result);
  }
  result.bits = bits;
  result.bit_errors = count_bit_errors(source, current);
  result.ber = static_cast<double>(result.bit_errors) /
               static_cast<double>(bits);
  return result;
}

}  // namespace comimo
