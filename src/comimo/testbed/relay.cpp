#include "comimo/testbed/relay.h"

#include <cmath>

#include "comimo/common/error.h"

namespace comimo {

DecodeForwardRelay::DecodeForwardRelay() = default;

BitVec DecodeForwardRelay::decode(std::span<const cplx> received,
                                  cplx channel_gain) const {
  const double mag = std::abs(channel_gain);
  COMIMO_CHECK(mag >= 0.0, "invalid channel gain");
  std::vector<cplx> equalized(received.begin(), received.end());
  if (mag > 0.0) {
    const cplx inv = std::conj(channel_gain) / (mag * mag);
    for (auto& s : equalized) s *= inv;
  }
  return modem_.demodulate(equalized);
}

std::vector<cplx> DecodeForwardRelay::relay(std::span<const cplx> received,
                                            cplx channel_gain) const {
  return modem_.modulate(decode(received, channel_gain));
}

}  // namespace comimo
