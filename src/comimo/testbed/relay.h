// Decode-and-forward relay node (the SU relays of Tables 2–3).
//
// The relay demodulates the BPSK stream with its own channel estimate,
// makes hard decisions, and re-modulates; decision errors therefore
// propagate, exactly as in the real testbed where the relay runs a full
// receive/transmit chain.
#pragma once

#include <vector>

#include "comimo/numeric/cmatrix.h"
#include "comimo/phy/modulation.h"

namespace comimo {

class DecodeForwardRelay {
 public:
  DecodeForwardRelay();

  /// Receives one packet's worth of symbols (already channel-corrupted),
  /// equalizes with the known per-packet gain, decodes, and returns the
  /// re-modulated clean constellation symbols of its decisions.
  [[nodiscard]] std::vector<cplx> relay(std::span<const cplx> received,
                                        cplx channel_gain) const;

  /// The relay's hard bit decisions (exposed for error accounting).
  [[nodiscard]] BitVec decode(std::span<const cplx> received,
                              cplx channel_gain) const;

 private:
  BpskModulator modem_;
};

}  // namespace comimo
