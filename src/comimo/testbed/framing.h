// Packet framing of the simulated testbed.
//
// Frame layout (bytes): preamble (8×0xAA) | sync (0x2D,0xD4) | length (2,
// big-endian) | sequence (2) | payload | CRC-32 (4).  The receiver in the
// simulation is frame-aligned (a real GNU Radio chain recovers alignment
// from the preamble correlator); the CRC decides packet success, which is
// exactly how the paper counts PER.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "comimo/phy/modulation.h"

namespace comimo {

struct Packet {
  std::uint16_t sequence = 0;
  std::vector<std::uint8_t> payload;
};

struct FramingConfig {
  std::size_t preamble_bytes = 8;
  std::uint8_t preamble_byte = 0xAA;
  std::uint8_t sync0 = 0x2D;
  std::uint8_t sync1 = 0xD4;
  std::size_t max_payload = 4096;
};

class Framer {
 public:
  explicit Framer(const FramingConfig& config = {});

  /// Serializes a packet to on-air bits (MSB first).
  [[nodiscard]] BitVec frame(const Packet& packet) const;

  /// Parses a frame-aligned bit stream.  Returns the packet when the
  /// sync word matches, the length is sane and the CRC verifies;
  /// nullopt otherwise (a lost packet).
  [[nodiscard]] std::optional<Packet> parse(
      std::span<const std::uint8_t> bits) const;

  /// On-air size in bits of a frame with `payload_bytes` of payload.
  [[nodiscard]] std::size_t frame_bits(std::size_t payload_bytes) const;

  [[nodiscard]] const FramingConfig& config() const noexcept {
    return config_;
  }

 private:
  FramingConfig config_;
};

}  // namespace comimo
