#include "comimo/testbed/experiments.h"

#include <algorithm>
#include <cmath>

#include "comimo/channel/awgn.h"
#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/interweave/pair_beamformer.h"
#include "comimo/phy/detector.h"
#include "comimo/testbed/channel_estimator.h"
#include "comimo/testbed/framing.h"
#include "comimo/testbed/relay.h"

namespace comimo {

cplx rician_coefficient(Rng& rng, double k, double mean_power) {
  COMIMO_CHECK(k >= 0.0 && mean_power >= 0.0, "invalid Rician parameters");
  const double los_mag = std::sqrt(mean_power * k / (k + 1.0));
  const double phase = rng.uniform(0.0, 2.0 * kPi);
  const cplx los{los_mag * std::cos(phase), los_mag * std::sin(phase)};
  return los + rng.complex_gaussian(mean_power / (k + 1.0));
}

// ---------------------------------------------------------------------
// Overlay BER (Tables 2–3)
// ---------------------------------------------------------------------

OverlayBerResult run_overlay_ber(const OverlayBerConfig& cfg) {
  COMIMO_CHECK(cfg.total_bits >= 1, "need bits to send");
  COMIMO_CHECK(cfg.packet_bits >= 1, "invalid packet size");
  COMIMO_CHECK(!cfg.relays.empty(), "need at least one relay");

  const BpskModulator modem;
  const DecodeForwardRelay relay;
  Rng rng(cfg.seed);
  AwgnChannel noise(1.0, Rng(cfg.seed, 0xA0A0));  // N0 = 1 reference

  // Known pilot waveform shared by all branches (a preamble).
  const std::vector<cplx> pilot_syms =
      cfg.pilot_symbols > 0
          ? modem.modulate(
                random_bits(cfg.pilot_symbols, cfg.seed ^ 0xB11075ULL))
          : std::vector<cplx>{};
  // Returns the gain the receiver *uses*: the truth under genie CSI,
  // or the LS estimate from a fresh pilot transmission through `h`.
  const auto observed_gain = [&](const cplx& h) {
    if (cfg.pilot_symbols == 0) return h;
    std::vector<cplx> rx(pilot_syms.size());
    for (std::size_t i = 0; i < rx.size(); ++i) {
      rx[i] = h * pilot_syms[i] + noise.sample();
    }
    return estimate_gain(pilot_syms, rx);
  };

  const double direct_power = db_to_linear(cfg.direct_snr_db);
  OverlayBerResult result;
  result.relay_ber.assign(cfg.relays.size(), 0.0);
  std::vector<std::size_t> relay_errors(cfg.relays.size(), 0);

  std::size_t sent = 0;
  while (sent < cfg.total_bits) {
    const std::size_t n = std::min(cfg.packet_bits, cfg.total_bits - sent);
    const BitVec bits = random_bits(n, cfg.seed ^ (sent * 0x9E3779B9ULL));
    const std::vector<cplx> x = modem.modulate(bits);

    // Phase 1: Pt broadcasts; Pr and every relay listen on independent
    // block-fading channels.
    const cplx h_direct =
        rician_coefficient(rng, cfg.rician_k, direct_power);
    std::vector<cplx> y_direct(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      y_direct[i] = h_direct * x[i] + noise.sample();
    }

    // Draw both fading legs of every relay for this packet (the heads
    // know the channel state, §2.3).
    std::vector<cplx> g_leg(cfg.relays.size());
    std::vector<cplx> q_leg(cfg.relays.size());
    for (std::size_t r = 0; r < cfg.relays.size(); ++r) {
      g_leg[r] = rician_coefficient(
          rng, cfg.rician_k, db_to_linear(cfg.relays[r].pt_relay_db));
      q_leg[r] = rician_coefficient(
          rng, cfg.rician_k, db_to_linear(cfg.relays[r].relay_pr_db));
    }
    // Relay selection (extension): keep only the best-k relays by
    // instantaneous bottleneck SNR; 0 keeps all (the paper's setup).
    std::vector<bool> active(cfg.relays.size(), true);
    if (cfg.max_active_relays > 0 &&
        cfg.max_active_relays < cfg.relays.size()) {
      std::vector<std::size_t> order(cfg.relays.size());
      for (std::size_t r = 0; r < order.size(); ++r) order[r] = r;
      const auto utility = [&](std::size_t r) {
        return std::min(std::norm(g_leg[r]), std::norm(q_leg[r]));
      };
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return utility(a) > utility(b);
                });
      active.assign(cfg.relays.size(), false);
      for (unsigned k = 0; k < cfg.max_active_relays; ++k) {
        active[order[k]] = true;
      }
    }

    // Branch set for the combiner: direct first, then one per active
    // relay (gains as the receiver knows them).
    std::vector<std::vector<cplx>> branches{y_direct};
    std::vector<cplx> gains{observed_gain(h_direct)};

    for (std::size_t r = 0; r < cfg.relays.size(); ++r) {
      // Phase-1 reception happens at every relay regardless of
      // selection (listening is how the relay would forward at all).
      const cplx g = g_leg[r];
      std::vector<cplx> y_relay(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        y_relay[i] = g * x[i] + noise.sample();
      }
      const BitVec relay_bits = relay.decode(y_relay, observed_gain(g));
      relay_errors[r] += count_bit_errors(bits, relay_bits);
      if (!active[r]) continue;
      const std::vector<cplx> x_fwd = modem.modulate(relay_bits);

      // Phase 2 (slot r): the selected relay forwards to Pr.
      const cplx q = q_leg[r];
      std::vector<cplx> z(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        z[i] = q * x_fwd[i] + noise.sample();
      }
      branches.push_back(std::move(z));
      gains.push_back(observed_gain(q));
      ++result.relay_transmissions;
    }

    // Cooperative decision: combine all observations.
    const std::vector<cplx> combined =
        combine(cfg.combiner, branches, gains);
    const BitVec coop_bits = modem.demodulate(combined);
    result.errors_cooperative += count_bit_errors(bits, coop_bits);

    // Non-cooperative decision: direct observation only (coherent).
    const std::vector<cplx> direct_only =
        combine(cfg.combiner, {branches.front()},
                std::vector<cplx>{gains.front()});
    const BitVec direct_bits = modem.demodulate(direct_only);
    result.errors_direct += count_bit_errors(bits, direct_bits);

    sent += n;
  }

  result.bits = sent;
  result.ber_cooperative =
      static_cast<double>(result.errors_cooperative) / sent;
  result.ber_direct = static_cast<double>(result.errors_direct) / sent;
  for (std::size_t r = 0; r < cfg.relays.size(); ++r) {
    result.relay_ber[r] = static_cast<double>(relay_errors[r]) / sent;
  }
  return result;
}

OverlayBerConfig table2_single_relay_config(std::uint64_t seed) {
  OverlayBerConfig cfg;
  cfg.total_bits = 100000;
  // Calibration: equilateral 2 m triangle with a thick board between Pt
  // and Pr — the obstructed direct link sits near 1 dB mean SNR (≈11%
  // Rician BER), the two unobstructed relay legs near 8.5 dB.
  cfg.direct_snr_db = 1.2;
  cfg.relays = {RelayLinkSnr{8.5, 8.5}};
  cfg.rician_k = 2.0;
  cfg.seed = seed;
  return cfg;
}

OverlayBerConfig table3_multi_relay_config(unsigned num_relays,
                                           std::uint64_t seed) {
  OverlayBerConfig cfg;
  cfg.total_bits = 100000;
  // Calibration: >30 ft, multiple concrete walls — direct link ≈ −4 dB
  // (≈23% BER).  A single mid-corridor relay has mediocre legs; three
  // uniformly spaced relays see progressively different leg qualities
  // (closer to Pt → better first leg, worse second).
  cfg.direct_snr_db = -4.4;
  cfg.rician_k = 2.0;
  cfg.seed = seed;
  cfg.relays.clear();
  if (num_relays <= 1) {
    cfg.relays.push_back(RelayLinkSnr{3.2, 3.2});
  } else {
    for (unsigned r = 0; r < num_relays; ++r) {
      // Linear interpolation of leg quality along the corridor.
      const double frac = (r + 1.0) / (num_relays + 1.0);
      const double pt_leg = 9.5 - 6.5 * frac;   // 9.5 → 3.0 dB
      const double pr_leg = 3.0 + 6.5 * frac;   // 3.0 → 9.5 dB
      cfg.relays.push_back(RelayLinkSnr{pt_leg, pr_leg});
    }
  }
  return cfg;
}

// ---------------------------------------------------------------------
// Underlay PER (Table 4)
// ---------------------------------------------------------------------

UnderlayPerResult run_underlay_per(const UnderlayPerConfig& cfg) {
  COMIMO_CHECK(cfg.num_packets >= 1, "need packets");
  COMIMO_CHECK(cfg.amplitude > 0.0 && cfg.reference_amplitude > 0.0,
               "amplitudes must be positive");
  const GmskModem modem(cfg.gmsk);
  const Framer framer;
  Rng fading_rng(cfg.seed);
  AwgnChannel noise(1.0, Rng(cfg.seed, 0xBEEF));

  const double amp_scale = cfg.amplitude / cfg.reference_amplitude;
  const double mean_power =
      db_to_linear(cfg.snr_at_reference_db) * amp_scale * amp_scale;

  const SyntheticImage image =
      make_test_image(cfg.num_packets, cfg.packet_bytes);
  const std::vector<Packet> packets = packetize(image, cfg.packet_bytes);

  UnderlayPerResult result;
  std::vector<Packet> received;
  for (const auto& pkt : packets) {
    const BitVec tx_bits = framer.frame(pkt);
    const std::vector<cplx> s = modem.modulate(tx_bits);

    // Block fading per packet per transmitter; the cooperative case
    // superposes two faded copies of the same waveform (two co-located
    // USRPs transmitting simultaneously).  Their LOS components share a
    // phase up to a small jitter — the transmitters sit next to each
    // other — while the scattered parts stay independent.
    cplx h = rician_coefficient(fading_rng, cfg.rician_k, mean_power);
    if (cfg.cooperative) {
      const double jitter =
          fading_rng.gaussian(0.0, cfg.coop_phase_jitter_rad);
      const cplx rot{std::cos(jitter), std::sin(jitter)};
      // Align the second LOS with the first: rotate a fresh draw so its
      // LOS phase matches h's dominant phase, then apply the jitter.
      const double k = cfg.rician_k;
      const double los_mag = std::sqrt(mean_power * k / (k + 1.0));
      const double h_phase = std::arg(h);
      const cplx los2{los_mag * std::cos(h_phase),
                      los_mag * std::sin(h_phase)};
      const cplx scatter2 =
          fading_rng.complex_gaussian(mean_power / (k + 1.0));
      h += los2 * rot + scatter2;
    }
    std::vector<cplx> y(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      y[i] = h * s[i] + noise.sample();
    }
    // The differential GMSK detector needs no channel estimate (phase
    // cancels in the one-symbol difference).
    const BitVec rx_bits = modem.demodulate(y, tx_bits.size());
    if (auto parsed = framer.parse(rx_bits)) {
      received.push_back(std::move(*parsed));
    }
  }

  result.packets_sent = packets.size();
  result.packets_lost = packets.size() - received.size();
  result.per = static_cast<double>(result.packets_lost) /
               static_cast<double>(packets.size());
  result.reassembly = reassemble(image, received, cfg.packet_bytes);
  return result;
}

// ---------------------------------------------------------------------
// Interweave coexistence
// ---------------------------------------------------------------------

InterweaveCoexistenceResult run_interweave_coexistence(
    const InterweaveCoexistenceConfig& cfg) {
  COMIMO_CHECK(cfg.total_bits >= 1, "need bits");
  COMIMO_CHECK(cfg.null_residual >= 0.0 && cfg.null_residual <= 2.0,
               "null residual is an amplitude in [0, 2]");
  const BpskModulator modem;
  Rng rng(cfg.seed);
  AwgnChannel noise(1.0, Rng(cfg.seed, 0xCE));

  const double pu_amp = std::sqrt(db_to_linear(cfg.pu_snr_db));
  const double su_amp_at_pr = std::sqrt(db_to_linear(cfg.su_inr_db));
  const double su_amp_at_sr = std::sqrt(db_to_linear(cfg.su_link_snr_db));

  // The un-nulled pair adds two element fields of random relative
  // phase at Pr (amplitude up to 2 per element pair); the nulled pair
  // leaves only the residual.  Toward Sr the nulled pair combines
  // near-coherently (the Table-1 geometry) at ≈1.87× one element.
  const double nulled_gain_at_sr = 1.87;

  InterweaveCoexistenceResult result;
  std::size_t err_base = 0;
  std::size_t err_nulled = 0;
  std::size_t err_unnulled = 0;
  std::size_t err_sr = 0;
  const std::size_t block = 500;
  std::size_t sent = 0;
  while (sent < cfg.total_bits) {
    const std::size_t n = std::min(block, cfg.total_bits - sent);
    const BitVec pu_bits = random_bits(n, cfg.seed ^ (sent + 1));
    const BitVec su_bits = random_bits(n, cfg.seed ^ (0xF00D + sent));
    const auto pu_syms = modem.modulate(pu_bits);
    const auto su_syms = modem.modulate(su_bits);

    // Block-constant phases of the interfering element fields at Pr.
    const double phi1 = rng.uniform(0.0, 2.0 * kPi);
    const double phi2 = rng.uniform(0.0, 2.0 * kPi);
    const cplx e1{std::cos(phi1), std::sin(phi1)};
    const cplx e2{std::cos(phi2), std::sin(phi2)};
    const cplx unnulled_field = (e1 + e2) * su_amp_at_pr;
    const cplx nulled_field = e1 * (su_amp_at_pr * cfg.null_residual);

    for (std::size_t i = 0; i < n; ++i) {
      const cplx w = noise.sample();
      const cplx base = pu_syms[i] * pu_amp + w;
      const cplx with_null = base + nulled_field * su_syms[i];
      const cplx with_raw = base + unnulled_field * su_syms[i];
      const auto decide = [](const cplx& y) {
        return y.real() < 0.0 ? std::uint8_t{1} : std::uint8_t{0};
      };
      err_base += decide(base) != pu_bits[i];
      err_nulled += decide(with_null) != pu_bits[i];
      err_unnulled += decide(with_raw) != pu_bits[i];
      // The secondary link: the pair's combined field toward Sr plus
      // the PU's own interference (weak at Sr: assume symmetric INR).
      const cplx sr_rx = su_syms[i] * (su_amp_at_sr * nulled_gain_at_sr) +
                         pu_syms[i] * (su_amp_at_sr * 0.2) +
                         noise.sample();
      err_sr += decide(sr_rx) != su_bits[i];
    }
    sent += n;
  }
  const auto denom = static_cast<double>(cfg.total_bits);
  result.pr_ber_baseline = static_cast<double>(err_base) / denom;
  result.pr_ber_nulled = static_cast<double>(err_nulled) / denom;
  result.pr_ber_unnulled = static_cast<double>(err_unnulled) / denom;
  result.sr_ber_nulled = static_cast<double>(err_sr) / denom;
  return result;
}

// ---------------------------------------------------------------------
// Fig. 8 beam pattern
// ---------------------------------------------------------------------

double BeamPatternResult::null_residual() const {
  COMIMO_CHECK(!angles_deg.empty(), "empty result");
  // The caller designed the null; report the measured value at the grid
  // point nearest to it — the minimum of measured_coop is equivalent
  // for the paper's geometry.
  double best = measured_coop.front();
  for (const double v : measured_coop) best = std::min(best, v);
  return best;
}

BeamPatternResult run_beam_pattern(const BeamPatternConfig& cfg) {
  COMIMO_CHECK(cfg.step_deg > 0.0, "invalid step");
  COMIMO_CHECK(cfg.radius_m > 0.0, "invalid radius");
  const double d = cfg.element_spacing_wavelengths * cfg.wavelength_m;
  // Array on the x axis, centered at the origin; angles are measured
  // from the array axis (St1 → St2 = +x).
  const PairGeometry geom{Vec2{-d / 2.0, 0.0}, Vec2{d / 2.0, 0.0}};
  // A far "primary receiver" in the null direction fixes δ.
  const double null_rad = deg_to_rad(cfg.null_angle_deg);
  const Vec2 pu = geom.st1 + unit_vec(null_rad) * 1.0e4;
  const NullSteeringPair pair(geom, cfg.wavelength_m, pu);

  const BpskModulator modem;
  const double k = 2.0 * kPi / cfg.wavelength_m;
  const double snr = db_to_linear(cfg.snr_db);
  const double noise_var = 1.0 / snr;  // unit signal power reference

  BeamPatternResult result;
  std::size_t angle_idx = 0;
  for (double a = 0.0; a <= 180.0 + 1e-9; a += cfg.step_deg) {
    result.angles_deg.push_back(a);
    result.ideal.push_back(pair.far_field_amplitude(deg_to_rad(a)));

    Rng rng(cfg.seed, angle_idx++);
    AwgnChannel noise(noise_var, Rng(cfg.seed, 0xF00D + angle_idx));
    const Vec2 rx = unit_vec(deg_to_rad(a)) * cfg.radius_m;

    const BitVec bits = random_bits(cfg.bits_per_point, cfg.seed + angle_idx);
    const std::vector<cplx> s = modem.modulate(bits);

    // Per-element complex gain: imposed delay + exact propagation phase
    // + a scattered multipath component (what keeps the measured null
    // non-zero indoors).
    const auto element_gain = [&](const Vec2& el, double delta) {
      const double phase = delta - k * distance(el, rx);
      const cplx los{std::cos(phase), std::sin(phase)};
      return los + rng.complex_gaussian(cfg.multipath_scatter *
                                        cfg.multipath_scatter);
    };
    const cplx g1 = element_gain(geom.st1, pair.delta());
    const cplx g2 = element_gain(geom.st2, 0.0);

    double sum_coop = 0.0;
    double sum_siso = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      sum_coop += std::abs((g1 + g2) * s[i] + noise.sample());
      sum_siso += std::abs(g2 * s[i] + noise.sample());
    }
    result.measured_coop.push_back(sum_coop / static_cast<double>(s.size()));
    result.measured_siso.push_back(sum_siso / static_cast<double>(s.size()));
  }

  // Normalize both measured curves by the mean SISO level (the paper's
  // "normalized received signal amplitude").
  double siso_mean = 0.0;
  for (const double v : result.measured_siso) siso_mean += v;
  siso_mean /= static_cast<double>(result.measured_siso.size());
  if (siso_mean > 0.0) {
    for (auto& v : result.measured_coop) v /= siso_mean;
    for (auto& v : result.measured_siso) v /= siso_mean;
  }
  return result;
}

}  // namespace comimo
