#include "comimo/testbed/image.h"

#include <algorithm>
#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

SyntheticImage make_test_image(std::size_t packets,
                               std::size_t packet_bytes) {
  COMIMO_CHECK(packets >= 1 && packet_bytes >= 1, "empty image request");
  const std::size_t total = packets * packet_bytes;
  // Pick width ~ sqrt(total) and pad the height up; trim pixels to the
  // exact byte budget.
  const auto width = static_cast<std::size_t>(std::sqrt(
      static_cast<double>(total)));
  const std::size_t height = (total + width - 1) / width;
  SyntheticImage img;
  img.width = width;
  img.height = height;
  img.pixels.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t x = i % width;
    const std::size_t y = i / width;
    // Smooth diagonal gradient with a sinusoidal texture: any zeroed
    // packet region differs visibly from its surroundings.
    const double gradient =
        128.0 + 64.0 * std::sin(2.0 * kPi * static_cast<double>(x) /
                                static_cast<double>(width)) +
        32.0 * std::cos(2.0 * kPi * static_cast<double>(y) / 97.0);
    const double texture = 16.0 * std::sin(0.37 * static_cast<double>(x)) *
                           std::cos(0.23 * static_cast<double>(y));
    const double v = gradient + texture;
    img.pixels[i] = static_cast<std::uint8_t>(
        std::clamp(v, 0.0, 255.0));
  }
  return img;
}

std::vector<Packet> packetize(const SyntheticImage& image,
                              std::size_t packet_bytes) {
  COMIMO_CHECK(packet_bytes >= 1, "packet size must be positive");
  std::vector<Packet> packets;
  const std::size_t n = image.pixels.size();
  packets.reserve((n + packet_bytes - 1) / packet_bytes);
  std::uint16_t seq = 0;
  for (std::size_t off = 0; off < n; off += packet_bytes) {
    Packet p;
    p.sequence = seq++;
    const std::size_t len = std::min(packet_bytes, n - off);
    p.payload.assign(
        image.pixels.begin() + static_cast<std::ptrdiff_t>(off),
        image.pixels.begin() + static_cast<std::ptrdiff_t>(off + len));
    packets.push_back(std::move(p));
  }
  return packets;
}

ReassemblyReport reassemble(const SyntheticImage& original,
                            const std::vector<Packet>& received,
                            std::size_t packet_bytes) {
  COMIMO_CHECK(packet_bytes >= 1, "packet size must be positive");
  ReassemblyReport rpt;
  rpt.image.width = original.width;
  rpt.image.height = original.height;
  rpt.image.pixels.assign(original.pixels.size(), 0);
  rpt.packets_expected =
      (original.pixels.size() + packet_bytes - 1) / packet_bytes;

  for (const auto& p : received) {
    const std::size_t off = static_cast<std::size_t>(p.sequence) *
                            packet_bytes;
    if (off >= original.pixels.size()) continue;  // bogus sequence
    const std::size_t len =
        std::min(p.payload.size(), original.pixels.size() - off);
    std::copy(p.payload.begin(),
              p.payload.begin() + static_cast<std::ptrdiff_t>(len),
              rpt.image.pixels.begin() + static_cast<std::ptrdiff_t>(off));
    ++rpt.packets_received;
  }
  rpt.packet_error_rate =
      1.0 - static_cast<double>(rpt.packets_received) /
                static_cast<double>(rpt.packets_expected);

  double err = 0.0;
  for (std::size_t i = 0; i < original.pixels.size(); ++i) {
    err += std::abs(static_cast<double>(original.pixels[i]) -
                    static_cast<double>(rpt.image.pixels[i]));
  }
  rpt.mean_abs_error = err / static_cast<double>(original.pixels.size());
  return rpt;
}

}  // namespace comimo
