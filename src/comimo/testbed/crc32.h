// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the packet
// integrity check of the simulated testbed's framing layer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace comimo {

/// CRC-32 of `data` (init 0xFFFFFFFF, final XOR 0xFFFFFFFF).
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental interface for streaming use.
class Crc32 {
 public:
  void update(std::span<const std::uint8_t> data);
  void update(std::uint8_t byte);
  [[nodiscard]] std::uint32_t value() const noexcept { return ~state_; }
  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace comimo
