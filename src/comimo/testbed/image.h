// The "image file" of the underlay experiment (§6.4): 474 packets of
// 1500 bytes transmitted with GMSK.  We generate a deterministic
// synthetic grayscale image so that packet loss produces measurable
// distortion, mirroring the paper's "recovered and displayed with some
// distortions" observation.
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/testbed/framing.h"

namespace comimo {

struct SyntheticImage {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> pixels;  ///< row-major grayscale

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return pixels.size();
  }
};

/// Deterministic test image (smooth gradient + texture), sized to fill
/// exactly `packets × packet_bytes` bytes.
[[nodiscard]] SyntheticImage make_test_image(std::size_t packets = 474,
                                             std::size_t packet_bytes = 1500);

/// Splits the image into numbered packets of `packet_bytes` (the last
/// packet may be short).
[[nodiscard]] std::vector<Packet> packetize(const SyntheticImage& image,
                                            std::size_t packet_bytes = 1500);

/// Reassembles from the received subset; lost packets become zeroed
/// regions (the on-screen distortion).
struct ReassemblyReport {
  SyntheticImage image;
  std::size_t packets_expected = 0;
  std::size_t packets_received = 0;
  double packet_error_rate = 0.0;
  /// Mean absolute pixel error vs the original (0 = perfect).
  double mean_abs_error = 0.0;
  [[nodiscard]] bool recoverable() const noexcept {
    // The paper deems the image "recovered with some distortions" up to
    // roughly 15% loss and unrecoverable near total loss.
    return packet_error_rate < 0.5;
  }
};
[[nodiscard]] ReassemblyReport reassemble(
    const SyntheticImage& original, const std::vector<Packet>& received,
    std::size_t packet_bytes = 1500);

}  // namespace comimo
