#include "comimo/testbed/channel_estimator.h"

#include "comimo/common/error.h"

namespace comimo {

cplx estimate_gain(std::span<const cplx> pilots,
                   std::span<const cplx> received) {
  COMIMO_CHECK(!pilots.empty(), "need at least one pilot");
  COMIMO_CHECK(pilots.size() == received.size(),
               "pilot/received length mismatch");
  cplx num{0.0, 0.0};
  double den = 0.0;
  for (std::size_t i = 0; i < pilots.size(); ++i) {
    num += std::conj(pilots[i]) * received[i];
    den += std::norm(pilots[i]);
  }
  COMIMO_CHECK(den > 0.0, "pilots must carry energy");
  return num / den;
}

PilotEstimate estimate_gain_and_noise(std::span<const cplx> pilots,
                                      std::span<const cplx> received) {
  COMIMO_CHECK(pilots.size() >= 2, "need at least two pilots");
  PilotEstimate est;
  est.gain = estimate_gain(pilots, received);
  double residual = 0.0;
  double pilot_energy = 0.0;
  for (std::size_t i = 0; i < pilots.size(); ++i) {
    residual += std::norm(received[i] - est.gain * pilots[i]);
    pilot_energy += std::norm(pilots[i]);
  }
  // One complex parameter was fit: n−1 effective degrees of freedom.
  est.noise_variance =
      residual / static_cast<double>(pilots.size() - 1);
  est.gain_variance = est.noise_variance / pilot_energy;
  return est;
}

}  // namespace comimo
