#include "comimo/testbed/flowgraph.h"

#include "comimo/common/error.h"

namespace comimo {

Flowgraph& Flowgraph::add(std::unique_ptr<SampleBlock> block) {
  COMIMO_CHECK(block != nullptr, "null block");
  blocks_.push_back(std::move(block));
  return *this;
}

std::vector<cplx> Flowgraph::run(std::vector<cplx> input) {
  for (auto& b : blocks_) {
    input = b->process(std::move(input));
  }
  return input;
}

std::string Flowgraph::describe() const {
  std::string out;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (i) out += " -> ";
    out += blocks_[i]->name();
  }
  return out;
}

}  // namespace comimo
