// The simulated USRP/GNU Radio experiments of §6.4.
//
// These harnesses substitute for the paper's indoor 2.45 GHz testbed
// (see DESIGN.md §4): the same signal chains — BPSK with decode-and-
// forward relays and equal-gain combining for the overlay tables, GMSK
// packet transfer for the underlay table, a two-element transmit
// beamformer for Fig. 8 — run over a Rician block-fading channel whose
// mean SNRs are calibrated so the *non-cooperative baselines* land near
// the paper's numbers; the cooperative gains then emerge from the
// mechanisms themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/phy/combining.h"
#include "comimo/phy/gmsk.h"
#include "comimo/testbed/image.h"

namespace comimo {

// ---------------------------------------------------------------------
// Overlay BER experiments (Tables 2 and 3)
// ---------------------------------------------------------------------

/// One relay's two link qualities.
struct RelayLinkSnr {
  double pt_relay_db = 12.0;  ///< Pt → relay mean symbol SNR
  double relay_pr_db = 12.0;  ///< relay → Pr mean symbol SNR
};

struct OverlayBerConfig {
  std::size_t total_bits = 100000;   ///< the paper's 100 000 binary digits
  std::size_t packet_bits = 1000;    ///< block-fading granularity
  double direct_snr_db = 2.0;        ///< Pt → Pr (obstructed) mean SNR
  std::vector<RelayLinkSnr> relays{RelayLinkSnr{}};
  double rician_k = 2.0;             ///< indoor K-factor of every link
  CombinerKind combiner = CombinerKind::kEqualGain;  ///< §6.4's choice
  /// Per-packet relay selection (an extension beyond the paper's
  /// always-on relays): only the `max_active_relays` relays with the
  /// best instantaneous bottleneck SNR min(|g|², |q|²) forward in
  /// phase 2.  0 = all relays forward (the paper's behaviour).
  unsigned max_active_relays = 0;
  /// Channel knowledge: 0 = genie CSI (the paper's "H assumed known");
  /// > 0 = every receiver estimates each branch gain from this many
  /// BPSK pilot symbols per packet (the preamble's job on the real
  /// testbed).
  unsigned pilot_symbols = 0;
  std::uint64_t seed = 1;
};

struct OverlayBerResult {
  double ber_cooperative = 0.0;
  double ber_direct = 0.0;
  std::size_t bits = 0;
  std::size_t errors_cooperative = 0;
  std::size_t errors_direct = 0;
  /// Raw decision BER at each relay (diagnostics).
  std::vector<double> relay_ber;
  /// Total number of phase-2 relay transmissions actually made — the
  /// energy proxy relay selection optimizes.
  std::size_t relay_transmissions = 0;
};

/// Runs one experiment: phase 1 broadcasts from Pt (Pr and all relays
/// listen), then each relay decode-and-forwards in its own slot; Pr
/// combines the direct observation with every relayed copy.  The
/// "without cooperation" column decides on the direct observation alone
/// (same realizations, so the comparison is paired).
[[nodiscard]] OverlayBerResult run_overlay_ber(const OverlayBerConfig& cfg);

/// Paper-calibrated presets.
[[nodiscard]] OverlayBerConfig table2_single_relay_config(
    std::uint64_t seed = 1);
[[nodiscard]] OverlayBerConfig table3_multi_relay_config(
    unsigned num_relays, std::uint64_t seed = 1);

// ---------------------------------------------------------------------
// Underlay PER experiment (Table 4)
// ---------------------------------------------------------------------

struct UnderlayPerConfig {
  std::size_t num_packets = 474;     ///< the paper's image
  std::size_t packet_bytes = 1500;
  double amplitude = 800.0;          ///< transmit amplitude (DAC units)
  double reference_amplitude = 800.0;
  double snr_at_reference_db = 20.0; ///< solo mean symbol SNR at the
                                     ///< reference amplitude (calibrated
                                     ///< so the solo baselines land near
                                     ///< Table 4's 25/70/97%)
  bool cooperative = true;           ///< two simultaneous transmitters
  double rician_k = 6.0;
  /// Relative phase spread of the two co-located transmitters' LOS
  /// components [rad].  The paper's two USRPs sat "next to each other"
  /// transmitting the same waveform — near-coherent superposition —
  /// so the default jitter is small; π would model fully independent
  /// carriers.
  double coop_phase_jitter_rad = 0.2;
  GmskConfig gmsk{};
  std::uint64_t seed = 1;
};

struct UnderlayPerResult {
  double per = 0.0;
  std::size_t packets_sent = 0;
  std::size_t packets_lost = 0;
  ReassemblyReport reassembly;  ///< the recovered "image"
};

[[nodiscard]] UnderlayPerResult run_underlay_per(const UnderlayPerConfig& cfg);

// ---------------------------------------------------------------------
// Interweave beam-pattern experiment (Fig. 8)
// ---------------------------------------------------------------------

struct BeamPatternConfig {
  double null_angle_deg = 120.0;  ///< design null direction
  double element_spacing_wavelengths = 0.5;
  double radius_m = 1.0;          ///< receiver semicircle radius (2 m diam)
  double wavelength_m = 0.1224;   ///< 2.45 GHz
  double step_deg = 20.0;         ///< the paper's measurement increment
  std::size_t bits_per_point = 2000;
  double snr_db = 20.0;
  double multipath_scatter = 0.15;  ///< scattered-to-LOS amplitude ratio
  std::uint64_t seed = 1;
};

struct BeamPatternResult {
  std::vector<double> angles_deg;
  std::vector<double> ideal;          ///< designed radiation pattern
  std::vector<double> measured_coop;  ///< beamformer through multipath
  std::vector<double> measured_siso;  ///< single-element reference
  /// Measured amplitude at the design null direction.
  [[nodiscard]] double null_residual() const;
};

[[nodiscard]] BeamPatternResult run_beam_pattern(const BeamPatternConfig& cfg);

// ---------------------------------------------------------------------
// Interweave coexistence experiment (§5's central claim)
// ---------------------------------------------------------------------

/// Measures what the null steering actually buys: a primary BPSK link
/// Pt→Pr runs while the SU pair transmits *simultaneously* in the same
/// band toward Sr.  Three conditions are compared on identical
/// channel/noise realizations:
///   (a) SUs silent            — the PU baseline;
///   (b) SUs transmit, nulled  — Algorithm 3's δ imposed;
///   (c) SUs transmit, un-nulled — no phase control.
struct InterweaveCoexistenceConfig {
  std::size_t total_bits = 50000;
  double pu_snr_db = 10.0;   ///< Pt→Pr link SNR
  /// SU interference-to-noise ratio at Pr if *one* SU element
  /// transmitted un-nulled (the geometry scales the rest).
  double su_inr_db = 6.0;
  double su_link_snr_db = 10.0;  ///< pair→Sr desired-link SNR per element
  /// Residual amplitude of the nulled pair toward Pr (0 = ideal null;
  /// Fig. 8's indoor measurement suggests ~0.1–0.2).
  double null_residual = 0.1;
  std::uint64_t seed = 1;
};

struct InterweaveCoexistenceResult {
  double pr_ber_baseline = 0.0;   ///< SUs silent
  double pr_ber_nulled = 0.0;     ///< SUs transmitting, null steered
  double pr_ber_unnulled = 0.0;   ///< SUs transmitting, no null
  double sr_ber_nulled = 0.0;     ///< the secondary link's own BER
};

[[nodiscard]] InterweaveCoexistenceResult run_interweave_coexistence(
    const InterweaveCoexistenceConfig& cfg);

// ---------------------------------------------------------------------
// Shared helper
// ---------------------------------------------------------------------

/// One Rician block-fading coefficient with mean power `mean_power` and
/// K-factor `k` (k = 0 gives Rayleigh); the LOS component carries a
/// uniform random phase (unsynchronized oscillators).
[[nodiscard]] cplx rician_coefficient(Rng& rng, double k, double mean_power);

}  // namespace comimo
