#include "comimo/testbed/framing.h"

#include "comimo/common/error.h"
#include "comimo/phy/detector.h"
#include "comimo/testbed/crc32.h"

namespace comimo {

Framer::Framer(const FramingConfig& config) : config_(config) {
  COMIMO_CHECK(config.max_payload >= 1 && config.max_payload <= 65535,
               "max payload must fit a 16-bit length");
}

std::size_t Framer::frame_bits(std::size_t payload_bytes) const {
  const std::size_t header = config_.preamble_bytes + 2 /*sync*/ +
                             2 /*length*/ + 2 /*sequence*/;
  return (header + payload_bytes + 4 /*crc*/) * 8;
}

BitVec Framer::frame(const Packet& packet) const {
  COMIMO_CHECK(packet.payload.size() <= config_.max_payload,
               "payload exceeds max_payload");
  std::vector<std::uint8_t> bytes;
  bytes.reserve(frame_bits(packet.payload.size()) / 8);
  for (std::size_t i = 0; i < config_.preamble_bytes; ++i) {
    bytes.push_back(config_.preamble_byte);
  }
  bytes.push_back(config_.sync0);
  bytes.push_back(config_.sync1);
  const auto len = static_cast<std::uint16_t>(packet.payload.size());
  bytes.push_back(static_cast<std::uint8_t>(len >> 8));
  bytes.push_back(static_cast<std::uint8_t>(len & 0xFF));
  bytes.push_back(static_cast<std::uint8_t>(packet.sequence >> 8));
  bytes.push_back(static_cast<std::uint8_t>(packet.sequence & 0xFF));
  bytes.insert(bytes.end(), packet.payload.begin(), packet.payload.end());
  // CRC over length+sequence+payload (not the preamble/sync, which are
  // fixed patterns).
  Crc32 crc;
  crc.update(std::span<const std::uint8_t>(bytes).subspan(
      config_.preamble_bytes + 2));
  const std::uint32_t c = crc.value();
  bytes.push_back(static_cast<std::uint8_t>(c >> 24));
  bytes.push_back(static_cast<std::uint8_t>((c >> 16) & 0xFF));
  bytes.push_back(static_cast<std::uint8_t>((c >> 8) & 0xFF));
  bytes.push_back(static_cast<std::uint8_t>(c & 0xFF));
  return bytes_to_bits(bytes);
}

std::optional<Packet> Framer::parse(
    std::span<const std::uint8_t> bits) const {
  if (bits.size() % 8 != 0) return std::nullopt;
  const std::vector<std::uint8_t> bytes = bits_to_bytes(bits);
  const std::size_t header = config_.preamble_bytes + 2 + 2 + 2;
  if (bytes.size() < header + 4) return std::nullopt;
  std::size_t off = config_.preamble_bytes;
  if (bytes[off] != config_.sync0 || bytes[off + 1] != config_.sync1) {
    return std::nullopt;
  }
  off += 2;
  const std::size_t len = (static_cast<std::size_t>(bytes[off]) << 8) |
                          bytes[off + 1];
  off += 2;
  if (len > config_.max_payload || bytes.size() != header + len + 4) {
    return std::nullopt;
  }
  const std::uint16_t seq =
      static_cast<std::uint16_t>((bytes[off] << 8) | bytes[off + 1]);
  off += 2;
  Crc32 crc;
  crc.update(std::span<const std::uint8_t>(bytes).subspan(
      config_.preamble_bytes + 2, 2 + 2 + len));
  const std::uint32_t expected =
      (static_cast<std::uint32_t>(bytes[off + len]) << 24) |
      (static_cast<std::uint32_t>(bytes[off + len + 1]) << 16) |
      (static_cast<std::uint32_t>(bytes[off + len + 2]) << 8) |
      static_cast<std::uint32_t>(bytes[off + len + 3]);
  if (crc.value() != expected) return std::nullopt;
  Packet p;
  p.sequence = seq;
  p.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(off),
                   bytes.begin() + static_cast<std::ptrdiff_t>(off + len));
  return p;
}

}  // namespace comimo
