// Minimal GNU Radio-style flowgraph.
//
// The simulated testbed composes per-node signal chains from sample
// blocks; a Flowgraph is a linear chain (source samples in, processed
// samples out).  Superposition of several transmitters at one antenna is
// a receiver-side concern — see channel/indoor.h's superpose().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "comimo/numeric/cmatrix.h"

namespace comimo {

/// A processing stage over complex baseband samples.
class SampleBlock {
 public:
  virtual ~SampleBlock() = default;
  [[nodiscard]] virtual std::vector<cplx> process(
      std::vector<cplx> input) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

class Flowgraph {
 public:
  /// Appends a block; returns *this for chaining.
  Flowgraph& add(std::unique_ptr<SampleBlock> block);

  /// Runs the chain over the input.
  [[nodiscard]] std::vector<cplx> run(std::vector<cplx> input);

  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }
  /// "a -> b -> c" description for logs.
  [[nodiscard]] std::string describe() const;

 private:
  std::vector<std::unique_ptr<SampleBlock>> blocks_;
};

}  // namespace comimo
