// Waveform-level simulation of one Algorithm-2 cooperative hop.
//
// Where underlay/cooperative_hop.h *plans* a hop from the closed-form
// energy model, this module *executes* it sample by sample, including
// the imperfections the closed forms ignore:
//   step 1 — the head broadcasts over a finite-SNR intra-cluster AWGN
//            link; co-transmitters make independent hard decisions, so
//            decode-and-forward errors can desynchronize the antennas;
//   step 2 — each transmitter STBC-encodes *its own* bit estimate; the
//            mt×mr block rides a fresh Rayleigh H per block at exactly
//            the planned received energy ē_b;
//   step 3 — receivers forward their raw samples to the head over
//            finite-SNR local links (analog forwarding, extra noise);
//            the head performs the joint ML STBC decode.
//
// The end-to-end BER should track the plan's target; the validation
// bench sweeps the (mt, mr) grid and reports planned vs measured.
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/underlay/cooperative_hop.h"

namespace comimo {

class ThreadPool;

/// Waveform-level fault injection, off by default (the zero-fault path
/// is bit-identical to the original simulation — no extra RNG draws).
struct HopFaultConfig {
  bool enabled = false;
  /// Per-attempt probability an entire long-haul STBC block is erased
  /// (e.g. swamped by a collision); erasures trigger retransmission.
  double block_erasure_prob = 0.0;
  /// Transmission attempts per block before it is declared lost.
  unsigned max_attempts = 4;
  /// First block index at which one co-transmitter has dropped out;
  /// from there the long haul degrades one STBC ladder step (mt − 1),
  /// reusing the plan's ē_b (energy held, diversity lost).
  std::size_t dropout_block = ~std::size_t{0};
  std::uint64_t seed = 7;

  /// RLNC block repair as a peer of the retransmission loop: every
  /// block is sent ONCE (one erasure draw, no retries); erased blocks
  /// are then recovered per generation of `rlnc_generation` consecutive
  /// blocks by coded repair packets — each itself subject to the same
  /// erasure process — up to `rlnc_max_overhead` repairs per
  /// generation.  Off by default; the retransmission path is untouched.
  bool rlnc = false;
  std::size_t rlnc_generation = 8;
  unsigned rlnc_max_overhead = 32;
};

/// What the fault machinery did to one hop.
struct HopResilienceStats {
  std::size_t blocks = 0;
  std::size_t retransmitted_blocks = 0;  ///< needed more than one attempt
  std::size_t degraded_blocks = 0;       ///< sent with a shrunken STBC
  std::size_t lost_blocks = 0;  ///< every attempt erased; payload zeroed
  std::size_t repair_blocks = 0;     ///< coded repair packets sent (RLNC)
  std::size_t recovered_blocks = 0;  ///< erased blocks rebuilt by RLNC
  friend bool operator==(const HopResilienceStats&,
                         const HopResilienceStats&) = default;
};

struct CoopHopSimConfig {
  UnderlayHopPlan plan;          ///< from UnderlayCooperativeHop::plan
  std::size_t bits = 20000;      ///< payload length
  double local_snr_db = 30.0;    ///< intra-cluster link SNR (short range)
  std::uint64_t seed = 1;
  HopFaultConfig faults{};       ///< resilience hook, off by default
  /// Pool for the block-parallel inner loop; nullptr = shared pool.
  /// Every block derives its randomness from (seed, block index) only,
  /// so the result is bit-identical for any pool size.
  ThreadPool* pool = nullptr;
};

struct CoopHopSimResult {
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  double ber = 0.0;          ///< end-to-end, head → head
  double target_ber = 0.0;   ///< what the plan promised
  /// Fraction of intra-cluster broadcast bits any co-transmitter
  /// mis-decoded (step-1 DF impairment).
  double intra_error_rate = 0.0;
  HopResilienceStats resilience{};  ///< zeros when faults are off
};

/// Runs the hop.  Requires plan.b ≤ 8 (the waveform modulators' range);
/// plans at longer ranges typically pick b ∈ {1, 2}.
[[nodiscard]] CoopHopSimResult simulate_cooperative_hop(
    const CoopHopSimConfig& config);

/// Cascades several hops (a backbone route): the bits leaving hop i
/// become hop i+1's payload, so per-hop errors accumulate the way a
/// real relay chain accumulates them (≈ Σ p_i for small p_i).
struct RouteSimResult {
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  double ber = 0.0;  ///< source bits vs what the final head decodes
  std::vector<CoopHopSimResult> hops;
};
[[nodiscard]] RouteSimResult simulate_route(
    const std::vector<UnderlayHopPlan>& plans, std::size_t bits,
    double local_snr_db = 30.0, std::uint64_t seed = 1,
    const HopFaultConfig& faults = {}, ThreadPool* pool = nullptr);

}  // namespace comimo
