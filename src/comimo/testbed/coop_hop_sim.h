// Waveform-level simulation of one Algorithm-2 cooperative hop.
//
// Where underlay/cooperative_hop.h *plans* a hop from the closed-form
// energy model, this module *executes* it sample by sample, including
// the imperfections the closed forms ignore:
//   step 1 — the head broadcasts over a finite-SNR intra-cluster AWGN
//            link; co-transmitters make independent hard decisions, so
//            decode-and-forward errors can desynchronize the antennas;
//   step 2 — each transmitter STBC-encodes *its own* bit estimate; the
//            mt×mr block rides a fresh Rayleigh H per block at exactly
//            the planned received energy ē_b;
//   step 3 — receivers forward their raw samples to the head over
//            finite-SNR local links (analog forwarding, extra noise);
//            the head performs the joint ML STBC decode.
//
// The end-to-end BER should track the plan's target; the validation
// bench sweeps the (mt, mr) grid and reports planned vs measured.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comimo/phy/hop_batch.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {

class AwgnChannel;
class Rng;
class ThreadPool;

namespace simd {
struct BatchKernels;
}  // namespace simd

/// Waveform-level fault injection, off by default (the zero-fault path
/// is bit-identical to the original simulation — no extra RNG draws).
struct HopFaultConfig {
  bool enabled = false;
  /// Per-attempt probability an entire long-haul STBC block is erased
  /// (e.g. swamped by a collision); erasures trigger retransmission.
  double block_erasure_prob = 0.0;
  /// Transmission attempts per block before it is declared lost.
  unsigned max_attempts = 4;
  /// First block index at which one co-transmitter has dropped out;
  /// from there the long haul degrades one STBC ladder step (mt − 1),
  /// reusing the plan's ē_b (energy held, diversity lost).
  std::size_t dropout_block = ~std::size_t{0};
  std::uint64_t seed = 7;

  /// RLNC block repair as a peer of the retransmission loop: every
  /// block is sent ONCE (one erasure draw, no retries); erased blocks
  /// are then recovered per generation of `rlnc_generation` consecutive
  /// blocks by coded repair packets — each itself subject to the same
  /// erasure process — up to `rlnc_max_overhead` repairs per
  /// generation.  Off by default; the retransmission path is untouched.
  bool rlnc = false;
  std::size_t rlnc_generation = 8;
  unsigned rlnc_max_overhead = 32;
};

/// What the fault machinery did to one hop.
struct HopResilienceStats {
  std::size_t blocks = 0;
  std::size_t retransmitted_blocks = 0;  ///< needed more than one attempt
  std::size_t degraded_blocks = 0;       ///< sent with a shrunken STBC
  std::size_t lost_blocks = 0;  ///< every attempt erased; payload zeroed
  std::size_t repair_blocks = 0;     ///< coded repair packets sent (RLNC)
  std::size_t recovered_blocks = 0;  ///< erased blocks rebuilt by RLNC
  friend bool operator==(const HopResilienceStats&,
                         const HopResilienceStats&) = default;
};

struct CoopHopSimConfig {
  UnderlayHopPlan plan;          ///< from UnderlayCooperativeHop::plan
  std::size_t bits = 20000;      ///< payload length
  double local_snr_db = 30.0;    ///< intra-cluster link SNR (short range)
  std::uint64_t seed = 1;
  HopFaultConfig faults{};       ///< resilience hook, off by default
  /// Pool for the block-parallel inner loop; nullptr = shared pool.
  /// Every block derives its randomness from (seed, block index) only,
  /// so the result is bit-identical for any pool size.
  ThreadPool* pool = nullptr;
};

struct CoopHopSimResult {
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  double ber = 0.0;          ///< end-to-end, head → head
  double target_ber = 0.0;   ///< what the plan promised
  /// Fraction of intra-cluster broadcast bits any co-transmitter
  /// mis-decoded (step-1 DF impairment).
  double intra_error_rate = 0.0;
  HopResilienceStats resilience{};  ///< zeros when faults are off
};

/// The per-block hop pipeline packaged as a reusable kernel, lane-wide:
/// construction fixes the plan (modem, full STBC design, energies) and
/// the intra-cluster SNR; the methods then execute the three-step hop —
/// head broadcast, per-antenna long-haul STBC, analog collection — for
/// W independent blocks on a caller-owned HopBatchWorkspace.
///
/// Two equivalent group drivers:
///   * run_group_serial — every lane through the historical scalar
///     per-block path (the reference, and the ragged-tail fallback);
///   * run_group_batch  — lane-serial broadcast (sequential AwgnChannel
///     streams), then the W-wide SoA long haul on the batch kernels.
/// Both derive each lane's randomness from the same counter-based
/// (seed, block-index) streams as the historical simulation, and the
/// batch long haul preserves every rounding of the scalar one (the
/// simd/ bit-identity contract), so lane w of either driver is
/// bit-identical to the original run_block on block blk0 + w —
/// asserted lane-bitwise by tests/test_hop_batch.cpp at every tier.
class CoopHopBlockKernel {
 public:
  /// The widest group the stack-allocated per-lane stream arrays carry
  /// (= the widest SIMD tier, AVX-512's W = 8).
  static constexpr std::size_t kMaxLanes = 8;

  CoopHopBlockKernel(const UnderlayHopPlan& plan, double local_snr_db);

  /// Per-lane step-1 statistics (summed over a lane's co-transmitters).
  struct GroupStats {
    std::size_t intra_errors = 0;
    std::size_t intra_bits = 0;
  };

  /// Shapes `ws` for this kernel's full design at `width` lanes.
  void prepare_batch(HopBatchWorkspace& ws, std::size_t width) const;

  /// Step 1 for one lane: the head's true bits become belief 0; each
  /// co-transmitter hard-decides its noisy broadcast copy into beliefs
  /// 1..mt−1, consuming `local_noise` exactly like the historical block.
  void broadcast_lane(HopBatchWorkspace& ws, std::size_t lane,
                      std::span<const std::uint8_t> bits,
                      AwgnChannel& local_noise, GroupStats& stats) const;

  /// Steps 2–3 for one lane through the scalar path (LinkWorkspace
  /// math), writing the head's decode into ws.decoded_lane(lane).
  /// `decoder_use` may be a ladder-degraded design; sub-blocks then
  /// chunk accordingly.  Safe to call repeatedly on one lane (ARQ
  /// retransmission attempts — fresh channel/noise from the streams).
  void long_haul_lane(HopBatchWorkspace& ws, std::size_t lane,
                      const StbcDecoder& decoder_use, Rng& channel_rng,
                      AwgnChannel& long_haul_noise,
                      AwgnChannel& local_noise) const;

  /// Steps 2–3 for `count` lanes at once on the batch kernels (`count`
  /// must equal the kernel table's lane width).  One stream triple per
  /// lane, consumed in the scalar draw order.  `kernels` defaults to
  /// the pinned simd::active_kernels(); tests pass explicit tiers.
  void long_haul_batch(HopBatchWorkspace& ws, std::size_t count,
                       const StbcDecoder& decoder_use, Rng* channel_rngs,
                       AwgnChannel* long_haul_noises,
                       AwgnChannel* local_noises,
                       const simd::BatchKernels* kernels = nullptr) const;

  /// `count` consecutive blocks (blk0, blk0+1, …) of `payload` through
  /// the scalar per-lane path, streams constructed internally from
  /// (seed, block index).  lane_stats receives `count` entries.
  void run_group_serial(HopBatchWorkspace& ws, const std::uint8_t* payload,
                        std::size_t blk0, std::size_t count,
                        std::uint64_t seed, const StbcDecoder& decoder_use,
                        GroupStats* lane_stats) const;

  /// The batched equivalent of run_group_serial — bit-identical per
  /// lane; `count` must equal the kernel table's lane width.
  void run_group_batch(HopBatchWorkspace& ws, const std::uint8_t* payload,
                       std::size_t blk0, std::size_t count,
                       std::uint64_t seed, const StbcDecoder& decoder_use,
                       GroupStats* lane_stats,
                       const simd::BatchKernels* kernels = nullptr) const;

  [[nodiscard]] std::size_t bits_per_block() const noexcept {
    return bits_per_block_;
  }
  [[nodiscard]] const StbcDecoder& decoder_full() const noexcept {
    return decoder_full_;
  }
  [[nodiscard]] double local_noise_var() const noexcept {
    return local_noise_var_;
  }

 private:
  std::unique_ptr<Modulator> modem_;
  StbcDecoder decoder_full_;
  int b_ = 1;
  unsigned mt_ = 1;
  unsigned mr_ = 1;
  double ebar_ = 0.0;
  double n0_ = 0.0;
  double local_noise_var_ = 0.0;
  std::size_t bits_per_block_ = 0;
};

/// Runs the hop.  Requires plan.b ≤ 8 (the waveform modulators' range);
/// plans at longer ranges typically pick b ∈ {1, 2}.
[[nodiscard]] CoopHopSimResult simulate_cooperative_hop(
    const CoopHopSimConfig& config);

/// Cascades several hops (a backbone route): the bits leaving hop i
/// become hop i+1's payload, so per-hop errors accumulate the way a
/// real relay chain accumulates them (≈ Σ p_i for small p_i).
struct RouteSimResult {
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  double ber = 0.0;  ///< source bits vs what the final head decodes
  std::vector<CoopHopSimResult> hops;
};
[[nodiscard]] RouteSimResult simulate_route(
    const std::vector<UnderlayHopPlan>& plans, std::size_t bits,
    double local_snr_db = 30.0, std::uint64_t seed = 1,
    const HopFaultConfig& faults = {}, ThreadPool* pool = nullptr);

}  // namespace comimo
