// Standard sample blocks of the simulated testbed.
#pragma once

#include <memory>

#include "comimo/channel/awgn.h"
#include "comimo/channel/indoor.h"
#include "comimo/testbed/flowgraph.h"

namespace comimo {

/// Multiplies every sample by a fixed complex gain (the "transmit
/// amplitude" knob of the paper's underlay experiment).
class GainBlock final : public SampleBlock {
 public:
  explicit GainBlock(cplx gain);
  [[nodiscard]] std::vector<cplx> process(std::vector<cplx> input) override;
  [[nodiscard]] std::string name() const override { return "gain"; }

 private:
  cplx gain_;
};

/// Propagates through an IndoorLink (path gain, obstruction, multipath);
/// redraws fading per call when `block_fading` is set (one call = one
/// packet).
class ChannelBlock final : public SampleBlock {
 public:
  ChannelBlock(const IndoorLinkConfig& config, Rng rng,
               bool block_fading = true);
  [[nodiscard]] std::vector<cplx> process(std::vector<cplx> input) override;
  [[nodiscard]] std::string name() const override { return "channel"; }
  [[nodiscard]] IndoorLink& link() noexcept { return link_; }

 private:
  IndoorLink link_;
  bool block_fading_;
};

/// Adds complex AWGN of fixed variance.
class NoiseBlock final : public SampleBlock {
 public:
  NoiseBlock(double noise_variance, Rng rng);
  [[nodiscard]] std::vector<cplx> process(std::vector<cplx> input) override;
  [[nodiscard]] std::string name() const override { return "awgn"; }

 private:
  AwgnChannel awgn_;
};

/// Fixed carrier-phase rotation (residual CFO/phase of a real front end).
class PhaseRotationBlock final : public SampleBlock {
 public:
  explicit PhaseRotationBlock(double phase_rad);
  [[nodiscard]] std::vector<cplx> process(std::vector<cplx> input) override;
  [[nodiscard]] std::string name() const override { return "phase"; }

 private:
  cplx rotation_;
};

}  // namespace comimo
