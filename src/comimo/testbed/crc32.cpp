#include "comimo/testbed/crc32.h"

#include <array>

namespace comimo {

namespace {
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
const std::array<std::uint32_t, 256> kTable = make_table();
}  // namespace

void Crc32::update(std::uint8_t byte) {
  state_ = kTable[(state_ ^ byte) & 0xFFu] ^ (state_ >> 8);
}

void Crc32::update(std::span<const std::uint8_t> data) {
  for (const auto b : data) update(b);
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace comimo
