// Pilot-based channel estimation.
//
// The analytic chain assumes H known ("it can be estimated by sensing
// the transmission signals", §2.3); a real receiver estimates it from
// known symbols.  The framing layer already transmits a preamble, so
// the least-squares block estimate is natural:
//
//   ĥ = (pᴴ y)/(pᴴ p),      var(ĥ) = N0 / Σ|p_i|²   (the CRLB)
//
// with p the pilot symbols and y the corresponding received samples.
// The noise variance itself is estimated from the fit residual.
#pragma once

#include <span>

#include "comimo/numeric/cmatrix.h"

namespace comimo {

/// LS estimate of a block-constant scalar gain.  Spans must be equal
/// length and non-empty.
[[nodiscard]] cplx estimate_gain(std::span<const cplx> pilots,
                                 std::span<const cplx> received);

struct PilotEstimate {
  cplx gain{0.0, 0.0};
  /// Residual-based estimate of the per-sample complex noise variance
  /// (unbiased: residual power scaled by n/(n−1)).
  double noise_variance = 0.0;
  /// Predicted estimator variance N̂0 / Σ|p_i|².
  double gain_variance = 0.0;
};

/// Gain plus noise statistics; needs at least 2 pilot symbols.
[[nodiscard]] PilotEstimate estimate_gain_and_noise(
    std::span<const cplx> pilots, std::span<const cplx> received);

}  // namespace comimo
