#include "comimo/numeric/stats.h"

#include <algorithm>
#include <cmath>

#include "comimo/common/error.h"

namespace comimo {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::std_error() const noexcept {
  return n_ >= 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_half_width() const noexcept {
  return 1.959963984540054 * std_error();
}

double percentile(std::vector<double> data, double pct) {
  COMIMO_CHECK(!data.empty(), "percentile of empty data");
  COMIMO_CHECK(pct >= 0.0 && pct <= 100.0, "percentile in [0,100]");
  std::sort(data.begin(), data.end());
  const double pos = pct / 100.0 * static_cast<double>(data.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

RateEstimate estimate_rate(std::uint64_t successes, std::uint64_t trials) {
  COMIMO_CHECK(trials > 0, "estimate_rate needs trials > 0");
  COMIMO_CHECK(successes <= trials, "successes exceed trials");
  const double z = 1.959963984540054;
  const auto n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  RateEstimate est;
  est.rate = p;
  est.wilson_lo = std::max(0.0, center - half);
  est.wilson_hi = std::min(1.0, center + half);
  return est;
}

}  // namespace comimo
