#include "comimo/numeric/special.h"

#include <cmath>
#include <limits>

#include "comimo/common/error.h"

namespace comimo {

double q_function(double x) noexcept {
  return 0.5 * std::erfc(x / std::sqrt(2.0));
}

double erfcx(double x) noexcept {
  if (x < 0.0) {
    // erfcx(-x) = 2 e^{x²} − erfcx(x); only small negatives are sane.
    return 2.0 * std::exp(x * x) - erfcx(-x);
  }
  if (x < 12.0) {
    // Direct product is safe and accurate here (e^{144} ≈ 3e62 < DBL_MAX
    // and erfc has not yet underflowed).
    return std::exp(x * x) * std::erfc(x);
  }
  // Asymptotic series erfcx(x) ~ 1/(x√π) · Σ (-1)^k (2k-1)!!/(2x²)^k,
  // truncated where terms stop decreasing; for x >= 12 the first few
  // terms give full double precision.
  const double inv_sqrt_pi = 0.5641895835477563;
  const double ix2 = 1.0 / (2.0 * x * x);
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k <= 8; ++k) {
    term *= -static_cast<double>(2 * k - 1) * ix2;
    sum += term;
  }
  return inv_sqrt_pi / x * sum;
}

double q_inverse(double p) {
  COMIMO_CHECK(p > 0.0 && p < 1.0, "q_inverse domain is (0,1)");
  // Initial guess: Acklam-style rational approximation for the standard
  // normal quantile of (1 - p).
  const double q = 1.0 - p;  // CDF value
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (q < p_low) {
    const double u = std::sqrt(-2.0 * std::log(q));
    x = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else if (q <= 1.0 - p_low) {
    const double u = q - 0.5;
    const double r = u * u;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        u /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double u = std::sqrt(-2.0 * std::log(1.0 - q));
    x = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  }
  // Two Newton steps on Q(x) - p = 0 polish to near machine precision.
  for (int it = 0; it < 2; ++it) {
    const double err = q_function(x) - p;
    const double pdf = std::exp(-0.5 * x * x) / std::sqrt(2.0 * 3.14159265358979323846);
    if (pdf <= std::numeric_limits<double>::min()) break;
    x += err / pdf;  // dQ/dx = -pdf
  }
  return x;
}

double log_gamma(double x) {
  COMIMO_CHECK(x > 0.0, "log_gamma domain is x > 0");
  return std::lgamma(x);
}

namespace {
// Series representation of P(a, x), valid (and fast) for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
}

// Continued-fraction representation of Q(a, x), valid for x ≥ a + 1
// (modified Lentz).
double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
}
}  // namespace

double gamma_p(double a, double x) {
  COMIMO_CHECK(a > 0.0, "gamma_p needs a > 0");
  COMIMO_CHECK(x >= 0.0, "gamma_p needs x >= 0");
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  COMIMO_CHECK(a > 0.0, "gamma_q needs a > 0");
  COMIMO_CHECK(x >= 0.0, "gamma_q needs x >= 0");
  if (x == 0.0) return 1.0;
  return x < a + 1.0 ? 1.0 - gamma_p_series(a, x) : gamma_q_cf(a, x);
}

double gamma_p_inverse(double a, double p) {
  COMIMO_CHECK(a > 0.0, "gamma_p_inverse needs a > 0");
  COMIMO_CHECK(p >= 0.0 && p < 1.0, "gamma_p_inverse needs p in [0,1)");
  if (p == 0.0) return 0.0;
  // Wilson–Hilferty: Gamma(a) ≈ a·(1 − 1/(9a) + z/(3√a))³ with z the
  // normal quantile of p.
  const double z = -q_inverse(p);  // Φ⁻¹(p)
  double x = a * std::pow(1.0 - 1.0 / (9.0 * a) +
                              z / (3.0 * std::sqrt(a)),
                          3.0);
  if (!(x > 0.0)) x = 1e-8;
  for (int it = 0; it < 60; ++it) {
    const double f = gamma_p(a, x) - p;
    // dP/dx = x^{a-1} e^{-x} / Γ(a)
    const double dfdx =
        std::exp((a - 1.0) * std::log(x) - x - log_gamma(a));
    if (dfdx <= 0.0) break;
    double step = f / dfdx;
    // Damp to stay positive.
    if (step > x) step = x / 2.0;
    x -= step;
    if (std::abs(step) < 1e-14 * std::max(1.0, x)) break;
  }
  return x;
}

double binomial(unsigned n, unsigned k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (unsigned i = 0; i < k; ++i) {
    result = result * static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return result;
}

double avg_q_over_gamma(double g, unsigned m) {
  COMIMO_CHECK(g >= 0.0, "avg_q_over_gamma needs g >= 0");
  COMIMO_CHECK(m >= 1, "avg_q_over_gamma needs m >= 1");
  const double mu = std::sqrt(g / (1.0 + g));
  const double lo = 0.5 * (1.0 - mu);
  const double hi = 0.5 * (1.0 + mu);
  double prefix = 1.0;
  for (unsigned i = 0; i < m; ++i) prefix *= lo;
  double sum = 0.0;
  double hi_pow = 1.0;
  for (unsigned i = 0; i < m; ++i) {
    sum += binomial(m - 1 + i, i) * hi_pow;
    hi_pow *= hi;
  }
  const double result = prefix * sum;
  // The exact value is a probability in [0, 1/2]; clamp tiny negative
  // round-off.
  return result < 0.0 ? 0.0 : result;
}

double log_avg_q_over_gamma(double g, unsigned m) {
  COMIMO_CHECK(g >= 0.0, "log_avg_q_over_gamma needs g >= 0");
  COMIMO_CHECK(m >= 1, "log_avg_q_over_gamma needs m >= 1");
  const double mu = std::sqrt(g / (1.0 + g));
  // log lo computed stably: 1-mu = 1/((1+mu)(1+g)) since mu^2 = g/(1+g).
  const double log_lo =
      -std::log(2.0) - std::log1p(mu) - std::log1p(g);
  const double hi = 0.5 * (1.0 + mu);
  double sum = 0.0;
  double hi_pow = 1.0;
  for (unsigned i = 0; i < m; ++i) {
    sum += binomial(m - 1 + i, i) * hi_pow;
    hi_pow *= hi;
  }
  return static_cast<double>(m) * log_lo + std::log(sum);
}

double chernoff_avg_q_over_gamma(double g, unsigned m) {
  // Q(x) <= exp(-x^2/2)/2, so E[Q(√(2 g x))] <= E[exp(-g x)]/2 =
  // (1+g)^-m / 2 by the Gamma MGF.
  return 0.5 * std::pow(1.0 + g, -static_cast<double>(m));
}

}  // namespace comimo
