// Streaming summary statistics for Monte-Carlo experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace comimo {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;
  /// Merges another accumulator (parallel reduction).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double std_error() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;

  /// Exact state equality — the MC engine's thread-count-invariance
  /// tests assert accumulators are bit-identical, not merely close.
  friend bool operator==(const RunningStats&, const RunningStats&) = default;

  /// Raw internal state, exposed for bit-exact wire transport (the
  /// multi-process sharding driver serializes accumulators across a
  /// pipe; doubles travel as bit patterns, so from_raw(raw()) round-trips
  /// exactly).
  struct Raw {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  [[nodiscard]] Raw raw() const noexcept {
    return {n_, mean_, m2_, min_, max_};
  }
  [[nodiscard]] static RunningStats from_raw(const Raw& r) noexcept {
    RunningStats s;
    s.n_ = r.n;
    s.mean_ = r.mean;
    s.m2_ = r.m2;
    s.min_ = r.min;
    s.max_ = r.max;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile (0..100) of a copy of the data, linear interpolation.
[[nodiscard]] double percentile(std::vector<double> data, double pct);

/// Bernoulli success-rate estimate with Wilson 95% interval, for BER/PER
/// reporting.
struct RateEstimate {
  double rate = 0.0;
  double wilson_lo = 0.0;
  double wilson_hi = 0.0;
};
[[nodiscard]] RateEstimate estimate_rate(std::uint64_t successes,
                                         std::uint64_t trials);

}  // namespace comimo
