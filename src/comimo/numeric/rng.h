// Deterministic, splittable random number generation.
//
// The Monte-Carlo sweeps fan out across threads; to keep results identical
// regardless of scheduling, every task derives its own Xoshiro256++ stream
// from a (seed, stream-id) pair via SplitMix64 — counter-based seeding in
// the style recommended for reproducible HPC simulations.
#pragma once

#include <array>
#include <complex>
#include <cstdint>

#include "comimo/common/geometry.h"

namespace comimo {

/// SplitMix64: used only to expand seeds into Xoshiro state.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Xoshiro256++ generator with Gaussian / complex-Gaussian / Gamma
/// sampling on top.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Stream `stream` of the generator family identified by `seed`:
  /// distinct (seed, stream) pairs give statistically independent streams.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() noexcept { return next(); }

  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;
  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n); n must be positive.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t n) noexcept;
  /// Fair coin / Bernoulli(p).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal via Box–Muller (cached spare).
  [[nodiscard]] double gaussian() noexcept;
  /// N(mean, stddev²).
  [[nodiscard]] double gaussian(double mean, double stddev) noexcept;

  /// Circularly-symmetric complex Gaussian CN(0, variance), i.e. each of
  /// the real and imaginary parts has variance `variance/2`.
  [[nodiscard]] std::complex<double> complex_gaussian(
      double variance = 1.0) noexcept;

  /// Gamma(shape, scale=1) via Marsaglia–Tsang; shape > 0.
  [[nodiscard]] double gamma(double shape) noexcept;

  /// Exponential with unit mean.
  [[nodiscard]] double exponential() noexcept;

  /// Uniform point inside the disk of radius `radius` centered at `center`.
  [[nodiscard]] Vec2 point_in_disk(const Vec2& center, double radius) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace comimo
