// Special functions for BER analysis: the Gaussian Q-function and its
// inverse, log-gamma, binomial coefficients, and the closed-form average
// of Q(sqrt(2 g x)) over x ~ Gamma(m, 1) — the classical diversity-
// combining expectation that powers the ē_b solver (paper eqs. (5)–(6)).
#pragma once

#include <cstdint>

namespace comimo {

/// Gaussian tail Q(x) = P[N(0,1) > x] = erfc(x/√2)/2.
[[nodiscard]] double q_function(double x) noexcept;

/// Scaled complementary error function erfcx(x) = e^{x²}·erfc(x),
/// stable for large x (naive product overflows past x ≈ 27).
[[nodiscard]] double erfcx(double x) noexcept;

/// Inverse of the Q-function: q_inverse(q_function(x)) == x.
/// Domain (0, 1); accurate to ~1e-12 via Newton refinement.
[[nodiscard]] double q_inverse(double p);

/// log Γ(x) for x > 0 (Lanczos approximation).
[[nodiscard]] double log_gamma(double x);

/// Regularized lower incomplete gamma P(a, x) = γ(a, x)/Γ(a), a > 0,
/// x ≥ 0 — the CDF of Gamma(a, 1).  Series expansion for x < a+1,
/// continued fraction otherwise (Numerical-Recipes gammp).
[[nodiscard]] double gamma_p(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 − P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Inverse of gamma_p in x: returns x with P(a, x) = p (p in [0, 1)).
/// Newton iterations from a Wilson–Hilferty start.
[[nodiscard]] double gamma_p_inverse(double a, double p);

/// Binomial coefficient C(n, k) as double (exact for the small values
/// used here).
[[nodiscard]] double binomial(unsigned n, unsigned k);

/// E_x[ Q(√(2 g x)) ] for x ~ Gamma(m, 1) with integer m ≥ 1 and g ≥ 0:
///
///   = [½(1−μ)]^m · Σ_{i=0}^{m−1} C(m−1+i, i) [½(1+μ)]^i,  μ = √(g/(1+g))
///
/// This is the standard m-branch maximal-ratio-combining average BER
/// identity; with ‖H‖²_F ~ Gamma(mt·mr, 1) for the i.i.d. Rayleigh MIMO
/// channel it evaluates the expectation in the paper's eqs. (5)–(6)
/// exactly.
[[nodiscard]] double avg_q_over_gamma(double g, unsigned m);

/// Numerically stable evaluation of log(avg_q_over_gamma) used when the
/// probability underflows (deep diversity, tight BER targets).
[[nodiscard]] double log_avg_q_over_gamma(double g, unsigned m);

/// Marcum-style finite-SNR check used in property tests: the averaged
/// Q is bounded above by the Chernoff average (1+g)^-m / 2.
[[nodiscard]] double chernoff_avg_q_over_gamma(double g, unsigned m);

}  // namespace comimo
