// 64-byte-aligned storage for the SIMD hot path.
//
// The batch-SoA kernels in numeric/simd/ issue aligned vector loads on
// whole W-lane groups, so every plane (and CMatrix's backing store,
// whose real/imag pairs the split-complex code reinterprets) must start
// on a 64-byte boundary — one cache line, and enough for every ISA tier
// up to AVX-512.  AlignedAllocator guarantees that via the C++17
// aligned operator new, which the bench heap hooks also cover.
#pragma once

#include <complex>
#include <cstddef>
#include <new>
#include <vector>

namespace comimo {

/// Minimal std::allocator replacement with a fixed alignment guarantee.
/// Stateless, so all instances compare equal and vectors swap freely.
template <typename T, std::size_t Align = 64>
class AlignedAllocator {
  static_assert(Align >= alignof(T), "alignment below the type's own");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  /*implicit*/ AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// 64-byte-aligned vector: the backing store of CMatrix and of the SoA
/// planes in phy/link_batch.h.
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T, 64>>;

// The split-complex kernels treat a cplx array as interleaved
// (re, im) doubles and the SoA planes as bare double arrays; both
// reinterpretations require the standard complex layout.
static_assert(sizeof(std::complex<double>) == 2 * sizeof(double),
              "std::complex<double> must be exactly two doubles");
static_assert(alignof(std::complex<double>) <= 64,
              "cplx alignment exceeds the plane alignment");

}  // namespace comimo
