#include "comimo/numeric/rng.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream id into the seed expansion so streams decorrelate.
  std::uint64_t sm = seed ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  for (auto& word : s_) word = splitmix64(sm);
  // Avoid the all-zero state (probability ~2^-256, but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation.
  COMIMO_DCHECK(n > 0, "uniform_int needs n > 0");
  const __uint128_t m = static_cast<__uint128_t>(next()) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;
    while (lo < threshold) {
      const __uint128_t m2 = static_cast<__uint128_t>(next()) * n;
      lo = static_cast<std::uint64_t>(m2);
      if (lo >= threshold) return static_cast<std::uint64_t>(m2 >> 64);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  // Box–Muller on (0,1] uniforms to avoid log(0).
  double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * kPi * u2;
  spare_ = r * std::sin(theta);
  has_spare_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

std::complex<double> Rng::complex_gaussian(double variance) noexcept {
  const double s = std::sqrt(variance / 2.0);
  return {gaussian() * s, gaussian() * s};
}

double Rng::gamma(double shape) noexcept {
  COMIMO_DCHECK(shape > 0.0, "gamma needs shape > 0");
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang remark).
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u > 0 ? u : 1e-300, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::exponential() noexcept {
  const double u = 1.0 - uniform();
  return -std::log(u);
}

Vec2 Rng::point_in_disk(const Vec2& center, double radius) noexcept {
  // Inverse-CDF radius keeps the distribution uniform over area.
  const double r = radius * std::sqrt(uniform());
  const double theta = uniform(0.0, 2.0 * kPi);
  return center + unit_vec(theta) * r;
}

}  // namespace comimo
