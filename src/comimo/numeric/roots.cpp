#include "comimo/numeric/roots.h"

#include <cmath>

#include "comimo/common/error.h"

namespace comimo {

namespace {
bool brackets(double fa, double fb) {
  return (fa <= 0.0 && fb >= 0.0) || (fa >= 0.0 && fb <= 0.0);
}
}  // namespace

double bisect(const std::function<double(double)>& f, double lo, double hi,
              const RootOptions& opts) {
  COMIMO_CHECK(lo <= hi, "invalid interval");
  double fa = f(lo);
  double fb = f(hi);
  if (fa == 0.0) return lo;
  if (fb == 0.0) return hi;
  if (!brackets(fa, fb)) {
    throw NumericError("bisect: interval does not bracket a root");
  }
  for (int it = 0; it < opts.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if (std::abs(fm) <= opts.f_tol || 0.5 * (hi - lo) <= opts.x_tol) {
      return mid;
    }
    if (brackets(fa, fm)) {
      hi = mid;
      fb = fm;
    } else {
      lo = mid;
      fa = fm;
    }
  }
  return 0.5 * (lo + hi);
}

double brent(const std::function<double(double)>& f, double lo, double hi,
             const RootOptions& opts) {
  double a = lo;
  double b = hi;
  double fa = f(a);
  double fb = f(b);
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;
  if (!brackets(fa, fb)) {
    throw NumericError("brent: interval does not bracket a root");
  }
  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;
  for (int it = 0; it < opts.max_iterations; ++it) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol = 2.0 * 2.220446049250313e-16 * std::abs(b) +
                       0.5 * opts.x_tol;
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol || fb == 0.0 || std::abs(fb) <= opts.f_tol) {
      return b;
    }
    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Attempt inverse quadratic interpolation / secant.
      const double s = fb / fa;
      double p;
      double q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * xm * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (xm > 0.0 ? tol : -tol);
    fb = f(b);
    if (brackets(fc, fb) == false) {
      // keep [b, c] a bracketing pair
      if (brackets(fa, fb)) {
        c = a;
        fc = fa;
        d = b - a;
        e = d;
      }
    }
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  return b;
}

double expand_bracket(const std::function<double(double)>& f, double lo,
                      double hi, int max_doublings) {
  COMIMO_CHECK(hi > lo, "expand_bracket needs hi > lo");
  const double f_lo = f(lo);
  for (int i = 0; i < max_doublings; ++i) {
    if (brackets(f_lo, f(hi))) return hi;
    hi = lo + (hi - lo) * 2.0;
    if (!std::isfinite(hi)) break;
  }
  throw NumericError("expand_bracket: no sign change found");
}

double golden_minimize(const std::function<double(double)>& f, double lo,
                       double hi, double x_tol, int max_iterations) {
  COMIMO_CHECK(lo <= hi, "invalid interval");
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo;
  double b = hi;
  double x1 = b - phi * (b - a);
  double x2 = a + phi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int it = 0; it < max_iterations && (b - a) > x_tol; ++it) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - phi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + phi * (b - a);
      f2 = f(x2);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace comimo
