// AVX2 (W = 4) backend.  Compiled with -mavx2 -ffp-contract=off on
// x86-64; note -mavx2 does not enable FMA, and the Vec ops are explicit
// mul/add intrinsics, so the no-contraction bit-identity contract holds.
#include "comimo/numeric/simd/simd.h"

#if defined(__AVX2__) && !defined(COMIMO_SIMD_DISABLED)

#include "comimo/numeric/simd/batch_kernels_impl.h"

namespace comimo::simd::detail {

const BatchKernels* avx2_kernels() noexcept {
  static const BatchKernels kTable =
      make_kernels<VecAvx2, GfAvx2>(Tier::kAvx2);
  return &kTable;
}

}  // namespace comimo::simd::detail

#else

namespace comimo::simd::detail {

const BatchKernels* avx2_kernels() noexcept { return nullptr; }

}  // namespace comimo::simd::detail

#endif
