// SSE2 (W = 2) backend.  The TU is compiled with -msse2 on x86; on
// other architectures (or under COMIMO_SIMD=OFF) the entry point simply
// reports the tier unavailable.
#include "comimo/numeric/simd/simd.h"

#if defined(__SSE2__) && !defined(COMIMO_SIMD_DISABLED)

#include "comimo/numeric/simd/batch_kernels_impl.h"

namespace comimo::simd::detail {

const BatchKernels* sse2_kernels() noexcept {
  static const BatchKernels kTable =
      make_kernels<VecSse2, GfSse2>(Tier::kSse2);
  return &kTable;
}

}  // namespace comimo::simd::detail

#else

namespace comimo::simd::detail {

const BatchKernels* sse2_kernels() noexcept { return nullptr; }

}  // namespace comimo::simd::detail

#endif
