// Batch-SoA SIMD kernels with runtime ISA dispatch.
//
// The PHY hot path spends its time on thousands of *independent*
// Monte-Carlo blocks, each a handful-of-antennas STBC link.  Matrices
// that small leave nothing to vectorize within a block, so this module
// vectorizes **across the batch**: W independent blocks travel together
// in split-complex SoA planes (layout [element][lane]: element e of
// lane w lives at plane[e * W + w]; planes are 64-byte aligned, see
// numeric/aligned.h) and every arithmetic kernel applies one vector op
// to W lanes at once.
//
// Bit-identity contract: each lane executes *exactly* the scalar
// kernel's operation sequence — complex products expand to the
// libstdc++ finite-path formula (re = ar·br − ai·bi, im = ar·bi + ai·br,
// one rounding per mul/add), accumulations run in the same ascending
// order, and the backends use explicit mul/add intrinsics only (no FMA,
// and the backend TUs compile with -ffp-contract=off so the compiler
// cannot introduce one).  A vector lane therefore produces the same
// bits as the scalar path at every ISA tier, which is what lets the
// golden-table net and the 1-vs-N-thread invariance checks pass
// unchanged with batching on.
//
// Dispatch: the best tier the CPU supports (AVX-512 W=8 > AVX2 W=4 >
// SSE2 W=2 on x86-64; NEON W=2 on aarch64; scalar W=1 anywhere) is
// detected once
// and pinned for the process lifetime on first use.  `--simd=<mode>`
// on the bench CLI (simd::set_mode) can force a tier before the pin;
// after the pin a conflicting request throws.  Building with
// -DCOMIMO_SIMD=OFF defines COMIMO_SIMD_DISABLED and compiles every
// backend but the scalar one away.  The pinned tier is exported as the
// obs gauges "simd.active_tier" / "simd.lane_width".
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace comimo {
class Rng;
}  // namespace comimo

namespace comimo::simd {

using cplx = std::complex<double>;

/// ISA tiers.  Enumerator values are stable identifiers, not the
/// preference order — see detect_best_tier for that.
enum class Tier : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
  kAvx512 = 4,
};

/// Stable lowercase name ("scalar", "sse2", "avx2", "avx512", "neon") —
/// the same tokens --simd= accepts and the bench JSON records.
[[nodiscard]] const char* tier_name(Tier tier) noexcept;

/// The per-tier kernel table.  Every plane argument uses the SoA layout
/// [element][lane] with this table's `width` lanes per element and
/// 64-byte base alignment; `elems` counts elements, not doubles.
/// Outputs never alias inputs.  All kernels are bit-identical per lane
/// to the scalar reference loops in numeric/cmatrix.cpp, phy/stbc.cpp,
/// and phy/modulation.cpp.
struct BatchKernels {
  Tier tier = Tier::kScalar;
  std::size_t width = 1;  ///< W, lanes per element group

  /// Batched multiply_into: out = a·b per lane
  /// (a: a_rows × a_cols, b: a_cols × b_cols).
  void (*multiply)(const double* a_re, const double* a_im,
                   const double* b_re, const double* b_im, double* out_re,
                   double* out_im, std::size_t a_rows, std::size_t a_cols,
                   std::size_t b_cols);

  /// Batched multiply_transposed_into: out(r, c) = Σ_k a(r, k)·b(c, k)
  /// per lane, ascending k (a: a_rows × a_cols, b: b_rows × a_cols).
  void (*multiply_transposed)(const double* a_re, const double* a_im,
                              const double* b_re, const double* b_im,
                              double* out_re, double* out_im,
                              std::size_t a_rows, std::size_t a_cols,
                              std::size_t b_rows);

  /// Componentwise v *= s — the batched `symbol *= sym_scale` step.
  void (*scale)(double* re, double* im, std::size_t elems, double s);

  /// Componentwise v /= s — the batched `estimate /= sym_scale` step.
  void (*divide)(double* re, double* im, std::size_t elems, double s);

  /// Batched StbcCode::encode_into.  `a`/`b` are the code's coefficient
  /// tensors laid out as a[(t·mt + i)·k + ki] (StbcCode::coeff_*_flat).
  void (*stbc_encode)(const cplx* a, const cplx* b, std::size_t t,
                      std::size_t mt, std::size_t k, double power_scale,
                      const double* sym_re, const double* sym_im,
                      double* out_re, double* out_im);

  /// Batched StbcCode::encode_into over *per-antenna* symbol planes —
  /// the cooperative-hop step 2, where each virtual antenna transmits
  /// its own (possibly broadcast-corrupted) belief of the payload.
  /// `sym_re`/`sym_im` hold mt · k elements laid out [(i·k + ki)][lane];
  /// antenna i contributes its own symbol vector instead of the single
  /// shared one stbc_encode assumes.  Same accumulation tree per lane.
  void (*stbc_encode_multi)(const cplx* a, const cplx* b, std::size_t t,
                            std::size_t mt, std::size_t k,
                            double power_scale, const double* sym_re,
                            const double* sym_im, double* out_re,
                            double* out_im);

  /// Batched real-expansion build of StbcDecoder::decode_into: fills the
  /// F plane (rows 2·t·mr × cols 2·k, layout [row·cols + col][lane]) and
  /// the y plane (2·t·mr elements) from the channel and received planes.
  void (*stbc_build_fy)(const cplx* a, const cplx* b, std::size_t t,
                        std::size_t mt, std::size_t k, std::size_t mr,
                        double power_scale, const double* h_re,
                        const double* h_im, const double* rx_re,
                        const double* rx_im, double* f, double* y);

  /// Batched normal equations: gram[(c1·cols + c2)·W + w] = (FᵀF)(c1,c2)
  /// (both triangles written) and rhs[c1·W + w] = (Fᵀy)(c1), dot
  /// products accumulated over ascending rows exactly like the scalar
  /// decoder.
  void (*gram_rhs)(const double* f, const double* y, std::size_t rows,
                   std::size_t cols, double* gram, double* rhs);

  /// Batched QamModulator::nearest_point: for every element, the index
  /// of the constellation point minimizing |r − p_i|², strict-< with
  /// first-minimum (lowest index) tie-break — the scalar argmin's exact
  /// semantics.  `labels` receives elems·width entries, same layout.
  void (*qam_nearest)(const double* sym_re, const double* sym_im,
                      std::size_t elems, const cplx* points,
                      std::size_t n_points, std::uint32_t* labels);

  // ---- GF(256) region kernels (the RLNC coding/ hot path) -------------
  //
  // Exact byte arithmetic over the 0x11D field (gf256_tables.h):
  // every tier produces identical bytes by construction, so these carry
  // no rounding-order contract — only the table identity.  Buffers are
  // ordinary (unaligned) byte storage; src and dst must not alias.

  /// dst[i] ^= c ⊗ src[i] over len bytes — the Gaussian-elimination
  /// axpy.  c == 1 degenerates to XOR (the GF(2) add), c == 0 to a
  /// no-op.
  void (*gf256_mul_add_row)(std::uint8_t* dst, const std::uint8_t* src,
                            std::uint8_t c, std::size_t len);

  /// buf[i] = c ⊗ buf[i] over len bytes — pivot normalization.
  void (*gf256_mul_region)(std::uint8_t* buf, std::uint8_t c,
                           std::size_t len);

  /// dst[i] ^= src[i] over len bytes — the GF(2) region add.
  void (*gf_region_xor)(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t len);
};

/// Detection result for this process (ignores any --simd override).
[[nodiscard]] Tier detect_best_tier() noexcept;

/// Kernel table for an explicit tier, or nullptr when that tier is not
/// available here (not compiled in, unsupported CPU, or disabled via
/// COMIMO_SIMD=OFF).  kScalar is always available.
[[nodiscard]] const BatchKernels* kernels_for_tier(Tier tier) noexcept;

/// Requests a dispatch mode: "auto" (default), "scalar", "sse2",
/// "avx2", "avx512", or "neon".  Must be called before the first
/// active_kernels()
/// use; throws InvalidArgument for unknown/unavailable modes or when
/// called after the pin with a conflicting tier.
void set_mode(std::string_view mode);

/// The process-wide kernel table, resolved once on first call (honoring
/// set_mode) and pinned thereafter.
[[nodiscard]] const BatchKernels& active_kernels() noexcept;

/// Tier / lane width of active_kernels() — batch_width() == 1 means the
/// batch path degenerates to the scalar loop.
[[nodiscard]] Tier active_tier() noexcept;
[[nodiscard]] std::size_t batch_width() noexcept;

// ---- Per-lane RNG kernels ---------------------------------------------
//
// RNG streams are deliberately *not* vectorized: each lane draws from
// its own per-trial Rng with the scalar Box–Muller, in the scalar
// kernels' row-major element order, so the (seed, trial) stream
// contract of mc/engine.h is untouched.  `rngs` is an array of `width`
// generators, one per lane.

/// Batched random_gaussian_into: plane element e of lane w receives the
/// w-th generator's e-th CN(0, variance) draw.
void random_gaussian_fill_batch(double* re, double* im, std::size_t elems,
                                std::size_t width, Rng* rngs,
                                double variance = 1.0);

/// Batched add_scaled_noise_into: += CN(0, variance) per element, same
/// per-lane draw order as the scalar kernel.
void add_scaled_noise_into_batch(double* re, double* im, std::size_t elems,
                                 std::size_t width, Rng* rngs,
                                 double variance = 1.0);

namespace detail {
// Backend entry points; each returns nullptr when its TU was compiled
// without the matching ISA (or with COMIMO_SIMD_DISABLED).
[[nodiscard]] const BatchKernels* scalar_kernels() noexcept;
[[nodiscard]] const BatchKernels* sse2_kernels() noexcept;
[[nodiscard]] const BatchKernels* avx2_kernels() noexcept;
[[nodiscard]] const BatchKernels* avx512_kernels() noexcept;
[[nodiscard]] const BatchKernels* neon_kernels() noexcept;
}  // namespace detail

}  // namespace comimo::simd
