// AVX-512 (W = 8) backend.  Compiled with -mavx512f -ffp-contract=off
// on x86-64; the Vec ops are explicit mul/add intrinsics (never an
// FMA), so the no-contraction bit-identity contract holds at W = 8
// exactly as it does for the narrower tiers.  -mavx512f implies AVX2,
// so this TU pairs the wide double planes with the PSHUFB GF(256)
// backend (GfAvx2) — byte kernels are exact at every tier anyway.
#include "comimo/numeric/simd/simd.h"

#if defined(__AVX512F__) && !defined(COMIMO_SIMD_DISABLED)

#include "comimo/numeric/simd/batch_kernels_impl.h"

namespace comimo::simd::detail {

const BatchKernels* avx512_kernels() noexcept {
  static const BatchKernels kTable =
      make_kernels<VecAvx512, GfAvx2>(Tier::kAvx512);
  return &kTable;
}

}  // namespace comimo::simd::detail

#else

namespace comimo::simd::detail {

const BatchKernels* avx512_kernels() noexcept { return nullptr; }

}  // namespace comimo::simd::detail

#endif
