// Scalar (W = 1) backend — always available, the reference every wider
// tier must match bitwise, and the only backend left under
// COMIMO_SIMD=OFF.  Compiled with -ffp-contract=off like the others so
// no FMA can sneak into the reference either.
#include "comimo/numeric/simd/batch_kernels_impl.h"

namespace comimo::simd::detail {

const BatchKernels* scalar_kernels() noexcept {
  static const BatchKernels kTable =
      make_kernels<VecScalar, GfScalar>(Tier::kScalar);
  return &kTable;
}

}  // namespace comimo::simd::detail
