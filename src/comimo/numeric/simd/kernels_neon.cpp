// NEON (W = 2) backend for aarch64, where Advanced SIMD is baseline —
// no extra -m flag, just -ffp-contract=off like every backend TU.
#include "comimo/numeric/simd/simd.h"

#if defined(__ARM_NEON) && defined(__aarch64__) && \
    !defined(COMIMO_SIMD_DISABLED)

#include "comimo/numeric/simd/batch_kernels_impl.h"

namespace comimo::simd::detail {

const BatchKernels* neon_kernels() noexcept {
  static const BatchKernels kTable =
      make_kernels<VecNeon, GfNeon>(Tier::kNeon);
  return &kTable;
}

}  // namespace comimo::simd::detail

#else

namespace comimo::simd::detail {

const BatchKernels* neon_kernels() noexcept { return nullptr; }

}  // namespace comimo::simd::detail

#endif
