// Runtime ISA dispatch and the per-lane RNG kernels.
//
// The active kernel table is resolved exactly once per process: either
// the first active_kernels() call pins the best tier the CPU supports,
// or an earlier set_mode("...") request (bench --simd=) pins a forced
// tier.  Pin-once keeps every thread and every subsequent block on the
// same code path, which the determinism tests rely on.
#include "comimo/numeric/simd/simd.h"

#include <atomic>
#include <mutex>
#include <string>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/obs/metrics.h"

namespace comimo::simd {

namespace {

struct DispatchState {
  std::mutex mutex;
  std::atomic<const BatchKernels*> active{nullptr};
  bool forced = false;
  Tier forced_tier = Tier::kScalar;
};

DispatchState& dispatch_state() {
  static DispatchState state;
  return state;
}

void publish_obs_gauges(const BatchKernels& table) {
  auto& reg = obs::MetricRegistry::global();
  reg.gauge("simd.active_tier").set(static_cast<double>(table.tier));
  reg.gauge("simd.lane_width").set(static_cast<double>(table.width));
}

}  // namespace

const char* tier_name(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
    case Tier::kNeon:
      return "neon";
  }
  return "scalar";
}

Tier detect_best_tier() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  if (detail::avx512_kernels() != nullptr &&
      __builtin_cpu_supports("avx512f")) {
    return Tier::kAvx512;
  }
  if (detail::avx2_kernels() != nullptr && __builtin_cpu_supports("avx2")) {
    return Tier::kAvx2;
  }
  if (detail::sse2_kernels() != nullptr && __builtin_cpu_supports("sse2")) {
    return Tier::kSse2;
  }
#elif defined(__aarch64__)
  if (detail::neon_kernels() != nullptr) {
    return Tier::kNeon;
  }
#endif
  return Tier::kScalar;
}

const BatchKernels* kernels_for_tier(Tier tier) noexcept {
  switch (tier) {
    case Tier::kScalar:
      return detail::scalar_kernels();
    case Tier::kSse2:
#if defined(__x86_64__) || defined(__i386__)
      if (!__builtin_cpu_supports("sse2")) return nullptr;
      return detail::sse2_kernels();
#else
      return nullptr;
#endif
    case Tier::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      if (!__builtin_cpu_supports("avx2")) return nullptr;
      return detail::avx2_kernels();
#else
      return nullptr;
#endif
    case Tier::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      // __builtin_cpu_supports("avx512f") also verifies the OS has
      // enabled the ZMM XSAVE state, not just the CPUID bit.
      if (!__builtin_cpu_supports("avx512f")) return nullptr;
      return detail::avx512_kernels();
#else
      return nullptr;
#endif
    case Tier::kNeon:
      return detail::neon_kernels();
  }
  return nullptr;
}

void set_mode(std::string_view mode) {
  bool is_auto = false;
  Tier tier = Tier::kScalar;
  if (mode == "auto") {
    is_auto = true;
  } else if (mode == "scalar") {
    tier = Tier::kScalar;
  } else if (mode == "sse2") {
    tier = Tier::kSse2;
  } else if (mode == "avx2") {
    tier = Tier::kAvx2;
  } else if (mode == "avx512") {
    tier = Tier::kAvx512;
  } else if (mode == "neon") {
    tier = Tier::kNeon;
  } else {
    throw InvalidArgument("unknown --simd mode: " + std::string(mode) +
                          " (expected auto|scalar|sse2|avx2|avx512|neon)");
  }

  DispatchState& state = dispatch_state();
  std::lock_guard<std::mutex> lock(state.mutex);

  if (is_auto) {
    tier = detect_best_tier();
  } else if (kernels_for_tier(tier) == nullptr) {
    throw InvalidArgument(std::string("--simd=") + tier_name(tier) +
                          " is not available on this host/build");
  }

  const BatchKernels* pinned = state.active.load(std::memory_order_acquire);
  if (pinned != nullptr) {
    if (pinned->tier != tier) {
      throw InvalidArgument(
          std::string("simd mode already pinned to ") +
          tier_name(pinned->tier) + "; cannot switch to " + tier_name(tier));
    }
    return;
  }
  state.forced = true;
  state.forced_tier = tier;
}

const BatchKernels& active_kernels() noexcept {
  DispatchState& state = dispatch_state();
  const BatchKernels* table = state.active.load(std::memory_order_acquire);
  if (table != nullptr) return *table;

  std::lock_guard<std::mutex> lock(state.mutex);
  table = state.active.load(std::memory_order_relaxed);
  if (table == nullptr) {
    const Tier tier = state.forced ? state.forced_tier : detect_best_tier();
    table = kernels_for_tier(tier);
    if (table == nullptr) table = detail::scalar_kernels();
    publish_obs_gauges(*table);
    state.active.store(table, std::memory_order_release);
  }
  return *table;
}

Tier active_tier() noexcept { return active_kernels().tier; }

std::size_t batch_width() noexcept { return active_kernels().width; }

void random_gaussian_fill_batch(double* re, double* im, std::size_t elems,
                                std::size_t width, Rng* rngs,
                                double variance) {
  // Lane-outer so lane w consumes its generator in the scalar kernel's
  // row-major element order — the (seed, trial) stream contract.
  for (std::size_t w = 0; w < width; ++w) {
    Rng& rng = rngs[w];
    for (std::size_t e = 0; e < elems; ++e) {
      const cplx z = rng.complex_gaussian(variance);
      re[e * width + w] = z.real();
      im[e * width + w] = z.imag();
    }
  }
}

void add_scaled_noise_into_batch(double* re, double* im, std::size_t elems,
                                 std::size_t width, Rng* rngs,
                                 double variance) {
  for (std::size_t w = 0; w < width; ++w) {
    Rng& rng = rngs[w];
    for (std::size_t e = 0; e < elems; ++e) {
      const cplx z = rng.complex_gaussian(variance);
      re[e * width + w] += z.real();
      im[e * width + w] += z.imag();
    }
  }
}

}  // namespace comimo::simd
