// Per-ISA GF(256) region kernels for the RLNC coding layer.
//
// Three region primitives cover every row operation the encoder,
// decoder, and relay recoder perform:
//   mul_add_row:  dst[i] ^= c ⊗ src[i]   (the Gaussian-elimination axpy;
//                 c == 1 degenerates to the GF(2) XOR, c == 0 to a no-op)
//   mul_region:   buf[i]  = c ⊗ buf[i]   (pivot normalization)
//   xor_row:      dst[i] ^= src[i]       (the GF(2) add)
//
// The byte product uses the nibble split from gf256_tables.h:
//   c ⊗ x = mul_lo[c][x & 15] ^ mul_hi[c][x >> 4]
// which maps 1:1 onto PSHUFB (AVX2) and vqtbl1q_u8 (NEON).  SSE2 has no
// byte shuffle, so that tier vectorizes only the XOR paths and runs the
// general product through the scalar nibble loop.  All arithmetic is
// exact integer work — every tier is bit-identical by construction, so
// unlike the floating-point batch kernels there is no rounding-order
// contract to maintain, only the table identity.
//
// Like vec.h, each ISA struct is defined only when the TU is compiled
// with the matching -m flag, so every backend TU sees exactly one of
// them plus the scalar reference.
#pragma once

#include <cstddef>
#include <cstdint>

#include "comimo/numeric/simd/gf256_tables.h"

#if defined(__SSE2__) || defined(__AVX2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace comimo::simd {

/// Scalar reference — always available, the COMIMO_SIMD=OFF path, and
/// the tail loop every vector backend falls back to.
struct GfScalar {
  static void xor_row(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t len) noexcept {
    for (std::size_t i = 0; i < len; ++i) dst[i] ^= src[i];
  }

  static void mul_add_row(std::uint8_t* dst, const std::uint8_t* src,
                          std::uint8_t c, std::size_t len) noexcept {
    if (c == 0) return;
    if (c == 1) {
      xor_row(dst, src, len);
      return;
    }
    const std::uint8_t* lo = kGf256.mul_lo[c];
    const std::uint8_t* hi = kGf256.mul_hi[c];
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] ^= static_cast<std::uint8_t>(lo[src[i] & 0x0F] ^ hi[src[i] >> 4]);
    }
  }

  static void mul_region(std::uint8_t* buf, std::uint8_t c,
                         std::size_t len) noexcept {
    if (c == 1) return;
    if (c == 0) {
      for (std::size_t i = 0; i < len; ++i) buf[i] = 0;
      return;
    }
    const std::uint8_t* lo = kGf256.mul_lo[c];
    const std::uint8_t* hi = kGf256.mul_hi[c];
    for (std::size_t i = 0; i < len; ++i) {
      buf[i] = static_cast<std::uint8_t>(lo[buf[i] & 0x0F] ^ hi[buf[i] >> 4]);
    }
  }
};

#if defined(__SSE2__)
/// SSE2 has no byte shuffle, so only the XOR paths widen (16 bytes per
/// op); the general product defers to the scalar nibble loop.  Coded
/// packets are unaligned std::vector storage, hence loadu/storeu.
struct GfSse2 {
  static void xor_row(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t len) noexcept {
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
      const __m128i d =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
      const __m128i s =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                       _mm_xor_si128(d, s));
    }
    GfScalar::xor_row(dst + i, src + i, len - i);
  }

  static void mul_add_row(std::uint8_t* dst, const std::uint8_t* src,
                          std::uint8_t c, std::size_t len) noexcept {
    if (c == 0) return;
    if (c == 1) {
      xor_row(dst, src, len);
      return;
    }
    GfScalar::mul_add_row(dst, src, c, len);
  }

  static void mul_region(std::uint8_t* buf, std::uint8_t c,
                         std::size_t len) noexcept {
    GfScalar::mul_region(buf, c, len);
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
/// 32 bytes per step: two in-lane PSHUFBs against the broadcast nibble
/// tables, one XOR to combine, one XOR to accumulate.
struct GfAvx2 {
  static void xor_row(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t len) noexcept {
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, s));
    }
    GfScalar::xor_row(dst + i, src + i, len - i);
  }

  static void mul_add_row(std::uint8_t* dst, const std::uint8_t* src,
                          std::uint8_t c, std::size_t len) noexcept {
    if (c == 0) return;
    if (c == 1) {
      xor_row(dst, src, len);
      return;
    }
    const __m256i lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kGf256.mul_lo[c])));
    const __m256i hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kGf256.mul_hi[c])));
    const __m256i nib = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      const __m256i lo_n = _mm256_and_si256(s, nib);
      const __m256i hi_n = _mm256_and_si256(_mm256_srli_epi16(s, 4), nib);
      const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_n),
                                            _mm256_shuffle_epi8(hi, hi_n));
      const __m256i d =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(d, prod));
    }
    GfScalar::mul_add_row(dst + i, src + i, c, len - i);
  }

  static void mul_region(std::uint8_t* buf, std::uint8_t c,
                         std::size_t len) noexcept {
    if (c == 1) return;
    if (c == 0) {
      GfScalar::mul_region(buf, c, len);
      return;
    }
    const __m256i lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kGf256.mul_lo[c])));
    const __m256i hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kGf256.mul_hi[c])));
    const __m256i nib = _mm256_set1_epi8(0x0F);
    std::size_t i = 0;
    for (; i + 32 <= len; i += 32) {
      const __m256i s =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(buf + i));
      const __m256i lo_n = _mm256_and_si256(s, nib);
      const __m256i hi_n = _mm256_and_si256(_mm256_srli_epi16(s, 4), nib);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(buf + i),
                          _mm256_xor_si256(_mm256_shuffle_epi8(lo, lo_n),
                                           _mm256_shuffle_epi8(hi, hi_n)));
    }
    GfScalar::mul_region(buf + i, c, len - i);
  }
};
#endif  // __AVX2__

#if defined(__ARM_NEON) && defined(__aarch64__)
/// 16 bytes per step via vqtbl1q_u8 — NEON's table lookup is exactly
/// the 16-entry nibble shuffle the split product needs.
struct GfNeon {
  static void xor_row(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t len) noexcept {
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
      vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
    }
    GfScalar::xor_row(dst + i, src + i, len - i);
  }

  static void mul_add_row(std::uint8_t* dst, const std::uint8_t* src,
                          std::uint8_t c, std::size_t len) noexcept {
    if (c == 0) return;
    if (c == 1) {
      xor_row(dst, src, len);
      return;
    }
    const uint8x16_t lo = vld1q_u8(kGf256.mul_lo[c]);
    const uint8x16_t hi = vld1q_u8(kGf256.mul_hi[c]);
    const uint8x16_t nib = vdupq_n_u8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
      const uint8x16_t s = vld1q_u8(src + i);
      const uint8x16_t prod =
          veorq_u8(vqtbl1q_u8(lo, vandq_u8(s, nib)),
                   vqtbl1q_u8(hi, vshrq_n_u8(s, 4)));
      vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), prod));
    }
    GfScalar::mul_add_row(dst + i, src + i, c, len - i);
  }

  static void mul_region(std::uint8_t* buf, std::uint8_t c,
                         std::size_t len) noexcept {
    if (c == 1) return;
    if (c == 0) {
      GfScalar::mul_region(buf, c, len);
      return;
    }
    const uint8x16_t lo = vld1q_u8(kGf256.mul_lo[c]);
    const uint8x16_t hi = vld1q_u8(kGf256.mul_hi[c]);
    const uint8x16_t nib = vdupq_n_u8(0x0F);
    std::size_t i = 0;
    for (; i + 16 <= len; i += 16) {
      const uint8x16_t s = vld1q_u8(buf + i);
      vst1q_u8(buf + i, veorq_u8(vqtbl1q_u8(lo, vandq_u8(s, nib)),
                                 vqtbl1q_u8(hi, vshrq_n_u8(s, 4))));
    }
    GfScalar::mul_region(buf + i, c, len - i);
  }
};
#endif  // __ARM_NEON && __aarch64__

}  // namespace comimo::simd
