// Generic batch-SoA kernel bodies, templated on a Vec backend.
//
// Included only by the per-ISA backend TUs (kernels_*.cpp), each of
// which instantiates make_kernels<V>() for its vector type.  Every
// kernel walks the same loop nest as its scalar counterpart
// (numeric/cmatrix.cpp, phy/stbc.cpp, phy/modulation.cpp) and expands
// complex arithmetic into the libstdc++ finite-path formula with one
// vector op per scalar rounding — the whole bit-identity argument lives
// in these bodies, so any edit here must preserve the op-for-op
// correspondence the comments call out.
//
// Complex product (matches std::complex<double> operator* for the
// finite values the link kernels produce):
//   re = (ar·br) − (ai·bi)        im = (ar·bi) + (ai·br)
// Conjugated product b·conj(s) (sign folds are exact in IEEE):
//   re = (br·sr) + (bi·si)        im = (bi·sr) − (br·si)
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "comimo/numeric/simd/gf_kernels_impl.h"
#include "comimo/numeric/simd/simd.h"
#include "comimo/numeric/simd/vec.h"

namespace comimo::simd::detail {

template <class V>
void multiply_batch(const double* a_re, const double* a_im,
                    const double* b_re, const double* b_im, double* out_re,
                    double* out_im, std::size_t a_rows, std::size_t a_cols,
                    std::size_t b_cols) {
  constexpr std::size_t W = V::kWidth;
  for (std::size_t r = 0; r < a_rows; ++r) {
    for (std::size_t c = 0; c < b_cols; ++c) {
      V sum_re = V::zero();
      V sum_im = V::zero();
      for (std::size_t k = 0; k < a_cols; ++k) {
        const std::size_t ai = (r * a_cols + k) * W;
        const std::size_t bi = (k * b_cols + c) * W;
        const V ar = V::load(a_re + ai);
        const V aim = V::load(a_im + ai);
        const V br = V::load(b_re + bi);
        const V bim = V::load(b_im + bi);
        // sum += a(r,k)·b(k,c): product first (one rounding per mul and
        // per ±), then the accumulate — the scalar `sum += a*b` order.
        sum_re = sum_re + (ar * br - aim * bim);
        sum_im = sum_im + (ar * bim + aim * br);
      }
      const std::size_t oi = (r * b_cols + c) * W;
      sum_re.store(out_re + oi);
      sum_im.store(out_im + oi);
    }
  }
}

template <class V>
void multiply_transposed_batch(const double* a_re, const double* a_im,
                               const double* b_re, const double* b_im,
                               double* out_re, double* out_im,
                               std::size_t a_rows, std::size_t a_cols,
                               std::size_t b_rows) {
  constexpr std::size_t W = V::kWidth;
  for (std::size_t r = 0; r < a_rows; ++r) {
    for (std::size_t c = 0; c < b_rows; ++c) {
      V sum_re = V::zero();
      V sum_im = V::zero();
      for (std::size_t k = 0; k < a_cols; ++k) {
        const std::size_t ai = (r * a_cols + k) * W;
        const std::size_t bi = (c * a_cols + k) * W;
        const V ar = V::load(a_re + ai);
        const V aim = V::load(a_im + ai);
        const V br = V::load(b_re + bi);
        const V bim = V::load(b_im + bi);
        sum_re = sum_re + (ar * br - aim * bim);
        sum_im = sum_im + (ar * bim + aim * br);
      }
      const std::size_t oi = (r * b_rows + c) * W;
      sum_re.store(out_re + oi);
      sum_im.store(out_im + oi);
    }
  }
}

template <class V>
void scale_batch(double* re, double* im, std::size_t elems, double s) {
  constexpr std::size_t W = V::kWidth;
  const V vs = V::broadcast(s);
  for (std::size_t e = 0; e < elems; ++e) {
    (V::load(re + e * W) * vs).store(re + e * W);
    (V::load(im + e * W) * vs).store(im + e * W);
  }
}

template <class V>
void divide_batch(double* re, double* im, std::size_t elems, double s) {
  constexpr std::size_t W = V::kWidth;
  const V vs = V::broadcast(s);
  for (std::size_t e = 0; e < elems; ++e) {
    (V::load(re + e * W) / vs).store(re + e * W);
    (V::load(im + e * W) / vs).store(im + e * W);
  }
}

template <class V>
void stbc_encode_batch(const cplx* a, const cplx* b, std::size_t t,
                       std::size_t mt, std::size_t k, double power_scale,
                       const double* sym_re, const double* sym_im,
                       double* out_re, double* out_im) {
  constexpr std::size_t W = V::kWidth;
  const V ps = V::broadcast(power_scale);
  for (std::size_t tt = 0; tt < t; ++tt) {
    for (std::size_t i = 0; i < mt; ++i) {
      V v_re = V::zero();
      V v_im = V::zero();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::size_t ci = (tt * mt + i) * k + kk;
        const V ar = V::broadcast(a[ci].real());
        const V aim = V::broadcast(a[ci].imag());
        const V br = V::broadcast(b[ci].real());
        const V bim = V::broadcast(b[ci].imag());
        const V sr = V::load(sym_re + kk * W);
        const V si = V::load(sym_im + kk * W);
        // a·s + b·conj(s), then v += — the scalar expression tree.
        const V p1_re = ar * sr - aim * si;
        const V p1_im = ar * si + aim * sr;
        const V p2_re = br * sr + bim * si;
        const V p2_im = bim * sr - br * si;
        v_re = v_re + (p1_re + p2_re);
        v_im = v_im + (p1_im + p2_im);
      }
      const std::size_t oi = (tt * mt + i) * W;
      (v_re * ps).store(out_re + oi);
      (v_im * ps).store(out_im + oi);
    }
  }
}

template <class V>
void stbc_encode_multi_batch(const cplx* a, const cplx* b, std::size_t t,
                             std::size_t mt, std::size_t k,
                             double power_scale, const double* sym_re,
                             const double* sym_im, double* out_re,
                             double* out_im) {
  constexpr std::size_t W = V::kWidth;
  const V ps = V::broadcast(power_scale);
  for (std::size_t tt = 0; tt < t; ++tt) {
    for (std::size_t i = 0; i < mt; ++i) {
      V v_re = V::zero();
      V v_im = V::zero();
      for (std::size_t kk = 0; kk < k; ++kk) {
        const std::size_t ci = (tt * mt + i) * k + kk;
        const V ar = V::broadcast(a[ci].real());
        const V aim = V::broadcast(a[ci].imag());
        const V br = V::broadcast(b[ci].real());
        const V bim = V::broadcast(b[ci].imag());
        // The only difference from stbc_encode_batch: antenna i reads
        // its own symbol plane (the hop's per-antenna beliefs).
        const V sr = V::load(sym_re + (i * k + kk) * W);
        const V si = V::load(sym_im + (i * k + kk) * W);
        const V p1_re = ar * sr - aim * si;
        const V p1_im = ar * si + aim * sr;
        const V p2_re = br * sr + bim * si;
        const V p2_im = bim * sr - br * si;
        v_re = v_re + (p1_re + p2_re);
        v_im = v_im + (p1_im + p2_im);
      }
      const std::size_t oi = (tt * mt + i) * W;
      (v_re * ps).store(out_re + oi);
      (v_im * ps).store(out_im + oi);
    }
  }
}

template <class V>
void stbc_build_fy_batch(const cplx* a, const cplx* b, std::size_t t,
                         std::size_t mt, std::size_t k, std::size_t mr,
                         double power_scale, const double* h_re,
                         const double* h_im, const double* rx_re,
                         const double* rx_im, double* f, double* y) {
  constexpr std::size_t W = V::kWidth;
  const std::size_t cols = 2 * k;
  const V ps = V::broadcast(power_scale);
  for (std::size_t tt = 0; tt < t; ++tt) {
    for (std::size_t j = 0; j < mr; ++j) {
      const std::size_t row_re = 2 * (tt * mr + j);
      const std::size_t row_im = row_re + 1;
      const std::size_t ri = (tt * mr + j) * W;
      V::load(rx_re + ri).store(y + row_re * W);
      V::load(rx_im + ri).store(y + row_im * W);
      for (std::size_t kk = 0; kk < k; ++kk) {
        V alpha_re = V::zero();
        V alpha_im = V::zero();
        V beta_re = V::zero();
        V beta_im = V::zero();
        for (std::size_t i = 0; i < mt; ++i) {
          const std::size_t ci = (tt * mt + i) * k + kk;
          const std::size_t hi = (j * mt + i) * W;
          const V hr = V::load(h_re + hi);
          const V him = V::load(h_im + hi);
          const V ar = V::broadcast(a[ci].real());
          const V aim = V::broadcast(a[ci].imag());
          alpha_re = alpha_re + (ar * hr - aim * him);
          alpha_im = alpha_im + (ar * him + aim * hr);
          const V br = V::broadcast(b[ci].real());
          const V bim = V::broadcast(b[ci].imag());
          beta_re = beta_re + (br * hr - bim * him);
          beta_im = beta_im + (br * him + bim * hr);
        }
        alpha_re = alpha_re * ps;
        alpha_im = alpha_im * ps;
        beta_re = beta_re * ps;
        beta_im = beta_im * ps;
        // r = alpha·s + beta·conj(s) in the real expansion; the scalar
        // `-alpha.imag() + beta.imag()` is the exact IEEE equivalent of
        // beta_im − alpha_im.
        (alpha_re + beta_re).store(f + (row_re * cols + 2 * kk) * W);
        (beta_im - alpha_im).store(f + (row_re * cols + 2 * kk + 1) * W);
        (alpha_im + beta_im).store(f + (row_im * cols + 2 * kk) * W);
        (alpha_re - beta_re).store(f + (row_im * cols + 2 * kk + 1) * W);
      }
    }
  }
}

template <class V>
void gram_rhs_batch(const double* f, const double* y, std::size_t rows,
                    std::size_t cols, double* gram, double* rhs) {
  constexpr std::size_t W = V::kWidth;
  for (std::size_t c1 = 0; c1 < cols; ++c1) {
    for (std::size_t c2 = c1; c2 < cols; ++c2) {
      V dot = V::zero();
      for (std::size_t r = 0; r < rows; ++r) {
        dot = dot + V::load(f + (r * cols + c1) * W) *
                        V::load(f + (r * cols + c2) * W);
      }
      dot.store(gram + (c1 * cols + c2) * W);
      dot.store(gram + (c2 * cols + c1) * W);
    }
    V dot_y = V::zero();
    for (std::size_t r = 0; r < rows; ++r) {
      dot_y = dot_y + V::load(f + (r * cols + c1) * W) * V::load(y + r * W);
    }
    dot_y.store(rhs + c1 * W);
  }
}

template <class V>
void qam_nearest_batch(const double* sym_re, const double* sym_im,
                       std::size_t elems, const cplx* points,
                       std::size_t n_points, std::uint32_t* labels) {
  constexpr std::size_t W = V::kWidth;
  for (std::size_t e = 0; e < elems; ++e) {
    const V rr = V::load(sym_re + e * W);
    const V ri = V::load(sym_im + e * W);
    V best_d = V::broadcast(std::numeric_limits<double>::infinity());
    // Indices tracked as doubles so the winning lane rides the same
    // select mask as its distance; constellation sizes (≤256) are exact.
    V best_i = V::zero();
    for (std::size_t i = 0; i < n_points; ++i) {
      const V dre = rr - V::broadcast(points[i].real());
      const V dim = ri - V::broadcast(points[i].imag());
      const V d = dre * dre + dim * dim;
      // Strict < with first-minimum tie-break: update the index with the
      // *old* best_d mask, then the distance — exactly the scalar argmin.
      best_i = V::select_lt(d, best_d, V::broadcast(static_cast<double>(i)),
                            best_i);
      best_d = V::select_lt(d, best_d, d, best_d);
    }
    alignas(64) double idx[W];
    best_i.store(idx);
    for (std::size_t w = 0; w < W; ++w) {
      labels[e * W + w] = static_cast<std::uint32_t>(idx[w]);
    }
  }
}

// G supplies the byte-region GF(256) kernels (gf_kernels_impl.h); it is
// a separate backend type because those operate on byte streams, not
// W-lane double planes — the tier pairing (VecAvx2 ↔ GfAvx2, …) is
// fixed in each backend TU.
template <class V, class G>
[[nodiscard]] BatchKernels make_kernels(Tier tier) noexcept {
  BatchKernels k;
  k.tier = tier;
  k.width = V::kWidth;
  k.multiply = &multiply_batch<V>;
  k.multiply_transposed = &multiply_transposed_batch<V>;
  k.scale = &scale_batch<V>;
  k.divide = &divide_batch<V>;
  k.stbc_encode = &stbc_encode_batch<V>;
  k.stbc_encode_multi = &stbc_encode_multi_batch<V>;
  k.stbc_build_fy = &stbc_build_fy_batch<V>;
  k.gram_rhs = &gram_rhs_batch<V>;
  k.qam_nearest = &qam_nearest_batch<V>;
  k.gf256_mul_add_row = &G::mul_add_row;
  k.gf256_mul_region = &G::mul_region;
  k.gf_region_xor = &G::xor_row;
  return k;
}

}  // namespace comimo::simd::detail
