// Fixed-width Vec<double> backends for the batch-SoA kernels.
//
// Each struct wraps one native vector register of W doubles behind the
// minimal op set the generic kernels in batch_kernels_impl.h need:
// aligned load/store, broadcast, +, −, ×, ÷, and a strict-< lanewise
// select.  Only explicit single-op intrinsics are used — never an FMA —
// because the bit-identity contract (see simd.h) requires every lane to
// round exactly like the scalar code, one operation at a time.  The
// ISA-specific structs are only defined when the TU is compiled with
// the matching -m flag, so each backend TU sees exactly one of them.
#pragma once

#include <cstddef>

#if defined(__SSE2__) || defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace comimo::simd {

/// W = 1 reference backend: plain double arithmetic.  This is the
/// bit-identity baseline every wider backend must reproduce per lane,
/// and the tail/kill-switch path.
struct VecScalar {
  static constexpr std::size_t kWidth = 1;
  double v;

  static VecScalar zero() noexcept { return {0.0}; }
  static VecScalar broadcast(double x) noexcept { return {x}; }
  static VecScalar load(const double* p) noexcept { return {*p}; }
  void store(double* p) const noexcept { *p = v; }

  friend VecScalar operator+(VecScalar a, VecScalar b) noexcept {
    return {a.v + b.v};
  }
  friend VecScalar operator-(VecScalar a, VecScalar b) noexcept {
    return {a.v - b.v};
  }
  friend VecScalar operator*(VecScalar a, VecScalar b) noexcept {
    return {a.v * b.v};
  }
  friend VecScalar operator/(VecScalar a, VecScalar b) noexcept {
    return {a.v / b.v};
  }
  /// Lanewise (a < b) ? x : y — the strict-< first-minimum select the
  /// QAM argmin relies on.
  static VecScalar select_lt(VecScalar a, VecScalar b, VecScalar x,
                             VecScalar y) noexcept {
    return {a.v < b.v ? x.v : y.v};
  }
};

#if defined(__SSE2__)
/// W = 2, x86-64 baseline.  No blendv before SSE4.1, so select uses the
/// classic and/andnot/or mask dance (exact: masks are all-ones/zeros).
struct VecSse2 {
  static constexpr std::size_t kWidth = 2;
  __m128d v;

  static VecSse2 zero() noexcept { return {_mm_setzero_pd()}; }
  static VecSse2 broadcast(double x) noexcept { return {_mm_set1_pd(x)}; }
  static VecSse2 load(const double* p) noexcept { return {_mm_load_pd(p)}; }
  void store(double* p) const noexcept { _mm_store_pd(p, v); }

  friend VecSse2 operator+(VecSse2 a, VecSse2 b) noexcept {
    return {_mm_add_pd(a.v, b.v)};
  }
  friend VecSse2 operator-(VecSse2 a, VecSse2 b) noexcept {
    return {_mm_sub_pd(a.v, b.v)};
  }
  friend VecSse2 operator*(VecSse2 a, VecSse2 b) noexcept {
    return {_mm_mul_pd(a.v, b.v)};
  }
  friend VecSse2 operator/(VecSse2 a, VecSse2 b) noexcept {
    return {_mm_div_pd(a.v, b.v)};
  }
  static VecSse2 select_lt(VecSse2 a, VecSse2 b, VecSse2 x,
                           VecSse2 y) noexcept {
    const __m128d mask = _mm_cmplt_pd(a.v, b.v);
    return {_mm_or_pd(_mm_and_pd(mask, x.v), _mm_andnot_pd(mask, y.v))};
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
/// W = 4.  _CMP_LT_OQ is the ordered, non-signalling strict less-than —
/// identical truth table to the scalar `<` on the finite data the
/// kernels see.  No FMA intrinsics appear anywhere (AVX2 does not imply
/// FMA, and contraction is off in this TU).
struct VecAvx2 {
  static constexpr std::size_t kWidth = 4;
  __m256d v;

  static VecAvx2 zero() noexcept { return {_mm256_setzero_pd()}; }
  static VecAvx2 broadcast(double x) noexcept { return {_mm256_set1_pd(x)}; }
  static VecAvx2 load(const double* p) noexcept {
    return {_mm256_load_pd(p)};
  }
  void store(double* p) const noexcept { _mm256_store_pd(p, v); }

  friend VecAvx2 operator+(VecAvx2 a, VecAvx2 b) noexcept {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend VecAvx2 operator-(VecAvx2 a, VecAvx2 b) noexcept {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend VecAvx2 operator*(VecAvx2 a, VecAvx2 b) noexcept {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend VecAvx2 operator/(VecAvx2 a, VecAvx2 b) noexcept {
    return {_mm256_div_pd(a.v, b.v)};
  }
  static VecAvx2 select_lt(VecAvx2 a, VecAvx2 b, VecAvx2 x,
                           VecAvx2 y) noexcept {
    const __m256d mask = _mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ);
    return {_mm256_blendv_pd(y.v, x.v, mask)};
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// W = 8.  The AVX-512 compare writes a mask register, so select is the
/// mask-blend form; truth table identical to the scalar strict `<` on
/// the finite data the kernels see.  As with AVX2, only explicit
/// mul/add/sub/div intrinsics appear — never an FMA.
struct VecAvx512 {
  static constexpr std::size_t kWidth = 8;
  __m512d v;

  static VecAvx512 zero() noexcept { return {_mm512_setzero_pd()}; }
  static VecAvx512 broadcast(double x) noexcept {
    return {_mm512_set1_pd(x)};
  }
  static VecAvx512 load(const double* p) noexcept {
    return {_mm512_load_pd(p)};
  }
  void store(double* p) const noexcept { _mm512_store_pd(p, v); }

  friend VecAvx512 operator+(VecAvx512 a, VecAvx512 b) noexcept {
    return {_mm512_add_pd(a.v, b.v)};
  }
  friend VecAvx512 operator-(VecAvx512 a, VecAvx512 b) noexcept {
    return {_mm512_sub_pd(a.v, b.v)};
  }
  friend VecAvx512 operator*(VecAvx512 a, VecAvx512 b) noexcept {
    return {_mm512_mul_pd(a.v, b.v)};
  }
  friend VecAvx512 operator/(VecAvx512 a, VecAvx512 b) noexcept {
    return {_mm512_div_pd(a.v, b.v)};
  }
  static VecAvx512 select_lt(VecAvx512 a, VecAvx512 b, VecAvx512 x,
                             VecAvx512 y) noexcept {
    const __mmask8 mask = _mm512_cmp_pd_mask(a.v, b.v, _CMP_LT_OQ);
    return {_mm512_mask_blend_pd(mask, y.v, x.v)};
  }
};
#endif  // __AVX512F__

#if defined(__ARM_NEON) && defined(__aarch64__)
/// W = 2 on aarch64 (NEON is baseline there, no extra -m flag needed).
struct VecNeon {
  static constexpr std::size_t kWidth = 2;
  float64x2_t v;

  static VecNeon zero() noexcept { return {vdupq_n_f64(0.0)}; }
  static VecNeon broadcast(double x) noexcept { return {vdupq_n_f64(x)}; }
  static VecNeon load(const double* p) noexcept { return {vld1q_f64(p)}; }
  void store(double* p) const noexcept { vst1q_f64(p, v); }

  friend VecNeon operator+(VecNeon a, VecNeon b) noexcept {
    return {vaddq_f64(a.v, b.v)};
  }
  friend VecNeon operator-(VecNeon a, VecNeon b) noexcept {
    return {vsubq_f64(a.v, b.v)};
  }
  friend VecNeon operator*(VecNeon a, VecNeon b) noexcept {
    return {vmulq_f64(a.v, b.v)};
  }
  friend VecNeon operator/(VecNeon a, VecNeon b) noexcept {
    return {vdivq_f64(a.v, b.v)};
  }
  static VecNeon select_lt(VecNeon a, VecNeon b, VecNeon x,
                           VecNeon y) noexcept {
    return {vbslq_f64(vcltq_f64(a.v, b.v), x.v, y.v)};
  }
};
#endif  // __ARM_NEON && __aarch64__

}  // namespace comimo::simd
