// Generalized Gauss–Laguerre quadrature.
//
// The average BER in the paper's eqs. (5)–(6) is an expectation over
// x = ‖H‖²_F ~ Gamma(k, 1):  E[f(x)] = ∫₀^∞ x^{k-1} e^{-x} f(x) dx / Γ(k),
// which generalized Gauss–Laguerre with weight x^α e^{-x}, α = k−1,
// integrates exactly up to polynomial degree 2n−1.  The closed form in
// numeric/special.h is the primary path; the quadrature provides an
// independent cross-check (and handles non-integer diversity orders).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace comimo {

/// Nodes/weights of an n-point generalized Gauss–Laguerre rule for the
/// weight x^alpha e^{-x} on [0, ∞).
struct GaussLaguerreRule {
  std::vector<double> nodes;
  std::vector<double> weights;
  double alpha = 0.0;

  /// ∫₀^∞ x^alpha e^{-x} f(x) dx ≈ Σ w_i f(x_i).
  [[nodiscard]] double integrate(
      const std::function<double(double)>& f) const;
};

/// Builds the rule by Newton iteration on the generalized Laguerre
/// polynomial L_n^{(alpha)} (Numerical-Recipes-style `gaulag`).
/// Requires alpha > -1 and 1 <= n <= 256.
[[nodiscard]] GaussLaguerreRule gauss_laguerre(std::size_t n, double alpha);

/// Expectation of f(x) for x ~ Gamma(shape, 1) via an n-point rule:
/// normalizes by Γ(shape) internally.
[[nodiscard]] double gamma_expectation(const std::function<double(double)>& f,
                                       double shape, std::size_t n = 64);

}  // namespace comimo
