#include "comimo/numeric/quadrature.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/special.h"

namespace comimo {

double GaussLaguerreRule::integrate(
    const std::function<double(double)>& f) const {
  double sum = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    sum += weights[i] * f(nodes[i]);
  }
  return sum;
}

GaussLaguerreRule gauss_laguerre(std::size_t n, double alpha) {
  COMIMO_CHECK(n >= 1 && n <= 256, "gauss_laguerre supports 1..256 points");
  COMIMO_CHECK(alpha > -1.0, "gauss_laguerre needs alpha > -1");
  GaussLaguerreRule rule;
  rule.alpha = alpha;
  rule.nodes.resize(n);
  rule.weights.resize(n);

  const auto nd = static_cast<double>(n);
  double z = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Standard initial guesses (Stroud & Secrest / NR `gaulag`).
    if (i == 0) {
      z = (1.0 + alpha) * (3.0 + 0.92 * alpha) / (1.0 + 2.4 * nd + 1.8 * alpha);
    } else if (i == 1) {
      z += (15.0 + 6.25 * alpha) / (1.0 + 0.9 * alpha + 2.5 * nd);
    } else {
      const auto ai = static_cast<double>(i - 1);
      z += ((1.0 + 2.55 * ai) / (1.9 * ai) +
            1.26 * ai * alpha / (1.0 + 3.5 * ai)) *
           (z - rule.nodes[i - 2]) / (1.0 + 0.3 * alpha);
    }
    double pp = 0.0;  // derivative of L_n^{(alpha)} at z
    bool converged = false;
    for (int it = 0; it < 100; ++it) {
      // Recurrence for L_n^{(alpha)}(z).
      double p1 = 1.0;
      double p2 = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const auto jd = static_cast<double>(j);
        const double p3 = p2;
        p2 = p1;
        p1 = ((2.0 * jd + 1.0 + alpha - z) * p2 - (jd + alpha) * p3) /
             (jd + 1.0);
      }
      pp = (nd * p1 - (nd + alpha) * p2) / z;
      const double z_prev = z;
      z = z_prev - p1 / pp;
      if (std::abs(z - z_prev) <= 1e-14 * std::max(1.0, std::abs(z))) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      throw NumericError("gauss_laguerre: Newton iteration did not converge");
    }
    rule.nodes[i] = z;
    // w_i = -Γ(n+alpha) / (Γ(n) · pp · n · L_{n-1}^{(alpha)}(z))
    // expressed via pp and the recurrence value p2 at convergence; use the
    // standard closed form with logs to avoid overflow.
    double p1 = 1.0;
    double p2 = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const auto jd = static_cast<double>(j);
      const double p3 = p2;
      p2 = p1;
      p1 = ((2.0 * jd + 1.0 + alpha - z) * p2 - (jd + alpha) * p3) /
           (jd + 1.0);
    }
    pp = (nd * p1 - (nd + alpha) * p2) / z;
    const double log_num = log_gamma(alpha + nd);
    const double log_den = log_gamma(nd);
    rule.weights[i] = -std::exp(log_num - log_den) / (pp * nd * p2);
  }
  return rule;
}

double gamma_expectation(const std::function<double(double)>& f, double shape,
                         std::size_t n) {
  COMIMO_CHECK(shape > 0.0, "gamma_expectation needs shape > 0");
  const GaussLaguerreRule rule = gauss_laguerre(n, shape - 1.0);
  const double norm = std::exp(log_gamma(shape));
  return rule.integrate(f) / norm;
}

}  // namespace comimo
