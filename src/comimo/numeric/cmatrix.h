// Dense complex matrices/vectors sized for MIMO work (a handful of
// antennas), replacing the Eigen/MATLAB numerics of the original study.
//
// Row-major storage in a std::vector; operations validate shapes with
// COMIMO_CHECK.  Only what the library needs is implemented: arithmetic,
// Hermitian transpose, Frobenius norm, small dense solves, and random
// Rayleigh channel draws.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace comimo {

class Rng;

using cplx = std::complex<double>;

class CMatrix {
 public:
  CMatrix() = default;
  /// rows × cols zero matrix.
  CMatrix(std::size_t rows, std::size_t cols);
  /// From nested initializer lists (rows of equal length).
  CMatrix(std::initializer_list<std::initializer_list<cplx>> rows);

  [[nodiscard]] static CMatrix identity(std::size_t n);
  /// i.i.d. CN(0, variance) entries — a flat Rayleigh-fading channel
  /// matrix draw.
  [[nodiscard]] static CMatrix random_gaussian(std::size_t rows,
                                               std::size_t cols, Rng& rng,
                                               double variance = 1.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] cplx& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] const cplx& operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] CMatrix operator+(const CMatrix& o) const;
  [[nodiscard]] CMatrix operator-(const CMatrix& o) const;
  [[nodiscard]] CMatrix operator*(const CMatrix& o) const;
  [[nodiscard]] CMatrix operator*(cplx s) const;
  CMatrix& operator+=(const CMatrix& o);
  CMatrix& operator-=(const CMatrix& o);
  CMatrix& operator*=(cplx s);

  /// Transpose without conjugation.
  [[nodiscard]] CMatrix transpose() const;
  /// Hermitian (conjugate) transpose.
  [[nodiscard]] CMatrix hermitian() const;
  /// Elementwise conjugate.
  [[nodiscard]] CMatrix conjugate() const;

  /// Frobenius norm ‖A‖_F.
  [[nodiscard]] double frobenius_norm() const noexcept;
  /// Squared Frobenius norm ‖A‖²_F (the diversity statistic in eq. (5)).
  [[nodiscard]] double frobenius_norm2() const noexcept;
  /// Sum of diagonal entries (square matrices).
  [[nodiscard]] cplx trace() const;

  /// Solves A·x = b by Gaussian elimination with partial pivoting;
  /// A must be square and nonsingular.
  [[nodiscard]] std::vector<cplx> solve(const std::vector<cplx>& b) const;
  /// Matrix inverse via the same elimination.
  [[nodiscard]] CMatrix inverse() const;

  /// Maximum absolute entrywise difference, for tests.
  [[nodiscard]] double max_abs_diff(const CMatrix& o) const;

  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Matrix–vector product A·x.
[[nodiscard]] std::vector<cplx> operator*(const CMatrix& a,
                                          const std::vector<cplx>& x);

}  // namespace comimo
