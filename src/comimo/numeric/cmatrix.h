// Dense complex matrices/vectors sized for MIMO work (a handful of
// antennas), replacing the Eigen/MATLAB numerics of the original study.
//
// Row-major storage in a std::vector; construction and the solve/inverse
// boundaries validate shapes with COMIMO_CHECK, per-element access and
// the per-block arithmetic with COMIMO_DCHECK (compiled away in release,
// per common/error.h).  Only what the library needs is implemented:
// arithmetic, Hermitian transpose, Frobenius norm, small dense solves,
// and random Rayleigh channel draws.
//
// The non-owning CMatrixView/ConstCMatrixView plus the *_into free
// functions are the allocation-free face of the same operations: the
// per-block PHY path (phy/link_workspace.h) writes channel draws,
// products, and noise into caller-held storage so a Monte-Carlo chunk
// reuses one arena across every block.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "comimo/numeric/aligned.h"

namespace comimo {

class Rng;

using cplx = std::complex<double>;

class CMatrix {
 public:
  CMatrix() = default;
  /// rows × cols zero matrix.
  CMatrix(std::size_t rows, std::size_t cols);
  /// From nested initializer lists (rows of equal length).
  CMatrix(std::initializer_list<std::initializer_list<cplx>> rows);

  [[nodiscard]] static CMatrix identity(std::size_t n);
  /// i.i.d. CN(0, variance) entries — a flat Rayleigh-fading channel
  /// matrix draw.
  [[nodiscard]] static CMatrix random_gaussian(std::size_t rows,
                                               std::size_t cols, Rng& rng,
                                               double variance = 1.0);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] cplx* data() noexcept { return data_.data(); }
  [[nodiscard]] const cplx* data() const noexcept { return data_.data(); }

  /// Re-shapes to rows × cols and zero-fills.  Reuses the existing
  /// capacity, so a workspace matrix resized between blocks of varying
  /// antenna counts stops allocating once it has seen the largest shape.
  void resize(std::size_t rows, std::size_t cols);

  [[nodiscard]] cplx& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] const cplx& operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] CMatrix operator+(const CMatrix& o) const;
  [[nodiscard]] CMatrix operator-(const CMatrix& o) const;
  [[nodiscard]] CMatrix operator*(const CMatrix& o) const;
  [[nodiscard]] CMatrix operator*(cplx s) const;
  CMatrix& operator+=(const CMatrix& o);
  CMatrix& operator-=(const CMatrix& o);
  CMatrix& operator*=(cplx s);

  /// Transpose without conjugation.
  [[nodiscard]] CMatrix transpose() const;
  /// Hermitian (conjugate) transpose.
  [[nodiscard]] CMatrix hermitian() const;
  /// Elementwise conjugate.
  [[nodiscard]] CMatrix conjugate() const;

  /// Frobenius norm ‖A‖_F.
  [[nodiscard]] double frobenius_norm() const noexcept;
  /// Squared Frobenius norm ‖A‖²_F (the diversity statistic in eq. (5)).
  [[nodiscard]] double frobenius_norm2() const noexcept;
  /// Sum of diagonal entries (square matrices).
  [[nodiscard]] cplx trace() const;

  /// Solves A·x = b by Gaussian elimination with partial pivoting;
  /// A must be square and nonsingular.
  [[nodiscard]] std::vector<cplx> solve(const std::vector<cplx>& b) const;
  /// Allocation-free variant: the solution lands in `x` and `work` holds
  /// the elimination copy of A; both are assign()-ed, so repeated calls
  /// at the same size reuse their capacity.  Bit-identical to solve().
  void solve_into(std::span<const cplx> b, std::vector<cplx>& x,
                  std::vector<cplx>& work) const;
  /// Matrix inverse via the same elimination.
  [[nodiscard]] CMatrix inverse() const;

  /// Maximum absolute entrywise difference, for tests.
  [[nodiscard]] double max_abs_diff(const CMatrix& o) const;

  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  // 64-byte-aligned so views handed to the SIMD batch kernels never
  // need an unaligned-load path (numeric/aligned.h).
  AlignedVec<cplx> data_;
};

/// Matrix–vector product A·x.
[[nodiscard]] std::vector<cplx> operator*(const CMatrix& a,
                                          const std::vector<cplx>& x);

/// Non-owning mutable view over row-major complex storage.  A view is
/// two pointers and two sizes — pass it by value.  The viewed storage
/// must outlive the view; element access is DCHECK-guarded only.
class CMatrixView {
 public:
  CMatrixView() = default;
  CMatrixView(cplx* data, std::size_t rows, std::size_t cols) noexcept
      : data_(data), rows_(rows), cols_(cols) {}
  /*implicit*/ CMatrixView(CMatrix& m) noexcept
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_ * cols_; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] cplx* data() const noexcept { return data_; }

  [[nodiscard]] cplx& operator()(std::size_t r, std::size_t c) const;

  void fill(cplx v) const noexcept;

 private:
  cplx* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Read-only companion of CMatrixView.
class ConstCMatrixView {
 public:
  ConstCMatrixView() = default;
  ConstCMatrixView(const cplx* data, std::size_t rows,
                   std::size_t cols) noexcept
      : data_(data), rows_(rows), cols_(cols) {}
  /*implicit*/ ConstCMatrixView(const CMatrix& m) noexcept
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()) {}
  /*implicit*/ ConstCMatrixView(CMatrixView v) noexcept
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_ * cols_; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] const cplx* data() const noexcept { return data_; }

  [[nodiscard]] const cplx& operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] double frobenius_norm2() const noexcept;
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Owning copy, for interop with the allocating APIs.
  [[nodiscard]] CMatrix to_matrix() const;

 private:
  const cplx* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

// ---- In-place kernels of the per-block link path -----------------------
//
// Each writes every element of its destination (no read-before-write), so
// a workspace buffer reused across blocks can never leak a stale value.
// The RNG-consuming kernels draw in row-major element order — exactly the
// order the allocating APIs use — which is what keeps the workspace
// refactor bit-identical to the original per-block code.

/// Fills `out` with i.i.d. CN(0, variance) draws, row-major — the
/// in-place form of CMatrix::random_gaussian.
void random_gaussian_into(CMatrixView out, Rng& rng, double variance = 1.0);

/// out = a·b.  `out` must not alias `a` or `b`.
void multiply_into(ConstCMatrixView a, ConstCMatrixView b, CMatrixView out);

/// out = a·bᵀ (no conjugation): out(r, c) = Σ_k a(r, k)·b(c, k),
/// accumulated over ascending k.  This is the received-block product
/// Y(t, j) = Σ_i C(t, i)·H(j, i) without materializing Hᵀ.  `out` must
/// not alias `a` or `b`.
void multiply_transposed_into(ConstCMatrixView a, ConstCMatrixView b,
                              CMatrixView out);

/// m(r, c) += CN(0, variance), drawn row-major — the in-place AWGN step.
void add_scaled_noise_into(CMatrixView m, Rng& rng, double variance = 1.0);

}  // namespace comimo
