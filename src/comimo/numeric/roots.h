// Scalar root finding and 1-D minimization used to invert monotone BER
// and energy relations.
#pragma once

#include <functional>

namespace comimo {

struct RootOptions {
  double x_tol = 1e-12;     ///< absolute tolerance on the root location
  double f_tol = 0.0;       ///< stop when |f| <= f_tol
  int max_iterations = 200;
};

/// Finds x in [lo, hi] with f(x) == 0 by bisection.  f(lo) and f(hi)
/// must bracket the root (opposite signs, or one of them zero).
/// Throws NumericError if the bracket is invalid or convergence fails.
[[nodiscard]] double bisect(const std::function<double(double)>& f, double lo,
                            double hi, const RootOptions& opts = {});

/// Brent's method: bisection safety with inverse-quadratic speed.
[[nodiscard]] double brent(const std::function<double(double)>& f, double lo,
                           double hi, const RootOptions& opts = {});

/// Expands [lo, hi] geometrically (keeping lo fixed) until f changes sign
/// or `max_doublings` is exhausted; returns the bracketing hi.
/// Throws NumericError if no sign change is found.
[[nodiscard]] double expand_bracket(const std::function<double(double)>& f,
                                    double lo, double hi,
                                    int max_doublings = 200);

/// Golden-section minimization of a unimodal f over [lo, hi].
[[nodiscard]] double golden_minimize(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     double x_tol = 1e-10,
                                     int max_iterations = 300);

}  // namespace comimo
