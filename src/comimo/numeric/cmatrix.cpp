#include "comimo/numeric/cmatrix.h"

#include <cmath>
#include <sstream>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

CMatrix::CMatrix(std::initializer_list<std::initializer_list<cplx>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    COMIMO_CHECK(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

CMatrix CMatrix::random_gaussian(std::size_t rows, std::size_t cols, Rng& rng,
                                 double variance) {
  CMatrix m(rows, cols);
  random_gaussian_into(m, rng, variance);
  return m;
}

void CMatrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, cplx{0.0, 0.0});
}

cplx& CMatrix::operator()(std::size_t r, std::size_t c) {
  COMIMO_DCHECK(r < rows_ && c < cols_, "index out of range");
  return data_[r * cols_ + c];
}

const cplx& CMatrix::operator()(std::size_t r, std::size_t c) const {
  COMIMO_DCHECK(r < rows_ && c < cols_, "index out of range");
  return data_[r * cols_ + c];
}

CMatrix CMatrix::operator+(const CMatrix& o) const {
  CMatrix out = *this;
  out += o;
  return out;
}

CMatrix CMatrix::operator-(const CMatrix& o) const {
  CMatrix out = *this;
  out -= o;
  return out;
}

// Per-op arithmetic runs on the per-block path; shape checks here are
// debug-only (the error.h policy), while construction and solve/inverse
// keep their always-on COMIMO_CHECKs.
CMatrix& CMatrix::operator+=(const CMatrix& o) {
  COMIMO_DCHECK(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in +");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

CMatrix& CMatrix::operator-=(const CMatrix& o) {
  COMIMO_DCHECK(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch in -");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

CMatrix CMatrix::operator*(const CMatrix& o) const {
  COMIMO_DCHECK(cols_ == o.rows_, "shape mismatch in *");
  CMatrix out(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx aik = data_[i * cols_ + k];
      if (aik == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) {
        out.data_[i * o.cols_ + j] += aik * o.data_[k * o.cols_ + j];
      }
    }
  }
  return out;
}

CMatrix CMatrix::operator*(cplx s) const {
  CMatrix out = *this;
  out *= s;
  return out;
}

CMatrix& CMatrix::operator*=(cplx s) {
  for (auto& v : data_) v *= s;
  return *this;
}

CMatrix CMatrix::transpose() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(c, r) = std::conj((*this)(r, c));
    }
  }
  return out;
}

CMatrix CMatrix::conjugate() const {
  CMatrix out = *this;
  for (auto& v : out.data_) v = std::conj(v);
  return out;
}

double CMatrix::frobenius_norm2() const noexcept {
  double sum = 0.0;
  for (const auto& v : data_) sum += std::norm(v);
  return sum;
}

double CMatrix::frobenius_norm() const noexcept {
  return std::sqrt(frobenius_norm2());
}

cplx CMatrix::trace() const {
  COMIMO_CHECK(rows_ == cols_, "trace needs a square matrix");
  cplx t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

std::vector<cplx> CMatrix::solve(const std::vector<cplx>& b) const {
  std::vector<cplx> x;
  std::vector<cplx> work;
  solve_into(b, x, work);
  return x;
}

void CMatrix::solve_into(std::span<const cplx> b, std::vector<cplx>& x,
                         std::vector<cplx>& work) const {
  COMIMO_CHECK(rows_ == cols_, "solve needs a square matrix");
  COMIMO_CHECK(b.size() == rows_, "rhs size mismatch");
  const std::size_t n = rows_;
  // Working copies: augmented elimination with partial pivoting.
  std::vector<cplx>& a = work;
  a.assign(data_.begin(), data_.end());
  x.assign(b.begin(), b.end());

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t best = col;
    double best_mag = std::abs(a[col * n + col]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::abs(a[r * n + col]);
      if (mag > best_mag) {
        best = r;
        best_mag = mag;
      }
    }
    if (best_mag == 0.0) throw NumericError("singular matrix in solve");
    if (best != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[best * n + c], a[col * n + c]);
      }
      std::swap(x[best], x[col]);
    }
    const cplx pivot = a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const cplx f = a[r * n + col] / pivot;
      if (f == cplx{0.0, 0.0}) continue;
      a[r * n + col] = 0.0;
      for (std::size_t c = col + 1; c < n; ++c) {
        a[r * n + c] -= f * a[col * n + c];
      }
      x[r] -= f * x[col];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    cplx sum = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a[ri * n + c] * x[c];
    x[ri] = sum / a[ri * n + ri];
  }
}

CMatrix CMatrix::inverse() const {
  COMIMO_CHECK(rows_ == cols_, "inverse needs a square matrix");
  const std::size_t n = rows_;
  CMatrix out(n, n);
  // Column-by-column solves against unit vectors; fine at MIMO sizes.
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<cplx> e(n, cplx{0.0, 0.0});
    e[c] = 1.0;
    const std::vector<cplx> col = solve(e);
    for (std::size_t r = 0; r < n; ++r) out(r, c) = col[r];
  }
  return out;
}

double CMatrix::max_abs_diff(const CMatrix& o) const {
  COMIMO_CHECK(rows_ == o.rows_ && cols_ == o.cols_, "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - o.data_[i]));
  }
  return m;
}

std::string CMatrix::to_string(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < cols_; ++c) {
      const cplx v = (*this)(r, c);
      os << "(" << v.real() << (v.imag() < 0 ? "" : "+") << v.imag() << "i)";
      if (c + 1 < cols_) os << ", ";
    }
    os << (r + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

std::vector<cplx> operator*(const CMatrix& a, const std::vector<cplx>& x) {
  COMIMO_DCHECK(a.cols() == x.size(), "shape mismatch in A*x");
  std::vector<cplx> y(a.rows(), cplx{0.0, 0.0});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    cplx sum{0.0, 0.0};
    for (std::size_t c = 0; c < a.cols(); ++c) sum += a(r, c) * x[c];
    y[r] = sum;
  }
  return y;
}

cplx& CMatrixView::operator()(std::size_t r, std::size_t c) const {
  COMIMO_DCHECK(r < rows_ && c < cols_, "index out of range");
  return data_[r * cols_ + c];
}

void CMatrixView::fill(cplx v) const noexcept {
  for (std::size_t i = 0; i < size(); ++i) data_[i] = v;
}

const cplx& ConstCMatrixView::operator()(std::size_t r,
                                         std::size_t c) const {
  COMIMO_DCHECK(r < rows_ && c < cols_, "index out of range");
  return data_[r * cols_ + c];
}

double ConstCMatrixView::frobenius_norm2() const noexcept {
  double sum = 0.0;
  for (std::size_t i = 0; i < size(); ++i) sum += std::norm(data_[i]);
  return sum;
}

double ConstCMatrixView::frobenius_norm() const noexcept {
  return std::sqrt(frobenius_norm2());
}

CMatrix ConstCMatrixView::to_matrix() const {
  CMatrix out(rows_, cols_);
  for (std::size_t i = 0; i < size(); ++i) out.data()[i] = data_[i];
  return out;
}

void random_gaussian_into(CMatrixView out, Rng& rng, double variance) {
  cplx* p = out.data();
  const std::size_t n = out.size();
  for (std::size_t i = 0; i < n; ++i) p[i] = rng.complex_gaussian(variance);
}

void multiply_into(ConstCMatrixView a, ConstCMatrixView b, CMatrixView out) {
  COMIMO_DCHECK(a.cols() == b.rows(), "shape mismatch in multiply_into");
  COMIMO_DCHECK(out.rows() == a.rows() && out.cols() == b.cols(),
                "output shape mismatch in multiply_into");
  COMIMO_DCHECK(out.data() != a.data() && out.data() != b.data(),
                "multiply_into output must not alias an input");
  // Row base pointers hoisted out of the inner loops: the strided
  // operator() form costs an index multiply per access, which dominates
  // at MIMO sizes.  Accumulation order is unchanged (ascending k), so
  // the result is bit-identical — this is also the SIMD tail path.
  const std::size_t a_cols = a.cols();
  const std::size_t b_cols = b.cols();
  const cplx* bp = b.data();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const cplx* arow = a.data() + r * a_cols;
    cplx* orow = out.data() + r * b_cols;
    for (std::size_t c = 0; c < b_cols; ++c) {
      const cplx* bcol = bp + c;
      cplx sum{0.0, 0.0};
      for (std::size_t k = 0; k < a_cols; ++k) sum += arow[k] * bcol[k * b_cols];
      orow[c] = sum;
    }
  }
}

void multiply_transposed_into(ConstCMatrixView a, ConstCMatrixView b,
                              CMatrixView out) {
  COMIMO_DCHECK(a.cols() == b.cols(), "shape mismatch in a·bᵀ");
  COMIMO_DCHECK(out.rows() == a.rows() && out.cols() == b.rows(),
                "output shape mismatch in a·bᵀ");
  COMIMO_DCHECK(out.data() != a.data() && out.data() != b.data(),
                "multiply_transposed_into output must not alias an input");
  // Same pointer hoist as multiply_into; both operands walk rows here,
  // so the inner loop is two unit-stride streams.
  const std::size_t a_cols = a.cols();
  const std::size_t b_rows = b.rows();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const cplx* arow = a.data() + r * a_cols;
    cplx* orow = out.data() + r * b_rows;
    for (std::size_t c = 0; c < b_rows; ++c) {
      const cplx* brow = b.data() + c * a_cols;
      cplx sum{0.0, 0.0};
      for (std::size_t k = 0; k < a_cols; ++k) sum += arow[k] * brow[k];
      orow[c] = sum;
    }
  }
}

void add_scaled_noise_into(CMatrixView m, Rng& rng, double variance) {
  cplx* p = m.data();
  const std::size_t n = m.size();
  for (std::size_t i = 0; i < n; ++i) p[i] += rng.complex_gaussian(variance);
}

}  // namespace comimo
