// Unit conversions used throughout the library.
//
// The paper (§2.3) quotes its system constants in a mixture of linear and
// logarithmic units (mW, dB, dBm/Hz); everything inside the library is kept
// in SI (watts, joules, meters, seconds, hertz) and converted at the
// boundary with the helpers below.
#pragma once

#include <cmath>

namespace comimo {

inline constexpr double kPi = 3.14159265358979323846;

/// Speed of light in vacuum [m/s].
inline constexpr double kSpeedOfLight = 2.99792458e8;

/// Converts a power ratio expressed in decibels to a linear ratio.
[[nodiscard]] inline double db_to_linear(double db) noexcept {
  return std::pow(10.0, db / 10.0);
}

/// Converts a linear power ratio to decibels.
[[nodiscard]] inline double linear_to_db(double linear) noexcept {
  return 10.0 * std::log10(linear);
}

/// Converts an absolute power in dBm to watts.
[[nodiscard]] inline double dbm_to_watts(double dbm) noexcept {
  return std::pow(10.0, dbm / 10.0) * 1e-3;
}

/// Converts an absolute power in watts to dBm.
[[nodiscard]] inline double watts_to_dbm(double watts) noexcept {
  return 10.0 * std::log10(watts / 1e-3);
}

/// Converts a spectral density quoted in dBm/Hz to W/Hz.
[[nodiscard]] inline double dbm_per_hz_to_w_per_hz(double dbm_per_hz) noexcept {
  return dbm_to_watts(dbm_per_hz);
}

/// Converts degrees to radians.
[[nodiscard]] inline double deg_to_rad(double deg) noexcept {
  return deg * kPi / 180.0;
}

/// Converts radians to degrees.
[[nodiscard]] inline double rad_to_deg(double rad) noexcept {
  return rad * 180.0 / kPi;
}

/// Wraps an angle to (-pi, pi].
[[nodiscard]] double wrap_angle(double rad) noexcept;

}  // namespace comimo
