// Tiny leveled logger.  Benches and examples use it for progress output;
// the library itself only logs at kDebug, so tests run silent by default.
#pragma once

#include <sstream>
#include <string>

namespace comimo {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& msg);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace comimo

#define COMIMO_LOG(level) ::comimo::detail::LogStream(::comimo::LogLevel::level)
