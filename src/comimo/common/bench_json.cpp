#include "comimo/common/bench_json.h"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/numeric/simd/simd.h"
#include "comimo/obs/export.h"
#include "comimo/obs/trace.h"

namespace comimo {

namespace {

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wall-clock stamp for the envelope.  monotonic_s() is steady_clock —
// epoch = boot — so it can order events within a run but cannot date
// one; committed BENCH_*.json trajectories need the system clock.
std::int64_t timestamp_unix_s() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void dump_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; null keeps the schema parseable and the
    // validator flags it loudly.
    os << "null";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(std::numeric_limits<double>::max_digits10);
  tmp << v;
  os << tmp.str();
}

void newline_indent(std::ostream& os, int indent, int depth) {
  if (indent <= 0) return;
  os << '\n';
  for (int i = 0; i < indent * depth; ++i) os << ' ';
}

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::integer(std::int64_t v) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json& Json::set(const std::string& key, Json value) {
  COMIMO_CHECK(kind_ == Kind::kObject, "set on non-object Json");
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::set(const std::string& key, double value) {
  return set(key, Json::number(value));
}
Json& Json::set(const std::string& key, std::int64_t value) {
  return set(key, Json::integer(value));
}
Json& Json::set(const std::string& key, std::uint64_t value) {
  return set(key, Json::integer(static_cast<std::int64_t>(value)));
}
Json& Json::set(const std::string& key, int value) {
  return set(key, Json::integer(value));
}
Json& Json::set(const std::string& key, unsigned value) {
  return set(key, Json::integer(static_cast<std::int64_t>(value)));
}
Json& Json::set(const std::string& key, bool value) {
  return set(key, Json::boolean(value));
}
Json& Json::set(const std::string& key, const char* value) {
  return set(key, Json::string(value));
}
Json& Json::set(const std::string& key, const std::string& value) {
  return set(key, Json::string(value));
}

Json& Json::push(Json value) {
  COMIMO_CHECK(kind_ == Kind::kArray, "push on non-array Json");
  array_.push_back(std::move(value));
  return *this;
}

bool Json::is_object() const noexcept { return kind_ == Kind::kObject; }
bool Json::is_array() const noexcept { return kind_ == Kind::kArray; }

void Json::dump(std::ostream& os, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kInt: os << int_; break;
    case Kind::kDouble: dump_double(os, double_); break;
    case Kind::kString: dump_escaped(os, string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) os << ',';
        newline_indent(os, indent, depth + 1);
        array_[i].dump(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) os << ',';
        newline_indent(os, indent, depth + 1);
        dump_escaped(os, object_[i].first);
        os << (indent > 0 ? ": " : ":");
        object_[i].second.dump(os, indent, depth + 1);
      }
      newline_indent(os, indent, depth);
      os << '}';
      break;
    }
  }
}

std::string Json::dump_string(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

BenchReporter::BenchReporter(std::string bench_name)
    : bench_name_(std::move(bench_name)),
      threads_(ThreadPool::shared().size()),
      start_monotonic_s_(monotonic_s()) {}

void BenchReporter::add_record(Json params, Json metrics, std::size_t trials,
                               double trials_per_sec) {
  COMIMO_CHECK(params.is_object() && metrics.is_object(),
               "record params/metrics must be JSON objects");
  Json record = Json::object();
  record.set("params", std::move(params));
  record.set("metrics", std::move(metrics));
  if (trials > 0) {
    record.set("trials", trials);
    record.set("trials_per_sec", trials_per_sec);
  }
  records_.push_back(std::move(record));
}

void BenchReporter::write(std::ostream& os) const {
  Json root = Json::object();
  root.set("schema", "comimo-bench-v1");
  root.set("bench", bench_name_);
  root.set("threads", threads_);
  root.set("hardware_concurrency", std::thread::hardware_concurrency());
  root.set("timestamp_unix_s", timestamp_unix_s());
  root.set("wall_s", monotonic_s() - start_monotonic_s_);
  Json records = Json::array();
  for (const auto& r : records_) records.push(r);
  root.set("records", std::move(records));
  if (obs::enabled()) {
    root.set("metrics",
             obs::metrics_to_json(obs::MetricRegistry::global(),
                                  obs::Domain::kDeterministic));
    root.set("metrics_runtime",
             obs::metrics_to_json(obs::MetricRegistry::global(),
                                  obs::Domain::kRuntime));
  }
  root.dump(os, 2);
  os << '\n';
}

void BenchReporter::write_file(const std::string& path) const {
  std::ofstream os(path);
  COMIMO_CHECK(os.good(), "cannot open bench JSON output path: " + path);
  write(os);
}

unsigned BenchCli::effective_threads() const {
  return pool_ ? pool_->size() : ThreadPool::shared().size();
}

BenchCli parse_bench_cli(int argc, char** argv) {
  BenchCli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--json") {
      if (const char* v = next()) cli.json_path = v;
    } else if (arg == "--threads") {
      if (const char* v = next()) {
        cli.threads = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
      }
    } else if (arg == "--trials") {
      if (const char* v = next()) {
        cli.trials = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
      }
    } else if (arg == "--shards") {
      if (const char* v = next()) {
        cli.shards = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
        if (cli.shards == 0) cli.shards = 1;
      }
    } else if (arg == "--adaptive") {
      if (const char* v = next()) cli.adaptive = std::strtod(v, nullptr);
    } else if (arg.rfind("--adaptive=", 0) == 0) {
      cli.adaptive = std::strtod(arg.c_str() + 11, nullptr);
    } else if (arg == "--obs") {
      cli.obs = true;
    } else if (arg == "--trace") {
      if (const char* v = next()) cli.trace_path = v;
    } else if (arg == "--simd") {
      if (const char* v = next()) cli.simd = v;
    } else if (arg.rfind("--simd=", 0) == 0) {
      cli.simd = arg.substr(7);
    }
    // Unknown flags are ignored by design.
  }
  // Pin the dispatch tier before any pool/bench code can touch a batch
  // kernel; "auto" just confirms the default.  Throws (InvalidArgument)
  // on unknown or unavailable modes, surfacing typos immediately.
  simd::set_mode(cli.simd);
  if (cli.threads > 0) {
    cli.pool_ = std::make_shared<ThreadPool>(cli.threads);
  }
  if (!cli.trace_path.empty()) {
    // Arms tracing and registers an exit-time flush, so every bench
    // binary supports --trace without per-binary wiring.
    obs::start_trace(cli.trace_path);
  } else if (cli.obs) {
    obs::set_enabled(true);
  }
  return cli;
}

}  // namespace comimo
