// Library version.
#pragma once

namespace comimo {

struct Version {
  int major = 1;
  int minor = 0;
  int patch = 0;
};

/// The library's semantic version.
[[nodiscard]] constexpr Version version() noexcept { return Version{}; }

/// "major.minor.patch".
[[nodiscard]] const char* version_string() noexcept;

}  // namespace comimo
