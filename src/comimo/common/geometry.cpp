#include "comimo/common/geometry.h"

#include <algorithm>

namespace comimo {

double angle_at(const Vec2& at, const Vec2& p, const Vec2& q) {
  const Vec2 u = (p - at).normalized();
  const Vec2 v = (q - at).normalized();
  const double c = std::clamp(u.dot(v), -1.0, 1.0);
  return std::acos(c);
}

}  // namespace comimo
