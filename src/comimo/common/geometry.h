// Minimal 2-D geometry used by the network and interweave modules.
#pragma once

#include <cmath>

namespace comimo {

/// A point / displacement in the plane, in meters.
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr bool operator==(const Vec2& o) const = default;

  [[nodiscard]] constexpr double dot(const Vec2& o) const {
    return x * o.x + y * o.y;
  }
  /// z-component of the 3-D cross product; sign gives orientation.
  [[nodiscard]] constexpr double cross(const Vec2& o) const {
    return x * o.y - y * o.x;
  }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  /// Unit vector in the same direction; the zero vector maps to itself.
  [[nodiscard]] Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// Polar angle atan2(y, x) in radians.
  [[nodiscard]] double angle() const { return std::atan2(y, x); }
};

[[nodiscard]] inline double distance(const Vec2& a, const Vec2& b) {
  return (a - b).norm();
}

/// Interior angle at vertex `at` between rays at→p and at→q, in [0, π].
[[nodiscard]] double angle_at(const Vec2& at, const Vec2& p, const Vec2& q);

/// Point on the unit circle at `theta` radians.
[[nodiscard]] inline Vec2 unit_vec(double theta) {
  return {std::cos(theta), std::sin(theta)};
}

}  // namespace comimo
