#include "comimo/common/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "comimo/common/error.h"

namespace comimo {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  COMIMO_CHECK(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  COMIMO_CHECK(cells.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (fraction * 100.0)
     << "%";
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto rule = [&] {
    os << "+";
    for (const auto w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  const auto line = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << "\n";
  };
  rule();
  line(header_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

SeriesChart::SeriesChart(std::string x_label, std::vector<double> x)
    : x_label_(std::move(x_label)), x_(std::move(x)) {
  COMIMO_CHECK(!x_.empty(), "chart needs a non-empty x axis");
}

void SeriesChart::add_series(std::string name, std::vector<double> y) {
  COMIMO_CHECK(y.size() == x_.size(), "series length must match x axis");
  series_.emplace_back(std::move(name), std::move(y));
}

void SeriesChart::print(std::ostream& os, bool log_y, int width,
                        int height) const {
  COMIMO_CHECK(!series_.empty(), "chart needs at least one series");
  // --- data table ------------------------------------------------------
  std::vector<std::string> header{x_label_};
  for (const auto& [name, y] : series_) header.push_back(name);
  TextTable table(std::move(header));
  for (std::size_t i = 0; i < x_.size(); ++i) {
    std::vector<std::string> row{TextTable::fmt(x_[i], 1)};
    for (const auto& [name, y] : series_) {
      row.push_back(log_y ? TextTable::sci(y[i]) : TextTable::fmt(y[i], 3));
    }
    table.add_row(std::move(row));
  }
  table.print(os);

  // --- ASCII chart -------------------------------------------------------
  const auto transform = [log_y](double v) {
    return log_y ? std::log10(std::max(v, std::numeric_limits<double>::min()))
                 : v;
  };
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& [name, y] : series_) {
    for (const double v : y) {
      const double t = transform(v);
      lo = std::min(lo, t);
      hi = std::max(hi, t);
    }
  }
  if (!(hi > lo)) hi = lo + 1.0;

  std::vector<std::string> canvas(static_cast<std::size_t>(height),
                                  std::string(static_cast<std::size_t>(width), ' '));
  const double x_lo = x_.front();
  const double x_hi = x_.back() > x_lo ? x_.back() : x_lo + 1.0;
  static const char kMarks[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};
  for (std::size_t s = 0; s < series_.size(); ++s) {
    const char mark = kMarks[s % sizeof(kMarks)];
    for (std::size_t i = 0; i < x_.size(); ++i) {
      const double tx = (x_[i] - x_lo) / (x_hi - x_lo);
      const double ty = (transform(series_[s].second[i]) - lo) / (hi - lo);
      const int cx = std::clamp(static_cast<int>(std::lround(tx * (width - 1))),
                                0, width - 1);
      const int cy = std::clamp(
          static_cast<int>(std::lround((1.0 - ty) * (height - 1))), 0,
          height - 1);
      canvas[static_cast<std::size_t>(cy)][static_cast<std::size_t>(cx)] = mark;
    }
  }
  os << "\n";
  os << (log_y ? "log10(y)" : "y") << " in ["
     << (log_y ? TextTable::sci(std::pow(10.0, lo)) : TextTable::fmt(lo, 3))
     << ", "
     << (log_y ? TextTable::sci(std::pow(10.0, hi)) : TextTable::fmt(hi, 3))
     << "]\n";
  for (const auto& row : canvas) os << "  |" << row << "\n";
  os << "  +" << std::string(static_cast<std::size_t>(width), '-') << "\n";
  os << "   " << x_label_ << " in [" << TextTable::fmt(x_lo, 1) << ", "
     << TextTable::fmt(x_hi, 1) << "]   legend:";
  for (std::size_t s = 0; s < series_.size(); ++s) {
    os << "  " << kMarks[s % sizeof(kMarks)] << "=" << series_[s].first;
  }
  os << "\n";
}

}  // namespace comimo
