#include "comimo/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "comimo/common/error.h"
#include "comimo/obs/trace.h"

namespace comimo {

namespace {
// Set for the lifetime of a worker thread; lets submit/wait_idle detect
// calls that could only deadlock.
thread_local const ThreadPool* t_current_pool = nullptr;

// Pool observability.  Job counts and queue depth depend on the worker
// count (parallel_for sizes its fan-out by pool.size()), so everything
// here is runtime domain — excluded from determinism diffs.
struct PoolObs {
  obs::Counter jobs = obs::MetricRegistry::global().counter(
      "pool.jobs", obs::Domain::kRuntime);
  obs::Counter busy_ns = obs::MetricRegistry::global().counter(
      "pool.busy_ns", obs::Domain::kRuntime);
  obs::Gauge queue_depth_max = obs::MetricRegistry::global().gauge(
      "pool.queue_depth_max", obs::Domain::kRuntime);
  obs::Histogram job_wall_s = obs::MetricRegistry::global().histogram(
      "pool.job_wall_s", obs::Domain::kRuntime);
};

PoolObs& pool_obs() {
  static PoolObs o;
  return o;
}
}  // namespace

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

const ThreadPool* ThreadPool::current() noexcept { return t_current_pool; }

void ThreadPool::submit(std::function<void()> job) {
  COMIMO_CHECK(job != nullptr, "null job");
  if (workers_.empty()) {
    throw ConcurrencyError(
        "ThreadPool::submit on an inline (zero-worker) pool; nothing "
        "could ever run the job — use parallel_for, which runs inline");
  }
  if (t_current_pool == this) {
    // Every worker could end up blocked on work that can never run; the
    // silent version of this bug is a hang, so fail loudly instead.
    throw ConcurrencyError(
        "ThreadPool::submit called from one of the pool's own workers; "
        "nested submission on the same pool deadlocks — use a different "
        "pool or parallel_for (which degrades to serial inline)");
  }
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    COMIMO_CHECK(!stopping_, "submit on stopped pool");
    jobs_.push(std::move(job));
    depth = jobs_.size();
  }
  cv_job_.notify_one();
  if (obs::enabled()) {
    PoolObs& o = pool_obs();
    o.jobs.add();
    o.queue_depth_max.fold_max(static_cast<double>(depth));
  }
}

void ThreadPool::wait_idle() {
  if (t_current_pool == this) {
    throw ConcurrencyError(
        "ThreadPool::wait_idle called from one of the pool's own workers; "
        "the wait could never be satisfied");
  }
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return jobs_.empty() && in_flight_ == 0; });
}

std::unique_lock<std::mutex> ThreadPool::quiesce_for_fork() {
  wait_idle();
  // Once this lock is held, every worker is either blocked inside
  // cv_job_.wait (which does not hold the mutex while blocked) or
  // queued behind this acquisition — nobody owns pool state at fork.
  return std::unique_lock<std::mutex>(mutex_);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_job_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
      ++in_flight_;
    }
    if (obs::enabled()) {
      // Busy time feeds the worker-utilization ratio: utilization =
      // pool.busy_ns / (workers × wall).  Integer nanosecond adds are
      // commutative, so the total is exact for any interleaving.
      const std::int64_t t0 = obs::now_ns();
      {
        const obs::SpanTimer span("pool.job", pool_obs().job_wall_s);
        job();
      }
      pool_obs().busy_ns.add(
          static_cast<std::uint64_t>(obs::now_ns() - t0));
    } else {
      job();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (jobs_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  parallel_for(ThreadPool::shared(), n, body);
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, n, 1,
                      [&body](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) body(i);
                      });
}

void parallel_for_chunks(
    std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  parallel_for_chunks(ThreadPool::shared(), n, min_chunk, body);
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  min_chunk = std::max<std::size_t>(1, min_chunk);
  const std::size_t workers = pool.size();
  // One chunk per worker unless min_chunk forces fewer; a serial fallback
  // avoids pool overhead for tiny ranges or single-core machines, and is
  // mandatory when the caller is already one of this pool's workers
  // (nested fan-out could never be scheduled).
  const std::size_t chunks =
      std::min({workers, (n + min_chunk - 1) / min_chunk});
  if (chunks <= 1 || ThreadPool::current() == &pool) {
    body(0, n);
    return;
  }

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::size_t begin = 0;
  std::atomic<std::size_t> remaining{chunks};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    pool.submit([&, begin, end] {
      try {
        if (!failed.load(std::memory_order_relaxed)) body(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        done_cv.notify_all();
      }
    });
    begin = end;
  }

  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (failed.load() && first_error) std::rethrow_exception(first_error);
}

}  // namespace comimo
