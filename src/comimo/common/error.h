// Error handling policy.
//
// Following the C++ Core Guidelines (E.2/E.3) the library throws exceptions
// for contract violations and unrecoverable numeric failures; hot loops use
// COMIMO_DCHECK which compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace comimo {

/// Thrown when a caller violates a documented precondition.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a numeric routine fails to converge or produces a
/// non-finite result.
class NumericError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a requested configuration is physically infeasible (for
/// example an energy budget smaller than the circuit floor).
class InfeasibleError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a threading contract is violated in a way that would
/// otherwise deadlock (for example submitting to a ThreadPool from one
/// of its own workers).
class ConcurrencyError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace comimo

/// Always-on precondition check; throws comimo::InvalidArgument.
#define COMIMO_CHECK(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::comimo::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                            (msg));                     \
    }                                                                    \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define COMIMO_DCHECK(expr, msg) \
  do {                           \
  } while (false)
#else
#define COMIMO_DCHECK(expr, msg) COMIMO_CHECK(expr, msg)
#endif
