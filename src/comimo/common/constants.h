// System constants of the paper, §2.3.
//
// All values are stored in SI units.  The constructor-free aggregate keeps
// the paper's defaults; experiments that need different radio parameters
// copy the struct and override fields.
#pragma once

#include <cmath>

#include "comimo/common/units.h"

namespace comimo {

/// Radio/circuit constants from §2.3 of the paper (which in turn follows
/// Cui, Goldsmith & Bahai [10],[12]).
struct SystemParams {
  // --- circuit power draws -------------------------------------------
  /// Transmitter circuit power P_ct [W] (mixer + filters + DAC…).
  double p_ct_w = 48.64e-3;
  /// Receiver circuit power P_cr [W] (LNA + mixer + IFA + ADC…).
  double p_cr_w = 62.5e-3;
  /// Frequency-synthesizer power P_syn [W].
  double p_syn_w = 50e-3;
  /// Synthesizer settling (transient) time T_tr [s].
  double t_tr_s = 5e-6;

  // --- local (intra-cluster) path loss -------------------------------
  /// Path-loss exponent κ for the intra-cluster link.
  double kappa = 3.5;
  /// Reference gain factor G_1 at d = 1 m (linear).  The paper prints
  /// "G_1 = 10mw"; we follow [12] where G_1 is the dimensionless gain
  /// factor at 1 m, 30 dB.  Only the absolute scale of the local-energy
  /// term depends on this choice, never a curve shape.
  double g1 = 1.0e3;
  /// Link margin M_l (linear; paper: 40 dB).
  double link_margin = 1.0e4;
  /// Receiver noise figure N_f (linear; paper: 10 dB).
  double noise_figure = 10.0;

  // --- long-haul link ------------------------------------------------
  /// Combined transmit/receive antenna gain GtGr (linear; paper: 5 dBi).
  double gt_gr = std::pow(10.0, 0.5);
  /// Carrier wavelength λ [m] (paper: 0.1199 m ≈ 2.5 GHz).
  double lambda_m = 0.1199;

  // --- noise densities ------------------------------------------------
  /// Thermal-noise PSD σ² [W/Hz] (paper: −174 dBm/Hz).
  double sigma2_w_per_hz = 3.9810717055349565e-21;
  /// Receiver noise PSD N_0 [W/Hz] used in eqs. (5)–(6)
  /// (paper: −171 dBm/Hz).
  double n0_w_per_hz = 7.943282347242789e-21;

  // --- defaults for the variable-rate system --------------------------
  /// Transmission payload size n [bits] over which the synchronizer
  /// transient energy P_syn·T_tr is amortized (eqs. (1)–(2)); the paper
  /// leaves n free, 10 kbit keeps the term at its naturally negligible
  /// size.
  double n_bits = 1.0e4;

  /// Peak-to-average dependent PA overhead α(b) = ξ/η − 1 for MQAM with
  /// peak drain efficiency η = 0.35 (paper's α formula).
  [[nodiscard]] double pa_overhead(int b) const noexcept {
    const double root_m = std::pow(2.0, static_cast<double>(b) / 2.0);
    return 3.0 * (root_m - 1.0) / (0.35 * (root_m + 1.0));
  }

  /// Local-link aggregate gain G_d = G_1 · d^κ · M_l (paper, below eq. (4)).
  [[nodiscard]] double local_gain(double d_m) const noexcept {
    return g1 * std::pow(d_m, kappa) * link_margin;
  }

  /// Long-haul attenuation factor (4πD)² / (GtGr·λ²) · M_l · N_f that
  /// multiplies the required receive energy in eq. (3).
  [[nodiscard]] double long_haul_attenuation(double distance_m) const noexcept {
    const double four_pi_d = 4.0 * kPi * distance_m;
    return four_pi_d * four_pi_d / (gt_gr * lambda_m * lambda_m) *
           link_margin * noise_figure;
  }
};

/// Constellation-size limits of the variable-rate system used throughout
/// the paper's evaluation (§6: "changing constellation size b from 1 to 16").
inline constexpr int kMinConstellationBits = 1;
inline constexpr int kMaxConstellationBits = 16;

}  // namespace comimo
