// Explicit, deterministic parallelism for Monte-Carlo sweeps.
//
// Following the HPC guides' discipline (all parallelism explicit, results
// independent of the worker count), parallel_for hands out *index ranges*
// and callers derive any randomness from the index via counter-based
// seeding (see numeric/rng.h), so a sweep produces bit-identical results
// on 1 or N threads.  The mc/ engine layers a fixed-sharding reduction on
// top of these primitives.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace comimo {

/// A fixed-size pool of worker threads executing enqueued jobs.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Calling submit from one of this pool's own workers
  /// would deadlock once every worker blocks on work that can never be
  /// scheduled, so it throws ConcurrencyError instead of hanging; use
  /// the parallel_for helpers, which degrade to serial execution when
  /// already on a worker.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.  Throws
  /// ConcurrencyError when called from one of this pool's own workers
  /// (the wait could never be satisfied).
  void wait_idle();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// The pool whose worker is running the calling thread, or nullptr
  /// when the caller is not a pool worker.
  [[nodiscard]] static const ThreadPool* current() noexcept;

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across the shared pool.  `body` must be
/// safe to call concurrently for distinct indices.  Exceptions thrown by
/// `body` are rethrown (the first one) after all iterations settle.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Same, on an explicit pool (tests run the same sweep on pools of
/// different sizes to assert thread-count invariance).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: body(begin, end) over a partition of [0, n).
void parallel_for_chunks(
    std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& body);

/// Chunked variant on an explicit pool.  When called from one of the
/// pool's own workers the range runs serially inline (nested fan-out on
/// the same pool cannot be scheduled), so nested parallel code is safe —
/// merely not extra-parallel.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace comimo
