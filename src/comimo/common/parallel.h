// Explicit, deterministic parallelism for Monte-Carlo sweeps.
//
// Following the HPC guides' discipline (all parallelism explicit, results
// independent of the worker count), parallel_for hands out *index ranges*
// and callers derive any randomness from the index via counter-based
// seeding (see numeric/rng.h), so a sweep produces bit-identical results
// on 1 or N threads.  The mc/ engine layers a fixed-sharding reduction on
// top of these primitives.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace comimo {

/// A fixed-size pool of worker threads executing enqueued jobs.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  /// Tag for a pool with *no* worker threads: parallel_for degrades to
  /// serial inline execution on the calling thread and submit() throws.
  /// This is the only safe pool in the child of a multithreaded fork():
  /// creating threads there can deadlock on runtime-internal locks
  /// (allocator, sanitizer thread registry) a parent thread held at the
  /// fork instant — locks no quiesce of our own can reach.
  struct Inline {};
  explicit ThreadPool(Inline) noexcept {}

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Calling submit from one of this pool's own workers
  /// would deadlock once every worker blocks on work that can never be
  /// scheduled, so it throws ConcurrencyError instead of hanging; use
  /// the parallel_for helpers, which degrade to serial execution when
  /// already on a worker.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.  Throws
  /// ConcurrencyError when called from one of this pool's own workers
  /// (the wait could never be satisfied).
  void wait_idle();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// The pool whose worker is running the calling thread, or nullptr
  /// when the caller is not a pool worker.
  [[nodiscard]] static const ThreadPool* current() noexcept;

  /// Serializes the pool around a fork().  Drains the job queue
  /// (wait_idle) and then returns a lock on the pool's internal mutex:
  /// while the lock is held, no worker thread can hold pool state, so a
  /// child process forked under it inherits the mutex in a known,
  /// caller-owned state instead of mid-operation (a fork taken while a
  /// worker holds the mutex leaves the child's copy locked forever —
  /// the classic fork/threads deadlock).  The forking thread must hold
  /// the returned lock across fork(); the child (a single-threaded copy
  /// of that thread) unlocks its inherited copy before using anything,
  /// and the parent releases normally.  Callers on one of this pool's
  /// own workers cannot quiesce it (wait_idle throws ConcurrencyError).
  [[nodiscard]] std::unique_lock<std::mutex> quiesce_for_fork();

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across the shared pool.  `body` must be
/// safe to call concurrently for distinct indices.  Exceptions thrown by
/// `body` are rethrown (the first one) after all iterations settle.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Same, on an explicit pool (tests run the same sweep on pools of
/// different sizes to assert thread-count invariance).
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: body(begin, end) over a partition of [0, n).
void parallel_for_chunks(
    std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& body);

/// Chunked variant on an explicit pool.  When called from one of the
/// pool's own workers the range runs serially inline (nested fan-out on
/// the same pool cannot be scheduled), so nested parallel code is safe —
/// merely not extra-parallel.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace comimo
