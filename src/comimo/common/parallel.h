// Explicit, deterministic parallelism for Monte-Carlo sweeps.
//
// Following the HPC guides' discipline (all parallelism explicit, results
// independent of the worker count), parallel_for hands out *index ranges*
// and callers derive any randomness from the index via counter-based
// seeding (see numeric/rng.h), so a sweep produces bit-identical results
// on 1 or N threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace comimo {

/// A fixed-size pool of worker threads executing enqueued jobs.
class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; jobs may not themselves call submit on this pool.
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished.
  void wait_idle();

  [[nodiscard]] unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n) across the shared pool.  `body` must be
/// safe to call concurrently for distinct indices.  Exceptions thrown by
/// `body` are rethrown (the first one) after all iterations settle.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

/// Chunked variant: body(begin, end) over a partition of [0, n).
void parallel_for_chunks(
    std::size_t n, std::size_t min_chunk,
    const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace comimo
