// ASCII table / series printers used by the bench harness to emit the
// paper's tables and figures as text.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace comimo {

/// Accumulates rows of strings and renders them with aligned columns,
/// in the style of the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  /// Scientific notation, for energies.
  static std::string sci(double v, int precision = 3);
  /// Percentage with two decimals ("6.12%").
  static std::string pct(double fraction, int precision = 2);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders one or more named series sharing an x-axis as a column table
/// plus a coarse ASCII line chart (log-y optional) — the text stand-in for
/// the paper's figures.
class SeriesChart {
 public:
  SeriesChart(std::string x_label, std::vector<double> x);

  void add_series(std::string name, std::vector<double> y);

  /// Prints the data table, then an ASCII chart `width` x `height`.
  void print(std::ostream& os, bool log_y = false, int width = 72,
             int height = 20) const;

 private:
  std::string x_label_;
  std::vector<double> x_;
  std::vector<std::pair<std::string, std::vector<double>>> series_;
};

}  // namespace comimo
