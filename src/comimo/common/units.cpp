#include "comimo/common/units.h"

namespace comimo {

double wrap_angle(double rad) noexcept {
  const double two_pi = 2.0 * kPi;
  double wrapped = std::fmod(rad, two_pi);
  if (wrapped <= -kPi) {
    wrapped += two_pi;
  } else if (wrapped > kPi) {
    wrapped -= two_pi;
  }
  return wrapped;
}

}  // namespace comimo
