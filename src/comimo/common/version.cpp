#include "comimo/common/version.h"

namespace comimo {

const char* version_string() noexcept { return "1.0.0"; }

}  // namespace comimo
