// Structured bench output: the comimo-bench-v1 JSON schema.
//
// Every bench binary accepts `--json <path>` and emits one record per
// measured configuration so that BENCH_*.json trajectories accumulate
// across PRs.  The schema (validated by scripts/check_bench_json.sh):
//
//   {
//     "schema": "comimo-bench-v1",
//     "bench": "<binary name>",
//     "threads": <worker count used>,
//     "hardware_concurrency": <std::thread::hardware_concurrency() of
//                              the host — lets artifact gates skip
//                              multi-core speedup assertions on 1-core
//                              containers>,
//     "timestamp_unix_s": <system_clock seconds at write — dates a
//                          committed BENCH_*.json run; wall_s cannot,
//                          it is steady_clock with a boot epoch>,
//     "wall_s": <total wall time of the run>,
//     "records": [
//       { "params":  { <name>: <number|string|bool>, ... },
//         "metrics": { <name>: <number>, ... },
//         "trials": <optional trial count>,
//         "trials_per_sec": <optional throughput> }, ... ],
//     "metrics": <optional: comimo::obs deterministic metrics — present
//                 when the obs layer is enabled; byte-identical for a
//                 1-thread and an N-thread run of the same seed>,
//     "metrics_runtime": <optional: obs runtime metrics (latencies,
//                         utilization) — excluded from determinism diffs>
//   }
//
// Metric values are printed with max_digits10 so a serial and a parallel
// run of the same bench produce byte-identical metric strings — the
// determinism check scripts diff on exactly that.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace comimo {

class ThreadPool;

/// Minimal ordered JSON value (null/bool/int/double/string/array/object)
/// — just enough for the bench schema, with deterministic key order
/// (insertion order) and full-precision number formatting.
class Json {
 public:
  Json() = default;  // null
  static Json boolean(bool v);
  static Json integer(std::int64_t v);
  static Json number(double v);
  static Json string(std::string v);
  static Json array();
  static Json object();

  /// Object field setters (create or overwrite; insertion order kept).
  Json& set(const std::string& key, Json value);
  Json& set(const std::string& key, double value);
  Json& set(const std::string& key, std::int64_t value);
  Json& set(const std::string& key, std::uint64_t value);
  Json& set(const std::string& key, int value);
  Json& set(const std::string& key, unsigned value);
  Json& set(const std::string& key, bool value);
  Json& set(const std::string& key, const char* value);
  Json& set(const std::string& key, const std::string& value);

  /// Array append.
  Json& push(Json value);

  [[nodiscard]] bool is_object() const noexcept;
  [[nodiscard]] bool is_array() const noexcept;

  void dump(std::ostream& os, int indent = 0, int depth = 0) const;
  [[nodiscard]] std::string dump_string(int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Collects records and writes the comimo-bench-v1 envelope.  Wall time
/// is measured from construction to write.
class BenchReporter {
 public:
  explicit BenchReporter(std::string bench_name);

  /// One measured configuration.  `params` and `metrics` must be JSON
  /// objects; `trials` > 0 adds trial-throughput bookkeeping.
  void add_record(Json params, Json metrics, std::size_t trials = 0,
                  double trials_per_sec = 0.0);

  void set_threads(unsigned threads) { threads_ = threads; }

  /// Writes the envelope; rewinds nothing, so call once at the end.
  void write(std::ostream& os) const;
  void write_file(const std::string& path) const;

 private:
  std::string bench_name_;
  unsigned threads_;
  double start_monotonic_s_;
  std::vector<Json> records_;
};

/// The shared bench command line: `--json <path>` turns on structured
/// output, `--threads <n>` runs the engine-backed sweeps on a private
/// pool of that size (0 = the shared pool), `--trials <n>` lets scripts
/// shrink trial-bound benches, `--shards <n>` fans the engine-backed
/// sweeps across that many worker processes (mc/sharded.h —
/// bit-identical to 1), `--obs` enables the observability layer
/// (metrics embed in the JSON envelope), `--trace <path>` additionally
/// arms span tracing with an exit-time Perfetto-loadable dump, and
/// `--simd <mode>` (or `--simd=<mode>`) pins the batch-kernel dispatch
/// tier (auto|scalar|sse2|avx2|avx512|neon) before any kernel runs.
/// `--adaptive <rel_ci>` asks engine-backed sweeps to stop early once
/// the watched statistic's relative CI half-width reaches rel_ci
/// (mc/adaptive.h; benches that have no adaptive surface ignore it).
/// Unknown flags are ignored so wrappers can pass common options to
/// every binary.
struct BenchCli {
  std::string json_path;
  std::string trace_path;
  std::string simd = "auto";  ///< requested dispatch mode, as given
  bool obs = false;
  unsigned threads = 0;
  std::size_t trials = 0;
  std::size_t shards = 1;
  /// Adaptive stopping target (relative CI half-width); 0 = fixed
  /// trials.  Consumed by the engine-backed sweep benches.
  double adaptive = 0.0;

  /// The pool the bench should hand to engine configs: a private pool
  /// when --threads was given, otherwise nullptr (= shared pool).
  /// Owned by this struct.
  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_.get(); }

  /// Effective worker count, for the report envelope.
  [[nodiscard]] unsigned effective_threads() const;

 private:
  friend BenchCli parse_bench_cli(int argc, char** argv);
  std::shared_ptr<ThreadPool> pool_;
};

[[nodiscard]] BenchCli parse_bench_cli(int argc, char** argv);

}  // namespace comimo
