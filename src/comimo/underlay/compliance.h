// Underlay noise-floor compliance of a planned hop (§4's constraint).
//
// Evaluates the worst transmission moment of Algorithm 2 — the peak PA
// energy E_PA = max(e^Lt_PA, mt·e^MIMOt_PA) — against the noise floor at
// a primary receiver a given distance away.
#pragma once

#include "comimo/energy/noise_floor.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {

struct UnderlayComplianceReport {
  NoiseFloorReport worst_moment;  ///< the peak-PA transmission, strict
                                  ///< thermal-floor physics
  double peak_pa_energy = 0.0;    ///< E_PA [J/bit]
  bool local_dominates = false;   ///< true when e^Lt_PA is the peak
  /// The paper's §6.2 criterion: how far the cooperative peak PA energy
  /// sits below the equivalent non-cooperative SISO (PU-model)
  /// transmission of the same hop, in dB (positive = compliant).  A
  /// narrowband signal that is decodable at the SU receiver cannot
  /// literally sit below the thermal floor a few tens of meters away —
  /// real underlay systems add spreading gain for that — so the paper's
  /// operative comparison is this relative one.
  double relative_to_siso_db = 0.0;
  [[nodiscard]] bool paper_compliant() const noexcept {
    return relative_to_siso_db > 0.0;
  }
};

class UnderlayComplianceChecker {
 public:
  explicit UnderlayComplianceChecker(const SystemParams& params = {});

  /// Checks the hop plan against a primary receiver `pu_distance_m`
  /// away from the transmitting cluster.
  [[nodiscard]] UnderlayComplianceReport check(
      const UnderlayHopPlan& plan, double pu_distance_m) const;

 private:
  NoiseFloorAnalyzer analyzer_;
  UnderlayCooperativeHop siso_reference_;
};

}  // namespace comimo
