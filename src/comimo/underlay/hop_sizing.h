// Cooperative hop sizing: how many cooperators is the right number?
//
// Algorithm 2 takes (mt, mr) as given by the clustering; a head with
// more willing cluster mates than it strictly needs faces a design
// choice the paper leaves implicit.  This optimizer searches
// (mt, mr, b) within availability limits for the hop that minimizes
// total energy per bit, subject to the underlay ceiling on peak PA
// energy (E_PA = max(e^Lt_PA, mt·e^MIMOt_PA) ≤ cap) — the quantitative
// version of "use enough cooperators to duck under the interference
// constraint, but no more than the energy optimum wants".
#pragma once

#include <vector>

#include "comimo/underlay/cooperative_hop.h"

namespace comimo {

struct HopSizingQuery {
  unsigned mt_available = 4;   ///< cooperators available at the Tx cluster
  unsigned mr_available = 4;   ///< cooperators available at the Rx cluster
  double hop_distance_m = 200.0;
  double cluster_diameter_m = 2.0;
  double ber = 1e-3;
  double bandwidth_hz = 40e3;
  /// Peak-PA ceiling [J/bit]; +inf disables the constraint.
  double peak_pa_cap = std::numeric_limits<double>::infinity();
};

struct HopSizingResult {
  UnderlayHopPlan plan;        ///< the winning configuration
  bool constrained = false;    ///< true when the cap excluded the
                               ///< unconstrained optimum
  /// Every feasible candidate, sorted by total energy (diagnostics).
  std::vector<UnderlayHopPlan> feasible;
};

class HopSizer {
 public:
  explicit HopSizer(const SystemParams& params = {});

  /// Throws InfeasibleError when no (mt, mr, b) satisfies the cap.
  [[nodiscard]] HopSizingResult size(const HopSizingQuery& query) const;

 private:
  UnderlayCooperativeHop planner_;
};

}  // namespace comimo
