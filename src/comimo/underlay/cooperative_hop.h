// Algorithm 2 — one cooperative hop between SU clusters.
//
// Step 1: the head of the transmit cluster ST broadcasts locally (one
//         e^Lt transmission, only when mt > 1);
// Step 2: the mt nodes of ST transmit the STBC-encoded stream over the
//         long-haul mt×mr link (each pays e^MIMOt(mt,mr); all mt PAs are
//         active simultaneously);
// Step 3: the mr receivers forward to the head of SR in separate slots
//         (mr−1 local e^Lt transmissions, only when mr > 1).
//
// The quantities the paper evaluates:
//   * peak PA energy/bit  E_PA = max(e^Lt_PA, mt·e^MIMOt_PA)  (§4);
//   * total PA energy/bit across all SUs (Fig. 7's y axis).
#pragma once

#include <cstddef>
#include <cstdint>

#include "comimo/common/constants.h"
#include "comimo/energy/local_energy.h"
#include "comimo/energy/mimo_energy.h"
#include "comimo/phy/ber_sweep.h"

namespace comimo {

struct UnderlayHopConfig {
  unsigned mt = 2;            ///< transmit-cluster cooperators
  unsigned mr = 2;            ///< receive-cluster cooperators
  double hop_distance_m = 200.0;  ///< long-haul D
  double cluster_diameter_m = 1.0;  ///< d
  double ber = 1e-3;          ///< target BER p_b
  double bandwidth_hz = 40e3;
};

/// Full energy ledger of one cooperative hop.
struct UnderlayHopPlan {
  UnderlayHopConfig config;
  int b = 0;  ///< chosen constellation (minimizes ē_b per the paper)
  double ebar = 0.0;  ///< the table value ē_b(p, b, mt, mr)

  // Per-transmission PA energies per bit:
  double local_tx_pa = 0.0;    ///< e^Lt_PA (one local broadcast)
  double mimo_tx_pa = 0.0;     ///< e^MIMOt_PA per long-haul transmitter
  // Circuit energies per bit:
  double local_tx_circuit = 0.0;
  double local_rx = 0.0;       ///< e^Lr
  double mimo_tx_circuit = 0.0;
  double mimo_rx = 0.0;        ///< e^MIMOr

  /// Peak instantaneous PA energy/bit, §4's E_PA.
  [[nodiscard]] double peak_pa() const noexcept;
  /// Total PA energy/bit summed over every SU transmission in the hop
  /// (Fig. 7's quantity).
  [[nodiscard]] double total_pa() const noexcept;
  /// Total energy/bit including circuits and receptions — the quantity a
  /// network-lifetime planner budgets per hop.
  [[nodiscard]] double total_energy() const noexcept;
};

/// Which objective the constellation search minimizes.
enum class BSelectionRule {
  kMinEbar,        ///< Algorithm 2's stated rule: minimize ē_b
  kMinPeakPa,      ///< §4's constraint driver: minimize E_PA (peak)
  kMinTotalPa,     ///< Fig. 7's plotted quantity
  kMinTotalEnergy  ///< lifetime-oriented: PA + circuits + receptions
};

class UnderlayCooperativeHop {
 public:
  explicit UnderlayCooperativeHop(const SystemParams& params = {});

  /// Plans the hop; b is selected by `rule` over [b_min, b_max].  The
  /// ablation bench compares the rules.
  [[nodiscard]] UnderlayHopPlan plan(
      const UnderlayHopConfig& config,
      BSelectionRule rule = BSelectionRule::kMinTotalPa) const;

  /// Re-plans `plan` with the cooperator counts shrunk to the survivors
  /// — the resilience layer's degradation step when transmitters or
  /// receivers drop out mid-route.  Counts are clamped to >= 1 (SISO is
  /// the floor); the geometry, BER target, and bandwidth carry over.
  [[nodiscard]] UnderlayHopPlan replan_shrunk(
      const UnderlayHopPlan& plan, unsigned alive_tx, unsigned alive_rx,
      BSelectionRule rule = BSelectionRule::kMinTotalPa) const;

  [[nodiscard]] const SystemParams& params() const noexcept {
    return params_;
  }

 private:
  [[nodiscard]] UnderlayHopPlan plan_with_b(const UnderlayHopConfig& config,
                                            int b) const;

  SystemParams params_;
  LocalEnergyModel local_;
  MimoEnergyModel mimo_;
};

/// Waveform-level verification of one planned hop.
struct PlanBerMeasurement {
  double gamma_b_db = 0.0;  ///< the plan's ē_b/N0 expressed in dB
  double ber = 0.0;
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  McRunInfo info;
};

/// Runs the plan's chosen operating point (b, mt, mr, ē_b) through the
/// batched waveform link kernel: γ_b = ē_b/N0 per branch per bit, mt
/// clamped to the supported STBC range.  Lets planners cross-check the
/// analytic ē_b table against actual modulated blocks without leaving
/// the underlay API.
/// `shards` > 1 splits the measurement across worker processes via the
/// mc/sharded.h driver — bit-identical to the single-process run.
[[nodiscard]] PlanBerMeasurement measure_plan_ber(
    const UnderlayHopPlan& plan, std::size_t blocks, std::uint64_t seed = 1,
    const SystemParams& params = {}, std::size_t chunk_size = 0,
    ThreadPool* pool = nullptr, std::size_t shards = 1);

}  // namespace comimo
