#include "comimo/underlay/hop_sizing.h"

#include <algorithm>
#include <limits>

#include "comimo/common/error.h"

namespace comimo {

HopSizer::HopSizer(const SystemParams& params) : planner_(params) {}

HopSizingResult HopSizer::size(const HopSizingQuery& query) const {
  COMIMO_CHECK(query.mt_available >= 1 && query.mr_available >= 1,
               "need at least one node per side");
  COMIMO_CHECK(query.hop_distance_m > 0.0, "hop distance must be positive");
  COMIMO_CHECK(query.peak_pa_cap > 0.0, "peak-PA cap must be positive");

  HopSizingResult result;
  UnderlayHopPlan unconstrained_best;
  double unconstrained_energy = std::numeric_limits<double>::infinity();

  for (unsigned mt = 1; mt <= query.mt_available; ++mt) {
    for (unsigned mr = 1; mr <= query.mr_available; ++mr) {
      UnderlayHopConfig cfg;
      cfg.mt = mt;
      cfg.mr = mr;
      cfg.hop_distance_m = query.hop_distance_m;
      cfg.cluster_diameter_m = query.cluster_diameter_m;
      cfg.ber = query.ber;
      cfg.bandwidth_hz = query.bandwidth_hz;
      UnderlayHopPlan plan;
      try {
        plan = planner_.plan(cfg, BSelectionRule::kMinTotalEnergy);
      } catch (const InfeasibleError&) {
        continue;
      }
      if (plan.total_energy() < unconstrained_energy) {
        unconstrained_energy = plan.total_energy();
        unconstrained_best = plan;
      }
      if (plan.peak_pa() <= query.peak_pa_cap) {
        result.feasible.push_back(plan);
      }
    }
  }
  if (result.feasible.empty()) {
    throw InfeasibleError(
        "no cooperator configuration satisfies the peak-PA cap");
  }
  std::sort(result.feasible.begin(), result.feasible.end(),
            [](const UnderlayHopPlan& a, const UnderlayHopPlan& b) {
              return a.total_energy() < b.total_energy();
            });
  result.plan = result.feasible.front();
  result.constrained =
      result.plan.total_energy() > unconstrained_energy * (1.0 + 1e-12);
  return result;
}

}  // namespace comimo
