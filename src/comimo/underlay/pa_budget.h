// Fig. 7's quantity: total PA energy/bit of all SUs for one hop, swept
// over hop distance and cooperation degree.
#pragma once

#include <vector>

#include "comimo/underlay/cooperative_hop.h"

namespace comimo {

struct PaBudgetPoint {
  double distance_m = 0.0;
  UnderlayHopPlan plan;
};

/// One (mt, mr) series of Fig. 7.
struct PaBudgetSeries {
  unsigned mt = 0;
  unsigned mr = 0;
  std::vector<PaBudgetPoint> points;
};

class PaBudgetSweep {
 public:
  explicit PaBudgetSweep(const SystemParams& params = {});

  /// Sweeps hop distance for one (mt, mr) pair.
  [[nodiscard]] PaBudgetSeries sweep_distance(
      unsigned mt, unsigned mr, const std::vector<double>& distances_m,
      double cluster_diameter_m, double ber, double bandwidth_hz,
      BSelectionRule rule = BSelectionRule::kMinTotalPa) const;

  /// Full Fig. 7 grid: all (mt, mr) in [1, mt_max] × [1, mr_max].
  [[nodiscard]] std::vector<PaBudgetSeries> sweep_grid(
      unsigned mt_max, unsigned mr_max,
      const std::vector<double>& distances_m, double cluster_diameter_m,
      double ber, double bandwidth_hz,
      BSelectionRule rule = BSelectionRule::kMinTotalPa) const;

 private:
  UnderlayCooperativeHop hop_;
};

}  // namespace comimo
