#include "comimo/underlay/compliance.h"

#include "comimo/common/units.h"
#include "comimo/obs/metrics.h"

namespace comimo {

namespace {
struct ComplianceObs {
  obs::Counter checks =
      obs::MetricRegistry::global().counter("underlay.checks");
  obs::Counter violations =
      obs::MetricRegistry::global().counter("underlay.violations");
  // Worst PA-energy headroom of a cooperative hop against the SISO
  // primary-user reference, in dB.  fold_min is commutative, so the
  // exported extremum is worker-count invariant.
  obs::Gauge headroom_db_min =
      obs::MetricRegistry::global().gauge("underlay.headroom_db_min");
};

ComplianceObs& compliance_obs() {
  static ComplianceObs o;
  return o;
}
}  // namespace

UnderlayComplianceChecker::UnderlayComplianceChecker(
    const SystemParams& params)
    : analyzer_(params), siso_reference_(params) {}

UnderlayComplianceReport UnderlayComplianceChecker::check(
    const UnderlayHopPlan& plan, double pu_distance_m) const {
  UnderlayComplianceReport rpt;
  rpt.peak_pa_energy = plan.peak_pa();
  const double mimo_peak =
      static_cast<double>(plan.config.mt) * plan.mimo_tx_pa;
  const double local_peak =
      (plan.config.mt > 1 || plan.config.mr > 1) ? plan.local_tx_pa : 0.0;
  rpt.local_dominates = local_peak > mimo_peak;
  rpt.worst_moment = analyzer_.analyze(rpt.peak_pa_energy, plan.b,
                                       plan.config.bandwidth_hz,
                                       pu_distance_m);

  // The paper's reference: the same hop executed as a non-cooperative
  // SISO transmission ("the model for primary users", §6.2).
  UnderlayHopConfig siso_cfg = plan.config;
  siso_cfg.mt = 1;
  siso_cfg.mr = 1;
  const UnderlayHopPlan siso = siso_reference_.plan(siso_cfg);
  rpt.relative_to_siso_db =
      linear_to_db(siso.peak_pa() / std::max(rpt.peak_pa_energy, 1e-300));
  ComplianceObs& o = compliance_obs();
  o.checks.add();
  if (!rpt.paper_compliant()) o.violations.add();
  o.headroom_db_min.fold_min(rpt.relative_to_siso_db);
  return rpt;
}

}  // namespace comimo
