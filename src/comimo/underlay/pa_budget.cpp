#include "comimo/underlay/pa_budget.h"

namespace comimo {

PaBudgetSweep::PaBudgetSweep(const SystemParams& params) : hop_(params) {}

PaBudgetSeries PaBudgetSweep::sweep_distance(
    unsigned mt, unsigned mr, const std::vector<double>& distances_m,
    double cluster_diameter_m, double ber, double bandwidth_hz,
    BSelectionRule rule) const {
  PaBudgetSeries series;
  series.mt = mt;
  series.mr = mr;
  series.points.reserve(distances_m.size());
  for (const double d : distances_m) {
    UnderlayHopConfig cfg;
    cfg.mt = mt;
    cfg.mr = mr;
    cfg.hop_distance_m = d;
    cfg.cluster_diameter_m = cluster_diameter_m;
    cfg.ber = ber;
    cfg.bandwidth_hz = bandwidth_hz;
    series.points.push_back(PaBudgetPoint{d, hop_.plan(cfg, rule)});
  }
  return series;
}

std::vector<PaBudgetSeries> PaBudgetSweep::sweep_grid(
    unsigned mt_max, unsigned mr_max, const std::vector<double>& distances_m,
    double cluster_diameter_m, double ber, double bandwidth_hz,
    BSelectionRule rule) const {
  std::vector<PaBudgetSeries> all;
  all.reserve(mt_max * mr_max);
  for (unsigned mt = 1; mt <= mt_max; ++mt) {
    for (unsigned mr = 1; mr <= mr_max; ++mr) {
      all.push_back(sweep_distance(mt, mr, distances_m, cluster_diameter_m,
                                   ber, bandwidth_hz, rule));
    }
  }
  return all;
}

}  // namespace comimo
