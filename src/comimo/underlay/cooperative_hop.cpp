#include "comimo/underlay/cooperative_hop.h"

#include <algorithm>
#include <limits>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

double UnderlayHopPlan::peak_pa() const noexcept {
  const double local = (config.mt > 1 || config.mr > 1) ? local_tx_pa : 0.0;
  return std::max(local, static_cast<double>(config.mt) * mimo_tx_pa);
}

double UnderlayHopPlan::total_pa() const noexcept {
  double total = static_cast<double>(config.mt) * mimo_tx_pa;
  if (config.mt > 1) total += local_tx_pa;  // head's broadcast
  if (config.mr > 1) {
    total += static_cast<double>(config.mr - 1) * local_tx_pa;  // forwards
  }
  return total;
}

double UnderlayHopPlan::total_energy() const noexcept {
  double total = 0.0;
  if (config.mt > 1) {
    // Head broadcast heard by mt-1 cluster mates.
    total += local_tx_pa + local_tx_circuit +
             static_cast<double>(config.mt - 1) * local_rx;
  }
  total += static_cast<double>(config.mt) * (mimo_tx_pa + mimo_tx_circuit);
  total += static_cast<double>(config.mr) * mimo_rx;
  if (config.mr > 1) {
    total += static_cast<double>(config.mr - 1) *
             (local_tx_pa + local_tx_circuit + local_rx);
  }
  return total;
}

UnderlayCooperativeHop::UnderlayCooperativeHop(const SystemParams& params)
    : params_(params), local_(params), mimo_(params) {}

UnderlayHopPlan UnderlayCooperativeHop::plan_with_b(
    const UnderlayHopConfig& config, int b) const {
  UnderlayHopPlan p;
  p.config = config;
  p.b = b;
  p.ebar = mimo_.solver().solve(config.ber, b, config.mt, config.mr);
  p.local_tx_pa =
      local_.pa_energy(b, config.ber, config.cluster_diameter_m);
  p.local_tx_circuit = local_.tx_circuit_energy(b, config.bandwidth_hz);
  p.local_rx = local_.rx_energy(b, config.bandwidth_hz);
  p.mimo_tx_pa =
      mimo_.pa_energy_with_ebar(b, p.ebar, config.mt, config.hop_distance_m);
  p.mimo_tx_circuit = mimo_.tx_circuit_energy(b, config.bandwidth_hz);
  p.mimo_rx = mimo_.rx_energy(b, config.bandwidth_hz);
  return p;
}

UnderlayHopPlan UnderlayCooperativeHop::plan(const UnderlayHopConfig& config,
                                             BSelectionRule rule) const {
  COMIMO_CHECK(config.mt >= 1 && config.mr >= 1, "need >= 1 node per side");
  COMIMO_CHECK(config.hop_distance_m > 0.0, "hop distance must be positive");
  COMIMO_CHECK(config.cluster_diameter_m >= 0.0, "negative cluster diameter");
  UnderlayHopPlan best;
  double best_score = std::numeric_limits<double>::infinity();
  bool found = false;
  for (int b = kMinConstellationBits; b <= kMaxConstellationBits; ++b) {
    UnderlayHopPlan candidate;
    try {
      candidate = plan_with_b(config, b);
    } catch (const NumericError&) {
      continue;  // BER target unreachable at this b
    }
    double score = 0.0;
    switch (rule) {
      case BSelectionRule::kMinEbar:
        score = candidate.ebar;
        break;
      case BSelectionRule::kMinPeakPa:
        score = candidate.peak_pa();
        break;
      case BSelectionRule::kMinTotalPa:
        score = candidate.total_pa();
        break;
      case BSelectionRule::kMinTotalEnergy:
        score = candidate.total_energy();
        break;
    }
    if (score < best_score) {
      best_score = score;
      best = candidate;
      found = true;
    }
  }
  if (!found) {
    throw InfeasibleError("no feasible constellation for this hop");
  }
  return best;
}

UnderlayHopPlan UnderlayCooperativeHop::replan_shrunk(
    const UnderlayHopPlan& plan, unsigned alive_tx, unsigned alive_rx,
    BSelectionRule rule) const {
  UnderlayHopConfig shrunk = plan.config;
  shrunk.mt = std::max(1u, std::min(shrunk.mt, alive_tx));
  shrunk.mr = std::max(1u, std::min(shrunk.mr, alive_rx));
  if (shrunk.mt == plan.config.mt && shrunk.mr == plan.config.mr) {
    return plan;  // nothing dropped; keep the original plan verbatim
  }
  return this->plan(shrunk, rule);
}

PlanBerMeasurement measure_plan_ber(const UnderlayHopPlan& plan,
                                    std::size_t blocks, std::uint64_t seed,
                                    const SystemParams& params,
                                    std::size_t chunk_size,
                                    ThreadPool* pool, std::size_t shards) {
  COMIMO_CHECK(plan.b >= 1 && plan.b <= 8, "plan must carry b in 1..8");
  COMIMO_CHECK(plan.ebar > 0.0, "plan must carry a solved ebar");
  COMIMO_CHECK(blocks >= 1, "need at least one block");
  WaveformBerConfig cfg;
  cfg.b = plan.b;
  cfg.mt = static_cast<unsigned>(stbc_supported_tx(plan.config.mt));
  cfg.mr = std::max(1u, plan.config.mr);
  cfg.blocks = blocks;
  cfg.seed = seed;
  cfg.chunk_size = chunk_size;
  cfg.pool = pool;
  cfg.shards = shards;
  // The solver's ē_b is the per-branch received energy per bit; against
  // the thermal floor N0 it is exactly the kernel's linear γ_b.
  const double gamma_b = plan.ebar / params.n0_w_per_hz;
  const WaveformBerPoint point =
      measure_waveform_ber(cfg, linear_to_db(gamma_b));
  PlanBerMeasurement out;
  out.gamma_b_db = point.gamma_b_db;
  out.ber = point.ber;
  out.bits = point.bits;
  out.bit_errors = point.bit_errors;
  out.info = point.info;
  return out;
}

}  // namespace comimo
