// Primary-user activity modelling and opportunistic (interweave) access.
//
// §1 describes interweave as transmitting "over a multidimensional
// space, whose coordinates represent time slots, frequency bins and
// possible angles".  The beamformer of §5 handles the angular
// dimension; this module supplies the *time* dimension: a two-state
// semi-Markov PU (exponential busy/idle holding times) and a simulator
// of the classic listen-before-talk loop — sense, transmit one frame if
// idle, repeat — quantifying how sensing quality (P_d, P_fa) and frame
// length trade secondary utilization against interference.
#pragma once

#include <cstdint>
#include <vector>

namespace comimo {

struct PuActivityModel {
  double mean_busy_s = 0.5;
  double mean_idle_s = 1.0;

  /// Throws InvalidArgument unless both holding times are positive and
  /// finite (zero/negative means would make duty_cycle() NaN or inf).
  void validate() const;

  /// Long-run fraction of time the PU is busy.  Validates first, so a
  /// malformed model throws instead of silently returning NaN.
  [[nodiscard]] double duty_cycle() const {
    validate();
    return mean_busy_s / (mean_busy_s + mean_idle_s);
  }
};

/// One busy or idle interval of the generated trace.
struct PuInterval {
  double start_s = 0.0;
  double end_s = 0.0;
  bool busy = false;
};

/// Generates alternating exponential busy/idle intervals covering
/// [0, duration_s], starting from the stationary state distribution.
[[nodiscard]] std::vector<PuInterval> generate_pu_trace(
    const PuActivityModel& model, double duration_s, std::uint64_t seed);

/// True when the trace is busy at time t (t inside [0, duration)).
[[nodiscard]] bool trace_busy_at(const std::vector<PuInterval>& trace,
                                 double t);
/// Fraction of [t0, t1] the trace spends busy.
[[nodiscard]] double trace_busy_fraction(
    const std::vector<PuInterval>& trace, double t0, double t1);
/// Earliest t' >= t at which the trace is idle, or the trace end when
/// the PU stays busy through it — the "resume after the idle period"
/// instant a preempted secondary transmission waits for.
[[nodiscard]] double trace_next_idle(const std::vector<PuInterval>& trace,
                                     double t);

struct OpportunisticAccessConfig {
  PuActivityModel pu{};
  double duration_s = 200.0;
  double sensing_period_s = 0.02;  ///< listen-before-talk cadence
  double frame_duration_s = 0.05;  ///< SU frame airtime
  double detection_probability = 0.95;   ///< P_d of the detector in use
  double false_alarm_probability = 0.05; ///< P_fa
  std::uint64_t seed = 1;
};

struct OpportunisticAccessResult {
  std::size_t frames_sent = 0;
  std::size_t frames_colliding = 0;  ///< overlapped PU busy time
  double collision_fraction = 0.0;   ///< frames_colliding / frames_sent
  /// SU airtime as a fraction of the PU's idle time (the spectrum-hole
  /// utilization the interweave mode chases).
  double idle_utilization = 0.0;
  /// Fraction of the PU's busy time the SU polluted.
  double interference_fraction = 0.0;
};

/// Runs the listen-before-talk loop against a generated PU trace.
[[nodiscard]] OpportunisticAccessResult simulate_opportunistic_access(
    const OpportunisticAccessConfig& config);

}  // namespace comimo
