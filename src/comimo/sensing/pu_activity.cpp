#include "comimo/sensing/pu_activity.h"

#include <algorithm>
#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {

void PuActivityModel::validate() const {
  COMIMO_CHECK(std::isfinite(mean_busy_s) && mean_busy_s > 0.0,
               "mean busy time must be positive and finite");
  COMIMO_CHECK(std::isfinite(mean_idle_s) && mean_idle_s > 0.0,
               "mean idle time must be positive and finite");
}

std::vector<PuInterval> generate_pu_trace(const PuActivityModel& model,
                                          double duration_s,
                                          std::uint64_t seed) {
  model.validate();
  COMIMO_CHECK(duration_s > 0.0, "duration must be positive");
  Rng rng(seed);
  std::vector<PuInterval> trace;
  double t = 0.0;
  bool busy = rng.bernoulli(model.duty_cycle());  // stationary start
  while (t < duration_s) {
    const double mean = busy ? model.mean_busy_s : model.mean_idle_s;
    const double len = rng.exponential() * mean;
    PuInterval iv;
    iv.start_s = t;
    iv.end_s = std::min(t + len, duration_s);
    iv.busy = busy;
    trace.push_back(iv);
    t = iv.end_s;
    busy = !busy;
  }
  return trace;
}

bool trace_busy_at(const std::vector<PuInterval>& trace, double t) {
  COMIMO_CHECK(!trace.empty(), "empty trace");
  COMIMO_CHECK(t >= 0.0 && t < trace.back().end_s, "time outside trace");
  // Binary search on interval starts.
  const auto it = std::upper_bound(
      trace.begin(), trace.end(), t,
      [](double value, const PuInterval& iv) { return value < iv.start_s; });
  return std::prev(it)->busy;
}

double trace_busy_fraction(const std::vector<PuInterval>& trace, double t0,
                           double t1) {
  COMIMO_CHECK(!trace.empty(), "empty trace");
  COMIMO_CHECK(t1 > t0, "need a positive window");
  double busy = 0.0;
  for (const auto& iv : trace) {
    if (!iv.busy) continue;
    const double lo = std::max(t0, iv.start_s);
    const double hi = std::min(t1, iv.end_s);
    if (hi > lo) busy += hi - lo;
  }
  return busy / (t1 - t0);
}

double trace_next_idle(const std::vector<PuInterval>& trace, double t) {
  COMIMO_CHECK(!trace.empty(), "empty trace");
  COMIMO_CHECK(t >= 0.0 && t < trace.back().end_s, "time outside trace");
  for (const auto& iv : trace) {
    if (iv.end_s <= t || iv.busy) continue;
    return std::max(t, iv.start_s);
  }
  return trace.back().end_s;
}

OpportunisticAccessResult simulate_opportunistic_access(
    const OpportunisticAccessConfig& config) {
  COMIMO_CHECK(config.sensing_period_s > 0.0 &&
                   config.frame_duration_s > 0.0,
               "timing parameters must be positive");
  COMIMO_CHECK(config.detection_probability >= 0.0 &&
                   config.detection_probability <= 1.0 &&
                   config.false_alarm_probability >= 0.0 &&
                   config.false_alarm_probability <= 1.0,
               "probabilities must be in [0,1]");
  const auto trace =
      generate_pu_trace(config.pu, config.duration_s, config.seed);
  Rng rng(config.seed, 0x5E75E);

  OpportunisticAccessResult result;
  double su_airtime = 0.0;
  double polluted_busy_time = 0.0;
  double t = 0.0;
  while (t + config.frame_duration_s < config.duration_s) {
    const bool pu_busy = trace_busy_at(trace, t);
    // Sensing outcome at the decision instant.
    const bool decided_busy =
        pu_busy ? rng.bernoulli(config.detection_probability)
                : rng.bernoulli(config.false_alarm_probability);
    if (decided_busy) {
      t += config.sensing_period_s;
      continue;
    }
    // Transmit one frame starting now.
    const double frame_end = t + config.frame_duration_s;
    const double busy_overlap =
        trace_busy_fraction(trace, t, frame_end) *
        config.frame_duration_s;
    ++result.frames_sent;
    if (busy_overlap > 0.0) {
      ++result.frames_colliding;
      polluted_busy_time += busy_overlap;
    }
    su_airtime += config.frame_duration_s;
    t = frame_end + config.sensing_period_s;
  }

  const double busy_total =
      trace_busy_fraction(trace, 0.0, config.duration_s) *
      config.duration_s;
  const double idle_total = config.duration_s - busy_total;
  result.collision_fraction =
      result.frames_sent
          ? static_cast<double>(result.frames_colliding) /
                static_cast<double>(result.frames_sent)
          : 0.0;
  result.idle_utilization =
      idle_total > 0.0 ? (su_airtime - polluted_busy_time) / idle_total
                       : 0.0;
  result.interference_fraction =
      busy_total > 0.0 ? polluted_busy_time / busy_total : 0.0;
  return result;
}

}  // namespace comimo
