#include "comimo/sensing/energy_detector.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/special.h"

namespace comimo {

EnergyDetector::EnergyDetector(std::size_t num_samples, double noise_power,
                               double pfa)
    : num_samples_(num_samples), noise_power_(noise_power), pfa_(pfa) {
  COMIMO_CHECK(num_samples >= 2, "need at least 2 samples");
  COMIMO_CHECK(noise_power > 0.0, "noise power must be positive");
  COMIMO_CHECK(pfa > 0.0 && pfa < 1.0, "pfa must be in (0,1)");
  // Under H0 the statistic is the mean of N i.i.d. Exp(σ²) variables:
  // mean σ², variance σ⁴/N.
  threshold_ = noise_power *
               (1.0 + q_inverse(pfa) / std::sqrt(static_cast<double>(
                          num_samples)));
}

SensingDecision EnergyDetector::sense(std::span<const cplx> samples) const {
  COMIMO_CHECK(samples.size() == num_samples_,
               "window length must equal num_samples");
  SensingDecision d;
  double sum = 0.0;
  for (const auto& s : samples) sum += std::norm(s);
  d.statistic = sum / static_cast<double>(num_samples_);
  d.threshold = threshold_;
  d.pu_present = d.statistic > threshold_;
  return d;
}

double EnergyDetector::detection_probability(double snr) const {
  COMIMO_CHECK(snr >= 0.0, "snr must be >= 0");
  // Under H1 the per-sample power is σ²(1+snr) with relative std
  // 1/√N (complex-Gaussian PU signal).
  const double mean = noise_power_ * (1.0 + snr);
  const double arg = (threshold_ / mean - 1.0) *
                     std::sqrt(static_cast<double>(num_samples_));
  return q_function(arg);
}

double EnergyDetector::false_alarm_probability() const {
  return detection_probability(0.0);
}

std::vector<RocPoint> energy_detector_roc(
    double snr, std::size_t num_samples,
    const std::vector<double>& pfa_grid) {
  COMIMO_CHECK(!pfa_grid.empty(), "empty pfa grid");
  std::vector<RocPoint> roc;
  roc.reserve(pfa_grid.size());
  for (const double pfa : pfa_grid) {
    const EnergyDetector det(num_samples, 1.0, pfa);
    roc.push_back(RocPoint{pfa, det.detection_probability(snr)});
  }
  return roc;
}

std::size_t required_samples(double snr, double pfa, double pd) {
  COMIMO_CHECK(snr > 0.0, "snr must be positive");
  COMIMO_CHECK(pfa > 0.0 && pfa < 1.0 && pd > 0.0 && pd < 1.0,
               "probabilities must be in (0,1)");
  COMIMO_CHECK(pd > pfa, "pd must exceed pfa");
  const double num = q_inverse(pfa) - q_inverse(pd) * (1.0 + snr);
  const double n = (num / snr) * (num / snr);
  return static_cast<std::size_t>(std::ceil(std::max(2.0, n)));
}

}  // namespace comimo
