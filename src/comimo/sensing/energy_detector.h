// Spectrum sensing by energy detection.
//
// The cognitive-radio premise (§1: nodes "sense the electromagnetic
// environment … and react") and Algorithm 3's step 1 ("determines the
// PU to share the frequency based on the sensed environment") rest on a
// sensing substrate the paper does not spell out.  We implement the
// canonical energy detector: average the power of N complex baseband
// samples and compare against a threshold calibrated for a target
// false-alarm probability.  For N ≳ 50 the test statistic is well
// approximated as Gaussian (CLT over 2N real degrees of freedom), the
// standard working regime for CR sensing analysis.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comimo/numeric/cmatrix.h"

namespace comimo {

struct SensingDecision {
  double statistic = 0.0;  ///< measured average power
  double threshold = 0.0;
  bool pu_present = false;
};

class EnergyDetector {
 public:
  /// `num_samples` per sensing window, receiver noise power
  /// `noise_power` (linear), target false-alarm probability `pfa`.
  EnergyDetector(std::size_t num_samples, double noise_power, double pfa);

  /// The calibrated decision threshold:
  ///   λ = σ²·(1 + Q⁻¹(P_fa)/√N).
  [[nodiscard]] double threshold() const noexcept { return threshold_; }

  /// Senses one window; the span length must equal num_samples.
  [[nodiscard]] SensingDecision sense(std::span<const cplx> samples) const;

  /// Theoretical detection probability for a PU received at `snr`
  /// (linear) under the CLT approximation:
  ///   P_d = Q( (λ/(σ²(1+snr)) − 1)·√N ).
  [[nodiscard]] double detection_probability(double snr) const;

  /// Theoretical false-alarm probability at the calibrated threshold
  /// (returns the design pfa up to the approximation).
  [[nodiscard]] double false_alarm_probability() const;

  [[nodiscard]] std::size_t num_samples() const noexcept {
    return num_samples_;
  }
  [[nodiscard]] double noise_power() const noexcept { return noise_power_; }

 private:
  std::size_t num_samples_;
  double noise_power_;
  double pfa_;
  double threshold_;
};

/// One (P_fa, P_d) receiver-operating-characteristic point.
struct RocPoint {
  double pfa = 0.0;
  double pd = 0.0;
};

/// Theoretical ROC of the energy detector at `snr` (linear) with
/// N-sample windows, over a grid of false-alarm targets.
[[nodiscard]] std::vector<RocPoint> energy_detector_roc(
    double snr, std::size_t num_samples, const std::vector<double>& pfa_grid);

/// Minimum window length N achieving (pfa, pd) at `snr` (linear) under
/// the CLT model — the classic sensing-time dimensioning formula
///   N = ( (Q⁻¹(pfa) − Q⁻¹(pd)·(1+snr)) / snr )².
[[nodiscard]] std::size_t required_samples(double snr, double pfa, double pd);

}  // namespace comimo
